// Quickstart: load a circuit, build a fault universe, fault-simulate a
// random test sequence with the concurrent simulator, and print coverage.
//
//   ./quickstart [path/to/circuit.bench]
//
// Without an argument it uses the embedded ISCAS-89 s27.
#include <cstdio>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/known_circuits.h"
#include "netlist/bench_parser.h"
#include "patterns/pattern.h"

int main(int argc, char** argv) {
  using namespace cfs;

  // 1. A circuit: parse a .bench file or use the embedded s27.
  const Circuit c = argc > 1 ? parse_bench_file(argv[1]) : make_s27();
  const auto st = c.stats();
  std::printf("circuit %s: %zu PIs, %zu POs, %zu FFs, %zu gates, %u levels\n",
              c.name().c_str(), st.num_pis, st.num_pos, st.num_dffs,
              st.num_comb_gates, st.num_levels);

  // 2. The stuck-at fault universe (gate outputs + fanout branches).
  const FaultUniverse faults = FaultUniverse::all_stuck_at(c);
  std::printf("faults: %zu stuck-at\n", faults.size());

  // 3. A test sequence: 256 random vectors.
  const PatternSet tests = PatternSet::random(c.inputs().size(), 256,
                                              /*seed=*/1);

  // 4. Concurrent fault simulation (csim-V configuration).
  ConcurrentSim sim(c, faults);
  for (std::size_t i = 0; i < tests.size(); ++i) sim.apply_vector(tests[i]);

  // 5. Results.
  const Coverage cov = sim.coverage();
  std::printf("detected %zu / %zu faults (%.2f%%), %zu potential\n", cov.hard,
              cov.total, cov.pct(), cov.potential);

  // Undetected faults, if few, by name.
  if (cov.total - cov.hard <= 12) {
    for (std::uint32_t id = 0; id < faults.size(); ++id) {
      if (sim.status()[id] != Detect::Hard) {
        std::printf("  undetected: %s\n",
                    describe_fault(c, faults[id]).c_str());
      }
    }
  }
  return 0;
}
