// Transition-fault screening (the paper's §3 motivation): take a test set
// that was graded for stuck-at faults and measure how well it exercises
// transition (gross-delay) faults -- typically far below its stuck-at
// coverage, which is why dedicated delay testing matters.
//
//   ./transition_screening [benchmark-name]    (default: s27)
#include <cstdio>
#include <string>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "patterns/tgen.h"

int main(int argc, char** argv) {
  using namespace cfs;
  const std::string name = argc > 1 ? argv[1] : "s27";
  const Circuit c = make_benchmark(name);

  // Grade a deterministic stuck-at test set first.
  const FaultUniverse stuck = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.seed = 99;
  const TgenResult tests = generate_tests(c, stuck, opt);
  std::printf("%s: %zu vectors (%zu sequences), stuck-at coverage %.2f%% "
              "(%zu/%zu)\n",
              name.c_str(), tests.suite.total_vectors(),
              tests.suite.num_sequences(), tests.coverage.pct(),
              tests.coverage.hard, tests.coverage.total);

  // Replay the same vectors against the transition universe.
  const FaultUniverse trans = FaultUniverse::all_transition(c);
  ConcurrentSim sim(c, trans);
  for (const PatternSet& seq : tests.suite.sequences()) {
    sim.reset(Val::X);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      sim.apply_vector(seq[i]);
    }
  }
  const Coverage tc = sim.coverage();
  std::printf("transition coverage of the same tests: %.2f%% (%zu/%zu, "
              "%zu potential)\n",
              tc.pct(), tc.hard, tc.total, tc.potential);
  std::printf("=> stuck-at tests %s good transition tests (paper Table 6: "
              "coverages generally below 50%%)\n",
              tc.pct() < tests.coverage.pct() ? "are NOT" : "happen to be");
  return 0;
}
