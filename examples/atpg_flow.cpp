// A small ATPG-style flow: generate compacted deterministic tests for a
// benchmark circuit with the simulation-guided generator, then verify them
// by re-simulating from scratch and print the per-step progress.
//
//   ./atpg_flow [benchmark-name]     (default: s298)
#include <cstdio>
#include <string>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "patterns/tgen.h"

int main(int argc, char** argv) {
  using namespace cfs;
  const std::string name = argc > 1 ? argv[1] : "s298";
  const Circuit c = make_benchmark(name);
  const FaultUniverse faults = FaultUniverse::all_stuck_at(c);
  std::printf("%s: %zu gates, %zu faults\n", name.c_str(), c.num_gates(),
              faults.size());

  TgenOptions opt;
  opt.seed = 2026;
  opt.max_vectors = 2048;
  opt.stale_limit = 20;
  const TgenResult r = generate_tests(c, faults, opt);
  std::printf("tgen: %zu vectors in %zu sequences (%zu/%zu segments kept), "
              "%.2f%% coverage\n",
              r.suite.total_vectors(), r.suite.num_sequences(),
              r.segments_kept, r.segments_tried, r.coverage.pct());

  // Independent verification: replay the emitted suite on a fresh engine
  // and report detections per sequence.
  ConcurrentSim sim(c, faults);
  std::size_t hard = 0;
  for (std::size_t s = 0; s < r.suite.num_sequences(); ++s) {
    const PatternSet& seq = r.suite.sequences()[s];
    sim.reset(Val::X);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      hard += sim.apply_vector(seq[i]);
    }
    std::printf("  sequence %zu (%4zu vectors): %zu detected so far\n", s,
                seq.size(), hard);
  }
  if (sim.coverage().hard != r.coverage.hard) {
    std::printf("VERIFICATION MISMATCH: %zu vs %zu\n", sim.coverage().hard,
                r.coverage.hard);
    return 1;
  }
  std::printf("verified: replay reproduces %zu detections\n", hard);

  // Save the tests next to the binary for reuse.
  const std::string path = name + ".tests";
  r.suite.save(path, name + " deterministic tests (tgen)");
  std::printf("saved %s\n", path.c_str());
  return 0;
}
