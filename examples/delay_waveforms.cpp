// Arbitrary-delay simulation demo: the general two-phase timing-wheel mode
// the paper's concurrent paradigm runs on when the zero-delay synchronous
// shortcut does not apply.  Shows a static-hazard glitch on a small
// combinational circuit as a text waveform.
#include <cstdio>
#include <string>
#include <vector>

#include "netlist/builder.h"
#include "sim/delay_sim.h"

int main() {
  using namespace cfs;
  // y = (a AND b) OR (NOT a AND c): classic multiplexer hazard when a
  // switches with b = c = 1.
  Builder bld("mux");
  bld.add_input("a");
  bld.add_input("b");
  bld.add_input("c");
  bld.add_gate(GateKind::Not, "na", {"a"});
  bld.add_gate(GateKind::And, "t1", {"a", "b"});
  bld.add_gate(GateKind::And, "t2", {"na", "c"});
  bld.add_gate(GateKind::Or, "y", {"t1", "t2"});
  bld.mark_output("y");
  const Circuit c = bld.build();

  std::vector<std::uint32_t> delays(c.num_gates(), 1);
  delays[c.find("na")] = 3;  // slow inverter exposes the hazard
  delays[c.find("t1")] = 2;
  delays[c.find("t2")] = 2;
  delays[c.find("y")] = 1;

  DelaySim sim(c, delays);
  sim.set_input(0, Val::One);
  sim.set_input(1, Val::One);
  sim.set_input(2, Val::One);
  sim.run();
  sim.clear_history();

  std::printf("t=0: a switches 1 -> 0 with b = c = 1 (y should stay 1)\n");
  sim.set_input(0, Val::Zero);
  const auto t_end = sim.run();

  for (const auto& ch : sim.history()) {
    std::printf("  t=%3llu  %-3s -> %c\n",
                static_cast<unsigned long long>(ch.time),
                c.gate_name(ch.gate).c_str(), to_char(ch.val));
  }
  std::printf("settled at t=%llu with y = %c (glitch visible above: the\n"
              "transport-delay model lets y dip to 0 until NOT(a) catches "
              "up)\n",
              static_cast<unsigned long long>(t_end),
              to_char(sim.value(c.find("y"))));
  return 0;
}
