// Dictionary-based fault diagnosis: build a full-response fault dictionary
// with the concurrent simulator, take a "failing device" (a secretly
// injected fault simulated serially), and rank candidate faults from its
// observed error syndrome.
//
//   ./diagnose [benchmark-name] [secret-fault-id]    (default: s298, id 17)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dictionary.h"
#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "patterns/pattern.h"
#include "sim/good_sim.h"

int main(int argc, char** argv) {
  using namespace cfs;
  const std::string name = argc > 1 ? argv[1] : "s298";
  const Circuit c = make_benchmark(name);
  const FaultUniverse faults = FaultUniverse::all_stuck_at(c);
  const std::uint32_t secret =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 17u;
  if (secret >= faults.size()) {
    std::fprintf(stderr, "fault id out of range (have %zu)\n", faults.size());
    return 1;
  }

  const PatternSet tests = PatternSet::random(c.inputs().size(), 256, 4);
  std::printf("building dictionary for %s: %zu faults x %zu vectors...\n",
              name.c_str(), faults.size(), tests.size());
  const FaultDictionary dict =
      build_dictionary(c, faults, tests.vectors(), Val::Zero);

  // The "failing device": simulate the secret fault serially and collect
  // its observed failures on the tester.
  std::vector<Syndrome> observed;
  {
    GoodSim good(c, Val::Zero);
    GoodSim bad(c, Val::Zero);
    const Fault& f = faults[secret];
    bad.inject(f.gate, f.pin, f.value);
    bad.reset(Val::Zero);
    for (std::size_t t = 0; t < tests.size(); ++t) {
      good.apply(tests[t]);
      bad.apply(tests[t]);
      for (std::size_t k = 0; k < c.outputs().size(); ++k) {
        const Val gv = good.value(c.outputs()[k]);
        const Val fv = bad.value(c.outputs()[k]);
        if (is_binary(gv) && is_binary(fv) && gv != fv) {
          observed.push_back({static_cast<std::uint32_t>(t),
                              static_cast<std::uint32_t>(k)});
        }
      }
      good.clock();
      bad.clock();
    }
  }
  std::printf("device fails at %zu (vector, output) points\n",
              observed.size());
  if (observed.empty()) {
    std::printf("the secret fault %s is not detected by this test set -- "
                "try another id\n",
                describe_fault(c, faults[secret]).c_str());
    return 0;
  }

  const auto cands = dict.diagnose(observed, 5);
  std::printf("top candidates (secret was %u: %s):\n", secret,
              describe_fault(c, faults[secret]).c_str());
  bool hit = false;
  for (const auto& cand : cands) {
    std::printf("  #%u %-18s score %6.1f  matched %zu  missed %zu  extra %zu%s\n",
                cand.fault, describe_fault(c, faults[cand.fault]).c_str(),
                cand.score, cand.matched, cand.missed, cand.extra,
                cand.fault == secret ? "   <== secret" : "");
    hit |= cand.fault == secret;
  }
  std::printf(hit ? "diagnosis succeeded\n"
                  : "secret not in top-5 (equivalent faults share syndromes)\n");
  return 0;
}
