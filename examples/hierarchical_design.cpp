// Hierarchical design entry + fault simulation: assemble a small datapath
// from reusable modules (full adders, a counter, a shift register), flatten
// it, and grade a generated test set on it -- the flow a user would follow
// for their own design instead of a benchmark netlist.
#include <cstdio>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "gen/known_circuits.h"
#include "netlist/hierarchy.h"
#include "patterns/tgen.h"

int main() {
  using namespace cfs;

  // An accumulating datapath: acc <= acc + in (4-bit), with a wrap flag.
  const Circuit fa = make_full_adder();
  Builder b("accum4");
  for (int i = 0; i < 4; ++i) b.add_input("in" + std::to_string(i));
  std::string carry = "zero";
  b.add_gate(GateKind::Xor, "zero", {"in0", "in0"});  // constant 0
  std::vector<std::string> sums;
  for (int i = 0; i < 4; ++i) {
    const auto outs = instantiate(
        b, fa, "fa" + std::to_string(i),
        {"in" + std::to_string(i), "acc" + std::to_string(i), carry});
    sums.push_back(outs[0]);
    carry = outs[1];
  }
  for (int i = 0; i < 4; ++i) {
    b.add_dff("acc" + std::to_string(i), sums[static_cast<std::size_t>(i)]);
    b.mark_output("acc" + std::to_string(i));
  }
  b.add_gate(GateKind::Buf, "wrap", {carry});
  b.mark_output("wrap");
  const Circuit c = b.build();

  const auto st = c.stats();
  std::printf("accum4 (hierarchical): %zu gates, %zu FFs, %u levels\n",
              st.num_comb_gates, st.num_dffs, st.num_levels);
  for (const char* probe : {"fa0/sum", "fa3/cout", "acc2"}) {
    std::printf("  signal %-8s -> gate id %u\n", probe, c.find(probe));
  }

  const FaultUniverse faults = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.seed = 12;
  opt.ff_init = Val::Zero;
  const TgenResult r = generate_tests(c, faults, opt);
  std::printf("tgen: %zu vectors, %.2f%% of %zu faults detected\n",
              r.suite.total_vectors(), r.coverage.pct(), faults.size());

  // Name the stragglers -- in a datapath they cluster on the wrap logic.
  ConcurrentSim sim(c, faults);
  for (const PatternSet& seq : r.suite.sequences()) {
    sim.reset(Val::Zero);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      sim.apply_vector(seq[i]);
    }
  }
  std::size_t listed = 0;
  for (std::uint32_t id = 0; id < faults.size() && listed < 8; ++id) {
    if (sim.status()[id] != Detect::Hard) {
      std::printf("  undetected: %s\n", describe_fault(c, faults[id]).c_str());
      ++listed;
    }
  }
  return 0;
}
