#include "resil/snapshot.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "resil/containment.h"
#include "resil/crc32.h"

namespace cfs::resil {

namespace {

// Little-endian append/read primitives over a flat byte buffer.  The
// checkpoint is small (O(faults + FF divergences)), so one contiguous
// payload keeps the CRC and the atomic-rename write trivial.

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back((v >> (8 * i)) & 0xFFu);
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back((v >> (8 * i)) & 0xFFu);
}

struct Reader {
  const std::uint8_t* p;
  std::size_t left;

  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  void need(std::size_t n) const {
    if (left < n) throw SnapshotError("checkpoint truncated");
  }
};

// Process-wide snapshot sabotage hook (set_snapshot_injector).  Atomic so
// concurrent session workers saving checkpoints race cleanly; the injector
// itself is internally locked.
std::atomic<FaultInjector*> g_snapshot_injector{nullptr};

std::uint8_t val_code(Val v) { return static_cast<std::uint8_t>(v); }

Val val_from(std::uint8_t c) {
  // Dual-rail codes: Zero=0, X=2, One=3; code 1 does not exist.
  if (c != 0 && c != 2 && c != 3) {
    throw SnapshotError("checkpoint holds an invalid logic value");
  }
  return static_cast<Val>(c);
}

Detect detect_from(std::uint8_t c) {
  if (c > static_cast<std::uint8_t>(Detect::Hard)) {
    throw SnapshotError("checkpoint holds an invalid detection status");
  }
  return static_cast<Detect>(c);
}

}  // namespace

void set_snapshot_injector(FaultInjector* injector) {
  g_snapshot_injector.store(injector, std::memory_order_release);
}

std::uint64_t suite_fingerprint(const TestSuite& t) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  const auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  };
  mix(t.num_sequences());
  mix(t.num_inputs());
  for (const PatternSet& seq : t.sequences()) {
    mix(seq.size());
    for (const auto& vec : seq.vectors()) {
      for (const Val v : vec) mix(val_code(v));
    }
  }
  return h;
}

void save_checkpoint(const std::string& path, const CampaignCheckpoint& ck) {
  std::vector<std::uint8_t> pl;
  const std::size_t nf = ck.status.size();
  pl.reserve(64 + nf * 11);

  put_u64(pl, ck.suite_fp);
  put_u32(pl, ck.num_gates);
  put_u32(pl, ck.num_dffs);
  put_u32(pl, ck.num_pis);
  put_u32(pl, ck.num_faults);
  put_u8(pl, ck.transition_mode);
  put_u32(pl, ck.pass);
  put_u64(pl, ck.seq_index);
  put_u64(pl, ck.vec_index);
  put_u64(pl, ck.suite_pos);
  put_u64(pl, ck.detections_hard);
  put_u64(pl, ck.detections_potential);
  put_u64(pl, ck.faults_dropped);

  for (const Detect d : ck.status) put_u8(pl, static_cast<std::uint8_t>(d));
  for (const std::uint64_t v : ck.detected_at) put_u64(pl, v);
  for (const std::uint8_t v : ck.done) put_u8(pl, v);
  for (const std::uint8_t v : ck.suspended) put_u8(pl, v);

  for (const Val v : ck.run.flop_good) put_u8(pl, val_code(v));
  for (const auto& list : ck.run.flop_faulty) {
    put_u32(pl, static_cast<std::uint32_t>(list.size()));
    for (const FlopFault& f : list) {
      put_u32(pl, f.fault);
      put_u64(pl, f.state);
    }
  }
  put_u8(pl, ck.run.prev_pins.empty() ? 0 : 1);
  for (const Val v : ck.run.prev_pins) put_u8(pl, val_code(v));

  std::vector<std::uint8_t> file;
  file.reserve(pl.size() + 20);
  put_u32(file, kSnapshotMagic);
  put_u32(file, kSnapshotVersion);
  put_u64(file, pl.size());
  put_u32(file, crc32(pl.data(), pl.size()));
  file.insert(file.end(), pl.begin(), pl.end());

  // Atomic replace: fully write a sibling temp file, then rename.  A crash
  // or kill at any point leaves either the old checkpoint or the new one.
  // The injected faults below simulate each real failure mode at the same
  // point it would actually occur, including temp-file cleanup.
  const IoFail inject = g_snapshot_injector.load(std::memory_order_acquire)
                            ? g_snapshot_injector.load()->maybe_fail_save()
                            : IoFail::None;
  const std::string tmp = path + ".tmp";
  if (inject == IoFail::Enospc) {
    throw CheckpointIoError("cannot write checkpoint temp file '" + tmp +
                            "': no space left on device (injected)");
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw CheckpointIoError("cannot write checkpoint temp file '" + tmp +
                            "'");
  }
  const std::size_t want =
      inject == IoFail::ShortWrite ? file.size() / 2 : file.size();
  const std::size_t written = std::fwrite(file.data(), 1, want, f);
  const bool closed = std::fclose(f) == 0;
  if (written != file.size() || !closed) {
    std::remove(tmp.c_str());
    throw CheckpointIoError("short write to checkpoint temp file '" + tmp +
                            "'");
  }
  if (inject == IoFail::RenameFail ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointIoError("cannot rename checkpoint into place at '" +
                            path + "'");
  }
}

std::uint64_t save_checkpoint_retry(const std::string& path,
                                    const CampaignCheckpoint& ck,
                                    const SaveRetryOptions& opt) {
  std::uint64_t retried = 0;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      save_checkpoint(path, ck);
      return retried;
    } catch (const CheckpointIoError&) {
      if (attempt >= opt.retries) throw;
      ++retried;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::uint64_t{opt.backoff_ms} << attempt));
    }
  }
}

CampaignCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapshotError("cannot open checkpoint '" + path + "'");
  }
  std::vector<std::uint8_t> file;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    file.insert(file.end(), buf, buf + n);
  }
  std::fclose(f);

  Reader r{file.data(), file.size()};
  if (r.u32() != kSnapshotMagic) {
    throw SnapshotError("'" + path + "' is not a campaign checkpoint");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("checkpoint version " + std::to_string(version) +
                        " is not supported (expected " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t payload_size = r.u64();
  const std::uint32_t stored_crc = r.u32();
  if (r.left != payload_size) {
    throw SnapshotError("checkpoint payload size mismatch (header says " +
                        std::to_string(payload_size) + ", file holds " +
                        std::to_string(r.left) + ")");
  }
  if (crc32(r.p, r.left) != stored_crc) {
    throw SnapshotError("checkpoint CRC mismatch -- file is corrupt");
  }

  CampaignCheckpoint ck;
  ck.suite_fp = r.u64();
  ck.num_gates = r.u32();
  ck.num_dffs = r.u32();
  ck.num_pis = r.u32();
  ck.num_faults = r.u32();
  ck.transition_mode = r.u8();
  ck.pass = r.u32();
  ck.seq_index = r.u64();
  ck.vec_index = r.u64();
  ck.suite_pos = r.u64();
  ck.detections_hard = r.u64();
  ck.detections_potential = r.u64();
  ck.faults_dropped = r.u64();

  const std::size_t nf = ck.num_faults;
  ck.status.resize(nf);
  for (auto& d : ck.status) d = detect_from(r.u8());
  ck.detected_at.resize(nf);
  for (auto& v : ck.detected_at) v = r.u64();
  ck.done.resize(nf);
  for (auto& v : ck.done) v = r.u8();
  ck.suspended.resize(nf);
  for (auto& v : ck.suspended) v = r.u8();

  ck.run.flop_good.resize(ck.num_dffs);
  for (auto& v : ck.run.flop_good) v = val_from(r.u8());
  ck.run.flop_faulty.resize(ck.num_dffs);
  for (auto& list : ck.run.flop_faulty) {
    list.resize(r.u32());
    for (FlopFault& ff : list) {
      ff.fault = r.u32();
      ff.state = r.u64();
    }
  }
  if (r.u8() != 0) {
    ck.run.prev_pins.resize(nf);
    for (auto& v : ck.run.prev_pins) v = val_from(r.u8());
  }
  if (r.left != 0) {
    throw SnapshotError("checkpoint has trailing bytes -- file is corrupt");
  }
  return ck;
}

}  // namespace cfs::resil
