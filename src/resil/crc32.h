// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Guards the checkpoint payload: a truncated or bit-flipped snapshot file is
// rejected at load instead of silently resuming a corrupted campaign.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cfs::resil {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cfs::resil
