// Versioned, CRC-guarded binary checkpoints of a fault-simulation campaign.
//
// A checkpoint is everything resil/campaign.h needs to continue a killed
// campaign bit-identically: the per-fault master status and detection
// positions, the multi-pass bookkeeping (done/suspended masks, pass number),
// the deterministic counters, the pattern-source cursor, and the engine run
// state (core/run_state.h -- flip-flop good values, per-DFF faulty
// divergences, transition-mode previous pin values).
//
// File layout (all integers little-endian):
//   u32 magic 'CFS\x01' | u32 version | u64 payload bytes | u32 crc32(payload)
//   payload...
// Loading validates magic, version, size, and CRC, then the campaign
// validates the embedded circuit/suite fingerprints -- a checkpoint only
// resumes against the same circuit, fault universe, and test suite it was
// written under.  Writes are atomic: a temp file in the same directory is
// fsync-free but fully written and then renamed over the target, so a kill
// -9 mid-write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_state.h"
#include "faults/fault.h"
#include "patterns/pattern.h"
#include "util/error.h"

namespace cfs::resil {

/// Loaders throw this (not a generic cfs::Error) so callers can tell
/// "checkpoint unusable" apart from programming errors.
struct SnapshotError : Error {
  using Error::Error;
};

/// save_checkpoint() throws this on any I/O failure -- short write, failed
/// create, failed rename -- so callers can retry transient storage trouble
/// (save_checkpoint_retry below) without also retrying programming errors.
struct CheckpointIoError : Error {
  using Error::Error;
};

class FaultInjector;  // resil/containment.h

/// Install a process-wide snapshot-write sabotage hook (test/chaos only;
/// pass nullptr to disarm).  When set, every save_checkpoint() attempt
/// consults injector->maybe_fail_save() and simulates the returned I/O
/// fault: a short write to the temp file, an out-of-space create, or a
/// failed rename -- each surfaced as CheckpointIoError with the temp file
/// cleaned up, exactly like the real failure would be.
void set_snapshot_injector(FaultInjector* injector);

/// Bounded retry policy for checkpoint writes: a failed save is retried
/// with exponential backoff (backoff_ms, 2*backoff_ms, ...) before the
/// CheckpointIoError surfaces.  Storage hiccups -- NFS blips, transient
/// ENOSPC -- should not kill a campaign that can simply try again.
struct SaveRetryOptions {
  unsigned retries = 3;          ///< additional attempts after the first
  std::uint32_t backoff_ms = 1;  ///< base backoff, doubling per attempt
};

inline constexpr std::uint32_t kSnapshotMagic = 0x01534643u;  // "CFS\x01"
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// detected_at value for a fault with no hard detection yet.
inline constexpr std::uint64_t kNotDetected = ~std::uint64_t{0};

struct CampaignCheckpoint {
  // -- identity -----------------------------------------------------------
  std::uint64_t suite_fp = 0;    ///< suite_fingerprint() of the test suite
  std::uint32_t num_gates = 0;   ///< circuit shape check
  std::uint32_t num_dffs = 0;
  std::uint32_t num_pis = 0;
  std::uint32_t num_faults = 0;
  std::uint8_t transition_mode = 0;

  // -- pattern-source cursor ----------------------------------------------
  std::uint32_t pass = 0;       ///< memory-budget pass number (0-based)
  std::uint64_t seq_index = 0;  ///< sequence being simulated
  std::uint64_t vec_index = 0;  ///< next vector within that sequence
  std::uint64_t suite_pos = 0;  ///< cumulative vectors applied (all passes)

  // -- deterministic counters (campaign-computed, shard-invariant) ---------
  std::uint64_t detections_hard = 0;
  std::uint64_t detections_potential = 0;
  std::uint64_t faults_dropped = 0;

  // -- per-fault campaign state -------------------------------------------
  std::vector<Detect> status;               ///< master detection status
  std::vector<std::uint64_t> detected_at;   ///< suite_pos of first hard hit
  std::vector<std::uint8_t> done;           ///< fully simulated in some pass
  std::vector<std::uint8_t> suspended;      ///< current suspension overlay

  // -- engine run state ----------------------------------------------------
  RunStateSnapshot run;
};

/// FNV-1a over the suite's shape and every PI value; resuming against a
/// different vector stream is refused.
std::uint64_t suite_fingerprint(const TestSuite& t);

/// Serialize + atomically replace `path`.  Throws CheckpointIoError on I/O
/// failure (injected or real).
void save_checkpoint(const std::string& path, const CampaignCheckpoint& ck);

/// save_checkpoint() with the bounded retry/backoff policy.  Returns the
/// number of failed attempts that were retried (0 = first try stuck);
/// rethrows the last CheckpointIoError once the budget is exhausted.
std::uint64_t save_checkpoint_retry(const std::string& path,
                                    const CampaignCheckpoint& ck,
                                    const SaveRetryOptions& opt = {});

/// Load and validate header + CRC.  Throws SnapshotError on missing file,
/// bad magic, unsupported version, truncation, or checksum mismatch.
CampaignCheckpoint load_checkpoint(const std::string& path);

}  // namespace cfs::resil
