#include "resil/campaign.h"

#include <chrono>
#include <thread>

#include "util/error.h"
#include "util/pool.h"

namespace cfs::resil {

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::uint64_t CampaignResult::digest() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const Detect d : status) h = fnv_mix(h, static_cast<std::uint64_t>(d));
  for (const std::uint64_t v : detected_at) h = fnv_mix(h, v);
  return h;
}

CampaignRunner::CampaignRunner(const Circuit& c, const FaultUniverse& u,
                               const TestSuite& t, CampaignOptions opt,
                               const MacroFaultMap* mmap)
    : suite_(t),
      opt_(std::move(opt)),
      model_(std::make_shared<SimModel>(c, u, mmap)),
      suite_fp_(suite_fingerprint(t)) {}

CampaignRunner::CampaignRunner(std::shared_ptr<const SimModel> model,
                               const TestSuite& t, CampaignOptions opt)
    : suite_(t),
      opt_(std::move(opt)),
      model_(std::move(model)),
      suite_fp_(suite_fingerprint(t)) {}

void CampaignRunner::start_fresh() {
  const std::size_t nf = model_->num_faults();
  status_.assign(nf, Detect::None);
  detected_at_.assign(nf, kNotDetected);
  done_.assign(nf, 0);
  suspended_.assign(nf, 0);
  det_hard_ = det_potential_ = dropped_ = 0;
  pass_ = 0;
  seq_ = vec_ = pos_ = 0;
  resumed_mid_sequence_ = false;
  build_sim();
}

void CampaignRunner::start_resumed() {
  CampaignCheckpoint ck = load_checkpoint(opt_.resume_path);
  const Circuit& c = model_->circuit();
  if (ck.suite_fp != suite_fp_) {
    throw SnapshotError("checkpoint was written for a different test suite");
  }
  if (ck.num_gates != c.num_gates() || ck.num_dffs != c.dffs().size() ||
      ck.num_pis != c.inputs().size() ||
      ck.num_faults != model_->num_faults() ||
      (ck.transition_mode != 0) != model_->transition_mode()) {
    throw SnapshotError(
        "checkpoint was written for a different circuit or fault universe");
  }
  status_ = std::move(ck.status);
  detected_at_ = std::move(ck.detected_at);
  done_ = std::move(ck.done);
  suspended_ = std::move(ck.suspended);
  det_hard_ = ck.detections_hard;
  det_potential_ = ck.detections_potential;
  dropped_ = ck.faults_dropped;
  pass_ = ck.pass;
  seq_ = ck.seq_index;
  vec_ = ck.vec_index;
  pos_ = ck.suite_pos;
  build_sim();
  // Mid-sequence resumes continue from the snapshotted machine state; a
  // cursor at a sequence boundary starts the next sequence from the normal
  // initial state instead (exactly what the uninterrupted run would do).
  resumed_mid_sequence_ = vec_ != 0;
  if (resumed_mid_sequence_) restore_with_budget(ck.run);
}

void CampaignRunner::build_sim() {
  for (;;) {
    try {
      ShardedOptions so = opt_.sharded;
      so.suspended = suspended_;
      sim_ = std::make_unique<ShardedSim>(model_, std::move(so));
      // Samples carry suite positions: a resumed campaign's timeline
      // continues where the interrupted one left off.
      if (opt_.timeline != nullptr) sim_->set_timeline(opt_.timeline, pos_);
      if (opt_.trace != nullptr) sim_->set_trace(opt_.trace);
      return;
    } catch (const PoolBudgetError&) {
      // Even the initial activation does not fit: park half the universe
      // before the first vector; later passes will pick it up.
      suspend_half();
    }
  }
}

void CampaignRunner::restore_with_budget(const RunStateSnapshot& snap) {
  for (;;) {
    try {
      sim_->restore_run_state(snap, status_);
      return;
    } catch (const PoolBudgetError&) {
      suspend_half();
    }
  }
}

void CampaignRunner::reset_with_budget() {
  for (;;) {
    try {
      sim_->reset(opt_.ff_init, /*clear_status=*/false);
      return;
    } catch (const PoolBudgetError&) {
      suspend_half();
    }
  }
}

void CampaignRunner::suspend_half() {
  std::vector<std::uint32_t> active;
  for (std::uint32_t id = 0; id < status_.size(); ++id) {
    if (suspended_[id] == 0 && done_[id] == 0 && status_[id] != Detect::Hard) {
      active.push_back(id);
    }
  }
  if (active.size() <= 1) {
    throw Error("element budget (" +
                std::to_string(opt_.sharded.csim.max_elements) +
                ") too small: overflow with " +
                std::to_string(active.size()) + " active fault(s) left");
  }
  // Keep the lower half (by fault id) active; everything above waits for a
  // later pass.  Deterministic: depends only on ids and master status.
  for (std::size_t i = active.size() / 2; i < active.size(); ++i) {
    suspended_[active[i]] = 1;
  }
  if (sim_) sim_->set_suspended(suspended_);
}

void CampaignRunner::absorb_status(std::uint64_t suite_pos) {
  const std::vector<Detect>& st = sim_->status();
  const bool drop = opt_.sharded.csim.drop_detected;
  for (std::size_t id = 0; id < st.size(); ++id) {
    if (st[id] == status_[id]) continue;
    if (st[id] == Detect::Hard) {
      status_[id] = Detect::Hard;
      detected_at_[id] = suite_pos;
      ++det_hard_;
      if (drop) ++dropped_;
    } else if (st[id] == Detect::Potential &&
               status_[id] == Detect::None) {
      status_[id] = Detect::Potential;
      ++det_potential_;
    }
  }
}

bool CampaignRunner::pass_remainder_exists() const {
  for (std::size_t id = 0; id < status_.size(); ++id) {
    if (suspended_[id] != 0 && done_[id] == 0 &&
        status_[id] != Detect::Hard) {
      return true;
    }
  }
  return false;
}

CampaignCheckpoint CampaignRunner::make_checkpoint() const {
  CampaignCheckpoint ck;
  const Circuit& c = model_->circuit();
  ck.suite_fp = suite_fp_;
  ck.num_gates = static_cast<std::uint32_t>(c.num_gates());
  ck.num_dffs = static_cast<std::uint32_t>(c.dffs().size());
  ck.num_pis = static_cast<std::uint32_t>(c.inputs().size());
  ck.num_faults = static_cast<std::uint32_t>(model_->num_faults());
  ck.transition_mode = model_->transition_mode() ? 1 : 0;
  ck.pass = pass_;
  // Normalize the cursor so a resume at a sequence boundary begins the next
  // sequence cleanly (vec_index 0 == "start of sequence").
  std::uint64_t s = seq_;
  std::uint64_t v = vec_;
  const auto& seqs = suite_.sequences();
  while (s < seqs.size() && v >= seqs[s].size()) {
    ++s;
    v = 0;
  }
  ck.seq_index = s;
  ck.vec_index = v;
  ck.suite_pos = pos_;
  ck.detections_hard = det_hard_;
  ck.detections_potential = det_potential_;
  ck.faults_dropped = dropped_;
  ck.status = status_;
  ck.detected_at = detected_at_;
  ck.done = done_;
  ck.suspended = suspended_;
  ck.run = sim_->capture_run_state();
  return ck;
}

void CampaignRunner::write_checkpoint() {
  checkpoint_write_retries_ += save_checkpoint_retry(
      opt_.checkpoint_path, make_checkpoint(),
      {opt_.checkpoint_retries, opt_.checkpoint_backoff_ms});
  ++checkpoints_;
  // Flush the timeline stream only at checkpoint boundaries: everything on
  // disk precedes the checkpoint a kill would resume from, so the resumed
  // campaign appends a contiguous, duplicate-free continuation.
  if (opt_.timeline != nullptr) opt_.timeline->flush();
}

CampaignResult CampaignRunner::run() {
  if (!opt_.resume_path.empty()) {
    start_resumed();
  } else {
    start_fresh();
  }

  const std::size_t nf = model_->num_faults();
  const bool budgeted = opt_.sharded.csim.max_elements != 0;
  const auto& seqs = suite_.sequences();

  const auto finish = [&](bool halted, bool stopped = false) {
    // Orderly exits drain the sample buffer (a checkpoint, when one was
    // just written, already covers everything flushed here).
    if (opt_.timeline != nullptr) opt_.timeline->flush();
    CampaignResult res;
    res.status = status_;
    res.detected_at = detected_at_;
    res.coverage = summarize(status_);
    res.detections_hard = det_hard_;
    res.detections_potential = det_potential_;
    res.faults_dropped = dropped_;
    res.passes = pass_ + 1;
    res.vectors = vectors_run_;
    res.checkpoints_written = checkpoints_;
    res.checkpoint_write_retries = checkpoint_write_retries_;
    res.halted = halted;
    res.stopped = stopped;
    res.shard_retries = sim_->shard_retries();
    res.shard_requeues = sim_->shard_requeues();
    res.peak_elements = sim_->stats().total.peak_elements;
    res.rebalances = sim_->rebalances();
    res.faults_migrated = sim_->faults_migrated();
    res.elements_migrated = sim_->elements_migrated();
    return res;
  };

  for (;;) {  // memory-budget passes
    for (; seq_ < seqs.size(); ++seq_, vec_ = 0) {
      const PatternSet& sq = seqs[seq_];
      // Suite position of this sequence's first vector (pass-independent;
      // detected_at stamps are relative to the suite, not the campaign).
      std::uint64_t seq_base = 0;
      for (std::uint64_t i = 0; i < seq_; ++i) seq_base += seqs[i].size();
      if (!resumed_mid_sequence_) {
        // Sequence start: the engines' own reset(), NOT a restore of an
        // empty synthetic snapshot -- restore injects a snapshot's
        // divergence lists verbatim, so an empty one would silently skip
        // the flip-flop site faults that diverge in the initial state.
        // Engines freshly built by a boundary resume first adopt the
        // master status so already-detected faults stay dropped.
        sim_->adopt_status(status_);
        reset_with_budget();
      }
      resumed_mid_sequence_ = false;
      while (vec_ < sq.size()) {
        // Boundary snapshot: what a budget overflow mid-vector rolls back
        // to.  Only paid when a budget is actually enforced.
        RunStateSnapshot boundary;
        if (budgeted) boundary = sim_->capture_run_state();
        for (;;) {
          try {
            sim_->apply_vector(sq[vec_]);
            break;
          } catch (const PoolBudgetError&) {
            if (!budgeted) throw;
            // Degrade: park half the remaining work, roll the engines back
            // to the vector boundary, and retry the same vector.
            suspend_half();
            restore_with_budget(boundary);
          }
        }
        absorb_status(seq_base + vec_);
        ++vec_;
        ++pos_;
        ++vectors_run_;
        if (opt_.sleep_ms != 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opt_.sleep_ms));
        }
        if (!opt_.checkpoint_path.empty() && opt_.checkpoint_every != 0 &&
            pos_ % opt_.checkpoint_every == 0) {
          write_checkpoint();
        }
        if (opt_.halt_after != 0 && pos_ >= opt_.halt_after) {
          if (!opt_.checkpoint_path.empty()) write_checkpoint();
          return finish(/*halted=*/true);
        }
        if (opt_.stop != nullptr &&
            opt_.stop->load(std::memory_order_relaxed)) {
          // Graceful drain: persist the boundary just reached so the session
          // resumes bit-identically, then report halted+stopped.
          if (!opt_.checkpoint_path.empty()) write_checkpoint();
          return finish(/*halted=*/true, /*stopped=*/true);
        }
      }
    }

    // Pass complete: everything that was active is now fully simulated.
    for (std::size_t id = 0; id < nf; ++id) {
      if (suspended_[id] == 0) done_[id] = 1;
    }
    if (!pass_remainder_exists()) break;
    ++pass_;
    if (pass_ >= opt_.max_passes) {
      throw Error("element budget requires more than " +
                  std::to_string(opt_.max_passes) +
                  " passes; raise --max-elements");
    }
    // Next pass: activate exactly the parked remainder (suspended, not yet
    // fully simulated, not already hard-detected).
    for (std::size_t id = 0; id < nf; ++id) {
      const bool remaining = suspended_[id] != 0 && done_[id] == 0 &&
                             status_[id] != Detect::Hard;
      suspended_[id] = remaining ? 0 : 1;
    }
    sim_->set_suspended(suspended_);
    seq_ = 0;
    vec_ = 0;
  }

  if (!opt_.checkpoint_path.empty()) write_checkpoint();
  return finish(/*halted=*/false);
}

}  // namespace cfs::resil
