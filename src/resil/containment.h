// Shard failure containment: configuration knobs and the test-only fault
// injector.
//
// Header-only on purpose -- sim/sharded_sim.h includes this so ShardedOptions
// can carry the containment configuration without a cfs_sharded -> cfs_resil
// link cycle; the heavier parts of the resilience subsystem (snapshot
// serialization, the campaign runner) live in cfs_resil, which links
// cfs_sharded the normal way round.
//
// The containment protocol itself is implemented by ShardedSim's resilient
// vector path (sim/sharded_sim.cpp): each shard attempt runs on a dedicated
// thread behind an isolation boundary (exceptions captured, an optional
// per-round deadline watchdog), a failed or hung shard's slice is requeued --
// its engine restored (or rebuilt, for a hung one) from the pre-vector
// boundary snapshot and retried with exponential backoff -- and the
// deterministic merge order is untouched because retries never change which
// shard owns which fault.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"

namespace cfs::resil {

/// The error a `throw` injection raises inside a shard worker; distinct so
/// tests can assert the containment path (and not some real bug) fired.
struct InjectedShardFailure : Error {
  InjectedShardFailure(unsigned shard, std::uint64_t vector)
      : Error("injected failure on shard " + std::to_string(shard) +
              " at vector " + std::to_string(vector)) {}
};

/// One scripted failure.  Shard faults (`Throw`, `Stall`) fire on shard
/// `shard` right before it simulates the driver's vector number `vector`:
/// either throw or stall for `stall_ms`.  I/O faults (`ShortWrite`,
/// `Enospc`, `RenameFail`) sabotage checkpoint writes instead: they fire on
/// the `vector`-th (0-based) snapshot save attempt of the process and every
/// later one while budget remains.  All specs fire at most `times` times (a
/// fault that repeats past the retry budget would otherwise hang the
/// campaign it is supposed to exercise).
struct InjectionSpec {
  enum class Action : std::uint8_t {
    Throw, Stall, ShortWrite, Enospc, RenameFail
  };
  Action action = Action::Throw;
  unsigned shard = 0;
  std::uint64_t vector = 0;
  std::uint32_t stall_ms = 0;
  std::uint32_t times = 1;

  static bool is_io(Action a) {
    return a == Action::ShortWrite || a == Action::Enospc ||
           a == Action::RenameFail;
  }
};

/// What an I/O injection wants to happen to the current snapshot save.
enum class IoFail : std::uint8_t { None, ShortWrite, Enospc, RenameFail };

/// Test-only sabotage hook.  ShardedSim calls maybe_fire() from every shard
/// worker when an injector is configured; production runs never construct
/// one.  Thread-safe: workers on different shards consult it concurrently.
class FaultInjector {
 public:
  void add(const InjectionSpec& spec) {
    std::lock_guard<std::mutex> lk(mu_);
    specs_.push_back(Armed{spec, 0});
  }

  /// Called by shard worker `shard` before simulating driver vector
  /// `vector`.  Stalls happen outside the lock so a sleeping shard never
  /// blocks the others' checks.
  void maybe_fire(unsigned shard, std::uint64_t vector) {
    bool do_throw = false;
    std::uint32_t stall = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (Armed& a : specs_) {
        if (InjectionSpec::is_io(a.spec.action)) continue;
        if (a.spec.shard != shard || a.spec.vector != vector) continue;
        if (a.fired >= a.spec.times) continue;
        ++a.fired;
        if (a.spec.action == InjectionSpec::Action::Throw) {
          do_throw = true;
        } else if (a.spec.stall_ms > stall) {
          stall = a.spec.stall_ms;
        }
      }
    }
    if (stall != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
    if (do_throw) throw InjectedShardFailure(shard, vector);
  }

  /// Called by resil::save_checkpoint() once per save attempt (when this
  /// injector is installed via set_snapshot_injector).  Consumes one firing
  /// of the first armed I/O spec whose `vector` (the 0-based save ordinal)
  /// has been reached.  Counting attempts here -- retries included -- lets a
  /// spec like `enospc:0:2` fail the first two attempts and then let the
  /// bounded-retry path succeed on the third.
  IoFail maybe_fail_save() {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t n = io_saves_++;
    for (Armed& a : specs_) {
      if (!InjectionSpec::is_io(a.spec.action)) continue;
      if (n < a.spec.vector || a.fired >= a.spec.times) continue;
      ++a.fired;
      switch (a.spec.action) {
        case InjectionSpec::Action::ShortWrite: return IoFail::ShortWrite;
        case InjectionSpec::Action::Enospc: return IoFail::Enospc;
        default: return IoFail::RenameFail;
      }
    }
    return IoFail::None;
  }

  /// Total injections that have fired (all specs).
  std::uint64_t fired() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t n = 0;
    for (const Armed& a : specs_) n += a.fired;
    return n;
  }

  /// Parse a comma-separated spec list, each entry
  ///   throw:SHARD:VECTOR[:TIMES]
  ///   stall:SHARD:VECTOR:MS[:TIMES]
  ///   short-write:NTH[:TIMES] | enospc:NTH[:TIMES] | rename-fail:NTH[:TIMES]
  /// e.g. "throw:1:3", "stall:0:2:400,throw:2:5:2", or "enospc:0:2" (fail
  /// the first two checkpoint save attempts).  Throws cfs::Error on
  /// malformed input.  This is the grammar behind the CLI's --inject flag.
  /// (Returns specs rather than an injector: the mutex member makes the
  /// class itself immovable.)
  static std::vector<InjectionSpec> parse(const std::string& text) {
    std::vector<InjectionSpec> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      std::size_t end = text.find(',', pos);
      if (end == std::string::npos) end = text.size();
      const std::string entry = text.substr(pos, end - pos);
      pos = end + 1;
      if (entry.empty()) {
        if (pos > text.size()) break;
        throw Error("--inject: empty entry");
      }
      std::vector<std::string> f;
      std::size_t p = 0;
      while (p <= entry.size()) {
        std::size_t e = entry.find(':', p);
        if (e == std::string::npos) e = entry.size();
        f.push_back(entry.substr(p, e - p));
        p = e + 1;
      }
      auto num = [&](const std::string& s) -> std::uint64_t {
        if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
          throw Error("--inject: bad number '" + s + "' in '" + entry + "'");
        }
        return std::stoull(s);
      };
      InjectionSpec spec;
      if (f[0] == "throw" && (f.size() == 3 || f.size() == 4)) {
        spec.action = InjectionSpec::Action::Throw;
        spec.shard = static_cast<unsigned>(num(f[1]));
        spec.vector = num(f[2]);
        if (f.size() == 4) spec.times = static_cast<std::uint32_t>(num(f[3]));
      } else if (f[0] == "stall" && (f.size() == 4 || f.size() == 5)) {
        spec.action = InjectionSpec::Action::Stall;
        spec.shard = static_cast<unsigned>(num(f[1]));
        spec.vector = num(f[2]);
        spec.stall_ms = static_cast<std::uint32_t>(num(f[3]));
        if (f.size() == 5) spec.times = static_cast<std::uint32_t>(num(f[4]));
      } else if ((f[0] == "short-write" || f[0] == "enospc" ||
                  f[0] == "rename-fail") &&
                 (f.size() == 2 || f.size() == 3)) {
        spec.action = f[0] == "short-write"
                          ? InjectionSpec::Action::ShortWrite
                          : f[0] == "enospc" ? InjectionSpec::Action::Enospc
                                             : InjectionSpec::Action::RenameFail;
        spec.vector = num(f[1]);
        if (f.size() == 3) spec.times = static_cast<std::uint32_t>(num(f[2]));
      } else {
        throw Error("--inject: expected throw:SHARD:VEC[:TIMES], "
                    "stall:SHARD:VEC:MS[:TIMES], or "
                    "short-write|enospc|rename-fail:NTH[:TIMES], got '" +
                    entry + "'");
      }
      out.push_back(spec);
    }
    return out;
  }

 private:
  struct Armed {
    InjectionSpec spec;
    std::uint32_t fired = 0;
  };
  mutable std::mutex mu_;
  std::vector<Armed> specs_;
  std::uint64_t io_saves_ = 0;  ///< snapshot save attempts observed
};

/// Shard failure containment configuration (carried by ShardedOptions).
struct ResilOptions {
  /// Retry rounds per vector before the failure propagates.  0 disables the
  /// containment path entirely: apply_vector uses the plain fork-join fast
  /// path and any shard exception aborts the vector.
  unsigned max_retries = 0;
  /// Watchdog deadline per attempt round (ms).  A shard still running when
  /// it expires is declared hung: its worker thread and engine are abandoned
  /// (parked until destruction) and the slice is requeued on a rebuilt
  /// engine.  0 = no watchdog; only exceptions are contained.
  std::uint32_t deadline_ms = 0;
  /// Base backoff between retry rounds (ms); doubles every round.
  std::uint32_t backoff_ms = 1;
  /// Test-only sabotage hook; not owned, may be null.
  FaultInjector* injector = nullptr;
};

}  // namespace cfs::resil
