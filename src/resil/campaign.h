// Resilient fault-simulation campaigns: checkpoint/resume and memory-budget
// multi-pass degradation over the sharded concurrent engine.
//
// A *campaign* is one suite of test sequences simulated against one fault
// universe.  CampaignRunner drives a ShardedSim (1 shard == plain
// ConcurrentSim) vector by vector and adds three robustness layers the raw
// drivers do not have:
//
//  1. Checkpointing: every N vectors the campaign state -- master status,
//     detection positions, deterministic counters, pattern cursor, engine
//     run state -- is serialized to a CRC-guarded snapshot file
//     (resil/snapshot.h) with an atomic rename.  A killed campaign resumes
//     from the last checkpoint bit-identically: same coverage, same
//     detection order, same deterministic counters as the uninterrupted run.
//
//  2. Memory-budget degradation: with CsimOptions::max_elements set, a pool
//     overflow (PoolBudgetError) anywhere suspends the upper half of the
//     still-active undetected faults, restores the pre-vector boundary, and
//     retries; faults parked this way are finished by additional passes over
//     the same vector sequence.  The detected set is identical to the
//     unlimited run's -- only wall time and pass count grow.
//
//  3. Shard failure containment is configured through
//     ShardedOptions::resil and implemented inside ShardedSim itself
//     (resil/containment.h); the campaign simply surfaces the retry/requeue
//     counters.
//
// Deterministic counters (DetectionsHard/DetectionsPotential/FaultsDropped)
// are recomputed here from master-status transitions rather than read from
// engine telemetry: engines are torn down and rebuilt across restores,
// retries, and passes, but a status transition happens exactly once per
// fault no matter how the work was scheduled.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_model.h"
#include "faults/macro_map.h"
#include "patterns/pattern.h"
#include "resil/snapshot.h"
#include "sim/sharded_sim.h"

namespace cfs::resil {

struct CampaignOptions {
  /// Engine/driver configuration: thread count, csim switches (including
  /// the element budget csim.max_elements), containment knobs.
  ShardedOptions sharded;
  /// Flip-flop initialisation value at every sequence start.
  Val ff_init = Val::X;

  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint every N vectors (0 with a path set: only on halt).
  std::uint64_t checkpoint_every = 0;
  /// Resume from this checkpoint instead of starting fresh; empty = fresh.
  std::string resume_path;

  /// Upper bound on memory-budget passes; exceeded = cfs::Error (the budget
  /// is unusably small).
  unsigned max_passes = 32;

  /// Checkpoint-write resilience: a failed save is retried up to
  /// checkpoint_retries times with exponential backoff before the
  /// CheckpointIoError surfaces (resil/snapshot.h SaveRetryOptions).
  unsigned checkpoint_retries = 3;
  std::uint32_t checkpoint_backoff_ms = 1;

  /// Cooperative stop flag (not owned, may be null).  Checked after every
  /// vector; when it reads true the campaign writes a final checkpoint (if a
  /// path is set) and returns with halted+stopped set -- the graceful-drain
  /// primitive the service layer builds SIGTERM handling on.
  const std::atomic<bool>* stop = nullptr;

  /// Optional telemetry, both owned by the caller and outliving run().
  /// The timeline samples every vector (vec coordinate = suite position,
  /// continuing seamlessly across a resume) and, when streaming, is
  /// flushed exactly at checkpoint boundaries: a kill -9 leaves a JSONL
  /// stream whose last sample precedes the checkpoint the campaign
  /// resumes from, so resume appends a contiguous continuation.  The
  /// trace emitter records shard slices and counter tracks as in plain
  /// sharded runs.
  obs::Timeline* timeline = nullptr;
  obs::TraceEmitter* trace = nullptr;

  /// Test hooks.  halt_after stops the campaign after N cumulative vectors
  /// (0 = run to completion) -- with a checkpoint path set, a final
  /// checkpoint is written first, so halt+resume mimics kill+resume
  /// in-process.  sleep_ms stalls after every vector (paces the campaign so
  /// an external kill lands mid-run deterministically enough to test).
  std::uint64_t halt_after = 0;
  std::uint32_t sleep_ms = 0;
};

struct CampaignResult {
  std::vector<Detect> status;
  /// Suite position (0-based, across sequences) of each fault's first hard
  /// detection; kNotDetected otherwise.  Pass-invariant: faulty machines
  /// never interact, so a fault parked by the memory budget and detected in
  /// a later pass is stamped with the same position the unlimited run
  /// records -- digest() therefore matches across any --max-elements.
  std::vector<std::uint64_t> detected_at;
  Coverage coverage;

  // Deterministic counters (shard- and schedule-invariant).
  std::uint64_t detections_hard = 0;
  std::uint64_t detections_potential = 0;
  std::uint64_t faults_dropped = 0;

  std::uint32_t passes = 1;           ///< memory-budget passes used
  std::uint64_t vectors = 0;          ///< vectors simulated (all passes)
  std::uint64_t checkpoints_written = 0;
  /// Failed checkpoint-save attempts that the bounded retry/backoff policy
  /// absorbed (each eventually succeeded; exhaustion throws instead).
  std::uint64_t checkpoint_write_retries = 0;
  bool halted = false;                ///< stopped by halt_after or stop flag
  bool stopped = false;               ///< stopped by the cooperative flag
  std::uint64_t shard_retries = 0;    ///< containment retry attempts
  std::uint64_t shard_requeues = 0;   ///< hung-shard slice requeues
  std::size_t peak_elements = 0;      ///< summed shard pool high-water
  /// Dynamic-rebalancing activity (this process only -- a resumed campaign
  /// rebuilds its simulator, and with it these work-telemetry counters;
  /// the digest is invariant to both).
  std::uint64_t rebalances = 0;
  std::uint64_t faults_migrated = 0;
  std::uint64_t elements_migrated = 0;

  /// FNV-1a over (status, detected_at): one number that pins coverage AND
  /// detection order, for cheap resume-vs-uninterrupted comparisons.
  std::uint64_t digest() const;
};

class CampaignRunner {
 public:
  /// The caller keeps `c`, `u`, `t` (and `mmap`) alive for the runner's
  /// lifetime.  In macro mode pass the extracted circuit and the map, as
  /// with ConcurrentSim.
  CampaignRunner(const Circuit& c, const FaultUniverse& u, const TestSuite& t,
                 CampaignOptions opt, const MacroFaultMap* mmap = nullptr);

  /// Share an already-built model (the service's model cache): the runner
  /// holds a reference, so the model may outlive the objects it was built
  /// from as long as `model` owns them (see svc::ModelCache).
  CampaignRunner(std::shared_ptr<const SimModel> model, const TestSuite& t,
                 CampaignOptions opt);

  /// Run (or resume) the campaign to completion or halt_after.
  CampaignResult run();

 private:
  void start_fresh();
  void start_resumed();
  /// (Re)build the ShardedSim under the current suspension overlay,
  /// shrinking the overlay until construction fits the element budget.
  void build_sim();
  /// restore_run_state that survives budget overflows the same way.
  void restore_with_budget(const RunStateSnapshot& snap);
  /// Sequence-start reset (the engines' own reset(), which activates the
  /// flip-flop site faults diverging in the initial state), shrinking the
  /// suspension overlay until the rebuilt lists fit the element budget.
  void reset_with_budget();
  /// Park the upper half (by id) of the still-active undetected faults.
  void suspend_half();
  void absorb_status(std::uint64_t suite_pos);
  void write_checkpoint();
  CampaignCheckpoint make_checkpoint() const;
  bool pass_remainder_exists() const;

  const TestSuite& suite_;
  CampaignOptions opt_;
  std::shared_ptr<const SimModel> model_;
  std::unique_ptr<ShardedSim> sim_;

  // Master campaign state (what checkpoints serialize).
  std::vector<Detect> status_;
  std::vector<std::uint64_t> detected_at_;
  std::vector<std::uint8_t> done_;
  std::vector<std::uint8_t> suspended_;
  std::uint64_t det_hard_ = 0;
  std::uint64_t det_potential_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint32_t pass_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t vec_ = 0;
  std::uint64_t pos_ = 0;

  std::uint64_t vectors_run_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t checkpoint_write_retries_ = 0;
  std::uint64_t suite_fp_ = 0;
  bool resumed_mid_sequence_ = false;
};

}  // namespace cfs::resil
