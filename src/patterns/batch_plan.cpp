#include "patterns/batch_plan.h"

#include <algorithm>

#include "util/dualrail.h"

namespace cfs {

BatchPlan BatchPlan::build(const Circuit& c, const TestSuite& t,
                           unsigned width) {
  BatchPlan plan;
  plan.width_ = std::clamp(width, 1u, kMaxBatchLanes);
  plan.comb_ = c.dffs().empty();
  const auto& seqs = t.sequences();

  auto* band = [&plan]() -> BatchBand* {
    plan.bands_.emplace_back();
    return &plan.bands_.back();
  }();
  auto flush_if_full = [&](std::size_t full) {
    if (band->lanes.size() >= full) {
      plan.bands_.emplace_back();
      band = &plan.bands_.back();
    }
  };

  if (plan.comb_) {
    // Free batching: every vector is its own lane, `width` lanes per band,
    // sequence boundaries ignored (an empty sequence still contributes a
    // zero-length lane so its reset keeps its place in the order).
    for (std::uint32_t s = 0; s < seqs.size(); ++s) {
      if (seqs[s].empty()) {
        flush_if_full(plan.width_);
        band->lanes.push_back({s, 0, 0});
        continue;
      }
      for (std::uint32_t v = 0; v < seqs[s].size(); ++v) {
        flush_if_full(plan.width_);
        band->lanes.push_back({s, v, 1});
        band->steps = 1;
      }
    }
  } else {
    // Sequential: one whole sequence per lane, consecutive sequences per
    // band, lock-stepped to the longest lane.
    for (std::uint32_t s = 0; s < seqs.size(); ++s) {
      flush_if_full(plan.width_);
      const auto n = static_cast<std::uint32_t>(seqs[s].size());
      band->lanes.push_back({s, 0, n});
      band->steps = std::max(band->steps, n);
    }
  }
  if (band->lanes.empty()) plan.bands_.pop_back();
  return plan;
}

std::size_t BatchPlan::total_vectors() const {
  std::size_t n = 0;
  for (const BatchBand& b : bands_) {
    for (const BatchLane& l : b.lanes) n += l.count;
  }
  return n;
}

std::size_t BatchPlan::packed_steps() const {
  std::size_t n = 0;
  for (const BatchBand& b : bands_) {
    if (b.lanes.size() > 1) n += b.steps;
  }
  return n;
}

}  // namespace cfs
