// Batch planning: group a test suite's vectors into packed multi-word bands.
//
// The packed good machine (sim/batch_good_sim.h) evaluates up to
// kMaxBatchLanes (256) input vectors per multi-word value; a BatchPlan
// decides which vectors share a band.  Two regimes, chosen by the circuit:
//
//  - Combinational (no flip-flops): a settled state is a pure function of
//    the current vector, so vectors batch freely -- consecutive suite
//    vectors become one-vector lanes of a band, `width` per band, even
//    across sequence boundaries.
//  - Sequential: a vector's settled state depends on the whole prefix of
//    its sequence, so lanes can only be *independent sequences*: a band
//    packs up to `width` consecutive sequences, one whole sequence per
//    lane, stepping all lanes forward frame by frame (lanes shorter than
//    the band's step count idle out).  Within a single sequence the plan
//    falls back to width 1 -- a lone sequence is one single-lane band,
//    which the driver runs on the scalar path.
//
// Traversing a plan band by band, lane by lane, vector by vector
// reproduces the suite's own (sequence, vector) order exactly; drivers
// rely on this to keep detection order and deterministic counters
// bit-identical to the unbatched loop.  Empty sequences are kept as
// zero-length lanes so per-sequence resets still happen in order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "patterns/pattern.h"

namespace cfs {

/// One lane of a band: vectors [begin, begin+count) of suite sequence
/// `seq`.  Combinational plans use count <= 1; sequential plans use whole
/// sequences (begin == 0).
struct BatchLane {
  std::uint32_t seq = 0;
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
};

/// A group of lanes evaluated together: step s of the band packs vector
/// `begin + s` of every lane with `count > s` into one Word64 per signal.
struct BatchBand {
  std::vector<BatchLane> lanes;
  std::uint32_t steps = 0;  ///< max lane count in this band
};

class BatchPlan {
 public:
  /// Plan `t` for circuit `c` at the requested lane width (clamped to
  /// [1, kMaxBatchLanes]).  The circuit decides the regime (see file
  /// comment).
  static BatchPlan build(const Circuit& c, const TestSuite& t,
                         unsigned width);

  std::span<const BatchBand> bands() const { return bands_; }
  unsigned width() const { return width_; }
  /// True when the plan batches individual vectors (no flip-flops).
  bool combinational() const { return comb_; }

  /// Vectors covered by the plan (== t.total_vectors(); sanity checks).
  std::size_t total_vectors() const;
  /// Packed Word64 steps summed over multi-lane bands (slab sizing).
  std::size_t packed_steps() const;

 private:
  std::vector<BatchBand> bands_;
  unsigned width_ = 1;
  bool comb_ = false;
};

}  // namespace cfs
