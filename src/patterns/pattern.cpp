#include "patterns/pattern.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cfs {

void PatternSet::add(std::vector<Val> v) {
  if (num_inputs_ == 0 && vectors_.empty()) num_inputs_ = v.size();
  if (v.size() != num_inputs_) {
    throw Error("PatternSet::add: vector width " + std::to_string(v.size()) +
                " != " + std::to_string(num_inputs_));
  }
  vectors_.push_back(std::move(v));
}

void PatternSet::truncate(std::size_t new_size) {
  if (new_size < vectors_.size()) vectors_.resize(new_size);
}

PatternSet PatternSet::random(std::size_t num_inputs, std::size_t count,
                              std::uint64_t seed, unsigned x_permille) {
  Rng rng(seed);
  PatternSet ps(num_inputs);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<Val> v(num_inputs);
    for (auto& x : v) {
      if (x_permille > 0 && rng.chance(x_permille, 1000)) {
        x = Val::X;
      } else {
        x = rng.chance(1, 2) ? Val::One : Val::Zero;
      }
    }
    ps.add(std::move(v));
  }
  return ps;
}

PatternSet PatternSet::parse(std::string_view text) {
  PatternSet ps;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    std::vector<Val> v;
    v.reserve(line.size());
    for (char ch : line) {
      if (ch != '0' && ch != '1' && ch != 'x' && ch != 'X') {
        throw Error("pattern line " + std::to_string(line_no) +
                    ": invalid character '" + std::string(1, ch) + "'");
      }
      v.push_back(val_from_char(ch));
    }
    try {
      ps.add(std::move(v));
    } catch (const Error&) {
      throw Error("pattern line " + std::to_string(line_no) +
                  ": inconsistent vector width");
    }
  }
  return ps;
}

std::string PatternSet::to_text(std::string_view comment) const {
  std::ostringstream out;
  if (!comment.empty()) out << "# " << comment << "\n";
  for (const auto& v : vectors_) {
    for (Val x : v) out << to_char(x);
    out << "\n";
  }
  return out.str();
}

PatternSet PatternSet::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open pattern file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void PatternSet::save(const std::string& path,
                      std::string_view comment) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write pattern file: " + path);
  out << to_text(comment);
}

std::size_t TestSuite::total_vectors() const {
  std::size_t n = 0;
  for (const PatternSet& s : seqs_) n += s.size();
  return n;
}

void TestSuite::prune_empty() {
  std::erase_if(seqs_, [](const PatternSet& s) { return s.empty(); });
}

TestSuite TestSuite::parse(std::string_view text) {
  TestSuite suite;
  std::string chunk;
  std::size_t pos = 0;
  auto flush = [&] {
    const PatternSet s = PatternSet::parse(chunk);
    if (!s.empty()) suite.seqs_.push_back(s);
    chunk.clear();
  };
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    if (upper(trim(line)) == "RESET") {
      flush();
    } else {
      chunk += line;
      chunk += '\n';
    }
  }
  flush();
  for (const PatternSet& s : suite.seqs_) {
    if (s.num_inputs() != suite.num_inputs()) {
      throw Error("test suite sequences have inconsistent vector widths");
    }
  }
  return suite;
}

std::string TestSuite::to_text(std::string_view comment) const {
  std::ostringstream out;
  if (!comment.empty()) out << "# " << comment << "\n";
  for (std::size_t i = 0; i < seqs_.size(); ++i) {
    if (i) out << "RESET\n";
    out << seqs_[i].to_text();
  }
  return out.str();
}

TestSuite TestSuite::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open pattern file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void TestSuite::save(const std::string& path, std::string_view comment) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write pattern file: " + path);
  out << to_text(comment);
}

}  // namespace cfs
