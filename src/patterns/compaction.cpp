#include "patterns/compaction.h"

#include "core/concurrent_sim.h"

namespace cfs {

namespace {

Coverage simulate(const Circuit& c, const FaultUniverse& u,
                  const std::vector<std::vector<Val>>& vecs, Val ff_init) {
  ConcurrentSim sim(c, u);
  sim.reset(ff_init);
  for (const auto& v : vecs) sim.apply_vector(v);
  return sim.coverage();
}

Coverage simulate_suite(const Circuit& c, const FaultUniverse& u,
                        const TestSuite& t, Val ff_init) {
  ConcurrentSim sim(c, u);
  for (const PatternSet& seq : t.sequences()) {
    sim.reset(ff_init);
    for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
  }
  return sim.coverage();
}

}  // namespace

CompactionResult compact_tests(const Circuit& c, const FaultUniverse& u,
                               const PatternSet& tests,
                               CompactionOptions opt) {
  CompactionResult r;
  r.original_size = tests.size();
  std::vector<std::vector<Val>> cur = tests.vectors();

  ++r.simulations;
  const Coverage base = simulate(c, u, cur, opt.ff_init);

  for (std::size_t pass = 0; pass < opt.max_passes; ++pass) {
    bool shrunk = false;
    for (std::size_t block = opt.block; block >= 1; block /= 2) {
      // Try deleting each aligned block, scanning from the back (late
      // vectors are the most likely to be redundant after dropping).
      std::size_t pos = cur.size() >= block ? cur.size() - block : 0;
      for (;;) {
        if (cur.size() <= block) break;
        std::vector<std::vector<Val>> trial;
        trial.reserve(cur.size() - block);
        trial.insert(trial.end(), cur.begin(),
                     cur.begin() + static_cast<long>(pos));
        trial.insert(trial.end(),
                     cur.begin() + static_cast<long>(pos + block), cur.end());
        ++r.simulations;
        if (simulate(c, u, trial, opt.ff_init).hard >= base.hard) {
          cur = std::move(trial);
          shrunk = true;
          // Stay at the same position: the next block slid into it.
          if (pos + block > cur.size()) {
            pos = cur.size() > block ? cur.size() - block : 0;
          }
        } else if (pos >= block) {
          pos -= block;
        } else {
          break;
        }
      }
      if (block == 1) break;
    }
    if (!shrunk) break;
  }

  r.patterns = PatternSet(tests.num_inputs());
  for (auto& v : cur) r.patterns.add(std::move(v));
  ++r.simulations;
  r.coverage = simulate(c, u, r.patterns.vectors(), opt.ff_init);
  return r;
}

SuiteCompactionResult compact_suite(const Circuit& c, const FaultUniverse& u,
                                    const TestSuite& tests,
                                    CompactionOptions opt) {
  SuiteCompactionResult r;
  r.original_vectors = tests.total_vectors();
  TestSuite cur = tests;
  cur.prune_empty();

  ++r.simulations;
  const Coverage base = simulate_suite(c, u, cur, opt.ff_init);

  // Pass 1: whole-sequence deletion, later sequences first (they usually
  // carry the fewest unique detections).
  for (std::size_t i = cur.num_sequences(); i-- > 0 && cur.num_sequences() > 1;) {
    TestSuite trial = cur;
    trial.sequences().erase(trial.sequences().begin() + static_cast<long>(i));
    ++r.simulations;
    if (simulate_suite(c, u, trial, opt.ff_init).hard >= base.hard) {
      cur = std::move(trial);
    }
  }

  // Pass 2: block-compact each sequence, validating on the whole suite.
  for (std::size_t si = 0; si < cur.num_sequences(); ++si) {
    for (std::size_t block = opt.block; block >= 1; block /= 2) {
      std::size_t pos = cur.sequences()[si].size() >= block
                            ? cur.sequences()[si].size() - block
                            : 0;
      for (;;) {
        PatternSet& seq = cur.sequences()[si];
        if (seq.size() <= block) break;
        TestSuite trial = cur;
        PatternSet edited(seq.num_inputs());
        for (std::size_t k = 0; k < seq.size(); ++k) {
          if (k < pos || k >= pos + block) edited.add(seq[k]);
        }
        trial.sequences()[si] = std::move(edited);
        ++r.simulations;
        if (simulate_suite(c, u, trial, opt.ff_init).hard >= base.hard) {
          cur = std::move(trial);
          if (pos + block > cur.sequences()[si].size()) {
            pos = cur.sequences()[si].size() > block
                      ? cur.sequences()[si].size() - block
                      : 0;
          }
        } else if (pos >= block) {
          pos -= block;
        } else {
          break;
        }
      }
      if (block == 1) break;
    }
  }

  cur.prune_empty();
  r.suite = std::move(cur);
  ++r.simulations;
  r.coverage = simulate_suite(c, u, r.suite, opt.ff_init);
  return r;
}

}  // namespace cfs
