// Simulation-guided sequential test generation.
//
// The paper takes its deterministic test sets from the PROOFS authors
// (Table 3) and from the authors' own sequential test generator [14]
// (Table 4).  Neither is available, so this module produces deterministic
// tests the same way simulation-based sequential ATPGs do: propose random
// input segments, fault-simulate each with the concurrent simulator
// (dogfooding the core engine), keep segments that detect new faults, trim
// useless tails, and *restart* from the reset state when a sequence goes
// stale -- some faults are only excitable from a freshly initialised
// machine, so the result is a TestSuite of independent sequences.  A fixed
// seed makes every test set reproducible.
#pragma once

#include <cstdint>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "netlist/circuit.h"
#include "patterns/pattern.h"

namespace cfs {

struct TgenOptions {
  std::size_t segment_len = 16;    ///< vectors proposed per step
  std::size_t max_vectors = 4096;  ///< hard budget on total test length
  std::size_t stale_limit = 12;    ///< restart after this many useless segments
  std::size_t max_restarts = 6;    ///< additional sequences to try
  std::uint64_t seed = 7;
  Val ff_init = Val::X;
  /// Coverage (in percent of the universe) at which to stop early.
  double target_coverage_pct = 100.0;
};

struct TgenResult {
  TestSuite suite;
  Coverage coverage;  ///< achieved on the given universe
  std::size_t segments_kept = 0;
  std::size_t segments_tried = 0;
  std::size_t restarts = 0;
};

/// Generate a deterministic test suite for the stuck-at universe `u`.
TgenResult generate_tests(const Circuit& c, const FaultUniverse& u,
                          const TgenOptions& opt = {});

}  // namespace cfs
