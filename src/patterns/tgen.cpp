#include "patterns/tgen.h"

#include "util/rng.h"

namespace cfs {

TgenResult generate_tests(const Circuit& c, const FaultUniverse& u,
                          const TgenOptions& opt) {
  Rng rng(opt.seed);
  ConcurrentSim sim(c, u);
  sim.reset(opt.ff_init);

  TgenResult r;
  std::size_t total = 0;

  // Segment proposal: weighted random with occasional input holding, which
  // exercises sequential behaviour better than pure white noise.
  std::vector<Val> v(c.inputs().size(), Val::Zero);
  auto propose = [&](std::vector<std::vector<Val>>& seg) {
    seg.clear();
    for (auto& x : v) x = rng.chance(1, 2) ? Val::One : Val::Zero;
    for (std::size_t i = 0; i < opt.segment_len; ++i) {
      // Flip each input with probability 1/3: correlated successive vectors.
      for (auto& x : v) {
        if (rng.chance(1, 3)) x = x == Val::One ? Val::Zero : Val::One;
      }
      seg.push_back(v);
    }
  };

  std::vector<std::vector<Val>> seg;
  for (std::size_t restart = 0; restart <= opt.max_restarts; ++restart) {
    if (restart > 0) {
      sim.reset(opt.ff_init);  // fresh machine, detection status kept
      ++r.restarts;
    }
    PatternSet seq(c.inputs().size());
    std::size_t last_useful = 0;
    std::size_t stale = 0;
    bool kept_any = false;
    while (total + seq.size() < opt.max_vectors &&
           stale < opt.stale_limit &&
           sim.coverage().pct() < opt.target_coverage_pct) {
      propose(seg);
      ++r.segments_tried;
      std::size_t newly = 0;
      for (const auto& vec : seg) {
        if (total + seq.size() >= opt.max_vectors) break;
        newly += sim.apply_vector(vec);
        seq.add(vec);
        if (newly > 0) last_useful = seq.size();
      }
      if (newly > 0) {
        ++r.segments_kept;
        kept_any = true;
        stale = 0;
      } else {
        ++stale;
      }
    }
    // Trim the useless tail -- prefixes of a sequence remain valid tests.
    seq.truncate(last_useful);
    total += seq.size();
    if (!seq.empty()) r.suite.sequences().push_back(std::move(seq));
    if (total >= opt.max_vectors ||
        sim.coverage().pct() >= opt.target_coverage_pct) {
      break;
    }
    // A restart that contributed nothing signals exhaustion.
    if (restart > 0 && !kept_any) break;
  }

  r.coverage = sim.coverage();
  return r;
}

}  // namespace cfs
