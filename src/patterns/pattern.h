// Test pattern sets: ordered input-vector sequences with text I/O.
//
// Synchronous sequential tests are a single continuous sequence -- every
// fault simulator in the library resets once and then applies the vectors
// in order with a clock between frames -- so a PatternSet is exactly that:
// one vector of PI values per frame.
//
// Text format, one vector per line, characters 0/1/x, '#' comments:
//   # s27, 3 vectors
//   0101
//   1100
//   x011
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.h"
#include "util/logic.h"

namespace cfs {

class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(std::size_t num_inputs) : num_inputs_(num_inputs) {}

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t size() const { return vectors_.size(); }
  bool empty() const { return vectors_.empty(); }

  const std::vector<Val>& operator[](std::size_t i) const {
    return vectors_[i];
  }
  const std::vector<std::vector<Val>>& vectors() const { return vectors_; }

  /// Append one vector; must match num_inputs (throws otherwise).
  void add(std::vector<Val> v);

  /// Drop vectors from `new_size` onward.
  void truncate(std::size_t new_size);

  /// Uniform random patterns; `x_permille` of the values are X.
  static PatternSet random(std::size_t num_inputs, std::size_t count,
                           std::uint64_t seed, unsigned x_permille = 0);

  static PatternSet parse(std::string_view text);
  std::string to_text(std::string_view comment = {}) const;

  static PatternSet load(const std::string& path);
  void save(const std::string& path, std::string_view comment = {}) const;

 private:
  std::size_t num_inputs_ = 0;
  std::vector<std::vector<Val>> vectors_;
};

/// A test suite: one or more vector sequences, each applied from the reset
/// state.  Sequential ATPG uses restarts because some faults are only
/// excitable from a freshly initialised machine.  Text format: sequences
/// separated by a line containing the keyword RESET.
class TestSuite {
 public:
  TestSuite() = default;
  explicit TestSuite(PatternSet single) { seqs_.push_back(std::move(single)); }

  std::vector<PatternSet>& sequences() { return seqs_; }
  const std::vector<PatternSet>& sequences() const { return seqs_; }

  std::size_t num_sequences() const { return seqs_.size(); }
  std::size_t total_vectors() const;
  std::size_t num_inputs() const {
    return seqs_.empty() ? 0 : seqs_.front().num_inputs();
  }
  bool empty() const { return total_vectors() == 0; }

  /// Drop sequences that contain no vectors.
  void prune_empty();

  static TestSuite parse(std::string_view text);
  std::string to_text(std::string_view comment = {}) const;
  static TestSuite load(const std::string& path);
  void save(const std::string& path, std::string_view comment = {}) const;

 private:
  std::vector<PatternSet> seqs_;
};

}  // namespace cfs
