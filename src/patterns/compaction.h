// Static test-set compaction for sequential circuits.
//
// Sequential tests cannot be reordered or thinned arbitrarily -- every
// vector conditions the state the following vectors depend on -- so
// compaction works on *suffix-safe* edits validated by re-simulation:
// repeatedly try to delete a block of vectors and keep the deletion only
// if fault simulation of the edited sequence still achieves the original
// hard-detection count.  This is the simple restoration-style compaction
// widely used with simulation-based sequential test generators.
#pragma once

#include <cstdint>

#include "faults/fault.h"
#include "netlist/circuit.h"
#include "patterns/pattern.h"

namespace cfs {

struct CompactionOptions {
  std::size_t block = 16;   ///< initial deletion-block size (halves down to 1)
  std::size_t max_passes = 4;
  Val ff_init = Val::X;
};

struct CompactionResult {
  PatternSet patterns;
  std::size_t original_size = 0;
  std::size_t simulations = 0;  ///< fault-sim runs spent validating edits
  Coverage coverage;            ///< of the compacted set (same hard count)
};

/// Compact `tests` against the stuck-at universe `u`.  The result detects
/// at least as many faults as the input did.
CompactionResult compact_tests(const Circuit& c, const FaultUniverse& u,
                               const PatternSet& tests,
                               CompactionOptions opt = {});

/// Suite compaction: first tries to delete whole sequences (cheapest win),
/// then block-compacts each surviving sequence, validating every edit by
/// re-simulating the entire suite.
struct SuiteCompactionResult {
  TestSuite suite;
  std::size_t original_vectors = 0;
  std::size_t simulations = 0;
  Coverage coverage;
};
SuiteCompactionResult compact_suite(const Circuit& c, const FaultUniverse& u,
                                    const TestSuite& tests,
                                    CompactionOptions opt = {});

}  // namespace cfs
