// cfs — concurrent fault simulation for synchronous sequential circuits.
//
// Umbrella header for library users: pulls in the whole public API.
// Typical flow:
//
//   #include "cfs.h"
//   using namespace cfs;
//
//   Circuit c = parse_bench_file("design.bench");      // or Builder / gen
//   FaultUniverse faults = FaultUniverse::all_stuck_at(c);
//   TgenResult tests = generate_tests(c, faults);      // or PatternSet I/O
//
//   ConcurrentSim sim(c, faults);                      // csim-V
//   for (const PatternSet& seq : tests.suite.sequences()) {
//     sim.reset();
//     for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
//   }
//   Coverage cov = sim.coverage();
//
// See README.md for macro mode (csim-M/MV), transition faults, baselines,
// dictionaries, and the arbitrary-delay engine.
#pragma once

// Netlist core.
#include "netlist/bench_parser.h"
#include "netlist/bench_writer.h"
#include "netlist/builder.h"
#include "netlist/circuit.h"
#include "netlist/hierarchy.h"
#include "netlist/macro_extract.h"

// Circuit sources.
#include "gen/circuit_gen.h"
#include "gen/iscas_profiles.h"
#include "gen/known_circuits.h"

// Fault model.
#include "faults/fault.h"
#include "faults/macro_map.h"
#include "faults/partition.h"
#include "faults/sampling.h"
#include "faults/transition_model.h"

// Good-machine simulators.
#include "sim/delay_sim.h"
#include "sim/good_sim.h"
#include "sim/parallel_sim.h"
#include "sim/vcd.h"

// The concurrent fault simulators and dictionaries.
#include "core/concurrent_sim.h"
#include "core/delay_concurrent.h"
#include "core/dictionary.h"
#include "core/sim_model.h"

// Sharded multi-threaded driver.
#include "sim/sharded_sim.h"

// Baselines.
#include "baseline/deductive_sim.h"
#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"

// Tests and patterns.
#include "patterns/compaction.h"
#include "patterns/pattern.h"
#include "patterns/tgen.h"

// Experiment harness.
#include "harness/runner.h"
#include "harness/table.h"
