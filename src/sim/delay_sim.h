// Arbitrary-delay two-phase event-driven simulator (timing wheel).
//
// The paper's §2 sketches the general concurrent-simulation mode before
// specialising to zero delay: "events are posted for all changing elements
// after gate evaluation... In the first phase of fault simulation, the
// matured events are fetched to assign logic values to gate outputs...  The
// fanout gate identifiers are entered into a local queue, not the timing
// queue, for the second phase."  This module implements exactly that
// two-phase loop for the good machine over combinational netlists with
// per-gate transport delays; it is the substrate that the concurrent
// paradigm runs on when the synchronous shortcut does not apply.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "util/logic.h"
#include "util/packed_state.h"

namespace cfs {

class DelaySim {
 public:
  /// `delays[g]` is gate g's transport delay in ticks (sources ignore it).
  /// Only combinational circuits are supported; throws on DFFs.
  DelaySim(const Circuit& c, std::vector<std::uint32_t> delays);

  /// Convenience: every gate gets the same delay.
  DelaySim(const Circuit& c, std::uint32_t uniform_delay);

  /// Schedule a primary-input change at the current time.
  void set_input(unsigned pi_index, Val v);

  /// Run the two-phase loop until the wheel is empty or `max_time` is
  /// passed; returns the time of the last processed event.
  std::uint64_t run(std::uint64_t max_time = ~0ull);

  Val value(GateId g) const { return state_out(states_[g]); }
  std::uint64_t now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Force a stuck-at value at a site (`pin == 0xFFFF` = the gate output).
  /// Must be called before any set_input/run activity: the fault is present
  /// from t=0.  Used as the serial reference for the arbitrary-delay
  /// concurrent engine.
  void inject(GateId gate, std::uint16_t pin, Val v);

  /// Recorded output-change history (time, gate, new value) -- used by the
  /// tests to check glitch timing.
  struct Change {
    std::uint64_t time;
    GateId gate;
    Val val;
  };
  const std::vector<Change>& history() const { return history_; }
  void clear_history() { history_.clear(); }

 private:
  struct Event {
    GateId gate;
    Val val;
  };

  void post(std::uint64_t t, GateId g, Val v);

  Val evaluate(GateId g) const;

  const Circuit* c_;
  std::vector<std::uint32_t> delays_;
  std::vector<GateState> states_;
  std::vector<Val> last_posted_;
  bool inj_active_ = false;
  GateId inj_gate_ = kNoGate;
  std::uint16_t inj_pin_ = 0xFFFF;
  Val inj_val_ = Val::X;
  // Timing wheel with overflow: slot = time % wheel size.
  static constexpr std::size_t kWheelSize = 256;
  std::vector<std::vector<Event>> wheel_;
  std::vector<std::pair<std::uint64_t, Event>> overflow_;
  std::uint64_t now_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Change> history_;
};

}  // namespace cfs
