// Value-change-dump (VCD) export for waveform viewers.
//
// The arbitrary-delay simulator records (time, gate, value) changes; this
// writer turns a circuit plus such a history into a standard VCD document
// that GTKWave and friends can display.  Three-valued values map to
// 0/1/x scalars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "sim/delay_sim.h"
#include "util/logic.h"

namespace cfs {

class VcdWriter {
 public:
  /// Declares one scalar wire per gate of `c`.
  explicit VcdWriter(const Circuit& c, std::string timescale = "1ns");

  /// Append a value change.  Times must be non-decreasing.
  void record(std::uint64_t time, GateId g, Val v);

  /// The complete VCD document (header, initial all-X dump, changes).
  std::string str() const;

 private:
  std::string id_of(GateId g) const;

  const Circuit* c_;
  std::string timescale_;
  struct Change {
    std::uint64_t time;
    GateId gate;
    Val val;
  };
  std::vector<Change> changes_;
};

/// Convenience: convert a DelaySim history into a VCD document.
std::string delay_history_to_vcd(const Circuit& c,
                                 const std::vector<DelaySim::Change>& history,
                                 std::string timescale = "1ns");

}  // namespace cfs
