// Packed 64-lane three-valued good-machine simulator.
//
// Evaluates 64 independent input vectors at once: every gate output is one
// dual-rail Word64 (util/dualrail.h), lane i of every word belonging to the
// same vector.  Lane semantics are exactly GoodSim's scalar semantics --
// reset / set_input / settle / clock follow the same commit-on-change,
// levelized event-driven discipline over the same LevelQueue, so slicing
// lane i out of a settled BatchGoodSim yields bit-for-bit the values a
// GoodSim fed vector i would hold.  The batch driver (sim/sharded_sim.cpp)
// relies on this to serve per-lane good values to the concurrent fault
// machines as an oracle.
//
// Basic gates reduce with the bitwise w_and/w_or/w_not/w_xor ops; Macro
// gates have no word-parallel form and evaluate lane by lane through the
// circuit's truth-table path (the per-lane oracle), which costs no more
// than 64 scalar evaluations -- exactly what 64 scalar machines would do.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "obs/counters.h"
#include "sim/level_queue.h"
#include "util/dualrail.h"
#include "util/logic.h"

namespace cfs {

class BatchGoodSim {
 public:
  explicit BatchGoodSim(const Circuit& c, Val ff_init = Val::X);

  const Circuit& circuit() const { return *c_; }

  /// Re-initialise every lane: primary inputs X, flip-flops `ff_init`, all
  /// gates re-evaluated (one topo sweep), pending events discarded.
  void reset(Val ff_init = Val::X);

  /// Drive primary input `pi_index` (position in circuit().inputs()) with
  /// one value per lane.
  void set_input(unsigned pi_index, Word64 w);

  /// Propagate all pending combinational events (zero-delay settle).
  void settle();

  /// Latch every DFF from its settled D word, then settle the fanout cone.
  void clock();

  /// Settled output word of a gate.
  Word64 value(GateId g) const { return out_[g]; }
  /// All gate output words, indexed by GateId (slab copy for the driver).
  std::span<const Word64> values() const { return out_; }

  /// Gates evaluated since construction (activity metric).
  std::uint64_t events_processed() const { return queue_.processed(); }

  /// Telemetry (BatchWordsEvaluated plus the queue's scheduling counts;
  /// all-zero when built with CFS_OBS=OFF).
  obs::Counters counters() const {
    obs::Counters c = counters_;
    c.merge(queue_.counters());
    return c;
  }

  std::size_t bytes() const {
    return out_.capacity() * sizeof(Word64) +
           latch_buf_.capacity() * sizeof(Word64) + queue_.bytes();
  }

 private:
  Word64 eval_packed(GateId g);
  void commit_output(GateId g, Word64 w);

  const Circuit* c_;
  std::vector<Word64> out_;      // per gate: 64-lane output word
  LevelQueue queue_;
  std::vector<Word64> latch_buf_;  // scratch for two-phase DFF latching
  obs::Counters counters_;
};

}  // namespace cfs
