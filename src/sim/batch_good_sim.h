// Packed multi-word three-valued good-machine simulator (up to 256 lanes).
//
// Evaluates up to kMaxBatchLanes (256) independent input vectors at once:
// every gate output is `words_per_gate()` consecutive dual-rail Word64s
// (util/dualrail.h), lane i of every gate's value living in word i/64, bit
// i%64.  Lane semantics are exactly GoodSim's scalar semantics -- reset /
// set_input / settle / clock follow the same commit-on-change, levelized
// event-driven discipline over the same LevelQueue, so slicing lane i out
// of a settled BatchGoodSim yields bit-for-bit the values a GoodSim fed
// vector i would hold.  The batch driver (sim/sharded_sim.cpp) relies on
// this to serve per-lane good values to the concurrent fault machines as
// an oracle.
//
// Basic gates reduce with the word-wise wn_and/wn_or/wn_not/wn_xor ops
// (one 256-bit pass per rail on AVX2 at full width); Macro gates have no
// word-parallel form and evaluate lane by lane through the circuit's
// truth-table path (the per-lane oracle), which costs no more than `lanes`
// scalar evaluations -- exactly what `lanes` scalar machines would do.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "obs/counters.h"
#include "sim/level_queue.h"
#include "util/dualrail.h"
#include "util/logic.h"

namespace cfs {

class BatchGoodSim {
 public:
  /// `lanes` is clamped to [1, kMaxBatchLanes] and rounded up to a whole
  /// number of 64-lane words; words_per_gate() reports the result.
  explicit BatchGoodSim(const Circuit& c, Val ff_init = Val::X,
                        unsigned lanes = 64);

  const Circuit& circuit() const { return *c_; }

  /// Words per gate value (1..kMaxBatchWords); lane capacity is 64x this.
  unsigned words_per_gate() const { return words_; }
  unsigned lanes() const { return words_ * 64; }

  /// Re-initialise every lane: primary inputs X, flip-flops `ff_init`, all
  /// gates re-evaluated (one topo sweep), pending events discarded.
  void reset(Val ff_init = Val::X);

  /// Drive primary input `pi_index` (position in circuit().inputs()) with
  /// one value per lane; `w` points at words_per_gate() words.
  void set_input(unsigned pi_index, const Word64* w);
  /// Single-word convenience form (words_per_gate() == 1 machines).
  void set_input(unsigned pi_index, Word64 w) { set_input(pi_index, &w); }

  /// Propagate all pending combinational events (zero-delay settle).
  void settle();

  /// Latch every DFF from its settled D word, then settle the fanout cone.
  void clock();

  /// Settled first output word of a gate (all there is at 64 lanes).
  Word64 value(GateId g) const { return out_[std::size_t{g} * words_]; }
  /// Settled output words of a gate (words_per_gate() entries).
  const Word64* value_words(GateId g) const {
    return out_.data() + std::size_t{g} * words_;
  }
  /// All gate output words, words_per_gate() consecutive words per gate,
  /// indexed by GateId * words_per_gate() (slab copy for the driver).
  std::span<const Word64> values() const { return out_; }

  /// Gates evaluated since construction (activity metric).
  std::uint64_t events_processed() const { return queue_.processed(); }

  /// Telemetry (BatchWordsEvaluated plus the queue's scheduling counts;
  /// all-zero when built with CFS_OBS=OFF).
  obs::Counters counters() const {
    obs::Counters c = counters_;
    c.merge(queue_.counters());
    return c;
  }

  std::size_t bytes() const {
    return out_.capacity() * sizeof(Word64) +
           latch_buf_.capacity() * sizeof(Word64) + queue_.bytes();
  }

 private:
  // Evaluates into eval_buf_; returns its data() for commit comparison.
  // The W-templated form lets the word loops unroll (W == 1, the common
  // --batch<=64 shape, compiles down to the single-word ops); the runtime
  // dispatcher picks the instantiation matching words_.
  template <unsigned W>
  const Word64* eval_packed_t(GateId g);
  const Word64* eval_packed(GateId g);
  template <unsigned W>
  void settle_t();
  void commit_output(GateId g, const Word64* w);

  const Circuit* c_;
  unsigned words_ = 1;
  std::vector<Word64> out_;        // per gate: words_ output words
  LevelQueue queue_;
  std::vector<Word64> eval_buf_;   // words_ scratch words for eval_packed
  std::vector<Word64> latch_buf_;  // scratch for two-phase DFF latching
  obs::Counters counters_;
};

}  // namespace cfs
