#include "sim/parallel_sim.h"

#include "util/error.h"

namespace cfs {

ParallelSim::ParallelSim(const Circuit& c, Val ff_init) : c_(&c) {
  vals_.resize(c.num_gates());
  reset(ff_init);
}

void ParallelSim::reset(Val ff_init) {
  for (GateId g = 0; g < c_->num_gates(); ++g) vals_[g] = splat64(Val::X);
  for (GateId g : c_->dffs()) vals_[g] = splat64(ff_init);
  settle();
}

void ParallelSim::set_inputs(std::span<const Word64> vals) {
  if (vals.size() != c_->inputs().size()) {
    throw Error("ParallelSim::set_inputs: wrong input count");
  }
  for (std::size_t i = 0; i < vals.size(); ++i) {
    vals_[c_->inputs()[i]] = vals[i];
  }
}

Word64 ParallelSim::evaluate(GateId g) const {
  const auto fi = c_->fanins(g);
  switch (c_->kind(g)) {
    case GateKind::Input:
    case GateKind::Dff:
      return vals_[g];
    case GateKind::Buf:
      return vals_[fi[0]];
    case GateKind::Not:
      return w_not(vals_[fi[0]]);
    case GateKind::And:
    case GateKind::Nand: {
      Word64 r = splat64(Val::One);
      for (GateId f : fi) r = w_and(r, vals_[f]);
      return c_->kind(g) == GateKind::And ? r : w_not(r);
    }
    case GateKind::Or:
    case GateKind::Nor: {
      Word64 r = splat64(Val::Zero);
      for (GateId f : fi) r = w_or(r, vals_[f]);
      return c_->kind(g) == GateKind::Or ? r : w_not(r);
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      Word64 r = splat64(Val::Zero);
      for (GateId f : fi) r = w_xor(r, vals_[f]);
      return c_->kind(g) == GateKind::Xor ? r : w_not(r);
    }
    case GateKind::Macro: {
      // Lane-by-lane table lookup; macros are rare in parallel mode.
      const TruthTable& t = c_->table(c_->table_of(g));
      Word64 out{};
      for (unsigned lane = 0; lane < 64; ++lane) {
        std::uint32_t idx = 0;
        for (std::size_t p = 0; p < fi.size(); ++p) {
          idx |= static_cast<std::uint32_t>(code(w_get(vals_[fi[p]], lane)))
                 << (2 * p);
        }
        w_set(out, lane, t.eval(idx));
      }
      return out;
    }
  }
  return splat64(Val::X);
}

void ParallelSim::settle() {
  for (GateId g : c_->topo_order()) vals_[g] = evaluate(g);
}

void ParallelSim::clock() {
  std::vector<Word64> latched;
  latched.reserve(c_->dffs().size());
  for (GateId g : c_->dffs()) latched.push_back(vals_[c_->fanins(g)[0]]);
  std::size_t i = 0;
  for (GateId g : c_->dffs()) vals_[g] = latched[i++];
  settle();
}

Word64 ParallelSim::output(unsigned po_index) const {
  return vals_[c_->outputs()[po_index]];
}

}  // namespace cfs
