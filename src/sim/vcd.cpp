#include "sim/vcd.h"

#include <sstream>

#include "util/error.h"

namespace cfs {

VcdWriter::VcdWriter(const Circuit& c, std::string timescale)
    : c_(&c), timescale_(std::move(timescale)) {}

std::string VcdWriter::id_of(GateId g) const {
  // Base-94 over the printable identifier alphabet '!'..'~'.
  std::string id;
  std::uint32_t v = g;
  do {
    id.push_back(static_cast<char>('!' + v % 94));
    v /= 94;
  } while (v != 0);
  return id;
}

void VcdWriter::record(std::uint64_t time, GateId g, Val v) {
  if (!changes_.empty() && time < changes_.back().time) {
    throw Error("VcdWriter: change times must be non-decreasing");
  }
  changes_.push_back({time, g, v});
}

std::string VcdWriter::str() const {
  std::ostringstream out;
  out << "$date cfs $end\n";
  out << "$version cfs concurrent fault simulator $end\n";
  out << "$timescale " << timescale_ << " $end\n";
  out << "$scope module " << c_->name() << " $end\n";
  for (GateId g = 0; g < c_->num_gates(); ++g) {
    out << "$var wire 1 " << id_of(g) << " " << c_->gate_name(g)
        << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";
  out << "$dumpvars\n";
  for (GateId g = 0; g < c_->num_gates(); ++g) {
    out << 'x' << id_of(g) << "\n";
  }
  out << "$end\n";
  std::uint64_t cur = ~0ull;
  for (const Change& ch : changes_) {
    if (ch.time != cur) {
      cur = ch.time;
      out << '#' << cur << "\n";
    }
    out << to_char(ch.val) << id_of(ch.gate) << "\n";
  }
  return out.str();
}

std::string delay_history_to_vcd(const Circuit& c,
                                 const std::vector<DelaySim::Change>& history,
                                 std::string timescale) {
  VcdWriter w(c, std::move(timescale));
  for (const auto& ch : history) w.record(ch.time, ch.gate, ch.val);
  return w.str();
}

}  // namespace cfs
