#include "sim/batch_good_sim.h"

#include "util/error.h"
#include "util/packed_state.h"

namespace cfs {

BatchGoodSim::BatchGoodSim(const Circuit& c, Val ff_init)
    : c_(&c), queue_(c) {
  out_.resize(c.num_gates());
  latch_buf_.resize(c.dffs().size());
  reset(ff_init);
}

Word64 BatchGoodSim::eval_packed(GateId g) {
  CFS_COUNT(counters_, BatchWordsEvaluated);
  const auto fi = c_->fanins(g);
  const GateKind k = c_->kind(g);
  switch (k) {
    case GateKind::Buf:
      return out_[fi[0]];
    case GateKind::Not:
      return w_not(out_[fi[0]]);
    case GateKind::And:
    case GateKind::Nand: {
      Word64 w = out_[fi[0]];
      for (std::size_t i = 1; i < fi.size(); ++i) w = w_and(w, out_[fi[i]]);
      return k == GateKind::Nand ? w_not(w) : w;
    }
    case GateKind::Or:
    case GateKind::Nor: {
      Word64 w = out_[fi[0]];
      for (std::size_t i = 1; i < fi.size(); ++i) w = w_or(w, out_[fi[i]]);
      return k == GateKind::Nor ? w_not(w) : w;
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      Word64 w = out_[fi[0]];
      for (std::size_t i = 1; i < fi.size(); ++i) w = w_xor(w, out_[fi[i]]);
      return k == GateKind::Xnor ? w_not(w) : w;
    }
    case GateKind::Macro: {
      // No word-parallel form: evaluate each lane through the scalar
      // truth-table path, the same per-lane oracle the fault machines use.
      Word64 w;
      GateState st = state_all_x(static_cast<unsigned>(fi.size()));
      for (unsigned lane = 0; lane < 64; ++lane) {
        for (std::size_t p = 0; p < fi.size(); ++p) {
          st = state_set(st, static_cast<unsigned>(p),
                         w_get(out_[fi[p]], lane));
        }
        w_set(w, lane, c_->eval(g, st));
      }
      return w;
    }
    case GateKind::Input:
    case GateKind::Dff:
      break;  // sources are committed, never evaluated
  }
  return out_[g];
}

void BatchGoodSim::commit_output(GateId g, Word64 w) {
  out_[g] = w;
  for (const Fanout& fo : c_->fanouts(g)) {
    if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
  }
}

void BatchGoodSim::reset(Val ff_init) {
  queue_.clear();
  const Word64 x = splat64(Val::X);
  for (Word64& w : out_) w = x;
  const Word64 q0 = splat64(ff_init);
  for (GateId g : c_->dffs()) out_[g] = q0;
  for (GateId g : c_->topo_order()) out_[g] = eval_packed(g);
}

void BatchGoodSim::set_input(unsigned pi_index, Word64 w) {
  const GateId g = c_->inputs()[pi_index];
  if (!(out_[g] == w)) commit_output(g, w);
}

void BatchGoodSim::settle() {
  queue_.drain([this](GateId g) {
    const Word64 w = eval_packed(g);
    if (!(out_[g] == w)) commit_output(g, w);
  });
}

void BatchGoodSim::clock() {
  const auto dffs = c_->dffs();
  // Phase 1 (master): capture every D word from the settled state.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    latch_buf_[i] = out_[c_->fanins(dffs[i])[0]];
  }
  // Phase 2 (slave): drive Q words and settle the cone.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    if (!(out_[dffs[i]] == latch_buf_[i])) {
      commit_output(dffs[i], latch_buf_[i]);
    }
  }
  settle();
}

}  // namespace cfs
