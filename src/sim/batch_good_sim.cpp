#include "sim/batch_good_sim.h"

#include <algorithm>

#include "util/error.h"
#include "util/packed_state.h"

namespace cfs {

BatchGoodSim::BatchGoodSim(const Circuit& c, Val ff_init, unsigned lanes)
    : c_(&c), queue_(c) {
  const unsigned clamped = std::clamp(lanes, 1u, kMaxBatchLanes);
  words_ = (clamped + 63) / 64;
  out_.resize(c.num_gates() * std::size_t{words_});
  eval_buf_.resize(words_);
  latch_buf_.resize(c.dffs().size() * std::size_t{words_});
  reset(ff_init);
}

template <unsigned W>
const Word64* BatchGoodSim::eval_packed_t(GateId g) {
  CFS_COUNT_N(counters_, BatchWordsEvaluated, W);
  const auto fi = c_->fanins(g);
  const GateKind k = c_->kind(g);
  Word64* w = eval_buf_.data();
  auto in = [this](GateId f) { return out_.data() + std::size_t{f} * W; };
  switch (k) {
    case GateKind::Buf:
      wn_copy(w, in(fi[0]), W);
      return w;
    case GateKind::Not:
      wn_copy(w, in(fi[0]), W);
      wn_not(w, W);
      return w;
    case GateKind::And:
    case GateKind::Nand: {
      wn_copy(w, in(fi[0]), W);
      for (std::size_t i = 1; i < fi.size(); ++i) wn_and(w, in(fi[i]), W);
      if (k == GateKind::Nand) wn_not(w, W);
      return w;
    }
    case GateKind::Or:
    case GateKind::Nor: {
      wn_copy(w, in(fi[0]), W);
      for (std::size_t i = 1; i < fi.size(); ++i) wn_or(w, in(fi[i]), W);
      if (k == GateKind::Nor) wn_not(w, W);
      return w;
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      wn_copy(w, in(fi[0]), W);
      for (std::size_t i = 1; i < fi.size(); ++i) wn_xor(w, in(fi[i]), W);
      if (k == GateKind::Xnor) wn_not(w, W);
      return w;
    }
    case GateKind::Macro: {
      // No word-parallel form: evaluate each lane through the scalar
      // truth-table path, the same per-lane oracle the fault machines use.
      GateState st = state_all_x(static_cast<unsigned>(fi.size()));
      for (unsigned lane = 0; lane < W * 64; ++lane) {
        for (std::size_t p = 0; p < fi.size(); ++p) {
          st = state_set(st, static_cast<unsigned>(p),
                         wn_get(in(fi[p]), lane));
        }
        wn_set(w, lane, c_->eval(g, st));
      }
      return w;
    }
    case GateKind::Input:
    case GateKind::Dff:
      break;  // sources are committed, never evaluated
  }
  wn_copy(w, in(g), W);
  return w;
}

const Word64* BatchGoodSim::eval_packed(GateId g) {
  switch (words_) {
    case 1: return eval_packed_t<1>(g);
    case 2: return eval_packed_t<2>(g);
    case 3: return eval_packed_t<3>(g);
    default: return eval_packed_t<4>(g);
  }
}

void BatchGoodSim::commit_output(GateId g, const Word64* w) {
  wn_copy(out_.data() + std::size_t{g} * words_, w, words_);
  for (const Fanout& fo : c_->fanouts(g)) {
    if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
  }
}

void BatchGoodSim::reset(Val ff_init) {
  queue_.clear();
  const Word64 x = splat64(Val::X);
  for (Word64& w : out_) w = x;
  for (GateId g : c_->dffs()) {
    wn_splat(out_.data() + std::size_t{g} * words_, words_, ff_init);
  }
  for (GateId g : c_->topo_order()) {
    wn_copy(out_.data() + std::size_t{g} * words_, eval_packed(g), words_);
  }
}

void BatchGoodSim::set_input(unsigned pi_index, const Word64* w) {
  const GateId g = c_->inputs()[pi_index];
  if (!wn_eq(out_.data() + std::size_t{g} * words_, w, words_)) {
    commit_output(g, w);
  }
}

template <unsigned W>
void BatchGoodSim::settle_t() {
  queue_.drain([this](GateId g) {
    const Word64* w = eval_packed_t<W>(g);
    if (!wn_eq(out_.data() + std::size_t{g} * W, w, W)) {
      commit_output(g, w);
    }
  });
}

void BatchGoodSim::settle() {
  switch (words_) {
    case 1: settle_t<1>(); break;
    case 2: settle_t<2>(); break;
    case 3: settle_t<3>(); break;
    default: settle_t<4>(); break;
  }
}

void BatchGoodSim::clock() {
  const auto dffs = c_->dffs();
  const unsigned W = words_;
  // Phase 1 (master): capture every D word from the settled state.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    wn_copy(latch_buf_.data() + i * W,
            out_.data() + std::size_t{c_->fanins(dffs[i])[0]} * W, W);
  }
  // Phase 2 (slave): drive Q words and settle the cone.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    if (!wn_eq(out_.data() + std::size_t{dffs[i]} * W, latch_buf_.data() + i * W,
               W)) {
      commit_output(dffs[i], latch_buf_.data() + i * W);
    }
  }
  settle();
}

}  // namespace cfs
