#include "sim/delay_sim.h"

#include <algorithm>

#include "util/error.h"

namespace cfs {

DelaySim::DelaySim(const Circuit& c, std::vector<std::uint32_t> delays)
    : c_(&c), delays_(std::move(delays)) {
  if (!c.dffs().empty()) {
    throw Error("DelaySim supports combinational circuits only");
  }
  if (delays_.size() != c.num_gates()) {
    throw Error("DelaySim: delay vector size mismatch");
  }
  for (std::uint32_t d : delays_) {
    if (d == 0) throw Error("DelaySim: zero delays are not representable");
  }
  states_.resize(c.num_gates());
  last_posted_.assign(c.num_gates(), Val::X);
  wheel_.resize(kWheelSize);
  for (GateId g = 0; g < c.num_gates(); ++g) {
    states_[g] = state_all_x(c.num_fanins(g));
  }
}

DelaySim::DelaySim(const Circuit& c, std::uint32_t uniform_delay)
    : DelaySim(c, std::vector<std::uint32_t>(c.num_gates(), uniform_delay)) {}

void DelaySim::post(std::uint64_t t, GateId g, Val v) {
  if (last_posted_[g] == v) return;  // suppressed: no change vs last post
  last_posted_[g] = v;
  ++pending_;
  if (t - now_ < kWheelSize) {
    wheel_[t % kWheelSize].push_back({g, v});
  } else {
    overflow_.emplace_back(t, Event{g, v});
  }
}

void DelaySim::set_input(unsigned pi_index, Val v) {
  const GateId g = c_->inputs()[pi_index];
  if (inj_active_ && inj_gate_ == g && inj_pin_ == 0xFFFF) v = inj_val_;
  post(now_, g, v);
}

std::uint64_t DelaySim::run(std::uint64_t max_time) {
  std::uint64_t last_event_time = now_;
  std::vector<GateId> activated;  // phase-2 local queue
  while (pending_ > 0 && now_ <= max_time) {
    // Refill the wheel slot for `now_` from overflow when it comes in range.
    if (!overflow_.empty()) {
      auto it = overflow_.begin();
      while (it != overflow_.end()) {
        if (it->first - now_ < kWheelSize) {
          wheel_[it->first % kWheelSize].push_back(it->second);
          it = overflow_.erase(it);
        } else {
          ++it;
        }
      }
    }
    auto& slot = wheel_[now_ % kWheelSize];
    if (slot.empty()) {
      ++now_;
      continue;
    }
    // Phase 1: assign matured values; collect activated fanout gates.
    activated.clear();
    for (const Event& ev : slot) {
      --pending_;
      ++processed_;
      if (state_out(states_[ev.gate]) == ev.val) continue;
      states_[ev.gate] = state_set_out(states_[ev.gate], ev.val);
      history_.push_back({now_, ev.gate, ev.val});
      last_event_time = now_;
      for (const Fanout& fo : c_->fanouts(ev.gate)) {
        states_[fo.gate] = state_set(states_[fo.gate], fo.pin, ev.val);
        if (std::find(activated.begin(), activated.end(), fo.gate) ==
            activated.end()) {
          activated.push_back(fo.gate);
        }
      }
    }
    slot.clear();
    // Phase 2: evaluate activated gates, post future events.
    for (GateId g : activated) {
      post(now_ + delays_[g], g, evaluate(g));
    }
    ++now_;
  }
  return last_event_time;
}

Val DelaySim::evaluate(GateId g) const {
  GateState s = states_[g];
  if (inj_active_ && inj_gate_ == g && inj_pin_ != 0xFFFF) {
    s = state_set(s, inj_pin_, inj_val_);
  }
  Val v = c_->eval(g, s);
  if (inj_active_ && inj_gate_ == g && inj_pin_ == 0xFFFF) v = inj_val_;
  return v;
}

void DelaySim::inject(GateId gate, std::uint16_t pin, Val v) {
  inj_active_ = true;
  inj_gate_ = gate;
  inj_pin_ = pin;
  inj_val_ = v;
  if (pin == 0xFFFF) {
    if (c_->kind(gate) == GateKind::Input) {
      post(now_, gate, v);  // a stuck PI is just a forced input
    } else {
      // The stuck output asserts itself after the gate's delay.
      post(now_ + delays_[gate], gate, v);
    }
  } else {
    // A stuck pin flows through the gate's evaluation.
    post(now_ + delays_[gate], gate, evaluate(gate));
  }
}

}  // namespace cfs
