// 64-sequence bit-parallel good-machine simulator.
//
// Each of the 64 lanes carries an independent input sequence through the
// same circuit (dual-rail three-valued words, see util/dualrail.h).  A full
// levelized sweep per frame -- no event suppression -- which makes it a
// simple, independent oracle for cross-checking the event-driven GoodSim,
// and a fast engine for random-pattern experiments.
#pragma once

#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "util/dualrail.h"

namespace cfs {

class ParallelSim {
 public:
  explicit ParallelSim(const Circuit& c, Val ff_init = Val::X);

  void reset(Val ff_init = Val::X);

  /// One word (64 lanes) per primary input.
  void set_inputs(std::span<const Word64> vals);

  /// Full combinational sweep in topo order.
  void settle();

  /// Latch all DFFs from their settled D words.
  void clock();

  Word64 value(GateId g) const { return vals_[g]; }
  Word64 output(unsigned po_index) const;

 private:
  Word64 evaluate(GateId g) const;

  const Circuit* c_;
  std::vector<Word64> vals_;
};

}  // namespace cfs
