#include "sim/sharded_sim.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <numeric>

#include "patterns/batch_plan.h"
#include "sim/batch_good_sim.h"
#include "util/dualrail.h"
#include "util/error.h"
#include "util/pool.h"

namespace cfs {

namespace {

unsigned clamp_shards(unsigned num_threads, std::size_t num_faults) {
  unsigned k = num_threads == 0 ? 1 : num_threads;
  const std::size_t cap = num_faults == 0 ? 1 : num_faults;
  if (k > cap) k = static_cast<unsigned>(cap);
  return k;
}

}  // namespace

ShardedSim::ShardedSim(const Circuit& c, const FaultUniverse& u,
                       ShardedOptions opt, const MacroFaultMap* mmap)
    : ShardedSim(std::make_shared<SimModel>(c, u, mmap), opt) {}

ShardedSim::ShardedSim(std::shared_ptr<const SimModel> model,
                       ShardedOptions opt)
    : model_(std::move(model)),
      opt_(opt),
      part_(model_->num_faults(),
            clamp_shards(opt.num_threads, model_->num_faults())),
      pool_(part_.num_shards()),
      suspended_(std::move(opt_.suspended)) {
  const unsigned k = part_.num_shards();
  engines_.resize(k);
  shard_obs_.resize(k);
  // Shard construction includes the initial reset (a full good-machine
  // sweep plus fault activation), so build the engines in parallel too.
  pool_.parallel_for(k, [&](std::size_t s) {
    engines_[s] = make_shard_engine(static_cast<unsigned>(s));
  });
}

ShardedSim::~ShardedSim() {
  // Abandoned workers hold raw pointers into their graveyard engines, so
  // join every thread before the engines (members of the same structs)
  // destruct.  A stalled shard wakes up eventually; this is where we wait.
  for (Abandoned& a : graveyard_) {
    if (a.worker.joinable()) a.worker.join();
  }
}

CsimOptions ShardedSim::shard_csim_options(unsigned s) const {
  CsimOptions copt = opt_.csim;
  const unsigned k = part_.num_shards();
  // Each shard's element pool is pre-sized from its own slice of the
  // universe (+1 for the sentinel) unless the caller already gave a hint.
  if (copt.reserve_elements == 0) {
    copt.reserve_elements = part_.shard_size(s) + 1;
  }
  // The element budget is a universe-wide ceiling: divide it across the
  // shards (the floor of 2 keeps a degenerate split able to hold at least
  // one real element per shard).
  if (copt.max_elements != 0 && k > 1) {
    copt.max_elements = std::max<std::size_t>(copt.max_elements / k, 2);
  }
  return copt;
}

std::unique_ptr<ConcurrentSim> ShardedSim::make_shard_engine(
    unsigned s) const {
  const CsimOptions copt = shard_csim_options(s);
  const std::vector<std::uint8_t>* susp =
      suspended_.empty() ? nullptr : &suspended_;
  // A single shard covering the whole universe gets no partition filter at
  // all: ShardedSim with --threads 1 *is* plain ConcurrentSim.
  if (part_.num_shards() == 1) {
    return std::make_unique<ConcurrentSim>(model_, copt, nullptr, 0, susp);
  }
  return std::make_unique<ConcurrentSim>(model_, copt, &part_, s, susp);
}

void ShardedSim::reset(Val ff_init, bool clear_status) {
  pool_.parallel_for(engines_.size(), [&](std::size_t s) {
    engines_[s]->reset(ff_init, clear_status);
  });
  merged_dirty_ = true;
}

std::size_t ShardedSim::apply_vector(std::span<const Val> pi_vals) {
  // The containment path is incompatible with detection observers: an
  // abandoned worker could still be appending to its observation buffer
  // while the requeued attempt records into the same slot.
  if (opt_.resil.max_retries > 0 && !observer_) {
    return apply_vector_resilient(pi_vals);
  }
  const std::size_t k = engines_.size();
  const std::uint64_t vec_no = vec_base_ + vectors_applied_;
  const bool sampling = timeline_ != nullptr && timeline_->want(vec_no);
  const std::uint64_t started_us = sampling ? timeline_->now_us() : 0;
  std::vector<std::size_t> newly(k, 0);
  pool_.parallel_for(k, [&](std::size_t s) {
    shard_obs_[s].clear();
    const bool timing = trace_ != nullptr || sampling;
    const std::uint64_t t0 =
        timing ? (trace_ ? trace_->now_us() : timeline_->now_us()) : 0;
    if (opt_.resil.injector != nullptr) {
      opt_.resil.injector->maybe_fire(static_cast<unsigned>(s),
                                      vectors_applied_);
    }
    newly[s] = engines_[s]->apply_vector(pi_vals);
    const std::uint64_t t1 =
        timing ? (trace_ ? trace_->now_us() : timeline_->now_us()) : 0;
    if (sampling) shard_latency_us_[s] = t1 - t0;
    if (trace_) {
      const auto tid = static_cast<std::uint32_t>(s);
      trace_->complete(tid, "vector", t0, t1 - t0);
      if (newly[s] > 0) {
        trace_->instant(tid, "detect x" + std::to_string(newly[s]), t1);
      }
    }
  });
  ++vectors_applied_;
  merged_dirty_ = true;
  if (observer_) replay_observations();
  if (sampling) record_sample(vec_no, started_us);
  maybe_rebalance();
  std::size_t total = 0;
  for (std::size_t n : newly) total += n;  // shards are disjoint: exact sum
  return total;
}

std::size_t ShardedSim::apply_vector_resilient(std::span<const Val> pi_vals) {
  const std::size_t k = engines_.size();
  // Boundary state: what a failed or hung shard's retry restarts from.
  // Captured per shard so a retry only rebuilds the shard that failed.
  std::vector<RunStateSnapshot> snaps(k);
  std::vector<std::vector<Detect>> snap_status(k);
  for (std::size_t s = 0; s < k; ++s) {
    snaps[s] = engines_[s]->capture_run_state();
    snap_status[s] = engines_[s]->status();
  }
  // The vector outlives this call if a worker hangs, so the abandoned
  // thread must not read through the caller's span.
  const auto pis = std::make_shared<const std::vector<Val>>(pi_vals.begin(),
                                                            pi_vals.end());
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t completed = 0;
  };
  struct Task {
    ConcurrentSim* engine = nullptr;
    std::shared_ptr<const std::vector<Val>> pis;
    std::size_t newly = 0;
    std::uint64_t latency_us = 0;
    std::exception_ptr error;
    bool done = false;  // guarded by the round's Sync::mu
  };

  const std::uint64_t vec_no = vectors_applied_;
  const std::uint64_t sample_vec = vec_base_ + vectors_applied_;
  const bool sampling = timeline_ != nullptr && timeline_->want(sample_vec);
  const std::uint64_t started_us = sampling ? timeline_->now_us() : 0;
  std::vector<std::size_t> newly(k, 0);
  std::vector<std::size_t> pending(k);
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  for (unsigned round = 0;; ++round) {
    // Isolation boundary: one dedicated thread per pending shard (the
    // shared ThreadPool cannot abandon a hung task).  Each worker's result
    // lands in a shared_ptr'd Task so an abandoned worker scribbles on its
    // own orphaned state, never on the retry's.
    const auto sync = std::make_shared<Sync>();
    std::vector<std::shared_ptr<Task>> tasks(pending.size());
    std::vector<std::thread> threads(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto shard = static_cast<unsigned>(pending[i]);
      auto task = std::make_shared<Task>();
      task->engine = engines_[shard].get();
      task->pis = pis;
      tasks[i] = task;
      resil::FaultInjector* inj = opt_.resil.injector;
      threads[i] = std::thread([task, sync, inj, shard, vec_no] {
        const auto t0 = std::chrono::steady_clock::now();
        try {
          if (inj != nullptr) inj->maybe_fire(shard, vec_no);
          task->newly = task->engine->apply_vector(*task->pis);
        } catch (...) {
          task->error = std::current_exception();
        }
        task->latency_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        {
          std::lock_guard<std::mutex> lk(sync->mu);
          task->done = true;
          ++sync->completed;
        }
        sync->cv.notify_all();
      });
    }
    {
      std::unique_lock<std::mutex> lk(sync->mu);
      const auto all_done = [&] { return sync->completed == tasks.size(); };
      if (opt_.resil.deadline_ms == 0) {
        sync->cv.wait(lk, all_done);
      } else {
        sync->cv.wait_for(lk,
                          std::chrono::milliseconds(opt_.resil.deadline_ms),
                          all_done);
      }
    }

    std::vector<std::size_t> failed;
    std::exception_ptr budget_error;
    std::exception_ptr last_error;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::size_t s = pending[i];
      bool done;
      {
        std::lock_guard<std::mutex> lk(sync->mu);
        done = tasks[i]->done;
      }
      if (!done) {
        // Hung past the deadline: abandon worker and engine (parked until
        // destruction -- the thread is still executing inside the engine)
        // and requeue the shard's slice on a rebuilt engine.
        graveyard_.push_back(
            Abandoned{std::move(engines_[s]), std::move(threads[i])});
        engines_[s] = make_shard_engine(static_cast<unsigned>(s));
        engines_[s]->restore_run_state(snaps[s], snap_status[s]);
        ++shard_requeues_;
        ++shard_retries_;
        if (trace_) {
          trace_->instant(driver_tid(),
                          "requeue shard " + std::to_string(s),
                          trace_->now_us());
        }
        failed.push_back(s);
        continue;
      }
      threads[i].join();
      if (!tasks[i]->error) {
        newly[s] = tasks[i]->newly;
        if (sampling) shard_latency_us_[s] = tasks[i]->latency_us;
        continue;
      }
      bool is_budget = false;
      try {
        std::rethrow_exception(tasks[i]->error);
      } catch (const PoolBudgetError&) {
        is_budget = true;
        budget_error = tasks[i]->error;
      } catch (...) {
        last_error = tasks[i]->error;
      }
      if (is_budget) continue;  // not retryable: same budget, same throw
      // The engine may be a half-merged wreck; restore_run_state rebuilds
      // it from the boundary wholesale.
      engines_[s]->restore_run_state(snaps[s], snap_status[s]);
      ++shard_retries_;
      if (trace_) {
        trace_->instant(driver_tid(), "retry shard " + std::to_string(s),
                        trace_->now_us());
      }
      failed.push_back(s);
    }

    if (budget_error) {
      // Memory-budget overflow is the campaign's to handle (suspend part of
      // the universe, restore, go multi-pass); retrying here cannot help.
      merged_dirty_ = true;
      std::rethrow_exception(budget_error);
    }
    if (failed.empty()) break;
    if (round >= opt_.resil.max_retries) {
      merged_dirty_ = true;
      if (last_error) std::rethrow_exception(last_error);
      throw Error("shard deadline exceeded " +
                  std::to_string(opt_.resil.max_retries + 1) +
                  " times; giving up on vector " + std::to_string(vec_no));
    }
    // Exponential backoff before the retry round.
    const std::uint64_t ms = std::uint64_t{opt_.resil.backoff_ms}
                             << std::min(round, 20u);
    if (ms != 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    pending = std::move(failed);
  }

  ++vectors_applied_;
  merged_dirty_ = true;
  if (sampling) record_sample(sample_vec, started_us);
  maybe_rebalance();
  std::size_t total = 0;
  for (std::size_t n : newly) total += n;  // shards are disjoint: exact sum
  return total;
}

void ShardedSim::run(const TestSuite& t, Val ff_init) {
  // The batched driver subsumes the lockstep path (it replays per vector,
  // so observers stay ordered); containment keeps its own per-vector retry
  // boundary and is left on the scalar paths, where an engine rebuilt
  // mid-vector never holds a dangling slab pointer.
  const unsigned bw = std::min(std::max(opt_.batch_width, 1u), kMaxBatchLanes);
  if (bw > 1 && opt_.resil.max_retries == 0) {
    run_batched(t, ff_init, bw);
    return;
  }
  const bool rebalancing = opt_.rebalance.mode != RebalancePolicy::Mode::Off &&
                           num_shards() > 1;
  if (observer_ || opt_.resil.max_retries > 0 || timeline_ != nullptr ||
      rebalancing) {
    // Lockstep keeps the observer callback order identical to a
    // single-threaded run, gives the containment path its per-vector retry
    // boundary, and gives the timeline sampler and the rebalancer their
    // per-vector boundaries (the coarse path has no driver-visible vector
    // boundary to repartition at).
    for (const PatternSet& seq : t.sequences()) {
      reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) apply_vector(seq[i]);
    }
    return;
  }
  // Coarse grain: each shard streams the whole suite independently; one
  // fork-join for the entire run.
  pool_.parallel_for(engines_.size(), [&](std::size_t s) {
    ConcurrentSim& sim = *engines_[s];
    const auto tid = static_cast<std::uint32_t>(s);
    std::size_t seq_no = 0;
    for (const PatternSet& seq : t.sequences()) {
      const std::uint64_t t0 = trace_ ? trace_->now_us() : 0;
      std::size_t newly = 0;
      sim.reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        newly += sim.apply_vector(seq[i]);
      }
      if (trace_) {
        const std::uint64_t t1 = trace_->now_us();
        trace_->complete(tid, "sequence " + std::to_string(seq_no), t0,
                         t1 - t0);
        if (newly > 0) {
          trace_->instant(tid, "detect x" + std::to_string(newly), t1);
        }
      }
      ++seq_no;
    }
  });
  merged_dirty_ = true;
}

void ShardedSim::run_batched(const TestSuite& t, Val ff_init,
                             unsigned width) {
  const Circuit& c = model_->circuit();
  const BatchPlan plan = BatchPlan::build(c, t, width);
  const std::size_t ngates = c.num_gates();
  const std::size_t npis = c.inputs().size();
  // A band's packed trajectory is held whole (the replay walks it lane by
  // lane, so it cannot stream); a band that would not fit runs unpacked.
  constexpr std::size_t kSlabByteCap = std::size_t{512} << 20;
  BatchGoodSim bsim(c, ff_init, plan.width());
  const unsigned W = bsim.words_per_gate();
  const std::size_t frame_words = ngates * std::size_t{W};
  std::vector<Word64> slab;
  std::vector<Word64> wbuf(W);
  for (const BatchBand& band : plan.bands()) {
    const bool packed =
        band.lanes.size() > 1 && band.steps > 0 && ngates > 0 &&
        std::size_t{band.steps} <= kSlabByteCap / (frame_words * sizeof(Word64));
    if (packed) {
      // Precompute the whole band's good trajectory: one packed machine
      // stands in for up to `width` per-shard scalar good machines.
      obs::ScopedPhase sp(driver_timers_, obs::Phase::GoodBatch);
      slab.resize(frame_words * band.steps);
      bsim.reset(ff_init);
      for (std::uint32_t step = 0; step < band.steps; ++step) {
        std::uint64_t active = 0;
        for (const BatchLane& lane : band.lanes) active += step < lane.count;
        CFS_COUNT_N(batch_counters_, BatchLanesWasted, width - active);
        for (std::size_t pi = 0; pi < npis; ++pi) {
          wn_splat(wbuf.data(), W, Val::X);
          for (std::size_t l = 0; l < band.lanes.size(); ++l) {
            const BatchLane& lane = band.lanes[l];
            if (step < lane.count) {
              wn_set(wbuf.data(), static_cast<unsigned>(l),
                     t.sequences()[lane.seq][lane.begin + step][pi]);
            }
          }
          bsim.set_input(static_cast<unsigned>(pi), wbuf.data());
        }
        bsim.settle();
        std::copy(bsim.values().begin(), bsim.values().end(),
                  slab.begin() + std::size_t{step} * frame_words);
        if (step + 1 < band.steps) bsim.clock();
      }
    }
    // Replay the lanes in suite order; in a packed band every engine reads
    // its good values from the lane's slice of the trajectory.
    for (std::size_t l = 0; l < band.lanes.size(); ++l) {
      const BatchLane& lane = band.lanes[l];
      if (lane.count == 0) {
        reset(ff_init);  // empty sequence: the reset still happens in order
        continue;
      }
      const PatternSet& seq = t.sequences()[lane.seq];
      for (std::uint32_t v = lane.begin; v < lane.begin + lane.count; ++v) {
        if (v == 0) reset(ff_init);
        if (packed) {
          const Word64* frame =
              slab.data() + std::size_t{v - lane.begin} * frame_words;
          for (auto& e : engines_) {
            e->set_good_batch_oracle(frame, static_cast<unsigned>(l), W);
          }
        }
        apply_vector(seq[v]);
      }
    }
  }
  batch_counters_.merge(bsim.counters());
  merged_dirty_ = true;
}

const std::vector<Detect>& ShardedSim::status() const {
  if (merged_dirty_) {
    obs::ScopedPhase sp(driver_timers_, obs::Phase::ShardMerge);
    const std::uint64_t t0 = trace_ ? trace_->now_us() : 0;
    if (engines_.size() == 1) {
      merged_ = engines_[0]->status();
    } else {
      std::vector<const std::vector<Detect>*> per;
      per.reserve(engines_.size());
      for (const auto& e : engines_) per.push_back(&e->status());
      merged_ = part_.merge(per);
    }
    merged_dirty_ = false;
    if (trace_) {
      trace_->complete(driver_tid(), "merge", t0, trace_->now_us() - t0);
    }
  }
  return merged_;
}

RunStateSnapshot ShardedSim::capture_run_state() const {
  if (engines_.size() == 1) return engines_[0]->capture_run_state();
  std::vector<RunStateSnapshot> per(engines_.size());
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    per[s] = engines_[s]->capture_run_state();
  }
  RunStateSnapshot out;
  // Every shard simulates the same good machine; take shard 0's copy.
  out.flop_good = per[0].flop_good;
  out.flop_faulty.resize(per[0].flop_faulty.size());
  for (std::size_t d = 0; d < out.flop_faulty.size(); ++d) {
    auto& merged = out.flop_faulty[d];
    for (const RunStateSnapshot& p : per) {
      merged.insert(merged.end(), p.flop_faulty[d].begin(),
                    p.flop_faulty[d].end());
    }
    // Shards own disjoint fault sets, so this is a merge, not a dedup.
    std::sort(merged.begin(), merged.end(),
              [](const FlopFault& a, const FlopFault& b) {
                return a.fault < b.fault;
              });
  }
  if (!per[0].prev_pins.empty()) {
    // Each engine only maintains previous values for the faults it owns;
    // read every fault's entry from its owner shard.
    out.prev_pins.resize(per[0].prev_pins.size());
    for (std::size_t id = 0; id < out.prev_pins.size(); ++id) {
      out.prev_pins[id] =
          per[part_.shard_of(static_cast<std::uint32_t>(id))].prev_pins[id];
    }
  }
  return out;
}

void ShardedSim::restore_run_state(const RunStateSnapshot& s,
                                   const std::vector<Detect>& status) {
  pool_.parallel_for(engines_.size(), [&](std::size_t i) {
    engines_[i]->restore_run_state(s, status);
  });
  merged_dirty_ = true;
}

double ShardedSim::imbalance_ratio() const {
  std::uint64_t total = 0, heaviest = 0;
  for (const auto& e : engines_) {
    const std::uint64_t le = e->live_elements();
    total += le;
    heaviest = std::max(heaviest, le);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(heaviest) * engines_.size() /
         static_cast<double>(total);
}

void ShardedSim::maybe_rebalance() {
  if (engines_.size() <= 1) return;
  const RebalancePolicy& rp = opt_.rebalance;
  switch (rp.mode) {
    case RebalancePolicy::Mode::Off:
      return;
    case RebalancePolicy::Mode::Every:
      if (rp.every == 0 || vectors_applied_ % rp.every != 0) return;
      break;
    case RebalancePolicy::Mode::Auto:
      if (vectors_applied_ - last_rebalance_vec_ < rp.cooldown) return;
      if (imbalance_ratio() < rp.threshold) return;
      break;
  }
  rebalance_now();
}

std::size_t ShardedSim::rebalance_now() {
  const std::size_t k = engines_.size();
  if (k <= 1) return 0;
  obs::ScopedPhase sp(driver_timers_, obs::Phase::Rebalance);
  const std::uint64_t t0 = trace_ ? trace_->now_us() : 0;
  const std::size_t nf = part_.num_faults();

  // Snapshot under the *old* ownership: capture_run_state reads each
  // fault's entry from its owner shard, so it must run before the
  // partition changes.  status() is cached; copy it out because restore
  // invalidates the merge.
  RunStateSnapshot snap = capture_run_state();
  const std::vector<Detect> master = status();

  // Per-fault live-element counts are partition-invariant: each engine
  // contributes the elements of the faults it owns, and a fault's list
  // structure does not depend on which shard simulates it.
  std::vector<std::uint64_t> elems(nf, 0);
  for (const auto& e : engines_) e->accumulate_live_weights(elems);

  // Pack on element counts, but give every live fault a floor of one unit:
  // a currently element-free live fault still costs its share of future
  // activations, and the floor keeps the fault *counts* from collapsing
  // onto one shard when most weights are zero.
  std::vector<std::uint64_t> weights = elems;
  for (std::uint32_t id = 0; id < nf; ++id) {
    const bool parked = !suspended_.empty() && suspended_[id];
    if (master[id] != Detect::Hard && !parked) {
      weights[id] = std::max<std::uint64_t>(weights[id], 1);
    }
  }

  std::vector<std::uint32_t> old_owner(nf);
  for (std::uint32_t id = 0; id < nf; ++id) old_owner[id] = part_.shard_of(id);
  const std::size_t moved = part_.partition_by_weight(weights);
  std::uint64_t moved_elems = 0;
  for (std::uint32_t id = 0; id < nf; ++id) {
    if (part_.shard_of(id) != old_owner[id]) moved_elems += elems[id];
  }

  // Point every engine at its new slice (ownership base first, then the
  // suspension overlay on top), grow its pool to the new share, and
  // rebuild from the snapshot.  restore_run_state re-derives the lists
  // under the new masks, so the run continues bit-identically.
  for (std::size_t s = 0; s < k; ++s) {
    engines_[s]->set_shard(part_, static_cast<unsigned>(s));
    engines_[s]->set_suspended(suspended_);
    engines_[s]->reserve_elements(part_.shard_size(s) + 1);
  }
  restore_run_state(snap, master);

  ++rebalances_;
  faults_migrated_ += moved;
  elements_migrated_ += moved_elems;
  last_rebalance_vec_ = vectors_applied_;
  CFS_COUNT(batch_counters_, Rebalances);
  CFS_COUNT_N(batch_counters_, FaultsMigrated, moved);
  CFS_COUNT_N(batch_counters_, ElementsMigrated, moved_elems);
  if (trace_ != nullptr) {
    trace_->complete(driver_tid(), "rebalance", t0, trace_->now_us() - t0);
    trace_->instant(driver_tid(),
                    "rebalance: " + std::to_string(moved) + " faults, " +
                        std::to_string(moved_elems) + " elements",
                    trace_->now_us());
  }
  return moved;
}

void ShardedSim::set_suspended(const std::vector<std::uint8_t>& suspended) {
  suspended_ = suspended;
  for (auto& e : engines_) e->set_suspended(suspended);
}

void ShardedSim::adopt_status(const std::vector<Detect>& status) {
  for (auto& e : engines_) e->adopt_status(status);
  merged_dirty_ = true;
}

void ShardedSim::reset_peak_elements() {
  for (auto& e : engines_) e->reset_peak_elements();
}

void ShardedSim::set_trace(obs::TraceEmitter* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      trace_->name_track(static_cast<std::uint32_t>(s),
                         "shard " + std::to_string(s));
    }
    trace_->name_track(driver_tid(), "driver");
  }
}

void ShardedSim::set_timeline(obs::Timeline* timeline,
                              std::uint64_t vec_base) {
  timeline_ = timeline;
  vec_base_ = vec_base;
  if (timeline_ != nullptr) {
    timeline_->set_num_shards(num_shards());
    shard_latency_us_.assign(engines_.size(), 0);
    sample_scratch_.shards.resize(engines_.size());
  }
}

void ShardedSim::record_sample(std::uint64_t vec_no,
                               std::uint64_t started_us) {
  obs::TimelineSample& s = sample_scratch_;
  s.vec = vec_no;
  // Deterministic section: read the merged master status -- each fault's
  // verdict comes from its owner shard, so these values are bit-identical
  // for any --threads/--batch combination (and need no counters, so they
  // survive CFS_OBS=OFF builds).
  const std::vector<Detect>& st = status();
  for (obs::ShardSample& sh : s.shards) sh.live_faults = 0;
  std::uint64_t hard = 0, potential = 0;
  for (std::uint32_t id = 0; id < st.size(); ++id) {
    if (st[id] == Detect::Hard) {
      ++hard;
    } else {
      ++s.shards[part_.shard_of(id)].live_faults;
      if (st[id] == Detect::Potential) ++potential;
    }
  }
  s.hard = hard;
  s.potential = potential;
  s.live_faults = st.size() - hard;
  // Work + wall sections: machine effort and timing, shard-dependent.
  std::uint64_t dropped = 0, live_el = 0, trav = 0, gates = 0;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    const ConcurrentSim& e = *engines_[i];
    dropped += e.faults_dropped();
    const std::uint64_t le = e.live_elements();
    s.shards[i].live_elements = le;
    s.shards[i].latency_us = shard_latency_us_[i];
    live_el += le;
    trav += e.counters().get(obs::Counter::ElementsTraversed);
    gates += e.gates_processed();
  }
  s.dropped = dropped;
  s.live_elements = live_el;
  s.traversals = trav;
  s.gates = gates;
  s.rebalances = rebalances_;
  s.t_us = timeline_->now_us();
  s.latency_us = s.t_us >= started_us ? s.t_us - started_us : 0;
  timeline_->record(s);
  if (trace_ != nullptr) {
    // Counter tracks: area charts of the drain, alongside the slices.
    const std::uint64_t ts = trace_->now_us();
    trace_->counter(driver_tid(), "detections", ts,
                    {{"hard", hard}, {"potential", potential}});
    trace_->counter(driver_tid(), "pool", ts,
                    {{"live_elements", live_el}});
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      trace_->counter(static_cast<std::uint32_t>(i), "load", ts,
                      {{"live_faults", s.shards[i].live_faults},
                       {"live_elements", s.shards[i].live_elements}});
    }
  }
}

void ShardedSim::set_detection_observer(ConcurrentSim::DetectionObserver obs) {
  observer_ = std::move(obs);
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    if (observer_) {
      auto* buf = &shard_obs_[s];
      engines_[s]->set_detection_observer(
          [buf](std::uint32_t fault, std::uint32_t po, bool hard) {
            buf->push_back({po, fault, hard});
          });
    } else {
      engines_[s]->set_detection_observer(nullptr);
    }
  }
}

void ShardedSim::replay_observations() {
  obs::ScopedPhase sp(driver_timers_, obs::Phase::ShardMerge);
  // Each shard records in (po asc, fault asc) order; the sorted union is
  // exactly the sequence one engine over the whole universe produces.
  std::vector<Observation> all;
  std::size_t n = 0;
  for (const auto& v : shard_obs_) n += v.size();
  all.reserve(n);
  for (const auto& v : shard_obs_) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Observation& a, const Observation& b) {
              return a.po != b.po ? a.po < b.po : a.fault < b.fault;
            });
  for (const Observation& o : all) observer_(o.fault, o.po, o.hard);
}

SimStats ShardedSim::stats() const {
  SimStats st;
  st.model_bytes = model_->bytes();
  st.circuit_bytes = model_->circuit().bytes();
  st.driver = driver_timers_;
  st.shard_retries = shard_retries_;
  st.shard_requeues = shard_requeues_;
  st.rebalances = rebalances_;
  st.faults_migrated = faults_migrated_;
  st.elements_migrated = elements_migrated_;
  st.per_engine.reserve(engines_.size());
  for (const auto& e : engines_) {
    EngineStats es;
    es.gates_processed = e->gates_processed();
    es.elements_evaluated = e->elements_evaluated();
    es.vectors_simulated = e->vectors_simulated();
    es.faults_dropped = e->faults_dropped();
    es.peak_elements = e->peak_elements();
    es.state_bytes = e->state_bytes();
    es.counters = e->counters();
    es.timers = e->timers();
    es.hists = e->histograms();
    es.levels = e->level_profile();
    st.total.accumulate(es);
    st.per_engine.push_back(std::move(es));
  }
  // Driver-side batch telemetry (packed good machine + wasted lanes) has
  // no owning engine: it appears in the totals only.
  st.total.counters.merge(batch_counters_);
  return st;
}

std::size_t ShardedSim::bytes() const {
  std::size_t b = model_->bytes();
  for (const auto& e : engines_) b += e->state_bytes();
  return b;
}

void ShardedSim::report_memory(MemStats& ms) const {
  std::size_t pool = 0, fixed = 0;
  for (const auto& e : engines_) {
    pool += e->pool_bytes();
    fixed += e->state_bytes() - e->pool_bytes();
  }
  ms.sample("fault_elements", pool);
  ms.sample("engine_fixed", fixed);
  ms.sample("model", model_->bytes());
  ms.sample("circuit", model_->circuit().bytes());
}

}  // namespace cfs
