#include "sim/sharded_sim.h"

#include <algorithm>

namespace cfs {

namespace {

unsigned clamp_shards(unsigned num_threads, std::size_t num_faults) {
  unsigned k = num_threads == 0 ? 1 : num_threads;
  const std::size_t cap = num_faults == 0 ? 1 : num_faults;
  if (k > cap) k = static_cast<unsigned>(cap);
  return k;
}

}  // namespace

ShardedSim::ShardedSim(const Circuit& c, const FaultUniverse& u,
                       ShardedOptions opt, const MacroFaultMap* mmap)
    : ShardedSim(std::make_shared<SimModel>(c, u, mmap), opt) {}

ShardedSim::ShardedSim(std::shared_ptr<const SimModel> model,
                       ShardedOptions opt)
    : model_(std::move(model)),
      opt_(opt),
      part_(model_->num_faults(),
            clamp_shards(opt.num_threads, model_->num_faults())),
      pool_(part_.num_shards()) {
  const unsigned k = part_.num_shards();
  engines_.resize(k);
  shard_obs_.resize(k);
  // Shard construction includes the initial reset (a full good-machine
  // sweep plus fault activation), so build the engines in parallel too.
  pool_.parallel_for(k, [&](std::size_t s) {
    // A single shard covering the whole universe gets no partition filter
    // at all: ShardedSim with --threads 1 *is* plain ConcurrentSim.
    engines_[s] = k == 1
                      ? std::make_unique<ConcurrentSim>(model_, opt_.csim)
                      : std::make_unique<ConcurrentSim>(
                            model_, opt_.csim, &part_,
                            static_cast<unsigned>(s));
  });
}

void ShardedSim::reset(Val ff_init, bool clear_status) {
  pool_.parallel_for(engines_.size(), [&](std::size_t s) {
    engines_[s]->reset(ff_init, clear_status);
  });
  merged_dirty_ = true;
}

std::size_t ShardedSim::apply_vector(std::span<const Val> pi_vals) {
  const std::size_t k = engines_.size();
  std::vector<std::size_t> newly(k, 0);
  pool_.parallel_for(k, [&](std::size_t s) {
    shard_obs_[s].clear();
    newly[s] = engines_[s]->apply_vector(pi_vals);
  });
  merged_dirty_ = true;
  if (observer_) replay_observations();
  std::size_t total = 0;
  for (std::size_t n : newly) total += n;  // shards are disjoint: exact sum
  return total;
}

void ShardedSim::run(const TestSuite& t, Val ff_init) {
  if (observer_) {
    // Lockstep keeps the observer callback order identical to a
    // single-threaded run.
    for (const PatternSet& seq : t.sequences()) {
      reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) apply_vector(seq[i]);
    }
    return;
  }
  // Coarse grain: each shard streams the whole suite independently; one
  // fork-join for the entire run.
  pool_.parallel_for(engines_.size(), [&](std::size_t s) {
    ConcurrentSim& sim = *engines_[s];
    for (const PatternSet& seq : t.sequences()) {
      sim.reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
    }
  });
  merged_dirty_ = true;
}

const std::vector<Detect>& ShardedSim::status() const {
  if (merged_dirty_) {
    if (engines_.size() == 1) {
      merged_ = engines_[0]->status();
    } else {
      std::vector<const std::vector<Detect>*> per;
      per.reserve(engines_.size());
      for (const auto& e : engines_) per.push_back(&e->status());
      merged_ = part_.merge(per);
    }
    merged_dirty_ = false;
  }
  return merged_;
}

void ShardedSim::set_detection_observer(ConcurrentSim::DetectionObserver obs) {
  observer_ = std::move(obs);
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    if (observer_) {
      auto* buf = &shard_obs_[s];
      engines_[s]->set_detection_observer(
          [buf](std::uint32_t fault, std::uint32_t po, bool hard) {
            buf->push_back({po, fault, hard});
          });
    } else {
      engines_[s]->set_detection_observer(nullptr);
    }
  }
}

void ShardedSim::replay_observations() {
  // Each shard records in (po asc, fault asc) order; the sorted union is
  // exactly the sequence one engine over the whole universe produces.
  std::vector<Observation> all;
  std::size_t n = 0;
  for (const auto& v : shard_obs_) n += v.size();
  all.reserve(n);
  for (const auto& v : shard_obs_) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Observation& a, const Observation& b) {
              return a.po != b.po ? a.po < b.po : a.fault < b.fault;
            });
  for (const Observation& o : all) observer_(o.fault, o.po, o.hard);
}

SimStats ShardedSim::stats() const {
  SimStats st;
  st.model_bytes = model_->bytes();
  st.circuit_bytes = model_->circuit().bytes();
  st.per_engine.reserve(engines_.size());
  for (const auto& e : engines_) {
    EngineStats es;
    es.gates_processed = e->gates_processed();
    es.elements_evaluated = e->elements_evaluated();
    es.peak_elements = e->peak_elements();
    es.state_bytes = e->state_bytes();
    st.total.gates_processed += es.gates_processed;
    st.total.elements_evaluated += es.elements_evaluated;
    st.total.peak_elements += es.peak_elements;
    st.total.state_bytes += es.state_bytes;
    st.per_engine.push_back(es);
  }
  return st;
}

std::size_t ShardedSim::bytes() const {
  std::size_t b = model_->bytes();
  for (const auto& e : engines_) b += e->state_bytes();
  return b;
}

void ShardedSim::report_memory(MemStats& ms) const {
  std::size_t pool = 0, fixed = 0;
  for (const auto& e : engines_) {
    pool += e->pool_bytes();
    fixed += e->state_bytes() - e->pool_bytes();
  }
  ms.sample("fault_elements", pool);
  ms.sample("engine_fixed", fixed);
  ms.sample("model", model_->bytes());
  ms.sample("circuit", model_->circuit().bytes());
}

}  // namespace cfs
