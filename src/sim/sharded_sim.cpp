#include "sim/sharded_sim.h"

#include <algorithm>

namespace cfs {

namespace {

unsigned clamp_shards(unsigned num_threads, std::size_t num_faults) {
  unsigned k = num_threads == 0 ? 1 : num_threads;
  const std::size_t cap = num_faults == 0 ? 1 : num_faults;
  if (k > cap) k = static_cast<unsigned>(cap);
  return k;
}

}  // namespace

ShardedSim::ShardedSim(const Circuit& c, const FaultUniverse& u,
                       ShardedOptions opt, const MacroFaultMap* mmap)
    : ShardedSim(std::make_shared<SimModel>(c, u, mmap), opt) {}

ShardedSim::ShardedSim(std::shared_ptr<const SimModel> model,
                       ShardedOptions opt)
    : model_(std::move(model)),
      opt_(opt),
      part_(model_->num_faults(),
            clamp_shards(opt.num_threads, model_->num_faults())),
      pool_(part_.num_shards()) {
  const unsigned k = part_.num_shards();
  engines_.resize(k);
  shard_obs_.resize(k);
  // Shard construction includes the initial reset (a full good-machine
  // sweep plus fault activation), so build the engines in parallel too.
  pool_.parallel_for(k, [&](std::size_t s) {
    // Each shard's element pool is pre-sized from its own slice of the
    // universe (+1 for the sentinel) unless the caller already gave a hint.
    CsimOptions copt = opt_.csim;
    if (copt.reserve_elements == 0) {
      copt.reserve_elements =
          part_.shard_size(static_cast<unsigned>(s)) + 1;
    }
    // A single shard covering the whole universe gets no partition filter
    // at all: ShardedSim with --threads 1 *is* plain ConcurrentSim.
    engines_[s] = k == 1
                      ? std::make_unique<ConcurrentSim>(model_, copt)
                      : std::make_unique<ConcurrentSim>(
                            model_, copt, &part_,
                            static_cast<unsigned>(s));
  });
}

void ShardedSim::reset(Val ff_init, bool clear_status) {
  pool_.parallel_for(engines_.size(), [&](std::size_t s) {
    engines_[s]->reset(ff_init, clear_status);
  });
  merged_dirty_ = true;
}

std::size_t ShardedSim::apply_vector(std::span<const Val> pi_vals) {
  const std::size_t k = engines_.size();
  std::vector<std::size_t> newly(k, 0);
  pool_.parallel_for(k, [&](std::size_t s) {
    shard_obs_[s].clear();
    const std::uint64_t t0 = trace_ ? trace_->now_us() : 0;
    newly[s] = engines_[s]->apply_vector(pi_vals);
    if (trace_) {
      const std::uint64_t t1 = trace_->now_us();
      const auto tid = static_cast<std::uint32_t>(s);
      trace_->complete(tid, "vector", t0, t1 - t0);
      if (newly[s] > 0) {
        trace_->instant(tid, "detect x" + std::to_string(newly[s]), t1);
      }
    }
  });
  merged_dirty_ = true;
  if (observer_) replay_observations();
  std::size_t total = 0;
  for (std::size_t n : newly) total += n;  // shards are disjoint: exact sum
  return total;
}

void ShardedSim::run(const TestSuite& t, Val ff_init) {
  if (observer_) {
    // Lockstep keeps the observer callback order identical to a
    // single-threaded run.
    for (const PatternSet& seq : t.sequences()) {
      reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) apply_vector(seq[i]);
    }
    return;
  }
  // Coarse grain: each shard streams the whole suite independently; one
  // fork-join for the entire run.
  pool_.parallel_for(engines_.size(), [&](std::size_t s) {
    ConcurrentSim& sim = *engines_[s];
    const auto tid = static_cast<std::uint32_t>(s);
    std::size_t seq_no = 0;
    for (const PatternSet& seq : t.sequences()) {
      const std::uint64_t t0 = trace_ ? trace_->now_us() : 0;
      std::size_t newly = 0;
      sim.reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        newly += sim.apply_vector(seq[i]);
      }
      if (trace_) {
        const std::uint64_t t1 = trace_->now_us();
        trace_->complete(tid, "sequence " + std::to_string(seq_no), t0,
                         t1 - t0);
        if (newly > 0) {
          trace_->instant(tid, "detect x" + std::to_string(newly), t1);
        }
      }
      ++seq_no;
    }
  });
  merged_dirty_ = true;
}

const std::vector<Detect>& ShardedSim::status() const {
  if (merged_dirty_) {
    obs::ScopedPhase sp(driver_timers_, obs::Phase::ShardMerge);
    const std::uint64_t t0 = trace_ ? trace_->now_us() : 0;
    if (engines_.size() == 1) {
      merged_ = engines_[0]->status();
    } else {
      std::vector<const std::vector<Detect>*> per;
      per.reserve(engines_.size());
      for (const auto& e : engines_) per.push_back(&e->status());
      merged_ = part_.merge(per);
    }
    merged_dirty_ = false;
    if (trace_) {
      trace_->complete(driver_tid(), "merge", t0, trace_->now_us() - t0);
    }
  }
  return merged_;
}

void ShardedSim::set_trace(obs::TraceEmitter* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      trace_->name_track(static_cast<std::uint32_t>(s),
                         "shard " + std::to_string(s));
    }
    trace_->name_track(driver_tid(), "driver");
  }
}

void ShardedSim::set_detection_observer(ConcurrentSim::DetectionObserver obs) {
  observer_ = std::move(obs);
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    if (observer_) {
      auto* buf = &shard_obs_[s];
      engines_[s]->set_detection_observer(
          [buf](std::uint32_t fault, std::uint32_t po, bool hard) {
            buf->push_back({po, fault, hard});
          });
    } else {
      engines_[s]->set_detection_observer(nullptr);
    }
  }
}

void ShardedSim::replay_observations() {
  obs::ScopedPhase sp(driver_timers_, obs::Phase::ShardMerge);
  // Each shard records in (po asc, fault asc) order; the sorted union is
  // exactly the sequence one engine over the whole universe produces.
  std::vector<Observation> all;
  std::size_t n = 0;
  for (const auto& v : shard_obs_) n += v.size();
  all.reserve(n);
  for (const auto& v : shard_obs_) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Observation& a, const Observation& b) {
              return a.po != b.po ? a.po < b.po : a.fault < b.fault;
            });
  for (const Observation& o : all) observer_(o.fault, o.po, o.hard);
}

SimStats ShardedSim::stats() const {
  SimStats st;
  st.model_bytes = model_->bytes();
  st.circuit_bytes = model_->circuit().bytes();
  st.driver = driver_timers_;
  st.per_engine.reserve(engines_.size());
  for (const auto& e : engines_) {
    EngineStats es;
    es.gates_processed = e->gates_processed();
    es.elements_evaluated = e->elements_evaluated();
    es.vectors_simulated = e->vectors_simulated();
    es.faults_dropped = e->faults_dropped();
    es.peak_elements = e->peak_elements();
    es.state_bytes = e->state_bytes();
    es.counters = e->counters();
    es.timers = e->timers();
    st.total.accumulate(es);
    st.per_engine.push_back(std::move(es));
  }
  return st;
}

std::size_t ShardedSim::bytes() const {
  std::size_t b = model_->bytes();
  for (const auto& e : engines_) b += e->state_bytes();
  return b;
}

void ShardedSim::report_memory(MemStats& ms) const {
  std::size_t pool = 0, fixed = 0;
  for (const auto& e : engines_) {
    pool += e->pool_bytes();
    fixed += e->state_bytes() - e->pool_bytes();
  }
  ms.sample("fault_elements", pool);
  ms.sample("engine_fixed", fixed);
  ms.sample("model", model_->bytes());
  ms.sample("circuit", model_->circuit().bytes());
}

}  // namespace cfs
