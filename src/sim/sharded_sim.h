// Sharded multi-threaded concurrent fault simulation.
//
// The fault universe is an embarrassingly parallel axis: once the good
// machine is fixed, faulty machines never interact.  ShardedSim partitions
// the universe into K balanced shards (faults/partition.h), runs one
// ConcurrentSim per shard over the *same* test-vector stream on a fork-join
// thread pool, and merges the shard-local detection arrays
// deterministically -- each fault's verdict is read from its owner shard, so
// results are bit-for-bit identical for any thread count, including 1.
//
// All shards share one immutable SimModel (core/sim_model.h); only run
// state (fault lists, pool, good machine, queue) is per shard.  Each shard
// currently re-simulates its own good machine -- see DESIGN.md for the
// shared-good-machine follow-up.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/concurrent_sim.h"
#include "core/run_state.h"
#include "core/sim_model.h"
#include "faults/partition.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/timeline.h"
#include "obs/timers.h"
#include "obs/trace.h"
#include "patterns/pattern.h"
#include "resil/containment.h"
#include "util/memtrack.h"
#include "util/thread_pool.h"

namespace cfs {

/// When and how to repartition fault ownership mid-run.  Rebalancing only
/// moves faults between shards -- each fault's simulation is independent of
/// its shard, so the merged status, detection order, campaign digest, and
/// deterministic counters are bit-identical for every policy; only the
/// work/wall telemetry changes.
struct RebalancePolicy {
  enum class Mode {
    Off,   ///< static round-robin partition for the whole run
    Auto,  ///< repartition when live-element imbalance crosses `threshold`
    Every  ///< repartition unconditionally every `every` vectors
  };
  Mode mode = Mode::Off;
  /// Auto: minimum ratio of (heaviest shard's live elements) to the
  /// balanced share before a repartition fires.  1.0 fires on any skew.
  double threshold = 1.25;
  /// Auto: vectors to wait after a rebalance before considering another
  /// (a repartition costs roughly one capture + restore; let it pay off).
  std::uint64_t cooldown = 8;
  /// Every: period in vectors (>= 1).
  std::uint64_t every = 16;
};

struct ShardedOptions {
  /// Worker threads; the universe is split into the same number of shards
  /// (clamped to the number of faults).  1 reproduces plain ConcurrentSim
  /// with no thread machinery at all.
  unsigned num_threads = 1;
  /// Per-shard engine configuration.  A csim.max_elements budget is the
  /// budget for the *whole* universe: it is divided across the shards.
  CsimOptions csim;
  /// Shard failure containment (resil/containment.h).  Off by default.
  resil::ResilOptions resil;
  /// Pattern-lane width for run(): >1 precomputes the good machine for up
  /// to `batch_width` vectors at a time in one packed multi-word
  /// BatchGoodSim (sim/batch_good_sim.h, up to kMaxBatchLanes = 256 lanes)
  /// and serves each engine's good values from the shared trajectory --
  /// the second parallelism axis, orthogonal to num_threads.  Results are
  /// bit-identical for any width (clamped to [1, kMaxBatchLanes]).
  /// Single-lane bands, containment runs (max_retries > 0), and the
  /// per-vector apply_vector() API always use the scalar path.
  unsigned batch_width = 1;
  /// Dynamic shard rebalancing (no-op with a single shard).  At the end of
  /// a vector, when the policy triggers, the driver captures the merged
  /// boundary snapshot, repartitions ownership by live-element weight
  /// (greedy LPT), and restores every shard -- same machinery as a
  /// checkpoint restore, so the run continues bit-identically.
  RebalancePolicy rebalance;
  /// Initial suspension mask (size num_faults, or empty): marked faults are
  /// excluded from simulation until set_suspended()/restore_run_state()
  /// changes the overlay.  The memory-budget multi-pass path constructs
  /// later passes through this so even the engines' *initial* activation
  /// stays within budget.
  std::vector<std::uint8_t> suspended;
};

/// Activity and footprint of one shard engine.
struct EngineStats {
  std::uint64_t gates_processed = 0;
  std::uint64_t elements_evaluated = 0;
  std::uint64_t vectors_simulated = 0;
  std::uint64_t faults_dropped = 0;
  std::size_t peak_elements = 0;
  std::size_t state_bytes = 0;
  obs::Counters counters;    ///< telemetry registry (obs/counters.h)
  obs::PhaseTimers timers;   ///< per-phase wall time (obs/timers.h)
  obs::HistogramSet hists;   ///< work distributions (obs/histogram.h)
  obs::LevelProfile levels;  ///< per-level attribution (obs/histogram.h)

  /// Field-wise accumulation (counters, timers, histograms, and level
  /// profiles merge element-wise).
  void accumulate(const EngineStats& o) {
    gates_processed += o.gates_processed;
    elements_evaluated += o.elements_evaluated;
    vectors_simulated += o.vectors_simulated;
    faults_dropped += o.faults_dropped;
    peak_elements += o.peak_elements;
    state_bytes += o.state_bytes;
    counters.merge(o.counters);
    timers.merge(o.timers);
    hists.merge(o.hists);
    levels.merge(o.levels);
  }
};

/// Unified statistics over a sharded run: per-engine numbers plus their
/// sums and the shared (counted-once) model and circuit footprints.
struct SimStats {
  std::vector<EngineStats> per_engine;
  EngineStats total;  ///< field-wise sum over per_engine
  /// Driver-side phases (shard merge, observation replay) -- work outside
  /// any single engine, so kept out of `total`.
  obs::PhaseTimers driver;
  std::size_t model_bytes = 0;
  std::size_t circuit_bytes = 0;
  /// Containment counters: shard vector attempts that were retried after an
  /// exception or a deadline expiry, and the subset where a hung shard's
  /// slice was requeued onto a rebuilt engine.  Zero with containment off.
  std::uint64_t shard_retries = 0;
  std::uint64_t shard_requeues = 0;
  /// Dynamic-rebalancing counters: repartitions performed, faults whose
  /// owner shard changed, and the live elements those faults carried at
  /// migration time.  Zero with rebalancing off (or one shard).
  std::uint64_t rebalances = 0;
  std::uint64_t faults_migrated = 0;
  std::uint64_t elements_migrated = 0;
};

class ShardedSim {
 public:
  /// Convenience: builds the SimModel internally.  The caller keeps `c`,
  /// `u`, and `mmap` alive for the simulator's lifetime.
  ShardedSim(const Circuit& c, const FaultUniverse& u,
             ShardedOptions opt = {}, const MacroFaultMap* mmap = nullptr);

  /// Share an existing model across this simulator's shards (and any other
  /// engines the caller runs over it).
  explicit ShardedSim(std::shared_ptr<const SimModel> model,
                      ShardedOptions opt = {});

  /// Joins any worker threads abandoned by the deadline watchdog.
  ~ShardedSim();

  const SimModel& model() const { return *model_; }
  const FaultPartition& partition() const { return part_; }
  unsigned num_shards() const {
    return static_cast<unsigned>(engines_.size());
  }
  /// Shard engine `s` (tests and diagnostics).
  const ConcurrentSim& engine(unsigned s) const { return *engines_[s]; }

  /// Reinitialise every shard (in parallel).  Detection status is preserved
  /// unless `clear_status`.
  void reset(Val ff_init = Val::X, bool clear_status = false);

  /// Simulate one vector on all shards (fork-join) and return the number of
  /// newly hard-detected faults across the universe.  If a detection
  /// observer is set, the merged PO-mismatch observations are replayed in
  /// (PO position, fault id) order -- exactly the order a single
  /// ConcurrentSim emits them in.
  std::size_t apply_vector(std::span<const Val> pi_vals);

  /// Simulate a whole suite: one reset per sequence, vectors in order.
  /// With batch_width > 1 (and containment off) the batched driver runs:
  /// a BatchPlan groups the suite into packed lanes, one BatchGoodSim
  /// precomputes each band's good trajectory, and the vectors replay in
  /// lockstep with every engine reading good values from its lane of the
  /// slab.  Otherwise, without an observer each shard runs the entire
  /// suite independently (coarse-grained, one fork-join total); with an
  /// observer the vectors run in lockstep so callbacks stay ordered.
  /// Every path yields the same merged status, detection order, and
  /// deterministic counters.
  void run(const TestSuite& t, Val ff_init = Val::X);

  // -- results ------------------------------------------------------------
  /// Merged detection status over the full universe (deterministic: each
  /// fault from its owner shard).
  const std::vector<Detect>& status() const;
  Coverage coverage() const { return summarize(status()); }

  void set_detection_observer(ConcurrentSim::DetectionObserver obs);

  // -- resilience (resil/campaign.h drives these) --------------------------

  /// Merged boundary snapshot over the whole universe: per-shard captures
  /// combined by ascending fault id.  Shard-count-agnostic -- a snapshot
  /// captured here restores into a ShardedSim with any other shard count.
  RunStateSnapshot capture_run_state() const;

  /// Restore every shard from a (whole-universe) snapshot and master status
  /// table; each engine keeps only the faults it owns and is not suspended.
  void restore_run_state(const RunStateSnapshot& s,
                         const std::vector<Detect>& status);

  /// Replace the suspension overlay on every shard (takes effect at the
  /// next restore_run_state()/reset()); replacement engines built by the
  /// containment path inherit it.
  void set_suspended(const std::vector<std::uint8_t>& suspended);

  /// Push a master detection-status table into every shard ahead of a
  /// reset(): freshly built engines (campaign resume at a sequence
  /// boundary) must know which faults are already hard-detected so
  /// dropping keeps them out of the rebuilt lists.
  void adopt_status(const std::vector<Detect>& status);

  /// Start a fresh element-pool high-water epoch on every shard.
  void reset_peak_elements();

  /// Containment counters (see SimStats).
  std::uint64_t shard_retries() const { return shard_retries_; }
  std::uint64_t shard_requeues() const { return shard_requeues_; }

  // -- dynamic rebalancing --------------------------------------------------

  /// Repartition fault ownership by live-element weight right now: capture
  /// the merged boundary snapshot, LPT-pack the per-fault live-element
  /// counts into num_shards() bins, refresh every engine's ownership mask
  /// (suspension overlay reapplied), and restore.  Must be called at a
  /// vector boundary.  No-op (returns 0) with a single shard.  Returns the
  /// number of faults migrated.  The policy calls this automatically; it is
  /// public for tests and explicit schedules.
  std::size_t rebalance_now();

  /// Live-element imbalance across shards right now: heaviest shard over
  /// the balanced share (1.0 = even, num_shards() = one shard carries
  /// everything).  The quantity RebalancePolicy::threshold tests.
  double imbalance_ratio() const;

  /// Rebalancing counters (see SimStats).
  std::uint64_t rebalances() const { return rebalances_; }
  std::uint64_t faults_migrated() const { return faults_migrated_; }
  std::uint64_t elements_migrated() const { return elements_migrated_; }

  // -- telemetry -----------------------------------------------------------
  /// Attach a Chrome-trace emitter (obs/trace.h): one track per shard
  /// records a slice per vector (lockstep) or per sequence (coarse run),
  /// with instant markers on fault detections; a driver track records the
  /// merge.  Pass nullptr to detach.  The emitter must outlive the runs it
  /// observes.
  void set_trace(obs::TraceEmitter* trace);

  /// Attach a time-series sampler (obs/timeline.h): every wanted vector
  /// records one sample -- merged detections, per-shard live-fault weight
  /// and apply_vector latency, pool population, counter totals.  The
  /// timeline's shard width is fixed here.  `vec_base` offsets the sample
  /// vector coordinate (a resumed campaign continues its suite position).
  /// Sampling forces run() onto the lockstep path so every vector is a
  /// sample point.  Pass nullptr to detach.  The timeline must outlive the
  /// runs it observes.
  void set_timeline(obs::Timeline* timeline, std::uint64_t vec_base = 0);
  obs::Timeline* timeline() const { return timeline_; }

  // -- statistics ----------------------------------------------------------
  SimStats stats() const;
  /// Total footprint: every shard's run state plus the shared model once.
  std::size_t bytes() const;
  /// Aggregated memory table: pool and fixed run-state bytes summed across
  /// shards, model and circuit counted once.
  void report_memory(MemStats& ms) const;

 private:
  /// The two-dimensional driver loop (batch_width > 1): packed good-machine
  /// precompute per band, then per-lane replay with the oracle armed.
  void run_batched(const TestSuite& t, Val ff_init, unsigned width);
  void replay_observations();
  /// tid of the driver track (one past the shard tracks).
  std::uint32_t driver_tid() const {
    return static_cast<std::uint32_t>(engines_.size());
  }
  /// Per-shard engine options: default pool pre-size from the shard's slice,
  /// universe-wide element budget divided across the shards.
  CsimOptions shard_csim_options(unsigned s) const;
  /// Build (or rebuild, on the containment path) shard `s`'s engine with the
  /// current suspension overlay.
  std::unique_ptr<ConcurrentSim> make_shard_engine(unsigned s) const;
  /// The containment path: isolation boundary + watchdog + bounded requeue.
  std::size_t apply_vector_resilient(std::span<const Val> pi_vals);
  /// Assemble and record one timeline sample for the vector that just
  /// completed (driver thread; merged status is the deterministic source).
  void record_sample(std::uint64_t vec_no, std::uint64_t started_us);
  /// End-of-vector policy check: rebalance_now() when the configured
  /// trigger (auto threshold + cooldown, or every-N) fires.
  void maybe_rebalance();

  std::shared_ptr<const SimModel> model_;
  ShardedOptions opt_;
  FaultPartition part_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<ConcurrentSim>> engines_;

  // Current suspension overlay (mirrors what every engine was last given).
  std::vector<std::uint8_t> suspended_;
  // Driver-level vector counter: the `vector` coordinate injection specs
  // address, and the campaign's notion of progress.
  std::uint64_t vectors_applied_ = 0;
  std::uint64_t shard_retries_ = 0;
  std::uint64_t shard_requeues_ = 0;
  // Dynamic-rebalancing counters and the auto policy's cooldown anchor.
  std::uint64_t rebalances_ = 0;
  std::uint64_t faults_migrated_ = 0;
  std::uint64_t elements_migrated_ = 0;
  std::uint64_t last_rebalance_vec_ = 0;
  // A hung shard's abandoned worker and engine: the thread still runs (or
  // sleeps) inside the engine, so both stay alive, parked here, until the
  // destructor joins them.
  struct Abandoned {
    std::unique_ptr<ConcurrentSim> engine;
    std::thread worker;
  };
  std::vector<Abandoned> graveyard_;

  ConcurrentSim::DetectionObserver observer_;
  struct Observation {
    std::uint32_t po;
    std::uint32_t fault;
    bool hard;
  };
  std::vector<std::vector<Observation>> shard_obs_;  // per shard, per vector

  obs::TraceEmitter* trace_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  std::uint64_t vec_base_ = 0;
  // Per-shard apply_vector wall time of the last sampled vector, and a
  // preallocated sample the driver refills (no allocation per sample).
  std::vector<std::uint64_t> shard_latency_us_;
  obs::TimelineSample sample_scratch_;
  // Merge/replay happen in const accessors; the timers still record them.
  mutable obs::PhaseTimers driver_timers_;
  // Driver-side telemetry: the packed good machine's counters plus
  // BatchLanesWasted and the rebalance counters, merged into stats().total
  // (no engine owns them).
  obs::Counters batch_counters_;

  mutable std::vector<Detect> merged_;
  mutable bool merged_dirty_ = true;
};

}  // namespace cfs
