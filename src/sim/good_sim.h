// Scalar three-valued zero-delay good-machine simulator.
//
// This is the reference semantics for the whole library: every fault
// simulator (concurrent, serial, PROOFS-style, deductive) must agree with a
// GoodSim carrying the corresponding fault injection.  It is levelized and
// event-driven; per-gate state is the packed word of packed_state.h with
// redundant input-pin copies, exactly the gate-state representation the
// concurrent simulator uses.
//
// A single optional stuck-at injection turns GoodSim into one faulty
// machine -- the serial baseline replays the test sequence through one
// injected GoodSim per fault.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/transition_model.h"
#include "netlist/circuit.h"
#include "sim/level_queue.h"
#include "util/logic.h"
#include "util/packed_state.h"

namespace cfs {

/// Pin index denoting a gate's output rather than an input pin.
inline constexpr std::uint16_t kOutPin = 0xFFFF;

class GoodSim {
 public:
  explicit GoodSim(const Circuit& c, Val ff_init = Val::X);

  const Circuit& circuit() const { return *c_; }

  /// Re-initialise: primary inputs X, flip-flops `ff_init`, all gates
  /// re-evaluated.  Keeps any active injection in force.
  void reset(Val ff_init = Val::X);

  /// Drive primary input `pi_index` (position in circuit().inputs()).
  void set_input(unsigned pi_index, Val v);
  void set_inputs(std::span<const Val> vals);

  /// Propagate all pending combinational events (zero-delay settle).
  void settle();

  /// Latch every DFF from its settled D value, then settle the fanout cone.
  /// Call after sampling outputs: POs and FFs sample the same settled state.
  void clock();

  /// Convenience: set_inputs + settle.
  void apply(std::span<const Val> pi_vals) {
    set_inputs(pi_vals);
    settle();
  }

  Val value(GateId g) const { return state_out(states_[g]); }
  GateState state(GateId g) const { return states_[g]; }
  Val output(unsigned po_index) const;
  std::vector<Val> output_values() const;
  std::vector<Val> ff_values() const;

  /// Force a stuck-at value at a site: `pin == kOutPin` faults the gate
  /// output, otherwise input pin `pin`.  Takes effect immediately (the site
  /// is re-evaluated and the change propagates on the next settle()).
  void inject(GateId gate, std::uint16_t pin, Val v);
  /// Remove the injection.  Combinational sites are re-evaluated on the
  /// next settle(); a forced PI/DFF *output* keeps its last value until the
  /// next set_input()/clock()/reset() writes it -- call reset() for a clean
  /// machine.
  void clear_injection();
  bool has_injection() const { return inj_mode_ != InjMode::None; }

  /// Inject a transition fault: the transition of input pin `pin` of `gate`
  /// towards `target` is delayed.  While the hold phase is active (see
  /// set_transition_hold) the pin evaluates to the Table-1 FV of
  /// (prev value, current value); in the fire phase it passes through.
  void inject_transition(GateId gate, std::uint16_t pin, Val target);

  /// Switch the transition injection between hold (pass 1) and fire
  /// (pass 2); `prev` is the previous-frame settled value of the site pin.
  /// Re-schedules the site gate.
  void set_transition_hold(bool hold, Val prev);

  /// Raw (unforced) value currently on input pin `pin` of gate `g`.
  Val pin_value(GateId g, unsigned pin) const {
    return state_get(states_[g], pin);
  }

  /// Drive every DFF output directly (bypassing clock()); used by the
  /// serial transition engine's explicit master/slave sequencing.
  void load_ff_outputs(std::span<const Val> qvals);

  /// Gates evaluated since construction (activity metric).
  std::uint64_t events_processed() const { return queue_.processed(); }

  std::size_t bytes() const {
    return states_.capacity() * sizeof(GateState) + queue_.bytes();
  }

 private:
  enum class InjMode : std::uint8_t { None, Stuck, Transition };

  Val evaluate(GateId g) const;
  void commit_output(GateId g, Val v);
  void force_source(GateId g);
  bool inj_active() const { return inj_mode_ == InjMode::Stuck; }

  const Circuit* c_;
  std::vector<GateState> states_;
  LevelQueue queue_;
  InjMode inj_mode_ = InjMode::None;
  GateId inj_gate_ = kNoGate;
  std::uint16_t inj_pin_ = kOutPin;
  Val inj_val_ = Val::X;   // stuck value / transition target
  bool inj_hold_ = false;  // transition: hold phase active
  Val inj_prev_ = Val::X;  // transition: previous settled site-pin value
  std::vector<Val> latch_buf_;  // scratch for two-phase DFF latching
};

}  // namespace cfs
