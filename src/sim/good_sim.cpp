#include "sim/good_sim.h"

#include "util/error.h"

namespace cfs {

GoodSim::GoodSim(const Circuit& c, Val ff_init) : c_(&c), queue_(c) {
  states_.resize(c.num_gates());
  latch_buf_.resize(c.dffs().size());
  reset(ff_init);
}

Val GoodSim::evaluate(GateId g) const {
  GateState s = states_[g];
  if (inj_gate_ == g && inj_pin_ != kOutPin) {
    if (inj_mode_ == InjMode::Stuck) {
      s = state_set(s, inj_pin_, inj_val_);
    } else if (inj_mode_ == InjMode::Transition && inj_hold_) {
      const Val cv = state_get(s, inj_pin_);
      s = state_set(s, inj_pin_,
                    transition_hold_value(inj_prev_, cv, inj_val_));
    }
  }
  Val v = c_->eval(g, s);
  if (inj_mode_ == InjMode::Stuck && inj_gate_ == g && inj_pin_ == kOutPin) {
    v = inj_val_;
  }
  return v;
}

void GoodSim::commit_output(GateId g, Val v) {
  states_[g] = state_set_out(states_[g], v);
  for (const Fanout& fo : c_->fanouts(g)) {
    states_[fo.gate] = state_set(states_[fo.gate], fo.pin, v);
    if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
  }
}

void GoodSim::force_source(GateId g) {
  // Apply an output injection on a source (PI or DFF) right away.
  if (inj_mode_ == InjMode::Stuck && inj_gate_ == g && inj_pin_ == kOutPin &&
      state_out(states_[g]) != inj_val_) {
    commit_output(g, inj_val_);
  }
}

void GoodSim::reset(Val ff_init) {
  for (GateId g = 0; g < c_->num_gates(); ++g) {
    states_[g] = state_all_x(c_->num_fanins(g));
  }
  // Source values: X on PIs, ff_init on DFF outputs, output injections win.
  auto source_val = [&](GateId g, Val base) {
    if (inj_mode_ == InjMode::Stuck && inj_gate_ == g && inj_pin_ == kOutPin) {
      return inj_val_;
    }
    return base;
  };
  for (GateId g : c_->inputs()) {
    states_[g] = state_set_out(states_[g], source_val(g, Val::X));
  }
  for (GateId g : c_->dffs()) {
    states_[g] = state_set_out(states_[g], source_val(g, ff_init));
  }
  // Full sweep: push source values into pins, evaluate in topo order.
  for (GateId g = 0; g < c_->num_gates(); ++g) {
    if (!is_combinational(c_->kind(g))) {
      const Val v = state_out(states_[g]);
      for (const Fanout& fo : c_->fanouts(g)) {
        states_[fo.gate] = state_set(states_[fo.gate], fo.pin, v);
      }
    }
  }
  for (GateId g : c_->topo_order()) {
    const Val v = evaluate(g);
    states_[g] = state_set_out(states_[g], v);
    for (const Fanout& fo : c_->fanouts(g)) {
      states_[fo.gate] = state_set(states_[fo.gate], fo.pin, v);
    }
  }
}

void GoodSim::set_input(unsigned pi_index, Val v) {
  const GateId g = c_->inputs()[pi_index];
  if (inj_mode_ == InjMode::Stuck && inj_gate_ == g && inj_pin_ == kOutPin) {
    v = inj_val_;
  }
  if (state_out(states_[g]) != v) commit_output(g, v);
}

void GoodSim::set_inputs(std::span<const Val> vals) {
  if (vals.size() != c_->inputs().size()) {
    throw Error("set_inputs: expected " +
                std::to_string(c_->inputs().size()) + " values, got " +
                std::to_string(vals.size()));
  }
  for (std::size_t i = 0; i < vals.size(); ++i) {
    set_input(static_cast<unsigned>(i), vals[i]);
  }
}

void GoodSim::settle() {
  queue_.drain([this](GateId g) {
    const Val v = evaluate(g);
    if (v != state_out(states_[g])) commit_output(g, v);
  });
}

void GoodSim::clock() {
  const auto dffs = c_->dffs();
  // Phase 1 (master): capture all D values from the settled state.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    Val d = state_get(states_[dffs[i]], 0);
    if (inj_gate_ == dffs[i]) {
      if (inj_mode_ == InjMode::Stuck &&
          (inj_pin_ == 0 || inj_pin_ == kOutPin)) {
        d = inj_val_;  // D-pin fault or Q output fault
      } else if (inj_mode_ == InjMode::Transition && inj_pin_ == 0 &&
                 inj_hold_) {
        d = transition_hold_value(inj_prev_, d, inj_val_);
      }
    }
    latch_buf_[i] = d;
  }
  // Phase 2 (slave): drive Q outputs and settle the cone.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    if (state_out(states_[dffs[i]]) != latch_buf_[i]) {
      commit_output(dffs[i], latch_buf_[i]);
    }
  }
  settle();
}

Val GoodSim::output(unsigned po_index) const {
  return value(c_->outputs()[po_index]);
}

std::vector<Val> GoodSim::output_values() const {
  std::vector<Val> out;
  out.reserve(c_->outputs().size());
  for (GateId g : c_->outputs()) out.push_back(value(g));
  return out;
}

std::vector<Val> GoodSim::ff_values() const {
  std::vector<Val> out;
  out.reserve(c_->dffs().size());
  for (GateId g : c_->dffs()) out.push_back(value(g));
  return out;
}

void GoodSim::inject(GateId gate, std::uint16_t pin, Val v) {
  inj_mode_ = InjMode::Stuck;
  inj_gate_ = gate;
  inj_pin_ = pin;
  inj_val_ = v;
  if (pin == kOutPin && !is_combinational(c_->kind(gate))) {
    force_source(gate);
  } else if (is_combinational(c_->kind(gate))) {
    queue_.schedule(gate);
  }
  // A D-pin fault on a DFF takes effect at the next clock().
}

void GoodSim::inject_transition(GateId gate, std::uint16_t pin, Val target) {
  if (pin == kOutPin) {
    throw Error("transition faults must sit on input pins");
  }
  inj_mode_ = InjMode::Transition;
  inj_gate_ = gate;
  inj_pin_ = pin;
  inj_val_ = target;
  inj_hold_ = false;
  inj_prev_ = Val::X;
  if (is_combinational(c_->kind(gate))) queue_.schedule(gate);
}

void GoodSim::set_transition_hold(bool hold, Val prev) {
  inj_hold_ = hold;
  inj_prev_ = prev;
  if (inj_gate_ != kNoGate && is_combinational(c_->kind(inj_gate_))) {
    queue_.schedule(inj_gate_);
  }
}

void GoodSim::load_ff_outputs(std::span<const Val> qvals) {
  const auto dffs = c_->dffs();
  if (qvals.size() != dffs.size()) {
    throw Error("load_ff_outputs: wrong flip-flop count");
  }
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    Val v = qvals[i];
    if (inj_mode_ == InjMode::Stuck && inj_gate_ == dffs[i] &&
        inj_pin_ == kOutPin) {
      v = inj_val_;
    }
    if (state_out(states_[dffs[i]]) != v) commit_output(dffs[i], v);
  }
  settle();
}

void GoodSim::clear_injection() {
  const bool had = inj_mode_ != InjMode::None;
  const GateId g = inj_gate_;
  inj_mode_ = InjMode::None;
  inj_gate_ = kNoGate;
  if (had && g != kNoGate && is_combinational(c_->kind(g))) {
    queue_.schedule(g);
  }
}

}  // namespace cfs
