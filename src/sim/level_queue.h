// Zero-delay event queue: per-level dirty bitmaps of gate ids.
//
// The paper's key synchronous-circuit simplification (§2.1): "the timing
// queue is no longer necessary and only gate identifiers are 'scheduled'
// into the event queue when there is an event on at least one machine
// element."  Gates are drained in level order; because a combinational
// fanout always sits at a strictly higher level than its driver, a single
// ascending sweep settles the network.
//
// Scheduling is a coalescing bitmap OR rather than a duplicate-checked
// bucket push: every gate owns one bit at a fixed *position* -- gates laid
// out in (level, id) order, each level padded to a 64-bit word boundary so
// no word spans two levels -- and schedule() ORs that bit in (a second OR
// arms the level in a summary bitmap).  Scheduling an already-pending gate
// is therefore a no-op OR instead of a branch, and draining a level walks
// its words with ctz, visiting set bits in ascending gate-id order.
//
// Ordering guarantee: within a level gates are processed in ascending id
// order (the bucket queue processed them in insertion order).  Gates of one
// level never feed each other -- a combinational gate's level is strictly
// above all of its fanins' -- so any within-level permutation produces the
// same settled state, the same detection order, and the same counter
// totals; the digests and counter pins downstream rely on exactly this.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "obs/counters.h"
#include "simd/simd.h"

namespace cfs {

class LevelQueue {
 public:
  explicit LevelQueue(const Circuit& c) {
    const std::size_t n = c.num_gates();
    const unsigned nl = c.num_levels();
    // Counting sort into (level, id) positions, padding each level's range
    // to a word boundary so a word never spans two levels.
    std::vector<std::uint32_t> count(nl, 0);
    for (GateId g = 0; g < n; ++g) ++count[c.level(g)];
    word_begin_.resize(nl + 1);
    std::vector<std::uint32_t> next(nl);
    std::uint32_t w = 0;
    for (unsigned lvl = 0; lvl < nl; ++lvl) {
      word_begin_[lvl] = w;
      next[lvl] = w * 64;
      w += (count[lvl] + 63) / 64;
    }
    word_begin_[nl] = w;
    gate_at_.assign(std::size_t{w} * 64, kNoGate);  // padding bits never set
    sched_key_.resize(n);
    for (GateId g = 0; g < n; ++g) {
      const unsigned lvl = c.level(g);
      const std::uint32_t pos = next[lvl]++;
      sched_key_[g] = (std::uint64_t{lvl} << 32) | pos;
      gate_at_[pos] = g;
    }
    words_.assign(w, 0);
    dirty_.assign((nl + 63) / 64, 0);
    std::uint32_t widest = 0;
    for (unsigned lvl = 0; lvl < nl; ++lvl) {
      widest = std::max(widest, word_begin_[lvl + 1] - word_begin_[lvl]);
    }
    batch_pos_.resize(std::size_t{widest} * 64);
    batch_gates_.resize(std::size_t{widest} * 64);
  }

  /// Schedule a gate for (re)evaluation.  Idempotent: an already-pending
  /// gate's bit is simply ORed again.
  void schedule(GateId g) {
    const std::uint64_t key = sched_key_[g];
    const std::uint32_t pos = static_cast<std::uint32_t>(key);
    const std::uint32_t lvl = static_cast<std::uint32_t>(key >> 32);
    std::uint64_t& word = words_[pos >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (pos & 63);
#if CFS_OBS_ENABLED
    if (word & bit) {
      CFS_COUNT(counters_, BitmapCoalesced);
    } else {
      CFS_COUNT(counters_, EventsScheduled);
    }
#endif
    word |= bit;
    dirty_[lvl >> 6] |= std::uint64_t{1} << (lvl & 63);
  }

  bool empty() const {
    for (const std::uint64_t d : dirty_) {
      if (d != 0) return false;
    }
    return true;
  }

  /// Discard every pending event.  Recovery primitive: an exception thrown
  /// from drain()'s process callback (e.g. a pool-budget overflow) leaves
  /// bits set; the engine rebuild clears them before rescheduling from
  /// scratch.
  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
  }

  /// Drain in ascending level order: sweep the lowest dirty level's words,
  /// processing set bits in ascending gate-id order, until no level is
  /// dirty.  `process(g)` may schedule gates at strictly higher levels; a
  /// same-level reschedule re-arms the level and is swept again before the
  /// queue moves on.
  template <typename F>
  void drain(F&& process) {
    for (;;) {
      std::uint32_t lvl = kNoLevel;
      for (std::size_t dw = 0; dw < dirty_.size(); ++dw) {
        if (dirty_[dw] != 0) {
          lvl = static_cast<std::uint32_t>(dw * 64) +
                static_cast<std::uint32_t>(std::countr_zero(dirty_[dw]));
          break;
        }
      }
      if (lvl == kNoLevel) break;
      dirty_[lvl >> 6] &= ~(std::uint64_t{1} << (lvl & 63));
      for (std::uint32_t w = word_begin_[lvl]; w < word_begin_[lvl + 1];
           ++w) {
        // Re-read after every callback: process() may set further bits in
        // this word, and consuming the lowest set bit first keeps the
        // ascending-id order.
        while (words_[w] != 0) {
          const unsigned b =
              static_cast<unsigned>(std::countr_zero(words_[w]));
          words_[w] &= words_[w] - 1;
          ++processed_;
          process(gate_at_[(std::size_t{w} << 6) | b]);
        }
      }
    }
  }

  /// Batched drain: identical level order and within-level ascending-id
  /// order as drain(), but each dirty level is emitted as one whole batch
  /// via the SIMD sweep kernels -- a wide nonzero skip over the summary
  /// bitmap, then a compressed-index expansion of the level's set bits --
  /// and handed to `process_batch(const GateId* gates, std::size_t n)` in
  /// a single call.  The level's bits are snapshotted and cleared before
  /// the callback runs, so a (re)schedule of a gate in this level from
  /// inside the batch re-arms the level and is swept in a fresh batch
  /// rather than appended to the current one; callers whose callbacks only
  /// schedule strictly-higher levels (every settle loop in this repo --
  /// combinational fanouts always sit above their drivers) observe
  /// bit-identical processing order to drain().  On an exception from the
  /// callback the rest of the snapshot is dropped; all engine recovery
  /// paths clear() and reschedule from scratch, which is exactly the
  /// contract drain() already had.
  template <typename F>
  void drain_levels(F&& process_batch) {
    const simd::Kernels& k = simd::kernels();
    for (;;) {
      const std::size_t dw = k.find_nonzero(dirty_.data(), dirty_.size());
      if (dw == dirty_.size()) break;
      const std::uint32_t lvl =
          static_cast<std::uint32_t>(dw * 64) +
          static_cast<std::uint32_t>(std::countr_zero(dirty_[dw]));
      dirty_[dw] &= dirty_[dw] - 1;
      const std::uint32_t wb = word_begin_[lvl];
      const std::uint32_t we = word_begin_[lvl + 1];
      const std::size_t count = k.expand_bits(
          words_.data() + wb, we - wb, wb * 64, batch_pos_.data());
      std::fill(words_.begin() + wb, words_.begin() + we, 0);
      if (count == 0) continue;
      for (std::size_t i = 0; i < count; ++i) {
        batch_gates_[i] = gate_at_[batch_pos_[i]];
      }
      processed_ += count;
      process_batch(batch_gates_.data(), count);
    }
  }

  /// Total gates processed over the queue's lifetime (an activity metric).
  std::uint64_t processed() const { return processed_; }

  /// Scheduling telemetry (EventsScheduled / BitmapCoalesced; zero when
  /// built with CFS_OBS=OFF).
  const obs::Counters& counters() const { return counters_; }

  std::size_t bytes() const {
    return sched_key_.capacity() * sizeof(std::uint64_t) +
           gate_at_.capacity() * sizeof(GateId) +
           word_begin_.capacity() * sizeof(std::uint32_t) +
           words_.capacity() * sizeof(std::uint64_t) +
           dirty_.capacity() * sizeof(std::uint64_t) +
           batch_pos_.capacity() * sizeof(std::uint32_t) +
           batch_gates_.capacity() * sizeof(GateId);
  }

 private:
  static constexpr std::uint32_t kNoLevel = 0xFFFFFFFFu;

  std::vector<std::uint64_t> sched_key_;   // per gate: (level << 32) | pos
  std::vector<GateId> gate_at_;            // position -> gate id
  std::vector<std::uint32_t> word_begin_;  // per level: first word index
  std::vector<std::uint64_t> words_;       // dirty bit per position
  std::vector<std::uint64_t> dirty_;       // dirty bit per level
  std::vector<std::uint32_t> batch_pos_;   // drain_levels position scratch
  std::vector<GateId> batch_gates_;        // drain_levels gate-id scratch
  std::uint64_t processed_ = 0;
  obs::Counters counters_;
};

}  // namespace cfs
