// Zero-delay event queue: per-level buckets of gate ids.
//
// The paper's key synchronous-circuit simplification (§2.1): "the timing
// queue is no longer necessary and only gate identifiers are 'scheduled'
// into the event queue when there is an event on at least one machine
// element."  Gates are drained in level order; because a combinational
// fanout always sits at a strictly higher level than its driver, a single
// ascending sweep settles the network.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "obs/counters.h"

namespace cfs {

class LevelQueue {
 public:
  explicit LevelQueue(const Circuit& c)
      : levels_(c.num_gates()), scheduled_(c.num_gates(), 0) {
    for (GateId g = 0; g < c.num_gates(); ++g) levels_[g] = c.level(g);
    buckets_.resize(c.num_levels());
  }

  /// Schedule a combinational gate for (re)evaluation.  Idempotent.
  void schedule(GateId g) {
    if (scheduled_[g]) {
      CFS_COUNT(counters_, EventsCoalesced);
      return;
    }
    CFS_COUNT(counters_, EventsScheduled);
    scheduled_[g] = 1;
    buckets_[levels_[g]].push_back(g);
    ++pending_;
  }

  bool empty() const { return pending_ == 0; }

  /// Discard every pending event.  Recovery primitive: an exception thrown
  /// from drain()'s process callback (e.g. a pool-budget overflow) leaves
  /// entries parked in the buckets; the engine rebuild clears them before
  /// rescheduling from scratch.
  void clear() {
    for (auto& bucket : buckets_) {
      for (const GateId g : bucket) scheduled_[g] = 0;
      bucket.clear();
    }
    pending_ = 0;
  }

  /// Drain in ascending level order.  `process(g)` may schedule gates at
  /// strictly higher levels (asserted in debug builds).
  template <typename F>
  void drain(F&& process) {
    for (std::size_t lvl = 0; lvl < buckets_.size(); ++lvl) {
      auto& bucket = buckets_[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const GateId g = bucket[i];
        scheduled_[g] = 0;
        --pending_;
        ++processed_;
        process(g);
      }
      bucket.clear();
    }
    assert(pending_ == 0);
  }

  /// Total gates processed over the queue's lifetime (an activity metric).
  std::uint64_t processed() const { return processed_; }

  /// Scheduling telemetry (EventsScheduled / EventsCoalesced; zero when
  /// built with CFS_OBS=OFF).
  const obs::Counters& counters() const { return counters_; }

  std::size_t bytes() const {
    std::size_t b = levels_.capacity() * sizeof(std::uint32_t) +
                    scheduled_.capacity();
    for (const auto& v : buckets_) b += v.capacity() * sizeof(GateId);
    return b;
  }

 private:
  std::vector<std::uint32_t> levels_;
  std::vector<std::uint8_t> scheduled_;
  std::vector<std::vector<GateId>> buckets_;
  std::size_t pending_ = 0;
  std::uint64_t processed_ = 0;
  obs::Counters counters_;
};

}  // namespace cfs
