// Deterministic synthetic synchronous circuit generator.
//
// The real ISCAS-89 netlists are not redistributed with this repository;
// instead, each benchmark circuit is reproduced by a generator seeded from
// its name and parameterised by the published profile (PI/PO/FF/gate counts,
// gate-type mix, fanin distribution).  The fault-simulation algorithms under
// study are sensitive to circuit *scale and shape* -- gate count, logic
// depth, fanout structure, flip-flop count -- all of which the generator
// reproduces; they are not sensitive to the exact Boolean functions.  Real
// .bench files can be dropped in through netlist/bench_parser at any time.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/circuit.h"

namespace cfs {

struct GenProfile {
  std::string name;
  unsigned num_pis = 4;
  unsigned num_pos = 2;
  unsigned num_dffs = 4;
  unsigned num_gates = 50;  ///< combinational gates
  std::uint64_t seed = 1;
  /// Fanin locality: probability (x1000) that a fanin is drawn from the
  /// recent window rather than uniformly from all existing signals.  Higher
  /// values produce deeper circuits.
  unsigned locality_permille = 700;
};

/// Generate a levelizable synchronous circuit matching the profile exactly
/// in PI/PO/DFF/gate counts.  Deterministic in (profile, seed).
Circuit generate_circuit(const GenProfile& profile);

}  // namespace cfs
