// Published ISCAS-89 benchmark profiles and the factory that reproduces
// them (s27 verbatim, the rest through the synthetic generator -- see
// circuit_gen.h for the substitution rationale).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "netlist/circuit.h"

namespace cfs {

struct IscasProfile {
  std::string_view name;
  unsigned num_pis;
  unsigned num_pos;
  unsigned num_dffs;
  unsigned num_gates;
};

/// The ISCAS-89 circuits the paper evaluates, with their published counts.
std::span<const IscasProfile> iscas89_profiles();

/// Look up a profile by name; throws cfs::Error if unknown.
const IscasProfile& iscas89_profile(std::string_view name);

/// Materialise a circuit for a benchmark name: the real netlist for s27,
/// a profile-matched synthetic circuit otherwise.  Deterministic.
Circuit make_benchmark(std::string_view name);

}  // namespace cfs
