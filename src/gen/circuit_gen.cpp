#include "gen/circuit_gen.h"

#include <algorithm>
#include <vector>

#include "netlist/builder.h"
#include "util/rng.h"

namespace cfs {

namespace {

GateKind pick_kind(Rng& rng, unsigned nfanins) {
  if (nfanins == 1) return rng.chance(3, 4) ? GateKind::Not : GateKind::Buf;
  // ISCAS-like mix: NAND/NOR dominate, some AND/OR, occasional XOR pairs.
  const std::uint64_t r = rng.below(100);
  if (r < 30) return GateKind::Nand;
  if (r < 55) return GateKind::Nor;
  if (r < 70) return GateKind::And;
  if (r < 85) return GateKind::Or;
  if (r < 93) return GateKind::Xor;
  return GateKind::Xnor;
}

unsigned pick_fanin_count(Rng& rng) {
  // Real ISCAS-89 netlists are inverter/buffer-rich (roughly a quarter of
  // the gates), which is what gives them their fanout-free regions.
  const std::uint64_t r = rng.below(100);
  if (r < 25) return 1;
  if (r < 72) return 2;
  if (r < 89) return 3;
  return 4;
}

}  // namespace

Circuit generate_circuit(const GenProfile& p) {
  Rng rng(p.seed);

  // Signals are indexed 0..n-1: PIs, then DFF outputs, then gates.
  const std::size_t ff0 = p.num_pis;
  const std::size_t g0 = ff0 + p.num_dffs;
  const std::size_t n = g0 + p.num_gates;

  std::vector<GateKind> kinds(n, GateKind::Input);
  std::vector<std::vector<std::size_t>> fanins(n);
  std::vector<unsigned> uses(n, 0);

  // Gate cloud: fanins drawn from everything created earlier, with a
  // recency bias so the circuit develops depth.
  for (std::size_t g = g0; g < n; ++g) {
    const std::size_t avail = g;  // signals 0..g-1 usable
    const unsigned nf = std::min<unsigned>(pick_fanin_count(rng),
                                           static_cast<unsigned>(avail));
    kinds[g] = pick_kind(rng, nf);
    auto& fi = fanins[g];
    for (unsigned k = 0; k < nf; ++k) {
      // Chain bias: the first fanin often continues the most recent gate,
      // which is what creates the fanout-free chains real netlists have.
      if (k == 0 && g > g0 && rng.chance(35, 100)) {
        fi.push_back(g - 1);
        continue;
      }
      for (int attempt = 0; attempt < 10; ++attempt) {
        std::size_t idx;
        if (rng.chance(25, 100)) {
          // Hub bias: real netlists concentrate fanout on a few signals
          // (clock-enable-like nets); sinking picks into hubs leaves the
          // majority of gates with the single fanout macros need.
          idx = rng.below(std::min<std::size_t>(avail, 64));
        } else if (const std::size_t window =
                       std::max<std::size_t>(48, avail / 6);
                   rng.chance(p.locality_permille, 1000) && avail > window) {
          // The window scales with circuit size so logic depth grows like
          // the real benchmarks' (tens of levels), not linearly.
          idx = avail - 1 - rng.below(window);
        } else {
          idx = rng.below(avail);
        }
        if (std::find(fi.begin(), fi.end(), idx) == fi.end()) {
          fi.push_back(idx);
          break;
        }
      }
    }
    if (fi.empty()) fi.push_back(rng.below(avail));
    for (std::size_t idx : fi) ++uses[idx];
    if (fi.size() == 1 && kinds[g] != GateKind::Not) kinds[g] = GateKind::Buf;
  }

  // DFF data inputs and POs: drawn from the deeper half of the cloud.
  auto pick_sink = [&]() -> std::size_t {
    if (p.num_gates == 0) return rng.below(n);
    const std::size_t lo = g0 + p.num_gates / 2;
    for (int probe = 0; probe < 16; ++probe) {
      const std::size_t c = lo + rng.below(n - lo);
      if (uses[c] == 0) return c;
    }
    return lo + rng.below(n - lo);
  };
  for (std::size_t f = ff0; f < g0; ++f) {
    kinds[f] = GateKind::Dff;
    const std::size_t src = pick_sink();
    fanins[f].push_back(src);
    ++uses[src];
  }
  std::vector<std::size_t> pos;
  for (unsigned i = 0; i < p.num_pos && pos.size() < n; ++i) {
    std::size_t src = pick_sink();
    for (int attempt = 0;
         attempt < 64 &&
         std::find(pos.begin(), pos.end(), src) != pos.end();
         ++attempt) {
      src = pick_sink();
    }
    if (std::find(pos.begin(), pos.end(), src) != pos.end()) {
      for (std::size_t c = 0; c < n; ++c) {
        if (std::find(pos.begin(), pos.end(), c) == pos.end()) {
          src = c;
          break;
        }
      }
    }
    pos.push_back(src);
    ++uses[src];
  }

  // Dead-end elimination: a gate with no fanout that is neither a PO nor a
  // DFF input is unobservable (every fault in its cone is undetectable and
  // the logic is dead).  Rewire each dead end into a *later* gate (keeps
  // the construction acyclic) by replacing one of its fanins.  Replacing a
  // fanin may orphan the old driver, so iterate to a fixpoint; processing
  // dead ends from high to low indices keeps the pass near-linear.
  auto is_po = [&](std::size_t s) {
    return std::find(pos.begin(), pos.end(), s) != pos.end();
  };
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    for (std::size_t g = n; g-- > g0;) {
      if (uses[g] > 0 || is_po(g)) continue;
      // Collect later gates that could absorb g as a fanin.
      bool rewired = false;
      for (int attempt = 0; attempt < 32 && g + 1 < n; ++attempt) {
        const std::size_t h = g + 1 + rng.below(n - g - 1);
        if (kinds[h] == GateKind::Dff) continue;
        auto& fi = fanins[h];
        if (std::find(fi.begin(), fi.end(), g) != fi.end()) continue;
        const std::size_t victim = rng.below(fi.size());
        --uses[fi[victim]];
        fi[victim] = g;
        ++uses[g];
        rewired = true;
        changed = true;
        break;
      }
      // If no absorber was found (rare for late gates), the dead end stays;
      // its cone simply contributes undetectable faults, like real designs'
      // redundant logic does.
      (void)rewired;
    }
    if (!changed) break;
  }

  // Emit through the Builder (name resolution + validation for free).
  Builder b(p.name);
  auto name_of = [&](std::size_t s) -> std::string {
    if (s < ff0) return "pi" + std::to_string(s);
    if (s < g0) return "ff" + std::to_string(s - ff0);
    return "g" + std::to_string(s - g0);
  };
  for (std::size_t s = 0; s < ff0; ++s) b.add_input(name_of(s));
  for (std::size_t s = ff0; s < g0; ++s) {
    b.add_dff(name_of(s), name_of(fanins[s][0]));
  }
  for (std::size_t s = g0; s < n; ++s) {
    std::vector<std::string> fi;
    fi.reserve(fanins[s].size());
    for (std::size_t f : fanins[s]) fi.push_back(name_of(f));
    b.add_gate(kinds[s], name_of(s), fi);
  }
  for (std::size_t s : pos) b.mark_output(name_of(s));
  return b.build();
}

}  // namespace cfs
