// Small real circuits embedded verbatim, plus hand-written teaching
// circuits used throughout the tests and examples.
#pragma once

#include "netlist/circuit.h"

namespace cfs {

/// ISCAS-89 s27 (real netlist): 4 PIs, 1 PO, 3 DFFs, 10 gates.
Circuit make_s27();

/// ISCAS-85 c17 (real netlist): 5 PIs, 2 POs, 6 NAND gates, combinational.
Circuit make_c17();

/// 1-bit full adder (combinational): inputs a, b, cin; outputs sum, cout.
Circuit make_full_adder();

/// N-bit synchronous binary counter with enable: wraps modulo 2^N.
/// Inputs: en; outputs: q0..q(N-1).
Circuit make_counter(unsigned bits);

/// N-bit shift register with serial input and parity output.
/// Inputs: sin; outputs: q(N-1), parity (XOR of all stages).
Circuit make_shift_register(unsigned bits);

/// Tiny 2-state Mealy FSM (sequence detector for "11").
/// Inputs: in; outputs: det.
Circuit make_seq_detector();

/// Fibonacci LFSR with taps at the two highest stages (x^N + x^(N-1) + 1).
/// Inputs: en (feedback gated); outputs: q(N-1).  N >= 2.
Circuit make_lfsr(unsigned bits);

/// N-bit Gray-code counter: binary counter plus the binary-to-Gray XOR
/// stage.  Inputs: en; outputs: g0..g(N-1).
Circuit make_gray_counter(unsigned bits);

/// N-bit ripple-carry adder (combinational).
/// Inputs: a0..a(N-1), b0..b(N-1), cin; outputs: s0..s(N-1), cout.
Circuit make_ripple_adder(unsigned bits);

/// Three-state one-hot ring ("traffic light"): advances on en, exactly one
/// of r/y/g is high once initialised.  Inputs: en; outputs: r, y, g.
Circuit make_traffic_light();

}  // namespace cfs
