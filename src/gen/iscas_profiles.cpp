#include "gen/iscas_profiles.h"

#include <array>

#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "util/error.h"

namespace cfs {

namespace {

// Published PI/PO/DFF/gate counts for the ISCAS-89 circuits used in the
// paper's Tables 2-6.
constexpr std::array<IscasProfile, 20> kProfiles = {{
    {"s27", 4, 1, 3, 10},
    {"s298", 3, 6, 14, 119},
    {"s344", 9, 11, 15, 160},
    {"s349", 9, 11, 15, 161},
    {"s382", 3, 6, 21, 158},
    {"s386", 7, 7, 6, 159},
    {"s400", 3, 6, 21, 162},
    {"s444", 3, 6, 21, 181},
    {"s510", 19, 7, 6, 211},
    {"s526", 3, 6, 21, 193},
    {"s641", 35, 24, 19, 379},
    {"s713", 35, 23, 19, 393},
    {"s820", 18, 19, 5, 289},
    {"s832", 18, 19, 5, 287},
    {"s1196", 14, 14, 18, 529},
    {"s1238", 14, 14, 18, 508},
    {"s1488", 8, 19, 6, 653},
    {"s1494", 8, 19, 6, 647},
    {"s5378", 35, 49, 179, 2779},
    {"s35932", 35, 320, 1728, 16065},
}};

std::uint64_t name_seed(std::string_view name) {
  // FNV-1a so every benchmark gets a stable, distinct generator seed.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::span<const IscasProfile> iscas89_profiles() { return kProfiles; }

const IscasProfile& iscas89_profile(std::string_view name) {
  for (const IscasProfile& p : kProfiles) {
    if (p.name == name) return p;
  }
  throw Error("unknown ISCAS-89 benchmark: " + std::string(name));
}

Circuit make_benchmark(std::string_view name) {
  if (name == "s27") return make_s27();
  const IscasProfile& p = iscas89_profile(name);
  GenProfile g;
  g.name = std::string(p.name);
  g.num_pis = p.num_pis;
  g.num_pos = p.num_pos;
  g.num_dffs = p.num_dffs;
  g.num_gates = p.num_gates;
  g.seed = name_seed(name);
  return generate_circuit(g);
}

}  // namespace cfs
