#include "gen/known_circuits.h"

#include <string>

#include "netlist/bench_parser.h"
#include "netlist/builder.h"
#include "util/error.h"

namespace cfs {

Circuit make_s27() {
  static const char* kText = R"(
# s27 -- ISCAS-89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
  return parse_bench(kText, "s27");
}

Circuit make_c17() {
  static const char* kText = R"(
# c17 -- ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return parse_bench(kText, "c17");
}

Circuit make_full_adder() {
  Builder b("fa");
  b.add_input("a");
  b.add_input("b");
  b.add_input("cin");
  b.add_gate(GateKind::Xor, "ab", {"a", "b"});
  b.add_gate(GateKind::Xor, "sum", {"ab", "cin"});
  b.add_gate(GateKind::And, "g1", {"a", "b"});
  b.add_gate(GateKind::And, "g2", {"ab", "cin"});
  b.add_gate(GateKind::Or, "cout", {"g1", "g2"});
  b.mark_output("sum");
  b.mark_output("cout");
  return b.build();
}

Circuit make_counter(unsigned bits) {
  Builder b("counter" + std::to_string(bits));
  b.add_input("en");
  // q[i] toggles when en and all lower bits are 1.
  for (unsigned i = 0; i < bits; ++i) {
    b.add_dff("q" + std::to_string(i), "d" + std::to_string(i));
    b.mark_output("q" + std::to_string(i));
  }
  std::string carry = "en";
  for (unsigned i = 0; i < bits; ++i) {
    const std::string qi = "q" + std::to_string(i);
    b.add_gate(GateKind::Xor, "d" + std::to_string(i), {qi, carry});
    if (i + 1 < bits) {
      const std::string nc = "c" + std::to_string(i);
      b.add_gate(GateKind::And, nc, {carry, qi});
      carry = nc;
    }
  }
  return b.build();
}

Circuit make_shift_register(unsigned bits) {
  Builder b("shift" + std::to_string(bits));
  b.add_input("sin");
  std::string prev = "sin";
  std::vector<std::string> stages;
  for (unsigned i = 0; i < bits; ++i) {
    const std::string qi = "q" + std::to_string(i);
    b.add_dff(qi, prev);
    prev = qi;
    stages.push_back(qi);
  }
  b.mark_output(prev);
  if (bits >= 2) {
    b.add_gate(GateKind::Xor, "parity", stages);
    b.mark_output("parity");
  }
  return b.build();
}

Circuit make_lfsr(unsigned bits) {
  // Second feedback tap of a primitive 2-tap polynomial per width
  // (x^2+x+1, x^3+x^2+1, x^4+x^3+1, x^5+x^3+1, x^6+x^5+1, x^7+x^6+1).
  static constexpr unsigned kTap2[] = {0, 0, 0, 1, 2, 2, 4, 5};
  if (bits < 2 || bits > 7) {
    throw Error("make_lfsr supports 2..7 bits (primitive 2-tap feedbacks)");
  }
  Builder b("lfsr" + std::to_string(bits));
  b.add_input("en");
  for (unsigned i = 0; i < bits; ++i) {
    b.add_dff("q" + std::to_string(i), "d" + std::to_string(i));
  }
  // Feedback: XOR of the top stage and the second tap, gated by en.
  b.add_gate(GateKind::Xor, "fb",
             {"q" + std::to_string(bits - 1), "q" + std::to_string(kTap2[bits])});
  // d0 = en ? fb : q0 -> (en AND fb) OR (NOT en AND q0)
  b.add_gate(GateKind::Not, "nen", {"en"});
  b.add_gate(GateKind::And, "t0", {"en", "fb"});
  b.add_gate(GateKind::And, "t1", {"nen", "q0"});
  b.add_gate(GateKind::Or, "d0", {"t0", "t1"});
  for (unsigned i = 1; i < bits; ++i) {
    const std::string prev = "q" + std::to_string(i - 1);
    const std::string ti = "u" + std::to_string(i);
    b.add_gate(GateKind::And, "s" + std::to_string(i), {"en", prev});
    b.add_gate(GateKind::And, ti, {"nen", "q" + std::to_string(i)});
    b.add_gate(GateKind::Or, "d" + std::to_string(i),
               {"s" + std::to_string(i), ti});
  }
  b.mark_output("q" + std::to_string(bits - 1));
  return b.build();
}

Circuit make_gray_counter(unsigned bits) {
  Builder b("gray" + std::to_string(bits));
  b.add_input("en");
  for (unsigned i = 0; i < bits; ++i) {
    b.add_dff("q" + std::to_string(i), "d" + std::to_string(i));
  }
  std::string carry = "en";
  for (unsigned i = 0; i < bits; ++i) {
    const std::string qi = "q" + std::to_string(i);
    b.add_gate(GateKind::Xor, "d" + std::to_string(i), {qi, carry});
    if (i + 1 < bits) {
      const std::string nc = "c" + std::to_string(i);
      b.add_gate(GateKind::And, nc, {carry, qi});
      carry = nc;
    }
  }
  // Gray output stage: g_i = q_i XOR q_(i+1); g_(N-1) = q_(N-1).
  for (unsigned i = 0; i + 1 < bits; ++i) {
    b.add_gate(GateKind::Xor, "g" + std::to_string(i),
               {"q" + std::to_string(i), "q" + std::to_string(i + 1)});
    b.mark_output("g" + std::to_string(i));
  }
  b.add_gate(GateKind::Buf, "g" + std::to_string(bits - 1),
             {"q" + std::to_string(bits - 1)});
  b.mark_output("g" + std::to_string(bits - 1));
  return b.build();
}

Circuit make_ripple_adder(unsigned bits) {
  Builder b("rca" + std::to_string(bits));
  for (unsigned i = 0; i < bits; ++i) b.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b.add_input("b" + std::to_string(i));
  b.add_input("cin");
  std::string carry = "cin";
  for (unsigned i = 0; i < bits; ++i) {
    const std::string ai = "a" + std::to_string(i);
    const std::string bi = "b" + std::to_string(i);
    const std::string x = "x" + std::to_string(i);
    b.add_gate(GateKind::Xor, x, {ai, bi});
    b.add_gate(GateKind::Xor, "s" + std::to_string(i), {x, carry});
    b.add_gate(GateKind::And, "m" + std::to_string(i), {ai, bi});
    b.add_gate(GateKind::And, "n" + std::to_string(i), {x, carry});
    const std::string nc = "k" + std::to_string(i);
    b.add_gate(GateKind::Or, nc,
               {"m" + std::to_string(i), "n" + std::to_string(i)});
    carry = nc;
    b.mark_output("s" + std::to_string(i));
  }
  b.add_gate(GateKind::Buf, "cout", {carry});
  b.mark_output("cout");
  return b.build();
}

Circuit make_traffic_light() {
  Builder b("traffic");
  b.add_input("en");
  b.add_gate(GateKind::Not, "nen", {"en"});
  // One-hot ring r -> g -> y -> r; self-initialising: r_next also fires
  // when no light is on (all-zero recovery).
  b.add_dff("r", "dr");
  b.add_dff("y", "dy");
  b.add_dff("g", "dg");
  b.add_gate(GateKind::Nor, "none", {"r", "y", "g"});
  b.add_gate(GateKind::And, "ry_adv", {"en", "y"});   // y -> r
  b.add_gate(GateKind::And, "r_hold", {"nen", "r"});
  b.add_gate(GateKind::Or, "dr", {"ry_adv", "r_hold", "none"});
  b.add_gate(GateKind::And, "g_adv", {"en", "r"});    // r -> g
  b.add_gate(GateKind::And, "g_hold", {"nen", "g"});
  b.add_gate(GateKind::Or, "dg", {"g_adv", "g_hold"});
  b.add_gate(GateKind::And, "y_adv", {"en", "g"});    // g -> y
  b.add_gate(GateKind::And, "y_hold", {"nen", "y"});
  b.add_gate(GateKind::Or, "dy", {"y_adv", "y_hold"});
  b.mark_output("r");
  b.mark_output("y");
  b.mark_output("g");
  return b.build();
}

Circuit make_seq_detector() {
  Builder b("det11");
  b.add_input("in");
  // State bit: saw a 1 last cycle.
  b.add_dff("s", "in_buf");
  b.add_gate(GateKind::Buf, "in_buf", {"in"});
  b.add_gate(GateKind::And, "det", {"s", "in"});
  b.mark_output("det");
  return b.build();
}

}  // namespace cfs
