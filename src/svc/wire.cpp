#include "svc/wire.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace cfs::svc {

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw ProtocolError("bad_request", what);
}

[[noreturn]] void bad_json(const std::string& what) {
  throw ProtocolError("bad_json", what);
}

// Recursive-descent JSON parser over a bounded text.  Depth is tracked
// explicitly so a "[[[[..." bomb raises bad_json long before the C++ stack
// is at risk.
struct Parser {
  const char* p;
  const char* end;
  unsigned depth = 0;

  void skip_ws() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  char peek() {
    if (p >= end) bad_json("unexpected end of JSON input");
    return *p;
  }

  void expect(char c) {
    if (p >= end || *p != c) {
      bad_json(std::string("expected '") + c + "' in JSON input");
    }
    ++p;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) < n) return false;
    if (std::memcmp(p, lit, n) != 0) return false;
    p += n;
    return true;
  }

  JsonValue value() {
    if (++depth > kMaxJsonDepth) bad_json("JSON nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v = object();
    } else if (c == '[') {
      v = array();
    } else if (c == '"') {
      v = JsonValue(string());
    } else if (c == 't') {
      if (!literal("true")) bad_json("bad literal");
      v = JsonValue(true);
    } else if (c == 'f') {
      if (!literal("false")) bad_json("bad literal");
      v = JsonValue(false);
    } else if (c == 'n') {
      if (!literal("null")) bad_json("bad literal");
      v = JsonValue();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      v = JsonValue(number());
    } else {
      bad_json(std::string("unexpected character '") + c + "' in JSON");
    }
    --depth;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonObject o;
    skip_ws();
    if (peek() == '}') {
      ++p;
      return JsonValue(std::move(o));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') bad_json("expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      o[std::move(key)] = value();
      skip_ws();
      const char c = peek();
      ++p;
      if (c == '}') return JsonValue(std::move(o));
      if (c != ',') bad_json("expected ',' or '}' in JSON object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray a;
    skip_ws();
    if (peek() == ']') {
      ++p;
      return JsonValue(std::move(a));
    }
    for (;;) {
      a.push_back(value());
      skip_ws();
      const char c = peek();
      ++p;
      if (c == ']') return JsonValue(std::move(a));
      if (c != ',') bad_json("expected ',' or ']' in JSON array");
    }
  }

  std::string string() {
    expect('"');
    std::string s;
    for (;;) {
      if (p >= end) bad_json("unterminated JSON string");
      const unsigned char c = static_cast<unsigned char>(*p++);
      if (c == '"') return s;
      if (c < 0x20) bad_json("raw control character in JSON string");
      if (c != '\\') {
        s.push_back(static_cast<char>(c));
        continue;
      }
      if (p >= end) bad_json("unterminated JSON escape");
      const char e = *p++;
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p >= end) bad_json("truncated \\u escape");
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else bad_json("bad hex digit in \\u escape");
          }
          // Minimal UTF-8 encoding of the BMP code point; surrogate pairs
          // are passed through as two 3-byte sequences (the protocol never
          // generates them, but clients might).
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: bad_json("bad JSON escape");
      }
    }
  }

  double number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && *p >= '0' && *p <= '9') ++p;
    if (p < end && *p == '.') {
      ++p;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    const std::string text(start, p);
    if (text.empty() || text == "-") bad_json("bad JSON number");
    char* parsed_end = nullptr;
    const double d = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end != text.c_str() + text.size()) bad_json("bad JSON number");
    return d;
  }
};

void dump_value(const JsonValue& v, std::string& out);

void dump_number(double d, std::string& out) {
  // Integral values print without a decimal point (the protocol is mostly
  // counters); everything else gets shortest-ish %.17g.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no inf/nan
  }
}

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::Null: out += "null"; break;
    case JsonValue::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Type::Number: dump_number(v.as_number(), out); break;
    case JsonValue::Type::String:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      break;
    case JsonValue::Type::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        dump_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) bad_request("expected a JSON boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) bad_request("expected a JSON number");
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  const double d = as_number();
  if (d < 0 || d != std::floor(d) || d > 1.8e19) {
    bad_request("expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) bad_request("expected a JSON string");
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (type_ != Type::Array) bad_request("expected a JSON array");
  return *arr_;
}

const JsonObject& JsonValue::as_object() const {
  if (type_ != Type::Object) bad_request("expected a JSON object");
  return *obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

const std::string& JsonValue::req_string(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_string()) {
    bad_request("missing or non-string field '" + key + "'");
  }
  return v->as_string();
}

std::uint64_t JsonValue::req_u64(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) {
    bad_request("missing or non-numeric field '" + key + "'");
  }
  return v->as_u64();
}

std::string JsonValue::opt_string(const std::string& key,
                                  const std::string& dflt) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return dflt;
  return v->as_string();
}

std::uint64_t JsonValue::opt_u64(const std::string& key,
                                 std::uint64_t dflt) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return dflt;
  return v->as_u64();
}

bool JsonValue::opt_bool(const std::string& key, bool dflt) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return dflt;
  return v->as_bool();
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue json_parse(const std::string& text) {
  Parser ps{text.data(), text.data() + text.size()};
  JsonValue v = ps.value();
  ps.skip_ws();
  if (ps.p != ps.end) {
    throw ProtocolError("bad_frame", "trailing bytes after JSON document");
  }
  return v;
}

std::string encode_frame(const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame_too_large",
                        "frame payload of " + std::to_string(payload.size()) +
                            " bytes exceeds the " +
                            std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xFFu));
  }
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
  // Validate the pending length prefix eagerly: an oversized frame is
  // reported on arrival of its 4th header byte, before any payload is
  // buffered.
  if (buf_.size() >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= std::uint32_t{static_cast<unsigned char>(buf_[i])} << (8 * i);
    }
    if (len > kMaxFrameBytes) {
      throw ProtocolError(
          "frame_too_large",
          "frame length prefix of " + std::to_string(len) +
              " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
              "-byte cap");
    }
  }
}

bool FrameDecoder::take(std::string& out) {
  if (buf_.size() < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= std::uint32_t{static_cast<unsigned char>(buf_[i])} << (8 * i);
  }
  if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
  out.assign(buf_, 4, len);
  buf_.erase(0, 4 + static_cast<std::size_t>(len));
  // The next frame's prefix (if fully buffered) gets the same eager check
  // feed() applies.
  if (buf_.size() >= 4) {
    std::uint32_t next = 0;
    for (int i = 0; i < 4; ++i) {
      next |= std::uint32_t{static_cast<unsigned char>(buf_[i])} << (8 * i);
    }
    if (next > kMaxFrameBytes) {
      throw ProtocolError(
          "frame_too_large",
          "frame length prefix of " + std::to_string(next) +
              " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
              "-byte cap");
    }
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string error_response(const std::string& code,
                           const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + json_escape(code) +
         "\",\"message\":\"" + json_escape(message) + "\"}";
}

}  // namespace cfs::svc
