#include "svc/server.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cfs::svc {

namespace {

bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Service& svc, std::string socket_path)
    : svc_(svc), path_(std::move(socket_path)) {}

Server::~Server() {
  request_stop();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conns_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (!path_.empty()) ::unlink(path_.c_str());
}

void Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof addr.sun_path) {
    throw Error("socket path too long: " + path_);
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof addr.sun_path - 1);

  if (::pipe(stop_pipe_) != 0) {
    throw Error(std::string("pipe: ") + std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  // A daemon killed with -9 leaves its socket file behind; rebinding over
  // it is the normal restart path.
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw Error("bind " + path_ + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw Error("listen " + path_ + ": " + std::strerror(errno));
  }
}

void Server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      conn_fds_.insert(fd);
      conns_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }
  // Stop: wake blocked connection reads so their threads exit; the
  // destructor joins them.
  std::lock_guard<std::mutex> lk(mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    const char b = 1;
    // Best-effort; the pipe only needs one pending byte.
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &b, 1);
  }
}

void Server::serve_connection(int fd) {
  FrameDecoder dec;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect (or shutdown() during stop)
    try {
      dec.feed(buf, static_cast<std::size_t>(n));
    } catch (const ProtocolError& pe) {
      // Framing is lost; answer once, then drop the connection.  The
      // daemon itself is unharmed -- this is a per-connection failure.
      svc_.note_protocol_error();
      write_all(fd, encode_frame(error_response(pe.code(), pe.what())));
      break;
    }
    std::string payload;
    bool dead = false;
    for (;;) {
      try {
        if (!dec.take(payload)) break;
      } catch (const ProtocolError& pe) {
        svc_.note_protocol_error();
        write_all(fd, encode_frame(error_response(pe.code(), pe.what())));
        dead = true;
        break;
      }
      const std::string resp = svc_.handle(payload);
      if (!write_all(fd, encode_frame(resp))) {
        dead = true;
        break;
      }
      // A shutdown request drains the service synchronously; once that
      // has happened, stop accepting new connections.
      if (svc_.draining()) request_stop();
    }
    if (dead) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(mu_);
  conn_fds_.erase(fd);
}

}  // namespace cfs::svc
