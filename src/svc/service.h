// The cfsd service core: model cache, session lifecycle, admission control,
// backpressure, and crash recovery -- everything the daemon does except the
// socket I/O (svc/server.h) so the whole robustness surface is testable
// in-process.
//
// ## Sessions
//
// A *session* is one fault-simulation campaign owned by a named tenant key.
// Its lifecycle:
//
//     open --> Queued --> Running --> Done
//                 |           |  \--> Failed
//                 |           \-----> Halted   (cancel / drain; resumable)
//                 \--> shed (backpressure / deadline_exceeded / draining)
//
// Running sessions persist their campaign through resil/ checkpoints inside
// a per-session state directory (manifest.json + circuit.bench + tests.txt
// + ck.bin + result.json, all written atomically), so a kill -9 of the
// daemon loses no admitted work: the restarted Service scans the state dir,
// re-admits every unfinished session, resumes each from its checkpoint, and
// the final campaign digest is bit-identical to an uninterrupted run.
//
// ## Admission control and backpressure
//
// Every session declares an element budget (its CsimOptions::max_elements,
// which bounds the concurrent-fault pool exactly as in PR 4's multi-pass
// degradation).  The Service admits sessions only while the sum of admitted
// budgets fits ServiceConfig::global_elements and fewer than max_sessions
// are running; everything else waits in a bounded FIFO queue.  A full queue
// refuses immediately (`backpressure`); a queued open that outlives its
// deadline is shed (`deadline_exceeded`); a session that could never fit
// the global budget is refused up front (`admission_refused`).  All three
// are structured protocol errors -- the daemon never aborts and other
// sessions never notice.
//
// ## Updates
//
// Each session carries a bounded ring of sequence-numbered update payloads
// (timeline samples in the --stats-json schema, plus lifecycle events).  A
// slow watcher does not block the campaign: when the ring wraps, the
// watcher's next read skips ahead and reports how many updates it missed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "faults/macro_map.h"
#include "netlist/circuit.h"
#include "netlist/macro_extract.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "patterns/pattern.h"
#include "resil/campaign.h"
#include "resil/containment.h"
#include "svc/wire.h"

namespace cfs::svc {

struct ServiceConfig {
  /// Per-session state root; created if absent.  Required.
  std::string state_dir;

  /// Admission budget: total concurrent-fault list elements across all
  /// running sessions (the unit of CsimOptions::max_elements).
  std::size_t global_elements = 1u << 22;
  /// Element budget assigned to a session that does not request one.
  std::size_t default_session_elements = 1u << 18;
  /// Concurrently *running* sessions (each runs its own sharded campaign).
  unsigned max_sessions = 4;
  /// Bounded admission queue: opens beyond this refuse with backpressure.
  unsigned queue_depth = 16;
  /// Default time a queued open waits before being shed (clients may ask
  /// for less, never more).
  std::uint32_t queue_deadline_ms = 30000;

  /// Per-session update-ring capacity (slow watchers skip, campaigns never
  /// block) and sampling stride in vectors.
  std::size_t update_ring = 256;
  std::uint64_t sample_every = 16;

  /// Campaign checkpoint stride (vectors) and write-retry policy.
  std::uint64_t checkpoint_every = 32;
  unsigned checkpoint_retries = 3;
  std::uint32_t checkpoint_backoff_ms = 1;

  /// Shard failure containment for every session (resil/containment.h):
  /// per-round watchdog deadline and retry budget.  0 deadline = exceptions
  /// only.
  unsigned shard_retries = 2;
  std::uint32_t session_stall_ms = 0;

  /// Chaos hooks (tests): injector sabotages shard workers and -- via
  /// set_snapshot_injector, which the Service installs when this is set --
  /// checkpoint writes.  trace adds one track per session to a shared
  /// chrome://tracing emitter.  Neither is owned.
  resil::FaultInjector* injector = nullptr;
  obs::TraceEmitter* trace = nullptr;
};

/// What a session runs, as supplied by the client and persisted in the
/// manifest.  Reconnecting with a different spec for the same name is a
/// spec_mismatch error.
struct SessionSpec {
  std::string name;          ///< [A-Za-z0-9._-]+, at most 64 chars
  std::string circuit_text;  ///< inline .bench netlist
  std::string tests_text;    ///< inline test-suite text (TestSuite::parse)
  std::string mode = "sa";   ///< sa | sa-macro | tr
  unsigned threads = 1;
  unsigned batch = 1;
  std::size_t elements = 0;  ///< element budget; 0 = config default
  bool reset0 = false;       ///< flip-flop init Zero instead of X

  /// FNV-1a over every field; the manifest stores it and reconnects must
  /// match.
  std::uint64_t fingerprint() const;
};

enum class SessionState : std::uint8_t {
  Queued, Running, Done, Failed, Halted
};

const char* to_string(SessionState s);

/// Per-service counters (the `svc` stats block).  Plain non-atomic fields:
/// all mutation happens under the Service mutex.
struct SvcCounters {
  std::uint64_t opened = 0;        ///< sessions created fresh
  std::uint64_t resumed = 0;       ///< sessions re-admitted from disk
  std::uint64_t attached = 0;      ///< opens that joined an existing session
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t halted = 0;        ///< cancel/drain stops (resumable)
  std::uint64_t admission_refused = 0;
  std::uint64_t backpressure_rejected = 0;
  std::uint64_t deadline_shed = 0;
  std::uint64_t updates_shed = 0;  ///< ring entries slow watchers missed
  std::uint64_t protocol_errors = 0;
  std::uint64_t model_cache_hits = 0;
  std::uint64_t model_cache_misses = 0;
  std::uint64_t checkpoint_write_retries = 0;
};

class Service {
 public:
  /// Creates state_dir if needed and re-admits every resumable session
  /// found in it (crash recovery).  Throws cfs::Error if the directory
  /// cannot be created.
  explicit Service(ServiceConfig cfg);
  /// Drains (stops sessions at the next vector boundary, joins workers).
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Dispatch one request payload (JSON text) to a response payload.
  /// Protocol-level problems come back as {"ok":false,"error":code,...};
  /// this never throws ProtocolError.  Blocking ops (open with a queue
  /// wait, watch) block the calling thread only.
  std::string handle(const std::string& payload);

  /// Count a protocol error detected outside handle() (framing, transport)
  /// so the svc stats block sees every malformed frame.
  void note_protocol_error();

  /// Stop admitting, stop running sessions at their next vector boundary
  /// (each writes a final checkpoint -- they stay resumable), and join all
  /// workers.  Idempotent; handle() keeps answering status/stats/watch
  /// during and after a drain, but open/cancel refuse with `draining`.
  void drain();
  bool draining() const;

  /// True once every admitted session has reached a terminal-or-halted
  /// state and the queue is empty (the daemon's idle-exit test hook).
  bool quiescent() const;

  const ServiceConfig& config() const { return cfg_; }

 private:
  struct ModelEntry;
  struct Session;

  // Request handlers (payload already parsed; all may throw ProtocolError,
  // which handle() converts to an error response).
  std::string op_hello(const JsonValue& req);
  std::string op_open(const JsonValue& req);
  std::string op_status(const JsonValue& req);
  std::string op_watch(const JsonValue& req);
  std::string op_stats(const JsonValue& req);
  std::string op_cancel(const JsonValue& req);
  std::string op_shutdown(const JsonValue& req);

  std::shared_ptr<Session> find_session(const std::string& name);
  /// Admit from the queue head while budget and slots allow (mu_ held).
  void admit_from_queue_locked();
  /// Start a Running session's worker thread (mu_ held).
  void start_worker_locked(const std::shared_ptr<Session>& s);
  /// Worker body: build (cached) model, run/resume the campaign, persist
  /// the result, release the budget.
  void run_session(std::shared_ptr<Session> s);
  /// Push one update payload into the session's ring (session mu held by
  /// caller).
  void push_update_locked(Session& s, const std::string& body);
  /// Parse + levelize through the cache.  Returns a SimModel whose aliased
  /// shared_ptr keeps the owning entry alive.
  std::shared_ptr<const SimModel> cached_model(const SessionSpec& spec,
                                               std::string* err);
  /// Recovery scan over state_dir (constructor only).
  void recover_sessions();
  /// Persist spec + manifest into the session's directory (atomic writes).
  void persist_session(const Session& s);
  std::string session_dir(const std::string& name) const;
  std::string session_status_json(Session& s, bool ok_field);

  ServiceConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  /// Admission queue: session names in FIFO order (sessions hold their own
  /// deadline; shed entries remove themselves).
  std::list<std::string> queue_;
  std::size_t elements_admitted_ = 0;
  unsigned running_ = 0;
  bool draining_ = false;
  SvcCounters counters_;
  std::uint32_t next_track_ = 1000;  ///< trace track ids for sessions

  // Model cache: netlist-hash+mode -> owning entry, LRU-evicted.
  std::map<std::string, std::shared_ptr<ModelEntry>> models_;
  std::list<std::string> model_lru_;
  static constexpr std::size_t kModelCacheCap = 8;
};

}  // namespace cfs::svc
