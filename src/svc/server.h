// AF_UNIX transport for the cfsd service core: bind/listen, one thread per
// connection, length-prefixed frames in and out (svc/wire.h).
//
// The server owns no protocol logic -- every complete frame goes through
// Service::handle(), and framing violations (oversized prefix) are answered
// with a structured error frame before the connection is dropped.  Stop is
// signal-friendly: request_stop() only writes one byte to a self-pipe, so a
// SIGTERM handler can call it; run() then leaves its poll loop, wakes every
// connection, and joins the connection threads.
#pragma once

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"

namespace cfs::svc {

class Server {
 public:
  /// `svc` must outlive the server.  The socket file is unlinked on both
  /// bind (stale socket from a killed daemon) and destruction.
  Server(Service& svc, std::string socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen; throws cfs::Error with the OS diagnostic on failure.
  void start();

  /// Accept/dispatch until request_stop() (or a shutdown request drains
  /// the service).  Blocks the calling thread.
  void run();

  /// Async-signal-safe stop trigger (writes one byte to the self-pipe).
  void request_stop();

  const std::string& socket_path() const { return path_; }

 private:
  void serve_connection(int fd);

  Service& svc_;
  std::string path_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::set<int> conn_fds_;
  std::vector<std::thread> conns_;
};

}  // namespace cfs::svc
