// Minimal blocking client for the cfsd wire protocol: connect to the
// daemon's AF_UNIX socket, send one JSON request per call, read the
// matching response.  Used by `cfs connect` and the chaos tests.
#pragma once

#include <string>

#include "svc/wire.h"

namespace cfs::svc {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon socket; throws cfs::Error with the OS
  /// diagnostic (e.g. the daemon is not running) on failure.
  void connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send `payload` as one frame and block for the next response frame.
  /// Throws cfs::Error on transport failure (daemon died mid-request) and
  /// ProtocolError if the daemon's response violates framing.
  std::string request(const std::string& payload);

  /// request() + parse: returns the response JSON.  Error responses
  /// ({"ok":false,...}) are returned, not thrown -- callers branch on the
  /// structured code.
  JsonValue call(const std::string& payload);

 private:
  int fd_ = -1;
  FrameDecoder dec_;
};

}  // namespace cfs::svc
