// cfsd wire protocol: length-prefixed JSON frames.
//
// Every message on a client connection -- request, response, streamed
// update -- is one *frame*: a 4-byte little-endian payload length followed
// by that many bytes of UTF-8 JSON text.  The JSON schema reuses the
// repo's --stats-json vocabulary for streamed coverage/counter updates, so
// a `cfs connect --watch` consumer and a --stats-json consumer parse the
// same shapes.
//
// Robustness requirements drive the design:
//  * frames are capped (kMaxFrameBytes) so a malicious or corrupt length
//    prefix cannot make the daemon allocate unboundedly;
//  * the decoder is incremental -- feed() arbitrary byte chunks, take()
//    complete payloads -- so slow clients and short reads are normal;
//  * every malformed input (oversized frame, bad JSON, wrong type, depth
//    bomb) surfaces as ProtocolError with a stable machine-readable code,
//    never as a crash or an uncontrolled exception type.
//
// The JSON value model (JsonValue) is deliberately tiny: null, bool,
// double, string, array, object -- what the protocol needs, parsed by a
// recursive-descent parser with an explicit depth cap.  It is not a
// general-purpose JSON library and does not try to be.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.h"

namespace cfs::svc {

/// Hard cap on a single frame's payload.  A length prefix above this is a
/// protocol error on the spot -- the bytes are never buffered.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB

/// Nesting depth cap for the JSON parser (arrays + objects combined).
inline constexpr unsigned kMaxJsonDepth = 64;

/// Stable machine-readable protocol error codes.  These travel on the wire
/// in error responses ({"ok":false,"error":CODE,"message":...}) and as the
/// `code()` of a thrown ProtocolError.
///   bad_frame          malformed framing (also: trailing JSON garbage)
///   frame_too_large    length prefix exceeds kMaxFrameBytes
///   bad_json           payload is not valid JSON
///   bad_request        JSON is valid but not a usable request object
///   unknown_op         request op is not recognized
///   unknown_session    no session with that id (or not yours to touch)
///   admission_refused  global memory budget cannot fit the session
///   backpressure       admission queue is full
///   deadline_exceeded  queued past its deadline and shed
///   spec_mismatch      reconnect spec differs from the persisted session
///   draining           daemon is shutting down; no new work
struct ProtocolError : Error {
  ProtocolError(std::string code, const std::string& message)
      : Error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

// ---------------------------------------------------------------------------
// JSON value model + parser

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps object keys ordered deterministically for tests.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : type_(Type::Null) {}
  explicit JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::Number), num_(d) {}
  explicit JsonValue(std::uint64_t v)
      : type_(Type::Number), num_(static_cast<double>(v)) {}
  explicit JsonValue(std::string s)
      : type_(Type::String), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : type_(Type::Array), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : type_(Type::Object),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Typed accessors throw ProtocolError(bad_request) on type mismatch --
  // request handlers read fields through these and get structured errors
  // for free.
  bool as_bool() const;
  double as_number() const;
  std::uint64_t as_u64() const;  ///< also rejects negatives / non-integers
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field access; `null` JsonValue if absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Required string/u64 field of an object; ProtocolError(bad_request)
  /// naming the field when missing or mistyped.
  const std::string& req_string(const std::string& key) const;
  std::uint64_t req_u64(const std::string& key) const;
  /// Optional fields with defaults.
  std::string opt_string(const std::string& key, const std::string& dflt) const;
  std::uint64_t opt_u64(const std::string& key, std::uint64_t dflt) const;
  bool opt_bool(const std::string& key, bool dflt) const;

  /// Serialize back to compact JSON text.
  std::string dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Shared so JsonValue stays cheaply copyable even with deep trees.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parse one JSON document; trailing non-whitespace is an error.  Throws
/// ProtocolError(bad_json) on syntax/depth problems.
JsonValue json_parse(const std::string& text);

// ---------------------------------------------------------------------------
// Framing

/// Wrap a payload in a length prefix, ready to write to the socket.
/// Throws ProtocolError(frame_too_large) if the payload exceeds the cap.
std::string encode_frame(const std::string& payload);

/// Incremental frame decoder: feed() raw bytes as they arrive, take()
/// complete payloads.  One decoder per connection; the decoder never
/// parses JSON -- that is the caller's step -- it only reassembles frames.
class FrameDecoder {
 public:
  /// Append raw bytes.  Throws ProtocolError(frame_too_large) as soon as a
  /// length prefix exceeding kMaxFrameBytes is seen; the connection is then
  /// unusable (framing is lost) and should be closed.
  void feed(const char* data, std::size_t n);

  /// Extract the next complete payload into `out`.  False if more bytes
  /// are needed.
  bool take(std::string& out);

  /// Bytes currently buffered (tests / memory accounting).
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

// ---------------------------------------------------------------------------
// Response helpers (tiny, but used by daemon and tests alike)

/// {"ok":false,"error":code,"message":...} -- plus optional extra fields
/// already rendered as `",k":v` JSON tail text.
std::string error_response(const std::string& code, const std::string& message);

/// JSON string escaping for hand-assembled responses.
std::string json_escape(const std::string& s);

}  // namespace cfs::svc
