#include "svc/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cfs::svc {

Client::~Client() { close(); }

void Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw Error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw Error("cannot connect to cfsd at " + socket_path + ": " + why);
  }
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  dec_ = FrameDecoder();
}

std::string Client::request(const std::string& payload) {
  if (fd_ < 0) throw Error("not connected");
  const std::string frame = encode_frame(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("write to cfsd failed: ") +
                  std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  while (!dec_.take(resp)) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw Error("connection to cfsd closed mid-request");
    }
    dec_.feed(buf, static_cast<std::size_t>(n));
  }
  return resp;
}

JsonValue Client::call(const std::string& payload) {
  return json_parse(request(payload));
}

}  // namespace cfs::svc
