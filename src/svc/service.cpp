#include "svc/service.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/bench_parser.h"
#include "obs/json_stats.h"
#include "resil/snapshot.h"

namespace fs = std::filesystem;

namespace cfs::svc {

namespace {

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xCBF29CE484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64 || name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot read " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::Queued: return "queued";
    case SessionState::Running: return "running";
    case SessionState::Done: return "done";
    case SessionState::Failed: return "failed";
    case SessionState::Halted: return "halted";
  }
  return "?";
}

std::uint64_t SessionSpec::fingerprint() const {
  std::uint64_t h = fnv1a(name);
  h = fnv1a(circuit_text, h);
  h = fnv1a(tests_text, h);
  h = fnv1a(mode, h);
  h = fnv1a(std::to_string(threads) + ":" + std::to_string(batch) + ":" +
                std::to_string(elements) + ":" + (reset0 ? "1" : "0"),
            h);
  return h;
}

// ---------------------------------------------------------------------------
// Internal structs

/// A model-cache entry owns everything its SimModel borrows (the model
/// itself only holds pointers), so cached models outlive the open() that
/// built them.
struct Service::ModelEntry {
  std::optional<Circuit> circuit;
  std::optional<MacroExtraction> ext;
  std::optional<FaultUniverse> universe;
  std::optional<MacroFaultMap> mmap;
  std::shared_ptr<const SimModel> model;
};

struct Service::Session {
  SessionSpec spec;
  std::string dir;
  std::atomic<SessionState> state{SessionState::Queued};

  // Guarded by the Service mutex.
  bool on_disk = false;           ///< spec persisted (admitted at least once)
  bool resumed_from_disk = false; ///< re-admitted by crash recovery
  std::thread worker;
  std::uint32_t track = 0;        ///< trace track id (0 = none)

  std::atomic<bool> stop{false};

  // Update ring + live progress, guarded by umu.  ucv signals watchers on
  // new updates and on terminal state transitions.
  std::mutex umu;
  std::condition_variable ucv;
  std::deque<std::string> updates;
  std::uint64_t first_seq = 1;
  std::uint64_t updates_shed = 0;
  std::uint64_t vectors = 0;
  std::uint64_t hard = 0;
  std::uint64_t potential = 0;
  std::uint64_t total_faults = 0;
  bool resumed_run = false;       ///< this (or last) run resumed a checkpoint
  std::uint64_t digest = 0;
  std::uint32_t passes = 0;
  std::uint64_t ckpt_retries = 0;
  std::string error;
};

// ---------------------------------------------------------------------------
// Construction / recovery / teardown

Service::Service(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.state_dir.empty()) throw Error("cfsd: state_dir is required");
  std::error_code ec;
  fs::create_directories(cfg_.state_dir, ec);
  if (ec) {
    throw Error("cfsd: cannot create state dir " + cfg_.state_dir + ": " +
                ec.message());
  }
  if (cfg_.max_sessions == 0) cfg_.max_sessions = 1;
  if (cfg_.update_ring == 0) cfg_.update_ring = 1;
  if (cfg_.injector != nullptr) resil::set_snapshot_injector(cfg_.injector);
  recover_sessions();
}

Service::~Service() {
  drain();
  if (cfg_.injector != nullptr) resil::set_snapshot_injector(nullptr);
}

std::string Service::session_dir(const std::string& name) const {
  return cfg_.state_dir + "/" + name;
}

void Service::persist_session(const Session& s) {
  std::error_code ec;
  fs::create_directories(s.dir, ec);
  if (ec) throw Error("cannot create session dir " + s.dir);
  obs::atomic_write(s.dir + "/circuit.bench", s.spec.circuit_text, "session");
  obs::atomic_write(s.dir + "/tests.txt", s.spec.tests_text, "session");
  std::string m = "{\"name\":\"" + json_escape(s.spec.name) + "\",\"mode\":\"" +
                  json_escape(s.spec.mode) + "\"";
  m += ",\"threads\":" + std::to_string(s.spec.threads);
  m += ",\"batch\":" + std::to_string(s.spec.batch);
  m += ",\"elements\":" + std::to_string(s.spec.elements);
  m += std::string(",\"reset0\":") + (s.spec.reset0 ? "true" : "false");
  m += ",\"fingerprint\":\"" + hex64(s.spec.fingerprint()) + "\"}\n";
  // Manifest last: its presence marks the session directory complete, and
  // atomic_write makes "present" an all-or-nothing property.
  obs::atomic_write(s.dir + "/manifest.json", m, "session manifest");
}

void Service::recover_sessions() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.state_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string dir = entry.path().string();
    const std::string name = entry.path().filename().string();
    if (!valid_session_name(name)) continue;
    if (!fs::exists(dir + "/manifest.json")) continue;  // torn create
    std::shared_ptr<Session> s;
    try {
      const JsonValue m = json_parse(read_file(dir + "/manifest.json"));
      s = std::make_shared<Session>();
      s->dir = dir;
      s->spec.name = name;
      s->spec.circuit_text = read_file(dir + "/circuit.bench");
      s->spec.tests_text = read_file(dir + "/tests.txt");
      s->spec.mode = m.req_string("mode");
      s->spec.threads = static_cast<unsigned>(m.req_u64("threads"));
      s->spec.batch = static_cast<unsigned>(m.req_u64("batch"));
      s->spec.elements = m.req_u64("elements");
      s->spec.reset0 = m.opt_bool("reset0", false);
      // A fingerprint mismatch means the directory's files do not belong
      // together (partial manual edits, corruption): skip rather than run
      // the wrong campaign.
      if (hex64(s->spec.fingerprint()) != m.req_string("fingerprint")) {
        continue;
      }
    } catch (const Error&) {
      continue;  // unreadable/corrupt session dir: leave it for inspection
    }
    s->on_disk = true;
    if (fs::exists(dir + "/result.json")) {
      // Finished before the crash: load the persisted result so clients
      // can still query it; nothing to re-run.
      try {
        const JsonValue r = json_parse(read_file(dir + "/result.json"));
        s->digest = std::stoull(r.req_string("digest"), nullptr, 16);
        s->hard = r.req_u64("hard");
        s->potential = r.req_u64("potential");
        s->total_faults = r.req_u64("total");
        s->vectors = r.req_u64("vectors");
        s->passes = static_cast<std::uint32_t>(r.req_u64("passes"));
        s->state.store(SessionState::Done);
        sessions_[name] = s;
      } catch (const Error&) {
        // Unreadable result with a valid manifest: re-run from checkpoint.
        s->resumed_from_disk = true;
        s->state.store(SessionState::Queued);
        sessions_[name] = s;
        queue_.push_back(name);
        ++counters_.resumed;
      }
      continue;
    }
    // Admitted but unfinished: re-admit.  Recovery entries bypass the
    // queue-depth cap -- this work was already accepted once.
    s->resumed_from_disk = true;
    sessions_[name] = s;
    queue_.push_back(name);
    ++counters_.resumed;
  }
  std::lock_guard<std::mutex> lk(mu_);
  admit_from_queue_locked();
}

void Service::drain() {
  std::vector<std::shared_ptr<Session>> to_join;
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
    for (auto& [name, s] : sessions_) {
      if (s->state.load() == SessionState::Running) {
        s->stop.store(true, std::memory_order_relaxed);
      }
      if (s->worker.joinable()) to_join.push_back(s);
    }
    cv_.notify_all();
  }
  for (auto& s : to_join) {
    if (s->worker.joinable()) s->worker.join();
  }
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

bool Service::quiescent() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && running_ == 0;
}

// ---------------------------------------------------------------------------
// Model cache

std::shared_ptr<const SimModel> Service::cached_model(const SessionSpec& spec,
                                                      std::string* err) {
  const std::string key = hex64(fnv1a(spec.circuit_text)) + ":" + spec.mode;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = models_.find(key);
  if (it != models_.end()) {
    ++counters_.model_cache_hits;
    model_lru_.remove(key);
    model_lru_.push_back(key);
    return std::shared_ptr<const SimModel>(it->second,
                                           it->second->model.get());
  }
  ++counters_.model_cache_misses;
  auto e = std::make_shared<ModelEntry>();
  try {
    e->circuit.emplace(parse_bench(spec.circuit_text, spec.name));
    e->universe = spec.mode == "tr"
                      ? FaultUniverse::all_transition(*e->circuit)
                      : FaultUniverse::all_stuck_at(*e->circuit);
    if (spec.mode == "sa-macro") {
      e->ext = extract_macros(*e->circuit);
      e->mmap = map_faults_to_macros(*e->circuit, *e->ext, *e->universe);
    }
    const Circuit& simc = e->ext ? e->ext->circuit : *e->circuit;
    e->model = std::make_shared<SimModel>(
        simc, *e->universe, e->mmap ? &*e->mmap : nullptr);
  } catch (const Error& ex) {
    if (err != nullptr) *err = ex.what();
    return nullptr;
  }
  models_[key] = e;
  model_lru_.push_back(key);
  if (model_lru_.size() > kModelCacheCap) {
    // Evicting only drops the cache's reference; sessions still simulating
    // on the model keep their aliased shared_ptr alive.
    models_.erase(model_lru_.front());
    model_lru_.pop_front();
  }
  return std::shared_ptr<const SimModel>(e, e->model.get());
}

// ---------------------------------------------------------------------------
// Admission

void Service::admit_from_queue_locked() {
  while (!queue_.empty() && running_ < cfg_.max_sessions && !draining_) {
    const std::string name = queue_.front();
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) {  // shed while queued
      queue_.pop_front();
      continue;
    }
    std::shared_ptr<Session> s = it->second;
    if (s->state.load() != SessionState::Queued) {
      queue_.pop_front();
      continue;
    }
    // Strict FIFO: if the head does not fit the remaining budget, nothing
    // behind it runs either -- admission order stays deterministic and a
    // small session can never starve a big one.
    if (elements_admitted_ + s->spec.elements > cfg_.global_elements) break;
    queue_.pop_front();
    elements_admitted_ += s->spec.elements;
    ++running_;
    s->state.store(SessionState::Running);
    start_worker_locked(s);
  }
  cv_.notify_all();
}

void Service::start_worker_locked(const std::shared_ptr<Session>& s) {
  if (!s->on_disk) {
    persist_session(*s);
    s->on_disk = true;
  }
  if (cfg_.trace != nullptr && s->track == 0) {
    s->track = next_track_++;
    cfg_.trace->name_track(s->track, "session:" + s->spec.name);
  }
  if (s->worker.joinable()) s->worker.join();  // prior Halted run
  s->worker = std::thread([this, s] { run_session(s); });
}

// ---------------------------------------------------------------------------
// Session worker

void Service::push_update_locked(Session& s, const std::string& body) {
  if (s.updates.size() >= cfg_.update_ring) {
    // Bounded ring: the campaign never blocks on a slow watcher; the
    // watcher's next read skips ahead and reports the gap.
    s.updates.pop_front();
    ++s.first_seq;
    ++s.updates_shed;
  }
  s.updates.push_back(body);
  s.ucv.notify_all();
}

void Service::run_session(std::shared_ptr<Session> s) {
  const std::uint64_t t0 =
      cfg_.trace != nullptr ? cfg_.trace->now_us() : 0;
  std::string fail;
  resil::CampaignResult r;
  bool ran = false;
  try {
    std::string model_err;
    std::shared_ptr<const SimModel> model = cached_model(s->spec, &model_err);
    if (!model) throw Error("bad circuit: " + model_err);
    const TestSuite tests = TestSuite::parse(s->spec.tests_text);
    if (tests.empty()) throw Error("test suite contains no vectors");
    if (tests.num_inputs() != model->circuit().inputs().size()) {
      throw Error("test suite width does not match the circuit's inputs");
    }
    {
      std::lock_guard<std::mutex> lk(s->umu);
      s->total_faults = model->num_faults();
    }

    resil::CampaignOptions copt;
    copt.ff_init = s->spec.reset0 ? Val::Zero : Val::X;
    copt.sharded.num_threads = s->spec.threads;
    copt.sharded.batch_width = s->spec.batch;
    copt.sharded.csim.split_lists = true;
    copt.sharded.csim.max_elements = s->spec.elements;
    copt.sharded.resil.max_retries = cfg_.shard_retries;
    copt.sharded.resil.deadline_ms = cfg_.session_stall_ms;
    copt.sharded.resil.injector = cfg_.injector;
    copt.checkpoint_path = s->dir + "/ck.bin";
    copt.checkpoint_every = cfg_.checkpoint_every;
    copt.checkpoint_retries = cfg_.checkpoint_retries;
    copt.checkpoint_backoff_ms = cfg_.checkpoint_backoff_ms;
    copt.stop = &s->stop;
    copt.trace = cfg_.trace;
    const bool resume = fs::exists(s->dir + "/ck.bin");
    if (resume) copt.resume_path = s->dir + "/ck.bin";

    // Stream progress through the timeline sampler: every recorded sample
    // becomes one update in the --stats-json sample schema.
    obs::Timeline tl(cfg_.update_ring, cfg_.sample_every);
    tl.set_observer([this, &s](const obs::TimelineSample& sample) {
      std::ostringstream os;
      {
        obs::JsonWriter w(os);
        obs::Timeline::write_sample_json(w, sample);
      }
      std::lock_guard<std::mutex> lk(s->umu);
      s->vectors = sample.vec + 1;
      s->hard = sample.hard;
      s->potential = sample.potential;
      push_update_locked(*s, "{\"session\":\"" + json_escape(s->spec.name) +
                                 "\",\"sample\":" + os.str() + "}");
    });
    copt.timeline = &tl;

    {
      std::lock_guard<std::mutex> lk(s->umu);
      s->resumed_run = resume;
    }
    resil::CampaignRunner runner(model, tests, copt);
    r = runner.run();
    ran = true;
  } catch (const Error& ex) {
    fail = ex.what();
  } catch (const std::exception& ex) {
    fail = ex.what();
  }

  SessionState final_state;
  std::string final_update;
  {
    std::lock_guard<std::mutex> lk(s->umu);
    if (!ran) {
      final_state = SessionState::Failed;
      s->error = fail;
    } else if (r.halted) {
      // Cooperative stop (cancel / drain): checkpoint written, resumable.
      final_state = SessionState::Halted;
    } else {
      final_state = SessionState::Done;
      s->digest = r.digest();
      s->hard = r.coverage.hard;
      s->potential = r.coverage.potential;
      s->total_faults = r.coverage.total;
      if (r.vectors > s->vectors) s->vectors = r.vectors;
      s->passes = r.passes;
      s->ckpt_retries = r.checkpoint_write_retries;
      std::string res = "{\"digest\":\"" + hex64(s->digest) + "\"";
      res += ",\"hard\":" + std::to_string(r.coverage.hard);
      res += ",\"potential\":" + std::to_string(r.coverage.potential);
      res += ",\"total\":" + std::to_string(r.coverage.total);
      res += ",\"vectors\":" + std::to_string(r.vectors);
      res += ",\"passes\":" + std::to_string(r.passes) + "}\n";
      try {
        obs::atomic_write(s->dir + "/result.json", res, "session result");
      } catch (const Error& ex) {
        final_state = SessionState::Failed;
        s->error = ex.what();
      }
    }
    final_update = "{\"session\":\"" + json_escape(s->spec.name) +
                   "\",\"state\":\"" + to_string(final_state) + "\"";
    if (final_state == SessionState::Done) {
      final_update += ",\"digest\":\"" + hex64(s->digest) + "\"";
    } else if (final_state == SessionState::Failed) {
      final_update += ",\"message\":\"" + json_escape(s->error) + "\"";
    }
    final_update += "}";
    push_update_locked(*s, final_update);
  }

  if (cfg_.trace != nullptr && s->track != 0) {
    cfg_.trace->complete(s->track, "campaign:" + s->spec.name, t0,
                         cfg_.trace->now_us() - t0);
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    elements_admitted_ -= s->spec.elements;
    --running_;
    switch (final_state) {
      case SessionState::Done: ++counters_.completed; break;
      case SessionState::Failed: ++counters_.failed; break;
      default: ++counters_.halted; break;
    }
    if (ran) counters_.checkpoint_write_retries += r.checkpoint_write_retries;
    s->stop.store(false, std::memory_order_relaxed);
    s->state.store(final_state);
    admit_from_queue_locked();
  }
  s->ucv.notify_all();
}

// ---------------------------------------------------------------------------
// Request dispatch

std::shared_ptr<Service::Session> Service::find_session(
    const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::string Service::session_status_json(Session& s, bool ok_field) {
  std::lock_guard<std::mutex> lk(s.umu);
  const SessionState st = s.state.load();
  std::string out = "{";
  if (ok_field) out += "\"ok\":true,";
  out += "\"session\":\"" + json_escape(s.spec.name) + "\"";
  out += ",\"state\":\"" + std::string(to_string(st)) + "\"";
  out += std::string(",\"resumed\":") +
         ((s.resumed_run || s.resumed_from_disk) ? "true" : "false");
  out += ",\"vectors\":" + std::to_string(s.vectors);
  out += ",\"hard\":" + std::to_string(s.hard);
  out += ",\"potential\":" + std::to_string(s.potential);
  out += ",\"total\":" + std::to_string(s.total_faults);
  out += ",\"elements\":" + std::to_string(s.spec.elements);
  out += ",\"next_seq\":" + std::to_string(s.first_seq + s.updates.size());
  if (st == SessionState::Done) {
    out += ",\"digest\":\"" + hex64(s.digest) + "\"";
    out += ",\"passes\":" + std::to_string(s.passes);
    out += ",\"checkpoint_write_retries\":" + std::to_string(s.ckpt_retries);
  }
  if (st == SessionState::Failed) {
    out += ",\"message\":\"" + json_escape(s.error) + "\"";
  }
  out += "}";
  return out;
}

std::string Service::handle(const std::string& payload) {
  try {
    const JsonValue req = json_parse(payload);
    if (!req.is_object()) {
      throw ProtocolError("bad_request", "request must be a JSON object");
    }
    const std::string op = req.req_string("op");
    if (op == "hello") return op_hello(req);
    if (op == "open") return op_open(req);
    if (op == "status") return op_status(req);
    if (op == "watch") return op_watch(req);
    if (op == "stats") return op_stats(req);
    if (op == "cancel") return op_cancel(req);
    if (op == "shutdown") return op_shutdown(req);
    throw ProtocolError("unknown_op", "unknown op '" + op + "'");
  } catch (const ProtocolError& pe) {
    note_protocol_error();
    return error_response(pe.code(), pe.what());
  } catch (const Error& ex) {
    note_protocol_error();
    return error_response("bad_request", ex.what());
  } catch (const std::exception& ex) {
    note_protocol_error();
    return error_response("internal", ex.what());
  }
}

void Service::note_protocol_error() {
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.protocol_errors;
}

std::string Service::op_hello(const JsonValue&) {
  return "{\"ok\":true,\"server\":\"cfsd\",\"proto\":1,\"max_frame\":" +
         std::to_string(kMaxFrameBytes) + "}";
}

std::string Service::op_open(const JsonValue& req) {
  SessionSpec spec;
  spec.name = req.req_string("session");
  if (!valid_session_name(spec.name)) {
    throw ProtocolError("bad_request",
                        "session names are [A-Za-z0-9._-]+, at most 64 "
                        "chars, not starting with '.'");
  }
  spec.circuit_text = req.req_string("circuit");
  spec.tests_text = req.req_string("tests");
  spec.mode = req.opt_string("mode", "sa");
  if (spec.mode != "sa" && spec.mode != "sa-macro" && spec.mode != "tr") {
    throw ProtocolError("bad_request", "mode must be sa, sa-macro, or tr");
  }
  spec.threads = static_cast<unsigned>(req.opt_u64("threads", 1));
  spec.batch = static_cast<unsigned>(req.opt_u64("batch", 1));
  if (spec.threads == 0 || spec.threads > 64 || spec.batch == 0 ||
      spec.batch > 64) {
    throw ProtocolError("bad_request", "threads and batch must be 1..64");
  }
  spec.elements = req.opt_u64("elements", 0);
  if (spec.elements == 0) spec.elements = cfg_.default_session_elements;
  spec.reset0 = req.opt_bool("reset0", false);
  std::uint32_t wait_ms = static_cast<std::uint32_t>(
      req.opt_u64("wait_ms", cfg_.queue_deadline_ms));
  if (wait_ms > cfg_.queue_deadline_ms) wait_ms = cfg_.queue_deadline_ms;

  std::shared_ptr<Session> s;
  bool fresh = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (draining_) {
      throw ProtocolError("draining", "daemon is draining; try again later");
    }
    const auto it = sessions_.find(spec.name);
    if (it != sessions_.end()) {
      s = it->second;
      if (s->spec.fingerprint() != spec.fingerprint()) {
        throw ProtocolError(
            "spec_mismatch",
            "session '" + spec.name +
                "' exists with a different circuit/suite/configuration");
      }
      ++counters_.attached;
      if (s->state.load() == SessionState::Halted) {
        // Reconnect to a halted (cancelled/drained) session: re-admit it.
        s->state.store(SessionState::Queued);
        queue_.push_back(spec.name);
        admit_from_queue_locked();
      }
    } else {
      if (spec.elements > cfg_.global_elements) {
        ++counters_.admission_refused;
        throw ProtocolError(
            "admission_refused",
            "session needs " + std::to_string(spec.elements) +
                " elements but the global budget is " +
                std::to_string(cfg_.global_elements));
      }
      if (queue_.size() >= cfg_.queue_depth) {
        ++counters_.backpressure_rejected;
        throw ProtocolError("backpressure",
                            "admission queue is full (" +
                                std::to_string(cfg_.queue_depth) +
                                " waiting); try again later");
      }
      s = std::make_shared<Session>();
      s->spec = spec;
      s->dir = session_dir(spec.name);
      sessions_[spec.name] = s;
      queue_.push_back(spec.name);
      ++counters_.opened;
      fresh = true;
      admit_from_queue_locked();
    }

    // Wait (bounded) for admission.  Sessions that were admitted at least
    // once (on disk) survive a timed-out waiter; never-admitted ones are
    // shed entirely.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
    while (s->state.load() == SessionState::Queued && !draining_) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          s->state.load() == SessionState::Queued) {
        ++counters_.deadline_shed;
        if (fresh && !s->on_disk) {
          queue_.remove(spec.name);
          sessions_.erase(spec.name);
        }
        throw ProtocolError("deadline_exceeded",
                            "not admitted within " + std::to_string(wait_ms) +
                                " ms");
      }
    }
    if (s->state.load() == SessionState::Queued && draining_) {
      if (fresh && !s->on_disk) {
        queue_.remove(spec.name);
        sessions_.erase(spec.name);
      }
      throw ProtocolError("draining", "daemon is draining; try again later");
    }
  }
  return session_status_json(*s, /*ok_field=*/true);
}

std::string Service::op_status(const JsonValue& req) {
  const std::string name = req.req_string("session");
  std::shared_ptr<Session> s = find_session(name);
  if (!s) {
    throw ProtocolError("unknown_session", "no session '" + name + "'");
  }
  return session_status_json(*s, /*ok_field=*/true);
}

std::string Service::op_watch(const JsonValue& req) {
  const std::string name = req.req_string("session");
  const std::uint64_t after = req.opt_u64("after", 0);
  const std::uint32_t wait_ms =
      static_cast<std::uint32_t>(req.opt_u64("wait_ms", 1000));
  std::shared_ptr<Session> s = find_session(name);
  if (!s) {
    throw ProtocolError("unknown_session", "no session '" + name + "'");
  }

  std::unique_lock<std::mutex> lk(s->umu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  const auto have_news = [&] {
    return s->first_seq + s->updates.size() > after + 1 ||
           s->state.load() != SessionState::Running;
  };
  while (!have_news()) {
    if (s->ucv.wait_until(lk, deadline) == std::cv_status::timeout) break;
  }

  // Slow watcher: the ring may have advanced past `after`; skip ahead and
  // report the gap instead of blocking the session.
  std::uint64_t cursor = after + 1;
  std::uint64_t skipped = 0;
  if (cursor < s->first_seq) {
    skipped = s->first_seq - cursor;
    cursor = s->first_seq;
  }
  std::string out = "{\"ok\":true,\"session\":\"" + json_escape(name) + "\"";
  out += ",\"state\":\"" + std::string(to_string(s->state.load())) + "\"";
  out += ",\"skipped\":" + std::to_string(skipped);
  out += ",\"updates\":[";
  bool first = true;
  std::uint64_t last = after;
  for (; cursor < s->first_seq + s->updates.size(); ++cursor) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(cursor) + ",\"update\":" +
           s->updates[static_cast<std::size_t>(cursor - s->first_seq)] + "}";
    last = cursor;
  }
  out += "],\"next\":" + std::to_string(last) + "}";
  return out;
}

std::string Service::op_stats(const JsonValue&) {
  std::ostringstream os;
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t shed = counters_.updates_shed;
  std::string sess = "[";
  bool first = true;
  for (auto& [name, s] : sessions_) {
    std::lock_guard<std::mutex> ulk(s->umu);
    shed += s->updates_shed;
    if (!first) sess += ",";
    first = false;
    sess += "{\"session\":\"" + json_escape(name) + "\",\"state\":\"" +
            to_string(s->state.load()) + "\",\"vectors\":" +
            std::to_string(s->vectors) + ",\"hard\":" +
            std::to_string(s->hard) + ",\"elements\":" +
            std::to_string(s->spec.elements) + "}";
  }
  sess += "]";
  os << "{\"ok\":true,\"svc\":{"
     << "\"draining\":" << (draining_ ? "true" : "false")
     << ",\"sessions\":" << sessions_.size()
     << ",\"running\":" << running_
     << ",\"queued\":" << queue_.size()
     << ",\"elements_admitted\":" << elements_admitted_
     << ",\"elements_budget\":" << cfg_.global_elements
     << ",\"opened\":" << counters_.opened
     << ",\"resumed\":" << counters_.resumed
     << ",\"attached\":" << counters_.attached
     << ",\"completed\":" << counters_.completed
     << ",\"failed\":" << counters_.failed
     << ",\"halted\":" << counters_.halted
     << ",\"admission_refused\":" << counters_.admission_refused
     << ",\"backpressure_rejected\":" << counters_.backpressure_rejected
     << ",\"deadline_shed\":" << counters_.deadline_shed
     << ",\"updates_shed\":" << shed
     << ",\"protocol_errors\":" << counters_.protocol_errors
     << ",\"model_cache_hits\":" << counters_.model_cache_hits
     << ",\"model_cache_misses\":" << counters_.model_cache_misses
     << ",\"checkpoint_write_retries\":"
     << counters_.checkpoint_write_retries
     << "},\"sessions\":" << sess << "}";
  return os.str();
}

std::string Service::op_cancel(const JsonValue& req) {
  const std::string name = req.req_string("session");
  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) {
    throw ProtocolError("draining", "daemon is draining");
  }
  const auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    throw ProtocolError("unknown_session", "no session '" + name + "'");
  }
  std::shared_ptr<Session> s = it->second;
  const SessionState st = s->state.load();
  if (st == SessionState::Running) {
    // Cooperative: the campaign stops at the next vector boundary, writes
    // a final checkpoint, and the session lands in Halted (resumable).
    s->stop.store(true, std::memory_order_relaxed);
  } else if (st == SessionState::Queued) {
    queue_.remove(name);
    if (s->on_disk) {
      s->state.store(SessionState::Halted);
    } else {
      sessions_.erase(name);
    }
    cv_.notify_all();
  }
  return "{\"ok\":true,\"session\":\"" + json_escape(name) +
         "\",\"state\":\"" + to_string(s->state.load()) + "\"}";
}

std::string Service::op_shutdown(const JsonValue&) {
  // Synchronous graceful drain: every running session checkpoints and
  // halts; the response confirms completion.  The transport layer exits
  // its accept loop once draining() is set.
  drain();
  return "{\"ok\":true,\"draining\":true}";
}

}  // namespace cfs::svc
