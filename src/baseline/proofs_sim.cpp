#include "baseline/proofs_sim.h"

#include <algorithm>

#include "util/error.h"

namespace cfs {

ProofsSim::ProofsSim(const Circuit& c, const FaultUniverse& u, Val ff_init)
    : c_(&c), u_(&u), good_(c, ff_init), queue_(c) {
  for (const Fault& f : u.faults()) {
    if (f.type != FaultType::StuckAt) {
      throw Error("ProofsSim: stuck-at universes only");
    }
  }
  status_.assign(u.size(), Detect::None);
  ff_diff_.resize(u.size());
  w_.resize(c.num_gates());
  stamp_.assign(c.num_gates(), 0);
}

void ProofsSim::reset(Val ff_init, bool clear_status) {
  good_.reset(ff_init);
  if (clear_status) status_.assign(u_->size(), Detect::None);
  for (auto& d : ff_diff_) d.clear();
}

Word64& ProofsSim::word(GateId g) {
  if (stamp_[g] != cur_stamp_) {
    stamp_[g] = cur_stamp_;
    w_[g] = splat64(good_.value(g));
  }
  return w_[g];
}

Word64 ProofsSim::eval_word(GateId g, std::span<const Forcing> forcings) {
  ++word_evals_;
  const auto fi = c_->fanins(g);
  Word64 pins[kMaxPins];
  for (std::size_t p = 0; p < fi.size(); ++p) pins[p] = word(fi[p]);
  for (const Forcing& f : forcings) {
    if (f.gate == g && f.pin != kFaultOutPin) {
      w_set(pins[f.pin], f.lane, f.val);
    }
  }
  Word64 out;
  switch (c_->kind(g)) {
    case GateKind::Buf:
      out = pins[0];
      break;
    case GateKind::Not:
      out = w_not(pins[0]);
      break;
    case GateKind::And:
    case GateKind::Nand: {
      out = splat64(Val::One);
      for (std::size_t p = 0; p < fi.size(); ++p) out = w_and(out, pins[p]);
      if (c_->kind(g) == GateKind::Nand) out = w_not(out);
      break;
    }
    case GateKind::Or:
    case GateKind::Nor: {
      out = splat64(Val::Zero);
      for (std::size_t p = 0; p < fi.size(); ++p) out = w_or(out, pins[p]);
      if (c_->kind(g) == GateKind::Nor) out = w_not(out);
      break;
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      out = splat64(Val::Zero);
      for (std::size_t p = 0; p < fi.size(); ++p) out = w_xor(out, pins[p]);
      if (c_->kind(g) == GateKind::Xnor) out = w_not(out);
      break;
    }
    case GateKind::Macro: {
      const TruthTable& t = c_->table(c_->table_of(g));
      out = Word64{};
      for (unsigned lane = 0; lane < 64; ++lane) {
        std::uint32_t idx = 0;
        for (std::size_t p = 0; p < fi.size(); ++p) {
          idx |= static_cast<std::uint32_t>(code(w_get(pins[p], lane)))
                 << (2 * p);
        }
        w_set(out, lane, t.eval(idx));
      }
      break;
    }
    case GateKind::Input:
    case GateKind::Dff:
      out = word(g);
      break;
  }
  for (const Forcing& f : forcings) {
    if (f.gate == g && f.pin == kFaultOutPin) w_set(out, f.lane, f.val);
  }
  return out;
}

void ProofsSim::simulate_group(std::span<const std::uint32_t> group,
                               std::size_t& newly) {
  ++cur_stamp_;
  forcings_.clear();
  const auto dffs = c_->dffs();

  // Inject: site forcings plus the lanes' differential flip-flop state.
  for (std::size_t lane = 0; lane < group.size(); ++lane) {
    const std::uint32_t fid = group[lane];
    const Fault& f = (*u_)[fid];
    forcings_.push_back(
        {f.gate, f.pin, static_cast<std::uint8_t>(lane), f.value});
    if (is_combinational(c_->kind(f.gate))) {
      queue_.schedule(f.gate);
    } else if (f.pin == kFaultOutPin) {
      // Stuck output on a PI or DFF: force the lane and wake the fanouts.
      w_set(word(f.gate), lane, f.value);
      for (const Fanout& fo : c_->fanouts(f.gate)) {
        if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
      }
    }
    for (const auto& [dff_idx, val] : ff_diff_[fid]) {
      const GateId q = dffs[dff_idx];
      w_set(word(q), static_cast<unsigned>(lane), val);
      for (const Fanout& fo : c_->fanouts(q)) {
        if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
      }
    }
  }

  // Event-driven bit-parallel settle.
  queue_.drain([this](GateId g) {
    const Word64 out = eval_word(g, forcings_);
    Word64& cur = word(g);
    if (out != cur) {
      cur = out;
      for (const Fanout& fo : c_->fanouts(g)) {
        if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
      }
    }
  });

  // Detection at the primary outputs.
  for (GateId po : c_->outputs()) {
    if (stamp_[po] != cur_stamp_) continue;  // identical to good: no lane set
    const Val good = good_.value(po);
    if (!is_binary(good)) continue;
    const Word64 gw = splat64(good);
    const Word64 fw = w_[po];
    const std::uint64_t hard = w_hard_diff(fw, gw);
    const std::uint64_t pot = w_is_x(fw);
    for (std::size_t lane = 0; lane < group.size(); ++lane) {
      const std::uint32_t fid = group[lane];
      if ((hard >> lane) & 1u) {
        if (status_[fid] != Detect::Hard) {
          status_[fid] = Detect::Hard;
          ++newly;
        }
      } else if (((pot >> lane) & 1u) && status_[fid] == Detect::None) {
        status_[fid] = Detect::Potential;
      }
    }
  }

  // Capture the faulty next-state: rebuild each lane's differential
  // flip-flop list against the good machine's next state.
  for (std::size_t lane = 0; lane < group.size(); ++lane) {
    ff_diff_[group[lane]].clear();
  }
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId q = dffs[i];
    const GateId drv = c_->fanins(q)[0];
    Word64 dw = stamp_[drv] == cur_stamp_ ? w_[drv]
                                          : splat64(good_.value(drv));
    Val good_d = good_.value(drv);
    // DFF-site faults: a D-pin fault forces the latched value; a Q-output
    // fault forces the flip-flop output permanently.
    for (const Forcing& f : forcings_) {
      if (f.gate == q && (f.pin == 0 || f.pin == kFaultOutPin)) {
        w_set(dw, f.lane, f.val);
      }
    }
    const std::uint64_t diff = ~w_eq(dw, splat64(good_d));
    if (diff == 0) continue;
    for (std::size_t lane = 0; lane < group.size(); ++lane) {
      if ((diff >> lane) & 1u) {
        ff_diff_[group[lane]].emplace_back(static_cast<std::uint32_t>(i),
                                           w_get(dw, static_cast<unsigned>(lane)));
      }
    }
  }
}

std::size_t ProofsSim::apply_vector(std::span<const Val> pi_vals) {
  good_.apply(pi_vals);
  std::size_t newly = 0;

  // Regroup the still-undetected faults into words of 64.
  std::vector<std::uint32_t> group;
  group.reserve(64);
  for (std::uint32_t fid = 0; fid < u_->size(); ++fid) {
    if (status_[fid] == Detect::Hard) continue;
    group.push_back(fid);
    if (group.size() == 64) {
      simulate_group(group, newly);
      group.clear();
    }
  }
  if (!group.empty()) simulate_group(group, newly);

  good_.clock();
  return newly;
}

std::size_t ProofsSim::bytes() const {
  std::size_t b = good_.bytes();
  b += w_.capacity() * sizeof(Word64);
  b += stamp_.capacity() * sizeof(std::uint32_t);
  b += status_.capacity();
  for (const auto& d : ff_diff_) {
    b += d.capacity() * sizeof(std::pair<std::uint32_t, Val>);
  }
  b += queue_.bytes();
  return b;
}

}  // namespace cfs
