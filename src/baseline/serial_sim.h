// Serial fault simulation: the ground-truth baseline.
//
// One faulty machine at a time, each replaying the whole test sequence on
// its own injected GoodSim.  Slow (|faults| full simulations) but trivially
// correct -- every other engine in the library is property-tested for exact
// agreement with this one under the shared three-valued semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault.h"
#include "netlist/circuit.h"
#include "patterns/pattern.h"
#include "util/logic.h"

namespace cfs {

struct SerialResult {
  std::vector<Detect> status;       ///< per fault id
  std::uint64_t events = 0;         ///< total gate evaluations
};

struct SerialOptions {
  Val ff_init = Val::X;
  /// Stop simulating a fault at its first hard detection (fault dropping).
  bool stop_on_detect = true;
};

/// Stuck-at serial simulation over a vector sequence (vectors[i] holds one
/// value per primary input, applied in order with a clock between frames).
SerialResult serial_fault_sim(const Circuit& c, const FaultUniverse& u,
                              std::span<const std::vector<Val>> vectors,
                              SerialOptions opt = {});

/// Transition-fault serial simulation with the paper's two-pass-per-vector
/// semantics (pass 1: hold delayed transitions, sample POs and FF masters;
/// pass 2: fire transitions, record previous values; then commit slaves).
SerialResult serial_transition_sim(const Circuit& c, const FaultUniverse& u,
                                   std::span<const std::vector<Val>> vectors,
                                   SerialOptions opt = {});

/// Good-machine PO trace for a vector sequence (one PO vector per frame).
std::vector<std::vector<Val>> good_trace(const Circuit& c,
                                         std::span<const std::vector<Val>> vectors,
                                         Val ff_init = Val::X);

/// Suite variants: every sequence is applied from the reset state and the
/// per-fault statuses are merged (best detection wins).
SerialResult serial_fault_sim(const Circuit& c, const FaultUniverse& u,
                              const TestSuite& suite, SerialOptions opt = {});
SerialResult serial_transition_sim(const Circuit& c, const FaultUniverse& u,
                                   const TestSuite& suite,
                                   SerialOptions opt = {});

}  // namespace cfs
