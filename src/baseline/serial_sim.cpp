#include "baseline/serial_sim.h"

#include "faults/transition_model.h"
#include "sim/good_sim.h"
#include "util/error.h"

namespace cfs {

namespace {

// Compare one faulty PO sample against the good sample, updating status.
// Returns true if the fault is now hard-detected.
bool compare_outputs(std::span<const Val> good, std::span<const Val> faulty,
                     Detect& st) {
  for (std::size_t i = 0; i < good.size(); ++i) {
    if (!is_binary(good[i])) continue;
    if (is_binary(faulty[i]) && faulty[i] != good[i]) {
      st = Detect::Hard;
      return true;
    }
    if (faulty[i] == Val::X && st == Detect::None) st = Detect::Potential;
  }
  return false;
}

}  // namespace

std::vector<std::vector<Val>> good_trace(
    const Circuit& c, std::span<const std::vector<Val>> vectors, Val ff_init) {
  GoodSim good(c, ff_init);
  std::vector<std::vector<Val>> trace;
  trace.reserve(vectors.size());
  for (const auto& v : vectors) {
    good.apply(v);
    trace.push_back(good.output_values());
    good.clock();
  }
  return trace;
}

SerialResult serial_fault_sim(const Circuit& c, const FaultUniverse& u,
                              std::span<const std::vector<Val>> vectors,
                              SerialOptions opt) {
  SerialResult r;
  r.status.assign(u.size(), Detect::None);
  const auto trace = good_trace(c, vectors, opt.ff_init);

  GoodSim faulty(c, opt.ff_init);
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const Fault& f = u[id];
    if (f.type != FaultType::StuckAt) {
      throw Error("serial_fault_sim: stuck-at universes only");
    }
    faulty.inject(f.gate, f.pin, f.value);
    faulty.reset(opt.ff_init);
    for (std::size_t t = 0; t < vectors.size(); ++t) {
      faulty.apply(vectors[t]);
      const auto po = faulty.output_values();
      if (compare_outputs(trace[t], po, r.status[id]) && opt.stop_on_detect) {
        break;
      }
      faulty.clock();
    }
  }
  r.events = faulty.events_processed();
  return r;
}

SerialResult serial_transition_sim(const Circuit& c, const FaultUniverse& u,
                                   std::span<const std::vector<Val>> vectors,
                                   SerialOptions opt) {
  SerialResult r;
  r.status.assign(u.size(), Detect::None);
  const auto trace = good_trace(c, vectors, opt.ff_init);
  const auto dffs = c.dffs();

  GoodSim faulty(c, opt.ff_init);
  std::vector<Val> masters(dffs.size());
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const Fault& f = u[id];
    if (f.type != FaultType::Transition) {
      throw Error("serial_transition_sim: transition universes only");
    }
    faulty.inject_transition(f.gate, f.pin, f.value);
    faulty.set_transition_hold(true, Val::X);
    faulty.reset(opt.ff_init);
    const bool site_is_dff = c.kind(f.gate) == GateKind::Dff;
    Val prev = Val::X;

    for (std::size_t t = 0; t < vectors.size(); ++t) {
      // Pass 1: delayed transition held at its previous value.
      faulty.set_transition_hold(true, prev);
      faulty.apply(vectors[t]);
      const auto po = faulty.output_values();
      const bool done =
          compare_outputs(trace[t], po, r.status[id]) && opt.stop_on_detect;
      // Capture the masters from the pass-1 state.  A D-pin site on a DFF
      // is held here explicitly (clock() is bypassed in this flow).
      for (std::size_t i = 0; i < dffs.size(); ++i) {
        Val d = faulty.pin_value(dffs[i], 0);
        if (site_is_dff && f.gate == dffs[i]) {
          d = transition_hold_value(prev, d, f.value);
        }
        masters[i] = d;
      }
      if (done) break;
      // Pass 2: fire the transition, settle, read the next previous value.
      faulty.set_transition_hold(false, prev);
      faulty.settle();
      prev = faulty.pin_value(f.gate, f.pin);
      // Slave commit: the new flip-flop values propagate as part of the
      // next frame's pass 1.
      faulty.set_transition_hold(true, prev);
      faulty.load_ff_outputs(masters);
    }
  }
  r.events = faulty.events_processed();
  return r;
}

SerialResult serial_fault_sim(const Circuit& c, const FaultUniverse& u,
                              const TestSuite& suite, SerialOptions opt) {
  SerialResult total;
  total.status.assign(u.size(), Detect::None);
  for (const PatternSet& seq : suite.sequences()) {
    const SerialResult r = serial_fault_sim(c, u, seq.vectors(), opt);
    total.events += r.events;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (r.status[i] > total.status[i]) total.status[i] = r.status[i];
    }
  }
  return total;
}

SerialResult serial_transition_sim(const Circuit& c, const FaultUniverse& u,
                                   const TestSuite& suite,
                                   SerialOptions opt) {
  SerialResult total;
  total.status.assign(u.size(), Detect::None);
  for (const PatternSet& seq : suite.sequences()) {
    const SerialResult r = serial_transition_sim(c, u, seq.vectors(), opt);
    total.events += r.events;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (r.status[i] > total.status[i]) total.status[i] = r.status[i];
    }
  }
  return total;
}

}  // namespace cfs
