// PROOFS-style fault simulator (after Niermann, Cheng & Patel, DAC'90):
// the baseline the paper compares against.
//
// Single pattern, fault-parallel: undetected faults are regrouped every
// vector into words of 64; each group's 64 faulty machines are simulated
// bit-parallel (dual-rail Word64 lanes) and event-driven, starting from the
// fault sites and the lanes' differential flip-flop state.  Faulty
// flip-flop values are stored per fault as (dff, value) differences from
// the good machine, and hard-detected faults are dropped from future
// groups.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault.h"
#include "netlist/circuit.h"
#include "sim/good_sim.h"
#include "sim/level_queue.h"
#include "util/dualrail.h"

namespace cfs {

class ProofsSim {
 public:
  /// Stuck-at universes only (the paper's PROOFS comparison is stuck-at).
  ProofsSim(const Circuit& c, const FaultUniverse& u, Val ff_init = Val::X);

  void reset(Val ff_init = Val::X, bool clear_status = false);

  /// Simulate one vector (settle, detect per fault group, latch).
  /// Returns the number of newly hard-detected faults.
  std::size_t apply_vector(std::span<const Val> pi_vals);

  const std::vector<Detect>& status() const { return status_; }
  Coverage coverage() const { return summarize(status_); }

  std::uint64_t word_evals() const { return word_evals_; }
  std::size_t bytes() const;

 private:
  struct Forcing {
    GateId gate;
    std::uint16_t pin;  // kFaultOutPin for output
    std::uint8_t lane;
    Val val;
  };

  Word64& word(GateId g);
  void simulate_group(std::span<const std::uint32_t> group,
                      std::size_t& newly);
  Word64 eval_word(GateId g, std::span<const Forcing> forcings);

  const Circuit* c_;
  const FaultUniverse* u_;
  GoodSim good_;
  std::vector<Detect> status_;
  /// Per fault: flip-flop values differing from the good machine,
  /// (dff index, value) pairs.
  std::vector<std::vector<std::pair<std::uint32_t, Val>>> ff_diff_;

  // Per-group scratch.
  std::vector<Word64> w_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t cur_stamp_ = 0;
  LevelQueue queue_;
  std::vector<Forcing> forcings_;

  std::uint64_t word_evals_ = 0;
};

}  // namespace cfs
