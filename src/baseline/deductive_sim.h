// Deductive fault simulator (Armstrong 1972 -- reference [1] of the paper,
// whose data-structure simplicity the concurrent engine borrows).
//
// Each line carries the set of faults whose presence *complements* the
// line's good value; gate processing combines input sets with the classic
// deductive rules (union when no input is at the controlling value;
// intersection-of-controlling minus union-of-noncontrolling otherwise;
// odd-parity for XOR), adjusted by the gate's local faults.  Flip-flops
// latch their D set each clock, which extends the method to synchronous
// sequential circuits.
//
// Deductive lists represent *inversions*, which is only meaningful for
// binary values -- this engine therefore requires fully-specified vectors
// and a binary flip-flop initialisation, and throws if an X ever appears.
// Within that domain its detections are exact and are property-tested
// against the serial and concurrent engines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/fault_set.h"
#include "faults/fault.h"
#include "netlist/circuit.h"
#include "sim/good_sim.h"

namespace cfs {

class DeductiveSim {
 public:
  /// Stuck-at universes on macro-free circuits only.
  DeductiveSim(const Circuit& c, const FaultUniverse& u,
               Val ff_init = Val::Zero);

  void reset(Val ff_init = Val::Zero, bool clear_status = false);

  /// Simulate one fully-specified vector; returns newly detected faults.
  /// Throws cfs::Error on X inputs or an uninitialisable state.
  std::size_t apply_vector(std::span<const Val> pi_vals);

  const std::vector<Detect>& status() const { return status_; }
  Coverage coverage() const { return summarize(status_); }

  /// Fault set currently on a line (for tests).
  const FaultSet& line_set(GateId g) const { return sets_[g]; }

  std::size_t bytes() const;

 private:
  void sweep();                       // recompute all combinational sets
  FaultSet gate_set(GateId g) const;  // deductive rule for one gate
  void adjust_local(GateId g, std::uint16_t pin, FaultSet& s,
                    Val good_val) const;

  const Circuit* c_;
  const FaultUniverse* u_;
  GoodSim good_;
  std::vector<Detect> status_;
  std::vector<FaultSet> sets_;
  struct LocalFault {
    std::uint16_t pin;
    Val value;
    std::uint32_t id;
  };
  std::vector<std::vector<LocalFault>> local_;
  std::vector<FaultSet> latch_buf_;
};

}  // namespace cfs
