// Sorted fault-set algebra for the deductive fault simulator.
//
// Deductive simulation (Armstrong [1] in the paper) propagates, per line,
// the *set of faults that complement the line's good value*.  Sets are
// sorted vectors of fault ids; all operations are linear merges.
#pragma once

#include <cstdint>
#include <vector>

namespace cfs {

using FaultSet = std::vector<std::uint32_t>;

/// a ∪ b
FaultSet fs_union(const FaultSet& a, const FaultSet& b);

/// a ∩ b
FaultSet fs_intersect(const FaultSet& a, const FaultSet& b);

/// a \ b
FaultSet fs_subtract(const FaultSet& a, const FaultSet& b);

/// Insert one id (keeps order; no-op if present).
void fs_insert(FaultSet& s, std::uint32_t id);

/// Remove one id (no-op if absent).
void fs_erase(FaultSet& s, std::uint32_t id);

bool fs_contains(const FaultSet& s, std::uint32_t id);

/// Ids appearing in an odd number of the given sets (XOR propagation).
FaultSet fs_odd_parity(const std::vector<const FaultSet*>& sets);

/// Intersection of `controlling`, minus the union of `noncontrolling`
/// (the deductive rule for gates with at least one controlling input).
FaultSet fs_controlling_rule(const std::vector<const FaultSet*>& controlling,
                             const std::vector<const FaultSet*>& noncontrolling);

}  // namespace cfs
