#include "baseline/deductive_sim.h"

#include "util/error.h"

namespace cfs {

DeductiveSim::DeductiveSim(const Circuit& c, const FaultUniverse& u,
                           Val ff_init)
    : c_(&c), u_(&u), good_(c, ff_init) {
  for (GateId g = 0; g < c.num_gates(); ++g) {
    if (c.kind(g) == GateKind::Macro) {
      throw Error("DeductiveSim: macro circuits are not supported");
    }
  }
  status_.assign(u.size(), Detect::None);
  sets_.resize(c.num_gates());
  local_.resize(c.num_gates());
  latch_buf_.resize(c.dffs().size());
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const Fault& f = u[id];
    if (f.type != FaultType::StuckAt) {
      throw Error("DeductiveSim: stuck-at universes only");
    }
    local_[f.gate].push_back({f.pin, f.value, id});
  }
  reset(ff_init);
}

void DeductiveSim::reset(Val ff_init, bool clear_status) {
  if (!is_binary(ff_init)) {
    throw Error("DeductiveSim: flip-flop initialisation must be binary");
  }
  if (clear_status) status_.assign(u_->size(), Detect::None);
  good_.reset(ff_init);
  for (auto& s : sets_) s.clear();
  // Flip-flop output faults are live from reset.
  const auto dffs = c_->dffs();
  for (GateId q : dffs) {
    for (const LocalFault& lf : local_[q]) {
      if (lf.pin == kFaultOutPin && lf.value != ff_init) {
        fs_insert(sets_[q], lf.id);
      }
    }
  }
}

void DeductiveSim::adjust_local(GateId g, std::uint16_t pin, FaultSet& s,
                                Val good_val) const {
  for (const LocalFault& lf : local_[g]) {
    if (lf.pin != pin) continue;
    if (lf.value != good_val) {
      fs_insert(s, lf.id);
    } else {
      fs_erase(s, lf.id);
    }
  }
}

FaultSet DeductiveSim::gate_set(GateId g) const {
  const auto fi = c_->fanins(g);
  const GateKind k = c_->kind(g);

  // Effective input sets: driver set adjusted by this gate's pin faults.
  // Copies are made only for pins that actually carry local faults.
  std::vector<FaultSet> adjusted;          // storage for modified pin sets
  std::vector<const FaultSet*> eff(fi.size());
  for (std::size_t j = 0; j < fi.size(); ++j) {
    bool has_local = false;
    for (const LocalFault& lf : local_[g]) has_local |= lf.pin == j;
    if (has_local) {
      adjusted.push_back(sets_[fi[j]]);
      adjust_local(g, static_cast<std::uint16_t>(j), adjusted.back(),
                   good_.pin_value(g, static_cast<unsigned>(j)));
      eff[j] = nullptr;  // patched below once `adjusted` stops reallocating
    } else {
      eff[j] = &sets_[fi[j]];
    }
  }
  {
    std::size_t a = 0;
    for (std::size_t j = 0; j < fi.size(); ++j) {
      if (eff[j] == nullptr) eff[j] = &adjusted[a++];
    }
  }

  FaultSet out;
  switch (k) {
    case GateKind::Buf:
    case GateKind::Not:
      out = *eff[0];
      break;
    case GateKind::And:
    case GateKind::Nand:
    case GateKind::Or:
    case GateKind::Nor: {
      const Val ctrl = (k == GateKind::And || k == GateKind::Nand)
                           ? Val::Zero
                           : Val::One;
      std::vector<const FaultSet*> controlling, noncontrolling;
      for (std::size_t j = 0; j < fi.size(); ++j) {
        const Val v = good_.pin_value(g, static_cast<unsigned>(j));
        // The caller guarantees binary values; local pin faults do not
        // change the *good* pin value.
        (v == ctrl ? controlling : noncontrolling).push_back(eff[j]);
      }
      if (controlling.empty()) {
        for (const FaultSet* s : noncontrolling) out = fs_union(out, *s);
      } else {
        out = fs_controlling_rule(controlling, noncontrolling);
      }
      break;
    }
    case GateKind::Xor:
    case GateKind::Xnor:
      out = fs_odd_parity(eff);
      break;
    default:
      throw Error("DeductiveSim: unexpected gate kind");
  }
  adjust_local(g, kFaultOutPin, out, good_.value(g));
  return out;
}

void DeductiveSim::sweep() {
  for (GateId g : c_->topo_order()) sets_[g] = gate_set(g);
}

std::size_t DeductiveSim::apply_vector(std::span<const Val> pi_vals) {
  for (Val v : pi_vals) {
    if (!is_binary(v)) {
      throw Error("DeductiveSim requires fully-specified vectors");
    }
  }
  good_.apply(pi_vals);
  // Binary-domain check: deductive inversion lists are meaningless on X.
  for (GateId g = 0; g < c_->num_gates(); ++g) {
    if (!is_binary(good_.value(g))) {
      throw Error("DeductiveSim: X value reached gate '" + c_->gate_name(g) +
                  "'");
    }
  }

  // Primary-input fault sets (their output faults vs the applied value).
  for (GateId g : c_->inputs()) {
    sets_[g].clear();
    adjust_local(g, kFaultOutPin, sets_[g], good_.value(g));
  }
  sweep();

  // Detection: every fault on a PO line complements that PO.
  std::size_t newly = 0;
  for (GateId po : c_->outputs()) {
    for (std::uint32_t id : sets_[po]) {
      if (status_[id] != Detect::Hard) {
        status_[id] = Detect::Hard;
        ++newly;
      }
    }
  }

  // Clock: masters capture the D sets (with D-pin faults), slaves commit.
  const auto dffs = c_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId q = dffs[i];
    FaultSet d = sets_[c_->fanins(q)[0]];
    adjust_local(q, 0, d, good_.pin_value(q, 0));
    latch_buf_[i] = std::move(d);
  }
  good_.clock();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId q = dffs[i];
    sets_[q] = std::move(latch_buf_[i]);
    // Q-output faults re-adjust against the newly latched good value.
    adjust_local(q, kFaultOutPin, sets_[q], good_.value(q));
  }
  return newly;
}

std::size_t DeductiveSim::bytes() const {
  std::size_t b = good_.bytes();
  for (const FaultSet& s : sets_) b += s.capacity() * sizeof(std::uint32_t);
  for (const auto& v : local_) b += v.capacity() * sizeof(LocalFault);
  return b;
}

}  // namespace cfs
