#include "baseline/fault_set.h"

#include <algorithm>

namespace cfs {

FaultSet fs_union(const FaultSet& a, const FaultSet& b) {
  FaultSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

FaultSet fs_intersect(const FaultSet& a, const FaultSet& b) {
  FaultSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

FaultSet fs_subtract(const FaultSet& a, const FaultSet& b) {
  FaultSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

void fs_insert(FaultSet& s, std::uint32_t id) {
  const auto it = std::lower_bound(s.begin(), s.end(), id);
  if (it == s.end() || *it != id) s.insert(it, id);
}

void fs_erase(FaultSet& s, std::uint32_t id) {
  const auto it = std::lower_bound(s.begin(), s.end(), id);
  if (it != s.end() && *it == id) s.erase(it);
}

bool fs_contains(const FaultSet& s, std::uint32_t id) {
  return std::binary_search(s.begin(), s.end(), id);
}

FaultSet fs_odd_parity(const std::vector<const FaultSet*>& sets) {
  // k-way merge counting multiplicity parity.
  FaultSet out;
  std::vector<std::size_t> idx(sets.size(), 0);
  for (;;) {
    std::uint32_t m = 0xFFFFFFFFu;
    for (std::size_t k = 0; k < sets.size(); ++k) {
      if (idx[k] < sets[k]->size()) m = std::min(m, (*sets[k])[idx[k]]);
    }
    if (m == 0xFFFFFFFFu) break;
    unsigned count = 0;
    for (std::size_t k = 0; k < sets.size(); ++k) {
      if (idx[k] < sets[k]->size() && (*sets[k])[idx[k]] == m) {
        ++count;
        ++idx[k];
      }
    }
    if (count & 1u) out.push_back(m);
  }
  return out;
}

FaultSet fs_controlling_rule(
    const std::vector<const FaultSet*>& controlling,
    const std::vector<const FaultSet*>& noncontrolling) {
  if (controlling.empty()) return {};
  FaultSet acc = *controlling.front();
  for (std::size_t k = 1; k < controlling.size() && !acc.empty(); ++k) {
    acc = fs_intersect(acc, *controlling[k]);
  }
  for (const FaultSet* nc : noncontrolling) {
    if (acc.empty()) break;
    acc = fs_subtract(acc, *nc);
  }
  return acc;
}

}  // namespace cfs
