// AVX2 kernel table.  This translation unit alone is compiled with -mavx2
// (and -mbmi for tzcnt/blsr); simd.cpp only installs it after CPUID
// confirms the host executes AVX2, so no AVX2 instruction runs elsewhere.
//
// Bit-identity notes per kernel:
//  - find_nonzero / expand_bits: VPTEST-based zero-skip never changes which
//    word is inspected first; the per-word tzcnt/blsr emit is the scalar
//    loop verbatim.
//  - gather_u8: VPGATHERDD loads 32 bits at table+idx and keeps the low
//    byte -- identical to the scalar byte load as long as the table is
//    readable 3 bytes past the end (netlist/gate.cpp pads the shared eval
//    tables; the contract in kernels.h makes it the caller's obligation).
//  - classify: 64-bit XOR/AND/compare lanes, then a scalar combine of the
//    per-lane predicate with the byte-code test -- same truth table as the
//    scalar kernel.
#include <immintrin.h>

#include <bit>
#include <cstring>

#include "simd/kernels.h"

namespace cfs::simd {

namespace {

std::size_t find_nonzero(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  // OR-reduce skip: one VPTEST retires four words per step.
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (!_mm256_testz_si256(v, v)) break;
  }
  while (i < n && words[i] == 0) ++i;
  return i;
}

std::size_t expand_bits(const std::uint64_t* words, std::size_t nwords,
                        std::uint32_t base, std::uint32_t* out) {
  std::size_t k = 0;
  std::size_t i = 0;
  while (i < nwords) {
    // Skip zero regions four words at a time before emitting.
    if (i + 4 <= nwords) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
      if (_mm256_testz_si256(v, v)) {
        i += 4;
        continue;
      }
    }
    std::uint64_t w = words[i];
    const std::uint32_t wb = base + static_cast<std::uint32_t>(i * 64);
    while (w != 0) {
      out[k++] = wb + static_cast<std::uint32_t>(std::countr_zero(w));
      w &= w - 1;
    }
    ++i;
  }
  return k;
}

void gather_u8(const std::uint8_t* table, const std::uint32_t* idx,
               std::size_t n, std::uint8_t* out) {
  const __m256i bytemask = _mm256_set1_epi32(0xFF);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    __m256i g = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), vi, 1);
    g = _mm256_and_si256(g, bytemask);
    // Pack 8 dword byte-values down to 8 bytes (dword->word->byte within
    // each 128-bit lane, then pick dword 0 of each lane).
    const __m256i zero = _mm256_setzero_si256();
    __m256i p = _mm256_packus_epi32(g, zero);
    p = _mm256_packus_epi16(p, zero);
    const std::uint32_t lo =
        static_cast<std::uint32_t>(_mm256_extract_epi32(p, 0));
    const std::uint32_t hi =
        static_cast<std::uint32_t>(_mm256_extract_epi32(p, 4));
    std::memcpy(out + i, &lo, 4);
    std::memcpy(out + i + 4, &hi, 4);
  }
  for (; i < n; ++i) out[i] = table[idx[i]];
}

void state_indices(const std::uint64_t* st, std::size_t n, unsigned shift,
                   std::uint32_t mask, std::uint32_t* idx) {
  const __m256i vmask = _mm256_set1_epi64x(mask);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(st + i));
    v = _mm256_and_si256(_mm256_srli_epi64(v, static_cast<int>(shift)),
                         vmask);
    // Low dword of each qword -> 4 packed dwords.
    const __m256i sh = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128i lo = _mm256_castsi256_si128(sh);
    const __m128i hi = _mm256_extracti128_si256(sh, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(idx + i),
                     _mm_unpacklo_epi64(lo, hi));
  }
  for (; i < n; ++i) {
    idx[i] = static_cast<std::uint32_t>(st[i] >> shift) & mask;
  }
}

void classify(const std::uint64_t* st, const std::uint8_t* outs,
              std::size_t n, std::uint64_t good, std::uint64_t in_mask,
              std::uint8_t good_code, std::uint8_t* cls) {
  const __m256i vgood = _mm256_set1_epi64x(static_cast<long long>(good));
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(in_mask));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(st + i));
    const __m256i diff =
        _mm256_and_si256(_mm256_xor_si256(v, vgood), vmask);
    // Per-lane bit = 1 when the masked pins EQUAL good (not invisible).
    const unsigned eq = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(diff, zero))));
    for (unsigned j = 0; j < 4; ++j) {
      if (outs[i + j] != good_code) {
        cls[i + j] = 1;
      } else {
        cls[i + j] = (eq >> j) & 1u ? 0 : 2;
      }
    }
  }
  for (; i < n; ++i) {
    if (outs[i] != good_code) {
      cls[i] = 1;
    } else {
      cls[i] = ((st[i] ^ good) & in_mask) != 0 ? 2 : 0;
    }
  }
}

}  // namespace

const Kernels* kernels_avx2_table() {
  static const Kernels k{find_nonzero, expand_bits, gather_u8, state_indices,
                         classify};
  return &k;
}

}  // namespace cfs::simd
