// SSE4.2 kernel table (this TU alone is compiled with -msse4.2).  No
// hardware gathers at this tier: gather_u8 stays a scalar loop (unrolled so
// the four loads pipeline), while the word scans and the classification
// test use 128-bit PTEST / compare lanes.
#include <smmintrin.h>

#include <bit>
#include <cstring>

#include "simd/kernels.h"

namespace cfs::simd {

namespace {

std::size_t find_nonzero(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
    if (!_mm_testz_si128(v, v)) break;
  }
  while (i < n && words[i] == 0) ++i;
  return i;
}

std::size_t expand_bits(const std::uint64_t* words, std::size_t nwords,
                        std::uint32_t base, std::uint32_t* out) {
  std::size_t k = 0;
  std::size_t i = 0;
  while (i < nwords) {
    if (i + 2 <= nwords) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
      if (_mm_testz_si128(v, v)) {
        i += 2;
        continue;
      }
    }
    std::uint64_t w = words[i];
    const std::uint32_t wb = base + static_cast<std::uint32_t>(i * 64);
    while (w != 0) {
      out[k++] = wb + static_cast<std::uint32_t>(std::countr_zero(w));
      w &= w - 1;
    }
    ++i;
  }
  return k;
}

void gather_u8(const std::uint8_t* table, const std::uint32_t* idx,
               std::size_t n, std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t a = table[idx[i]];
    const std::uint8_t b = table[idx[i + 1]];
    const std::uint8_t c = table[idx[i + 2]];
    const std::uint8_t d = table[idx[i + 3]];
    out[i] = a;
    out[i + 1] = b;
    out[i + 2] = c;
    out[i + 3] = d;
  }
  for (; i < n; ++i) out[i] = table[idx[i]];
}

void state_indices(const std::uint64_t* st, std::size_t n, unsigned shift,
                   std::uint32_t mask, std::uint32_t* idx) {
  const __m128i vmask = _mm_set1_epi64x(mask);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(st + i));
    v = _mm_and_si128(_mm_srli_epi64(v, static_cast<int>(shift)), vmask);
    const __m128i sh = _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 0, 2, 0));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(idx + i), sh);
  }
  for (; i < n; ++i) {
    idx[i] = static_cast<std::uint32_t>(st[i] >> shift) & mask;
  }
}

void classify(const std::uint64_t* st, const std::uint8_t* outs,
              std::size_t n, std::uint64_t good, std::uint64_t in_mask,
              std::uint8_t good_code, std::uint8_t* cls) {
  const __m128i vgood = _mm_set1_epi64x(static_cast<long long>(good));
  const __m128i vmask = _mm_set1_epi64x(static_cast<long long>(in_mask));
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(st + i));
    const __m128i diff = _mm_and_si128(_mm_xor_si128(v, vgood), vmask);
    const unsigned eq = static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(diff, zero))));
    for (unsigned j = 0; j < 2; ++j) {
      if (outs[i + j] != good_code) {
        cls[i + j] = 1;
      } else {
        cls[i + j] = (eq >> j) & 1u ? 0 : 2;
      }
    }
  }
  for (; i < n; ++i) {
    if (outs[i] != good_code) {
      cls[i] = 1;
    } else {
      cls[i] = ((st[i] ^ good) & in_mask) != 0 ? 2 : 0;
    }
  }
}

}  // namespace

const Kernels* kernels_sse42_table() {
  static const Kernels k{find_nonzero, expand_bits, gather_u8, state_indices,
                         classify};
  return &k;
}

}  // namespace cfs::simd
