// NEON kernel table (aarch64; NEON is architectural there, so no per-file
// flags and no runtime feature probe beyond the architecture itself).
// Kept deliberately close to the SSE4.2 tier: 128-bit word scans and
// classification lanes, scalar table gathers.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>

#include "simd/kernels.h"

namespace cfs::simd {

namespace {

inline bool all_zero(uint64x2_t v) {
  return vmaxvq_u32(vreinterpretq_u32_u64(v)) == 0;
}

std::size_t find_nonzero(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (!all_zero(vld1q_u64(words + i))) break;
  }
  while (i < n && words[i] == 0) ++i;
  return i;
}

std::size_t expand_bits(const std::uint64_t* words, std::size_t nwords,
                        std::uint32_t base, std::uint32_t* out) {
  std::size_t k = 0;
  std::size_t i = 0;
  while (i < nwords) {
    if (i + 2 <= nwords && all_zero(vld1q_u64(words + i))) {
      i += 2;
      continue;
    }
    std::uint64_t w = words[i];
    const std::uint32_t wb = base + static_cast<std::uint32_t>(i * 64);
    while (w != 0) {
      out[k++] = wb + static_cast<std::uint32_t>(std::countr_zero(w));
      w &= w - 1;
    }
    ++i;
  }
  return k;
}

void gather_u8(const std::uint8_t* table, const std::uint32_t* idx,
               std::size_t n, std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t a = table[idx[i]];
    const std::uint8_t b = table[idx[i + 1]];
    const std::uint8_t c = table[idx[i + 2]];
    const std::uint8_t d = table[idx[i + 3]];
    out[i] = a;
    out[i + 1] = b;
    out[i + 2] = c;
    out[i + 3] = d;
  }
  for (; i < n; ++i) out[i] = table[idx[i]];
}

void state_indices(const std::uint64_t* st, std::size_t n, unsigned shift,
                   std::uint32_t mask, std::uint32_t* idx) {
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<std::uint32_t>(st[i] >> shift) & mask;
  }
}

void classify(const std::uint64_t* st, const std::uint8_t* outs,
              std::size_t n, std::uint64_t good, std::uint64_t in_mask,
              std::uint8_t good_code, std::uint8_t* cls) {
  const uint64x2_t vgood = vdupq_n_u64(good);
  const uint64x2_t vmask = vdupq_n_u64(in_mask);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(st + i);
    const uint64x2_t diff = vandq_u64(veorq_u64(v, vgood), vmask);
    const uint64x2_t eqv = vceqzq_u64(diff);  // all-ones when not invisible
    const std::uint64_t eq0 = vgetq_lane_u64(eqv, 0);
    const std::uint64_t eq1 = vgetq_lane_u64(eqv, 1);
    cls[i] = outs[i] != good_code ? 1 : (eq0 != 0 ? 0 : 2);
    cls[i + 1] = outs[i + 1] != good_code ? 1 : (eq1 != 0 ? 0 : 2);
  }
  for (; i < n; ++i) {
    if (outs[i] != good_code) {
      cls[i] = 1;
    } else {
      cls[i] = ((st[i] ^ good) & in_mask) != 0 ? 2 : 0;
    }
  }
}

}  // namespace

const Kernels* kernels_neon_table() {
  static const Kernels k{find_nonzero, expand_bits, gather_u8, state_indices,
                         classify};
  return &k;
}

}  // namespace cfs::simd

#endif  // __aarch64__
