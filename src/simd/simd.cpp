#include "simd/simd.h"

namespace cfs::simd {

// Tables defined by the per-ISA translation units.  Which ones exist is a
// build-time fact (CFS_SIMD + target architecture); which one is *installed*
// is decided here at runtime.
const Kernels& kernels_scalar_table();
#if CFS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
const Kernels* kernels_sse42_table();
const Kernels* kernels_avx2_table();
#endif
#if CFS_SIMD_ENABLED && defined(__aarch64__)
const Kernels* kernels_neon_table();
#endif

namespace {

struct Dispatch {
  Isa isa = Isa::Scalar;
  const Kernels* table = nullptr;
};

Dispatch make_dispatch(Isa isa) {
  Dispatch d;
  d.isa = isa;
  d.table = kernels_for(isa);
  if (d.table == nullptr) {
    d.isa = Isa::Scalar;
    d.table = &kernels_scalar_table();
  }
  return d;
}

Dispatch& dispatch() {
  // Selected once on first use (the widest runnable table); set_isa()
  // replaces it before any engine runs.
  static Dispatch d = make_dispatch(detect_isa());
  return d;
}

}  // namespace

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Sse42: return "sse4.2";
    case Isa::Avx2: return "avx2";
    case Isa::Neon: return "neon";
  }
  return "?";
}

unsigned isa_width_bits(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return 64;
    case Isa::Sse42: return 128;
    case Isa::Avx2: return 256;
    case Isa::Neon: return 128;
  }
  return 64;
}

const Kernels* kernels_for(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return &kernels_scalar_table();
#if CFS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
    case Isa::Sse42:
      return __builtin_cpu_supports("sse4.2") ? kernels_sse42_table()
                                              : nullptr;
    case Isa::Avx2:
      // The AVX2 TU also uses BMI1 (tzcnt/blsr); every AVX2 part ships it,
      // but the probe keeps the claim honest.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi")
                 ? kernels_avx2_table()
                 : nullptr;
#endif
#if CFS_SIMD_ENABLED && defined(__aarch64__)
    case Isa::Neon:
      return kernels_neon_table();
#endif
    default:
      return nullptr;
  }
}

Isa detect_isa() {
#if CFS_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  if (kernels_for(Isa::Avx2) != nullptr) return Isa::Avx2;
  if (kernels_for(Isa::Sse42) != nullptr) return Isa::Sse42;
#endif
#if CFS_SIMD_ENABLED && defined(__aarch64__)
  return Isa::Neon;
#endif
  return Isa::Scalar;
}

Isa active_isa() { return dispatch().isa; }

std::string_view active_isa_name() { return isa_name(active_isa()); }

unsigned active_simd_width_bits() { return isa_width_bits(active_isa()); }

bool set_isa(std::string_view name) {
  Isa want;
  if (name == "auto") {
    want = detect_isa();
  } else if (name == "off" || name == "scalar") {
    want = Isa::Scalar;
  } else if (name == "sse4.2" || name == "sse42") {
    want = Isa::Sse42;
  } else if (name == "avx2") {
    want = Isa::Avx2;
  } else if (name == "neon") {
    want = Isa::Neon;
  } else {
    return false;
  }
  const Kernels* t = kernels_for(want);
  if (t == nullptr) return false;
  dispatch() = Dispatch{want, t};
  return true;
}

const Kernels& kernels() { return *dispatch().table; }

const Kernels& scalar_kernels() { return kernels_scalar_table(); }

}  // namespace cfs::simd
