// Runtime ISA dispatch for the explicit vector kernels (DESIGN.md §16).
//
// The engine's hot loops (batched table eval, bitmap sweep, merge
// classification) call through one process-wide kernel table selected at
// startup: the widest instruction set the host supports, clamped to what
// this build compiled in.  Every kernel is bit-identical to its portable
// scalar implementation -- SIMD here buys throughput, never a different
// answer -- and the scalar table stays reachable two ways:
//
//   build time  -DCFS_SIMD=OFF   only kernels_scalar.cpp is compiled
//   run time    --simd=off       set_isa("off") pins the scalar table
//
// Dispatch is decided once (x86: __builtin_cpu_supports, i.e. CPUID;
// aarch64: NEON is architectural) and recorded in stats-JSON `meta.isa`,
// the bench baselines' `host.isa`, and `cfs sim` verbose output, so a
// digest or counter mismatch can always be traced to the kernel set that
// produced it.
#pragma once

#include <cstdint>
#include <string_view>

#include "simd/kernels.h"

namespace cfs::simd {

enum class Isa : std::uint8_t { Scalar, Sse42, Avx2, Neon };

/// Canonical lower-case name ("scalar", "sse4.2", "avx2", "neon").
std::string_view isa_name(Isa isa);

/// Vector register width the ISA's kernels operate at, in bits (scalar
/// kernels still chew 64-bit words).
unsigned isa_width_bits(Isa isa);

/// Widest ISA this build + this host can run.  Pure detection: ignores any
/// override installed with set_isa().
Isa detect_isa();

/// The ISA whose kernel table kernels() currently returns.
Isa active_isa();

/// Convenience accessors for the active selection (stats-JSON meta block,
/// bench baselines, verbose output).
std::string_view active_isa_name();
unsigned active_simd_width_bits();

/// Select the kernel set by name: "auto" (re-detect), "off" or "scalar",
/// "sse4.2", "avx2", "neon".  Returns false (and changes nothing) for an
/// unknown name or an ISA this build/host cannot run -- callers surface
/// that as a CLI error.  Not thread-safe against concurrent kernel use;
/// call it once at startup before any engine runs.
bool set_isa(std::string_view name);

/// The active kernel table.  Hot paths grab the reference once per batch;
/// the pointed-to table never mutates after set_isa().
const Kernels& kernels();

/// The portable scalar table, always available: the oracle the lockstep
/// tests compare every other table against.
const Kernels& scalar_kernels();

/// The kernel table of a specific ISA, or nullptr when this build (e.g.
/// -DCFS_SIMD=OFF, foreign architecture) or this host cannot run it.  The
/// lockstep tests iterate every non-null table against the scalar oracle.
const Kernels* kernels_for(Isa isa);

}  // namespace cfs::simd
