// Portable scalar reference kernels: the semantics every vector table is
// held to, and the table -DCFS_SIMD=OFF / --simd=off pins.
#include <bit>

#include "simd/kernels.h"

namespace cfs::simd {

namespace {

std::size_t find_nonzero(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  while (i < n && words[i] == 0) ++i;
  return i;
}

std::size_t expand_bits(const std::uint64_t* words, std::size_t nwords,
                        std::uint32_t base, std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < nwords; ++i) {
    std::uint64_t w = words[i];
    const std::uint32_t wb = base + static_cast<std::uint32_t>(i * 64);
    while (w != 0) {
      out[k++] = wb + static_cast<std::uint32_t>(std::countr_zero(w));
      w &= w - 1;
    }
  }
  return k;
}

void gather_u8(const std::uint8_t* table, const std::uint32_t* idx,
               std::size_t n, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = table[idx[i]];
}

void state_indices(const std::uint64_t* st, std::size_t n, unsigned shift,
                   std::uint32_t mask, std::uint32_t* idx) {
  for (std::size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<std::uint32_t>(st[i] >> shift) & mask;
  }
}

void classify(const std::uint64_t* st, const std::uint8_t* outs,
              std::size_t n, std::uint64_t good, std::uint64_t in_mask,
              std::uint8_t good_code, std::uint8_t* cls) {
  for (std::size_t i = 0; i < n; ++i) {
    if (outs[i] != good_code) {
      cls[i] = 1;
    } else {
      cls[i] = ((st[i] ^ good) & in_mask) != 0 ? 2 : 0;
    }
  }
}

}  // namespace

const Kernels& kernels_scalar_table() {
  static const Kernels k{find_nonzero, expand_bits, gather_u8, state_indices,
                         classify};
  return k;
}

}  // namespace cfs::simd
