// The vector-kernel table: one function pointer per hot-loop primitive,
// filled per ISA (kernels_scalar.cpp, kernels_sse42.cpp, kernels_avx2.cpp,
// kernels_neon.cpp) and selected once at startup by simd.cpp.
//
// Contracts are written against the scalar reference; every other
// implementation must match it bit for bit on all inputs the contract
// admits.  tests/test_simd.cpp enforces this in lockstep for every table
// the build carries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cfs::simd {

struct Kernels {
  /// First index i in [0, n) with words[i] != 0, else n.  The level queue's
  /// dirty-summary and per-level sweeps skip zero regions through this
  /// (vector forms OR-reduce several words per step).
  std::size_t (*find_nonzero)(const std::uint64_t* words, std::size_t n);

  /// Compressed-index emit: append the position `base + 64*i + bit` of
  /// every set bit of every words[i] (i ascending, bits low-to-high) to
  /// `out`, returning the number of positions written.  `out` must have
  /// room for 64*nwords entries.  Does not modify the words.
  std::size_t (*expand_bits)(const std::uint64_t* words, std::size_t nwords,
                             std::uint32_t base, std::uint32_t* out);

  /// Batched byte-table lookup: out[i] = table[idx[i]] for i < n.
  /// The table must be readable 3 bytes past its last indexable entry
  /// (vector gathers load 32 bits at byte granularity; netlist/gate.cpp
  /// pads the shared eval tables accordingly).
  void (*gather_u8)(const std::uint8_t* table, const std::uint32_t* idx,
                    std::size_t n, std::uint8_t* out);

  /// Gather-index build from packed gate states:
  /// idx[i] = (uint32)(st[i] >> shift) & mask.
  void (*state_indices)(const std::uint64_t* st, std::size_t n,
                        unsigned shift, std::uint32_t mask,
                        std::uint32_t* idx);

  /// Merge classification (the visible-change test, a vector of elements
  /// at a time): for each element i,
  ///   cls[i] = 1  if outs[i] != good_code              (visible)
  ///            2  else if (st[i] ^ good) & in_mask     (invisible)
  ///            0  otherwise                            (converged)
  /// `outs` are 2-bit output codes as produced by gather_u8 over an eval
  /// table; `good` is the good packed state, `in_mask` the input-pin mask.
  void (*classify)(const std::uint64_t* st, const std::uint8_t* outs,
                   std::size_t n, std::uint64_t good, std::uint64_t in_mask,
                   std::uint8_t good_code, std::uint8_t* cls);
};

}  // namespace cfs::simd
