// Portable snapshot of a concurrent engine's sequential run state.
//
// Everything a fault simulator carries across a clock edge is (a) the good
// flip-flop values, (b) the per-fault faulty flip-flop divergences (the
// visible list at each DFF Q), and (c), in transition mode, each fault's
// previous site-pin value.  The combinational state -- good machine and all
// comb-gate fault lists -- is a pure function of those plus the primary
// inputs, so ConcurrentSim::restore_run_state() can rebuild an engine
// bit-identically (as far as every observable: coverage, detection order,
// deterministic counters) from this struct alone.
//
// The snapshot is deliberately engine-layout-agnostic: fault ids are global
// universe ids and flip-flops are indexed in circuit DFF order, so a
// snapshot captured from a 4-shard ShardedSim restores into a 2-shard one
// (each shard filters by ownership), and the resil/ checkpoint format
// serializes it without referencing pool indices or list pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/logic.h"
#include "util/packed_state.h"

namespace cfs {

/// One faulty machine's divergence at a flip-flop: the fault id and the
/// packed element state (pin 0 = faulty D as latched, output = faulty Q).
struct FlopFault {
  std::uint32_t fault = 0;
  GateState state = 0;

  friend bool operator==(const FlopFault&, const FlopFault&) = default;
};

/// Sequential state of one engine (or of a whole sharded simulator, with
/// the per-shard slices merged by ascending fault id).
struct RunStateSnapshot {
  /// Good Q value per flip-flop, in circuit().dffs() order.
  std::vector<Val> flop_good;
  /// Visible fault elements at each flip-flop's Q, sorted by fault id.
  std::vector<std::vector<FlopFault>> flop_faulty;
  /// Transition mode: per-fault previous site-pin value (empty otherwise).
  std::vector<Val> prev_pins;

  friend bool operator==(const RunStateSnapshot&,
                         const RunStateSnapshot&) = default;
};

// Note: there is deliberately no "initial" snapshot constructor.  An empty
// flop_faulty list means "no divergences at this flip-flop" and is injected
// verbatim by restore_run_state() -- but in the initial state the flip-flop
// *site* faults do diverge, and only reset() activates them.  Sequence
// starts must go through reset(), never through restoring a synthetic
// snapshot.

}  // namespace cfs
