// The paper's contribution: a concurrent fault simulator for synchronous
// sequential circuits with deductive-style per-gate fault lists.
//
// Representation (paper §2, Figure 2):
//  - Every gate carries a sorted fault list of elements
//    {fault id, packed state, next}; lists terminate in a shared sentinel
//    whose fault id is the largest representable value, so traversals never
//    test for end-of-list.
//  - A fault *descriptor* table holds per-fault global information: the
//    site, the forced value, the detection status, and (in macro mode) the
//    faulty lookup table of a functional fault.
//  - Zero-delay levelized event-driven simulation: only gate ids are
//    scheduled; a processed gate performs one multi-list merge over its
//    fanins' (visible) fault lists, its own lists, and its local site
//    faults, evaluating each faulty machine by table lookup and deciding
//    divergence/convergence by comparing packed states.
//
// Improvements (paper §2.2): event-driven fault dropping, visible/invisible
// list splitting, and macro mode (functional faults via per-descriptor
// tables).  Destination lists are updated *in place* by a differential
// apply (DESIGN.md §9): surviving fault ids keep their pool element and
// only the packed state is patched, insertions/removals splice through a
// cursor, and a merge whose produced sequence equals the stored one leaves
// the list untouched -- so pool traffic scales with list churn, not list
// length.  §3's transition-fault model is implemented by the same engine in
// transition mode: two passes per vector -- pass 1 holds delayed transitions
// at their previous value (Table 1) and is what POs and FF masters sample,
// pass 2 fires every transition to produce the next frame's "previous"
// values.
//
// The engine is split into an immutable SimModel (core/sim_model.h) --
// descriptors, site-fault indices, transition groupings -- and this class,
// which is pure *run state* (fault lists, pool, good machine, queue,
// detection status).  Engines constructed over the same shared model never
// write to it, so they may run concurrently; a fault shard (faults/
// partition.h) restricts an engine to a subset of the universe for the
// multi-threaded ShardedSim driver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/options.h"
#include "core/run_state.h"
#include "core/sim_model.h"
#include "faults/fault.h"
#include "faults/macro_map.h"
#include "faults/partition.h"
#include "netlist/circuit.h"
#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/timers.h"
#include "sim/level_queue.h"
#include "util/dualrail.h"
#include "util/logic.h"
#include "util/memtrack.h"
#include "util/packed_state.h"
#include "util/pool.h"
#include "util/prefetch.h"

namespace cfs {

class ConcurrentSim {
 public:
  /// Plain mode: simulate universe `u` on circuit `c`.  In macro mode pass
  /// the extracted circuit as `c` and the fault map as `mmap` (the universe
  /// still indexes the *original* faults; only sites move).  The caller
  /// keeps `c`, `u`, and `mmap` alive for the engine's lifetime.  Builds and
  /// owns a private SimModel.
  ConcurrentSim(const Circuit& c, const FaultUniverse& u,
                CsimOptions opt = {}, const MacroFaultMap* mmap = nullptr);

  /// Share an existing model (N engines, one table set).  When `part` is
  /// given the engine simulates only the faults of shard `shard_index`:
  /// faults owned by other shards never materialise elements and keep
  /// status Detect::None.  `suspended`, when given (size num_faults),
  /// additionally excludes the marked faults from the initial activation --
  /// the memory-budget path constructs engines under an enforced pool
  /// budget and must keep the first reset within it.
  explicit ConcurrentSim(std::shared_ptr<const SimModel> model,
                         CsimOptions opt = {},
                         const FaultPartition* part = nullptr,
                         unsigned shard_index = 0,
                         const std::vector<std::uint8_t>* suspended = nullptr);

  const Circuit& circuit() const { return *c_; }
  const SimModel& model() const { return *model_; }
  bool transition_mode() const { return transition_mode_; }

  /// Reinitialise: good machine to X inputs / `ff_init` flip-flops, all
  /// fault lists rebuilt from scratch, detection status preserved unless
  /// `clear_status`.
  void reset(Val ff_init = Val::X, bool clear_status = false);

  /// Simulate one test vector: drive PIs, settle, sample POs (detection),
  /// clock the flip-flops.  In transition mode this runs the two-pass
  /// scheme.  Returns the number of newly hard-detected faults.
  std::size_t apply_vector(std::span<const Val> pi_vals);

  // -- resilience (resil/campaign.h drives these) --------------------------

  /// Capture the engine's sequential state at a vector boundary: flip-flop
  /// good values, per-DFF faulty divergence lists (owned, non-dropped
  /// faults only), and transition-mode previous pin values.  Together with
  /// status() this is everything restore_run_state() needs.
  RunStateSnapshot capture_run_state() const;

  /// Rebuild the engine from a boundary snapshot: detection status is set
  /// to `status`, all fault lists are torn down and re-derived (primary
  /// inputs return to X until the next vector drives them; faults excluded
  /// by the shard partition, the suspension overlay, or event-driven
  /// dropping never materialise), and the snapshot's flip-flop divergences
  /// are re-injected.  Continuing the vector stream afterwards is
  /// bit-identical -- coverage, detection order, deterministic counters --
  /// to never having stopped.  The snapshot may cover the whole universe
  /// even when this engine owns one shard of it.  Also the recovery path
  /// after a PoolBudgetError: the pool is reshaped from scratch, so a
  /// half-merged wreck restores cleanly.
  void restore_run_state(const RunStateSnapshot& s,
                         const std::vector<Detect>& status);

  /// Adopt an externally tracked detection status (size num_faults) ahead
  /// of the next reset(): a freshly built engine resuming a campaign at a
  /// sequence boundary must know which faults are already hard-detected so
  /// event-driven dropping keeps them out of the rebuilt lists.  List
  /// contents change at the next reset()/restore_run_state(), not here.
  void adopt_status(const std::vector<Detect>& status) { status_ = status; }

  /// Overlay mask (size num_faults or empty): marked faults are suspended
  /// -- treated exactly like faults of a foreign shard until the next
  /// restore_run_state()/reset() rebuilds the lists.  The multi-pass
  /// memory-budget path parks the remainder of the universe here.
  void set_suspended(const std::vector<std::uint8_t>& suspended);

  /// Re-derive the shard-ownership exclusion base from `part` (the dynamic
  /// rebalancer repartitions ownership mid-run).  Resets the suspension
  /// overlay: callers reapply it via set_suspended(), then rebuild the
  /// lists via restore_run_state() before the next vector.
  void set_shard(const FaultPartition& part, unsigned shard_index);

  /// Add each live (non-dropped) fault-list element held by this engine to
  /// its fault's slot in `w` (size num_faults; throws otherwise).  A
  /// fault's element count is a pure function of the good machine and its
  /// own divergences -- independent of which shard simulates it -- so
  /// per-shard accumulations compose into the partition-invariant weight
  /// vector the rebalancer packs on.
  void accumulate_live_weights(std::vector<std::uint64_t>& w) const;

  /// Grow the element arena to `n` slots (never shrinks; an enforced
  /// budget caps the growth).  Re-applies the constructor's pre-size
  /// policy after a repartition changes this engine's share of the
  /// universe.
  void reserve_elements(std::size_t n);

  /// Start a fresh element-pool high-water epoch (campaign accounting
  /// across budget-enforced passes).
  void reset_peak_elements() { pool_.reset_peak(); }

  /// Arm the packed good-machine oracle for the next apply_vector(): while
  /// armed, process_gate() serves a gate's new good value from lane `lane`
  /// of `step_slab[gate * words_per_gate ..]` -- the settled multi-word
  /// outputs a BatchGoodSim computed for this vector -- instead of
  /// re-evaluating the gate.  Sound
  /// because the level queue processes a gate only after all of its
  /// strictly-lower-level fanins are final, so the scalar evaluation the
  /// oracle replaces already equals the settled value.  Only TableEvals
  /// shifts; good values, fault propagation, detection order, and the
  /// deterministic counters are bit-identical.  The engine disarms itself
  /// before the clock phase (post-clock settling is not in the slab); in
  /// transition mode the oracle stays live through pass 2, whose good
  /// values equal pass 1's settled frame.  Pass nullptr to disarm.
  /// `step_slab` must stay valid until the next apply_vector() returns.
  void set_good_batch_oracle(const Word64* step_slab, unsigned lane,
                             unsigned words_per_gate = 1) {
    good_oracle_ = step_slab == nullptr
                       ? nullptr
                       : step_slab + (lane >> 6);  // lane's word, gate 0
    good_oracle_stride_ = words_per_gate;
    good_oracle_lane_ = lane & 63u;
  }

  // -- granular API (stuck-at mode), used by tests ------------------------
  void set_inputs(std::span<const Val> pi_vals);
  void settle();
  std::size_t sample_outputs();
  void clock();

  // -- results ------------------------------------------------------------
  const std::vector<Detect>& status() const { return status_; }
  Coverage coverage() const { return summarize(status_); }

  /// Observer invoked on every output mismatch during sampling (including
  /// repeats for already-detected faults when dropping is off): arguments
  /// are the fault id, the PO position in circuit().outputs(), and whether
  /// the mismatch is hard (binary complement) or potential (X vs binary).
  /// Used by the fault-dictionary builder.
  using DetectionObserver =
      std::function<void(std::uint32_t fault, std::uint32_t po, bool hard)>;
  void set_detection_observer(DetectionObserver obs) {
    observer_ = std::move(obs);
  }

  /// Good-machine value of a gate (settled).
  Val good_value(GateId g) const { return state_out(good_state_[g]); }

  /// Faulty output value of `fault` at gate `g`: the element's value if one
  /// is present, otherwise the good value.  For tests and debugging.
  Val faulty_value(GateId g, std::uint32_t fault) const;

  /// Sorted (fault id, output value) pairs visible at a gate.
  std::vector<std::pair<std::uint32_t, Val>> visible_at(GateId g) const;

  /// Deep structural check for tests: every list sorted, unique, and
  /// sentinel-terminated; visible elements differ from the good output,
  /// invisible ones agree; every non-dropped element's pins equal the
  /// faulty driver values (visible element at the driver, else good), and
  /// its output equals re-evaluation of its pins.  Throws cfs::Error with a
  /// description of the first violation (stuck-at mode only; the settled
  /// state between vectors is required).
  void validate() const;

  // -- statistics ----------------------------------------------------------
  std::size_t live_elements() const { return pool_.live() - 1; }  // -sentinel
  std::size_t peak_elements() const { return pool_.peak_live(); }
  std::uint64_t gates_processed() const { return queue_.processed(); }
  std::uint64_t elements_evaluated() const { return elements_evaluated_; }
  std::uint64_t vectors_simulated() const { return vectors_simulated_; }
  /// Hard detections that armed event-driven dropping (0 with dropping off).
  std::uint64_t faults_dropped() const { return faults_dropped_; }
  /// Telemetry counters (obs/counters.h), including the event queue's
  /// scheduling counts.  All-zero when built with CFS_OBS=OFF.
  obs::Counters counters() const {
    obs::Counters c = counters_;
    c.merge(queue_.counters());
    return c;
  }
  /// Per-phase wall-time accumulation (obs/timers.h); engine-internal
  /// phases are recorded only when built with CFS_OBS=ON.
  const obs::PhaseTimers& timers() const { return timers_; }
  /// Work-attribution distributions (obs/histogram.h): fault-list length
  /// per merge, divergence size per gate.  All-zero when CFS_OBS=OFF.
  const obs::HistogramSet& histograms() const { return hists_; }
  /// Per-level eval/merge/traversal attribution along the levelized
  /// circuit structure.  All-zero when CFS_OBS=OFF.
  const obs::LevelProfile& level_profile() const { return levels_; }
  /// Bytes of the fault-element pool alone (the paper's dominant MEM term).
  std::size_t pool_bytes() const { return pool_.bytes(); }
  /// Bytes of this engine's run state (pool, lists, good machine, queue);
  /// excludes the shared model.
  std::size_t state_bytes() const;
  /// Run state plus the (possibly shared) model -- the engine's full
  /// footprint when it does not share the model with anyone.
  std::size_t bytes() const { return state_bytes() + model_->bytes(); }
  void report_memory(MemStats& ms) const;

 private:
  struct Element {
    std::uint32_t fault_id;
    std::uint32_t next;
    GateState state;
  };

  static constexpr std::uint32_t kSentinelId = 0xFFFFFFFFu;

  bool dropped(std::uint32_t fault) const {
    return opt_.drop_detected && fault < status_.size() &&
           status_[fault] == Detect::Hard;
  }

  /// True when a site fault must not materialise: owned by another shard,
  /// or hard-detected with dropping on (an *eager* drop -- the element is
  /// never built, vs. the lazy unlink in cursor_skip_dropped).
  bool skip_site(std::uint32_t fault) const {
    if (excluded_[fault] != 0) return true;
    if (dropped(fault)) {
      CFS_COUNT(counters_, DropSkipsEager);
      return true;
    }
    return false;
  }

  // Cursor over a linked fault list with lazy dropping (unlinks dropped
  // elements as it passes them).  The three primitives are defined here so
  // the multi-list merge, which calls them once per element, inlines them.
  struct Cursor {
    std::uint32_t* head = nullptr;  // pointer to the head slot
    std::uint32_t prev = kNullIndex;
    std::uint32_t cur = kNullIndex;
    std::uint32_t id = 0xFFFFFFFFu;
  };

  void cursor_count_step(const Cursor& cu) {
#if CFS_OBS_ENABLED
    if (cu.id == kSentinelId) {
      CFS_COUNT(counters_, SentinelHits);
    } else {
      CFS_COUNT(counters_, ElementsTraversed);
    }
#endif
  }

  void cursor_skip_dropped(Cursor& cu) {
    while (cu.id != kSentinelId && dropped(cu.id)) {
      // Event-driven fault dropping: unlink while traversing (paper §2.2).
      CFS_COUNT(counters_, DropUnlinksLazy);
      CFS_COUNT(counters_, ElementsFreed);
      const std::uint32_t dead = cu.cur;
      const std::uint32_t nxt = pool_[dead].next;
      if (cu.prev == kNullIndex) {
        *cu.head = nxt;
      } else {
        pool_[cu.prev].next = nxt;
      }
      pool_.free(dead);
      cu.cur = nxt;
      cu.id = pool_[nxt].fault_id;
    }
  }

  void cursor_init(Cursor& cu, std::uint32_t* head) {
    cu.head = head;
    cu.prev = kNullIndex;
    cu.cur = *head;
    cu.id = pool_[cu.cur].fault_id;
    CFS_PREFETCH(&pool_[pool_[cu.cur].next]);
    cursor_skip_dropped(cu);
    cursor_count_step(cu);
  }

  void cursor_advance(Cursor& cu) {
    cu.prev = cu.cur;
    cu.cur = pool_[cu.cur].next;
    cu.id = pool_[cu.cur].fault_id;
    // Pull the element after the new one into cache: a multi-list merge
    // comes back for it one min-selection from now, long enough for the
    // load to complete.  The sentinel self-links, so the address is valid.
    CFS_PREFETCH(&pool_[pool_[cu.cur].next]);
    cursor_skip_dropped(cu);
    cursor_count_step(cu);
  }

  // Quiet variants for the merge walk: identical motion, but the per-step
  // traversal census is settled in bulk at the end of the merge instead of
  // one counter RMW per step -- each cursor visits exactly its list's
  // elements plus one sentinel, so ElementsTraversed owes the number of
  // consumed elements and SentinelHits owes one per cursor.  Lazy-drop
  // unlinking (and its DropUnlinksLazy / ElementsFreed counts) still
  // happens per step, exactly as in the counting variants.
  void cursor_init_quiet(Cursor& cu, std::uint32_t* head) {
    cu.head = head;
    cu.prev = kNullIndex;
    cu.cur = *head;
    cu.id = pool_[cu.cur].fault_id;
    CFS_PREFETCH(&pool_[pool_[cu.cur].next]);
    cursor_skip_dropped(cu);
  }

  void cursor_advance_quiet(Cursor& cu) {
    cu.prev = cu.cur;
    cu.cur = pool_[cu.cur].next;
    cu.id = pool_[cu.cur].fault_id;
    CFS_PREFETCH(&pool_[pool_[cu.cur].next]);
    cursor_skip_dropped(cu);
  }

  Val transition_forced(std::uint32_t fault, Val cv) const;

  /// All gate evaluations funnel through here: the flat-table path by
  /// default (counted as TableEvals), the fold-over-pins oracle under
  /// CsimOptions::fold_eval.  Bit-identical either way.
  Val eval_gate(GateId g, GateState st) {
    if (opt_.fold_eval) return c_->eval_fold(g, st);
    CFS_COUNT(counters_, TableEvals);
    return c_->eval(g, st);
  }

  Val eval_element(GateId g, std::uint32_t fault, GateState& state);
  bool merge_gate(GateId g, Val new_good_out);
  void process_gate(GateId g);
  // Batched settle path: one whole ready level at a time (drain_levels).
  // Good values of the entire level are evaluated up front -- gates of one
  // level never feed each other, so every good_state_ the level reads is
  // already final -- then each gate merges in the same ascending-id order
  // drain() used.  Bit-identical to per-gate process_gate() by construction.
  void process_level(const GateId* gates, std::size_t n);
  // Grouped table evaluation of a level's good values into lvl_good_:
  // gates sharing an eval table (same (kind, arity) class, or one macro)
  // are gathered in vector passes; sources and wide-join tails stay scalar.
  void batch_eval_good(const GateId* gates, std::size_t n);
  void commit_good(GateId g, Val v);
  void free_list(std::uint32_t& head);
  std::uint32_t build_list(const std::vector<std::pair<std::uint32_t, GateState>>& items);

  // Which structural/value differences the in-place apply reports as a
  // change of the *visible* (fault id, output) sequence.
  enum class ChangeTrack : std::uint8_t {
    None,         // invisible lists: nothing downstream reads them
    All,          // split-mode visible lists, DFF Q lists: every element
    VisibleOnly,  // combined-mode lists: classify by old/new good output
  };
  // `migrate` piggybacks the split-list migration census on the removal
  // walk: a non-dropped removal whose id also appears in `migrate` (the
  // produced elements of the *other* half) is exactly a visible<->invisible
  // migration, counted as `mig_counter`.  Both the removals and `migrate`
  // ascend by id, so one moving pointer replaces the standalone co-walk the
  // counters used to need (kept only for the rebuild_lists oracle, which
  // never runs the in-place apply).
  bool apply_list_inplace(
      std::uint32_t& head,
      std::span<const std::pair<std::uint32_t, GateState>> items,
      ChangeTrack track, Val old_good_out, Val new_good_out,
      std::span<const std::pair<std::uint32_t, GateState>> migrate = {},
      obs::Counter mig_counter = obs::Counter::VisToInvMigrations);
  // The track-specialised body behind apply_list_inplace: the change-test
  // mode is a compile-time constant on the per-element path.
  template <ChangeTrack track>
  bool apply_list_impl(
      std::uint32_t& head,
      std::span<const std::pair<std::uint32_t, GateState>> items,
      Val old_good_out, Val new_good_out,
      std::span<const std::pair<std::uint32_t, GateState>> migrate,
      obs::Counter mig_counter);
  // The empty-scope check is the common case by far (an unchanged list
  // neither unlinks nor inserts), so it stays inline.
  void salvage_flush() {
    if (pending_.empty() && salvage_.empty()) return;
    salvage_flush_slow();
  }
  void salvage_flush_slow();
  void refresh_source_site(GateId g);
  // Shared tail of reset()/restore_run_state(): good-machine sweep with the
  // given per-DFF Q values, source activation, optional DFF divergence
  // injection, and one full settle.
  void rebuild_run_state(std::span<const Val> flop_good,
                         const std::vector<std::vector<FlopFault>>* flop_faulty,
                         std::span<const Val> prev_pins);
  void latch_flipflops(bool capture_only);
  void commit_masters();
  void record_detect(std::uint32_t fault, Val good, Val faulty,
                     std::size_t& newly);

  // Transition-mode helpers.
  std::size_t apply_vector_transition(std::span<const Val> pi_vals);
  void update_prev_values();

  std::shared_ptr<const SimModel> model_;
  const Circuit* c_;      // == &model_->circuit(), cached for the hot path
  const FaultDescriptor* descr_;  // == model_->descriptors()
  // Active SIMD kernel table, captured at construction (ISA selection --
  // simd::set_isa / --simd -- happens once at startup, before any engine
  // exists).  Every table computes bit-identical results, so even a late
  // switch could only change speed, never behaviour.
  const simd::Kernels* simd_;
  CsimOptions opt_;
  bool transition_mode_ = false;

  std::vector<Detect> status_;
  // Effective exclusion mask: 1 = fault never simulated here, because it is
  // owned by another shard (base_excluded_) or suspended by the multi-pass
  // overlay (set_suspended).  All-zero when the engine covers the whole
  // universe with nothing suspended.
  std::vector<std::uint8_t> excluded_;
  // Shard-ownership mask alone; set_suspended() re-derives excluded_ from
  // this.  Empty when the engine has no partition (covers the universe).
  std::vector<std::uint8_t> base_excluded_;

  std::vector<GateState> good_state_;
  // Packed good-machine oracle (set_good_batch_oracle): non-null only
  // from arming until the next clock phase.  The pointer is pre-offset to
  // the armed lane's word; a gate's word is good_oracle_[g * stride].
  const Word64* good_oracle_ = nullptr;
  unsigned good_oracle_stride_ = 1;
  unsigned good_oracle_lane_ = 0;
  std::vector<std::uint32_t> head_vis_, head_inv_;
  Pool<Element> pool_;
  LevelQueue queue_;

  // Transition mode: per-fault previous (pass-2 settled) site-pin value.
  std::vector<Val> prev_pin_val_;
  bool pass1_ = true;
  // Gates whose site held a delayed transition during pass 1; they must be
  // re-merged when the transitions fire in pass 2.
  std::vector<std::uint8_t> held_flag_;
  std::vector<GateId> held_gates_;

  // DFF latching scratch: new good Q and new fault list per DFF.
  std::vector<Val> latch_good_;
  std::vector<std::vector<std::pair<std::uint32_t, GateState>>> latch_lists_;

  // Batched-settle scratch (process_level / batch_eval_good).  Levels
  // below kBatchEvalMin gates evaluate scalarly: the grouping sort costs
  // more than a handful of table lookups.
  static constexpr std::size_t kBatchEvalMin = 8;
  std::vector<Val> lvl_good_;
  std::vector<std::uint32_t> lvl_order_;
  std::vector<std::uint64_t> lvl_st_;
  std::vector<std::uint32_t> lvl_idx_;
  std::vector<std::uint8_t> lvl_out_;

  // Merge SoA scratch (the 3-phase merge_gate): element ids and assembled
  // states from the Phase A walk, output codes and classes from the batched
  // Phase B/C kernels, plus the (position, output code) list of site-fault
  // specials evaluated inline.
  std::vector<std::uint32_t> merge_ids_;
  std::vector<std::uint64_t> merge_sts_;
  std::vector<std::uint8_t> merge_out_;
  std::vector<std::uint32_t> merge_idx_;
  std::vector<std::uint8_t> merge_cls_;
  std::vector<std::pair<std::uint32_t, std::uint8_t>> merge_special_;

  // Merge scratch (reused across calls).
  std::vector<std::pair<std::uint32_t, GateState>> scratch_vis_, scratch_inv_;
  std::vector<std::pair<std::uint32_t, Val>> scratch_old_;
  // Elements unlinked by the current update scope, parked for resplicing:
  // each pending insert reuses one instead of a pool round trip (this is
  // also what turns a visible<->invisible migration into a move).  Inserts
  // are deferred to salvage_flush() so removals *anywhere* in the scope --
  // either list half, before or after the insertion point -- can donate;
  // leftovers then go back to the pool.  An insert's anchor (the kept
  // element it splices after, kNullIndex for the head) is stable because
  // the apply cursor never unlinks behind itself.
  struct PendingInsert {
    std::uint32_t* head;
    std::uint32_t anchor;
    std::uint32_t id;
    GateState state;
  };
  std::vector<PendingInsert> pending_;
  std::vector<std::uint32_t> salvage_;

  std::uint64_t elements_evaluated_ = 0;
  std::uint64_t vectors_simulated_ = 0;
  std::uint64_t faults_dropped_ = 0;
  // Mutable: const traversals (visible_at, faulty_value) still count work.
  mutable obs::Counters counters_;
  obs::PhaseTimers timers_;
  obs::HistogramSet hists_;
  obs::LevelProfile levels_;  // sized to the circuit's level count
  DetectionObserver observer_;
};

}  // namespace cfs
