#include "core/dictionary.h"

#include <algorithm>

#include "core/concurrent_sim.h"

namespace cfs {

void FaultDictionary::seal() {
  for (auto& s : syndromes_) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    s.shrink_to_fit();
  }
}

std::vector<FaultDictionary::Candidate> FaultDictionary::diagnose(
    std::span<const Syndrome> observed, std::size_t top_k) const {
  std::vector<Syndrome> obs(observed.begin(), observed.end());
  std::sort(obs.begin(), obs.end());
  obs.erase(std::unique(obs.begin(), obs.end()), obs.end());

  std::vector<Candidate> out;
  for (std::uint32_t f = 0; f < syndromes_.size(); ++f) {
    const auto& pred = syndromes_[f];
    if (pred.empty()) continue;
    std::size_t matched = 0;
    std::size_t i = 0, j = 0;
    while (i < obs.size() && j < pred.size()) {
      if (obs[i] == pred[j]) {
        ++matched;
        ++i;
        ++j;
      } else if (obs[i] < pred[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (matched == 0) continue;
    Candidate cand;
    cand.fault = f;
    cand.matched = matched;
    cand.missed = obs.size() - matched;
    cand.extra = pred.size() - matched;
    cand.score = static_cast<double>(matched) -
                 0.5 * static_cast<double>(cand.missed + cand.extra);
    out.push_back(cand);
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.fault < b.fault;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::size_t FaultDictionary::bytes() const {
  std::size_t b = syndromes_.capacity() * sizeof(std::vector<Syndrome>);
  for (const auto& s : syndromes_) b += s.capacity() * sizeof(Syndrome);
  return b;
}

FaultDictionary build_dictionary(const Circuit& c, const FaultUniverse& u,
                                 std::span<const std::vector<Val>> tests,
                                 Val ff_init) {
  FaultDictionary dict(u.size());
  CsimOptions opt;
  opt.drop_detected = false;  // the full syndrome of every fault is needed
  ConcurrentSim sim(c, u, opt);
  sim.reset(ff_init);
  std::uint32_t vec = 0;
  sim.set_detection_observer(
      [&dict, &vec](std::uint32_t fault, std::uint32_t po, bool hard) {
        if (hard) dict.record(fault, {vec, po});
      });
  for (std::size_t i = 0; i < tests.size(); ++i) {
    vec = static_cast<std::uint32_t>(i);
    sim.apply_vector(tests[i]);
  }
  dict.seal();
  return dict;
}

}  // namespace cfs
