// The immutable half of the concurrent fault simulator.
//
// Everything ConcurrentSim derives purely from (Circuit, FaultUniverse,
// MacroFaultMap) lives here: the fault descriptor table, the per-gate
// site-fault index, and the transition-mode driver groupings.  A SimModel is
// read-only after construction and carries no simulation state, so any
// number of engines -- in particular the shards of a multi-threaded
// ShardedSim -- can share one instance concurrently instead of each
// rebuilding the tables.
//
// The model borrows the circuit, the universe, and (if given) the macro
// fault map; the caller keeps them alive for the model's lifetime.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault.h"
#include "faults/macro_map.h"
#include "netlist/circuit.h"
#include "util/logic.h"

namespace cfs {

/// Per-fault global information (the paper's fault *descriptor*): the site,
/// the forced value, and in macro mode the faulty lookup table of a
/// functional fault.  Detection status is run state and lives in the engine.
struct FaultDescriptor {
  GateId site_gate = kNoGate;
  std::uint16_t site_pin = kFaultOutPin;
  FaultType type = FaultType::StuckAt;
  bool masked = false;          // functional fault equal to good function
  Val forced = Val::Zero;       // stuck value / transition destination
  const std::uint8_t* table = nullptr;  // faulty macro table, or null
};

class SimModel {
 public:
  /// Plain mode: faults of `u` on circuit `c`.  In macro mode pass the
  /// extracted circuit as `c` and the fault map as `mmap` (the universe
  /// still indexes the *original* faults; only sites move).  Validates site
  /// ranges and transition-universe homogeneity, throwing cfs::Error.
  SimModel(const Circuit& c, const FaultUniverse& u,
           const MacroFaultMap* mmap = nullptr);

  const Circuit& circuit() const { return *c_; }
  const FaultUniverse& universe() const { return *u_; }
  const MacroFaultMap* macro_map() const { return mmap_; }

  std::size_t num_faults() const { return descr_.size(); }
  bool transition_mode() const { return transition_mode_; }

  const FaultDescriptor& descriptor(std::uint32_t id) const {
    return descr_[id];
  }
  /// Raw descriptor array (hot-path access; indexed by fault id).
  const FaultDescriptor* descriptors() const { return descr_.data(); }

  /// Sorted ids of the non-masked faults sited at gate `g`.
  std::span<const std::uint32_t> site_faults(GateId g) const {
    return {site_flat_.data() + site_off_[g], site_off_[g + 1] - site_off_[g]};
  }

  /// Transition mode: the driver gate feeding fault `id`'s site pin.
  GateId site_driver(std::uint32_t id) const { return site_driver_[id]; }

  /// Transition mode: sorted ids of the faults whose site pin is driven by
  /// gate `d` (for the end-of-frame previous-value sweep).
  std::span<const std::uint32_t> faults_by_driver(GateId d) const {
    return {driver_flat_.data() + driver_off_[d],
            driver_off_[d + 1] - driver_off_[d]};
  }

  /// Bytes held by the model's tables (macro tables included when owned by
  /// the borrowed MacroFaultMap).
  std::size_t bytes() const;

 private:
  const Circuit* c_;
  const FaultUniverse* u_;
  const MacroFaultMap* mmap_;
  bool transition_mode_ = false;

  std::vector<FaultDescriptor> descr_;
  // Per-gate fault-id groupings, CSR-flattened: one contiguous id array plus
  // per-gate offsets, so a merge's site scan walks a flat span instead of
  // chasing a vector-of-vectors header (one indirection and one cache line
  // fewer per processed gate).
  std::vector<std::uint32_t> site_off_;    // n+1 offsets into site_flat_
  std::vector<std::uint32_t> site_flat_;   // site fault ids, sorted per gate
  std::vector<GateId> site_driver_;        // transition mode
  std::vector<std::uint32_t> driver_off_;  // n+1 offsets into driver_flat_
  std::vector<std::uint32_t> driver_flat_;
};

}  // namespace cfs
