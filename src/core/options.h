// Configuration switches for the concurrent fault simulator.
//
// The paper evaluates four variants built from two independent switches:
//   csim    : neither improvement
//   csim-V  : split visible/invisible fault lists
//   csim-M  : macro extraction (selected by constructing the engine over a
//             macro-extracted circuit with a MacroFaultMap)
//   csim-MV : both
// plus event-driven fault dropping, which all variants use (we expose it as
// a switch for the ablation bench).
#pragma once

#include <cstddef>

namespace cfs {

struct CsimOptions {
  /// Keep visible and invisible fault elements on separate lists so fanout
  /// processing never examines invisible faults (paper §2.2, the "V" in
  /// csim-V).
  bool split_lists = true;

  /// Event-driven fault dropping: hard-detected faults are purged lazily
  /// whenever a list containing them is traversed (paper §2.2).
  bool drop_detected = true;

  /// Naive reference path: tear down and rebuild every destination list on
  /// each merge instead of updating it in place.  Slower by construction --
  /// kept as the oracle for the differential merge tests.
  bool rebuild_lists = false;

  /// Oracle evaluation path: fold over pins with eval_kind instead of the
  /// flat per-(kind, arity) lookup tables.  Slower by construction -- kept
  /// as the reference semantics for the table-vs-fold differential tests;
  /// outputs are bit-identical either way.
  bool fold_eval = false;

  /// Compact the element pool on reset(): forget the scrambled free list
  /// and rebuild every fault list contiguously in traversal order.  Useful
  /// between test sequences to restore list-order locality.
  bool compact_pool = false;

  /// Element-pool pre-size hint (elements).  0 sizes the pool from the
  /// engine's owned-fault count; ShardedSim threads per-shard universe
  /// sizes through here.
  std::size_t reserve_elements = 0;

  /// Hard ceiling on live fault-list elements (the paper's dominant MEM
  /// term).  0 = unlimited.  When set, the engine's pool throws
  /// cfs::PoolBudgetError instead of growing past the budget; the campaign
  /// runner (resil/campaign.h) catches it and degrades to multi-pass
  /// simulation over a suspended remainder of the fault universe.
  std::size_t max_elements = 0;
};

}  // namespace cfs
