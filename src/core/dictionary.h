// Fault dictionaries and dictionary-based diagnosis.
//
// A fault dictionary records, for every fault, the complete set of
// (vector index, primary output) pairs at which the fault produces a hard
// output error under a given test sequence.  Dictionaries are the classic
// downstream product of a fault simulator: once built, a failing device's
// observed error syndrome can be matched against them to rank candidate
// faults without re-simulating anything.
//
// Building a dictionary requires fault dropping OFF -- the full syndrome of
// every fault is needed, not just its first detection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault.h"
#include "netlist/circuit.h"
#include "util/logic.h"

namespace cfs {

/// One output error: test vector `vector` failed at primary output `po`
/// (index into circuit().outputs()).
struct Syndrome {
  std::uint32_t vector;
  std::uint32_t po;

  friend auto operator<=>(const Syndrome&, const Syndrome&) = default;
};

class FaultDictionary {
 public:
  explicit FaultDictionary(std::size_t num_faults)
      : syndromes_(num_faults) {}

  void record(std::uint32_t fault, Syndrome s) {
    syndromes_[fault].push_back(s);
  }

  std::size_t num_faults() const { return syndromes_.size(); }
  /// Sorted syndrome of one fault.
  const std::vector<Syndrome>& syndrome(std::uint32_t fault) const {
    return syndromes_[fault];
  }

  /// Finalise: sort and deduplicate each fault's syndrome.
  void seal();

  struct Candidate {
    std::uint32_t fault;
    std::size_t matched;  ///< observed failures this fault explains
    std::size_t missed;   ///< observed failures it does not explain
    std::size_t extra;    ///< predicted failures not observed
    double score;         ///< matched - 0.5*(missed + extra)
  };

  /// Rank candidate faults against an observed syndrome (sorted or not).
  /// Returns up to `top_k` candidates, best first; faults explaining
  /// nothing are omitted.
  std::vector<Candidate> diagnose(std::span<const Syndrome> observed,
                                  std::size_t top_k = 10) const;

  std::size_t bytes() const;

 private:
  std::vector<std::vector<Syndrome>> syndromes_;
};

/// Build the full-response dictionary for a stuck-at universe by concurrent
/// fault simulation with dropping disabled.
FaultDictionary build_dictionary(const Circuit& c, const FaultUniverse& u,
                                 std::span<const std::vector<Val>> tests,
                                 Val ff_init = Val::X);

}  // namespace cfs
