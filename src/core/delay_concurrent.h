// Arbitrary-delay concurrent fault simulation -- the general two-phase mode
// the paper describes before specialising to zero delay (§2):
//
//   "Assuming that delays are associated with gates, events are posted for
//    all changing elements after gate evaluation. ...  In the first phase
//    of fault simulation, the matured events are fetched to assign logic
//    values to gate outputs. ...  The fanout gate identifiers are entered
//    into a local queue, not the timing queue, for the second phase."
//
// Unlike the zero-delay engine (which re-derives fault lists by multi-list
// merge per event), this engine is classic element-level concurrent
// simulation: faulty-machine events are queued into the timing wheel
// individually, elements carry their own pin copies, divergence happens
// when a propagated faulty value reaches a machine with no element, and
// convergence removes an element whose whole state has returned to the
// good machine's.  Both event-driven fault dropping and the data-structure
// simplifications (pooled elements, sentinel-terminated sorted lists, one
// packed word per state) carry over unchanged, exactly as the paper notes.
//
// Scope: combinational circuits, per-gate transport delays, stuck-at
// faults.  Detection is by strobing the primary outputs at caller-chosen
// times.  The serial reference is sim/delay_sim.h with one injection per
// run; see tests/test_delay_concurrent.cpp for the equivalence property.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "faults/fault.h"
#include "netlist/circuit.h"
#include "obs/counters.h"
#include "util/logic.h"
#include "util/packed_state.h"
#include "util/pool.h"

namespace cfs {

class DelayConcurrentSim {
 public:
  DelayConcurrentSim(const Circuit& c, const FaultUniverse& u,
                     std::vector<std::uint32_t> delays,
                     bool drop_detected = true);

  /// Schedule a primary-input change at the current time.
  void set_input(unsigned pi_index, Val v);

  /// Run the two-phase loop until quiet or past `max_time`; returns the
  /// time of the last value change.
  std::uint64_t run(std::uint64_t max_time = ~0ull);

  /// Sample the primary outputs now: hard/potential detection against the
  /// good machine.  Returns newly hard-detected faults.
  std::size_t strobe();

  const std::vector<Detect>& status() const { return status_; }
  Coverage coverage() const { return summarize(status_); }

  Val good_value(GateId g) const { return state_out(good_state_[g]); }
  /// The faulty machine's value at a gate (good value if implicit there).
  Val faulty_value(GateId g, std::uint32_t fault) const;

  std::uint64_t now() const { return now_; }
  std::size_t live_elements() const { return pool_.live() - 1; }
  std::uint64_t element_evals() const { return element_evals_; }
  /// Telemetry counters (all-zero when built with CFS_OBS=OFF).
  const obs::Counters& counters() const { return counters_; }
  std::size_t bytes() const;

 private:
  static constexpr std::uint32_t kGoodEvent = 0xFFFFFFFEu;

  struct Element {
    std::uint32_t fault_id;
    std::uint32_t next;
    GateState state;
    Val last_posted;
    std::uint16_t pend;  ///< this machine's events still in the wheel
  };

  struct Event {
    GateId gate;
    std::uint32_t fault;  // kGoodEvent for good-machine events
    Val val;
  };

  bool dropped(std::uint32_t fault) const {
    return drop_detected_ && status_[fault] == Detect::Hard;
  }
  std::uint32_t find_element(GateId g, std::uint32_t fault) const;
  std::uint32_t ensure_element(GateId g, std::uint32_t fault);
  void remove_element(GateId g, std::uint32_t fault);
  Val eval_element(GateId g, const Element& e);
  void post(std::uint64_t t, GateId g, std::uint32_t fault, Val v);
  void post_faulty(GateId g, std::uint32_t elem, Val v);
  void activate(GateId g);
  void assign_good(GateId g, Val v);
  void assign_faulty(GateId g, std::uint32_t fault, Val v);
  void phase2();

  const Circuit* c_;
  const FaultUniverse* u_;
  std::vector<std::uint32_t> delays_;
  bool drop_detected_;

  std::vector<Detect> status_;
  std::vector<GateState> good_state_;
  std::vector<Val> good_last_posted_;
  /// Good-machine events still in the wheel, per gate, in maturity order.
  /// A machine that diverges at a gate was implicit there when these were
  /// posted, so element creation clones them as its own events.
  std::vector<std::vector<std::pair<std::uint64_t, Val>>> good_inflight_;
  std::vector<std::uint32_t> head_;  // fault list per gate (sentinel = 0)
  Pool<Element> pool_;

  // Site bookkeeping: faults forced at each gate.
  struct Site {
    std::uint32_t fault;
    std::uint16_t pin;  // kFaultOutPin for output
    Val value;
  };
  std::vector<std::vector<Site>> sites_;

  static constexpr std::size_t kWheelSize = 256;
  std::vector<std::vector<Event>> wheel_;
  std::vector<std::pair<std::uint64_t, Event>> overflow_;
  std::uint64_t now_ = 0;
  std::uint64_t pending_ = 0;
  std::vector<GateId> activated_;
  std::vector<std::uint8_t> activated_flag_;

  std::uint64_t element_evals_ = 0;
  obs::Counters counters_;
};

}  // namespace cfs
