#include "core/concurrent_sim.h"

#include <algorithm>

#include "faults/transition_model.h"
#include "simd/simd.h"
#include "util/error.h"
#include "util/prefetch.h"

namespace cfs {

ConcurrentSim::ConcurrentSim(const Circuit& c, const FaultUniverse& u,
                             CsimOptions opt, const MacroFaultMap* mmap)
    : ConcurrentSim(std::make_shared<SimModel>(c, u, mmap), opt) {}

ConcurrentSim::ConcurrentSim(std::shared_ptr<const SimModel> model,
                             CsimOptions opt, const FaultPartition* part,
                             unsigned shard_index,
                             const std::vector<std::uint8_t>* suspended)
    : model_(std::move(model)),
      c_(&model_->circuit()),
      descr_(model_->descriptors()),
      simd_(&simd::kernels()),
      opt_(opt),
      transition_mode_(model_->transition_mode()),
      queue_(*c_) {
  const std::size_t n = c_->num_gates();
  const std::size_t nf = model_->num_faults();

  status_.assign(nf, Detect::None);
  excluded_.assign(nf, 0);
  if (part != nullptr) {
    if (part->num_faults() != nf) {
      throw Error("FaultPartition does not match the fault universe");
    }
    if (shard_index >= part->num_shards()) {
      throw Error("shard index out of range");
    }
    for (std::uint32_t id = 0; id < nf; ++id) {
      excluded_[id] = part->shard_of(id) == shard_index ? 0 : 1;
    }
    base_excluded_ = excluded_;
  }
  if (suspended != nullptr && !suspended->empty()) {
    if (suspended->size() != nf) {
      throw Error("suspension mask does not match the fault universe");
    }
    for (std::uint32_t id = 0; id < nf; ++id) {
      if ((*suspended)[id]) excluded_[id] = 1;
    }
  }
  std::size_t active = 0;
  for (std::uint32_t id = 0; id < nf; ++id) active += excluded_[id] == 0;

  if (transition_mode_) prev_pin_val_.assign(nf, Val::X);

  good_state_.resize(n);
  head_vis_.assign(n, 0);
  head_inv_.assign(n, 0);
  // Pre-size the element arena from this engine's active fault universe (the
  // shard's, under a partition, minus suspensions) so the early vectors never
  // grow it; an enforced budget caps the pre-size too.
  std::size_t reserve = opt_.reserve_elements != 0 ? opt_.reserve_elements
                                                   : active + 1;
  if (opt_.max_elements != 0) {
    // +1: pool slot 0 is the sentinel, which the budget must always admit.
    pool_.set_budget(opt_.max_elements + 1);
    reserve = std::min(reserve, opt_.max_elements + 1);
  }
  pool_.reserve(reserve);
  // Pool slot 0 is the shared terminal element ("a fault identifier which
  // lies in high end memory location to avoid checking end of list").
  const std::uint32_t s = pool_.alloc();
  pool_[s] = Element{kSentinelId, s, 0};

  latch_good_.resize(c_->dffs().size());
  latch_lists_.resize(c_->dffs().size());
  levels_.resize(c_->num_levels());

  reset();
}

// ---------------------------------------------------------------------------
// List primitives
// ---------------------------------------------------------------------------

void ConcurrentSim::free_list(std::uint32_t& head) {
  std::uint32_t cur = head;
  while (pool_[cur].fault_id != kSentinelId) {
    CFS_COUNT(counters_, ElementsFreed);
    const std::uint32_t nxt = pool_[cur].next;
    pool_.free(cur);
    cur = nxt;
  }
  head = 0;  // sentinel
}

std::uint32_t ConcurrentSim::build_list(
    const std::vector<std::pair<std::uint32_t, GateState>>& items) {
  std::uint32_t head = 0;  // sentinel
  std::uint32_t prev = kNullIndex;
  for (const auto& [id, st] : items) {
    CFS_COUNT(counters_, ElementsAllocated);
    const std::uint32_t e = pool_.alloc();
    pool_[e] = Element{id, 0, st};
    if (prev == kNullIndex) {
      head = e;
    } else {
      pool_[prev].next = e;
    }
    prev = e;
  }
  return head;
}

// The differential list update at the heart of the in-place merge: make the
// list at `head` hold exactly `items` (sorted by ascending fault id, never
// containing dropped faults) by reusing every surviving element in place,
// splicing insertions and removals through one forward cursor, and leaving
// the list completely untouched when the produced sequence equals the
// stored one.  Unlinked elements are parked in `salvage_` rather than freed
// immediately; an insert later in the same update scope resplices one
// (patching id and state) instead of taking a pool round trip.  The caller
// owns the scope: merge_gate flushes after both the visible and invisible
// applies of a gate -- so a migration between the two halves of the gate's
// list is a move, not a free+alloc -- and the other call sites flush after
// their single apply.  Pool traffic is therefore proportional to the *net*
// churn between the two sequences, not to their length or even their gross
// churn.  Returns true when the visible (id, output) sequence -- as
// selected by `track` -- changed.
bool ConcurrentSim::apply_list_inplace(
    std::uint32_t& head,
    std::span<const std::pair<std::uint32_t, GateState>> items,
    ChangeTrack track, Val old_good_out, Val new_good_out,
    std::span<const std::pair<std::uint32_t, GateState>> migrate,
    obs::Counter mig_counter) {
  switch (track) {
    case ChangeTrack::None:
      return apply_list_impl<ChangeTrack::None>(
          head, items, old_good_out, new_good_out, migrate, mig_counter);
    case ChangeTrack::All:
      return apply_list_impl<ChangeTrack::All>(
          head, items, old_good_out, new_good_out, migrate, mig_counter);
    case ChangeTrack::VisibleOnly:
    default:
      return apply_list_impl<ChangeTrack::VisibleOnly>(
          head, items, old_good_out, new_good_out, migrate, mig_counter);
  }
}

template <ConcurrentSim::ChangeTrack track>
bool ConcurrentSim::apply_list_impl(
    std::uint32_t& head,
    std::span<const std::pair<std::uint32_t, GateState>> items,
    Val old_good_out, Val new_good_out,
    std::span<const std::pair<std::uint32_t, GateState>> migrate,
    obs::Counter mig_counter) {
  bool changed = false;
  bool touched = false;
  std::uint32_t prev = kNullIndex;
  std::uint32_t cur = head;
#if CFS_OBS_ENABLED
  std::size_t mig_i = 0;       // moving pointer into `migrate` (ids ascend)
  std::uint64_t survived = 0;  // bulk-settled ElementsReused/Traversed
#else
  (void)migrate;
  (void)mig_counter;
#endif
  // One resolved element pointer per position: every test and patch below
  // goes through `e` instead of re-running the pool's chunk indirection.
  Element* e = &pool_[cur];
  // Free the element `cur` (advancing past it), recording whether its
  // disappearance removes an entry from the old visible sequence.
  const auto unlink_free = [&] {
    const std::uint32_t nxt = e->next;
    if (dropped(e->fault_id)) {
      // Lazy event-driven dropping: the fault was never in the visible
      // sequence the change test compares (snapshots skip dropped ids).
      CFS_COUNT(counters_, DropUnlinksLazy);
    } else {
      if (track == ChangeTrack::All ||
          (track == ChangeTrack::VisibleOnly &&
           state_out(e->state) != old_good_out)) {
        changed = true;
      }
#if CFS_OBS_ENABLED
      // Removals ascend with the cursor, so the migration census is one
      // moving pointer: a non-dropped removal present in the other half's
      // produced sequence is a migration.
      while (mig_i < migrate.size() && migrate[mig_i].first < e->fault_id) {
        ++mig_i;
      }
      if (mig_i < migrate.size() && migrate[mig_i].first == e->fault_id) {
        counters_.bump(mig_counter);
        ++mig_i;
      }
#endif
    }
    if (prev == kNullIndex) {
      head = nxt;
    } else {
      pool_[prev].next = nxt;
    }
    salvage_.push_back(cur);
    touched = true;
    cur = nxt;
    e = &pool_[cur];
  };
  for (const auto& [id, st] : items) {
    while (e->fault_id < id) unlink_free();
    if (e->fault_id == id) {
      // The fault survived: patch its state in place, no pool traffic.
      // (ElementsReused / ElementsTraversed settle in bulk below.)
#if CFS_OBS_ENABLED
      ++survived;
#endif
      if constexpr (track != ChangeTrack::None) {
        const Val old_out = state_out(e->state);
        const Val new_out = state_out(st);
        if constexpr (track == ChangeTrack::All) {
          changed |= old_out != new_out;
        } else {
          const bool old_vis = old_out != old_good_out;
          const bool new_vis = new_out != new_good_out;
          if (old_vis != new_vis || (old_vis && old_out != new_out)) {
            changed = true;
          }
        }
      }
      if (e->state != st) {
        e->state = st;
        touched = true;
      }
      prev = cur;
      cur = e->next;
      e = &pool_[cur];
      // The survivor walk touches every element exactly once in link order;
      // fetch the one after the new cursor now so the next iteration's
      // id-compare does not stall on it.
      CFS_PREFETCH(&pool_[e->next]);
    } else {
      // New divergence: record the insert against the kept predecessor;
      // the splice itself waits for salvage_flush() so any removal in this
      // scope can donate its element.
      pending_.push_back(PendingInsert{&head, prev, id, st});
      touched = true;
      if (track == ChangeTrack::All ||
          (track == ChangeTrack::VisibleOnly &&
           state_out(st) != new_good_out)) {
        changed = true;
      }
    }
  }
  while (e->fault_id != kSentinelId) unlink_free();
#if CFS_OBS_ENABLED
  CFS_COUNT_N(counters_, ElementsReused, survived);
  CFS_COUNT_N(counters_, ElementsTraversed, survived);
#endif
  CFS_COUNT(counters_, SentinelHits);
  if (!touched) CFS_COUNT(counters_, ListsUnchanged);
  return changed;
}

// End of an in-place update scope: splice the pending inserts, drawing
// elements from the scope's own removals first, then return the leftovers
// to the pool.  Only a removal nothing resliced counts as ElementsFreed and
// only an insert no removal could donate to counts as ElementsAllocated --
// a salvaged-and-respliced element never touches the pool at all.
void ConcurrentSim::salvage_flush_slow() {
  // Consecutive inserts behind the same anchor chain off one another so
  // they land in recorded (ascending-id) order.
  const std::uint32_t* prev_head = nullptr;
  std::uint32_t prev_anchor = kNullIndex;
  std::uint32_t chain = kNullIndex;
  for (const PendingInsert& p : pending_) {
    const std::uint32_t after =
        p.head == prev_head && p.anchor == prev_anchor ? chain : p.anchor;
    std::uint32_t e;
    if (!salvage_.empty()) {
      CFS_COUNT(counters_, ElementsRecycled);
      e = salvage_.back();
      salvage_.pop_back();
    } else {
      CFS_COUNT(counters_, ElementsAllocated);
      e = pool_.alloc();
    }
    if (after == kNullIndex) {
      pool_[e] = Element{p.id, *p.head, p.state};
      *p.head = e;
    } else {
      pool_[e] = Element{p.id, pool_[after].next, p.state};
      pool_[after].next = e;
    }
    prev_head = p.head;
    prev_anchor = p.anchor;
    chain = e;
  }
  pending_.clear();
  for (const std::uint32_t e : salvage_) {
    CFS_COUNT(counters_, ElementsFreed);
    pool_.free(e);
  }
  salvage_.clear();
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

Val ConcurrentSim::transition_forced(std::uint32_t fault, Val cv) const {
  // Table 1 of the paper: a transition towards T that is under way has not
  // completed at sampling time, so the pin still shows the previous value.
  return transition_hold_value(prev_pin_val_[fault], cv, descr_[fault].forced);
}

Val ConcurrentSim::eval_element(GateId g, std::uint32_t fault,
                                GateState& st) {
  const FaultDescriptor& d = descr_[fault];
  ++elements_evaluated_;
  if (d.site_gate == g && d.site_pin != kFaultOutPin) {
    const Val cv = state_get(st, d.site_pin);
    Val v;
    if (d.type == FaultType::StuckAt) {
      v = d.forced;
    } else if (pass1_) {
      v = transition_forced(fault, cv);
      if (v != cv) {
        // Remember that this site held a transition: pass 2 must re-merge.
        if (!held_flag_[g]) {
          held_flag_[g] = 1;
          held_gates_.push_back(g);
        }
      }
    } else {
      v = cv;  // pass 2: the transition fires
    }
    st = state_set(st, d.site_pin, v);
  }
  Val out;
  if (d.table != nullptr && d.site_gate == g) {
    CFS_COUNT(counters_, MacroTableLookups);
    out = from_code(d.table[state_input_index(st, c_->num_fanins(g))]);
  } else {
    out = eval_gate(g, st);
  }
  if (d.site_gate == g && d.site_pin == kFaultOutPin &&
      d.type == FaultType::StuckAt && d.table == nullptr) {
    out = d.forced;
  }
  st = state_set_out(st, out);
  return out;
}

// ---------------------------------------------------------------------------
// The multi-list merge (paper §2: "the multi-list traversal technique is
// employed to copy the logic values from the source fault lists to the
// destination fault list")
// ---------------------------------------------------------------------------

bool ConcurrentSim::merge_gate(GateId g, Val new_good_out) {
  const unsigned nf = c_->num_fanins(g);
  const GateState good = good_state_[g];
  const Val old_good_out = state_out(good);
  const auto fanins = c_->fanins(g);

  // Fanin cursors (visible lists in split mode; in combined mode invisible
  // elements carry out == good, so reading them is harmless).  Quiet
  // variants: the traversal census settles in bulk after the walk.
  Cursor fc[kMaxPins];
  for (unsigned p = 0; p < nf; ++p) {
    cursor_init_quiet(fc[p], &head_vis_[fanins[p]]);
  }
  const auto site = model_->site_faults(g);
  std::size_t si = 0;
  while (si < site.size() && skip_site(site[si])) ++si;

  scratch_vis_.clear();
  scratch_inv_.clear();
  const GateState in_mask = input_mask(nf);

#if CFS_OBS_ENABLED
  std::uint64_t merge_steps = 0;   // merge-loop iterations == element evals
  std::uint64_t merge_walked = 0;  // source-list elements consumed
#endif
  // Phase A -- scalar multi-list walk into SoA scratch.  Only *site* faults
  // of g ever consult their descriptor (pin forcing, macro tables, output
  // forcing): a fault sited elsewhere is, at g, a plain gate evaluation of
  // its assembled pin state.  Site membership needs no descriptor load
  // either -- the site span is always one of the merge sources, so the
  // span cursor `si` identifies every sited element, including one looping
  // back through flip-flops into a fanin list.  Site elements evaluate
  // inline via eval_element (side effects: held-transition bookkeeping,
  // MacroTableLookups, elements_evaluated_) and park their finished output
  // code in merge_special_; everything else defers to the batched Phase B.
  merge_ids_.clear();
  merge_sts_.clear();
  merge_special_.clear();
  for (;;) {
    std::uint32_t m = si < site.size() ? site[si] : kSentinelId;
    for (unsigned p = 0; p < nf; ++p) m = std::min(m, fc[p].id);
    if (m == kSentinelId) break;
#if CFS_OBS_ENABLED
    ++merge_steps;
#endif
    // Start from the good pins wholesale (pin codes in good states are
    // always normalized, so the masked copy equals a per-pin state_get/
    // state_set rebuild) and override only the diverging pins -- for the
    // typical fault that diverges on one pin of a wide gate this touches
    // one 2-bit field instead of all of them.  Advancing a matching cursor
    // in the same loop fuses the gather and advance passes.
    GateState st = good & in_mask;
    for (unsigned p = 0; p < nf; ++p) {
      if (fc[p].id == m) {
        st = state_set(st, p, state_out(pool_[fc[p].cur].state));
        cursor_advance_quiet(fc[p]);
#if CFS_OBS_ENABLED
        ++merge_walked;
#endif
      }
    }
    if (si < site.size() && site[si] == m) {
      const Val out = eval_element(g, m, st);
      merge_special_.emplace_back(
          static_cast<std::uint32_t>(merge_ids_.size()), code(out));
      ++si;
      while (si < site.size() && skip_site(site[si])) ++si;
    }
    merge_ids_.push_back(m);
    merge_sts_.push_back(st);
  }
#if CFS_OBS_ENABLED
  // Bulk census for the quiet cursors above: every cursor visited exactly
  // its list's elements (each consumed once == merge_walked) plus one
  // sentinel.
  CFS_COUNT_N(counters_, ElementsTraversed, merge_walked);
  CFS_COUNT_N(counters_, SentinelHits, nf);
#endif

  // Phase B -- evaluate the deferred elements.  All of them share gate g's
  // eval table, so the batch is one index pass and one gather against a
  // single table (wide gates add a scalar high-chunk/join tail); site
  // specials just overwrite their slot with the Phase A result.  The fold
  // oracle and tiny batches take the per-element scalar route instead --
  // eval_gate keeps the counters identical either way.
  const std::size_t nm = merge_ids_.size();
  merge_out_.resize(nm);
  const Circuit::GateEval ev = c_->gate_eval(g);
  if (opt_.fold_eval || ev.lo == nullptr || nm < kBatchEvalMin) {
    std::size_t sp = 0;
    for (std::size_t i = 0; i < nm; ++i) {
      if (sp < merge_special_.size() && merge_special_[sp].first == i) {
        merge_out_[i] = merge_special_[sp++].second;
        continue;
      }
      ++elements_evaluated_;
      merge_out_[i] = code(eval_gate(g, merge_sts_[i]));
    }
  } else {
    const simd::Kernels& K = *simd_;
    merge_idx_.resize(nm);
    K.state_indices(merge_sts_.data(), nm, 0, ev.lo_mask, merge_idx_.data());
    K.gather_u8(ev.lo, merge_idx_.data(), nm, merge_out_.data());
    if (ev.hi != nullptr) {
      for (std::size_t i = 0; i < nm; ++i) {
        const std::uint8_t c1 =
            ev.hi[static_cast<std::uint32_t>(
                      merge_sts_[i] >> (2 * kEvalChunkPins)) &
                  ev.hi_mask];
        merge_out_[i] = ev.join[(merge_out_[i] << 2) | c1];
      }
    }
    for (const auto& [pos, oc] : merge_special_) merge_out_[pos] = oc;
    CFS_COUNT_N(counters_, TableEvals, nm - merge_special_.size());
    elements_evaluated_ += nm - merge_special_.size();
  }

  // Phase C -- classify and emit in merge order.  Visible: output disagrees
  // with the new good output.  Invisible: output agrees but some input pin
  // differs (the output slot sits above in_mask, so testing the Phase A
  // state is exact).  Converged elements emit nothing.  The emitted state
  // re-stamps the output slot, which for specials rewrites the value
  // eval_element already stored.
  const std::uint8_t good_code = code(new_good_out);
  if (nm >= kBatchEvalMin) {
    const simd::Kernels& K = *simd_;
    merge_cls_.resize(nm);
    K.classify(merge_sts_.data(), merge_out_.data(), nm, good, in_mask,
               good_code, merge_cls_.data());
    for (std::size_t i = 0; i < nm; ++i) {
      const std::uint8_t cls = merge_cls_[i];
      if (cls == 0) continue;
      CFS_COUNT(counters_, ElementsCopied);
      const GateState st =
          state_set_out(merge_sts_[i], from_code(merge_out_[i]));
      if (cls == 1) {
        scratch_vis_.emplace_back(merge_ids_[i], st);
      } else {
        (opt_.split_lists ? scratch_inv_ : scratch_vis_)
            .emplace_back(merge_ids_[i], st);
      }
    }
  } else {
    for (std::size_t i = 0; i < nm; ++i) {
      const std::uint8_t oc = merge_out_[i];
      const GateState st = state_set_out(merge_sts_[i], from_code(oc));
      if (oc != good_code) {
        CFS_COUNT(counters_, ElementsCopied);
        scratch_vis_.emplace_back(merge_ids_[i], st);
      } else if (((merge_sts_[i] ^ good) & in_mask) != 0) {
        CFS_COUNT(counters_, ElementsCopied);
        (opt_.split_lists ? scratch_inv_ : scratch_vis_)
            .emplace_back(merge_ids_[i], st);
      }
    }
  }

  // Work-attribution heatmaps: where the merge effort lands.  The produced
  // list length and divergence size are distribution samples; the level
  // profile pins evals/merges/traversals to the levelized axis.
  CFS_HIST(hists_, ListLength,
           static_cast<std::uint64_t>(scratch_vis_.size()) +
               static_cast<std::uint64_t>(scratch_inv_.size()));
  CFS_HIST(hists_, DivergenceSize,
           static_cast<std::uint64_t>(scratch_vis_.size()));
#if CFS_OBS_ENABLED
  CFS_LEVEL(levels_, c_->level(g), merge_steps, merge_walked);
#endif

#if CFS_OBS_ENABLED
  if (opt_.split_lists && opt_.rebuild_lists) {
    // Visible -> invisible: a new invisible element whose id is still
    // linked on the old visible list; invisible -> visible symmetrically.
    // Both lists are intact until the apply below; ids ascend and the
    // sentinel's maximal id bounds each walk.  (Dropped elements may still
    // be linked, but a produced id is never dropped, so they cannot match.)
    // Only the rebuild oracle still takes this standalone census; the
    // in-place applies below count the same migrations on their removal
    // walk for free (see apply_list_inplace's `migrate`).
    std::uint32_t cur = head_vis_[g];
    for (const auto& [id, st] : scratch_inv_) {
      while (pool_[cur].fault_id < id) cur = pool_[cur].next;
      if (pool_[cur].fault_id == id) {
        CFS_COUNT(counters_, VisToInvMigrations);
      }
    }
    cur = head_inv_[g];
    for (const auto& [id, st] : scratch_vis_) {
      while (pool_[cur].fault_id < id) cur = pool_[cur].next;
      if (pool_[cur].fault_id == id) {
        CFS_COUNT(counters_, InvToVisMigrations);
      }
    }
  }
#endif

  if (opt_.rebuild_lists) {
    // Naive reference: snapshot the old visible sequence, compare, then
    // tear the lists down and rebuild them from scratch.
    scratch_old_.clear();
    {
      Cursor cu;
      cursor_init(cu, &head_vis_[g]);
      while (cu.id != kSentinelId) {
        const Val out = state_out(pool_[cu.cur].state);
        if (opt_.split_lists || out != old_good_out) {
          scratch_old_.emplace_back(cu.id, out);
        }
        cursor_advance(cu);
      }
    }
    bool changed = false;
    std::size_t oi = 0;
    for (const auto& [id, st] : scratch_vis_) {
      const Val out = state_out(st);
      if (!opt_.split_lists && out == new_good_out) continue;  // invisible
      if (oi < scratch_old_.size() && scratch_old_[oi].first == id &&
          scratch_old_[oi].second == out) {
        ++oi;
      } else {
        changed = true;
        break;
      }
    }
    if (!changed) {
      // All produced visibles matched a prefix; any leftovers disappeared.
      std::size_t produced = 0;
      for (const auto& [id, st] : scratch_vis_) {
        if (!opt_.split_lists && state_out(st) == new_good_out) continue;
        ++produced;
      }
      changed = produced != scratch_old_.size();
    }
    free_list(head_vis_[g]);
    head_vis_[g] = build_list(scratch_vis_);
    if (opt_.split_lists) {
      free_list(head_inv_[g]);
      head_inv_[g] = build_list(scratch_inv_);
    }
    return changed;
  }

  // In-place differential apply: elements for surviving faults are patched
  // where they sit, insertions and removals splice through the cursor, and
  // an unchanged list is left untouched -- no teardown, no rebuild.
  const bool changed = apply_list_inplace(
      head_vis_[g], scratch_vis_,
      opt_.split_lists ? ChangeTrack::All : ChangeTrack::VisibleOnly,
      old_good_out, new_good_out, scratch_inv_,
      obs::Counter::VisToInvMigrations);
  if (opt_.split_lists) {
    apply_list_inplace(head_inv_[g], scratch_inv_, ChangeTrack::None,
                       old_good_out, new_good_out, scratch_vis_,
                       obs::Counter::InvToVisMigrations);
  }
  salvage_flush();
  return changed;
}

// ---------------------------------------------------------------------------
// Event processing
// ---------------------------------------------------------------------------

void ConcurrentSim::commit_good(GateId g, Val v) {
  good_state_[g] = state_set_out(good_state_[g], v);
  for (const Fanout& fo : c_->fanouts(g)) {
    good_state_[fo.gate] = state_set(good_state_[fo.gate], fo.pin, v);
    if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
  }
}

void ConcurrentSim::process_gate(GateId g) {
  // With the batch oracle armed the settled good value is already known:
  // read it from the packed slab instead of re-evaluating the gate.
  const Val new_good = good_oracle_ != nullptr
                           ? w_get(good_oracle_[std::size_t{g} *
                                                good_oracle_stride_],
                                   good_oracle_lane_)
                           : eval_gate(g, good_state_[g]);
  const bool vis_changed = merge_gate(g, new_good);
  if (new_good != state_out(good_state_[g])) {
    commit_good(g, new_good);
  } else if (vis_changed) {
    for (const Fanout& fo : c_->fanouts(g)) {
      if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
    }
  }
}

void ConcurrentSim::settle() {
  queue_.drain_levels(
      [this](const GateId* gates, std::size_t n) { process_level(gates, n); });
}

void ConcurrentSim::process_level(const GateId* gates, std::size_t n) {
  // Good values first.  Every fanin of a level-L gate is strictly below L
  // and already settled, and gates of one level never feed each other, so
  // pre-evaluating the whole level reads exactly the states the per-gate
  // loop would have read.  Only the grouping of TableEvals bumps changes;
  // the totals stay identical.
  lvl_good_.resize(n);
  if (good_oracle_ != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      lvl_good_[i] =
          w_get(good_oracle_[std::size_t{gates[i]} * good_oracle_stride_],
                good_oracle_lane_);
    }
  } else if (opt_.fold_eval || n < kBatchEvalMin) {
    for (std::size_t i = 0; i < n; ++i) {
      lvl_good_[i] = eval_gate(gates[i], good_state_[gates[i]]);
    }
  } else {
    batch_eval_good(gates, n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const GateId g = gates[i];
    if (i + 1 < n) {
      CFS_PREFETCH(&good_state_[gates[i + 1]]);
      CFS_PREFETCH(&head_vis_[gates[i + 1]]);
    }
    const Val new_good = lvl_good_[i];
    const bool vis_changed = merge_gate(g, new_good);
    if (new_good != state_out(good_state_[g])) {
      commit_good(g, new_good);
    } else if (vis_changed) {
      for (const Fanout& fo : c_->fanouts(g)) {
        if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
      }
    }
  }
}

void ConcurrentSim::batch_eval_good(const GateId* gates, std::size_t n) {
  // Group the level's gates by shared eval table -- the (lo, hi) pointer
  // pair keys one (kind, arity) class (macros are singleton classes backed
  // by their private truth table) -- then evaluate each run with the SIMD
  // gather kernels: pack the state words, derive the masked table indices,
  // gather the output codes in one vector pass.  Wide gates compose the
  // high-chunk reduction and join scalarly on top of the gathered low
  // chunk; sources (lo == null) are an output-slot passthrough.
  const simd::Kernels& K = *simd_;
  lvl_order_.resize(n);
  lvl_st_.resize(n);
  lvl_idx_.resize(n);
  lvl_out_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    lvl_order_[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(lvl_order_.begin(), lvl_order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Circuit::GateEval ea = c_->gate_eval(gates[a]);
              const Circuit::GateEval eb = c_->gate_eval(gates[b]);
              if (ea.lo != eb.lo) return ea.lo < eb.lo;
              return ea.hi < eb.hi;
            });
  // eval_gate() counts one TableEvals per gate regardless of kind; the
  // batched path owes the same total.
  CFS_COUNT_N(counters_, TableEvals, n);
  std::size_t r = 0;
  while (r < n) {
    const Circuit::GateEval e = c_->gate_eval(gates[lvl_order_[r]]);
    std::size_t rend = r + 1;
    while (rend < n) {
      const Circuit::GateEval e2 = c_->gate_eval(gates[lvl_order_[rend]]);
      if (e2.lo != e.lo || e2.hi != e.hi) break;
      ++rend;
    }
    const std::size_t cnt = rend - r;
    if (e.lo == nullptr) {
      for (std::size_t k = r; k < rend; ++k) {
        const std::uint32_t j = lvl_order_[k];
        lvl_good_[j] = state_out(good_state_[gates[j]]);
      }
    } else {
      for (std::size_t k = 0; k < cnt; ++k) {
        lvl_st_[k] = good_state_[gates[lvl_order_[r + k]]];
      }
      K.state_indices(lvl_st_.data(), cnt, 0, e.lo_mask, lvl_idx_.data());
      K.gather_u8(e.lo, lvl_idx_.data(), cnt, lvl_out_.data());
      if (e.hi == nullptr) {
        for (std::size_t k = 0; k < cnt; ++k) {
          lvl_good_[lvl_order_[r + k]] = from_code(lvl_out_[k]);
        }
      } else {
        for (std::size_t k = 0; k < cnt; ++k) {
          const std::uint8_t c1 =
              e.hi[static_cast<std::uint32_t>(lvl_st_[k] >>
                                              (2 * kEvalChunkPins)) &
                   e.hi_mask];
          lvl_good_[lvl_order_[r + k]] =
              from_code(e.join[(lvl_out_[k] << 2) | c1]);
        }
      }
    }
    r = rend;
  }
}

void ConcurrentSim::refresh_source_site(GateId g) {
  // Rebuild the local fault list of a source gate (PI or DFF at reset):
  // only output stuck-at faults materialise here.
  scratch_vis_.clear();
  const Val good = state_out(good_state_[g]);
  for (std::uint32_t id : model_->site_faults(g)) {
    if (skip_site(id)) continue;
    const FaultDescriptor& d = descr_[id];
    if (d.type != FaultType::StuckAt || d.site_pin != kFaultOutPin) continue;
    if (d.forced == good) continue;  // not activated: no element
    scratch_vis_.emplace_back(id, state_set_out(GateState{0}, d.forced));
  }
  if (opt_.rebuild_lists) {
    free_list(head_vis_[g]);
    head_vis_[g] = build_list(scratch_vis_);
  } else {
    apply_list_inplace(head_vis_[g], scratch_vis_, ChangeTrack::None,
                       Val::X, Val::X);
    salvage_flush();
  }
}

void ConcurrentSim::reset(Val ff_init, bool clear_status) {
  if (clear_status) status_.assign(model_->num_faults(), Detect::None);
  // Every update scope flushes, but belt and braces before the pool is
  // reshaped underneath parked indices / recorded anchors.  The queue is
  // empty between sequences, but under an element budget reset() doubles
  // as a recovery path: a PoolBudgetError that escaped mid-settle leaves
  // pending events (and half-merged lists) behind.
  pending_.clear();
  salvage_.clear();
  queue_.clear();
  good_oracle_ = nullptr;  // a stale slab never survives a rebuild
  if (opt_.compact_pool || opt_.max_elements != 0) {
    // Compaction: forget the scrambled free list wholesale and re-dispense
    // slots from index 0.  The rebuild below then lays every list out
    // contiguously in build order, restoring traversal locality lost to
    // churn in the previous sequence.  Also the only safe teardown under
    // an element budget: after a PoolBudgetError escaped mid-merge the
    // per-list free walk would trust exactly the invariants the wreck
    // broke.
    pool_.reset();
    const std::uint32_t s = pool_.alloc();  // sentinel regains slot 0
    pool_[s] = Element{kSentinelId, s, 0};
    std::fill(head_vis_.begin(), head_vis_.end(), 0u);
    std::fill(head_inv_.begin(), head_inv_.end(), 0u);
  } else {
    for (GateId g = 0; g < c_->num_gates(); ++g) {
      free_list(head_vis_[g]);
      if (opt_.split_lists) free_list(head_inv_[g]);
    }
  }
  const std::vector<Val> flop_good(c_->dffs().size(), ff_init);
  rebuild_run_state(flop_good, nullptr, {});
}

// Shared tail of reset() and restore_run_state().  Precondition: every fault
// list is empty (all heads point at the sentinel) and no events are queued.
// Sweeps the good machine to a consistent settled state with PIs at X and
// the given per-DFF Q values, seeds prev_pin_val_, activates the source-site
// faults (from scratch at a reset; from the snapshot's divergence lists at a
// restore), then gives every combinational gate one merge so comb-site
// faults activate and the injected divergences propagate.
void ConcurrentSim::rebuild_run_state(
    std::span<const Val> flop_good,
    const std::vector<std::vector<FlopFault>>* flop_faulty,
    std::span<const Val> prev_pins) {
  const auto dffs = c_->dffs();
  // Good machine: PIs X, flip-flops at flop_good, full consistent sweep.
  {
    CFS_PHASE(timers_, GoodEval);
    for (GateId g = 0; g < c_->num_gates(); ++g) {
      good_state_[g] = state_all_x(c_->num_fanins(g));
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      good_state_[dffs[i]] = state_set_out(good_state_[dffs[i]], flop_good[i]);
    }
    for (GateId g = 0; g < c_->num_gates(); ++g) {
      if (!is_combinational(c_->kind(g))) {
        const Val v = state_out(good_state_[g]);
        for (const Fanout& fo : c_->fanouts(g)) {
          good_state_[fo.gate] = state_set(good_state_[fo.gate], fo.pin, v);
        }
      }
    }
    for (GateId g : c_->topo_order()) {
      const Val v = eval_gate(g, good_state_[g]);
      good_state_[g] = state_set_out(good_state_[g], v);
      for (const Fanout& fo : c_->fanouts(g)) {
        good_state_[fo.gate] = state_set(good_state_[fo.gate], fo.pin, v);
      }
    }
  }

  if (transition_mode_) {
    if (prev_pins.empty()) {
      std::fill(prev_pin_val_.begin(), prev_pin_val_.end(), Val::X);
    } else {
      prev_pin_val_.assign(prev_pins.begin(), prev_pins.end());
    }
  }
  held_flag_.assign(c_->num_gates(), 0);
  held_gates_.clear();
  pass1_ = true;

  {
    CFS_PHASE(timers_, FaultProp);
    for (GateId g : c_->inputs()) refresh_source_site(g);
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      const GateId q = dffs[i];
      if (flop_faulty == nullptr) {
        refresh_source_site(q);
      } else {
        // Re-inject the snapshot's divergences at this Q, minus faults this
        // engine does not simulate (foreign shard, suspended) and minus
        // hard-detected ones under dropping -- exactly the elements the
        // uninterrupted engine would still carry or lazily unlink anyway.
        scratch_vis_.clear();
        for (const FlopFault& f : (*flop_faulty)[i]) {
          if (f.fault >= excluded_.size()) {
            throw Error("run-state snapshot references an out-of-range fault");
          }
          if (excluded_[f.fault] != 0 || dropped(f.fault)) continue;
          scratch_vis_.emplace_back(f.fault, f.state);
        }
        if (opt_.rebuild_lists) {
          free_list(head_vis_[q]);
          head_vis_[q] = build_list(scratch_vis_);
        } else {
          apply_list_inplace(head_vis_[q], scratch_vis_, ChangeTrack::None,
                             Val::X, Val::X);
          salvage_flush();
        }
      }
    }
    for (GateId g : c_->topo_order()) queue_.schedule(g);
    settle();
  }
}

// ---------------------------------------------------------------------------
// Run-state snapshots (checkpoint/resume, shard requeue, multi-pass budget)
// ---------------------------------------------------------------------------

RunStateSnapshot ConcurrentSim::capture_run_state() const {
  RunStateSnapshot s;
  const auto dffs = c_->dffs();
  s.flop_good.resize(dffs.size());
  s.flop_faulty.resize(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId q = dffs[i];
    s.flop_good[i] = state_out(good_state_[q]);
    std::uint32_t cur = head_vis_[q];
    while (pool_[cur].fault_id != kSentinelId) {
      const std::uint32_t id = pool_[cur].fault_id;
      // Skip lazily-unlinked-but-still-linked dropped elements: they are
      // unobservable, and skipping them makes the snapshot independent of
      // *when* each list last happened to be traversed.
      if (!dropped(id)) s.flop_faulty[i].push_back({id, pool_[cur].state});
      cur = pool_[cur].next;
    }
  }
  if (transition_mode_) s.prev_pins = prev_pin_val_;
  return s;
}

void ConcurrentSim::restore_run_state(const RunStateSnapshot& s,
                                      const std::vector<Detect>& status) {
  const std::size_t nf = model_->num_faults();
  if (status.size() != nf) {
    throw Error("restore_run_state: status table does not match the universe");
  }
  if (s.flop_good.size() != c_->dffs().size() ||
      s.flop_faulty.size() != c_->dffs().size()) {
    throw Error("restore_run_state: snapshot does not match the circuit");
  }
  if (transition_mode_ && !s.prev_pins.empty() && s.prev_pins.size() != nf) {
    throw Error("restore_run_state: previous-value table size mismatch");
  }
  status_ = status;
  // Tear everything down from scratch.  The engine may be a half-merged
  // wreck (an exception escaped mid-settle, e.g. PoolBudgetError), so no
  // list or queue invariant can be relied on: drop parked splices, clear
  // pending events, and reshape the pool wholesale.
  pending_.clear();
  salvage_.clear();
  queue_.clear();
  good_oracle_ = nullptr;  // a stale slab never survives a rebuild
  pool_.reset();
  const std::uint32_t snt = pool_.alloc();  // sentinel regains slot 0
  pool_[snt] = Element{kSentinelId, snt, 0};
  std::fill(head_vis_.begin(), head_vis_.end(), 0u);
  std::fill(head_inv_.begin(), head_inv_.end(), 0u);
  rebuild_run_state(s.flop_good, &s.flop_faulty, s.prev_pins);
}

void ConcurrentSim::set_suspended(const std::vector<std::uint8_t>& suspended) {
  const std::size_t nf = model_->num_faults();
  if (!suspended.empty() && suspended.size() != nf) {
    throw Error("suspension mask does not match the fault universe");
  }
  if (base_excluded_.empty()) {
    if (suspended.empty()) {
      excluded_.assign(nf, 0);
    } else {
      excluded_ = suspended;
    }
  } else {
    excluded_ = base_excluded_;
    for (std::size_t i = 0; i < suspended.size(); ++i) {
      if (suspended[i]) excluded_[i] = 1;
    }
  }
}

void ConcurrentSim::set_shard(const FaultPartition& part,
                              unsigned shard_index) {
  const std::size_t nf = model_->num_faults();
  if (part.num_faults() != nf) {
    throw Error("FaultPartition does not match the fault universe");
  }
  if (shard_index >= part.num_shards()) {
    throw Error("shard index out of range");
  }
  base_excluded_.assign(nf, 0);
  for (std::uint32_t id = 0; id < nf; ++id) {
    base_excluded_[id] = part.shard_of(id) == shard_index ? 0 : 1;
  }
  excluded_ = base_excluded_;
}

void ConcurrentSim::accumulate_live_weights(
    std::vector<std::uint64_t>& w) const {
  if (w.size() != model_->num_faults()) {
    throw Error("accumulate_live_weights: weight vector does not cover the "
                "universe");
  }
  const std::size_t n = c_->num_gates();
  for (std::size_t g = 0; g < n; ++g) {
    for (std::uint32_t head : {head_vis_[g], head_inv_[g]}) {
      std::uint32_t cur = head;
      while (pool_[cur].fault_id != kSentinelId) {
        const std::uint32_t id = pool_[cur].fault_id;
        if (!dropped(id)) ++w[id];
        cur = pool_[cur].next;
      }
    }
  }
}

void ConcurrentSim::reserve_elements(std::size_t n) {
  if (opt_.max_elements != 0) n = std::min(n, opt_.max_elements + 1);
  pool_.reserve(n);
}

void ConcurrentSim::set_inputs(std::span<const Val> pi_vals) {
  const auto pis = c_->inputs();
  if (pi_vals.size() != pis.size()) {
    throw Error("apply_vector: expected " + std::to_string(pis.size()) +
                " PI values, got " + std::to_string(pi_vals.size()));
  }
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const GateId g = pis[i];
    if (state_out(good_state_[g]) != pi_vals[i]) {
      commit_good(g, pi_vals[i]);
      refresh_source_site(g);
    }
  }
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

void ConcurrentSim::record_detect(std::uint32_t fault, Val good, Val faulty,
                                  std::size_t& newly) {
  if (!is_binary(good)) return;
  if (is_binary(faulty) && faulty != good) {
    if (status_[fault] != Detect::Hard) {
      status_[fault] = Detect::Hard;
      ++newly;
      CFS_COUNT(counters_, DetectionsHard);
      if (opt_.drop_detected) {
        ++faults_dropped_;
        CFS_COUNT(counters_, FaultsDropped);
      }
    }
  } else if (faulty == Val::X && status_[fault] == Detect::None) {
    status_[fault] = Detect::Potential;
    CFS_COUNT(counters_, DetectionsPotential);
  }
}

std::size_t ConcurrentSim::sample_outputs() {
  std::size_t newly = 0;
  const auto pos = c_->outputs();
  for (std::size_t p = 0; p < pos.size(); ++p) {
    const GateId po = pos[p];
    const Val good = state_out(good_state_[po]);
    if (!is_binary(good)) continue;
    Cursor cu;
    cursor_init(cu, &head_vis_[po]);
    while (cu.id != kSentinelId) {
      const Val out = state_out(pool_[cu.cur].state);
      if (out != good) {
        record_detect(cu.id, good, out, newly);
        if (observer_ && (is_binary(out) || out == Val::X)) {
          observer_(cu.id, static_cast<std::uint32_t>(p), is_binary(out));
        }
      }
      cursor_advance(cu);
    }
  }
  return newly;
}

// ---------------------------------------------------------------------------
// Flip-flop latching
// ---------------------------------------------------------------------------

void ConcurrentSim::latch_flipflops(bool capture_only) {
  const auto dffs = c_->dffs();
  // Phase 1 (master): capture good D and the merged faulty D list per DFF.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId q = dffs[i];
    const GateId drv = c_->fanins(q)[0];
    const Val good_d = state_get(good_state_[q], 0);
    latch_good_[i] = good_d;
    auto& items = latch_lists_[i];
    items.clear();

    Cursor fc;
    cursor_init(fc, &head_vis_[drv]);
    const auto site = model_->site_faults(q);
    std::size_t si = 0;
    while (si < site.size() && skip_site(site[si])) ++si;

    for (;;) {
      std::uint32_t m = si < site.size() ? site[si] : kSentinelId;
      m = std::min(m, fc.id);
      if (m == kSentinelId) break;
      Val faulty_d = fc.id == m ? state_out(pool_[fc.cur].state) : good_d;
      Val newq = faulty_d;
      const FaultDescriptor& d = descr_[m];
      if (d.site_gate == q) {
        ++elements_evaluated_;
        if (d.type == FaultType::StuckAt) {
          // Both a D-pin fault and a Q-output fault force the latched value.
          faulty_d = d.site_pin == kFaultOutPin ? faulty_d : d.forced;
          newq = d.forced;
        } else if (pass1_) {
          faulty_d = transition_forced(m, faulty_d);
          newq = faulty_d;
        }
      }
      if (newq != latch_good_[i]) {
        GateState st = state_set(GateState{0}, 0, faulty_d);
        st = state_set_out(st, newq);
        items.emplace_back(m, st);
      }
      if (fc.id == m) cursor_advance(fc);
      if (si < site.size() && site[si] == m) {
        ++si;
        while (si < site.size() && skip_site(site[si])) ++si;
      }
    }
  }
  if (capture_only) return;
  commit_masters();
}

void ConcurrentSim::commit_masters() {
  const auto dffs = c_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId q = dffs[i];
    const Val old_good_q = state_out(good_state_[q]);

    bool changed = false;
    if (opt_.rebuild_lists) {
      // Naive reference: change test against a snapshot, then rebuild.
      scratch_old_.clear();
      Cursor cu;
      cursor_init(cu, &head_vis_[q]);
      while (cu.id != kSentinelId) {
        scratch_old_.emplace_back(cu.id, state_out(pool_[cu.cur].state));
        cursor_advance(cu);
      }
      if (scratch_old_.size() != latch_lists_[i].size()) {
        changed = true;
      } else {
        for (std::size_t k = 0; k < scratch_old_.size(); ++k) {
          if (scratch_old_[k].first != latch_lists_[i][k].first ||
              scratch_old_[k].second !=
                  state_out(latch_lists_[i][k].second)) {
            changed = true;
            break;
          }
        }
      }
      free_list(head_vis_[q]);
      head_vis_[q] = build_list(latch_lists_[i]);
    } else {
      // In-place apply; every Q-list element counts toward the change test.
      changed = apply_list_inplace(head_vis_[q], latch_lists_[i],
                                   ChangeTrack::All, old_good_q, old_good_q);
      salvage_flush();
    }
    if (latch_good_[i] != old_good_q) {
      commit_good(q, latch_good_[i]);
    } else if (changed) {
      for (const Fanout& fo : c_->fanouts(q)) {
        if (is_combinational(c_->kind(fo.gate))) queue_.schedule(fo.gate);
      }
    }
  }
  settle();
}

void ConcurrentSim::clock() { latch_flipflops(/*capture_only=*/false); }

// ---------------------------------------------------------------------------
// Vector application
// ---------------------------------------------------------------------------

std::size_t ConcurrentSim::apply_vector(std::span<const Val> pi_vals) {
  if (transition_mode_) return apply_vector_transition(pi_vals);
  ++vectors_simulated_;
  {
    CFS_PHASE(timers_, FaultProp);
    set_inputs(pi_vals);
    settle();
  }
  std::size_t newly = 0;
  {
    CFS_PHASE(timers_, DropPass);
    newly = sample_outputs();
  }
  {
    CFS_PHASE(timers_, Clocking);
    // The slab holds this vector's settled frame only; post-clock settling
    // computes the next frame, so the oracle must not serve it.
    good_oracle_ = nullptr;
    clock();
  }
  return newly;
}

std::size_t ConcurrentSim::apply_vector_transition(
    std::span<const Val> pi_vals) {
  ++vectors_simulated_;
  // Pass 1: delayed transitions hold their previous value; POs and the FF
  // masters sample this state (paper §3).
  pass1_ = true;
  {
    CFS_PHASE(timers_, FaultProp);
    set_inputs(pi_vals);
    settle();
  }
  std::size_t newly = 0;
  {
    CFS_PHASE(timers_, DropPass);
    newly = sample_outputs();
  }
  {
    CFS_PHASE(timers_, Clocking);
    latch_flipflops(/*capture_only=*/true);
  }

  // Pass 2: fire every transition and settle; this is the state the next
  // frame's "previous values" come from.  The slaves are not updated yet,
  // so the new flip-flop values cannot leak into this pass.
  pass1_ = false;
  {
    CFS_PHASE(timers_, FaultProp);
    for (GateId g : held_gates_) {
      held_flag_[g] = 0;
      queue_.schedule(g);
    }
    held_gates_.clear();
    settle();
    update_prev_values();
  }

  // Slave update: commit the captured masters; the propagation belongs to
  // the next frame's pass 1.
  pass1_ = true;
  {
    CFS_PHASE(timers_, Clocking);
    good_oracle_ = nullptr;  // the slab does not cover the next frame
    commit_masters();
  }
  return newly;
}

void ConcurrentSim::update_prev_values() {
  // For every transition fault, the next frame's "previous value" is the
  // pass-2 settled value of its site pin *in its own machine*: the driver's
  // faulty value if the fault is visible there, the good value otherwise.
  for (GateId d = 0; d < c_->num_gates(); ++d) {
    const auto group = model_->faults_by_driver(d);
    if (group.empty()) continue;
    const Val good = state_out(good_state_[d]);
    for (std::uint32_t id : group) {
      if (!excluded_[id]) prev_pin_val_[id] = good;
    }
    Cursor cu;
    cursor_init(cu, &head_vis_[d]);
    std::size_t gi = 0;
    while (cu.id != kSentinelId && gi < group.size()) {
      if (cu.id == group[gi]) {
        prev_pin_val_[group[gi]] = state_out(pool_[cu.cur].state);
        cursor_advance(cu);
        ++gi;
      } else if (cu.id < group[gi]) {
        cursor_advance(cu);
      } else {
        ++gi;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Val ConcurrentSim::faulty_value(GateId g, std::uint32_t fault) const {
  for (std::uint32_t head : {head_vis_[g], head_inv_[g]}) {
    std::uint32_t cur = head;
    while (pool_[cur].fault_id != kSentinelId) {
      if (pool_[cur].fault_id == fault) return state_out(pool_[cur].state);
      cur = pool_[cur].next;
    }
  }
  return state_out(good_state_[g]);
}

std::vector<std::pair<std::uint32_t, Val>> ConcurrentSim::visible_at(
    GateId g) const {
  std::vector<std::pair<std::uint32_t, Val>> out;
  const Val good = state_out(good_state_[g]);
  std::uint32_t cur = head_vis_[g];
  while (pool_[cur].fault_id != kSentinelId) {
    const Val v = state_out(pool_[cur].state);
    if (v != good && !dropped(pool_[cur].fault_id)) {
      out.emplace_back(pool_[cur].fault_id, v);
    }
    cur = pool_[cur].next;
  }
  return out;
}

void ConcurrentSim::validate() const {
  if (transition_mode_) {
    throw Error("validate() supports stuck-at mode only");
  }
  auto fail = [&](GateId g, const std::string& msg) {
    throw Error("validate: gate '" + c_->gate_name(g) + "': " + msg);
  };
  // Faulty driver value as seen by `fault` (visible element or good).
  auto driver_value = [&](GateId d, std::uint32_t fault) {
    std::uint32_t cur = head_vis_[d];
    while (pool_[cur].fault_id < fault) cur = pool_[cur].next;
    return pool_[cur].fault_id == fault ? state_out(pool_[cur].state)
                                        : state_out(good_state_[d]);
  };
  for (GateId g = 0; g < c_->num_gates(); ++g) {
    const Val good = state_out(good_state_[g]);
    const bool comb = is_combinational(c_->kind(g));
    for (int list = 0; list < 2; ++list) {
      std::uint32_t cur = list == 0 ? head_vis_[g] : head_inv_[g];
      std::uint32_t last_id = 0;
      bool first = true;
      while (pool_[cur].fault_id != kSentinelId) {
        const std::uint32_t id = pool_[cur].fault_id;
        if (!first && id <= last_id) fail(g, "list not strictly sorted");
        first = false;
        last_id = id;
        if (id >= status_.size()) fail(g, "fault id out of range");
        if (excluded_[id]) fail(g, "element for an excluded fault");
        const Element& e = pool_[cur];
        const Val out = state_out(e.state);
        if (!dropped(id)) {
          if (opt_.split_lists) {
            if (list == 0 && out == good) fail(g, "invisible on visible list");
            if (list == 1 && out != good) fail(g, "visible on invisible list");
          }
          if (comb) {
            // Pins must mirror the faulty driver values (site pins hold the
            // forced value instead), and the output must re-evaluate.
            const FaultDescriptor& d = descr_[id];
            const auto fanins = c_->fanins(g);
            GateState expect = 0;
            for (std::size_t p = 0; p < fanins.size(); ++p) {
              Val v = driver_value(fanins[p], id);
              if (d.site_gate == g && d.site_pin == p &&
                  d.type == FaultType::StuckAt) {
                v = d.forced;
              }
              expect = state_set(expect, static_cast<unsigned>(p), v);
            }
            if ((expect & input_mask(static_cast<unsigned>(fanins.size()))) !=
                (e.state & input_mask(static_cast<unsigned>(fanins.size())))) {
              fail(g, "stale pins for fault " + std::to_string(id));
            }
            Val eo;
            if (d.table != nullptr && d.site_gate == g) {
              eo = from_code(d.table[state_input_index(
                  expect, c_->num_fanins(g))]);
            } else {
              eo = c_->eval(g, expect);
            }
            if (d.site_gate == g && d.site_pin == kFaultOutPin &&
                d.table == nullptr) {
              eo = d.forced;
            }
            if (eo != out) {
              fail(g, "stale output for fault " + std::to_string(id));
            }
          }
        }
        cur = pool_[cur].next;
      }
      if (!opt_.split_lists && list == 1 && head_inv_[g] != 0) {
        fail(g, "invisible list in combined mode");
      }
    }
  }
}

std::size_t ConcurrentSim::state_bytes() const {
  std::size_t b = pool_.bytes();
  b += head_vis_.capacity() * sizeof(std::uint32_t);
  b += head_inv_.capacity() * sizeof(std::uint32_t);
  b += good_state_.capacity() * sizeof(GateState);
  b += status_.capacity() * sizeof(Detect);
  b += excluded_.capacity();
  b += prev_pin_val_.capacity() * sizeof(Val);
  b += held_flag_.capacity();
  b += queue_.bytes();
  return b;
}

void ConcurrentSim::report_memory(MemStats& ms) const {
  ms.sample("fault_elements", pool_.bytes());
  ms.sample("engine_fixed", state_bytes() - pool_.bytes());
  ms.sample("model", model_->bytes());
  ms.sample("circuit", c_->bytes());
}

}  // namespace cfs
