#include "core/delay_concurrent.h"

#include <algorithm>

#include "util/error.h"

namespace cfs {

namespace {
constexpr std::uint32_t kSentinelId = 0xFFFFFFFFu;
}

DelayConcurrentSim::DelayConcurrentSim(const Circuit& c,
                                       const FaultUniverse& u,
                                       std::vector<std::uint32_t> delays,
                                       bool drop_detected)
    : c_(&c), u_(&u), delays_(std::move(delays)),
      drop_detected_(drop_detected) {
  if (!c.dffs().empty()) {
    throw Error("DelayConcurrentSim supports combinational circuits only");
  }
  if (delays_.size() != c.num_gates()) {
    throw Error("DelayConcurrentSim: delay vector size mismatch");
  }
  for (std::uint32_t d : delays_) {
    if (d == 0) throw Error("DelayConcurrentSim: zero delays not supported");
  }
  status_.assign(u.size(), Detect::None);
  good_state_.resize(c.num_gates());
  good_last_posted_.assign(c.num_gates(), Val::X);
  head_.assign(c.num_gates(), 0);
  good_inflight_.resize(c.num_gates());
  sites_.resize(c.num_gates());
  wheel_.resize(kWheelSize);
  activated_flag_.assign(c.num_gates(), 0);
  for (GateId g = 0; g < c.num_gates(); ++g) {
    good_state_[g] = state_all_x(c.num_fanins(g));
  }
  // Site elements are permanent, so the universe size is a floor on the
  // element population: pre-size the arena once instead of growing it
  // under the event loop.
  pool_.reserve(u.size() + 1);
  const std::uint32_t s = pool_.alloc();
  pool_[s] = Element{kSentinelId, s, 0, Val::X, 0};

  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const Fault& f = u[id];
    if (f.type != FaultType::StuckAt) {
      throw Error("DelayConcurrentSim: stuck-at universes only");
    }
    sites_[f.gate].push_back({id, f.pin, f.value});
  }
  // Materialise permanent site elements and seed their initial events.
  for (GateId g = 0; g < c.num_gates(); ++g) {
    for (const Site& site : sites_[g]) {
      const std::uint32_t e = ensure_element(g, site.fault);
      if (site.pin == kFaultOutPin && c.kind(g) == GateKind::Input) {
        // A stuck primary input asserts immediately.
        pool_[e].last_posted = site.value;
        ++pool_[e].pend;
        post(0, g, site.fault, site.value);
      } else {
        const Val v = eval_element(g, pool_[e]);
        if (v != pool_[e].last_posted) post_faulty(g, e, v);
      }
    }
  }
}

std::uint32_t DelayConcurrentSim::find_element(GateId g,
                                               std::uint32_t fault) const {
  std::uint32_t cur = head_[g];
  while (pool_[cur].fault_id < fault) cur = pool_[cur].next;
  return pool_[cur].fault_id == fault ? cur : kNullIndex;
}

std::uint32_t DelayConcurrentSim::ensure_element(GateId g,
                                                 std::uint32_t fault) {
  std::uint32_t prev = kNullIndex;
  std::uint32_t cur = head_[g];
  while (pool_[cur].fault_id < fault) {
    prev = cur;
    cur = pool_[cur].next;
  }
  if (pool_[cur].fault_id == fault) {
    // The machine is already explicit here: its element is patched in
    // place by the caller instead of being torn down and rebuilt.
    CFS_COUNT(counters_, ElementsReused);
    return cur;
  }
  CFS_COUNT(counters_, ElementsAllocated);
  const std::uint32_t e = pool_.alloc();
  // A freshly diverged machine mirrors the good machine at this gate --
  // including the good events still in the wheel, which belong to this
  // machine's history too (it was implicit when they were posted).
  pool_[e] = Element{fault, cur, good_state_[g], good_last_posted_[g],
                     static_cast<std::uint16_t>(good_inflight_[g].size())};
  for (const auto& [t, val] : good_inflight_[g]) post(t, g, fault, val);
  if (prev == kNullIndex) {
    head_[g] = e;
  } else {
    pool_[prev].next = e;
  }
  return e;
}

void DelayConcurrentSim::remove_element(GateId g, std::uint32_t fault) {
  std::uint32_t prev = kNullIndex;
  std::uint32_t cur = head_[g];
  while (pool_[cur].fault_id < fault) {
    prev = cur;
    cur = pool_[cur].next;
  }
  if (pool_[cur].fault_id != fault) return;
  CFS_COUNT(counters_, ElementsFreed);
  if (prev == kNullIndex) {
    head_[g] = pool_[cur].next;
  } else {
    pool_[prev].next = pool_[cur].next;
  }
  pool_.free(cur);
}

Val DelayConcurrentSim::eval_element(GateId g, const Element& e) {
  ++element_evals_;
  GateState s = e.state;
  Val forced_out = Val::X;
  bool has_out_force = false;
  for (const Site& site : sites_[g]) {
    if (site.fault != e.fault_id) continue;
    if (site.pin == kFaultOutPin) {
      forced_out = site.value;
      has_out_force = true;
    } else {
      s = state_set(s, site.pin, site.value);
    }
  }
  if (has_out_force) return forced_out;
  CFS_COUNT(counters_, TableEvals);
  return c_->eval(g, s);
}

void DelayConcurrentSim::post(std::uint64_t t, GateId g, std::uint32_t fault,
                              Val v) {
  CFS_COUNT(counters_, EventsScheduled);
  ++pending_;
  if (t - now_ < kWheelSize) {
    wheel_[t % kWheelSize].push_back({g, fault, v});
  } else {
    overflow_.emplace_back(t, Event{g, fault, v});
  }
}

void DelayConcurrentSim::post_faulty(GateId g, std::uint32_t elem, Val v) {
  pool_[elem].last_posted = v;
  ++pool_[elem].pend;
  post(now_ + delays_[g], g, pool_[elem].fault_id, v);
}

void DelayConcurrentSim::activate(GateId g) {
  if (!activated_flag_[g]) {
    activated_flag_[g] = 1;
    activated_.push_back(g);
  }
}

void DelayConcurrentSim::set_input(unsigned pi_index, Val v) {
  const GateId g = c_->inputs()[pi_index];
  good_inflight_[g].push_back({now_, v});
  post(now_, g, kGoodEvent, v);
}

void DelayConcurrentSim::assign_good(GateId g, Val v) {
  if (state_out(good_state_[g]) == v) return;
  good_state_[g] = state_set_out(good_state_[g], v);
  for (const Fanout& fo : c_->fanouts(g)) {
    good_state_[fo.gate] = state_set(good_state_[fo.gate], fo.pin, v);
    // Merge walk over g's and the fanout's lists:
    //  - machine explicit at both: its pin already tracks its own events;
    //  - explicit only at the fanout (implicit at g): pin follows good;
    //  - explicit only at g: if its value differs from the new good value
    //    the good change itself diverges the machine at the fanout.
    std::uint32_t src = head_[g];
    std::uint32_t dst = head_[fo.gate];
    for (;;) {
      const std::uint32_t sid = pool_[src].fault_id;
      const std::uint32_t did = pool_[dst].fault_id;
      if (sid == kSentinelId && did == kSentinelId) break;
      if (did < sid) {
        pool_[dst].state = state_set(pool_[dst].state, fo.pin, v);
        dst = pool_[dst].next;
      } else if (sid < did) {
        const Val fv = state_out(pool_[src].state);
        if (fv != v && !dropped(sid)) {
          const std::uint32_t fresh = ensure_element(fo.gate, sid);
          pool_[fresh].state = state_set(pool_[fresh].state, fo.pin, fv);
          // `dst` may have been the insertion successor; re-anchor on it.
          dst = pool_[fresh].next;
        }
        src = pool_[src].next;
      } else {
        src = pool_[src].next;
        dst = pool_[dst].next;
      }
    }
    activate(fo.gate);
  }
  activate(g);  // its elements' convergence eligibility may have changed
}

void DelayConcurrentSim::assign_faulty(GateId g, std::uint32_t fault, Val v) {
  std::uint32_t e = find_element(g, fault);
  if (e != kNullIndex && pool_[e].pend > 0) --pool_[e].pend;
  if (dropped(fault)) return;
  const Val good = state_out(good_state_[g]);
  if (e == kNullIndex) {
    if (v == good) return;  // still implicit: nothing diverged
    e = ensure_element(g, fault);
  } else if (state_out(pool_[e].state) == v) {
    activate(g);  // pend dropped to zero: convergence may now be possible
    return;
  }
  pool_[e].state = state_set_out(pool_[e].state, v);
  for (const Fanout& fo : c_->fanouts(g)) {
    const std::uint32_t eh = find_element(fo.gate, fault);
    if (eh != kNullIndex) {
      pool_[eh].state = state_set(pool_[eh].state, fo.pin, v);
    } else if (v != good) {
      const std::uint32_t fresh = ensure_element(fo.gate, fault);
      pool_[fresh].state = state_set(pool_[fresh].state, fo.pin, v);
    }
    activate(fo.gate);
  }
  activate(g);  // own convergence check happens in phase 2
}

void DelayConcurrentSim::phase2() {
  for (GateId g : activated_) {
    activated_flag_[g] = 0;
    const bool comb = is_combinational(c_->kind(g));
    if (comb) {
      const Val v = c_->eval(g, good_state_[g]);
      if (v != good_last_posted_[g]) {
        good_last_posted_[g] = v;
        good_inflight_[g].push_back({now_ + delays_[g], v});
        post(now_ + delays_[g], g, kGoodEvent, v);
      }
    }
    std::uint32_t prev = kNullIndex;
    std::uint32_t cur = head_[g];
    while (pool_[cur].fault_id != kSentinelId) {
      const std::uint32_t nxt = pool_[cur].next;
      const std::uint32_t fid = pool_[cur].fault_id;
      if (dropped(fid)) {
        // Event-driven dropping: unlink while traversing.
        CFS_COUNT(counters_, DropUnlinksLazy);
        CFS_COUNT(counters_, ElementsFreed);
        if (prev == kNullIndex) {
          head_[g] = nxt;
        } else {
          pool_[prev].next = nxt;
        }
        pool_.free(cur);
        cur = nxt;
        continue;
      }
      bool removed = false;
      if (comb) {
        const Val v = eval_element(g, pool_[cur]);
        if (v != pool_[cur].last_posted) post_faulty(g, cur, v);
      }
      // Convergence: the machine's whole state equals the good machine's
      // and no divergent value is in flight.  Site elements are permanent.
      {
        const Element& e = pool_[cur];
        bool is_site = false;
        for (const Site& site : sites_[g]) is_site |= site.fault == fid;
        if (!is_site && e.pend == 0 && e.state == good_state_[g] &&
            e.last_posted == good_last_posted_[g]) {
          CFS_COUNT(counters_, ElementsFreed);
          if (prev == kNullIndex) {
            head_[g] = nxt;
          } else {
            pool_[prev].next = nxt;
          }
          pool_.free(cur);
          removed = true;
        }
      }
      if (!removed) prev = cur;
      cur = nxt;
    }
  }
  activated_.clear();
}

std::uint64_t DelayConcurrentSim::run(std::uint64_t max_time) {
  std::uint64_t last_change = now_;
  while (pending_ > 0 && now_ <= max_time) {
    if (!overflow_.empty()) {
      auto it = overflow_.begin();
      while (it != overflow_.end()) {
        if (it->first - now_ < kWheelSize) {
          wheel_[it->first % kWheelSize].push_back(it->second);
          it = overflow_.erase(it);
        } else {
          ++it;
        }
      }
    }
    auto& slot = wheel_[now_ % kWheelSize];
    if (slot.empty()) {
      ++now_;
      continue;
    }
    // Index loop: element creation during phase 1 may clone an in-flight
    // good event into *this* slot (same-time inheritance), growing it.
    for (std::size_t i = 0; i < slot.size(); ++i) {
      const Event ev = slot[i];
      --pending_;
      if (ev.fault == kGoodEvent) {
        auto& inflight = good_inflight_[ev.gate];
        if (!inflight.empty() && inflight.front().first == now_ &&
            inflight.front().second == ev.val) {
          inflight.erase(inflight.begin());
        }
        if (state_out(good_state_[ev.gate]) != ev.val) {
          last_change = now_;
          assign_good(ev.gate, ev.val);
        }
      } else {
        last_change = now_;
        assign_faulty(ev.gate, ev.fault, ev.val);
      }
    }
    slot.clear();
    phase2();
    ++now_;
  }
  return last_change;
}

std::size_t DelayConcurrentSim::strobe() {
  std::size_t newly = 0;
  for (GateId po : c_->outputs()) {
    const Val good = state_out(good_state_[po]);
    if (!is_binary(good)) continue;
    std::uint32_t cur = head_[po];
    while (pool_[cur].fault_id != kSentinelId) {
      const std::uint32_t fid = pool_[cur].fault_id;
      const Val v = state_out(pool_[cur].state);
      if (!dropped(fid) && v != good) {
        if (is_binary(v)) {
          if (status_[fid] != Detect::Hard) {
            status_[fid] = Detect::Hard;
            ++newly;
            CFS_COUNT(counters_, DetectionsHard);
            if (drop_detected_) CFS_COUNT(counters_, FaultsDropped);
          }
        } else if (status_[fid] == Detect::None) {
          status_[fid] = Detect::Potential;
          CFS_COUNT(counters_, DetectionsPotential);
        }
      }
      cur = pool_[cur].next;
    }
  }
  return newly;
}

Val DelayConcurrentSim::faulty_value(GateId g, std::uint32_t fault) const {
  const std::uint32_t e = find_element(g, fault);
  return e == kNullIndex ? state_out(good_state_[g])
                         : state_out(pool_[e].state);
}

std::size_t DelayConcurrentSim::bytes() const {
  std::size_t b = pool_.bytes();
  b += good_state_.capacity() * sizeof(GateState);
  b += good_last_posted_.capacity();
  b += head_.capacity() * sizeof(std::uint32_t);
  b += status_.capacity();
  for (const auto& v : sites_) b += v.capacity() * sizeof(Site);
  for (const auto& v : good_inflight_) {
    b += v.capacity() * sizeof(std::pair<std::uint64_t, Val>);
  }
  for (const auto& v : wheel_) b += v.capacity() * sizeof(Event);
  b += overflow_.capacity() * sizeof(std::pair<std::uint64_t, Event>);
  return b;
}

}  // namespace cfs
