#include "core/sim_model.h"

#include "util/error.h"

namespace cfs {

SimModel::SimModel(const Circuit& c, const FaultUniverse& u,
                   const MacroFaultMap* mmap)
    : c_(&c), u_(&u), mmap_(mmap) {
  const std::size_t n = c.num_gates();
  const std::size_t nf = u.size();

  // Detect transition mode and validate homogeneity.
  for (std::uint32_t id = 0; id < nf; ++id) {
    if (u[id].type == FaultType::Transition) {
      transition_mode_ = true;
      break;
    }
  }
  if (transition_mode_) {
    if (mmap_ != nullptr) {
      throw Error(
          "transition faults cannot be simulated on a macro-extracted "
          "circuit (no temporal model for functional faults)");
    }
    for (std::uint32_t id = 0; id < nf; ++id) {
      if (u[id].type != FaultType::Transition) {
        throw Error("mixed stuck-at/transition universes are not supported");
      }
      if (u[id].pin == kFaultOutPin) {
        throw Error("transition faults must sit on input pins");
      }
    }
  }
  if (mmap_ && mmap_->mapped.size() != nf) {
    throw Error("MacroFaultMap does not match the fault universe");
  }

  // Build descriptors, then the per-gate site-fault index in CSR form: a
  // counting pass sizes the offsets, a placement pass fills the flat array.
  // Ids are placed in ascending order, so each gate's span is sorted.
  descr_.resize(nf);
  for (std::uint32_t id = 0; id < nf; ++id) {
    FaultDescriptor& d = descr_[id];
    const Fault& f = u[id];
    d.type = f.type;
    if (mmap_) {
      const MappedFault& m = mmap_->mapped[id];
      d.site_gate = m.gate;
      d.site_pin = m.pin;
      d.forced = m.value;
      d.masked = m.masked;
      if (m.table != kNoGate) d.table = mmap_->tables[m.table].out.data();
    } else {
      d.site_gate = f.gate;
      d.site_pin = f.pin;
      d.forced = f.value;
    }
    if (d.site_gate >= n) throw Error("fault site out of range");
    if (d.site_pin != kFaultOutPin && d.site_pin >= c.num_fanins(d.site_gate)) {
      throw Error("fault site pin out of range");
    }
  }
  site_off_.assign(n + 1, 0);
  for (std::uint32_t id = 0; id < nf; ++id) {
    if (!descr_[id].masked) ++site_off_[descr_[id].site_gate + 1];
  }
  for (std::size_t g = 0; g < n; ++g) site_off_[g + 1] += site_off_[g];
  site_flat_.resize(site_off_[n]);
  {
    std::vector<std::uint32_t> cursor(site_off_.begin(), site_off_.end() - 1);
    for (std::uint32_t id = 0; id < nf; ++id) {
      if (!descr_[id].masked) site_flat_[cursor[descr_[id].site_gate]++] = id;
    }
  }

  driver_off_.assign(n + 1, 0);
  if (transition_mode_) {
    site_driver_.resize(nf);
    for (std::uint32_t id = 0; id < nf; ++id) {
      const GateId drv = c.fanins(descr_[id].site_gate)[descr_[id].site_pin];
      site_driver_[id] = drv;
      ++driver_off_[drv + 1];
    }
    for (std::size_t g = 0; g < n; ++g) driver_off_[g + 1] += driver_off_[g];
    driver_flat_.resize(driver_off_[n]);
    std::vector<std::uint32_t> cursor(driver_off_.begin(),
                                      driver_off_.end() - 1);
    for (std::uint32_t id = 0; id < nf; ++id) {
      driver_flat_[cursor[site_driver_[id]]++] = id;  // ascending per driver
    }
  }
}

std::size_t SimModel::bytes() const {
  std::size_t b = descr_.capacity() * sizeof(FaultDescriptor);
  b += site_off_.capacity() * sizeof(std::uint32_t);
  b += site_flat_.capacity() * sizeof(std::uint32_t);
  b += site_driver_.capacity() * sizeof(GateId);
  b += driver_off_.capacity() * sizeof(std::uint32_t);
  b += driver_flat_.capacity() * sizeof(std::uint32_t);
  if (mmap_) b += mmap_->bytes();
  return b;
}

}  // namespace cfs
