#include "core/sim_model.h"

#include "util/error.h"

namespace cfs {

SimModel::SimModel(const Circuit& c, const FaultUniverse& u,
                   const MacroFaultMap* mmap)
    : c_(&c), u_(&u), mmap_(mmap) {
  const std::size_t n = c.num_gates();
  const std::size_t nf = u.size();

  // Detect transition mode and validate homogeneity.
  for (std::uint32_t id = 0; id < nf; ++id) {
    if (u[id].type == FaultType::Transition) {
      transition_mode_ = true;
      break;
    }
  }
  if (transition_mode_) {
    if (mmap_ != nullptr) {
      throw Error(
          "transition faults cannot be simulated on a macro-extracted "
          "circuit (no temporal model for functional faults)");
    }
    for (std::uint32_t id = 0; id < nf; ++id) {
      if (u[id].type != FaultType::Transition) {
        throw Error("mixed stuck-at/transition universes are not supported");
      }
      if (u[id].pin == kFaultOutPin) {
        throw Error("transition faults must sit on input pins");
      }
    }
  }
  if (mmap_ && mmap_->mapped.size() != nf) {
    throw Error("MacroFaultMap does not match the fault universe");
  }

  // Build descriptors and per-gate site-fault arrays.
  descr_.resize(nf);
  site_faults_.resize(n);
  for (std::uint32_t id = 0; id < nf; ++id) {
    FaultDescriptor& d = descr_[id];
    const Fault& f = u[id];
    d.type = f.type;
    if (mmap_) {
      const MappedFault& m = mmap_->mapped[id];
      d.site_gate = m.gate;
      d.site_pin = m.pin;
      d.forced = m.value;
      d.masked = m.masked;
      if (m.table != kNoGate) d.table = mmap_->tables[m.table].out.data();
    } else {
      d.site_gate = f.gate;
      d.site_pin = f.pin;
      d.forced = f.value;
    }
    if (d.site_gate >= n) throw Error("fault site out of range");
    if (d.site_pin != kFaultOutPin && d.site_pin >= c.num_fanins(d.site_gate)) {
      throw Error("fault site pin out of range");
    }
    if (!d.masked) site_faults_[d.site_gate].push_back(id);
  }
  // Ids were appended in ascending order, so site arrays are sorted already.

  if (transition_mode_) {
    site_driver_.resize(nf);
    faults_by_driver_.resize(n);
    for (std::uint32_t id = 0; id < nf; ++id) {
      const GateId drv = c.fanins(descr_[id].site_gate)[descr_[id].site_pin];
      site_driver_[id] = drv;
      faults_by_driver_[drv].push_back(id);  // ascending, hence sorted
    }
  }
}

std::size_t SimModel::bytes() const {
  std::size_t b = descr_.capacity() * sizeof(FaultDescriptor);
  for (const auto& v : site_faults_) b += v.capacity() * sizeof(std::uint32_t);
  b += site_driver_.capacity() * sizeof(GateId);
  for (const auto& v : faults_by_driver_) {
    b += v.capacity() * sizeof(std::uint32_t);
  }
  if (mmap_) b += mmap_->bytes();
  return b;
}

}  // namespace cfs
