// Packed gate state: "the state of a gate is packed into a word so that the
// output can be efficiently evaluated by table look up" (paper, §2).
//
// A GateState is one uint64_t holding up to kMaxPins input values (2 bits
// each, dual-rail codes from logic.h) plus the output value in a dedicated
// slot above the pins.  Both the good machine and every fault element carry
// their state in this form, so divergence/convergence is a single word
// compare.
#pragma once

#include <cstdint>

#include "util/logic.h"

namespace cfs {

/// Maximum gate fanin supported by the packed representation.  The netlist
/// builder decomposes wider gates into balanced trees (see decompose.h).
inline constexpr unsigned kMaxPins = 16;

/// Slot index used for the gate output.
inline constexpr unsigned kOutSlot = kMaxPins;

using GateState = std::uint64_t;

constexpr GateState state_set(GateState s, unsigned slot, Val v) {
  const unsigned sh = slot * 2;
  return (s & ~(GateState{3} << sh)) | (GateState{code(v)} << sh);
}

constexpr Val state_get(GateState s, unsigned slot) {
  return from_code(static_cast<std::uint8_t>((s >> (slot * 2)) & 3u));
}

constexpr GateState state_set_out(GateState s, Val v) {
  return state_set(s, kOutSlot, v);
}

constexpr Val state_out(GateState s) { return state_get(s, kOutSlot); }

/// State with all `npins` pins and the output set to X.
constexpr GateState state_all_x(unsigned npins) {
  GateState s = 0;
  for (unsigned i = 0; i < npins; ++i) s = state_set(s, i, Val::X);
  return state_set_out(s, Val::X);
}

/// Low 2*npins bits: the table-lookup index for this gate's inputs.
constexpr std::uint32_t state_input_index(GateState s, unsigned npins) {
  return static_cast<std::uint32_t>(s & ((GateState{1} << (2 * npins)) - 1));
}

/// Mask covering the input slots only (used to compare inputs ignoring the
/// output slot).
constexpr GateState input_mask(unsigned npins) {
  return (GateState{1} << (2 * npins)) - 1;
}

}  // namespace cfs
