// Named-category memory accounting used by the experiment harness.
//
// The paper reports a MEM column per run.  We cannot reproduce Sparc-2
// process RSS meaningfully, so each simulator reports the bytes of its major
// structures (fault-element pool, fault lists, lookup tables, circuit image)
// into a MemStats and the harness prints current/peak totals.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cfs {

class MemStats {
 public:
  /// Record the current byte count of a named category, replacing any
  /// previous sample for that category.  Peak total is tracked across calls.
  void sample(const std::string& category, std::size_t bytes);

  /// Sum of the latest samples of all categories.
  std::size_t current() const;

  /// Highest value current() has reached.
  std::size_t peak() const { return peak_; }

  const std::vector<std::pair<std::string, std::size_t>>& categories() const {
    return cats_;
  }

  void reset();

 private:
  std::vector<std::pair<std::string, std::size_t>> cats_;
  std::size_t peak_ = 0;
};

/// Human-readable byte count ("9.24M", "412K", "96").
std::string format_bytes(std::size_t bytes);

}  // namespace cfs
