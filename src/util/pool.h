// Index-addressed arena pool with an intrusive free list and byte
// accounting.
//
// Fault elements are tiny, allocated and freed at enormous rates, and linked
// into per-gate lists.  Using 32-bit pool indices instead of pointers halves
// the link size, removes allocator overhead, and lets the memory tracker
// report exactly how many bytes the fault population costs -- the number the
// paper's MEM columns measure.
//
// Storage is a list of fixed-size chunks rather than one contiguous vector:
// growth never moves existing objects (references as well as indices stay
// valid across alloc()) and never pays a doubling spike of copy traffic.
// The free list is intrusive -- the link is written into the first four
// bytes of the freed slot -- so there is no side array at all; a freed
// object's contents are NOT preserved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace cfs {

inline constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

/// Thrown by Pool::alloc() when a live-object budget is set and granting
/// one more object would exceed it.  The signal the memory-budget
/// degradation path (resil/campaign.h) catches to switch a campaign into
/// multi-pass mode instead of aborting or OOM-ing the host.
struct PoolBudgetError : Error {
  explicit PoolBudgetError(std::size_t budget)
      : Error("fault-element pool budget exceeded (" +
              std::to_string(budget) + " elements)"),
        budget(budget) {}
  std::size_t budget;
};

template <typename T>
class Pool {
  static_assert(std::is_trivially_copyable_v<T> &&
                    sizeof(T) >= sizeof(std::uint32_t),
                "Pool stores the free-list link inside freed slots");

 public:
  /// Objects per chunk.  A power of two so index decomposition is a
  /// shift+mask pair on the hot path.
  static constexpr unsigned kChunkShift = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::uint32_t kChunkMask =
      static_cast<std::uint32_t>(kChunkSize - 1);

  /// Allocate one object (contents unspecified; reset by caller); returns
  /// its pool index.  Never moves existing objects.  Throws PoolBudgetError
  /// when a budget is set and `live() == budget` already.
  std::uint32_t alloc() {
    if (budget_ != 0 && live_ >= budget_) throw PoolBudgetError(budget_);
    if (free_head_ != kNullIndex) {
      const std::uint32_t idx = free_head_;
      free_head_ = read_link(idx);
      ++live_;
      // reset_peak() can start an epoch below size_, so the free-list path
      // must maintain the high-water mark too.
      peak_live_ = live_ > peak_live_ ? live_ : peak_live_;
      return idx;
    }
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    const auto idx = static_cast<std::uint32_t>(size_++);
    ++live_;
    peak_live_ = live_ > peak_live_ ? live_ : peak_live_;
    return idx;
  }

  /// Return an object to the free list.  The slot's first four bytes are
  /// overwritten by the free-list link.
  void free(std::uint32_t idx) {
    write_link(idx, free_head_);
    free_head_ = idx;
    --live_;
  }

  T& operator[](std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }
  const T& operator[](std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  /// Pre-allocate chunks so the first `n` objects materialise without any
  /// growth on the hot path.
  void reserve(std::size_t n) {
    while (chunks_.size() * kChunkSize < n) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
  }

  /// Objects currently allocated.
  std::size_t live() const { return live_; }
  /// High-water mark of live objects.  Survives reset() (lifetime
  /// high-water); clear() and reset_peak() start a fresh epoch.
  std::size_t peak_live() const { return peak_live_; }
  /// Restart the high-water epoch at the current live count (campaign
  /// accounting across budget-enforced passes).
  void reset_peak() { peak_live_ = live_; }

  /// Hard ceiling on live objects; alloc() throws PoolBudgetError rather
  /// than exceed it.  0 (the default) disables enforcement.  Chunks already
  /// reserved above the budget are kept -- the budget bounds *live* objects,
  /// not backing storage.
  void set_budget(std::size_t max_live) { budget_ = max_live; }
  std::size_t budget() const { return budget_; }
  /// Slots backed by allocated chunks.
  std::size_t capacity() const { return chunks_.size() * kChunkSize; }
  /// Bytes held by the pool's backing storage (capacity, not just live).
  std::size_t bytes() const {
    return chunks_.size() * kChunkSize * sizeof(T) +
           chunks_.capacity() * sizeof(chunks_[0]);
  }

  /// Forget every object but keep the chunks: the next allocations are
  /// handed out from index 0 upward again, in order.  This is the
  /// compaction primitive -- rebuilding lists after a reset() lays their
  /// elements out contiguously in traversal order, no matter how scrambled
  /// the free list was.  peak_live() is preserved (lifetime high-water).
  void reset() {
    free_head_ = kNullIndex;
    live_ = 0;
    size_ = 0;
  }

  /// Release everything, including the backing storage and the high-water
  /// mark: a clear()ed pool reports as a brand-new one.
  void clear() {
    chunks_.clear();
    free_head_ = kNullIndex;
    live_ = 0;
    size_ = 0;
    peak_live_ = 0;
  }

 private:
  // The void* casts matter: T is trivially copyable (see the static_assert)
  // but may still have a non-trivial default constructor, which would trip
  // -Wclass-memaccess on a direct T* memcpy.
  std::uint32_t read_link(std::uint32_t idx) const {
    std::uint32_t n;
    std::memcpy(&n, static_cast<const void*>(&(*this)[idx]), sizeof n);
    return n;
  }
  void write_link(std::uint32_t idx, std::uint32_t n) {
    std::memcpy(static_cast<void*>(&(*this)[idx]), &n, sizeof n);
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t size_ = 0;  // slots ever handed out in the current epoch
  std::uint32_t free_head_ = kNullIndex;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t budget_ = 0;  // 0 = unlimited
};

}  // namespace cfs
