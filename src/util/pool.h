// Index-addressed object pool with a free list and byte accounting.
//
// Fault elements are tiny, allocated and freed at enormous rates, and linked
// into per-gate lists.  Using 32-bit pool indices instead of pointers halves
// the link size, removes allocator overhead, and lets the memory tracker
// report exactly how many bytes the fault population costs -- the number the
// paper's MEM columns measure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cfs {

inline constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

template <typename T>
class Pool {
 public:
  /// Allocate one object (default-constructed or reset by caller); returns
  /// its pool index.
  std::uint32_t alloc() {
    if (free_head_ != kNullIndex) {
      const std::uint32_t idx = free_head_;
      free_head_ = next_free_[idx];
      ++live_;
      return idx;
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(items_.size());
    items_.emplace_back();
    next_free_.push_back(kNullIndex);
    ++live_;
    peak_live_ = live_ > peak_live_ ? live_ : peak_live_;
    return idx;
  }

  /// Return an object to the free list.  The object is not destroyed; it is
  /// reused verbatim by the next alloc().
  void free(std::uint32_t idx) {
    next_free_[idx] = free_head_;
    free_head_ = idx;
    --live_;
  }

  T& operator[](std::uint32_t idx) { return items_[idx]; }
  const T& operator[](std::uint32_t idx) const { return items_[idx]; }

  /// Objects currently allocated.
  std::size_t live() const { return live_; }
  /// High-water mark of live objects.
  std::size_t peak_live() const { return peak_live_; }
  /// Bytes held by the pool's backing storage (capacity, not just live).
  std::size_t bytes() const {
    return items_.capacity() * sizeof(T) +
           next_free_.capacity() * sizeof(std::uint32_t);
  }

  void clear() {
    items_.clear();
    next_free_.clear();
    free_head_ = kNullIndex;
    live_ = 0;
  }

 private:
  std::vector<T> items_;
  std::vector<std::uint32_t> next_free_;
  std::uint32_t free_head_ = kNullIndex;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace cfs
