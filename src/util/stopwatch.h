// Wall-clock stopwatch for the CPU columns of the experiment tables.
#pragma once

#include <chrono>

namespace cfs {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Seconds elapsed since construction or the last restart()/lap(), then
  /// restart -- one clock read per interval when timing back-to-back
  /// segments.
  double lap() {
    const clock::time_point now = clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cfs
