// 64-pattern-wide three-valued words for bit-parallel simulation.
//
// A Word64 carries 64 independent three-valued values using one L rail and
// one H rail (same semantics as the scalar encoding in logic.h, one bit per
// lane).  The PROOFS-style baseline packs 64 faulty machines per word; the
// parallel-pattern good-machine simulator packs 64 input vectors per word.
#pragma once

#include <cstdint>

#include "util/logic.h"

namespace cfs {

struct Word64 {
  std::uint64_t l = 0;  ///< optimistic rail
  std::uint64_t h = 0;  ///< pessimistic rail

  friend bool operator==(const Word64&, const Word64&) = default;
};

/// All 64 lanes set to the same scalar value.
constexpr Word64 splat64(Val v) {
  const std::uint8_t c = code(v);
  return Word64{(c & 1u) ? ~0ull : 0ull, (c & 2u) ? ~0ull : 0ull};
}

constexpr Word64 w_and(Word64 a, Word64 b) {
  return {a.l & b.l, a.h & b.h};
}
constexpr Word64 w_or(Word64 a, Word64 b) { return {a.l | b.l, a.h | b.h}; }
constexpr Word64 w_not(Word64 a) { return {~a.h, ~a.l}; }
constexpr Word64 w_xor(Word64 a, Word64 b) {
  return w_or(w_and(a, w_not(b)), w_and(w_not(a), b));
}

/// Lanes where a and b hold an identical value (0==0, 1==1, X==X).
constexpr std::uint64_t w_eq(Word64 a, Word64 b) {
  return ~((a.l ^ b.l) | (a.h ^ b.h));
}

/// Lanes where both values are binary and complementary (hard difference).
constexpr std::uint64_t w_hard_diff(Word64 a, Word64 b) {
  const std::uint64_t a_bin = ~(a.l ^ a.h);  // lanes where a is 0 or 1
  const std::uint64_t b_bin = ~(b.l ^ b.h);
  return a_bin & b_bin & (a.l ^ b.l);
}

/// Lanes where the value is X.
constexpr std::uint64_t w_is_x(Word64 a) { return ~a.l & a.h; }

/// Lanes where the value is binary (0 or 1).
constexpr std::uint64_t w_is_binary(Word64 a) { return ~(a.l ^ a.h) ; }

/// Read lane `i` back as a scalar value.
constexpr Val w_get(Word64 a, unsigned i) {
  const std::uint8_t c = static_cast<std::uint8_t>(
      (((a.h >> i) & 1u) << 1) | ((a.l >> i) & 1u));
  return from_code(c);
}

/// Set lane `i` to a scalar value.
constexpr void w_set(Word64& a, unsigned i, Val v) {
  const std::uint64_t m = 1ull << i;
  const std::uint8_t c = code(v);
  a.l = (c & 1u) ? (a.l | m) : (a.l & ~m);
  a.h = (c & 2u) ? (a.h | m) : (a.h & ~m);
}

/// Blend: lanes in `mask` taken from `b`, others from `a`.
constexpr Word64 w_select(std::uint64_t mask, Word64 b, Word64 a) {
  return {(a.l & ~mask) | (b.l & mask), (a.h & ~mask) | (b.h & mask)};
}

// ---------------------------------------------------------------------------
// Multi-word (up to 256-lane) extensions.
//
// A value wider than 64 lanes is `n` consecutive Word64s: lane i lives in
// word i/64, bit i%64.  Lanes never interact in any dual-rail op, so every
// multi-word op is the Word64 op applied word-wise; the fixed small bound
// (kMaxBatchWords = 4, i.e. 256 lanes) keeps the loops fully unrollable --
// on AVX2 the four l rails and four h rails each fill one 256-bit register.
// ---------------------------------------------------------------------------

/// Hard cap on words per multi-word value (4 * 64 = 256 lanes).
inline constexpr unsigned kMaxBatchWords = 4;
inline constexpr unsigned kMaxBatchLanes = kMaxBatchWords * 64;

constexpr void wn_splat(Word64* a, unsigned n, Val v) {
  const Word64 w = splat64(v);
  for (unsigned i = 0; i < n; ++i) a[i] = w;
}
constexpr void wn_copy(Word64* dst, const Word64* src, unsigned n) {
  for (unsigned i = 0; i < n; ++i) dst[i] = src[i];
}
constexpr void wn_and(Word64* acc, const Word64* b, unsigned n) {
  for (unsigned i = 0; i < n; ++i) acc[i] = w_and(acc[i], b[i]);
}
constexpr void wn_or(Word64* acc, const Word64* b, unsigned n) {
  for (unsigned i = 0; i < n; ++i) acc[i] = w_or(acc[i], b[i]);
}
constexpr void wn_xor(Word64* acc, const Word64* b, unsigned n) {
  for (unsigned i = 0; i < n; ++i) acc[i] = w_xor(acc[i], b[i]);
}
constexpr void wn_not(Word64* a, unsigned n) {
  for (unsigned i = 0; i < n; ++i) a[i] = w_not(a[i]);
}

/// All lanes of `a` and `b` hold identical values.
constexpr bool wn_eq(const Word64* a, const Word64* b, unsigned n) {
  std::uint64_t diff = 0;
  for (unsigned i = 0; i < n; ++i) {
    diff |= (a[i].l ^ b[i].l) | (a[i].h ^ b[i].h);
  }
  return diff == 0;
}

/// Read lane `lane` (0 .. 64n-1) back as a scalar value.
constexpr Val wn_get(const Word64* a, unsigned lane) {
  return w_get(a[lane >> 6], lane & 63u);
}

/// Set lane `lane` (0 .. 64n-1) to a scalar value.
constexpr void wn_set(Word64* a, unsigned lane, Val v) {
  w_set(a[lane >> 6], lane & 63u, v);
}

}  // namespace cfs
