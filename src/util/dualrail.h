// 64-pattern-wide three-valued words for bit-parallel simulation.
//
// A Word64 carries 64 independent three-valued values using one L rail and
// one H rail (same semantics as the scalar encoding in logic.h, one bit per
// lane).  The PROOFS-style baseline packs 64 faulty machines per word; the
// parallel-pattern good-machine simulator packs 64 input vectors per word.
#pragma once

#include <cstdint>

#include "util/logic.h"

namespace cfs {

struct Word64 {
  std::uint64_t l = 0;  ///< optimistic rail
  std::uint64_t h = 0;  ///< pessimistic rail

  friend bool operator==(const Word64&, const Word64&) = default;
};

/// All 64 lanes set to the same scalar value.
constexpr Word64 splat64(Val v) {
  const std::uint8_t c = code(v);
  return Word64{(c & 1u) ? ~0ull : 0ull, (c & 2u) ? ~0ull : 0ull};
}

constexpr Word64 w_and(Word64 a, Word64 b) {
  return {a.l & b.l, a.h & b.h};
}
constexpr Word64 w_or(Word64 a, Word64 b) { return {a.l | b.l, a.h | b.h}; }
constexpr Word64 w_not(Word64 a) { return {~a.h, ~a.l}; }
constexpr Word64 w_xor(Word64 a, Word64 b) {
  return w_or(w_and(a, w_not(b)), w_and(w_not(a), b));
}

/// Lanes where a and b hold an identical value (0==0, 1==1, X==X).
constexpr std::uint64_t w_eq(Word64 a, Word64 b) {
  return ~((a.l ^ b.l) | (a.h ^ b.h));
}

/// Lanes where both values are binary and complementary (hard difference).
constexpr std::uint64_t w_hard_diff(Word64 a, Word64 b) {
  const std::uint64_t a_bin = ~(a.l ^ a.h);  // lanes where a is 0 or 1
  const std::uint64_t b_bin = ~(b.l ^ b.h);
  return a_bin & b_bin & (a.l ^ b.l);
}

/// Lanes where the value is X.
constexpr std::uint64_t w_is_x(Word64 a) { return ~a.l & a.h; }

/// Lanes where the value is binary (0 or 1).
constexpr std::uint64_t w_is_binary(Word64 a) { return ~(a.l ^ a.h) ; }

/// Read lane `i` back as a scalar value.
constexpr Val w_get(Word64 a, unsigned i) {
  const std::uint8_t c = static_cast<std::uint8_t>(
      (((a.h >> i) & 1u) << 1) | ((a.l >> i) & 1u));
  return from_code(c);
}

/// Set lane `i` to a scalar value.
constexpr void w_set(Word64& a, unsigned i, Val v) {
  const std::uint64_t m = 1ull << i;
  const std::uint8_t c = code(v);
  a.l = (c & 1u) ? (a.l | m) : (a.l & ~m);
  a.h = (c & 2u) ? (a.h | m) : (a.h & ~m);
}

/// Blend: lanes in `mask` taken from `b`, others from `a`.
constexpr Word64 w_select(std::uint64_t mask, Word64 b, Word64 a) {
  return {(a.l & ~mask) | (b.l & mask), (a.h & ~mask) | (b.h & mask)};
}

}  // namespace cfs
