#include "util/strings.h"

#include <cctype>

namespace cfs {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(delim, pos);
    const std::string_view piece =
        trim(s.substr(pos, next == std::string_view::npos ? s.size() - pos
                                                          : next - pos));
    if (!piece.empty()) out.emplace_back(piece);
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return out;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace cfs
