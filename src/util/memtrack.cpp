#include "util/memtrack.h"

#include <cstdio>

namespace cfs {

void MemStats::sample(const std::string& category, std::size_t bytes) {
  for (auto& [name, b] : cats_) {
    if (name == category) {
      b = bytes;
      const std::size_t cur = current();
      if (cur > peak_) peak_ = cur;
      return;
    }
  }
  cats_.emplace_back(category, bytes);
  const std::size_t cur = current();
  if (cur > peak_) peak_ = cur;
}

std::size_t MemStats::current() const {
  std::size_t total = 0;
  for (const auto& [name, b] : cats_) total += b;
  return total;
}

void MemStats::reset() {
  cats_.clear();
  peak_ = 0;
}

std::string format_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof buf, "%.2fM",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ull) {
    std::snprintf(buf, sizeof buf, "%.1fK", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%zu", bytes);
  }
  return buf;
}

}  // namespace cfs
