// Three-valued logic primitives shared by every simulator in the library.
//
// All engines (good-machine, concurrent, serial, PROOFS-style, deductive)
// use the same dual-rail encoding so that their results are bit-for-bit
// comparable:
//
//   code = (H << 1) | L      L = "can be 1 in the optimistic rail"
//                            H = "can be 1 in the pessimistic rail"
//
//   0 -> L=0,H=0 -> code 0
//   X -> L=0,H=1 -> code 2
//   1 -> L=1,H=1 -> code 3
//
// Code 1 (L=1,H=0) is unreachable and normalised to X wherever external data
// could produce it.  The encoding makes AND a bitwise AND of codes, OR a
// bitwise OR, and NOT a rail swap-and-complement, both on scalar 2-bit codes
// and on 64-bit-wide rails (see dualrail.h).
#pragma once

#include <cstdint>
#include <string>

namespace cfs {

/// A single three-valued logic value in the dual-rail encoding above.
enum class Val : std::uint8_t {
  Zero = 0,
  X = 2,
  One = 3,
};

/// Raw 2-bit code of a value.
constexpr std::uint8_t code(Val v) { return static_cast<std::uint8_t>(v); }

/// Reconstruct a value from a 2-bit code; the invalid code 1 maps to X.
constexpr Val from_code(std::uint8_t c) {
  c &= 3u;
  return c == 1u ? Val::X : static_cast<Val>(c);
}

constexpr bool is_binary(Val v) { return v == Val::Zero || v == Val::One; }

/// Three-valued AND: bitwise AND of dual-rail codes.
constexpr Val v_and(Val a, Val b) {
  return static_cast<Val>(code(a) & code(b));
}

/// Three-valued OR: bitwise OR of dual-rail codes.
constexpr Val v_or(Val a, Val b) { return static_cast<Val>(code(a) | code(b)); }

/// Three-valued NOT: swap rails and complement, so NOT X == X.
constexpr Val v_not(Val a) {
  const std::uint8_t c = code(a);
  return static_cast<Val>((((~c) & 1u) << 1) | ((~c >> 1) & 1u));
}

/// Three-valued XOR (pessimistic: any X input yields X).
constexpr Val v_xor(Val a, Val b) {
  return v_or(v_and(a, v_not(b)), v_and(v_not(a), b));
}

/// Parse '0' / '1' / 'x' / 'X'; anything else is X.
constexpr Val val_from_char(char c) {
  switch (c) {
    case '0': return Val::Zero;
    case '1': return Val::One;
    default: return Val::X;
  }
}

constexpr char to_char(Val v) {
  switch (v) {
    case Val::Zero: return '0';
    case Val::One: return '1';
    default: return 'x';
  }
}

/// Render a vector-of-values style string ("01x1...") for diagnostics.
std::string vals_to_string(const Val* vals, std::size_t n);

}  // namespace cfs
