// Small string helpers used by the .bench parser and the table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cfs {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character, trimming each piece; empty pieces are
/// dropped.
std::vector<std::string> split(std::string_view s, char delim);

/// ASCII upper-case copy.
std::string upper(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace cfs
