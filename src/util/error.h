// Library-wide exception type.  Anything that rejects malformed input
// (netlist builder, .bench parser, pattern reader) throws cfs::Error with a
// human-readable message; internal invariants use assertions instead.
#pragma once

#include <stdexcept>
#include <string>

namespace cfs {

struct Error : std::runtime_error {
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace cfs
