// Deterministic pseudo-random source (SplitMix64 + xoshiro-style mixing).
//
// Everything that needs randomness -- the synthetic circuit generator, the
// random pattern generator, the property-test fuzzers -- goes through this
// so that every experiment and test is reproducible from its stated seed.
#pragma once

#include <cstdint>

namespace cfs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace cfs
