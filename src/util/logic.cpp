#include "util/logic.h"

namespace cfs {

std::string vals_to_string(const Val* vals, std::size_t n) {
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.push_back(to_char(vals[i]));
  return s;
}

}  // namespace cfs
