// Software-prefetch shim.
//
// The concurrent engine's inner loops chase 32-bit pool indices through
// chunked arenas: the address of the *next* list element is known one full
// element ahead of its use, which is exactly the window a prefetch hides.
// CFS_PREFETCH(addr) issues a read prefetch into all cache levels and
// compiles to nothing on toolchains without the builtin -- it is a hint,
// never a semantic operation, so callers may pass addresses speculatively
// (e.g. the slot a sentinel's self-link points at).
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define CFS_PREFETCH(addr) __builtin_prefetch((addr), 0 /*read*/, 3 /*keep*/)
#else
#define CFS_PREFETCH(addr) ((void)0)
#endif
