// Fixed-size fork-join worker pool.
//
// parallel_for(count, fn) runs fn(0) ... fn(count-1) across the pool's
// workers *and the calling thread*, returning when every call has finished;
// the first exception thrown by any call is rethrown in the caller.  A pool
// of size 1 owns no threads at all and degenerates to a plain loop, so the
// single-threaded path has exactly the cost of the loop body.
//
// Workers are started once and parked on a condition variable between
// parallel_for calls -- per-vector fork-join (the sharded simulator's inner
// loop) must not pay a thread spawn per call.  Indices are claimed from a
// shared atomic counter, so uneven per-index cost balances automatically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cfs {

class ThreadPool {
 public:
  /// A pool that runs work on `num_threads` threads total: the caller plus
  /// `num_threads - 1` workers.  0 is treated as 1.
  explicit ThreadPool(unsigned num_threads)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {
    workers_.reserve(num_threads_ - 1);
    for (unsigned i = 1; i < num_threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in parallel_for (caller included).
  unsigned size() const { return num_threads_; }

  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      done_ = 0;
      error_ = nullptr;
      count_.store(count, std::memory_order_relaxed);
      // The release store workers synchronise on: claiming an index via
      // next_ makes fn_/count_ visible.
      next_.store(0, std::memory_order_release);
      ++generation_;
    }
    work_cv_.notify_all();
    run_slice();
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_ == count_.load(); });
    fn_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      run_slice();
    }
  }

  void run_slice() {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
      if (i >= count_.load(std::memory_order_acquire)) return;
      try {
        (*fn_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (++done_ == count_.load(std::memory_order_relaxed)) {
        done_cv_.notify_all();
      }
    }
  }

  const unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;

  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> count_{0};
  std::size_t done_ = 0;
  std::exception_ptr error_;
};

}  // namespace cfs
