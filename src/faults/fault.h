// Fault model shared by every simulator.
//
// Stuck-at faults sit on gate outputs or gate input pins.  Transition
// (gross-delay) faults sit on gate input pins, one slow-to-rise and one
// slow-to-fall per pin (paper §3).  A fault id is its index in the
// FaultUniverse; the *fault descriptor* of the paper corresponds to the
// per-id entries kept by the engines (detection status, functional table,
// ...) -- the universe itself carries only the site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "util/logic.h"

namespace cfs {

/// Pin index denoting the gate output (mirrors sim/good_sim.h's kOutPin but
/// lives here so fault code need not depend on the simulator).
inline constexpr std::uint16_t kFaultOutPin = 0xFFFF;

enum class FaultType : std::uint8_t {
  StuckAt,     ///< line permanently at `value`
  Transition,  ///< transition *towards* `value` is delayed past the sample
};

struct Fault {
  FaultType type = FaultType::StuckAt;
  GateId gate = kNoGate;
  std::uint16_t pin = kFaultOutPin;  ///< kFaultOutPin or input pin index
  Val value = Val::Zero;  ///< stuck value; for Transition the *destination*
                          ///< of the delayed transition (One = slow-to-rise)

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Human-readable "G17/O s-a-0" / "G8.1 str" style description.
std::string describe_fault(const Circuit& c, const Fault& f);

class FaultUniverse {
 public:
  /// Full stuck-at universe: both polarities on every gate output, plus both
  /// polarities on every input pin whose driver has fanout > 1 (a pin on a
  /// single-fanout net is functionally identical to the driver's output
  /// fault, so enumerating it would double-count).
  static FaultUniverse all_stuck_at(const Circuit& c);

  /// Transition universe: slow-to-rise and slow-to-fall on every input pin
  /// of every gate (including DFF D pins).
  static FaultUniverse all_transition(const Circuit& c);

  std::size_t size() const { return faults_.size(); }
  const Fault& operator[](std::uint32_t id) const { return faults_[id]; }
  const std::vector<Fault>& faults() const { return faults_; }

  void add(const Fault& f) { faults_.push_back(f); }

 private:
  std::vector<Fault> faults_;
};

/// Structural equivalence collapsing.  Returns, for each fault id, the id of
/// its class representative (the smallest member).  Merges the classic
/// within-gate equivalences: AND in-s-a-0 == out-s-a-0, NAND in-s-a-0 ==
/// out-s-a-1, OR in-s-a-1 == out-s-a-1, NOR in-s-a-1 == out-s-a-0, and the
/// BUF/NOT pass-through/inversion pairs.  Only meaningful for stuck-at
/// universes.
std::vector<std::uint32_t> collapse_equivalent(const Circuit& c,
                                               const FaultUniverse& u);

/// Detection status per fault.
enum class Detect : std::uint8_t {
  None = 0,
  Potential = 1,  ///< good PO binary, faulty PO X at some sample
  Hard = 2,       ///< good PO binary, faulty PO its complement
};

/// Coverage bookkeeping over a universe (optionally restricted to the
/// representatives of a collapsing).
struct Coverage {
  std::size_t total = 0;
  std::size_t hard = 0;
  std::size_t potential = 0;

  double pct() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(hard) /
                                  static_cast<double>(total);
  }
};

Coverage summarize(const std::vector<Detect>& status);

}  // namespace cfs
