#include "faults/macro_map.h"

#include <string>
#include <unordered_map>

#include "util/error.h"

namespace cfs {

MacroFaultMap map_faults_to_macros(const Circuit& orig,
                                   const MacroExtraction& ext,
                                   const FaultUniverse& u) {
  MacroFaultMap out;
  out.mapped.resize(u.size());
  // Many faults inside one region induce the *same* faulty function (all
  // controlling-value input faults of a gate, equivalent internal faults,
  // ...): share one table per distinct function ("each fault descriptor
  // holds an adequate look up table entry", paper §2.2).
  std::unordered_map<std::string, std::uint32_t> dedup;
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const Fault& f = u[id];
    if (f.type != FaultType::StuckAt) {
      throw Error("map_faults_to_macros: only stuck-at universes supported");
    }
    MappedFault& m = out.mapped[id];
    m.value = f.value;
    const std::uint32_t mi = ext.macro_of[f.gate];
    const bool is_root =
        mi != kNoGate && ext.macros[mi].root == f.gate;
    if (mi == kNoGate) {
      // Site untouched by extraction; pin order is preserved for survivors.
      m.gate = ext.gate_map[f.gate];
      m.pin = f.pin;
      continue;
    }
    const MacroInfo& macro = ext.macros[mi];
    m.gate = macro.macro_gate;
    if (is_root && f.pin == kFaultOutPin) {
      // The root's output *is* the macro's output: stays a plain stuck-at.
      m.pin = kFaultOutPin;
      continue;
    }
    // Functional fault: faulty truth table over the macro's external pins.
    m.pin = kFaultOutPin;  // evaluated at the macro; pin is irrelevant
    TruthTable t =
        build_macro_table_faulty(orig, macro, f.gate, f.pin, f.value);
    const TruthTable& good = ext.circuit.table(ext.circuit.table_of(m.gate));
    m.masked = t.out == good.out;
    ++out.num_functional;
    if (m.masked) ++out.num_masked;
    // Key: macro gate id + function (gates can share table *contents* but
    // not arity/semantics across different macros of equal width -- the
    // gate id keeps the key exact and cheap).
    std::string key = std::to_string(m.gate);
    key.push_back('\0');  // unambiguous id/contents boundary
    key.append(reinterpret_cast<const char*>(t.out.data()), t.out.size());
    const auto [it, inserted] =
        dedup.emplace(std::move(key), static_cast<std::uint32_t>(out.tables.size()));
    if (inserted) out.tables.push_back(std::move(t));
    m.table = it->second;
  }
  return out;
}

}  // namespace cfs
