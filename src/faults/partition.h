// Balanced partition of a fault universe into disjoint shards.
//
// Once the good machine is fixed, every faulty machine is independent: the
// concurrent simulator's verdict for a fault does not depend on which other
// faults share its engine.  Any disjoint cover of the universe is therefore
// a correct unit of parallelism.  Faults start out assigned round-robin by
// id (`id % num_shards`): shard sizes differ by at most one, the faults of
// a hot site spread across shards, and the assignment is a pure function of
// (universe size, shard count) -- so a sharded run is reproducible without
// storing the partition.
//
// The partition can later be *re*-weighted: `partition_by_weight` replaces
// the round-robin assignment with a greedy LPT (longest-processing-time)
// bin packing over caller-supplied per-fault weights (live fault-list
// elements in practice).  The packing is a pure function of the weight
// vector -- ties broken by fault id and by lowest shard index -- so two
// runs that observe the same weights repartition identically.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.h"

namespace cfs {

class FaultPartition {
 public:
  /// Partition fault ids [0, num_faults) into `num_shards` shards.
  /// `num_shards` is clamped to at least 1.
  FaultPartition(std::size_t num_faults, unsigned num_shards);

  unsigned num_shards() const { return num_shards_; }
  std::size_t num_faults() const { return num_faults_; }

  /// Shard owning fault `id`.
  unsigned shard_of(std::uint32_t id) const {
    return owner_.empty() ? id % num_shards_ : owner_[id];
  }

  /// True once partition_by_weight has replaced the round-robin map.
  bool weighted() const { return !owner_.empty(); }

  /// Sorted fault ids owned by shard `s`.
  const std::vector<std::uint32_t>& shard(unsigned s) const {
    return shards_[s];
  }

  /// Faults owned by shard `s` (the per-shard universe size; used to size
  /// element pools before the first vector runs and again after each
  /// repartition).
  std::size_t shard_size(unsigned s) const { return shards_[s].size(); }

  /// Reassign ownership by greedy LPT bin packing of `weights` (one
  /// non-negative weight per fault; size must equal num_faults(), throws
  /// otherwise).  Faults are placed heaviest-first (ties: lower id first)
  /// onto the least-loaded shard (ties: lowest shard index), which is
  /// deterministic for a given weight vector.  Returns the number of
  /// faults whose owner changed.
  std::size_t partition_by_weight(const std::vector<std::uint64_t>& weights);

  /// Deterministic merge of shard-local detection arrays: each fault's
  /// status is read from its owner shard, so the result is independent of
  /// thread scheduling.  Every array must cover the full universe (size
  /// num_faults()); throws otherwise.
  std::vector<Detect> merge(
      const std::vector<const std::vector<Detect>*>& per_shard) const;

 private:
  std::size_t num_faults_;
  unsigned num_shards_;
  std::vector<std::vector<std::uint32_t>> shards_;
  // Per-fault owner shard; empty while the round-robin map is in force.
  std::vector<std::uint32_t> owner_;
};

}  // namespace cfs
