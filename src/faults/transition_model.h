// The transition (gross-delay) fault model's value relation -- the paper's
// Table 1, shared by every engine that simulates transition faults so their
// results are comparable bit for bit.
//
// A pin whose transition towards `target` is delayed past the sampling
// moment shows, at sample time, the *previous* settled value whenever that
// transition would be under way:
//
//   pv == ~T : the pin was at ~T; whether or not a T-transition is arriving,
//              the sample still reads ~T (either it is delayed, or there was
//              no transition).
//   pv ==  T : no transition towards T can start from T; the arriving value
//              passes through.
//   pv ==  X : the two binary possibilities agree only when the arriving
//              value is ~T (both read ~T); otherwise the sample is X.
#pragma once

#include "util/logic.h"

namespace cfs {

constexpr Val transition_hold_value(Val pv, Val cv, Val target) {
  const Val not_t = v_not(target);
  if (pv == not_t) return not_t;
  if (pv == target) return cv;
  return cv == not_t ? not_t : Val::X;  // pv == X
}

}  // namespace cfs
