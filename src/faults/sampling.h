// Fault sampling and collapsed-universe helpers.
//
// Two classic fault-simulation cost reducers:
//  - *sampling*: estimate coverage from a random subset of the universe
//    (the standard error of the estimate shrinks as 1/sqrt(n));
//  - *collapsed simulation*: simulate only one representative per
//    structural-equivalence class and expand the verdict to the class.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.h"

namespace cfs {

/// Uniform random sample (without replacement) of `n` fault ids from `u`.
/// Returns sorted ids; n is clamped to the universe size.
std::vector<std::uint32_t> sample_faults(const FaultUniverse& u,
                                         std::size_t n, std::uint64_t seed);

/// Universe restricted to the given (sorted) ids, plus the id map back.
struct SubUniverse {
  FaultUniverse universe;               ///< re-indexed faults
  std::vector<std::uint32_t> original;  ///< sub id -> original id
};
SubUniverse restrict_universe(const FaultUniverse& u,
                              const std::vector<std::uint32_t>& ids);

/// Universe of class representatives under `rep` (from collapse_equivalent),
/// with the map back to representatives' original ids.
SubUniverse representative_universe(const FaultUniverse& u,
                                    const std::vector<std::uint32_t>& rep);

/// Expand per-representative detection status to the full universe: every
/// fault inherits its class representative's status.
std::vector<Detect> expand_to_classes(const std::vector<Detect>& rep_status,
                                      const SubUniverse& reps,
                                      const std::vector<std::uint32_t>& rep);

}  // namespace cfs
