#include "faults/sampling.h"

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace cfs {

std::vector<std::uint32_t> sample_faults(const FaultUniverse& u,
                                         std::size_t n, std::uint64_t seed) {
  n = std::min(n, u.size());
  // Partial Fisher-Yates over the id range.
  std::vector<std::uint32_t> ids(u.size());
  for (std::uint32_t i = 0; i < u.size(); ++i) ids[i] = i;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng.below(ids.size() - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(n);
  std::sort(ids.begin(), ids.end());
  return ids;
}

SubUniverse restrict_universe(const FaultUniverse& u,
                              const std::vector<std::uint32_t>& ids) {
  SubUniverse out;
  out.original = ids;
  for (std::uint32_t id : ids) {
    if (id >= u.size()) throw Error("restrict_universe: id out of range");
    out.universe.add(u[id]);
  }
  return out;
}

SubUniverse representative_universe(const FaultUniverse& u,
                                    const std::vector<std::uint32_t>& rep) {
  if (rep.size() != u.size()) {
    throw Error("representative_universe: rep map size mismatch");
  }
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < u.size(); ++i) {
    if (rep[i] == i) ids.push_back(i);
  }
  return restrict_universe(u, ids);
}

std::vector<Detect> expand_to_classes(const std::vector<Detect>& rep_status,
                                      const SubUniverse& reps,
                                      const std::vector<std::uint32_t>& rep) {
  if (rep_status.size() != reps.original.size()) {
    throw Error("expand_to_classes: status size mismatch");
  }
  // Representative original id -> its status.
  std::vector<Detect> by_original(rep.size(), Detect::None);
  for (std::size_t i = 0; i < reps.original.size(); ++i) {
    by_original[reps.original[i]] = rep_status[i];
  }
  std::vector<Detect> out(rep.size());
  for (std::size_t i = 0; i < rep.size(); ++i) out[i] = by_original[rep[i]];
  return out;
}

}  // namespace cfs
