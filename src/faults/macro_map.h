// Mapping a stuck-at fault universe onto a macro-extracted circuit.
//
// "When reconvergent macros are used, stuck at faults may be translated
// into functional faults which can be represented by look up table entries.
// The functional faults can be evaluated efficiently because each fault
// descriptor holds an adequate look up table entry corresponding [to] the
// fault." (paper §2.2)
//
// Every fault keeps its original id; only its *site* moves:
//  - site gate survives unchanged        -> same (gate, pin) in the new ids
//  - site is a macro root's output       -> the macro gate's output
//  - site is inside a macro (any pin or a swallowed gate) -> a functional
//    fault: the macro gate plus a private faulty truth table
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.h"
#include "netlist/macro_extract.h"

namespace cfs {

struct MappedFault {
  GateId gate = kNoGate;             ///< site gate in the extracted circuit
  std::uint16_t pin = kFaultOutPin;  ///< pin in the extracted circuit
  Val value = Val::Zero;
  /// Index into MacroFaultMap::tables for functional faults, else kNoGate.
  std::uint32_t table = kNoGate;
  /// True when the faulty macro function equals the good function: the fault
  /// is undetectable (masked inside its fanout-free region).
  bool masked = false;
};

struct MacroFaultMap {
  std::vector<MappedFault> mapped;  ///< index == original fault id
  std::vector<TruthTable> tables;   ///< faulty tables for functional faults
  std::size_t num_functional = 0;
  std::size_t num_masked = 0;

  std::size_t bytes() const {
    std::size_t b = mapped.capacity() * sizeof(MappedFault);
    for (const TruthTable& t : tables) b += t.bytes();
    return b;
  }
};

/// Map a stuck-at universe of the *original* circuit onto the extracted
/// circuit.  Throws for transition faults (macros carry no temporal model).
MacroFaultMap map_faults_to_macros(const Circuit& orig,
                                   const MacroExtraction& ext,
                                   const FaultUniverse& u);

}  // namespace cfs
