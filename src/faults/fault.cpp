#include "faults/fault.h"

#include <numeric>

namespace cfs {

std::string describe_fault(const Circuit& c, const Fault& f) {
  std::string s = c.gate_name(f.gate);
  if (f.pin == kFaultOutPin) {
    s += "/O";
  } else {
    s += "." + std::to_string(f.pin);
  }
  if (f.type == FaultType::StuckAt) {
    s += " s-a-";
    s += to_char(f.value);
  } else {
    s += f.value == Val::One ? " str" : " stf";
  }
  return s;
}

FaultUniverse FaultUniverse::all_stuck_at(const Circuit& c) {
  FaultUniverse u;
  for (GateId g = 0; g < c.num_gates(); ++g) {
    u.add({FaultType::StuckAt, g, kFaultOutPin, Val::Zero});
    u.add({FaultType::StuckAt, g, kFaultOutPin, Val::One});
    const auto fi = c.fanins(g);
    for (std::size_t p = 0; p < fi.size(); ++p) {
      if (c.num_fanouts(fi[p]) > 1) {
        u.add({FaultType::StuckAt, g, static_cast<std::uint16_t>(p),
               Val::Zero});
        u.add({FaultType::StuckAt, g, static_cast<std::uint16_t>(p),
               Val::One});
      }
    }
  }
  return u;
}

FaultUniverse FaultUniverse::all_transition(const Circuit& c) {
  FaultUniverse u;
  for (GateId g = 0; g < c.num_gates(); ++g) {
    const auto fi = c.fanins(g);
    for (std::size_t p = 0; p < fi.size(); ++p) {
      u.add({FaultType::Transition, g, static_cast<std::uint16_t>(p),
             Val::One});   // slow-to-rise
      u.add({FaultType::Transition, g, static_cast<std::uint16_t>(p),
             Val::Zero});  // slow-to-fall
    }
  }
  return u;
}

namespace {

struct UnionFind {
  std::vector<std::uint32_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;  // smaller id becomes the representative
  }
};

}  // namespace

std::vector<std::uint32_t> collapse_equivalent(const Circuit& c,
                                               const FaultUniverse& u) {
  // Per-gate fault index so site lookups stay linear in local fault count.
  std::vector<std::vector<std::uint32_t>> by_gate(c.num_gates());
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    by_gate[u[id].gate].push_back(id);
  }
  auto find_fault = [&](GateId gate, std::uint16_t pin,
                        Val value) -> std::uint32_t {
    for (std::uint32_t id : by_gate[gate]) {
      const Fault& f = u[id];
      if (f.pin == pin && f.value == value && f.type == FaultType::StuckAt) {
        return id;
      }
    }
    return 0xFFFFFFFFu;
  };

  UnionFind uf(u.size());
  // Resolve a (gate, pin, value) site to its fault id.  A pin on a
  // single-fanout net is not enumerated in the universe; the same physical
  // line is represented by the driver's output fault, so chase through it --
  // this also chains equivalences across BUF/NOT/controlling-value paths.
  auto site_id = [&](GateId g, std::uint16_t p, Val v) -> std::uint32_t {
    if (p != kFaultOutPin) {
      const GateId driver = c.fanins(g)[p];
      // A primary output is an extra observation point: the stem fault is
      // then distinguishable from the (un-enumerated) pin fault, so the
      // chase is invalid.
      if (c.num_fanouts(driver) == 1 && !c.is_po(driver)) {
        return find_fault(driver, kFaultOutPin, v);
      }
    }
    return find_fault(g, p, v);
  };
  auto unite_sites = [&](GateId g1, std::uint16_t p1, Val v1, GateId g2,
                         std::uint16_t p2, Val v2) {
    const std::uint32_t a = site_id(g1, p1, v1);
    const std::uint32_t b = site_id(g2, p2, v2);
    if (a != 0xFFFFFFFFu && b != 0xFFFFFFFFu) uf.unite(a, b);
  };

  for (GateId g = 0; g < c.num_gates(); ++g) {
    const unsigned nf = c.num_fanins(g);
    switch (c.kind(g)) {
      case GateKind::And:
        for (unsigned p = 0; p < nf; ++p) {
          unite_sites(g, static_cast<std::uint16_t>(p), Val::Zero, g,
                      kFaultOutPin, Val::Zero);
        }
        break;
      case GateKind::Nand:
        for (unsigned p = 0; p < nf; ++p) {
          unite_sites(g, static_cast<std::uint16_t>(p), Val::Zero, g,
                      kFaultOutPin, Val::One);
        }
        break;
      case GateKind::Or:
        for (unsigned p = 0; p < nf; ++p) {
          unite_sites(g, static_cast<std::uint16_t>(p), Val::One, g,
                      kFaultOutPin, Val::One);
        }
        break;
      case GateKind::Nor:
        for (unsigned p = 0; p < nf; ++p) {
          unite_sites(g, static_cast<std::uint16_t>(p), Val::One, g,
                      kFaultOutPin, Val::Zero);
        }
        break;
      case GateKind::Buf:
        unite_sites(g, 0, Val::Zero, g, kFaultOutPin, Val::Zero);
        unite_sites(g, 0, Val::One, g, kFaultOutPin, Val::One);
        break;
      case GateKind::Not:
        unite_sites(g, 0, Val::Zero, g, kFaultOutPin, Val::One);
        unite_sites(g, 0, Val::One, g, kFaultOutPin, Val::Zero);
        break;
      default:
        break;  // XOR/XNOR/DFF/Macro/Input: no structural equivalences
    }
  }

  std::vector<std::uint32_t> rep(u.size());
  for (std::uint32_t id = 0; id < u.size(); ++id) rep[id] = uf.find(id);
  return rep;
}

Coverage summarize(const std::vector<Detect>& status) {
  Coverage cov;
  cov.total = status.size();
  for (Detect d : status) {
    if (d == Detect::Hard) ++cov.hard;
    if (d == Detect::Potential) ++cov.potential;
  }
  return cov;
}

}  // namespace cfs
