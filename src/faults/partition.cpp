#include "faults/partition.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace cfs {

FaultPartition::FaultPartition(std::size_t num_faults, unsigned num_shards)
    : num_faults_(num_faults), num_shards_(num_shards == 0 ? 1 : num_shards) {
  shards_.resize(num_shards_);
  const std::size_t per = num_faults_ / num_shards_ + 1;
  for (auto& s : shards_) s.reserve(per);
  for (std::uint32_t id = 0; id < num_faults_; ++id) {
    shards_[id % num_shards_].push_back(id);
  }
}

std::size_t FaultPartition::partition_by_weight(
    const std::vector<std::uint64_t>& weights) {
  if (weights.size() != num_faults_) {
    throw Error("FaultPartition::partition_by_weight: expected " +
                std::to_string(num_faults_) + " weights, got " +
                std::to_string(weights.size()));
  }
  // LPT order: heaviest first, fault id breaks ties.  The order is a pure
  // function of the weight vector, so the packing is too.
  std::vector<std::uint32_t> order(num_faults_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&weights](std::uint32_t a, std::uint32_t b) {
              if (weights[a] != weights[b]) return weights[a] > weights[b];
              return a < b;
            });

  std::vector<std::uint32_t> next(num_faults_);
  std::vector<std::uint64_t> load(num_shards_, 0);
  for (std::uint32_t id : order) {
    unsigned best = 0;
    for (unsigned s = 1; s < num_shards_; ++s) {
      if (load[s] < load[best]) best = s;  // lowest index wins ties
    }
    next[id] = best;
    load[best] += weights[id];
  }

  std::size_t moved = 0;
  for (std::uint32_t id = 0; id < num_faults_; ++id) {
    if (next[id] != shard_of(id)) ++moved;
  }
  owner_ = std::move(next);
  for (auto& s : shards_) s.clear();
  for (std::uint32_t id = 0; id < num_faults_; ++id) {
    shards_[owner_[id]].push_back(id);  // ascending id: shard() stays sorted
  }
  return moved;
}

std::vector<Detect> FaultPartition::merge(
    const std::vector<const std::vector<Detect>*>& per_shard) const {
  if (per_shard.size() != num_shards_) {
    throw Error("FaultPartition::merge: expected " +
                std::to_string(num_shards_) + " shard arrays, got " +
                std::to_string(per_shard.size()));
  }
  for (const auto* s : per_shard) {
    if (s == nullptr || s->size() != num_faults_) {
      throw Error("FaultPartition::merge: shard array does not cover the "
                  "universe");
    }
  }
  std::vector<Detect> out(num_faults_);
  for (std::uint32_t id = 0; id < num_faults_; ++id) {
    out[id] = (*per_shard[shard_of(id)])[id];
  }
  return out;
}

}  // namespace cfs
