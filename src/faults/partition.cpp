#include "faults/partition.h"

#include "util/error.h"

namespace cfs {

FaultPartition::FaultPartition(std::size_t num_faults, unsigned num_shards)
    : num_faults_(num_faults), num_shards_(num_shards == 0 ? 1 : num_shards) {
  shards_.resize(num_shards_);
  const std::size_t per = num_faults_ / num_shards_ + 1;
  for (auto& s : shards_) s.reserve(per);
  for (std::uint32_t id = 0; id < num_faults_; ++id) {
    shards_[id % num_shards_].push_back(id);
  }
}

std::vector<Detect> FaultPartition::merge(
    const std::vector<const std::vector<Detect>*>& per_shard) const {
  if (per_shard.size() != num_shards_) {
    throw Error("FaultPartition::merge: expected " +
                std::to_string(num_shards_) + " shard arrays, got " +
                std::to_string(per_shard.size()));
  }
  for (const auto* s : per_shard) {
    if (s == nullptr || s->size() != num_faults_) {
      throw Error("FaultPartition::merge: shard array does not cover the "
                  "universe");
    }
  }
  std::vector<Detect> out(num_faults_);
  for (std::uint32_t id = 0; id < num_faults_; ++id) {
    out[id] = (*per_shard[id % num_shards_])[id];
  }
  return out;
}

}  // namespace cfs
