#include "harness/runner.h"

#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"
#include "netlist/macro_extract.h"
#include "util/stopwatch.h"

namespace cfs {

std::string variant_name(CsimVariant v) {
  switch (v) {
    case CsimVariant::Plain: return "csim";
    case CsimVariant::V: return "csim-V";
    case CsimVariant::M: return "csim-M";
    case CsimVariant::MV: return "csim-MV";
  }
  return "?";
}

namespace {

// Apply a test suite through any engine exposing reset(Val) and
// apply_vector(span): one reset per sequence.
template <typename Engine>
double apply_suite(Engine& sim, const TestSuite& t, Val ff_init) {
  Stopwatch sw;
  for (const PatternSet& seq : t.sequences()) {
    sim.reset(ff_init);
    for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
  }
  return sw.seconds();
}

}  // namespace

RunResult run_csim(const Circuit& c, const FaultUniverse& u,
                   const TestSuite& t, CsimVariant variant, Val ff_init,
                   bool drop_detected) {
  RunResult r;
  r.sim_name = variant_name(variant);

  CsimOptions opt;
  opt.split_lists = variant == CsimVariant::V || variant == CsimVariant::MV;
  opt.drop_detected = drop_detected;
  const bool use_macros =
      variant == CsimVariant::M || variant == CsimVariant::MV;

  if (use_macros) {
    MacroExtraction ext = extract_macros(c);
    MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
    ConcurrentSim sim(ext.circuit, u, opt, &mmap);
    r.cpu_s = apply_suite(sim, t, ff_init);
    r.mem_bytes = sim.bytes() + ext.circuit.bytes();
    r.cov = sim.coverage();
    r.activity = sim.elements_evaluated();
  } else {
    ConcurrentSim sim(c, u, opt);
    r.cpu_s = apply_suite(sim, t, ff_init);
    r.mem_bytes = sim.bytes() + c.bytes();
    r.cov = sim.coverage();
    r.activity = sim.elements_evaluated();
  }
  return r;
}

RunResult run_proofs(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, Val ff_init) {
  RunResult r;
  r.sim_name = "PROOFS";
  ProofsSim sim(c, u, ff_init);
  r.cpu_s = apply_suite(sim, t, ff_init);
  r.mem_bytes = sim.bytes() + c.bytes();
  r.cov = sim.coverage();
  r.activity = sim.word_evals();
  return r;
}

RunResult run_serial(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, Val ff_init) {
  RunResult r;
  r.sim_name = "serial";
  SerialOptions opt;
  opt.ff_init = ff_init;
  Stopwatch sw;
  const SerialResult sr = serial_fault_sim(c, u, t, opt);
  r.cpu_s = sw.seconds();
  r.mem_bytes = c.bytes();
  r.cov = summarize(sr.status);
  r.activity = sr.events;
  return r;
}

RunResult run_csim_sharded(const Circuit& c, const FaultUniverse& u,
                           const TestSuite& t, CsimVariant variant,
                           unsigned num_threads, Val ff_init,
                           bool drop_detected) {
  RunResult r;
  ShardedOptions sopt;
  sopt.num_threads = num_threads;
  sopt.csim.split_lists =
      variant == CsimVariant::V || variant == CsimVariant::MV;
  sopt.csim.drop_detected = drop_detected;
  const bool use_macros =
      variant == CsimVariant::M || variant == CsimVariant::MV;

  auto run_one = [&](ShardedSim& sim, std::size_t extra_bytes) {
    Stopwatch sw;
    sim.run(t, ff_init);
    r.cpu_s = sw.seconds();
    r.threads = sim.num_shards();
    r.sim_name = variant_name(variant) + " x" + std::to_string(r.threads);
    r.mem_bytes = sim.bytes() + extra_bytes;
    r.cov = sim.coverage();
    r.stats = sim.stats();
    r.activity = r.stats.total.elements_evaluated;
  };

  if (use_macros) {
    MacroExtraction ext = extract_macros(c);
    MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
    ShardedSim sim(ext.circuit, u, sopt, &mmap);
    run_one(sim, ext.circuit.bytes());
  } else {
    ShardedSim sim(c, u, sopt);
    run_one(sim, c.bytes());
  }
  return r;
}

RunResult run_csim_transition_sharded(const Circuit& c,
                                      const FaultUniverse& u,
                                      const TestSuite& t,
                                      unsigned num_threads, Val ff_init,
                                      bool split_lists) {
  RunResult r;
  ShardedOptions sopt;
  sopt.num_threads = num_threads;
  sopt.csim.split_lists = split_lists;
  ShardedSim sim(c, u, sopt);
  Stopwatch sw;
  sim.run(t, ff_init);
  r.cpu_s = sw.seconds();
  r.threads = sim.num_shards();
  r.sim_name = std::string(split_lists ? "csim-V" : "csim") +
               " (transition) x" + std::to_string(r.threads);
  r.mem_bytes = sim.bytes() + c.bytes();
  r.cov = sim.coverage();
  r.stats = sim.stats();
  r.activity = r.stats.total.elements_evaluated;
  return r;
}

RunResult run_csim_transition(const Circuit& c, const FaultUniverse& u,
                              const TestSuite& t, Val ff_init,
                              bool split_lists) {
  RunResult r;
  r.sim_name = split_lists ? "csim-V (transition)" : "csim (transition)";
  CsimOptions opt;
  opt.split_lists = split_lists;
  ConcurrentSim sim(c, u, opt);
  r.cpu_s = apply_suite(sim, t, ff_init);
  r.mem_bytes = sim.bytes() + c.bytes();
  r.cov = sim.coverage();
  r.activity = sim.elements_evaluated();
  return r;
}

}  // namespace cfs
