#include "harness/runner.h"

#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"
#include "netlist/macro_extract.h"
#include "obs/timers.h"

namespace cfs {

std::string variant_name(CsimVariant v) {
  switch (v) {
    case CsimVariant::Plain: return "csim";
    case CsimVariant::V: return "csim-V";
    case CsimVariant::M: return "csim-M";
    case CsimVariant::MV: return "csim-MV";
  }
  return "?";
}

namespace {

// Apply a test suite through any engine exposing reset(Val) and
// apply_vector(span): one reset per sequence.  The whole suite runs inside
// the Run phase of `rt`, the same accumulator the telemetry export reads,
// so the tables' CPU column and the stats JSON cannot disagree.
template <typename Engine>
double apply_suite(Engine& sim, const TestSuite& t, Val ff_init,
                   obs::PhaseTimers& rt) {
  {
    obs::ScopedPhase sp(rt, obs::Phase::Run);
    for (const PatternSet& seq : t.sequences()) {
      sim.reset(ff_init);
      for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
    }
  }
  return rt.seconds(obs::Phase::Run);
}

// Single-engine runs fill the same SimStats shape the sharded driver
// reports, so every csim RunResult carries counters and phase timers.
SimStats one_engine_stats(const ConcurrentSim& sim) {
  SimStats st;
  EngineStats es;
  es.gates_processed = sim.gates_processed();
  es.elements_evaluated = sim.elements_evaluated();
  es.vectors_simulated = sim.vectors_simulated();
  es.faults_dropped = sim.faults_dropped();
  es.peak_elements = sim.peak_elements();
  es.state_bytes = sim.state_bytes();
  es.counters = sim.counters();
  es.timers = sim.timers();
  st.total = es;
  st.per_engine.push_back(std::move(es));
  st.model_bytes = sim.model().bytes();
  st.circuit_bytes = sim.circuit().bytes();
  return st;
}

}  // namespace

RunResult run_csim(const Circuit& c, const FaultUniverse& u,
                   const TestSuite& t, CsimVariant variant, Val ff_init,
                   bool drop_detected) {
  RunResult r;
  r.sim_name = variant_name(variant);

  CsimOptions opt;
  opt.split_lists = variant == CsimVariant::V || variant == CsimVariant::MV;
  opt.drop_detected = drop_detected;
  const bool use_macros =
      variant == CsimVariant::M || variant == CsimVariant::MV;

  if (use_macros) {
    MacroExtraction ext = extract_macros(c);
    MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
    ConcurrentSim sim(ext.circuit, u, opt, &mmap);
    r.cpu_s = apply_suite(sim, t, ff_init, r.run_timers);
    r.mem_bytes = sim.bytes() + ext.circuit.bytes();
    r.cov = sim.coverage();
    r.activity = sim.elements_evaluated();
    r.stats = one_engine_stats(sim);
  } else {
    ConcurrentSim sim(c, u, opt);
    r.cpu_s = apply_suite(sim, t, ff_init, r.run_timers);
    r.mem_bytes = sim.bytes() + c.bytes();
    r.cov = sim.coverage();
    r.activity = sim.elements_evaluated();
    r.stats = one_engine_stats(sim);
  }
  return r;
}

RunResult run_proofs(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, Val ff_init) {
  RunResult r;
  r.sim_name = "PROOFS";
  ProofsSim sim(c, u, ff_init);
  r.cpu_s = apply_suite(sim, t, ff_init, r.run_timers);
  r.mem_bytes = sim.bytes() + c.bytes();
  r.cov = sim.coverage();
  r.activity = sim.word_evals();
  return r;
}

RunResult run_serial(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, Val ff_init) {
  RunResult r;
  r.sim_name = "serial";
  SerialOptions opt;
  opt.ff_init = ff_init;
  SerialResult sr;
  {
    obs::ScopedPhase sp(r.run_timers, obs::Phase::Run);
    sr = serial_fault_sim(c, u, t, opt);
  }
  r.cpu_s = r.run_timers.seconds(obs::Phase::Run);
  r.mem_bytes = c.bytes();
  r.cov = summarize(sr.status);
  r.activity = sr.events;
  return r;
}

RunResult run_csim_sharded(const Circuit& c, const FaultUniverse& u,
                           const TestSuite& t, CsimVariant variant,
                           unsigned num_threads, Val ff_init,
                           bool drop_detected, obs::TraceEmitter* trace,
                           unsigned batch_width, obs::Timeline* timeline,
                           const RebalancePolicy& rebalance) {
  RunResult r;
  r.batch = batch_width;
  ShardedOptions sopt;
  sopt.num_threads = num_threads;
  sopt.batch_width = batch_width;
  sopt.rebalance = rebalance;
  sopt.csim.split_lists =
      variant == CsimVariant::V || variant == CsimVariant::MV;
  sopt.csim.drop_detected = drop_detected;
  const bool use_macros =
      variant == CsimVariant::M || variant == CsimVariant::MV;

  auto run_one = [&](ShardedSim& sim, std::size_t extra_bytes) {
    if (trace != nullptr) sim.set_trace(trace);
    if (timeline != nullptr) sim.set_timeline(timeline);
    {
      obs::ScopedPhase sp(r.run_timers, obs::Phase::Run);
      sim.run(t, ff_init);
    }
    r.cpu_s = r.run_timers.seconds(obs::Phase::Run);
    r.threads = sim.num_shards();
    r.sim_name = variant_name(variant) + " x" + std::to_string(r.threads);
    r.mem_bytes = sim.bytes() + extra_bytes;
    r.cov = sim.coverage();
    r.stats = sim.stats();
    r.activity = r.stats.total.elements_evaluated;
  };

  if (use_macros) {
    MacroExtraction ext = extract_macros(c);
    MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
    ShardedSim sim(ext.circuit, u, sopt, &mmap);
    run_one(sim, ext.circuit.bytes());
  } else {
    ShardedSim sim(c, u, sopt);
    run_one(sim, c.bytes());
  }
  return r;
}

RunResult run_csim_transition_sharded(const Circuit& c,
                                      const FaultUniverse& u,
                                      const TestSuite& t,
                                      unsigned num_threads, Val ff_init,
                                      bool split_lists,
                                      obs::TraceEmitter* trace,
                                      unsigned batch_width,
                                      obs::Timeline* timeline,
                                      const RebalancePolicy& rebalance) {
  RunResult r;
  r.batch = batch_width;
  ShardedOptions sopt;
  sopt.num_threads = num_threads;
  sopt.batch_width = batch_width;
  sopt.rebalance = rebalance;
  sopt.csim.split_lists = split_lists;
  ShardedSim sim(c, u, sopt);
  if (trace != nullptr) sim.set_trace(trace);
  if (timeline != nullptr) sim.set_timeline(timeline);
  {
    obs::ScopedPhase sp(r.run_timers, obs::Phase::Run);
    sim.run(t, ff_init);
  }
  r.cpu_s = r.run_timers.seconds(obs::Phase::Run);
  r.threads = sim.num_shards();
  r.sim_name = std::string(split_lists ? "csim-V" : "csim") +
               " (transition) x" + std::to_string(r.threads);
  r.mem_bytes = sim.bytes() + c.bytes();
  r.cov = sim.coverage();
  r.stats = sim.stats();
  r.activity = r.stats.total.elements_evaluated;
  return r;
}

RunResult run_csim_transition(const Circuit& c, const FaultUniverse& u,
                              const TestSuite& t, Val ff_init,
                              bool split_lists) {
  RunResult r;
  r.sim_name = split_lists ? "csim-V (transition)" : "csim (transition)";
  CsimOptions opt;
  opt.split_lists = split_lists;
  ConcurrentSim sim(c, u, opt);
  r.cpu_s = apply_suite(sim, t, ff_init, r.run_timers);
  r.mem_bytes = sim.bytes() + c.bytes();
  r.cov = sim.coverage();
  r.activity = sim.elements_evaluated();
  r.stats = one_engine_stats(sim);
  return r;
}

}  // namespace cfs
