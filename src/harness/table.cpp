#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cfs {

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& s = i < cells.size() ? cells[i] : std::string();
      if (i == 0) {
        out << s << std::string(width[i] - s.size(), ' ');
      } else {
        out << "  " << std::string(width[i] - s.size(), ' ') << s;
      }
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w;
  out << std::string(total + 2 * (width.size() - 1), '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_count(std::size_t v) { return std::to_string(v); }

}  // namespace cfs
