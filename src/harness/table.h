// Console table printer for the experiment benches (column-aligned,
// paper-style rows).
#pragma once

#include <string>
#include <vector>

namespace cfs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render with column alignment; first column left-aligned, the rest
  /// right-aligned (numbers).
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_fixed(double v, int precision);
std::string fmt_count(std::size_t v);

}  // namespace cfs
