// Experiment runner: applies a pattern set through one simulator engine
// and collects the paper's measured quantities (CPU seconds, memory,
// coverage, activity).
#pragma once

#include <string>

#include "core/concurrent_sim.h"
#include "faults/fault.h"
#include "netlist/circuit.h"
#include "obs/timers.h"
#include "obs/trace.h"
#include "patterns/pattern.h"
#include "sim/sharded_sim.h"

namespace cfs {

struct RunResult {
  std::string sim_name;
  double cpu_s = 0.0;  ///< == run_timers.seconds(obs::Phase::Run)
  std::size_t mem_bytes = 0;
  Coverage cov;
  std::uint64_t activity = 0;  ///< scalar gate evals or word evals
  unsigned threads = 1;        ///< shards actually used (sharded runs)
  unsigned batch = 1;          ///< pattern-lane width (sharded runs)
  SimStats stats;              ///< per-engine breakdown (csim runs)
  /// Harness-side envelope: the whole-suite Run phase.  The tables' CPU
  /// column and the telemetry export both read this one accumulator.
  obs::PhaseTimers run_timers;
};

/// The paper's simulator variants (Table 3 columns).
enum class CsimVariant {
  Plain,  ///< csim: single lists, no macros
  V,      ///< csim-V: split visible/invisible lists
  M,      ///< csim-M: macro extraction
  MV,     ///< csim-MV: both
};

std::string variant_name(CsimVariant v);

/// Run a csim variant over a test suite (each sequence applied from the
/// reset state); for M/MV the macro extraction and fault mapping are built
/// inside and counted in memory, while the reported CPU time covers only
/// the simulation itself, matching the paper's focus.
RunResult run_csim(const Circuit& c, const FaultUniverse& u,
                   const TestSuite& t, CsimVariant variant,
                   Val ff_init = Val::X, bool drop_detected = true);

/// PROOFS-style baseline run.
RunResult run_proofs(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, Val ff_init = Val::X);

/// Serial baseline run (ground truth; expensive).
RunResult run_serial(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, Val ff_init = Val::X);

/// Transition-fault run (csim transition engine; no macros).
RunResult run_csim_transition(const Circuit& c, const FaultUniverse& u,
                              const TestSuite& t, Val ff_init = Val::X,
                              bool split_lists = true);

/// Sharded multi-threaded csim run: `num_threads` shard engines over one
/// shared SimModel (see sim/sharded_sim.h), with `batch_width` pattern
/// lanes through the packed good machine (ShardedOptions::batch_width) --
/// the two parallel axes compose freely.  Detection status and coverage
/// are bit-for-bit identical to the single-threaded, width-1 variant for
/// any thread count x batch width.  `trace`, when given, receives one
/// Chrome-trace track per shard (obs/trace.h) and must outlive the call;
/// `timeline`, when given, samples the run per vector (obs/timeline.h,
/// forcing the lockstep driver) and must outlive the call too.
/// `rebalance` configures dynamic ownership repartitioning
/// (sim/sharded_sim.h) -- bit-identical results for every policy.
RunResult run_csim_sharded(const Circuit& c, const FaultUniverse& u,
                           const TestSuite& t, CsimVariant variant,
                           unsigned num_threads, Val ff_init = Val::X,
                           bool drop_detected = true,
                           obs::TraceEmitter* trace = nullptr,
                           unsigned batch_width = 1,
                           obs::Timeline* timeline = nullptr,
                           const RebalancePolicy& rebalance = {});

/// Sharded transition-fault run.
RunResult run_csim_transition_sharded(const Circuit& c,
                                      const FaultUniverse& u,
                                      const TestSuite& t,
                                      unsigned num_threads,
                                      Val ff_init = Val::X,
                                      bool split_lists = true,
                                      obs::TraceEmitter* trace = nullptr,
                                      unsigned batch_width = 1,
                                      obs::Timeline* timeline = nullptr,
                                      const RebalancePolicy& rebalance = {});

// Single-sequence conveniences.
inline RunResult run_csim(const Circuit& c, const FaultUniverse& u,
                          const PatternSet& p, CsimVariant variant,
                          Val ff_init = Val::X, bool drop_detected = true) {
  return run_csim(c, u, TestSuite(p), variant, ff_init, drop_detected);
}
inline RunResult run_proofs(const Circuit& c, const FaultUniverse& u,
                            const PatternSet& p, Val ff_init = Val::X) {
  return run_proofs(c, u, TestSuite(p), ff_init);
}
inline RunResult run_serial(const Circuit& c, const FaultUniverse& u,
                            const PatternSet& p, Val ff_init = Val::X) {
  return run_serial(c, u, TestSuite(p), ff_init);
}
inline RunResult run_csim_transition(const Circuit& c,
                                     const FaultUniverse& u,
                                     const PatternSet& p,
                                     Val ff_init = Val::X,
                                     bool split_lists = true) {
  return run_csim_transition(c, u, TestSuite(p), ff_init, split_lists);
}

}  // namespace cfs
