#include "harness/stats_export.h"

#include <sstream>

#include "obs/json_stats.h"
#include "obs/trace.h"
#include "simd/simd.h"
#include "util/error.h"

namespace cfs {

namespace {

void write_engine(obs::JsonWriter& w, const EngineStats& e) {
  w.field("gates_processed", e.gates_processed);
  w.field("elements_evaluated", e.elements_evaluated);
  w.field("vectors_simulated", e.vectors_simulated);
  w.field("faults_dropped", e.faults_dropped);
  w.field("peak_elements", static_cast<std::uint64_t>(e.peak_elements));
  w.field("state_bytes", static_cast<std::uint64_t>(e.state_bytes));
  w.key("counters");
  obs::write_counters(w, e.counters);
  w.key("timers");
  obs::write_timers(w, e.timers);
  w.key("histograms");
  obs::write_histograms(w, e.hists);
  w.key("levels");
  obs::write_level_profile(w, e.levels);
}

}  // namespace

void write_run_stats_json(std::ostream& os, const RunMetadata& meta,
                          const RunResult& r, const obs::Timeline* timeline) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema_version", std::uint64_t{1});

  w.key("meta");
  w.begin_object();
  w.field("circuit", meta.circuit);
  w.field("engine", meta.engine);
  w.field("sim_name", r.sim_name);
  w.field("mode", meta.mode);
  w.field("threads", r.threads);
  w.field("batch", r.batch);
  w.field("seed", meta.seed);
  w.field("vectors", static_cast<std::uint64_t>(meta.vectors));
  w.field("sequences", static_cast<std::uint64_t>(meta.sequences));
  w.field("ff_init", meta.ff_init);
  // Kernel provenance: a digest or counter mismatch across hosts must be
  // traceable to the kernel set that produced it (DESIGN.md §16).
  w.field("isa", meta.isa.empty() ? std::string(simd::active_isa_name())
                                  : meta.isa);
  w.field("simd_width",
          std::uint64_t{meta.simd_width != 0 ? meta.simd_width
                                             : simd::active_simd_width_bits()});
  w.end_object();

  w.key("coverage");
  w.begin_object();
  w.field("total", static_cast<std::uint64_t>(r.cov.total));
  w.field("hard", static_cast<std::uint64_t>(r.cov.hard));
  w.field("potential", static_cast<std::uint64_t>(r.cov.potential));
  w.field("pct", r.cov.pct());
  w.end_object();

  w.field("cpu_s", r.cpu_s);
  w.field("mem_bytes", static_cast<std::uint64_t>(r.mem_bytes));
  w.field("activity", r.activity);
  w.field("model_bytes", static_cast<std::uint64_t>(r.stats.model_bytes));
  w.field("circuit_bytes",
          static_cast<std::uint64_t>(r.stats.circuit_bytes));

  // Shard-invariant counter sums: identical for any --threads value.
  w.key("deterministic");
  obs::write_deterministic_counters(w, r.stats.total.counters);

  // Time-series samples (obs/timeline.h): always present so the schema
  // stays fixed; an un-sampled run carries an empty, zero-dimension block.
  w.key("timeline");
  if (timeline != nullptr) {
    timeline->write_json(w);
  } else {
    w.begin_object();
    w.field("every", std::uint64_t{0});
    w.field("capacity", std::uint64_t{0});
    w.field("num_shards", std::uint64_t{0});
    w.field("recorded", std::uint64_t{0});
    w.key("samples");
    w.begin_array();
    w.end_array();
    w.end_object();
  }

  // Containment counters (resil/containment.h): zero unless the run had
  // shard failure containment enabled and a shard actually failed.
  w.key("resil");
  w.begin_object();
  w.field("shard_retries", r.stats.shard_retries);
  w.field("shard_requeues", r.stats.shard_requeues);
  w.end_object();

  // Dynamic-rebalancing counters (sim/sharded_sim.h): zero unless the run
  // enabled --rebalance and the policy actually fired.
  w.key("rebalance");
  w.begin_object();
  w.field("rebalances", r.stats.rebalances);
  w.field("faults_migrated", r.stats.faults_migrated);
  w.field("elements_migrated", r.stats.elements_migrated);
  w.end_object();

  // Harness envelope + driver-side phases (merge/replay).
  w.key("timers");
  w.begin_object();
  w.key("run");
  w.begin_object();
  w.field("seconds", r.cpu_s);
  w.field("calls", r.run_timers.count(obs::Phase::Run));
  w.end_object();
  w.key("driver");
  obs::write_timers(w, r.stats.driver);
  w.end_object();

  w.key("totals");
  w.begin_object();
  write_engine(w, r.stats.total);
  w.end_object();

  w.key("engines");
  w.begin_array();
  for (std::size_t s = 0; s < r.stats.per_engine.size(); ++s) {
    w.begin_object();
    w.field("shard", static_cast<std::uint64_t>(s));
    write_engine(w, r.stats.per_engine[s]);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

void save_run_stats_json(const std::string& path, const RunMetadata& meta,
                         const RunResult& r, const obs::Timeline* timeline) {
  // Atomic replace (tmp+rename): a crash mid-export leaves the previous
  // stats file (or none), never a torn JSON document.
  std::ostringstream os;
  write_run_stats_json(os, meta, r, timeline);
  os << '\n';
  obs::atomic_write(path, os.str(), "stats");
}

}  // namespace cfs
