// JSON export of a whole run: metadata + coverage + the SimStats /
// counter / timer tree of obs/.  This is the machine interface the BENCH
// trajectory and the CI schema check consume; tools/stats_schema.json pins
// the shape, and tests/test_obs.cpp round-trips it.
#pragma once

#include <ostream>
#include <string>

#include "harness/runner.h"

namespace cfs {

/// Run provenance recorded alongside the measurements.
struct RunMetadata {
  std::string circuit;
  std::string engine;           ///< engine/variant name, e.g. "csim-mv"
  std::string mode = "stuck-at";  ///< "stuck-at" | "transition"
  unsigned threads = 1;
  std::uint64_t seed = 0;
  std::size_t vectors = 0;
  std::size_t sequences = 0;
  std::string ff_init = "X";    ///< "X" | "0" | "1"
  /// Kernel provenance: which SIMD kernel table produced the run.  Empty /
  /// zero means "fill from the live simd dispatch at export time" -- the
  /// usual case; tests override to pin exact values.
  std::string isa;              ///< "scalar" | "sse4.2" | "avx2" | "neon"
  unsigned simd_width = 0;      ///< vector width in bits (64 for scalar)
};

/// Serialize one run as the stats document (schema_version 1).  The
/// "deterministic" block holds only shard-invariant counters -- those are
/// bit-identical across --threads for a fixed (circuit, tests) pair; the
/// per-engine blocks carry the full registry plus the work-attribution
/// histograms and level profile.  `timeline`, when given, fills the
/// "timeline" block with the sampler's ring (the block is always present;
/// without a timeline it is empty with zeroed dimensions).
void write_run_stats_json(std::ostream& os, const RunMetadata& meta,
                          const RunResult& r,
                          const obs::Timeline* timeline = nullptr);

/// write_run_stats_json() to a file; throws cfs::Error on I/O failure.
void save_run_stats_json(const std::string& path, const RunMetadata& meta,
                         const RunResult& r,
                         const obs::Timeline* timeline = nullptr);

}  // namespace cfs
