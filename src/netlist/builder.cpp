#include "netlist/builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace cfs {

void Builder::add_input(const std::string& signal) {
  gates_.push_back({GateKind::Input, signal, {}});
}

void Builder::add_dff(const std::string& signal, const std::string& d) {
  gates_.push_back({GateKind::Dff, signal, {d}});
}

void Builder::add_gate(GateKind kind, const std::string& signal,
                       const std::vector<std::string>& fanins) {
  if (kind == GateKind::Input) {
    add_input(signal);
    return;
  }
  gates_.push_back({kind, signal, fanins});
}

void Builder::mark_output(const std::string& signal) {
  if (std::find(outputs_.begin(), outputs_.end(), signal) == outputs_.end()) {
    outputs_.push_back(signal);
  }
}

Circuit Builder::build() {
  // Decompose gates wider than kMaxPins.  NAND/NOR/XNOR become trees of the
  // base kind with the inversion applied only at the root.
  std::vector<ProtoGate> expanded;
  expanded.reserve(gates_.size());
  for (const ProtoGate& pg : gates_) {
    if (pg.fanins.size() <= kMaxPins) {
      expanded.push_back(pg);
      continue;
    }
    GateKind base;
    switch (pg.kind) {
      case GateKind::And:
      case GateKind::Nand: base = GateKind::And; break;
      case GateKind::Or:
      case GateKind::Nor: base = GateKind::Or; break;
      case GateKind::Xor:
      case GateKind::Xnor: base = GateKind::Xor; break;
      default:
        throw Error("gate '" + pg.name + "' too wide and not decomposable");
    }
    // Reduce the operand list in chunks of kMaxPins until it fits.
    std::vector<std::string> operands = pg.fanins;
    unsigned synth = 0;
    while (operands.size() > kMaxPins) {
      std::vector<std::string> next;
      for (std::size_t i = 0; i < operands.size(); i += kMaxPins) {
        const std::size_t end = std::min(operands.size(), i + kMaxPins);
        if (end - i == 1) {
          next.push_back(operands[i]);
          continue;
        }
        std::string nm = pg.name + "$d" + std::to_string(synth++);
        expanded.push_back(
            {base, nm,
             std::vector<std::string>(operands.begin() + i,
                                      operands.begin() + end)});
        next.push_back(std::move(nm));
      }
      operands = std::move(next);
    }
    expanded.push_back({pg.kind, pg.name, std::move(operands)});
  }

  // Name resolution.
  std::unordered_map<std::string, GateId> ids;
  ids.reserve(expanded.size());
  for (std::size_t g = 0; g < expanded.size(); ++g) {
    if (!ids.emplace(expanded[g].name, static_cast<GateId>(g)).second) {
      throw Error("signal '" + expanded[g].name + "' defined twice");
    }
  }

  CircuitData data;
  data.name = name_;
  data.kinds.reserve(expanded.size());
  data.names.reserve(expanded.size());
  data.fanins.reserve(expanded.size());
  for (std::size_t g = 0; g < expanded.size(); ++g) {
    const ProtoGate& pg = expanded[g];
    data.kinds.push_back(pg.kind);
    data.names.push_back(pg.name);
    std::vector<GateId> fi;
    fi.reserve(pg.fanins.size());
    for (const std::string& f : pg.fanins) {
      const auto it = ids.find(f);
      if (it == ids.end()) {
        throw Error("gate '" + pg.name + "' references undefined signal '" +
                    f + "'");
      }
      fi.push_back(it->second);
    }
    data.fanins.push_back(std::move(fi));
    if (pg.kind == GateKind::Input) {
      data.primary_inputs.push_back(static_cast<GateId>(g));
    }
  }
  for (const std::string& out : outputs_) {
    const auto it = ids.find(out);
    if (it == ids.end()) {
      throw Error("primary output '" + out + "' is undefined");
    }
    data.primary_outputs.push_back(it->second);
  }
  return Circuit(std::move(data));
}

}  // namespace cfs
