#include "netlist/bench_writer.h"

#include <sstream>

#include "util/error.h"

namespace cfs {

std::string write_bench(const Circuit& c) {
  std::ostringstream out;
  out << "# " << c.name() << "\n";
  for (GateId g : c.inputs()) out << "INPUT(" << c.gate_name(g) << ")\n";
  for (GateId g : c.outputs()) out << "OUTPUT(" << c.gate_name(g) << ")\n";
  // DFFs first (conventional), then combinational gates in topo order.
  for (GateId g : c.dffs()) {
    out << c.gate_name(g) << " = DFF(" << c.gate_name(c.fanins(g)[0])
        << ")\n";
  }
  for (GateId g : c.topo_order()) {
    const GateKind k = c.kind(g);
    if (k == GateKind::Macro) {
      throw Error("write_bench: macro gates are not expressible in .bench");
    }
    out << c.gate_name(g) << " = " << kind_name(k) << "(";
    const auto fi = c.fanins(g);
    for (std::size_t i = 0; i < fi.size(); ++i) {
      if (i) out << ", ";
      out << c.gate_name(fi[i]);
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace cfs
