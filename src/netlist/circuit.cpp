#include "netlist/circuit.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace cfs {

Circuit::Circuit(CircuitData data)
    : name_(std::move(data.name)),
      kinds_(std::move(data.kinds)),
      names_(std::move(data.names)),
      primary_inputs_(std::move(data.primary_inputs)),
      primary_outputs_(std::move(data.primary_outputs)),
      tables_of_(std::move(data.tables_of)),
      tables_(std::move(data.tables)) {
  const std::size_t n = kinds_.size();
  if (names_.size() != n || data.fanins.size() != n) {
    throw Error("circuit '" + name_ + "': inconsistent gate arrays");
  }
  if (tables_of_.empty()) tables_of_.assign(n, kNoGate);
  if (tables_of_.size() != n) {
    throw Error("circuit '" + name_ + "': inconsistent table map");
  }

  // Arity validation and CSR fanins.
  fanin_off_.resize(n + 1, 0);
  for (std::size_t g = 0; g < n; ++g) {
    const auto& fi = data.fanins[g];
    const GateKind k = kinds_[g];
    const auto [lo, hi] = arity(k == GateKind::Macro ? GateKind::And : k);
    if (fi.size() < lo || fi.size() > hi) {
      throw Error("gate '" + names_[g] + "' (" + std::string(kind_name(k)) +
                  ") has illegal fanin count " + std::to_string(fi.size()));
    }
    if (k == GateKind::Macro) {
      if (tables_of_[g] == kNoGate || tables_of_[g] >= tables_.size()) {
        throw Error("macro gate '" + names_[g] + "' has no truth table");
      }
      if (tables_[tables_of_[g]].num_inputs != fi.size()) {
        throw Error("macro gate '" + names_[g] + "' table arity mismatch");
      }
    }
    fanin_off_[g + 1] = fanin_off_[g] + static_cast<std::uint32_t>(fi.size());
  }
  fanin_flat_.reserve(fanin_off_[n]);
  for (std::size_t g = 0; g < n; ++g) {
    for (GateId f : data.fanins[g]) {
      if (f >= n) {
        throw Error("gate '" + names_[g] + "' references out-of-range fanin");
      }
      fanin_flat_.push_back(f);
    }
  }

  // Fanouts.
  fanout_off_.assign(n + 1, 0);
  for (std::size_t g = 0; g < n; ++g) {
    for (GateId f : fanins(static_cast<GateId>(g))) ++fanout_off_[f + 1];
  }
  for (std::size_t g = 0; g < n; ++g) fanout_off_[g + 1] += fanout_off_[g];
  fanout_flat_.resize(fanout_off_[n]);
  {
    std::vector<std::uint32_t> cursor(fanout_off_.begin(),
                                      fanout_off_.end() - 1);
    for (std::size_t g = 0; g < n; ++g) {
      const auto fi = fanins(static_cast<GateId>(g));
      for (std::size_t p = 0; p < fi.size(); ++p) {
        fanout_flat_[cursor[fi[p]]++] =
            Fanout{static_cast<GateId>(g), static_cast<std::uint16_t>(p)};
      }
    }
  }

  // PO flags.
  po_flag_.assign(n, 0);
  for (GateId g : primary_outputs_) {
    if (g >= n) throw Error("primary output id out of range");
    po_flag_[g] = 1;
  }

  // DFF list in gate-id order.
  for (std::size_t g = 0; g < n; ++g) {
    if (kinds_[g] == GateKind::Dff) dffs_.push_back(static_cast<GateId>(g));
  }

  // Levelization by Kahn's algorithm over combinational edges.  DFF gates
  // and PIs are sources (level 0); a DFF's D input is consumed at the frame
  // boundary, so the edge fanin->DFF does not constrain levels.
  levels_.assign(n, 0);
  std::vector<std::uint32_t> pending(n, 0);
  std::queue<GateId> ready;
  std::size_t comb_count = 0;
  for (std::size_t g = 0; g < n; ++g) {
    if (is_combinational(kinds_[g])) {
      pending[g] = num_fanins(static_cast<GateId>(g));
      ++comb_count;
      if (pending[g] == 0) ready.push(static_cast<GateId>(g));
    } else {
      ready.push(static_cast<GateId>(g));
    }
  }
  std::size_t processed_comb = 0;
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop();
    if (is_combinational(kinds_[g])) {
      ++processed_comb;
      unsigned lvl = 0;
      for (GateId f : fanins(g)) lvl = std::max(lvl, levels_[f] + 1);
      levels_[g] = lvl;
      topo_.push_back(g);
      num_levels_ = std::max(num_levels_, lvl + 1);
    }
    for (const Fanout& fo : fanouts(g)) {
      if (!is_combinational(kinds_[fo.gate])) continue;
      if (--pending[fo.gate] == 0) ready.push(fo.gate);
    }
  }
  if (processed_comb != comb_count) {
    throw Error("circuit '" + name_ + "' contains a combinational cycle");
  }
  std::stable_sort(topo_.begin(), topo_.end(),
                   [&](GateId a, GateId b) { return levels_[a] < levels_[b]; });
  if (num_levels_ == 0) num_levels_ = 1;

  // Per-gate table-eval descriptors: every combinational gate evaluates by
  // lookup alone.  Macro gates index their own truth table (max_inputs is
  // capped well below kEvalChunkPins); other kinds share the per-(kind,
  // arity) registry tables, with gates wider than kEvalChunkPins composing
  // two chunk reductions through a join table.
  eval_lo_.assign(n, nullptr);
  eval_hi_.assign(n, nullptr);
  eval_join_.assign(n, nullptr);
  eval_mask_.assign(n, 0);
  eval_hi_mask_.assign(n, 0);
  // Truth tables back Macro gates' eval_lo_ and are read by the SIMD
  // gather kernels, which load 32 bits per lookup: keep kEvalTablePad
  // readable bytes past the last entry (storage only, masks unaffected).
  for (TruthTable& t : tables_) {
    const std::size_t padded =
        (std::size_t{1} << (2 * t.num_inputs)) + kEvalTablePad;
    if (t.out.size() < padded) t.out.resize(padded, 0);
  }
  for (std::size_t g = 0; g < n; ++g) {
    const GateKind k = kinds_[g];
    const unsigned nf = num_fanins(static_cast<GateId>(g));
    if (k == GateKind::Macro) {
      eval_lo_[g] = tables_[tables_of_[g]].out.data();
      eval_mask_[g] = static_cast<std::uint32_t>(
          (std::size_t{1} << (2 * nf)) - 1);
    } else if (is_combinational(k) && nf >= 1) {
      const EvalTable t = eval_table(k, nf);
      eval_lo_[g] = t.lo;
      eval_hi_[g] = t.hi;
      eval_join_[g] = t.join;
      eval_mask_[g] = t.lo_mask;
      eval_hi_mask_[g] = t.hi_mask;
    }
  }

  by_name_.reserve(n);
  for (std::size_t g = 0; g < n; ++g) {
    if (!by_name_.emplace(names_[g], static_cast<GateId>(g)).second) {
      throw Error("duplicate signal name '" + names_[g] + "'");
    }
  }
}

GateId Circuit::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoGate : it->second;
}

std::size_t Circuit::bytes() const {
  std::size_t b = 0;
  b += kinds_.capacity() * sizeof(GateKind);
  b += fanin_off_.capacity() * sizeof(std::uint32_t);
  b += fanout_off_.capacity() * sizeof(std::uint32_t);
  b += fanin_flat_.capacity() * sizeof(GateId);
  b += fanout_flat_.capacity() * sizeof(Fanout);
  b += levels_.capacity() * sizeof(std::uint32_t);
  b += po_flag_.capacity();
  b += topo_.capacity() * sizeof(GateId);
  b += tables_of_.capacity() * sizeof(std::uint32_t);
  b += eval_lo_.capacity() * sizeof(void*);
  b += eval_hi_.capacity() * sizeof(void*);
  b += eval_join_.capacity() * sizeof(void*);
  b += eval_mask_.capacity() * sizeof(std::uint32_t);
  b += eval_hi_mask_.capacity() * sizeof(std::uint32_t);
  for (const TruthTable& t : tables_) b += t.bytes();
  return b;
}

Circuit::Stats Circuit::stats() const {
  Stats s;
  s.num_pis = primary_inputs_.size();
  s.num_pos = primary_outputs_.size();
  s.num_dffs = dffs_.size();
  s.num_levels = num_levels_;
  for (GateId g = 0; g < num_gates(); ++g) {
    if (is_combinational(kinds_[g])) ++s.num_comb_gates;
    s.max_fanin = std::max<std::size_t>(s.max_fanin, num_fanins(g));
    s.max_fanout = std::max<std::size_t>(s.max_fanout, num_fanouts(g));
  }
  return s;
}

}  // namespace cfs
