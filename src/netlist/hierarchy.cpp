#include "netlist/hierarchy.h"

#include "util/error.h"

namespace cfs {

std::vector<std::string> instantiate(
    Builder& b, const Circuit& module, const std::string& inst,
    const std::vector<std::string>& input_signals) {
  if (input_signals.size() != module.inputs().size()) {
    throw Error("instantiate('" + inst + "'): module '" + module.name() +
                "' has " + std::to_string(module.inputs().size()) +
                " inputs, got " + std::to_string(input_signals.size()));
  }

  // Parent-scope name of each module gate: inputs map onto the provided
  // signals, everything else gets the instance prefix.
  std::vector<std::string> name_of(module.num_gates());
  for (std::size_t i = 0; i < module.inputs().size(); ++i) {
    name_of[module.inputs()[i]] = input_signals[i];
  }
  for (GateId g = 0; g < module.num_gates(); ++g) {
    if (module.kind(g) != GateKind::Input) {
      name_of[g] = inst + "/" + module.gate_name(g);
    }
  }

  for (GateId g = 0; g < module.num_gates(); ++g) {
    const GateKind k = module.kind(g);
    if (k == GateKind::Input) continue;
    if (k == GateKind::Macro) {
      throw Error("instantiate: macro gates cannot be re-instantiated; "
                  "extract macros after flattening");
    }
    std::vector<std::string> fanins;
    fanins.reserve(module.num_fanins(g));
    for (GateId f : module.fanins(g)) fanins.push_back(name_of[f]);
    if (k == GateKind::Dff) {
      b.add_dff(name_of[g], fanins[0]);
    } else {
      b.add_gate(k, name_of[g], fanins);
    }
  }

  std::vector<std::string> outputs;
  outputs.reserve(module.outputs().size());
  for (GateId g : module.outputs()) outputs.push_back(name_of[g]);
  return outputs;
}

}  // namespace cfs
