// Immutable levelized gate-level circuit.
//
// A Circuit is built once (by netlist::Builder, the .bench parser, the
// synthetic generator, or macro extraction) and then shared read-only by all
// simulators.  Connectivity is stored CSR-style: flat fanin / fanout arrays
// indexed by per-gate offsets, 32-bit gate ids throughout.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"
#include "util/logic.h"

namespace cfs {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xFFFFFFFFu;

/// One sink of a gate's output: the consuming gate and which of its pins.
struct Fanout {
  GateId gate;
  std::uint16_t pin;
};

/// A 2-bit-packed truth table over `num_inputs` three-valued inputs.
/// Entry index is the packed pin state (state_input_index); entries are
/// dual-rail output codes.
struct TruthTable {
  std::uint8_t num_inputs = 0;
  std::vector<std::uint8_t> out;  // 4^num_inputs entries

  Val eval(std::uint32_t input_index) const {
    return from_code(out[input_index]);
  }
  std::size_t bytes() const { return out.capacity() + sizeof(*this); }
};

/// Raw material handed to the Circuit constructor by builders.
struct CircuitData {
  std::string name;
  std::vector<GateKind> kinds;
  std::vector<std::string> names;               // one per gate
  std::vector<std::vector<GateId>> fanins;      // one vector per gate
  std::vector<GateId> primary_inputs;           // declared order
  std::vector<GateId> primary_outputs;          // declared order (gate ids)
  std::vector<std::uint32_t> tables_of;         // per gate: table id or kNoGate
  std::vector<TruthTable> tables;
};

class Circuit {
 public:
  /// Validates, computes fanouts, levelizes, and freezes the circuit.
  /// Throws cfs::Error on arity violations, dangling ids, or combinational
  /// cycles.
  explicit Circuit(CircuitData data);

  const std::string& name() const { return name_; }
  std::size_t num_gates() const { return kinds_.size(); }

  GateKind kind(GateId g) const { return kinds_[g]; }
  const std::string& gate_name(GateId g) const { return names_[g]; }

  std::span<const GateId> fanins(GateId g) const {
    return {fanin_flat_.data() + fanin_off_[g],
            fanin_off_[g + 1] - fanin_off_[g]};
  }
  unsigned num_fanins(GateId g) const {
    return fanin_off_[g + 1] - fanin_off_[g];
  }
  std::span<const Fanout> fanouts(GateId g) const {
    return {fanout_flat_.data() + fanout_off_[g],
            fanout_off_[g + 1] - fanout_off_[g]};
  }
  unsigned num_fanouts(GateId g) const {
    return fanout_off_[g + 1] - fanout_off_[g];
  }

  /// Levels: PIs and DFF outputs are level 0; a combinational gate is one
  /// above its deepest fanin.
  unsigned level(GateId g) const { return levels_[g]; }
  unsigned num_levels() const { return num_levels_; }

  bool is_po(GateId g) const { return po_flag_[g] != 0; }

  std::span<const GateId> inputs() const { return primary_inputs_; }
  std::span<const GateId> outputs() const { return primary_outputs_; }
  std::span<const GateId> dffs() const { return dffs_; }

  /// All combinational gates in non-decreasing level order.
  std::span<const GateId> topo_order() const { return topo_; }

  /// Gate id for a signal name, or kNoGate.
  GateId find(std::string_view name) const;

  /// Truth table id of a Macro gate (kNoGate for ordinary gates).
  std::uint32_t table_of(GateId g) const { return tables_of_[g]; }
  const TruthTable& table(std::uint32_t id) const { return tables_[id]; }
  std::size_t num_tables() const { return tables_.size(); }

  /// Evaluate gate `g` on a packed state.  Fully table-driven for every
  /// combinational gate (Macro gates index their truth table, every other
  /// kind its shared per-(kind, arity) flat table; gates wider than
  /// kEvalChunkPins compose two chunk reductions through a 16-entry join) --
  /// no hot-path evaluation ever folds over pins.  Input/Dff return the
  /// state's output slot.  Bit-identical to eval_fold() by construction.
  Val eval(GateId g, GateState s) const {
    const std::uint8_t* lo = eval_lo_[g];
    if (lo == nullptr) return state_out(s);  // Input / Dff
    const std::uint8_t c0 = lo[static_cast<std::uint32_t>(s) & eval_mask_[g]];
    const std::uint8_t* hi = eval_hi_[g];
    if (hi == nullptr) return from_code(c0);
    const std::uint8_t c1 =
        hi[static_cast<std::uint32_t>(s >> (2 * kEvalChunkPins)) &
           eval_hi_mask_[g]];
    return from_code(eval_join_[g][(c0 << 2) | c1]);
  }

  /// Fold-based oracle evaluation: the pre-table reference semantics
  /// (eval_kind over the packed pins; Macro gates still go through their
  /// truth table, which is their definition).  Kept off the hot paths --
  /// engines route here only under CsimOptions::fold_eval, and the
  /// differential tests pin eval() == eval_fold() bit for bit.
  Val eval_fold(GateId g, GateState s) const {
    const GateKind k = kinds_[g];
    if (k == GateKind::Macro) {
      return tables_[tables_of_[g]].eval(state_input_index(s, num_fanins(g)));
    }
    return eval_kind(k, s, num_fanins(g));
  }

  /// Evaluate with an override truth table (functional faults in macro mode).
  Val eval_with_table(GateId g, GateState s, const TruthTable& t) const {
    return t.eval(state_input_index(s, num_fanins(g)));
  }

  /// Raw table-eval descriptor of one gate: exactly the pointers and masks
  /// eval() reads, exposed so the batched SIMD paths can group gates by
  /// shared table and gather many lookups per pass.  lo == nullptr marks a
  /// source (Input / Dff, output slot passthrough); hi != nullptr marks a
  /// wide gate composing two chunk reductions through `join`.  All tables
  /// keep kEvalTablePad readable bytes past their last entry.
  struct GateEval {
    const std::uint8_t* lo;
    const std::uint8_t* hi;
    const std::uint8_t* join;
    std::uint32_t lo_mask;
    std::uint32_t hi_mask;
  };
  GateEval gate_eval(GateId g) const {
    return GateEval{eval_lo_[g], eval_hi_[g], eval_join_[g], eval_mask_[g],
                    eval_hi_mask_[g]};
  }

  /// Approximate bytes of the frozen circuit image (for MEM reporting).
  std::size_t bytes() const;

  /// Summary statistics used by Table 2.
  struct Stats {
    std::size_t num_pis = 0, num_pos = 0, num_dffs = 0;
    std::size_t num_comb_gates = 0;  // excludes PIs and DFFs
    unsigned num_levels = 0;
    std::size_t max_fanin = 0, max_fanout = 0;
  };
  Stats stats() const;

 private:
  std::string name_;
  std::vector<GateKind> kinds_;
  std::vector<std::string> names_;
  std::vector<std::uint32_t> fanin_off_, fanout_off_;
  std::vector<GateId> fanin_flat_;
  std::vector<Fanout> fanout_flat_;
  std::vector<std::uint32_t> levels_;
  std::vector<std::uint8_t> po_flag_;
  std::vector<GateId> primary_inputs_, primary_outputs_, dffs_;
  std::vector<GateId> topo_;
  std::vector<std::uint32_t> tables_of_;
  std::vector<TruthTable> tables_;
  // Per-gate table-eval descriptors, SoA so the hot loop touches only the
  // arrays it needs: eval_lo_/eval_mask_ serve every gate up to
  // kEvalChunkPins (and all Macro gates); the hi/join arrays are consulted
  // only for wider gates.  Null eval_lo_ marks a source (Input/Dff).
  std::vector<const std::uint8_t*> eval_lo_;
  std::vector<const std::uint8_t*> eval_hi_;
  std::vector<const std::uint8_t*> eval_join_;
  std::vector<std::uint32_t> eval_mask_;
  std::vector<std::uint32_t> eval_hi_mask_;
  std::unordered_map<std::string, GateId> by_name_;
  unsigned num_levels_ = 0;
};

}  // namespace cfs
