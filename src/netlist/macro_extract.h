// Macro extraction (paper §2.2, Figure 3).
//
// Fanout-free regions of combinational gates are collapsed into single
// Macro gates evaluated by table lookup.  This collapses many events into
// one event and many fault elements into one element: the paper reports
// both a consistent speedup and, on large circuits, a substantial memory
// reduction (16.2 MB -> 9.24 MB on s35932).
//
// Stuck-at faults whose site disappears inside a macro are translated into
// *functional faults* represented by per-fault lookup tables (built by
// build_macro_table_faulty and carried in the fault descriptor); see
// faults/stuck_at.h for the mapping.
#pragma once

#include <vector>

#include "netlist/circuit.h"
#include "util/logic.h"

namespace cfs {

struct MacroOptions {
  /// Maximum external inputs of a macro (table has 4^max_inputs entries).
  /// Must be in [2, 6]; 4 keeps macros on the 8-bit fast-lookup path.
  unsigned max_inputs = 4;
  /// Minimum number of collapsed gates for a macro to be worth creating.
  unsigned min_gates = 2;
};

struct MacroInfo {
  GateId macro_gate = kNoGate;   ///< gate id in the extracted circuit
  GateId root = kNoGate;         ///< original root gate id
  std::vector<GateId> internal;  ///< original gate ids, topo order, root last
  std::vector<GateId> ext_drivers;  ///< original driver gate per macro pin
};

struct MacroExtraction {
  Circuit circuit;  ///< extracted circuit (Macro gates carry good tables)
  /// Original gate id -> extracted gate id; kNoGate for gates swallowed by a
  /// macro (the root maps to its macro gate).
  std::vector<GateId> gate_map;
  /// Original gate id -> index into `macros` if the gate is internal to a
  /// macro (including roots), else kNoGate.
  std::vector<std::uint32_t> macro_of;
  std::vector<MacroInfo> macros;
};

/// Collapse fanout-free regions of `orig` into macro gates.
MacroExtraction extract_macros(const Circuit& orig, MacroOptions opt = {});

/// Good-machine truth table of a macro region.
TruthTable build_macro_table(const Circuit& orig, const MacroInfo& m);

/// Truth table of the region with a stuck-at fault injected at an internal
/// site.  `site_gate` must be in m.internal; `site_pin` is an input pin
/// index, or kOutputPin for the gate's output.
inline constexpr std::uint16_t kOutputPin = 0xFFFF;
TruthTable build_macro_table_faulty(const Circuit& orig, const MacroInfo& m,
                                    GateId site_gate, std::uint16_t site_pin,
                                    Val stuck);

}  // namespace cfs
