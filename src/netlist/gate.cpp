#include "netlist/gate.h"

#include <mutex>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace cfs {

std::string_view kind_name(GateKind k) {
  switch (k) {
    case GateKind::Input: return "INPUT";
    case GateKind::Buf: return "BUF";
    case GateKind::Not: return "NOT";
    case GateKind::And: return "AND";
    case GateKind::Nand: return "NAND";
    case GateKind::Or: return "OR";
    case GateKind::Nor: return "NOR";
    case GateKind::Xor: return "XOR";
    case GateKind::Xnor: return "XNOR";
    case GateKind::Dff: return "DFF";
    case GateKind::Macro: return "MACRO";
  }
  return "?";
}

GateKind kind_from_name(std::string_view name) {
  const std::string u = upper(name);
  if (u == "BUF" || u == "BUFF") return GateKind::Buf;
  if (u == "NOT" || u == "INV") return GateKind::Not;
  if (u == "AND") return GateKind::And;
  if (u == "NAND") return GateKind::Nand;
  if (u == "OR") return GateKind::Or;
  if (u == "NOR") return GateKind::Nor;
  if (u == "XOR") return GateKind::Xor;
  if (u == "XNOR") return GateKind::Xnor;
  if (u == "DFF") return GateKind::Dff;
  if (u == "INPUT") return GateKind::Input;
  throw Error("unknown gate kind: " + std::string(name));
}

Val eval_kind(GateKind k, GateState s, unsigned nfanins) {
  switch (k) {
    case GateKind::Input:
    case GateKind::Dff:
      return state_out(s);
    case GateKind::Buf:
      return state_get(s, 0);
    case GateKind::Not:
      return v_not(state_get(s, 0));
    case GateKind::And:
    case GateKind::Nand: {
      Val r = Val::One;
      for (unsigned i = 0; i < nfanins; ++i) r = v_and(r, state_get(s, i));
      return k == GateKind::And ? r : v_not(r);
    }
    case GateKind::Or:
    case GateKind::Nor: {
      Val r = Val::Zero;
      for (unsigned i = 0; i < nfanins; ++i) r = v_or(r, state_get(s, i));
      return k == GateKind::Or ? r : v_not(r);
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      Val r = Val::Zero;
      for (unsigned i = 0; i < nfanins; ++i) r = v_xor(r, state_get(s, i));
      return k == GateKind::Xor ? r : v_not(r);
    }
    case GateKind::Macro:
      throw Error("eval_kind cannot evaluate Macro gates; use the circuit's truth table");
  }
  return Val::X;
}

namespace {

// Fast tables for the 8 combinational kinds x fanin 1..4.
struct FastTables {
  std::array<std::array<std::uint8_t, 256>, 8 * 5> tables{};
  FastTables() {
    for (unsigned ki = 0; ki < 8; ++ki) {
      const GateKind k = static_cast<GateKind>(ki + 1);  // Buf..Xnor
      for (unsigned n = 1; n <= 4; ++n) {
        auto& t = tables[ki * 5 + n];
        for (unsigned idx = 0; idx < 256; ++idx) {
          // Normalise every pin code through from_code so the invalid code 1
          // behaves as X, then evaluate.
          GateState s = 0;
          for (unsigned p = 0; p < n; ++p) {
            s = state_set(s, p, from_code(static_cast<std::uint8_t>(idx >> (2 * p))));
          }
          t[idx] = code(eval_kind(k, s, n));
        }
      }
    }
  }
};

const FastTables& fast_tables() {
  static const FastTables t;
  return t;
}

}  // namespace

const std::array<std::uint8_t, 256>& fast_table(GateKind k, unsigned nfanins) {
  const unsigned ki = static_cast<unsigned>(k) - 1;
  return fast_tables().tables[ki * 5 + nfanins];
}

namespace {

// Associative reduction underlying a kind (inversion handled by the join).
Val reduce_identity(GateKind k) {
  switch (k) {
    case GateKind::And:
    case GateKind::Nand: return Val::One;
    default: return Val::Zero;
  }
}

Val reduce_op(GateKind k, Val a, Val b) {
  switch (k) {
    case GateKind::And:
    case GateKind::Nand: return v_and(a, b);
    case GateKind::Xor:
    case GateKind::Xnor: return v_xor(a, b);
    default: return v_or(a, b);  // Or/Nor; Buf/Not never take the wide path
  }
}

constexpr bool inverting(GateKind k) {
  return k == GateKind::Not || k == GateKind::Nand || k == GateKind::Nor ||
         k == GateKind::Xnor;
}

// Reduce `npins` pins of the low bits of an index with kind `k`'s
// associative op, normalising the invalid code 1 to X per pin.
Val reduce_pins(GateKind k, std::uint32_t idx, unsigned npins) {
  Val r = reduce_identity(k);
  for (unsigned p = 0; p < npins; ++p) {
    r = reduce_op(k, r, from_code(static_cast<std::uint8_t>(idx >> (2 * p))));
  }
  return r;
}

// Lazily-built shared tables: per (kind, arity) one flat output table for
// n <= kEvalChunkPins, plus per (kind, chunk arity) reduce tables and a
// 16-entry join for wider gates.  Built under a mutex, read lock-free ever
// after (vectors are sized once and never touched again).
struct EvalTableRegistry {
  std::mutex mu;
  // [kind 0..7 == Buf..Xnor][n 0..kEvalChunkPins]; empty until first use.
  std::vector<std::uint8_t> full[8][kEvalChunkPins + 1];
  std::vector<std::uint8_t> reduce[8][kEvalChunkPins + 1];
  std::array<std::uint8_t, 16> join[8];
  bool join_built[8] = {};

  // Both table builders append kEvalTablePad readable bytes past the last
  // indexable entry: the SIMD gather kernels load 32 bits at byte offsets,
  // so a lookup of the final entry reads 3 bytes beyond it.  The logical
  // size stays 4^n -- eval_table() derives masks from n, never from size().

  const std::vector<std::uint8_t>& full_table(unsigned ki, unsigned n) {
    auto& t = full[ki][n];
    if (t.empty()) {
      const GateKind k = static_cast<GateKind>(ki + 1);
      const std::size_t entries = std::size_t{1} << (2 * n);
      t.resize(entries + kEvalTablePad);
      for (std::uint32_t idx = 0; idx < entries; ++idx) {
        GateState s = 0;
        for (unsigned p = 0; p < n; ++p) {
          s = state_set(s, p,
                        from_code(static_cast<std::uint8_t>(idx >> (2 * p))));
        }
        t[idx] = code(eval_kind(k, s, n));
      }
    }
    return t;
  }

  const std::vector<std::uint8_t>& reduce_table(unsigned ki, unsigned n) {
    auto& t = reduce[ki][n];
    if (t.empty()) {
      const GateKind k = static_cast<GateKind>(ki + 1);
      const std::size_t entries = std::size_t{1} << (2 * n);
      t.resize(entries + kEvalTablePad);
      for (std::uint32_t idx = 0; idx < entries; ++idx) {
        t[idx] = code(reduce_pins(k, idx, n));
      }
    }
    return t;
  }

  const std::array<std::uint8_t, 16>& join_table(unsigned ki) {
    auto& t = join[ki];
    if (!join_built[ki]) {
      const GateKind k = static_cast<GateKind>(ki + 1);
      for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = 0; b < 4; ++b) {
          Val v = reduce_op(k, from_code(static_cast<std::uint8_t>(a)),
                            from_code(static_cast<std::uint8_t>(b)));
          if (inverting(k)) v = v_not(v);
          t[(a << 2) | b] = code(v);
        }
      }
      join_built[ki] = true;
    }
    return t;
  }
};

EvalTableRegistry& eval_registry() {
  static EvalTableRegistry r;
  return r;
}

}  // namespace

EvalTable eval_table(GateKind k, unsigned nfanins) {
  if (!is_combinational(k) || k == GateKind::Macro) {
    throw Error("eval_table: combinational non-macro kinds only");
  }
  if (nfanins < 1 || nfanins > kMaxPins) {
    throw Error("eval_table: arity out of range");
  }
  const unsigned ki = static_cast<unsigned>(k) - 1;
  EvalTableRegistry& reg = eval_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EvalTable t;
  if (nfanins <= kEvalChunkPins) {
    t.lo = reg.full_table(ki, nfanins).data();
    t.lo_mask = (1u << (2 * nfanins)) - 1;
  } else {
    t.lo = reg.reduce_table(ki, kEvalChunkPins).data();
    t.lo_mask = (1u << (2 * kEvalChunkPins)) - 1;
    t.hi = reg.reduce_table(ki, nfanins - kEvalChunkPins).data();
    t.hi_mask = (1u << (2 * (nfanins - kEvalChunkPins))) - 1;
    t.join = reg.join_table(ki).data();
  }
  return t;
}

}  // namespace cfs
