#include "netlist/gate.h"

#include <mutex>

#include "util/error.h"
#include "util/strings.h"

namespace cfs {

std::string_view kind_name(GateKind k) {
  switch (k) {
    case GateKind::Input: return "INPUT";
    case GateKind::Buf: return "BUF";
    case GateKind::Not: return "NOT";
    case GateKind::And: return "AND";
    case GateKind::Nand: return "NAND";
    case GateKind::Or: return "OR";
    case GateKind::Nor: return "NOR";
    case GateKind::Xor: return "XOR";
    case GateKind::Xnor: return "XNOR";
    case GateKind::Dff: return "DFF";
    case GateKind::Macro: return "MACRO";
  }
  return "?";
}

GateKind kind_from_name(std::string_view name) {
  const std::string u = upper(name);
  if (u == "BUF" || u == "BUFF") return GateKind::Buf;
  if (u == "NOT" || u == "INV") return GateKind::Not;
  if (u == "AND") return GateKind::And;
  if (u == "NAND") return GateKind::Nand;
  if (u == "OR") return GateKind::Or;
  if (u == "NOR") return GateKind::Nor;
  if (u == "XOR") return GateKind::Xor;
  if (u == "XNOR") return GateKind::Xnor;
  if (u == "DFF") return GateKind::Dff;
  if (u == "INPUT") return GateKind::Input;
  throw Error("unknown gate kind: " + std::string(name));
}

Val eval_kind(GateKind k, GateState s, unsigned nfanins) {
  switch (k) {
    case GateKind::Input:
    case GateKind::Dff:
      return state_out(s);
    case GateKind::Buf:
      return state_get(s, 0);
    case GateKind::Not:
      return v_not(state_get(s, 0));
    case GateKind::And:
    case GateKind::Nand: {
      Val r = Val::One;
      for (unsigned i = 0; i < nfanins; ++i) r = v_and(r, state_get(s, i));
      return k == GateKind::And ? r : v_not(r);
    }
    case GateKind::Or:
    case GateKind::Nor: {
      Val r = Val::Zero;
      for (unsigned i = 0; i < nfanins; ++i) r = v_or(r, state_get(s, i));
      return k == GateKind::Or ? r : v_not(r);
    }
    case GateKind::Xor:
    case GateKind::Xnor: {
      Val r = Val::Zero;
      for (unsigned i = 0; i < nfanins; ++i) r = v_xor(r, state_get(s, i));
      return k == GateKind::Xor ? r : v_not(r);
    }
    case GateKind::Macro:
      throw Error("eval_kind cannot evaluate Macro gates; use the circuit's truth table");
  }
  return Val::X;
}

namespace {

// Fast tables for the 8 combinational kinds x fanin 1..4.
struct FastTables {
  std::array<std::array<std::uint8_t, 256>, 8 * 5> tables{};
  FastTables() {
    for (unsigned ki = 0; ki < 8; ++ki) {
      const GateKind k = static_cast<GateKind>(ki + 1);  // Buf..Xnor
      for (unsigned n = 1; n <= 4; ++n) {
        auto& t = tables[ki * 5 + n];
        for (unsigned idx = 0; idx < 256; ++idx) {
          // Normalise every pin code through from_code so the invalid code 1
          // behaves as X, then evaluate.
          GateState s = 0;
          for (unsigned p = 0; p < n; ++p) {
            s = state_set(s, p, from_code(static_cast<std::uint8_t>(idx >> (2 * p))));
          }
          t[idx] = code(eval_kind(k, s, n));
        }
      }
    }
  }
};

const FastTables& fast_tables() {
  static const FastTables t;
  return t;
}

}  // namespace

const std::array<std::uint8_t, 256>& fast_table(GateKind k, unsigned nfanins) {
  const unsigned ki = static_cast<unsigned>(k) - 1;
  return fast_tables().tables[ki * 5 + nfanins];
}

}  // namespace cfs
