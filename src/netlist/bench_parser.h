// ISCAS-85 / ISCAS-89 .bench format reader.
//
// Grammar (one statement per line):
//   # comment
//   INPUT(sig)
//   OUTPUT(sig)
//   sig = KIND(a, b, ...)        KIND in AND OR NAND NOR XOR XNOR NOT
//                                BUF|BUFF DFF (case-insensitive)
//
// OUTPUT may appear before the signal's definition.  Two entry points:
// parse_bench() throws cfs::Error at the first problem (the historical
// API), while parse_bench_diag() collects every diagnostic it can --
// line and column anchored -- and only constructs the circuit when the
// text is clean.  Duplicate signal definitions and references to signals
// that are never defined are rejected by the parser itself, with the
// offending token's position, rather than surfacing later as positionless
// netlist-builder errors.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.h"

namespace cfs {

/// One parse problem, anchored to the offending token.  line/col are
/// 1-based; col 0 means "whole input" (e.g. an empty file).
struct ParseDiag {
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;

  /// ".bench line L, col C: message" (omitting the anchor parts that are 0).
  std::string to_string() const;
};

/// Outcome of a diagnosing parse: either a circuit (diags empty) or a
/// non-empty list of problems in source order, capped at kMaxDiags.
struct ParseResult {
  static constexpr std::size_t kMaxDiags = 100;

  std::optional<Circuit> circuit;
  std::vector<ParseDiag> diags;

  bool ok() const { return circuit.has_value(); }
};

/// Parse .bench text, collecting diagnostics instead of throwing.  After a
/// bad line the parser resynchronises at the next line, so one malformed
/// statement does not hide problems further down.
ParseResult parse_bench_diag(std::string_view text,
                             const std::string& circuit_name);

/// Parse .bench text.  `circuit_name` names the result (typically the file
/// stem).  Throws cfs::Error carrying the first diagnostic.
Circuit parse_bench(std::string_view text, const std::string& circuit_name);

/// Parse a .bench file from disk.
Circuit parse_bench_file(const std::string& path);

}  // namespace cfs
