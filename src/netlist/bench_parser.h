// ISCAS-85 / ISCAS-89 .bench format reader.
//
// Grammar (one statement per line):
//   # comment
//   INPUT(sig)
//   OUTPUT(sig)
//   sig = KIND(a, b, ...)        KIND in AND OR NAND NOR XOR XNOR NOT
//                                BUF|BUFF DFF (case-insensitive)
//
// OUTPUT may appear before the signal's definition.  Unknown keywords,
// redefinitions, undefined references, and combinational cycles are
// reported as cfs::Error with the offending line number.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/circuit.h"

namespace cfs {

/// Parse .bench text.  `circuit_name` names the result (typically the file
/// stem).
Circuit parse_bench(std::string_view text, const std::string& circuit_name);

/// Parse a .bench file from disk.
Circuit parse_bench_file(const std::string& path);

}  // namespace cfs
