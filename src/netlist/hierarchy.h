// Hierarchical netlist composition by module instantiation.
//
// The paper closes with: "More efficient fault simulation is possible when
// hierarchical design information is utilized because the concurrent fault
// simulation method is inherently suited to hierarchical designs."  This
// module provides the design-entry half of that story: any Circuit can be
// used as a module and instantiated (flattened) into a Builder any number
// of times, with instance-qualified names ("u3/sum").  Sequential modules
// flatten naturally -- their flip-flops become flip-flops of the parent.
#pragma once

#include <string>
#include <vector>

#include "netlist/builder.h"
#include "netlist/circuit.h"

namespace cfs {

/// Flatten one instance of `module` into `b`.
///
///  - `inst` prefixes every internal signal name ("<inst>/<name>").
///  - `input_signals` connect the module's primary inputs, in declared
///    order, to existing (or later-defined) parent signals.
///  - Returns the parent-scope names of the module's primary outputs, in
///    declared order, for wiring into the rest of the design.
///
/// Throws cfs::Error if the input count does not match the module.
std::vector<std::string> instantiate(Builder& b, const Circuit& module,
                                     const std::string& inst,
                                     const std::vector<std::string>& input_signals);

}  // namespace cfs
