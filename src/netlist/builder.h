// Incremental netlist construction with name resolution.
//
// Signals may be referenced before they are defined (ISCAS .bench files do
// this freely); everything is resolved when build() runs.  Gates wider than
// kMaxPins are decomposed into balanced trees of synthesized gates so the
// packed-state representation always fits one word.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace cfs {

class Builder {
 public:
  explicit Builder(std::string circuit_name) : name_(std::move(circuit_name)) {}

  /// Declare a primary input.
  void add_input(const std::string& signal);

  /// Declare a D flip-flop: `signal = DFF(d)`.
  void add_dff(const std::string& signal, const std::string& d);

  /// Declare a combinational gate: `signal = kind(fanins...)`.
  void add_gate(GateKind kind, const std::string& signal,
                const std::vector<std::string>& fanins);

  /// Mark a signal as a primary output (idempotent; order preserved).
  void mark_output(const std::string& signal);

  /// Resolve names, decompose wide gates, validate, levelize.
  /// Throws cfs::Error on duplicate definitions, undefined signals, arity
  /// violations, or combinational cycles.
  Circuit build();

 private:
  struct ProtoGate {
    GateKind kind;
    std::string name;
    std::vector<std::string> fanins;
  };

  std::string name_;
  std::vector<ProtoGate> gates_;
  std::vector<std::string> outputs_;
};

}  // namespace cfs
