// Gate kinds and their three-valued evaluation.
//
// Evaluation comes in two flavours, mirroring the paper: a generic fold over
// the packed pin state for any fanin up to kMaxPins, and a 256-entry lookup
// table for gates with at most four inputs ("fast evaluation is extremely
// important in concurrent fault simulation because each faulty gate is
// explicitly evaluated one by one.  Normally this is achieved through table
// look up.").
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/logic.h"
#include "util/packed_state.h"

namespace cfs {

enum class GateKind : std::uint8_t {
  Input,  ///< primary input; value driven externally
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Dff,    ///< D flip-flop; output is the latched state, fanin 0 is D
  Macro,  ///< collapsed fanout-free region evaluated via its truth table
};

/// Upper-case canonical name as used in .bench files ("AND", "DFF", ...).
std::string_view kind_name(GateKind k);

/// Parse a .bench gate keyword (case-insensitive; accepts BUF and BUFF).
/// Throws cfs::Error for unknown keywords.
GateKind kind_from_name(std::string_view name);

/// True for gates whose output is a combinational function of their pins
/// (everything except Input and Dff; Macro counts as combinational).
constexpr bool is_combinational(GateKind k) {
  return k != GateKind::Input && k != GateKind::Dff;
}

/// Fanin arity constraints: {min, max} pins for a kind.
constexpr std::pair<unsigned, unsigned> arity(GateKind k) {
  switch (k) {
    case GateKind::Input: return {0, 0};
    case GateKind::Buf:
    case GateKind::Not:
    case GateKind::Dff: return {1, 1};
    default: return {1, kMaxPins};
  }
}

/// Generic three-valued evaluation of a non-macro kind over a packed state.
/// Input and Dff return the state's current output slot unchanged.
Val eval_kind(GateKind k, GateState s, unsigned nfanins);

/// 256-entry lookup table mapping the low 8 bits of a packed state (up to
/// four 2-bit pin codes) to the 2-bit output code of kind `k` with `nfanins`
/// pins (nfanins <= 4, combinational kinds only).  Tables are built once and
/// shared; the returned reference is valid for the program lifetime.
const std::array<std::uint8_t, 256>& fast_table(GateKind k, unsigned nfanins);

/// Readable padding bytes kept past the last entry of every shared eval
/// table (and every macro truth table): the SIMD gather kernels fetch 32
/// bits per lookup, so indexing the final entry reads up to 3 bytes beyond
/// it.  Padding is storage only -- masks and table semantics never see it.
inline constexpr std::size_t kEvalTablePad = 3;

/// Number of pins a single flat table covers.  Gates up to this arity are
/// one lookup; wider gates split into a low chunk of kEvalChunkPins pins and
/// a high chunk of the remainder, each reduced by table, joined by a third
/// 16-entry table.
inline constexpr unsigned kEvalChunkPins = 8;

/// Resolved table-eval descriptor of one (kind, arity): everything a gate
/// evaluation needs so that no hot loop ever folds over pins.
///
///   nfanins <= kEvalChunkPins : out = from_code(lo[s & lo_mask]); hi == null
///   nfanins  > kEvalChunkPins : out = from_code(
///       join[(lo[s & lo_mask] << 2) | hi[(s >> 2*kEvalChunkPins) & hi_mask]])
///
/// In the wide form `lo` and `hi` hold pure associative reductions (AND / OR
/// / XOR of the chunk's pins, no output inversion) and `join` combines the
/// two chunk codes and applies the kind's inversion.  Every entry normalises
/// the invalid dual-rail code 1 to X, matching eval_kind()'s state_get
/// semantics bit for bit.  Pointers are valid for the program lifetime.
struct EvalTable {
  const std::uint8_t* lo = nullptr;    ///< 4^min(n, kEvalChunkPins) entries
  const std::uint8_t* hi = nullptr;    ///< 4^(n - kEvalChunkPins), or null
  const std::uint8_t* join = nullptr;  ///< 16 entries ((lo_code<<2)|hi_code)
  std::uint32_t lo_mask = 0;
  std::uint32_t hi_mask = 0;
};

/// Table-eval descriptor for combinational kind `k` with `nfanins` pins
/// (1 <= nfanins <= kMaxPins; Buf/Not only at arity 1).  Tables are built
/// lazily per (kind, arity) and shared for the program lifetime.
EvalTable eval_table(GateKind k, unsigned nfanins);

}  // namespace cfs
