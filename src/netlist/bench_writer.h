// .bench format writer: the inverse of bench_parser, used to round-trip
// synthetic circuits and to export macro-extracted netlists for inspection.
// Macro gates cannot be expressed in .bench and are rejected.
#pragma once

#include <string>

#include "netlist/circuit.h"

namespace cfs {

std::string write_bench(const Circuit& c);

}  // namespace cfs
