#include "netlist/bench_parser.h"

#include <fstream>
#include <sstream>

#include "netlist/builder.h"
#include "util/error.h"
#include "util/strings.h"

namespace cfs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw Error(".bench line " + std::to_string(line_no) + ": " + msg);
}

// Parse "HEAD(arg1, arg2, ...)" -> {HEAD, args}.  Returns false if `s` does
// not have call shape.
bool parse_call(std::string_view s, std::string& head,
                std::vector<std::string>& args) {
  const std::size_t open = s.find('(');
  const std::size_t close = s.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  head = std::string(trim(s.substr(0, open)));
  args = split(s.substr(open + 1, close - open - 1), ',');
  return !head.empty();
}

}  // namespace

Circuit parse_bench(std::string_view text, const std::string& circuit_name) {
  Builder b(circuit_name);
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      std::string head;
      std::vector<std::string> args;
      if (!parse_call(line, head, args) || args.size() != 1) {
        fail(line_no, "expected INPUT(sig) or OUTPUT(sig)");
      }
      const std::string u = upper(head);
      if (u == "INPUT") {
        b.add_input(args[0]);
      } else if (u == "OUTPUT") {
        b.mark_output(args[0]);
      } else {
        fail(line_no, "unknown directive '" + head + "'");
      }
      continue;
    }

    const std::string target(trim(line.substr(0, eq)));
    if (target.empty()) fail(line_no, "missing signal name before '='");
    std::string head;
    std::vector<std::string> args;
    if (!parse_call(line.substr(eq + 1), head, args) || args.empty()) {
      fail(line_no, "expected sig = KIND(a, ...)");
    }
    GateKind kind;
    try {
      kind = kind_from_name(head);
    } catch (const Error& e) {
      fail(line_no, e.what());
    }
    if (kind == GateKind::Input) fail(line_no, "INPUT cannot be assigned");
    if (kind == GateKind::Dff) {
      if (args.size() != 1) fail(line_no, "DFF takes exactly one input");
      b.add_dff(target, args[0]);
    } else {
      b.add_gate(kind, target, args);
    }
  }
  Circuit c = b.build();
  if (c.num_gates() == 0) {
    throw Error(".bench input '" + circuit_name + "' defines no gates");
  }
  return c;
}

Circuit parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open .bench file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string stem = path;
  if (const std::size_t slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const std::size_t dot = stem.find_last_of('.');
      dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return parse_bench(ss.str(), stem);
}

}  // namespace cfs
