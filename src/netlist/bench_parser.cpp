#include "netlist/bench_parser.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "netlist/builder.h"
#include "util/error.h"
#include "util/strings.h"

namespace cfs {

namespace {

// View-preserving trim: the returned view aliases `s`, so token positions
// can be recovered by pointer arithmetic against the raw line.
std::string_view vtrim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Parse "HEAD(arg1, arg2, ...)" into views aliasing `s`.  Returns false if
// `s` does not have call shape.
bool parse_call(std::string_view s, std::string_view& head,
                std::vector<std::string_view>& args) {
  const std::size_t open = s.find('(');
  const std::size_t close = s.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  head = vtrim(s.substr(0, open));
  args.clear();
  std::string_view inside = s.substr(open + 1, close - open - 1);
  std::size_t p = 0;
  while (p <= inside.size()) {
    std::size_t e = inside.find(',', p);
    if (e == std::string_view::npos) e = inside.size();
    const std::string_view piece = vtrim(inside.substr(p, e - p));
    if (!piece.empty()) args.push_back(piece);
    p = e + 1;
  }
  return !head.empty();
}

}  // namespace

std::string ParseDiag::to_string() const {
  std::string s = ".bench";
  if (line != 0) s += " line " + std::to_string(line);
  if (col != 0) s += ", col " + std::to_string(col);
  s += ": " + message;
  return s;
}

ParseResult parse_bench_diag(std::string_view text,
                             const std::string& circuit_name) {
  ParseResult r;
  Builder b(circuit_name);

  struct Ref {
    std::string name;
    std::size_t line, col;
  };
  // First definition site of each signal (also seeded for diagnosed lines,
  // so one bad definition does not cascade into bogus "never defined"
  // reports for every reference to it).
  std::unordered_map<std::string, std::size_t> defined;
  std::vector<Ref> refs;
  std::size_t gates_added = 0;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size() && r.diags.size() < ParseResult::kMaxDiags) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    // Column of a token view that aliases `raw` (1-based).
    const auto col_of = [&](std::string_view tok) -> std::size_t {
      if (tok.data() < raw.data() || tok.data() > raw.data() + raw.size()) {
        return 1;
      }
      return static_cast<std::size_t>(tok.data() - raw.data()) + 1;
    };
    const auto diag = [&](std::size_t col, std::string msg) {
      r.diags.push_back(ParseDiag{line_no, col, std::move(msg)});
    };
    const auto define = [&](std::string_view sig, std::size_t col) {
      const auto [it, fresh] = defined.emplace(std::string(sig), line_no);
      if (!fresh) {
        diag(col, "signal '" + std::string(sig) + "' is already defined (line " +
                      std::to_string(it->second) + ")");
      }
      return fresh;
    };

    std::string_view line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = vtrim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      std::string_view head;
      std::vector<std::string_view> args;
      if (!parse_call(line, head, args) || args.size() != 1) {
        diag(col_of(line), "expected INPUT(sig) or OUTPUT(sig)");
        continue;
      }
      const std::string u = upper(head);
      if (u == "INPUT") {
        if (define(args[0], col_of(args[0]))) {
          b.add_input(std::string(args[0]));
        }
      } else if (u == "OUTPUT") {
        refs.push_back(Ref{std::string(args[0]), line_no, col_of(args[0])});
        b.mark_output(std::string(args[0]));
      } else {
        diag(col_of(head), "unknown directive '" + std::string(head) + "'");
      }
      continue;
    }

    const std::string_view target = vtrim(line.substr(0, eq));
    if (target.empty()) {
      diag(col_of(line), "missing signal name before '='");
      continue;
    }
    std::string_view head;
    std::vector<std::string_view> args;
    if (!parse_call(line.substr(eq + 1), head, args) || args.empty()) {
      define(target, col_of(target));  // suppress cascades; dup still reported
      diag(col_of(line), "expected sig = KIND(a, ...)");
      continue;
    }
    GateKind kind;
    try {
      kind = kind_from_name(std::string(head));
    } catch (const Error& e) {
      define(target, col_of(target));
      diag(col_of(head), e.what());
      continue;
    }
    if (kind == GateKind::Input) {
      define(target, col_of(target));
      diag(col_of(head), "INPUT cannot be assigned");
      continue;
    }
    if (!define(target, col_of(target))) continue;
    for (const std::string_view a : args) {
      refs.push_back(Ref{std::string(a), line_no, col_of(a)});
    }
    if (kind == GateKind::Dff) {
      if (args.size() != 1) {
        diag(col_of(head), "DFF takes exactly one input, got " +
                               std::to_string(args.size()));
        continue;
      }
      b.add_dff(std::string(target), std::string(args[0]));
    } else {
      std::vector<std::string> fanins;
      fanins.reserve(args.size());
      for (const std::string_view a : args) fanins.emplace_back(a);
      b.add_gate(kind, std::string(target), fanins);
    }
    ++gates_added;
  }

  // Dangling fanins / outputs: every referenced signal must be defined
  // somewhere (before or after the reference -- .bench allows forward use).
  for (const Ref& ref : refs) {
    if (r.diags.size() >= ParseResult::kMaxDiags) break;
    if (defined.find(ref.name) == defined.end()) {
      r.diags.push_back(ParseDiag{
          ref.line, ref.col,
          "signal '" + ref.name + "' is referenced but never defined"});
    }
  }
  if (r.diags.empty() && gates_added == 0 && defined.empty()) {
    r.diags.push_back(ParseDiag{
        0, 0, "input '" + circuit_name + "' defines no gates"});
  }
  if (!r.diags.empty()) return r;

  // Remaining structural problems (combinational cycles, arity limits after
  // wide-gate decomposition) surface from the builder without a position.
  try {
    Circuit c = b.build();
    if (c.num_gates() == 0) {
      r.diags.push_back(ParseDiag{
          0, 0, "input '" + circuit_name + "' defines no gates"});
      return r;
    }
    r.circuit.emplace(std::move(c));
  } catch (const Error& e) {
    r.diags.push_back(ParseDiag{0, 0, e.what()});
  }
  return r;
}

Circuit parse_bench(std::string_view text, const std::string& circuit_name) {
  ParseResult r = parse_bench_diag(text, circuit_name);
  if (!r.ok()) throw Error(r.diags.front().to_string());
  return std::move(*r.circuit);
}

Circuit parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open .bench file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string stem = path;
  if (const std::size_t slash = stem.find_last_of('/');
      slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const std::size_t dot = stem.find_last_of('.');
      dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return parse_bench(ss.str(), stem);
}

}  // namespace cfs
