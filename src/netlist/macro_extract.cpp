#include "netlist/macro_extract.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace cfs {

namespace {

// Evaluate the region of `m` over the external pin values `ext`, optionally
// forcing a stuck-at value at one internal site.  Returns the root output.
Val eval_region(const Circuit& orig, const MacroInfo& m,
                const std::vector<Val>& ext, GateId site_gate,
                std::uint16_t site_pin, Val stuck, bool inject) {
  // Driver gate id -> value, for internal results.
  std::unordered_map<GateId, Val> vals;
  vals.reserve(m.internal.size());
  auto pin_index_of = [&](GateId driver) -> int {
    for (std::size_t i = 0; i < m.ext_drivers.size(); ++i) {
      if (m.ext_drivers[i] == driver) return static_cast<int>(i);
    }
    return -1;
  };
  Val out = Val::X;
  for (GateId g : m.internal) {
    const auto fi = orig.fanins(g);
    GateState s = 0;
    for (std::size_t p = 0; p < fi.size(); ++p) {
      Val v;
      const auto it = vals.find(fi[p]);
      if (it != vals.end()) {
        v = it->second;
      } else {
        const int pi = pin_index_of(fi[p]);
        if (pi < 0) throw Error("macro region has unmapped external driver");
        v = ext[static_cast<std::size_t>(pi)];
      }
      if (inject && g == site_gate && site_pin == p) v = stuck;
      s = state_set(s, static_cast<unsigned>(p), v);
    }
    Val o = orig.eval(g, s);
    if (inject && g == site_gate && site_pin == kOutputPin) o = stuck;
    vals[g] = o;
    out = o;  // internal is in topo order with the root last
  }
  return out;
}

TruthTable build_table(const Circuit& orig, const MacroInfo& m,
                       GateId site_gate, std::uint16_t site_pin, Val stuck,
                       bool inject) {
  const unsigned k = static_cast<unsigned>(m.ext_drivers.size());
  TruthTable t;
  t.num_inputs = static_cast<std::uint8_t>(k);
  t.out.resize(std::size_t{1} << (2 * k));
  std::vector<Val> ext(k);
  for (std::size_t idx = 0; idx < t.out.size(); ++idx) {
    for (unsigned p = 0; p < k; ++p) {
      ext[p] = from_code(static_cast<std::uint8_t>(idx >> (2 * p)));
    }
    t.out[idx] =
        code(eval_region(orig, m, ext, site_gate, site_pin, stuck, inject));
  }
  return t;
}

}  // namespace

TruthTable build_macro_table(const Circuit& orig, const MacroInfo& m) {
  return build_table(orig, m, kNoGate, 0, Val::X, false);
}

TruthTable build_macro_table_faulty(const Circuit& orig, const MacroInfo& m,
                                    GateId site_gate, std::uint16_t site_pin,
                                    Val stuck) {
  return build_table(orig, m, site_gate, site_pin, stuck, true);
}

MacroExtraction extract_macros(const Circuit& orig, MacroOptions opt) {
  if (opt.max_inputs < 2 || opt.max_inputs > 6) {
    throw Error("MacroOptions::max_inputs must be in [2, 6]");
  }
  const std::size_t n = orig.num_gates();
  std::vector<std::uint8_t> claimed(n, 0);
  std::vector<MacroInfo> macros;

  // Walk combinational gates output-side first so a gate sees its consumers'
  // regions before it could become a root itself.
  const auto topo = orig.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId root = *it;
    if (claimed[root] || orig.kind(root) == GateKind::Macro) continue;

    MacroInfo m;
    m.root = root;
    std::unordered_set<GateId> internal{root};
    std::vector<GateId> ext;
    for (GateId f : orig.fanins(root)) {
      if (std::find(ext.begin(), ext.end(), f) == ext.end()) ext.push_back(f);
    }
    if (ext.size() > opt.max_inputs) {
      // Root alone already exceeds the cap; keep as a plain gate.
      claimed[root] = 1;
      continue;
    }

    // Greedy absorption until no external driver qualifies.
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t i = 0; i < ext.size(); ++i) {
        const GateId d = ext[i];
        if (claimed[d] || internal.count(d)) continue;
        if (!is_combinational(orig.kind(d)) ||
            orig.kind(d) == GateKind::Macro || orig.is_po(d)) {
          continue;
        }
        bool all_inside = true;
        for (const Fanout& fo : orig.fanouts(d)) {
          if (!internal.count(fo.gate)) {
            all_inside = false;
            break;
          }
        }
        if (!all_inside) continue;
        // Tentative new external set.
        std::vector<GateId> next_ext;
        next_ext.reserve(ext.size() + orig.num_fanins(d));
        for (std::size_t j = 0; j < ext.size(); ++j) {
          if (j != i) next_ext.push_back(ext[j]);
        }
        for (GateId f : orig.fanins(d)) {
          if (internal.count(f)) continue;
          if (std::find(next_ext.begin(), next_ext.end(), f) ==
              next_ext.end()) {
            next_ext.push_back(f);
          }
        }
        if (next_ext.size() > opt.max_inputs) continue;
        internal.insert(d);
        ext = std::move(next_ext);
        grew = true;
        break;  // restart scan: ext changed under us
      }
    }

    if (internal.size() < opt.min_gates) {
      claimed[root] = 1;
      continue;
    }
    for (GateId g : internal) claimed[g] = 1;
    m.internal.assign(internal.begin(), internal.end());
    std::sort(m.internal.begin(), m.internal.end(),
              [&](GateId a, GateId b) { return orig.level(a) < orig.level(b); });
    m.ext_drivers = std::move(ext);
    macros.push_back(std::move(m));
  }

  // Assemble the extracted circuit.
  std::vector<std::uint32_t> macro_of(n, kNoGate);
  std::vector<std::uint8_t> is_internal(n, 0);
  std::vector<GateId> root_macro(n, kNoGate);
  for (std::size_t mi = 0; mi < macros.size(); ++mi) {
    for (GateId g : macros[mi].internal) {
      macro_of[g] = static_cast<std::uint32_t>(mi);
      if (g != macros[mi].root) is_internal[g] = 1;
    }
    root_macro[macros[mi].root] = static_cast<GateId>(mi);
  }

  CircuitData data;
  data.name = orig.name() + "+macros";
  std::vector<GateId> gate_map(n, kNoGate);
  for (GateId g = 0; g < n; ++g) {
    if (is_internal[g]) continue;
    gate_map[g] = static_cast<GateId>(data.kinds.size());
    const bool as_macro = root_macro[g] != kNoGate;
    data.kinds.push_back(as_macro ? GateKind::Macro : orig.kind(g));
    data.names.push_back(orig.gate_name(g));
    data.fanins.emplace_back();  // filled below once all ids exist
    data.tables_of.push_back(kNoGate);
  }
  // Fanins and truth tables.
  for (GateId g = 0; g < n; ++g) {
    if (is_internal[g]) continue;
    const GateId ng = gate_map[g];
    std::vector<GateId>& fi = data.fanins[ng];
    if (root_macro[g] != kNoGate) {
      MacroInfo& m = macros[root_macro[g]];
      m.macro_gate = ng;
      for (GateId d : m.ext_drivers) fi.push_back(gate_map[d]);
      data.tables_of[ng] = static_cast<std::uint32_t>(data.tables.size());
      data.tables.push_back(build_macro_table(orig, m));
    } else {
      for (GateId d : orig.fanins(g)) fi.push_back(gate_map[d]);
    }
  }
  for (GateId g : orig.inputs()) data.primary_inputs.push_back(gate_map[g]);
  for (GateId g : orig.outputs()) data.primary_outputs.push_back(gate_map[g]);

  MacroExtraction result{Circuit(std::move(data)), std::move(gate_map),
                         std::move(macro_of), std::move(macros)};
  return result;
}

}  // namespace cfs
