// Live progress line for interactive campaigns (`--progress`).
//
// A `ProgressMeter` is a Timeline observer: each recorded sample updates a
// single status line on stderr -- coverage %, vectors done / total,
// throughput, ETA, and the shard-imbalance ratio (max shard live-fault
// weight over the balanced share; 1.00 = perfectly even).  On a TTY the
// line redraws in place with `\r` (throttled so a fast campaign does not
// saturate the terminal); on a pipe it degrades to occasional plain lines
// so logs stay readable.  The meter writes only to stderr and never
// touches stdout, where reports and digests go.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/timeline.h"

namespace cfs::obs {

class ProgressMeter {
 public:
  /// `total_vectors` drives the percentage and ETA (0 = unknown: the meter
  /// shows counts and rate only).  `force_tty` pins the output style for
  /// tests; by default isatty(stderr) decides.
  explicit ProgressMeter(std::uint64_t total_vectors, int force_tty = -1);
  ~ProgressMeter();

  /// Timeline observer entry point (driver thread only).
  void update(const TimelineSample& s);

  /// Erase/terminate the live line (called once, at end of run).  Safe to
  /// call when nothing was ever printed.
  void finish();

  /// Attach to a timeline as its observer.
  void attach(Timeline& tl);

  /// One rendered status line (no \r or \n) -- exposed for tests.
  std::string render(const TimelineSample& s) const;

 private:
  std::uint64_t total_;
  std::uint64_t universe_ = 0;  ///< inferred from the first sample
  bool tty_;
  bool printed_ = false;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace cfs::obs
