#include "obs/timeline.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json_stats.h"
#include "obs/trace.h"
#include "util/error.h"

namespace cfs::obs {

Timeline::Timeline(std::size_t capacity, std::uint64_t every)
    : every_(every == 0 ? 1 : every),
      ring_(capacity == 0 ? 1 : capacity),
      t0_(std::chrono::steady_clock::now()) {
  set_num_shards(1);
}

void Timeline::set_num_shards(unsigned k) {
  if (k == 0) k = 1;
  num_shards_ = k;
  for (TimelineSample& s : ring_) s.shards.resize(k);
}

std::uint64_t Timeline::now_us() const {
  const auto d = std::chrono::steady_clock::now() - t0_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

void Timeline::record(const TimelineSample& s) {
  TimelineSample& slot = ring_[recorded_ % ring_.size()];
  slot.vec = s.vec;
  slot.hard = s.hard;
  slot.potential = s.potential;
  slot.dropped = s.dropped;
  slot.live_faults = s.live_faults;
  slot.live_elements = s.live_elements;
  slot.traversals = s.traversals;
  slot.gates = s.gates;
  slot.rebalances = s.rebalances;
  slot.t_us = s.t_us;
  slot.latency_us = s.latency_us;
  // Slot shard vectors were sized by set_num_shards(); element-wise copy
  // keeps the hot path allocation-free.
  const std::size_t k =
      s.shards.size() < slot.shards.size() ? s.shards.size()
                                           : slot.shards.size();
  for (std::size_t i = 0; i < k; ++i) slot.shards[i] = s.shards[i];
  ++recorded_;
  if (streaming()) append_stream_line(s);
  if (observer_) observer_(s);
}

std::size_t Timeline::size() const {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                  : ring_.size();
}

const TimelineSample& Timeline::at(std::size_t i) const {
  if (recorded_ <= ring_.size()) return ring_[i];
  return ring_[(recorded_ + i) % ring_.size()];
}

void Timeline::stream_to(const std::string& path) {
  stream_path_ = path;
  header_pending_ = true;
}

void Timeline::append_stream_line(const TimelineSample& s) {
  std::ostringstream line;
  if (header_pending_) {
    // One header object per stream-open; a resumed campaign appends a new
    // header, so consumers treat lines with a "timeline" key as markers.
    JsonWriter h(line);
    h.begin_object();
    h.field("timeline", std::uint64_t{1});
    h.field("num_shards", num_shards_);
    h.field("every", every_);
    h.end_object();
    line << '\n';
    header_pending_ = false;
  }
  JsonWriter w(line);
  write_sample_json(w, s);
  line << '\n';
  stream_buffer_ += line.str();
}

void Timeline::flush() {
  if (stream_path_.empty() || stream_buffer_.empty()) return;
  // First flush with no file on disk: create it atomically (tmp+rename)
  // so a kill during the very first write never leaves a torn stream.
  if (!stream_opened_ && !std::ifstream(stream_path_).good()) {
    atomic_write(stream_path_, stream_buffer_, "timeline stream");
    stream_opened_ = true;
    stream_buffer_.clear();
    return;
  }
  // Later flushes (and a campaign resume continuing an existing stream)
  // append whole lines in place; JSONL consumers tolerate a torn tail
  // line, and checkpoint-aligned flushing keeps the stream duplicate-free.
  std::ofstream f(stream_path_, std::ios::app);
  if (!f) {
    throw Error("cannot write timeline stream " + stream_path_ + ": " +
                std::strerror(errno));
  }
  f << stream_buffer_;
  f.flush();
  if (!f) {
    throw Error("error writing timeline stream " + stream_path_ + ": " +
                std::strerror(errno));
  }
  stream_opened_ = true;
  stream_buffer_.clear();
}

void Timeline::write_sample_json(JsonWriter& w, const TimelineSample& s) {
  w.begin_object();
  w.field("vec", s.vec);
  w.field("hard", s.hard);
  w.field("potential", s.potential);
  w.field("dropped", s.dropped);
  w.field("live_faults", s.live_faults);
  w.field("live_elements", s.live_elements);
  w.field("traversals", s.traversals);
  w.field("gates", s.gates);
  w.field("rebalances", s.rebalances);
  w.field("t_us", s.t_us);
  w.field("latency_us", s.latency_us);
  w.key("shards");
  w.begin_array();
  for (const ShardSample& sh : s.shards) {
    w.begin_object();
    w.field("live_faults", sh.live_faults);
    w.field("live_elements", sh.live_elements);
    w.field("latency_us", sh.latency_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Timeline::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("every", every_);
  w.field("capacity", static_cast<std::uint64_t>(ring_.size()));
  w.field("num_shards", num_shards_);
  w.field("recorded", recorded_);
  w.key("samples");
  w.begin_array();
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) write_sample_json(w, at(i));
  w.end_array();
  w.end_object();
}

}  // namespace cfs::obs
