// JSON stats export: the machine-readable face of the telemetry subsystem.
//
// `JsonWriter` is a small streaming JSON serializer (objects, arrays,
// strings with escaping, integers, doubles, bools) -- enough for the stats
// documents, the Chrome trace, and the bench `--json` mode, with no
// third-party dependency.  `write_counters` / `write_timers` serialize the
// obs blocks under stable snake_case keys so tools/stats_schema.json can
// pin the format.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/timers.h"

namespace cfs::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(const std::string& s) { value(std::string_view(s)); }
  void value(std::uint64_t n);
  void value(std::int64_t n);
  void value(unsigned n) { value(static_cast<std::uint64_t>(n)); }
  void value(int n) { value(static_cast<std::int64_t>(n)); }
  void value(double d);
  void value(bool b);

  /// Convenience: key + scalar value.
  template <typename T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void separator();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  // One frame per open container: whether a value/key has been emitted.
  std::vector<bool> have_item_;
  bool after_key_ = false;
};

/// {"elements_traversed": n, ...} -- every counter, registry order.
void write_counters(JsonWriter& w, const Counters& c);

/// Only the counters whose shard sums are deterministic (the subset the
/// stats document guarantees bit-identical across --threads).
void write_deterministic_counters(JsonWriter& w, const Counters& c);

/// {"good_eval": {"seconds": s, "calls": n}, ...} -- phases with activity;
/// `all_phases` forces every phase (schema-stable totals block).
void write_timers(JsonWriter& w, const PhaseTimers& t,
                  bool all_phases = false);

/// {"list_length": {"count": n, "sum": s, "max": m, "mean": x,
///  "buckets": [{"lo": l, "hi": h, "n": c}, ...]}, ...} -- every named
/// distribution; empty buckets are elided so documents stay small.
void write_histograms(JsonWriter& w, const HistogramSet& hs);

/// {"num_levels": n, "evals": [...], "merges": [...], "traversals":
///  [...]} -- per-level work attribution along the levelized axis.
void write_level_profile(JsonWriter& w, const LevelProfile& lp);

}  // namespace cfs::obs
