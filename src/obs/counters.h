// Counter registry: the telemetry backbone of the paper's evaluation.
//
// Tables 2-6 of the paper compare engines by *counts* -- fault-list
// elements touched, events scheduled, faults dropped -- not by opaque CPU
// seconds alone.  Every engine owns one `Counters` block (a fixed array of
// uint64_t indexed by the `Counter` enum) and increments it from the hot
// paths through the CFS_COUNT macros.  A build with -DCFS_OBS_ENABLED=0
// (CMake: -DCFS_OBS=OFF) compiles every increment to nothing, so the
// instrumented engine and the bare engine are the same machine code; the
// default build pays one predictable increment per counted event.
//
// Counters come in two determinism classes.  *Fault-level* counters
// (detections, faults dropped) advance exactly once per fault-status
// transition, and every transition happens inside the fault's owner shard,
// so their sums are bit-identical for any shard count.  *Element-level*
// counters (traversals, allocations, migrations) measure work, and work
// depends on which faults share an engine -- a shard re-merges a gate only
// when one of *its* faults changes there -- so their sums are comparable
// but not invariant.  counter_shard_invariant() encodes the class; tests
// and the JSON exporter rely on it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#ifndef CFS_OBS_ENABLED
#define CFS_OBS_ENABLED 1
#endif

namespace cfs::obs {

enum class Counter : unsigned {
  // Element-level (work done; shard-dependent).
  ElementsTraversed,   ///< cursor steps over live fault-list elements
  ElementsCopied,      ///< elements emitted by a multi-list merge
  ElementsAllocated,   ///< pool allocations of fault-list elements
  ElementsFreed,       ///< pool frees (churn, convergence, drops)
  ElementsReused,      ///< surviving elements patched in place by a merge
  ElementsRecycled,    ///< unlinked elements respliced for an insert in the
                       ///< same merge (no pool round trip)
  ListsUnchanged,      ///< in-place list applications that touched nothing
  DropUnlinksLazy,     ///< dropped-fault elements unlinked mid-traversal
  DropSkipsEager,      ///< dropped site faults skipped before materialising
  VisToInvMigrations,  ///< visible elements that converged to invisible
  InvToVisMigrations,  ///< invisible elements that re-diverged to visible
  MacroTableLookups,   ///< functional-fault evaluations via a macro table
  TableEvals,          ///< hot-path gate evaluations served by a flat table
  EventsScheduled,     ///< gate ids newly entered into the level queue
  BitmapCoalesced,     ///< schedule() ORs absorbed by an already-set bit
  SentinelHits,        ///< list traversals that reached the shared sentinel
  BatchWordsEvaluated, ///< packed good-machine Word64 gate evaluations
  BatchLanesWasted,    ///< idle lanes across packed good-machine steps
  Rebalances,          ///< dynamic ownership repartitions (driver)
  FaultsMigrated,      ///< faults whose owner shard changed in a repartition
  ElementsMigrated,    ///< live elements carried by migrated faults
  // Fault-level (status transitions; shard-invariant sums).
  DetectionsHard,      ///< faults newly promoted to Detect::Hard
  DetectionsPotential, ///< faults newly promoted to Detect::Potential
  FaultsDropped,       ///< hard detections that armed event-driven dropping
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

constexpr std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::ElementsTraversed: return "elements_traversed";
    case Counter::ElementsCopied: return "elements_copied";
    case Counter::ElementsAllocated: return "elements_allocated";
    case Counter::ElementsFreed: return "elements_freed";
    case Counter::ElementsReused: return "elements_reused";
    case Counter::ElementsRecycled: return "elements_recycled";
    case Counter::ListsUnchanged: return "lists_unchanged";
    case Counter::DropUnlinksLazy: return "drop_unlinks_lazy";
    case Counter::DropSkipsEager: return "drop_skips_eager";
    case Counter::VisToInvMigrations: return "vis_to_inv_migrations";
    case Counter::InvToVisMigrations: return "inv_to_vis_migrations";
    case Counter::MacroTableLookups: return "macro_table_lookups";
    case Counter::TableEvals: return "table_evals";
    case Counter::EventsScheduled: return "events_scheduled";
    case Counter::BitmapCoalesced: return "bitmap_coalesced";
    case Counter::SentinelHits: return "sentinel_hits";
    case Counter::BatchWordsEvaluated: return "batch_words_evaluated";
    case Counter::BatchLanesWasted: return "batch_lanes_wasted";
    case Counter::Rebalances: return "rebalances";
    case Counter::FaultsMigrated: return "faults_migrated";
    case Counter::ElementsMigrated: return "elements_migrated";
    case Counter::DetectionsHard: return "detections_hard";
    case Counter::DetectionsPotential: return "detections_potential";
    case Counter::FaultsDropped: return "faults_dropped";
    case Counter::kCount: break;
  }
  return "?";
}

/// True for counters whose *sum over shards* is a pure function of the
/// (circuit, universe, test set): one increment per fault-status
/// transition, each owned by exactly one shard.
constexpr bool counter_shard_invariant(Counter c) {
  return c == Counter::DetectionsHard || c == Counter::DetectionsPotential ||
         c == Counter::FaultsDropped;
}

/// One engine's counter block.  Plain aggregate: copy, sum, compare.
struct Counters {
  std::array<std::uint64_t, kNumCounters> v{};

  std::uint64_t get(Counter c) const {
    return v[static_cast<std::size_t>(c)];
  }
  void bump(Counter c, std::uint64_t n = 1) {
    v[static_cast<std::size_t>(c)] += n;
  }
  void merge(const Counters& o) {
    for (std::size_t i = 0; i < kNumCounters; ++i) v[i] += o.v[i];
  }
  void reset() { v.fill(0); }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint64_t x : v) t += x;
    return t;
  }
  bool operator==(const Counters&) const = default;
};

}  // namespace cfs::obs

// Hot-path increment macros.  `cs` is a Counters lvalue, `which` an
// unqualified Counter enumerator.
#if CFS_OBS_ENABLED
#define CFS_COUNT(cs, which) (cs).bump(::cfs::obs::Counter::which)
#define CFS_COUNT_N(cs, which, n) (cs).bump(::cfs::obs::Counter::which, (n))
#else
#define CFS_COUNT(cs, which) ((void)0)
#define CFS_COUNT_N(cs, which, n) ((void)0)
#endif
