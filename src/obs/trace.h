// Chrome trace-event emitter for visual inspection of shard imbalance.
//
// Collects duration ("X"), instant ("i"), and thread-name metadata ("M")
// events and writes the chrome://tracing / Perfetto JSON object format:
// one pid for the process, one tid (track) per shard plus a driver track.
// The emitter is thread-safe -- shard workers record concurrently -- and
// timestamps are microseconds relative to the emitter's construction, so
// a trace of a run starts at t=0 regardless of host epoch.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cfs::obs {

/// Fail fast on output paths: probe that `path` can be created/appended
/// (without truncating existing content) and throw cfs::Error carrying the
/// OS diagnostic if not.  Emitters open their files lazily -- often only
/// at save time, after a long run -- so CLI front-ends call this up front
/// to reject a bad --trace/--timeline path before burning the simulation.
void ensure_writable(const std::string& path, const std::string& what);

/// Atomically replace `path` with `content`: fully write a sibling temp
/// file, then rename it into place (the same protocol as resil/ snapshot
/// writes).  A crash mid-export leaves either the old file or the new one,
/// never a torn artifact.  Throws cfs::Error ("<what> file ...") on any I/O
/// failure, with the temp file removed.
void atomic_write(const std::string& path, const std::string& content,
                  const std::string& what);

class TraceEmitter {
 public:
  TraceEmitter();

  /// Microseconds elapsed since construction (the trace's time base).
  std::uint64_t now_us() const;

  /// Name a track: shown by chrome://tracing instead of the raw tid.
  void name_track(std::uint32_t tid, const std::string& name);

  /// Complete event: `name` ran on track `tid` during [ts_us, ts_us+dur_us].
  void complete(std::uint32_t tid, const std::string& name,
                std::uint64_t ts_us, std::uint64_t dur_us);

  /// Instant event (thread-scoped): a point-in-time marker, e.g. one or
  /// more fault detections.
  void instant(std::uint32_t tid, const std::string& name,
               std::uint64_t ts_us);

  /// Counter event: a named track of stacked series values at `ts_us`
  /// (chrome://tracing renders these as area charts under the thread
  /// tracks).  The timeline sampler emits coverage / live-fault /
  /// live-element series through this.
  void counter(std::uint32_t tid, const std::string& name, std::uint64_t ts_us,
               std::vector<std::pair<std::string, std::uint64_t>> series);

  std::size_t num_events() const;

  /// Serialize the whole trace as a chrome://tracing JSON object.
  void write(std::ostream& os) const;
  /// write() to a file; throws cfs::Error on I/O failure.
  void save(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'X', 'i', 'M', or 'C'
    std::uint32_t tid;
    std::uint64_t ts;
    std::uint64_t dur;
    std::string name;
    // 'C' only: the counter series (name, value) pairs.
    std::vector<std::pair<std::string, std::uint64_t>> series;
  };

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace cfs::obs
