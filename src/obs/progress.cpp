#include "obs/progress.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>

namespace cfs::obs {

namespace {

// Redraw throttles: a TTY refreshes smoothly, a pipe gets sparse lines.
constexpr auto kTtyInterval = std::chrono::milliseconds(50);
constexpr auto kPipeInterval = std::chrono::seconds(2);

void format_eta(char* buf, std::size_t n, double seconds) {
  if (seconds < 0) {
    std::snprintf(buf, n, "--");
  } else if (seconds < 90) {
    std::snprintf(buf, n, "%.0fs", seconds);
  } else if (seconds < 5400) {
    std::snprintf(buf, n, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, n, "%.1fh", seconds / 3600.0);
  }
}

}  // namespace

ProgressMeter::ProgressMeter(std::uint64_t total_vectors, int force_tty)
    : total_(total_vectors),
      tty_(force_tty >= 0 ? force_tty != 0 : ::isatty(2) != 0),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - kPipeInterval) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::attach(Timeline& tl) {
  tl.set_observer([this](const TimelineSample& s) { update(s); });
}

std::string ProgressMeter::render(const TimelineSample& s) const {
  const std::uint64_t done = s.vec + 1;
  const double cov =
      universe_ == 0 ? 0.0
                     : 100.0 * static_cast<double>(s.hard) /
                           static_cast<double>(universe_);
  const double secs = static_cast<double>(s.t_us) * 1e-6;
  const double rate = secs > 0 ? static_cast<double>(done) / secs : 0.0;
  const double eta =
      (total_ > done && rate > 0)
          ? static_cast<double>(total_ - done) / rate
          : (total_ == 0 ? -1.0 : 0.0);
  // Imbalance: heaviest shard's live-fault weight over the balanced share.
  std::uint64_t max_live = 0, sum_live = 0;
  for (const ShardSample& sh : s.shards) {
    sum_live += sh.live_faults;
    if (sh.live_faults > max_live) max_live = sh.live_faults;
  }
  const double imb =
      sum_live == 0 ? 1.0
                    : static_cast<double>(max_live) *
                          static_cast<double>(s.shards.size()) /
                          static_cast<double>(sum_live);

  char etabuf[16];
  format_eta(etabuf, sizeof etabuf, eta);
  char line[192];
  if (total_ > 0) {
    std::snprintf(line, sizeof line,
                  "cfs %5.1f%% cov | vec %" PRIu64 "/%" PRIu64
                  " | %.0f vec/s | eta %s | hard %" PRIu64 " | imb %.2f",
                  cov, done, total_, rate, etabuf, s.hard, imb);
  } else {
    std::snprintf(line, sizeof line,
                  "cfs %5.1f%% cov | vec %" PRIu64 " | %.0f vec/s | hard %" PRIu64
                  " | imb %.2f",
                  cov, done, rate, s.hard, imb);
  }
  return line;
}

void ProgressMeter::update(const TimelineSample& s) {
  if (universe_ == 0) universe_ = s.hard + s.live_faults;
  const auto now = std::chrono::steady_clock::now();
  const auto interval = tty_ ? kTtyInterval : kPipeInterval;
  const bool last = total_ > 0 && s.vec + 1 >= total_;
  if (!last && now - last_print_ < interval) return;
  last_print_ = now;
  const std::string line = render(s);
  if (tty_) {
    // \r redraw; trailing clear-to-eol spaces cover a shrinking line.
    std::fprintf(stderr, "\r%s   \r%s", line.c_str(), line.c_str());
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  std::fflush(stderr);
  printed_ = true;
}

void ProgressMeter::finish() {
  if (finished_) return;
  finished_ = true;
  if (printed_ && tty_) {
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }
}

}  // namespace cfs::obs
