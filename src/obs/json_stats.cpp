#include "obs/json_stats.h"

#include <cmath>
#include <cstdio>

namespace cfs::obs {

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!have_item_.empty()) {
    if (have_item_.back()) os_ << ',';
    have_item_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separator();
  os_ << '{';
  have_item_.push_back(false);
}

void JsonWriter::end_object() {
  have_item_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  separator();
  os_ << '[';
  have_item_.push_back(false);
}

void JsonWriter::end_array() {
  have_item_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  separator();
  write_escaped(k);
  os_ << ':';
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separator();
  write_escaped(s);
}

void JsonWriter::value(std::uint64_t n) {
  separator();
  os_ << n;
}

void JsonWriter::value(std::int64_t n) {
  separator();
  os_ << n;
}

void JsonWriter::value(double d) {
  separator();
  if (!std::isfinite(d)) {
    os_ << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", d);
  os_ << buf;
}

void JsonWriter::value(bool b) {
  separator();
  os_ << (b ? "true" : "false");
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void write_counters(JsonWriter& w, const Counters& c) {
  w.begin_object();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto ct = static_cast<Counter>(i);
    w.field(counter_name(ct), c.get(ct));
  }
  w.end_object();
}

void write_deterministic_counters(JsonWriter& w, const Counters& c) {
  w.begin_object();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto ct = static_cast<Counter>(i);
    if (counter_shard_invariant(ct)) w.field(counter_name(ct), c.get(ct));
  }
  w.end_object();
}

void write_histograms(JsonWriter& w, const HistogramSet& hs) {
  w.begin_object();
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const auto which = static_cast<Hist>(i);
    const Histogram& h = hs.get(which);
    w.key(hist_name(which));
    w.begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("max", h.max);
    w.field("mean", h.mean());
    w.key("buckets");
    w.begin_array();
    for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      w.begin_object();
      w.field("lo", Histogram::bucket_lo(b));
      w.field("hi", Histogram::bucket_hi(b));
      w.field("n", h.buckets[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

void write_level_profile(JsonWriter& w, const LevelProfile& lp) {
  w.begin_object();
  w.field("num_levels", static_cast<std::uint64_t>(lp.num_levels()));
  w.key("evals");
  w.begin_array();
  for (const std::uint64_t v : lp.evals) w.value(v);
  w.end_array();
  w.key("merges");
  w.begin_array();
  for (const std::uint64_t v : lp.merges) w.value(v);
  w.end_array();
  w.key("traversals");
  w.begin_array();
  for (const std::uint64_t v : lp.traversals) w.value(v);
  w.end_array();
  w.end_object();
}

void write_timers(JsonWriter& w, const PhaseTimers& t, bool all_phases) {
  w.begin_object();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto p = static_cast<Phase>(i);
    if (!all_phases && t.count(p) == 0) continue;
    w.key(phase_name(p));
    w.begin_object();
    w.field("seconds", t.seconds(p));
    w.field("calls", t.count(p));
    w.end_object();
  }
  w.end_object();
}

}  // namespace cfs::obs
