// Phase timers: where the CPU seconds of the paper's tables actually go.
//
// A `PhaseTimers` block accumulates wall-clock nanoseconds and call counts
// per simulation phase -- good-machine evaluation, fault-list propagation,
// the PO sampling / drop pass, state clocking, the sharded driver's merge,
// and the harness's whole-run envelope.  Engines time their phases through
// the CFS_PHASE macro, which the CFS_OBS=OFF build compiles away entirely;
// the harness uses ScopedPhase directly (a few clock reads per suite), so
// run tables keep their CPU column in either build.
//
// Per-batch accumulation: PhaseTimers is a plain value -- snapshot it
// before a vector batch and subtract (`minus`) after to get the batch's
// share.  Totals are monotone: every add() grows both the time and the
// call count of its phase.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/counters.h"  // CFS_OBS_ENABLED

namespace cfs::obs {

enum class Phase : unsigned {
  GoodEval,    ///< good-machine sweeps (reset consistency pass)
  FaultProp,   ///< event-driven settling: merges + fault-list propagation
  DropPass,    ///< PO sampling, detection bookkeeping, lazy drop unlinking
  Clocking,    ///< flip-flop capture and master commit
  ShardMerge,  ///< merging shard verdicts / replaying observations
  GoodBatch,   ///< packed 64-lane good-machine precomputation (driver)
  Rebalance,   ///< dynamic repartition: capture + LPT pack + restore (driver)
  Run,         ///< whole-suite envelope (the tables' CPU column)
  kCount
};

inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kCount);

constexpr std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::GoodEval: return "good_eval";
    case Phase::FaultProp: return "fault_prop";
    case Phase::DropPass: return "drop_pass";
    case Phase::Clocking: return "clocking";
    case Phase::ShardMerge: return "shard_merge";
    case Phase::GoodBatch: return "good_batch";
    case Phase::Rebalance: return "rebalance";
    case Phase::Run: return "run";
    case Phase::kCount: break;
  }
  return "?";
}

struct PhaseTimers {
  std::array<std::uint64_t, kNumPhases> ns{};
  std::array<std::uint64_t, kNumPhases> calls{};

  void add(Phase p, std::uint64_t nanos) {
    ns[static_cast<std::size_t>(p)] += nanos;
    calls[static_cast<std::size_t>(p)] += 1;
  }
  std::uint64_t nanos(Phase p) const {
    return ns[static_cast<std::size_t>(p)];
  }
  std::uint64_t count(Phase p) const {
    return calls[static_cast<std::size_t>(p)];
  }
  double seconds(Phase p) const {
    return static_cast<double>(nanos(p)) * 1e-9;
  }
  /// Sum over all phases except the Run envelope (which contains them).
  std::uint64_t total_phase_nanos() const {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      if (static_cast<Phase>(i) != Phase::Run) t += ns[i];
    }
    return t;
  }
  void merge(const PhaseTimers& o) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      ns[i] += o.ns[i];
      calls[i] += o.calls[i];
    }
  }
  /// Per-batch delta: *this must have been accumulated from `earlier`.
  PhaseTimers minus(const PhaseTimers& earlier) const {
    PhaseTimers d;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      d.ns[i] = ns[i] - earlier.ns[i];
      d.calls[i] = calls[i] - earlier.calls[i];
    }
    return d;
  }
  void reset() {
    ns.fill(0);
    calls.fill(0);
  }
  bool operator==(const PhaseTimers&) const = default;
};

/// RAII phase scope: accumulates the enclosed wall time into one phase.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& t, Phase p)
      : t_(t), p_(p), start_(std::chrono::steady_clock::now()) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    const auto d = std::chrono::steady_clock::now() - start_;
    t_.add(p_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                       .count()));
  }

 private:
  PhaseTimers& t_;
  Phase p_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cfs::obs

// Engine-internal phase scope, compiled away with the counters.
#if CFS_OBS_ENABLED
#define CFS_PHASE(timers, which) \
  ::cfs::obs::ScopedPhase cfs_phase_scope_##which((timers), \
                                                  ::cfs::obs::Phase::which)
#else
#define CFS_PHASE(timers, which) ((void)0)
#endif
