// Work-attribution heatmaps: power-of-two histograms and per-level
// profiles.
//
// The counter registry (obs/counters.h) answers "how much work" -- this
// header answers "where" and "how it is distributed".  A `Histogram` is a
// fixed array of power-of-two buckets (bucket 0 holds the value 0, bucket
// k>0 holds [2^(k-1), 2^k), the last bucket clamps everything above) plus
// count/sum/max, so a distribution costs one bit_width and four adds per
// sample and never allocates.  A `LevelProfile` attributes eval/merge/
// traversal counts to the circuit's levelized structure -- the axis the
// CSR model arrays are laid out along -- which is exactly the attribution
// RIROS-style load balancing and ERASER-style redundancy trimming need.
//
// Like the counters, all hot-path recording compiles away under
// -DCFS_OBS=OFF (CFS_OBS_ENABLED=0): the types stay available so callers
// need no #ifdefs, but the engines never touch them and the machine code
// is identical to the bare build.  Recording is deterministic where its
// inputs are: histogram contents measure *work*, which is shard-dependent
// (see counters.h on determinism classes), so they live outside the
// stats document's deterministic block.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/counters.h"  // CFS_OBS_ENABLED

namespace cfs::obs {

/// Power-of-two-bucket histogram of uint64 samples.  Plain aggregate:
/// copy, merge, compare.
struct Histogram {
  /// Bucket 0: value 0.  Bucket k in [1, 31]: values [2^(k-1), 2^k).
  /// Bucket 32 (the last): everything >= 2^31 (overflow clamp).
  static constexpr std::size_t kNumBuckets = 33;

  std::array<std::uint64_t, kNumBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  static constexpr unsigned bucket_of(std::uint64_t v) {
    const unsigned w = static_cast<unsigned>(std::bit_width(v));
    return w < kNumBuckets ? w : kNumBuckets - 1;
  }
  /// Smallest value of bucket `b`.
  static constexpr std::uint64_t bucket_lo(unsigned b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value of bucket `b` (the last bucket is unbounded).
  static constexpr std::uint64_t bucket_hi(unsigned b) {
    if (b == 0) return 0;
    if (b >= kNumBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) {
    ++buckets[bucket_of(v)];
    ++count;
    sum += v;
    if (v > max) max = v;
  }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  void merge(const Histogram& o) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    if (o.max > max) max = o.max;
  }
  void reset() {
    buckets.fill(0);
    count = sum = max = 0;
  }
  bool operator==(const Histogram&) const = default;
};

/// The named distributions one engine maintains.
enum class Hist : unsigned {
  ListLength,      ///< produced fault-list length per multi-list merge
  DivergenceSize,  ///< visible (diverging) machines per processed gate
  kCount
};

inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);

constexpr std::string_view hist_name(Hist h) {
  switch (h) {
    case Hist::ListLength: return "list_length";
    case Hist::DivergenceSize: return "divergence_size";
    case Hist::kCount: break;
  }
  return "?";
}

/// One engine's histogram block.
struct HistogramSet {
  std::array<Histogram, kNumHists> h{};

  const Histogram& get(Hist which) const {
    return h[static_cast<std::size_t>(which)];
  }
  void record(Hist which, std::uint64_t v) {
    h[static_cast<std::size_t>(which)].record(v);
  }
  void merge(const HistogramSet& o) {
    for (std::size_t i = 0; i < kNumHists; ++i) h[i].merge(o.h[i]);
  }
  void reset() {
    for (Histogram& hist : h) hist.reset();
  }
  bool operator==(const HistogramSet&) const = default;
};

/// Per-level work attribution: how many gate evaluations, multi-list
/// merges, and fault-list element traversals happened at each level of the
/// levelized circuit.  Levels are where the concurrent machinery's cost
/// concentrates and shifts as faults drop; the CSR model arrays are laid
/// out along the same axis.
struct LevelProfile {
  std::vector<std::uint64_t> evals;       ///< faulty-machine evaluations
  std::vector<std::uint64_t> merges;      ///< merge_gate invocations
  std::vector<std::uint64_t> traversals;  ///< merge-loop element steps

  std::size_t num_levels() const { return merges.size(); }

  void resize(std::size_t nl) {
    evals.resize(nl, 0);
    merges.resize(nl, 0);
    traversals.resize(nl, 0);
  }
  void bump(std::size_t lvl, std::uint64_t nevals, std::uint64_t ntrav) {
    evals[lvl] += nevals;
    merges[lvl] += 1;
    traversals[lvl] += ntrav;
  }
  void merge(const LevelProfile& o) {
    if (o.num_levels() > num_levels()) resize(o.num_levels());
    for (std::size_t i = 0; i < o.merges.size(); ++i) {
      evals[i] += o.evals[i];
      merges[i] += o.merges[i];
      traversals[i] += o.traversals[i];
    }
  }
  void reset() {
    std::fill(evals.begin(), evals.end(), 0);
    std::fill(merges.begin(), merges.end(), 0);
    std::fill(traversals.begin(), traversals.end(), 0);
  }
  bool operator==(const LevelProfile&) const = default;
};

}  // namespace cfs::obs

// Hot-path recording macros, compiled away with the counters.  `hs` is a
// HistogramSet lvalue, `which` an unqualified Hist enumerator; `lp` is a
// LevelProfile lvalue already sized to the circuit's level count.
#if CFS_OBS_ENABLED
#define CFS_HIST(hs, which, v) (hs).record(::cfs::obs::Hist::which, (v))
#define CFS_LEVEL(lp, lvl, nevals, ntrav) (lp).bump((lvl), (nevals), (ntrav))
#else
#define CFS_HIST(hs, which, v) ((void)0)
#define CFS_LEVEL(lp, lvl, nevals, ntrav) ((void)0)
#endif
