// Time-series sampler: the campaign as a moving process.
//
// A `Timeline` records one sample per simulated vector (or every Nth) into
// a preallocated ring: coverage, live faults, counter deltas, pool
// population, per-shard weight and latency.  The ring never allocates on
// the hot path -- when it wraps, the oldest samples are overwritten (the
// stats document keeps the newest `capacity`); an attached JSONL stream
// still receives *every* sample, so `--timeline=F` captures the full
// series while `--stats-json` stays bounded.
//
// Determinism contract (mirrors the stats-JSON split): each sample is
// partitioned into three sections.  The *deterministic* section (vec,
// hard, potential, dropped, live_faults) is computed from the merged
// master status -- one transition per fault, each owned by exactly one
// shard -- and is bit-identical across --threads and --batch for a fixed
// (circuit, universe, tests).  The *work* section (live elements,
// traversal/gate deltas) measures real machine effort, which depends on
// how faults share engines.  The *wall* section (timestamps, latencies)
// is never reproducible.  Tests and CI compare exactly the deterministic
// tuple.
//
// Streaming: samples append JSONL lines to an in-memory buffer; flush()
// lazily opens the file (append mode, so campaign resumes continue the
// stream) and writes whole lines only.  Campaigns flush at checkpoint
// boundaries, so a kill -9 anywhere leaves a well-formed stream whose
// last sample precedes the checkpoint the campaign resumes from --
// resume appends the continuation and no sample is lost or duplicated.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cfs::obs {

class JsonWriter;

/// One shard's slice of a sample.
struct ShardSample {
  std::uint64_t live_faults = 0;    ///< owned faults not yet hard-detected
  std::uint64_t live_elements = 0;  ///< shard pool live fault-list elements
  std::uint64_t latency_us = 0;     ///< this shard's apply_vector wall time
};

struct TimelineSample {
  // Deterministic section: thread- and batch-invariant.
  std::uint64_t vec = 0;         ///< suite position (0-based, cumulative)
  std::uint64_t hard = 0;        ///< cumulative hard detections
  std::uint64_t potential = 0;   ///< cumulative potential detections
  std::uint64_t dropped = 0;     ///< cumulative faults dropped
  std::uint64_t live_faults = 0; ///< universe size minus hard
  // Work section: real effort, shard-dependent (zero deltas in OBS-off
  // builds where the underlying counters are compiled out).
  std::uint64_t live_elements = 0;  ///< summed pool live elements
  std::uint64_t traversals = 0;     ///< cumulative ElementsTraversed
  std::uint64_t gates = 0;          ///< cumulative gates processed
  std::uint64_t rebalances = 0;     ///< cumulative dynamic repartitions
  // Wall section: never deterministic.
  std::uint64_t t_us = 0;        ///< since Timeline construction
  std::uint64_t latency_us = 0;  ///< driver wall time of this vector
  // Per-shard attribution (size = driver shard count).
  std::vector<ShardSample> shards;
};

class Timeline {
 public:
  /// `capacity` ring slots (>= 1; the stats block holds at most this many
  /// samples), sampling every `every`th vector (0 is clamped to 1).
  explicit Timeline(std::size_t capacity = 4096, std::uint64_t every = 1);

  /// Should vector `vec` be sampled?
  bool want(std::uint64_t vec) const { return vec % every_ == 0; }
  std::uint64_t every() const { return every_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Fix the per-shard width; ring slots are (re)sized once, ahead of the
  /// hot path.  Drivers call this from set_timeline().
  void set_num_shards(unsigned k);
  unsigned num_shards() const { return num_shards_; }

  /// Microseconds since construction (the wall section's time base).
  std::uint64_t now_us() const;

  /// Record one sample (driver thread only).  `s.shards` must have
  /// exactly num_shards() entries.  Copies into the ring without
  /// allocating, appends a JSONL line if a stream is attached, and
  /// invokes the observer last.
  void record(const TimelineSample& s);

  /// Samples currently held (<= capacity()).
  std::size_t size() const;
  /// Total samples ever recorded, including overwritten ones.
  std::uint64_t recorded() const { return recorded_; }
  /// Sample `i` in oldest-first order (0 <= i < size()).
  const TimelineSample& at(std::size_t i) const;

  /// Callback invoked after each record() -- the live progress meter.
  void set_observer(std::function<void(const TimelineSample&)> obs) {
    observer_ = std::move(obs);
  }

  // -- JSONL streaming ------------------------------------------------------
  /// Stream every sample to `path` as JSON Lines.  File creation is lazy:
  /// nothing is opened until the first flush() with buffered content, so a
  /// timeline that never samples never creates a file.  Opened in append
  /// mode -- a resumed campaign continues the stream in place.
  void stream_to(const std::string& path);
  bool streaming() const { return !stream_path_.empty(); }
  /// Write all buffered lines to the stream file and flush it.  Throws
  /// cfs::Error with the OS diagnostic if the path is unwritable.  Called
  /// at checkpoint boundaries (campaigns) and at end of run.
  void flush();

  /// The stats document's "timeline" block (oldest-first samples).
  void write_json(JsonWriter& w) const;
  /// One sample as a standalone JSON object (a JSONL line body).
  static void write_sample_json(JsonWriter& w, const TimelineSample& s);

 private:
  void append_stream_line(const TimelineSample& s);

  std::uint64_t every_;
  unsigned num_shards_ = 1;
  std::vector<TimelineSample> ring_;
  std::uint64_t recorded_ = 0;
  std::chrono::steady_clock::time_point t0_;

  std::function<void(const TimelineSample&)> observer_;

  std::string stream_path_;
  std::string stream_buffer_;
  bool stream_opened_ = false;
  bool header_pending_ = false;
};

}  // namespace cfs::obs
