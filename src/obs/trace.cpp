#include "obs/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json_stats.h"
#include "util/error.h"

namespace cfs::obs {

void ensure_writable(const std::string& path, const std::string& what) {
  // Append mode: never truncates existing content (a resumed campaign's
  // timeline stream must survive the probe).  If the probe had to create
  // the file, remove it again -- emitters create their files lazily, and
  // an aborted run should not leave an empty artifact behind.
  const bool existed = std::ifstream(path).good();
  std::ofstream f(path, std::ios::app);
  if (!f) {
    throw Error("cannot open " + what + " file " + path + " for writing: " +
                std::strerror(errno));
  }
  f.close();
  if (!existed) std::remove(path.c_str());
}

void atomic_write(const std::string& path, const std::string& content,
                  const std::string& what) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw Error("cannot write " + what + " temp file " + tmp + ": " +
                std::strerror(errno));
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != content.size() || !closed) {
    std::remove(tmp.c_str());
    throw Error("error writing " + what + " temp file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    throw Error("cannot rename " + what + " file into place at " + path +
                ": " + why);
  }
}

TraceEmitter::TraceEmitter() : t0_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceEmitter::now_us() const {
  const auto d = std::chrono::steady_clock::now() - t0_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

void TraceEmitter::name_track(std::uint32_t tid, const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{'M', tid, 0, 0, name});
}

void TraceEmitter::complete(std::uint32_t tid, const std::string& name,
                            std::uint64_t ts_us, std::uint64_t dur_us) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{'X', tid, ts_us, dur_us, name});
}

void TraceEmitter::instant(std::uint32_t tid, const std::string& name,
                           std::uint64_t ts_us) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{'i', tid, ts_us, 0, name});
}

void TraceEmitter::counter(
    std::uint32_t tid, const std::string& name, std::uint64_t ts_us,
    std::vector<std::pair<std::string, std::uint64_t>> series) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(Event{'C', tid, ts_us, 0, name, std::move(series)});
}

std::size_t TraceEmitter::num_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void TraceEmitter::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const Event& e : events_) {
    w.begin_object();
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e.tid));
    if (e.ph == 'M') {
      w.key("ph");
      w.value("M");
      w.key("name");
      w.value("thread_name");
      w.key("args");
      w.begin_object();
      w.key("name");
      w.value(e.name);
      w.end_object();
    } else if (e.ph == 'C') {
      w.key("ph");
      w.value("C");
      w.key("name");
      w.value(e.name);
      w.key("ts");
      w.value(e.ts);
      w.key("args");
      w.begin_object();
      for (const auto& [series, v] : e.series) {
        w.key(series);
        w.value(v);
      }
      w.end_object();
    } else {
      w.key("ph");
      w.value(std::string(1, e.ph));
      w.key("name");
      w.value(e.name);
      w.key("ts");
      w.value(e.ts);
      if (e.ph == 'X') {
        w.key("dur");
        w.value(e.dur);
      } else {
        w.key("s");  // instant scope: thread
        w.value("t");
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void TraceEmitter::save(const std::string& path) const {
  std::ostringstream os;
  write(os);
  os << '\n';
  atomic_write(path, os.str(), "trace");
}

}  // namespace cfs::obs
