#include <gtest/gtest.h>

#include "util/pool.h"

namespace cfs {
namespace {

struct Item {
  int a = 0;
  int b = 0;
};

TEST(Pool, AllocAssignsDistinctIndices) {
  Pool<Item> p;
  const auto i0 = p.alloc();
  const auto i1 = p.alloc();
  const auto i2 = p.alloc();
  EXPECT_NE(i0, i1);
  EXPECT_NE(i1, i2);
  EXPECT_EQ(p.live(), 3u);
}

TEST(Pool, FreeReusesSlots) {
  Pool<Item> p;
  const auto i0 = p.alloc();
  const auto i1 = p.alloc();
  p.free(i0);
  EXPECT_EQ(p.live(), 1u);
  const auto i2 = p.alloc();
  EXPECT_EQ(i2, i0);  // LIFO free list
  EXPECT_EQ(p.live(), 2u);
  (void)i1;
}

TEST(Pool, PeakLiveTracksHighWater) {
  Pool<Item> p;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(p.alloc());
  EXPECT_EQ(p.peak_live(), 10u);
  for (auto id : ids) p.free(id);
  EXPECT_EQ(p.live(), 0u);
  p.alloc();
  EXPECT_EQ(p.peak_live(), 10u);
}

TEST(Pool, DataSurvivesOtherAllocations) {
  Pool<Item> p;
  const auto i0 = p.alloc();
  p[i0] = {7, 9};
  for (int i = 0; i < 100; ++i) p.alloc();
  EXPECT_EQ(p[i0].a, 7);
  EXPECT_EQ(p[i0].b, 9);
}

TEST(Pool, BytesGrowWithCapacity) {
  Pool<Item> p;
  const auto before = p.bytes();
  for (int i = 0; i < 1000; ++i) p.alloc();
  EXPECT_GT(p.bytes(), before);
}

}  // namespace
}  // namespace cfs
