#include <gtest/gtest.h>

#include "util/pool.h"

namespace cfs {
namespace {

struct Item {
  int a = 0;
  int b = 0;
};

TEST(Pool, AllocAssignsDistinctIndices) {
  Pool<Item> p;
  const auto i0 = p.alloc();
  const auto i1 = p.alloc();
  const auto i2 = p.alloc();
  EXPECT_NE(i0, i1);
  EXPECT_NE(i1, i2);
  EXPECT_EQ(p.live(), 3u);
}

TEST(Pool, FreeReusesSlots) {
  Pool<Item> p;
  const auto i0 = p.alloc();
  const auto i1 = p.alloc();
  p.free(i0);
  EXPECT_EQ(p.live(), 1u);
  const auto i2 = p.alloc();
  EXPECT_EQ(i2, i0);  // LIFO free list
  EXPECT_EQ(p.live(), 2u);
  (void)i1;
}

TEST(Pool, PeakLiveTracksHighWater) {
  Pool<Item> p;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(p.alloc());
  EXPECT_EQ(p.peak_live(), 10u);
  for (auto id : ids) p.free(id);
  EXPECT_EQ(p.live(), 0u);
  p.alloc();
  EXPECT_EQ(p.peak_live(), 10u);
}

TEST(Pool, DataSurvivesOtherAllocations) {
  Pool<Item> p;
  const auto i0 = p.alloc();
  p[i0] = {7, 9};
  for (int i = 0; i < 100; ++i) p.alloc();
  EXPECT_EQ(p[i0].a, 7);
  EXPECT_EQ(p[i0].b, 9);
}

TEST(Pool, BytesGrowWithCapacity) {
  Pool<Item> p;
  const auto before = p.bytes();
  for (int i = 0; i < 1000; ++i) p.alloc();
  EXPECT_GT(p.bytes(), before);
}

TEST(Pool, DataSurvivesChunkGrowth) {
  // Chunked storage must never move existing objects: fill several chunks
  // and verify every earlier object is intact afterwards.
  Pool<Item> p;
  std::vector<std::uint32_t> ids;
  const int n = static_cast<int>(Pool<Item>::kChunkSize * 3 + 17);
  for (int i = 0; i < n; ++i) {
    const auto id = p.alloc();
    p[id] = {i, ~i};
    ids.push_back(id);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(p[ids[i]].a, i);
    EXPECT_EQ(p[ids[i]].b, ~i);
  }
}

TEST(Pool, ReserveBacksSlotsUpFront) {
  Pool<Item> p;
  p.reserve(Pool<Item>::kChunkSize * 2 + 1);
  EXPECT_GE(p.capacity(), Pool<Item>::kChunkSize * 2 + 1);
  const auto bytes = p.bytes();
  // Allocating within the reservation must not grow the backing storage.
  for (std::size_t i = 0; i < Pool<Item>::kChunkSize * 2; ++i) p.alloc();
  EXPECT_EQ(p.bytes(), bytes);
}

TEST(Pool, ResetDispensesInOrderAgain) {
  Pool<Item> p;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(p.alloc());
  // Scramble the free list, then reset: allocation order must be 0,1,2,...
  // regardless (this is what restores list-order locality on compaction).
  for (int i = 31; i >= 0; i -= 2) p.free(ids[i]);
  p.reset();
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(p.alloc(), i);
}

}  // namespace
}  // namespace cfs
