// cfsd wire protocol robustness: frame decoding under split/merged/oversized
// input, the JSON parser's structured failure modes (depth bombs, bad
// escapes, trailing garbage), typed field access errors, and a deterministic
// mutation fuzz -- a thousand corruptions of a real request stream must
// surface as structured protocol errors, never as a crash or an
// uncontrolled exception type.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "svc/service.h"
#include "svc/wire.h"
#include "util/error.h"

namespace cfs {
namespace {

using svc::FrameDecoder;
using svc::JsonValue;
using svc::ProtocolError;
using svc::encode_frame;
using svc::json_parse;
using svc::kMaxFrameBytes;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// The error code a callable fails with; "" if it does not throw.
template <typename Fn>
std::string error_code_of(Fn&& fn) {
  try {
    fn();
    return "";
  } catch (const ProtocolError& pe) {
    return pe.code();
  }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(WireFraming, RoundTripAndByteAtATimeReassembly) {
  const std::string a = "{\"op\":\"hello\"}";
  const std::string b = "{\"op\":\"stats\"}";
  const std::string stream = encode_frame(a) + encode_frame(b);

  FrameDecoder dec;
  std::vector<std::string> got;
  std::string out;
  for (char ch : stream) {
    dec.feed(&ch, 1);  // worst-case short reads
    while (dec.take(out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireFraming, EmptyPayloadIsAValidFrame) {
  FrameDecoder dec;
  const std::string f = encode_frame("");
  ASSERT_EQ(f.size(), 4u);
  dec.feed(f.data(), f.size());
  std::string out = "sentinel";
  ASSERT_TRUE(dec.take(out));
  EXPECT_EQ(out, "");
}

TEST(WireFraming, OversizedPrefixRejectedBeforeBuffering) {
  // 0xFFFFFFFF little-endian: far past kMaxFrameBytes.  The decoder must
  // throw as soon as the 4th header byte lands, without waiting for (or
  // allocating) 4 GiB of payload.
  FrameDecoder dec;
  const char bad[4] = {'\xff', '\xff', '\xff', '\xff'};
  dec.feed(bad, 3);
  std::string out;
  EXPECT_FALSE(dec.take(out));
  EXPECT_EQ(error_code_of([&] { dec.feed(bad + 3, 1); }), "frame_too_large");
}

TEST(WireFraming, OversizedSecondFrameDetectedOnTake) {
  // A valid frame followed by a poisoned prefix: the good payload is
  // extracted, and the poison is reported on that same take() call.
  const std::string good = encode_frame("{\"op\":\"hello\"}");
  const char bad[4] = {'\xff', '\xff', '\xff', '\x7f'};
  FrameDecoder dec;
  std::string stream = good + std::string(bad, 4);
  std::string out;
  EXPECT_EQ(error_code_of([&] {
              dec.feed(stream.data(), stream.size());
              (void)dec.take(out);
            }),
            "frame_too_large");
}

TEST(WireFraming, EncodeRejectsOversizedPayload) {
  std::string huge(static_cast<std::size_t>(kMaxFrameBytes) + 1, 'x');
  EXPECT_EQ(error_code_of([&] { (void)encode_frame(huge); }),
            "frame_too_large");
}

TEST(WireFraming, MaxSizedPrefixJustUnderCapIsBufferedNotRejected) {
  // A prefix exactly at the cap is legal; the decoder waits for payload.
  FrameDecoder dec;
  const std::uint32_t len = kMaxFrameBytes;
  char hdr[4];
  for (int i = 0; i < 4; ++i) {
    hdr[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  dec.feed(hdr, 4);
  std::string out;
  EXPECT_FALSE(dec.take(out));  // needs 8 MiB of payload, none arrived
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(WireJson, ParsesTheProtocolVocabulary) {
  const JsonValue v = json_parse(
      "{\"op\":\"open\",\"threads\":4,\"reset0\":true,"
      "\"tags\":[1,2.5,null,\"x\"],\"nested\":{\"a\":-3}}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.req_string("op"), "open");
  EXPECT_EQ(v.req_u64("threads"), 4u);
  EXPECT_TRUE(v.opt_bool("reset0", false));
  EXPECT_EQ(v.opt_u64("missing", 7), 7u);
  const JsonValue* tags = v.find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_TRUE(tags->is_array());
  ASSERT_EQ(tags->as_array().size(), 4u);
  EXPECT_TRUE(tags->as_array()[2].is_null());
  EXPECT_DOUBLE_EQ(v.find("nested")->find("a")->as_number(), -3.0);
}

TEST(WireJson, DumpRoundTripsEscapesAndUnicode) {
  const std::string text =
      "{\"s\":\"a\\\"b\\\\c\\n\\t\\u00e9\",\"n\":42}";
  const JsonValue v = json_parse(text);
  // Round-trip through dump(): same value, stable shape.
  const JsonValue again = json_parse(v.dump());
  EXPECT_EQ(again.req_string("s"), v.req_string("s"));
  EXPECT_EQ(again.req_u64("n"), 42u);
  // \u00e9 decodes to two UTF-8 bytes.
  EXPECT_EQ(v.req_string("s").substr(7), "\xc3\xa9");
}

TEST(WireJson, StructuredFailureModes) {
  // Depth bomb: past kMaxJsonDepth nested arrays.
  std::string bomb;
  for (unsigned i = 0; i < svc::kMaxJsonDepth + 4; ++i) bomb += '[';
  EXPECT_EQ(error_code_of([&] { (void)json_parse(bomb); }), "bad_json");

  EXPECT_EQ(error_code_of([] { (void)json_parse("{\"a\":}"); }), "bad_json");
  EXPECT_EQ(error_code_of([] { (void)json_parse("\"\\q\""); }), "bad_json");
  EXPECT_EQ(error_code_of([] { (void)json_parse("{\"a\":1,}"); }), "bad_json");
  EXPECT_EQ(error_code_of([] { (void)json_parse(""); }), "bad_json");
  EXPECT_EQ(error_code_of([] { (void)json_parse("truth"); }), "bad_json");
  // Trailing garbage after a complete document is a framing-level problem.
  EXPECT_EQ(error_code_of([] { (void)json_parse("{} {}"); }), "bad_frame");
  EXPECT_EQ(error_code_of([] { (void)json_parse("1 2"); }), "bad_frame");
}

TEST(WireJson, TypedAccessorsRejectMismatches) {
  const JsonValue v = json_parse(
      "{\"s\":\"x\",\"neg\":-1,\"frac\":1.5,\"b\":true}");
  EXPECT_EQ(error_code_of([&] { (void)v.req_u64("s"); }), "bad_request");
  EXPECT_EQ(error_code_of([&] { (void)v.req_u64("neg"); }), "bad_request");
  EXPECT_EQ(error_code_of([&] { (void)v.req_u64("frac"); }), "bad_request");
  EXPECT_EQ(error_code_of([&] { (void)v.req_string("b"); }), "bad_request");
  EXPECT_EQ(error_code_of([&] { (void)v.req_string("absent"); }),
            "bad_request");
  EXPECT_EQ(error_code_of([&] { (void)v.as_array(); }), "bad_request");
}

// ---------------------------------------------------------------------------
// Service::handle structured errors (never throws, never aborts)
// ---------------------------------------------------------------------------

/// A Service that can never start real work: queue_depth 0 refuses every
/// fresh open with backpressure before any campaign machinery runs.  That
/// makes handle() safe to hammer with arbitrary payloads.
svc::ServiceConfig inert_config(const std::string& dir) {
  svc::ServiceConfig cfg;
  cfg.state_dir = dir;
  cfg.queue_depth = 0;
  cfg.queue_deadline_ms = 10;  // caps any wait a mutated request asks for
  return cfg;
}

TEST(SvcHandle, MalformedPayloadsComeBackAsStructuredErrors) {
  svc::Service s(inert_config(tmp_path("svc_proto_handle")));
  const auto code_of = [&](const std::string& payload) {
    const JsonValue r = json_parse(s.handle(payload));
    EXPECT_FALSE(r.find("ok")->as_bool());
    return r.req_string("error");
  };
  EXPECT_EQ(code_of("this is not json"), "bad_json");
  EXPECT_EQ(code_of("[1,2,3]"), "bad_request");
  EXPECT_EQ(code_of("{\"no_op\":1}"), "bad_request");
  EXPECT_EQ(code_of("{\"op\":\"frobnicate\"}"), "unknown_op");
  EXPECT_EQ(code_of("{\"op\":\"status\",\"session\":\"ghost\"}"),
            "unknown_session");
  EXPECT_EQ(code_of("{\"op\":\"open\",\"session\":\"..bad..name\","
                    "\"circuit\":\"\",\"tests\":\"\"}"),
            "bad_request");
  EXPECT_EQ(code_of("{\"op\":\"open\",\"session\":\"ok\",\"circuit\":\"c\","
                    "\"tests\":\"t\",\"mode\":\"warp\"}"),
            "bad_request");
  EXPECT_EQ(code_of("{\"op\":\"open\",\"session\":\"ok\",\"circuit\":\"c\","
                    "\"tests\":\"t\",\"threads\":65}"),
            "bad_request");

  // Every one of those was counted, and the daemon still answers.
  const JsonValue stats = json_parse(s.handle("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_GE(stats.find("svc")->req_u64("protocol_errors"), 8u);
  const JsonValue hello = json_parse(s.handle("{\"op\":\"hello\"}"));
  EXPECT_TRUE(hello.find("ok")->as_bool());
}

// ---------------------------------------------------------------------------
// Deterministic mutation fuzz over the whole ingress path
// ---------------------------------------------------------------------------

// xorshift64* -- deterministic across platforms, no <random> distribution
// wobble (same idiom as test_parser_fuzz.cpp).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }
};

/// One random corruption of a byte stream: flip, insert, delete, truncate,
/// or duplicate a chunk.  Several are applied per round.
std::string mutate(const std::string& seed, Rng& rng) {
  std::string s = seed;
  const std::size_t edits = 1 + rng.below(4);
  for (std::size_t e = 0; e < edits && !s.empty(); ++e) {
    switch (rng.below(5)) {
      case 0:  // flip a byte
        s[rng.below(s.size())] = static_cast<char>(rng.next() & 0xff);
        break;
      case 1:  // insert a byte
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(rng.below(s.size())),
                 static_cast<char>(rng.next() & 0xff));
        break;
      case 2:  // delete a byte
        s.erase(s.begin() + static_cast<std::ptrdiff_t>(rng.below(s.size())));
        break;
      case 3:  // truncate
        s.resize(rng.below(s.size() + 1));
        break;
      default: {  // duplicate a chunk (duplicated/interleaved frames)
        const std::size_t at = rng.below(s.size());
        const std::size_t len = 1 + rng.below(s.size() - at);
        s.insert(at, s.substr(at, len));
        break;
      }
    }
  }
  return s;
}

TEST(SvcFuzz, MutatedRequestStreamsNeverCrashTheIngressPath) {
  svc::Service service(inert_config(tmp_path("svc_proto_fuzz")));

  // A realistic stream: hello, an open, a watch, a status, stats.
  const std::string seed_stream =
      encode_frame("{\"op\":\"hello\"}") +
      encode_frame(
          "{\"op\":\"open\",\"session\":\"fz\",\"circuit\":\"INPUT(a)\\n"
          "OUTPUT(y)\\ny = NOT(a)\\n\",\"tests\":\"0\\n1\\n\","
          "\"threads\":2,\"batch\":4,\"wait_ms\":1}") +
      encode_frame("{\"op\":\"watch\",\"session\":\"fz\",\"after\":0,"
                   "\"wait_ms\":1}") +
      encode_frame("{\"op\":\"status\",\"session\":\"fz\"}") +
      encode_frame("{\"op\":\"stats\"}");

  Rng rng{0xC0FFEE5EEDull};
  std::size_t streams_poisoned = 0, payloads_handled = 0;
  for (int round = 0; round < 1000; ++round) {
    const std::string stream = mutate(seed_stream, rng);
    FrameDecoder dec;
    try {
      // Feed in random-sized chunks, as a socket would deliver them.
      std::size_t off = 0;
      std::string payload;
      while (off < stream.size()) {
        const std::size_t n =
            std::min(stream.size() - off, 1 + rng.below(97));
        dec.feed(stream.data() + off, n);
        off += n;
        while (dec.take(payload)) {
          // handle() must return structured JSON for ANY payload bytes.
          const std::string resp = service.handle(payload);
          const JsonValue r = json_parse(resp);
          ASSERT_TRUE(r.is_object()) << "round " << round;
          ASSERT_NE(r.find("ok"), nullptr) << "round " << round;
          ++payloads_handled;
        }
      }
    } catch (const ProtocolError& pe) {
      // Framing-level poison: structured, connection would be dropped.
      EXPECT_EQ(pe.code(), "frame_too_large") << "round " << round;
      ++streams_poisoned;
    }
    // No other exception type may escape; gtest turns one into a failure
    // (and a crash fails the whole binary, which is the real assertion).
  }
  // The mutator must actually exercise both outcomes.
  EXPECT_GT(streams_poisoned, 0u);
  EXPECT_GT(payloads_handled, 100u);

  // The service survived the bombardment and still answers cleanly.
  const JsonValue hello = json_parse(service.handle("{\"op\":\"hello\"}"));
  EXPECT_TRUE(hello.find("ok")->as_bool());
}

TEST(SvcFuzz, IntactFramesInsideMutatedStreamsStillParse) {
  // Duplicated frames must each be handled independently: feed the same
  // valid hello frame N times and expect N well-formed responses.
  svc::Service service(inert_config(tmp_path("svc_proto_dup")));
  const std::string f = encode_frame("{\"op\":\"hello\"}");
  std::string stream;
  for (int i = 0; i < 5; ++i) stream += f;
  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  std::string payload;
  int served = 0;
  while (dec.take(payload)) {
    const JsonValue r = json_parse(service.handle(payload));
    EXPECT_TRUE(r.find("ok")->as_bool());
    ++served;
  }
  EXPECT_EQ(served, 5);
}

}  // namespace
}  // namespace cfs
