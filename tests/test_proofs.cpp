// PROOFS-style baseline: unit behaviour and agreement with serial.
#include <gtest/gtest.h>

#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"
#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "patterns/pattern.h"
#include "util/error.h"

namespace cfs {
namespace {

std::vector<Val> bits(std::initializer_list<int> v) {
  std::vector<Val> out;
  for (int b : v) out.push_back(b ? Val::One : Val::Zero);
  return out;
}

TEST(Proofs, RejectsTransitionFaults) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_transition(c);
  EXPECT_THROW(ProofsSim(c, u), Error);
}

TEST(Proofs, DetectsSimpleStuckAt) {
  const Circuit c = make_c17();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ProofsSim sim(c, u);
  // Exhaustive 32 input combinations detect everything detectable.
  for (int v = 0; v < 32; ++v) {
    sim.apply_vector(bits({v & 1, (v >> 1) & 1, (v >> 2) & 1, (v >> 3) & 1,
                           (v >> 4) & 1}));
  }
  const SerialResult sr = [&] {
    std::vector<std::vector<Val>> vecs;
    for (int v = 0; v < 32; ++v) {
      vecs.push_back(bits({v & 1, (v >> 1) & 1, (v >> 2) & 1, (v >> 3) & 1,
                           (v >> 4) & 1}));
    }
    return serial_fault_sim(c, u, vecs);
  }();
  EXPECT_EQ(sim.status(), sr.status);
  EXPECT_GT(sim.coverage().pct(), 95.0);
}

TEST(Proofs, MatchesSerialOnS27WithXInit) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 70, 41, /*x_permille=*/80);
  ProofsSim sim(c, u);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const SerialResult sr = serial_fault_sim(c, u, p.vectors());
  EXPECT_EQ(sim.status(), sr.status);
}

TEST(Proofs, GroupingHandlesMoreThan64Faults) {
  GenProfile gp;
  gp.name = "p64";
  gp.num_pis = 5;
  gp.num_pos = 4;
  gp.num_dffs = 6;
  gp.num_gates = 100;  // few hundred faults -> several 64-wide groups
  gp.seed = 77;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ASSERT_GT(u.size(), 128u);
  const PatternSet p = PatternSet::random(c.inputs().size(), 40, 42);
  ProofsSim sim(c, u);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const SerialResult sr = serial_fault_sim(c, u, p.vectors());
  EXPECT_EQ(sim.status(), sr.status);
}

TEST(Proofs, FaultyStatePersistsAcrossFrames) {
  // A DFF output stuck fault must stay wrong across many frames even when
  // the fault effect is unobservable for a while.
  const Circuit c = make_shift_register(4);
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.dffs()[0], kFaultOutPin, Val::One});
  ProofsSim sim(c, u, Val::Zero);
  // Feed zeros; fault forces a 1 that shifts to the observable end.
  std::size_t frame_detected = 0;
  for (std::size_t t = 1; t <= 6; ++t) {
    if (sim.apply_vector(bits({0})) > 0) {
      frame_detected = t;
      break;
    }
  }
  // q0 forced 1 propagates q1 (t+1), q2 (t+2), q3=PO (t+3); observable
  // on the 4th frame at the latest.
  EXPECT_GT(frame_detected, 0u);
  EXPECT_LE(frame_detected, 4u);
}

TEST(Proofs, DropDetectedShrinksWork) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ProofsSim sim(c, u);
  const PatternSet p = PatternSet::random(4, 100, 13);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const auto evals_total = sim.word_evals();
  // Re-running the same patterns from the same detection state must do far
  // less group work than the first pass did (most faults are dropped).
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  EXPECT_LT(sim.word_evals() - evals_total, evals_total);
}

}  // namespace
}  // namespace cfs
