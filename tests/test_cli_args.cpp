// Argument parser of the cfs command-line tool.
#include <gtest/gtest.h>

#include "args.h"
#include "util/error.h"

namespace cfs::cli {
namespace {

Args make(std::vector<std::string> argv) {
  static std::vector<std::string> storage;
  storage = std::move(argv);
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return Args(static_cast<int>(ptrs.size()), ptrs.data(), 0);
}

TEST(CliArgs, PositionalAndOptions) {
  const Args a = make({"s298", "--engine=proofs", "--verbose", "extra"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "s298");
  EXPECT_EQ(a.positional()[1], "extra");
  EXPECT_EQ(a.get("engine"), "proofs");
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(CliArgs, DefaultsApply) {
  const Args a = make({"s27"});
  EXPECT_EQ(a.get("engine", "csim-mv"), "csim-mv");
  EXPECT_EQ(a.get_u64("random", 256), 256u);
}

TEST(CliArgs, NumericParsing) {
  const Args a = make({"x", "--random=512", "--seed=42"});
  EXPECT_EQ(a.get_u64("random", 1), 512u);
  EXPECT_EQ(a.get_u64("seed", 1), 42u);
}

TEST(CliArgs, BadNumberThrows) {
  const Args a = make({"x", "--random=lots"});
  EXPECT_THROW(a.get_u64("random", 1), Error);
}

TEST(CliArgs, AllowOnlyCatchesTypos) {
  const Args a = make({"x", "--engin=proofs"});
  EXPECT_THROW(a.allow_only({"engine", "seed"}), Error);
  const Args b = make({"x", "--engine=proofs"});
  EXPECT_NO_THROW(b.allow_only({"engine", "seed"}));
}

TEST(CliArgs, EmptyValueOption) {
  const Args a = make({"x", "--out="});
  EXPECT_TRUE(a.has("out"));
  EXPECT_EQ(a.get("out", "def"), "");
}

}  // namespace
}  // namespace cfs::cli
