// Lockstep equivalence of every vector-kernel table against the portable
// scalar oracle (simd/kernels.h contracts).
//
// The dispatch layer promises that SIMD only ever changes speed, never an
// answer: every kernel table the build carries (kernels_for over all Isa
// values) is driven through the same inputs as scalar_kernels() and must
// match bit for bit.  Coverage is exhaustive where the input space is
// enumerable -- every (kind, arity) eval table up to arity 6 over all 4^n
// packed states (X-propagation included, since code 1 / X / binary codes
// all appear) -- and densely sampled where it is not (wide gates to arity
// 16 through the lo/hi/join composition, random index streams, random and
// adversarial bitmaps).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "netlist/gate.h"
#include "simd/simd.h"
#include "util/logic.h"
#include "util/packed_state.h"

namespace cfs {
namespace {

using simd::Isa;
using simd::Kernels;

struct Table {
  Isa isa;
  const Kernels* k;
};

// Every kernel table this build + host can run, the scalar oracle included
// (kernels_for returns null for ISAs the build compiled out or the host
// cannot execute; those are legitimately untestable here).
std::vector<Table> all_tables() {
  std::vector<Table> out;
  for (Isa isa : {Isa::Scalar, Isa::Sse42, Isa::Avx2, Isa::Neon}) {
    if (const Kernels* k = simd::kernels_for(isa)) out.push_back({isa, k});
  }
  return out;
}

std::string isa_label(Isa isa) { return std::string(simd::isa_name(isa)); }

// ---------------------------------------------------------------------------
// find_nonzero / expand_bits: the bitmap sweep
// ---------------------------------------------------------------------------

// Mask families the sweep has to get right: dense, empty, and the
// single-bit patterns where an off-by-one lane or word survives random
// testing.
std::vector<std::vector<std::uint64_t>> sweep_masks() {
  std::vector<std::vector<std::uint64_t>> masks;
  masks.push_back({});                            // empty array
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
    masks.emplace_back(n, 0);                     // all-zero
    masks.emplace_back(n, ~std::uint64_t{0});     // all-one
    // Single bit in a single word, swept over words and bit positions.
    for (std::size_t w = 0; w < n; ++w) {
      for (unsigned b : {0u, 1u, 31u, 32u, 62u, 63u}) {
        std::vector<std::uint64_t> m(n, 0);
        m[w] = std::uint64_t{1} << b;
        masks.push_back(std::move(m));
      }
    }
    // One bit per word, position rotating.
    std::vector<std::uint64_t> rot(n, 0);
    for (std::size_t w = 0; w < n; ++w) rot[w] = std::uint64_t{1} << (w % 64);
    masks.push_back(std::move(rot));
  }
  std::mt19937_64 rng(0xC0FFEEu);
  for (int i = 0; i < 40; ++i) {
    std::vector<std::uint64_t> m(1 + rng() % 40);
    for (auto& w : m) {
      const unsigned mode = rng() % 3;
      w = mode == 0 ? 0 : mode == 1 ? rng() : rng() & rng() & rng();
    }
    masks.push_back(std::move(m));
  }
  return masks;
}

TEST(SimdKernels, FindNonzeroMatchesScalarOnAllMaskFamilies) {
  const Kernels& ref = simd::scalar_kernels();
  for (const auto& mask : sweep_masks()) {
    const std::size_t want = ref.find_nonzero(mask.data(), mask.size());
    // The scalar oracle itself must honour the contract.
    for (std::size_t i = 0; i < want; ++i) ASSERT_EQ(mask[i], 0u);
    if (want < mask.size()) ASSERT_NE(mask[want], 0u);
    for (const Table& t : all_tables()) {
      EXPECT_EQ(t.k->find_nonzero(mask.data(), mask.size()), want)
          << isa_label(t.isa) << " nwords=" << mask.size();
    }
  }
}

TEST(SimdKernels, ExpandBitsMatchesScalarOnAllMaskFamilies) {
  const Kernels& ref = simd::scalar_kernels();
  for (const auto& mask : sweep_masks()) {
    for (std::uint32_t base : {0u, 64u, 12345u}) {
      std::vector<std::uint32_t> want(mask.size() * 64 + 1, 0xABABABABu);
      const std::size_t wn =
          ref.expand_bits(mask.data(), mask.size(), base, want.data());
      for (const Table& t : all_tables()) {
        std::vector<std::uint32_t> got(mask.size() * 64 + 1, 0xCDCDCDCDu);
        const std::size_t gn =
            t.k->expand_bits(mask.data(), mask.size(), base, got.data());
        ASSERT_EQ(gn, wn) << isa_label(t.isa) << " nwords=" << mask.size();
        for (std::size_t i = 0; i < wn; ++i) {
          ASSERT_EQ(got[i], want[i])
              << isa_label(t.isa) << " nwords=" << mask.size() << " i=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// gather_u8 / state_indices: the batched table-eval path
// ---------------------------------------------------------------------------

TEST(SimdKernels, GatherMatchesScalarIncludingOddTails) {
  std::mt19937_64 rng(7);
  // A padded byte table, as netlist/gate.cpp guarantees (kEvalTablePad
  // readable bytes past the last entry).
  std::vector<std::uint8_t> table(4096 + kEvalTablePad);
  for (auto& b : table) b = static_cast<std::uint8_t>(rng());
  const Kernels& ref = simd::scalar_kernels();
  for (std::size_t n = 0; n <= 67; ++n) {
    std::vector<std::uint32_t> idx(n);
    for (auto& i : idx) i = static_cast<std::uint32_t>(rng() % 4096);
    std::vector<std::uint8_t> want(n + 1, 0xEE);
    ref.gather_u8(table.data(), idx.data(), n, want.data());
    for (const Table& t : all_tables()) {
      std::vector<std::uint8_t> got(n + 1, 0x77);
      t.k->gather_u8(table.data(), idx.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << isa_label(t.isa) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, StateIndicesMatchesScalarAcrossShiftsAndMasks) {
  std::mt19937_64 rng(11);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 31u, 64u, 100u}) {
    std::vector<std::uint64_t> st(n);
    for (auto& s : st) s = rng();
    for (unsigned shift : {0u, 2 * kEvalChunkPins}) {
      for (std::uint32_t mask :
           {0x3u, 0xFFu, 0xFFFFu, (1u << (2 * kEvalChunkPins)) - 1}) {
        std::vector<std::uint32_t> want(n + 1, 0xABCD);
        simd::scalar_kernels().state_indices(st.data(), n, shift, mask,
                                             want.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(want[i],
                    static_cast<std::uint32_t>(st[i] >> shift) & mask);
        }
        for (const Table& t : all_tables()) {
          std::vector<std::uint32_t> got(n + 1, 0xDCBA);
          t.k->state_indices(st.data(), n, shift, mask, got.data());
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(got[i], want[i])
                << isa_label(t.isa) << " n=" << n << " shift=" << shift;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// classify: the visible-change test
// ---------------------------------------------------------------------------

TEST(SimdKernels, ClassifyMatchesScalarOnRandomAndStructuredElements) {
  std::mt19937_64 rng(13);
  for (unsigned nf : {1u, 2u, 4u, 8u, 12u, 16u}) {
    const std::uint64_t in_mask = input_mask(nf);
    for (int round = 0; round < 30; ++round) {
      const std::uint64_t good = rng();
      // Output codes are always table codes {0, 2, 3}; pick good_code
      // among them so the visible test can go both ways.
      constexpr std::array<std::uint8_t, 3> kCodes = {0, 2, 3};
      const std::uint8_t good_code = kCodes[rng() % 3];
      const std::size_t n = rng() % 70;
      std::vector<std::uint64_t> st(n);
      std::vector<std::uint8_t> outs(n);
      for (std::size_t i = 0; i < n; ++i) {
        outs[i] = kCodes[rng() % 3];
        switch (rng() % 4) {
          case 0:  // random state
            st[i] = rng();
            break;
          case 1:  // converged candidate: inputs equal good
            st[i] = good;
            outs[i] = good_code;
            break;
          case 2:  // differs only outside the input mask (still converged
                   // when outs matches: the output slot is not compared)
            st[i] = (good & in_mask) | (rng() & ~in_mask);
            break;
          default:  // one flipped input pin
            st[i] = good ^ (std::uint64_t{3} << (2 * (rng() % nf)));
            break;
        }
      }
      std::vector<std::uint8_t> want(n + 1, 0xAA);
      simd::scalar_kernels().classify(st.data(), outs.data(), n, good,
                                      in_mask, good_code, want.data());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t expect =
            outs[i] != good_code ? 1 : ((st[i] ^ good) & in_mask) ? 2 : 0;
        ASSERT_EQ(want[i], expect) << "scalar oracle contract, i=" << i;
      }
      for (const Table& t : all_tables()) {
        std::vector<std::uint8_t> got(n + 1, 0x55);
        t.k->classify(st.data(), outs.data(), n, good, in_mask, good_code,
                      got.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], want[i])
              << isa_label(t.isa) << " nf=" << nf << " i=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end eval-table lockstep: state_indices + gather over the real
// shared (kind, arity) tables vs the fold oracle
// ---------------------------------------------------------------------------

constexpr std::array<GateKind, 8> kCombKinds = {
    GateKind::Buf, GateKind::Not, GateKind::And, GateKind::Nand,
    GateKind::Or,  GateKind::Nor, GateKind::Xor, GateKind::Xnor};

// Compose lo/hi/join exactly as Circuit::eval does.
Val table_eval(const EvalTable& t, GateState s) {
  const std::uint8_t c0 = t.lo[static_cast<std::uint32_t>(s) & t.lo_mask];
  if (t.hi == nullptr) return from_code(c0);
  const std::uint8_t c1 =
      t.hi[static_cast<std::uint32_t>(s >> (2 * kEvalChunkPins)) & t.hi_mask];
  return from_code(t.join[(c0 << 2) | c1]);
}

TEST(SimdEvalTables, ExhaustiveLockstepToArity6) {
  for (GateKind k : kCombKinds) {
    const auto [lo_ar, hi_ar] = arity(k);
    for (unsigned nf = lo_ar; nf <= std::min(hi_ar, 6u); ++nf) {
      const EvalTable t = eval_table(k, nf);
      ASSERT_NE(t.lo, nullptr);
      ASSERT_EQ(t.hi, nullptr);  // narrow gates are single-lookup
      const std::uint32_t entries = 1u << (2 * nf);
      // Every packed input state, X codes and the invalid code 1 included.
      std::vector<std::uint64_t> st(entries);
      std::vector<std::uint8_t> want(entries);
      for (std::uint32_t s = 0; s < entries; ++s) {
        st[s] = s;
        want[s] = code(eval_kind(k, s, nf));  // the fold / X-prop oracle
      }
      for (const Table& tab : all_tables()) {
        std::vector<std::uint32_t> idx(entries);
        tab.k->state_indices(st.data(), entries, 0, t.lo_mask, idx.data());
        std::vector<std::uint8_t> got(entries);
        tab.k->gather_u8(t.lo, idx.data(), entries, got.data());
        for (std::uint32_t s = 0; s < entries; ++s) {
          ASSERT_EQ(got[s], want[s])
              << isa_label(tab.isa) << " " << kind_name(k) << "/" << nf
              << " state=" << s;
        }
      }
    }
  }
}

TEST(SimdEvalTables, SampledWideLockstepToArity16) {
  std::mt19937_64 rng(17);
  for (GateKind k : kCombKinds) {
    const auto [lo_ar, hi_ar] = arity(k);
    if (hi_ar < 7) continue;  // Buf/Not have no wide form
    for (unsigned nf : {7u, 8u, 9u, 12u, 16u}) {
      if (nf > hi_ar) continue;
      const EvalTable t = eval_table(k, nf);
      ASSERT_NE(t.lo, nullptr);
      const std::size_t n = 2000;
      std::vector<std::uint64_t> st(n);
      for (auto& s : st) s = rng() & input_mask(nf);
      for (const Table& tab : all_tables()) {
        // Low chunk through the kernels...
        std::vector<std::uint32_t> idx(n);
        tab.k->state_indices(st.data(), n, 0, t.lo_mask, idx.data());
        std::vector<std::uint8_t> c0(n);
        tab.k->gather_u8(t.lo, idx.data(), n, c0.data());
        if (t.hi != nullptr) {
          // ...high chunk and join the same way the engine's wide tail
          // does, then pin the composition against both oracles.
          tab.k->state_indices(st.data(), n, 2 * kEvalChunkPins, t.hi_mask,
                               idx.data());
          std::vector<std::uint8_t> c1(n);
          tab.k->gather_u8(t.hi, idx.data(), n, c1.data());
          for (std::size_t i = 0; i < n; ++i) {
            c0[i] = t.join[(c0[i] << 2) | c1[i]];
          }
        }
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(from_code(c0[i]), table_eval(t, st[i]))
              << isa_label(tab.isa) << " " << kind_name(k) << "/" << nf;
          ASSERT_EQ(from_code(c0[i]), eval_kind(k, st[i], nf))
              << isa_label(tab.isa) << " " << kind_name(k) << "/" << nf;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ScalarTableIsAlwaysAvailableAndNamed) {
  EXPECT_NE(simd::kernels_for(Isa::Scalar), nullptr);
  EXPECT_EQ(simd::isa_name(Isa::Scalar), "scalar");
  EXPECT_EQ(simd::isa_width_bits(Isa::Scalar), 64u);
  EXPECT_FALSE(simd::active_isa_name().empty());
  EXPECT_GE(simd::active_simd_width_bits(), 64u);
}

TEST(SimdDispatch, SetIsaRoundTripsAndRejectsUnknown) {
  const Isa before = simd::active_isa();
  EXPECT_FALSE(simd::set_isa("vliw9000"));
  EXPECT_EQ(simd::active_isa(), before);  // unchanged on failure
  ASSERT_TRUE(simd::set_isa("off"));
  EXPECT_EQ(simd::active_isa(), Isa::Scalar);
  EXPECT_EQ(&simd::kernels(), &simd::scalar_kernels());
  ASSERT_TRUE(simd::set_isa("auto"));
  EXPECT_EQ(simd::active_isa(), simd::detect_isa());
}

}  // namespace
}  // namespace cfs
