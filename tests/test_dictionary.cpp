// Fault dictionary: completeness against the serial reference and
// diagnosis behaviour.
#include <gtest/gtest.h>

#include "baseline/serial_sim.h"
#include "core/dictionary.h"
#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "patterns/pattern.h"
#include "sim/good_sim.h"

namespace cfs {
namespace {

// Serial reference syndrome of one fault.
std::vector<Syndrome> serial_syndrome(const Circuit& c, const Fault& f,
                                      const PatternSet& p, Val ff_init) {
  GoodSim good(c, ff_init);
  GoodSim faulty(c, ff_init);
  faulty.inject(f.gate, f.pin, f.value);
  faulty.reset(ff_init);
  std::vector<Syndrome> out;
  for (std::size_t t = 0; t < p.size(); ++t) {
    good.apply(p[t]);
    faulty.apply(p[t]);
    for (std::size_t k = 0; k < c.outputs().size(); ++k) {
      const Val gv = good.value(c.outputs()[k]);
      const Val fv = faulty.value(c.outputs()[k]);
      if (is_binary(gv) && is_binary(fv) && gv != fv) {
        out.push_back({static_cast<std::uint32_t>(t),
                       static_cast<std::uint32_t>(k)});
      }
    }
    good.clock();
    faulty.clock();
  }
  return out;
}

TEST(Dictionary, MatchesSerialSyndromesOnS27) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 40, 17);
  const FaultDictionary dict = build_dictionary(c, u, p.vectors());
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    ASSERT_EQ(dict.syndrome(id), serial_syndrome(c, u[id], p, Val::X))
        << describe_fault(c, u[id]);
  }
}

TEST(Dictionary, MatchesSerialSyndromesOnRandomCircuit) {
  GenProfile gp;
  gp.name = "dict";
  gp.num_pis = 5;
  gp.num_pos = 4;
  gp.num_dffs = 6;
  gp.num_gates = 80;
  gp.seed = 500;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(5, 30, 18);
  const FaultDictionary dict = build_dictionary(c, u, p.vectors(), Val::Zero);
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    ASSERT_EQ(dict.syndrome(id), serial_syndrome(c, u[id], p, Val::Zero))
        << describe_fault(c, u[id]);
  }
}

TEST(Dictionary, DiagnosisRanksTheActualFaultFirst) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 60, 19);
  const FaultDictionary dict = build_dictionary(c, u, p.vectors());
  std::size_t diagnosed = 0, detectable = 0;
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const auto& syn = dict.syndrome(id);
    if (syn.empty()) continue;  // undetected: nothing to observe
    ++detectable;
    const auto cands = dict.diagnose(syn, 5);
    ASSERT_FALSE(cands.empty());
    // The top candidate must be a perfect match -- the true fault or one
    // indistinguishable from it (identical syndrome; equivalence classes
    // can be larger than the top-k cut, so rank of the id itself is not
    // guaranteed).
    EXPECT_EQ(cands[0].missed, 0u);
    EXPECT_EQ(cands[0].extra, 0u);
    if (dict.syndrome(cands[0].fault) == syn) ++diagnosed;
  }
  EXPECT_GT(detectable, 0u);
  EXPECT_EQ(diagnosed, detectable);
}

TEST(Dictionary, DiagnosisWithPartialSyndrome) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 60, 23);
  const FaultDictionary dict = build_dictionary(c, u, p.vectors());
  // Find a fault with a rich syndrome and give the diagnoser only half.
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    const auto& syn = dict.syndrome(id);
    if (syn.size() < 6) continue;
    std::vector<Syndrome> half(syn.begin(),
                               syn.begin() + static_cast<long>(syn.size() / 2));
    const auto cands = dict.diagnose(half, 10);
    bool found = false;
    for (const auto& cand : cands) found |= cand.fault == id;
    EXPECT_TRUE(found) << describe_fault(c, u[id]);
    return;
  }
  GTEST_SKIP() << "no fault with a rich enough syndrome";
}

TEST(Dictionary, EmptyObservationYieldsNothing) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 10, 29);
  const FaultDictionary dict = build_dictionary(c, u, p.vectors());
  EXPECT_TRUE(dict.diagnose({}, 5).empty());
}

TEST(Dictionary, SealDeduplicates) {
  FaultDictionary d(2);
  d.record(0, {3, 1});
  d.record(0, {1, 0});
  d.record(0, {3, 1});
  d.seal();
  ASSERT_EQ(d.syndrome(0).size(), 2u);
  EXPECT_EQ(d.syndrome(0)[0], (Syndrome{1, 0}));
  EXPECT_EQ(d.syndrome(0)[1], (Syndrome{3, 1}));
}

}  // namespace
}  // namespace cfs
