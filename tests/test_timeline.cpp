// Telemetry layer (PR 7): power-of-two histogram bucket math, per-level
// work profiles, the Timeline sample ring (wrap, sampling stride), the
// determinism contract of the sample's deterministic section across the
// --threads x --batch grid, JSONL streaming (lazy creation, append,
// well-formedness, error diagnostics), and the progress meter's rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gen/known_circuits.h"
#include "harness/runner.h"
#include "obs/histogram.h"
#include "obs/json_stats.h"
#include "obs/progress.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "patterns/pattern.h"
#include "util/error.h"

namespace cfs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Minimal JSONL well-formedness check: every brace/bracket balances
// outside strings and the line parses as one object.  (tests/test_obs.cpp
// carries a full JSON reader; here structural validity plus field
// extraction below is what the stream contract promises.)
bool balanced_object_line(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

// Extract `"key":<uint>` from a JSONL line (first occurrence).
std::uint64_t extract_u64(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string l;
  while (std::getline(f, l)) lines.push_back(l);
  return lines;
}

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(Histogram, BucketEdges) {
  using H = obs::Histogram;
  // Bucket 0 holds exactly the value 0.
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_lo(0), 0u);
  EXPECT_EQ(H::bucket_hi(0), 0u);
  // Bucket k in [1, 31] holds [2^(k-1), 2^k).
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  for (unsigned b = 1; b + 1 < H::kNumBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lo(b)), b);
    EXPECT_EQ(H::bucket_of(H::bucket_hi(b)), b);
    EXPECT_EQ(H::bucket_lo(b), (std::uint64_t{1} << (b - 1)));
    EXPECT_EQ(H::bucket_hi(b) + 1, (std::uint64_t{1} << b));
  }
  // The last bucket clamps everything >= 2^31.
  const unsigned last = H::kNumBuckets - 1;
  EXPECT_EQ(last, 32u);
  EXPECT_EQ(H::bucket_of(std::uint64_t{1} << 31), last);
  EXPECT_EQ(H::bucket_of((std::uint64_t{1} << 31) - 1), last - 1);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::uint64_t>::max()), last);
  EXPECT_EQ(H::bucket_hi(last), std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, RecordMergeReset) {
  obs::Histogram h;
  EXPECT_EQ(h.mean(), 0.0);  // empty histogram: mean well-defined
  h.record(0);
  h.record(1);
  h.record(7);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 8u);
  EXPECT_EQ(h.max, 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 8.0 / 3.0);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 1u);

  obs::Histogram o;
  o.record(std::numeric_limits<std::uint64_t>::max());
  o.record(7);
  h.merge(o);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.max, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.buckets[3], 2u);
  EXPECT_EQ(h.buckets[obs::Histogram::kNumBuckets - 1], 1u);

  h.reset();
  EXPECT_EQ(h, obs::Histogram{});
}

TEST(Histogram, LevelProfileBumpMerge) {
  obs::LevelProfile a;
  a.resize(3);
  a.bump(0, 4, 10);
  a.bump(2, 1, 2);
  a.bump(2, 1, 3);
  EXPECT_EQ(a.evals[0], 4u);
  EXPECT_EQ(a.merges[0], 1u);
  EXPECT_EQ(a.traversals[0], 10u);
  EXPECT_EQ(a.merges[2], 2u);
  EXPECT_EQ(a.traversals[2], 5u);

  // Merge grows to the deeper profile's level count.
  obs::LevelProfile b;
  b.resize(5);
  b.bump(4, 9, 9);
  b.merge(a);
  EXPECT_EQ(b.num_levels(), 5u);
  EXPECT_EQ(b.evals[0], 4u);
  EXPECT_EQ(b.evals[4], 9u);
  a.merge(b);
  EXPECT_EQ(a.num_levels(), 5u);
  EXPECT_EQ(a.merges[2], 4u);
}

// ---------------------------------------------------------------------------
// Timeline ring
// ---------------------------------------------------------------------------

obs::TimelineSample make_sample(std::uint64_t vec, unsigned shards = 1) {
  obs::TimelineSample s;
  s.vec = vec;
  s.hard = vec * 2;
  s.shards.resize(shards);
  return s;
}

TEST(Timeline, RingKeepsNewestAfterWrap) {
  obs::Timeline tl(4);
  tl.set_num_shards(1);
  for (std::uint64_t v = 0; v < 3; ++v) tl.record(make_sample(v));
  ASSERT_EQ(tl.size(), 3u);
  for (std::uint64_t v = 0; v < 3; ++v) EXPECT_EQ(tl.at(v).vec, v);

  for (std::uint64_t v = 3; v < 10; ++v) tl.record(make_sample(v));
  EXPECT_EQ(tl.recorded(), 10u);
  ASSERT_EQ(tl.size(), 4u);  // ring holds the newest `capacity` samples
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tl.at(i).vec, 6u + i);
    EXPECT_EQ(tl.at(i).hard, 2 * (6u + i));
  }
}

TEST(Timeline, SamplingStride) {
  obs::Timeline tl(8, 4);
  EXPECT_EQ(tl.every(), 4u);
  EXPECT_TRUE(tl.want(0));
  EXPECT_FALSE(tl.want(1));
  EXPECT_FALSE(tl.want(3));
  EXPECT_TRUE(tl.want(4));
  obs::Timeline clamped(8, 0);  // every=0 clamps to 1
  EXPECT_EQ(clamped.every(), 1u);
}

TEST(Timeline, ObserverSeesEverySample) {
  obs::Timeline tl(2);
  tl.set_num_shards(1);
  std::vector<std::uint64_t> seen;
  tl.set_observer([&](const obs::TimelineSample& s) { seen.push_back(s.vec); });
  for (std::uint64_t v = 0; v < 5; ++v) tl.record(make_sample(v));
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Determinism contract across the --threads x --batch grid
// ---------------------------------------------------------------------------

struct DetTuple {
  std::uint64_t vec, hard, potential, dropped, live_faults;
  bool operator==(const DetTuple&) const = default;
};

std::vector<DetTuple> sampled_run(unsigned threads, unsigned batch) {
  const Circuit c = make_counter(6);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t(PatternSet::random(c.inputs().size(), 48, 11));
  obs::Timeline tl(64);
  run_csim_sharded(c, u, t, CsimVariant::MV, threads, Val::Zero,
                   /*drop_detected=*/true, /*trace=*/nullptr, batch, &tl);
  EXPECT_EQ(tl.size(), 48u);
  EXPECT_EQ(tl.num_shards(), threads);
  std::vector<DetTuple> out;
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const obs::TimelineSample& s = tl.at(i);
    EXPECT_EQ(s.shards.size(), threads);
    // Shard live-fault weights partition the merged total.
    std::uint64_t sum = 0;
    for (const obs::ShardSample& sh : s.shards) sum += sh.live_faults;
    EXPECT_EQ(sum, s.live_faults);
    out.push_back({s.vec, s.hard, s.potential, s.dropped, s.live_faults});
  }
  return out;
}

TEST(Timeline, DeterministicSectionThreadAndBatchInvariant) {
  const std::vector<DetTuple> ref = sampled_run(1, 1);
  ASSERT_EQ(ref.size(), 48u);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i].vec, i);
  // Detections accumulate monotonically; live = universe - hard.
  for (std::size_t i = 1; i < ref.size(); ++i) {
    EXPECT_GE(ref[i].hard, ref[i - 1].hard);
    EXPECT_EQ(ref[i].hard + ref[i].live_faults,
              ref[0].hard + ref[0].live_faults);
  }
  for (unsigned threads : {1u, 2u, 4u}) {
    for (unsigned batch : {1u, 64u}) {
      EXPECT_EQ(sampled_run(threads, batch), ref)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

// ---------------------------------------------------------------------------
// JSONL streaming
// ---------------------------------------------------------------------------

TEST(Timeline, JsonlStreamWellFormed) {
  const std::string path = tmp_path("tl_stream.jsonl");
  std::remove(path.c_str());

  const Circuit c = make_counter(6);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t(PatternSet::random(c.inputs().size(), 24, 11));
  obs::Timeline tl(8);  // ring smaller than the run: stream gets all samples
  tl.stream_to(path);
  run_csim_sharded(c, u, t, CsimVariant::MV, 2, Val::Zero,
                   /*drop_detected=*/true, /*trace=*/nullptr, 1, &tl);
  tl.flush();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 25u);  // header + one line per vector
  for (const std::string& l : lines) EXPECT_TRUE(balanced_object_line(l)) << l;
  EXPECT_EQ(extract_u64(lines[0], "timeline"), 1u);
  EXPECT_EQ(extract_u64(lines[0], "num_shards"), 2u);
  EXPECT_EQ(extract_u64(lines[0], "every"), 1u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(extract_u64(lines[i], "vec"), i - 1);  // contiguous
  }
  // The ring kept only the tail; the stream kept everything.
  EXPECT_EQ(tl.size(), 8u);
  EXPECT_EQ(tl.recorded(), 24u);
  std::remove(path.c_str());
}

TEST(Timeline, StreamAppendsAcrossFlushes) {
  const std::string path = tmp_path("tl_append.jsonl");
  std::remove(path.c_str());
  obs::Timeline tl(4);
  tl.set_num_shards(1);
  tl.stream_to(path);
  tl.record(make_sample(0));
  tl.flush();
  tl.record(make_sample(1));
  tl.record(make_sample(2));
  tl.flush();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);  // one header, then 0,1,2
  EXPECT_EQ(extract_u64(lines[1], "vec"), 0u);
  EXPECT_EQ(extract_u64(lines[3], "vec"), 2u);
  std::remove(path.c_str());
}

TEST(Timeline, StreamCreationIsLazy) {
  const std::string path = tmp_path("tl_lazy.jsonl");
  std::remove(path.c_str());
  {
    obs::Timeline tl(4);
    tl.stream_to(path);
    tl.flush();  // nothing buffered: no file may appear
  }
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(Timeline, FlushReportsOsDiagnostic) {
  obs::Timeline tl(4);
  tl.set_num_shards(1);
  const std::string path = "/nonexistent_dir_cfs_test/tl.jsonl";
  tl.stream_to(path);
  tl.record(make_sample(0));
  try {
    tl.flush();
    FAIL() << "expected cfs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

TEST(Trace, EnsureWritableProbesWithoutCreating) {
  const std::string path = tmp_path("probe_only.json");
  std::remove(path.c_str());
  obs::ensure_writable(path, "trace");  // missing but creatable: fine...
  EXPECT_FALSE(std::ifstream(path).good());  // ...and still not created

  EXPECT_THROW(
      obs::ensure_writable("/nonexistent_dir_cfs_test/t.json", "trace"),
      Error);
}

// ---------------------------------------------------------------------------
// Stats-document block and progress rendering
// ---------------------------------------------------------------------------

TEST(Timeline, WriteJsonBlockShape) {
  obs::Timeline tl(4);
  tl.set_num_shards(2);
  obs::TimelineSample s = make_sample(3, 2);
  s.shards[0].live_faults = 30;
  s.shards[1].live_faults = 10;
  tl.record(s);
  std::ostringstream os;
  obs::JsonWriter w(os);
  tl.write_json(w);
  const std::string doc = os.str();
  EXPECT_TRUE(balanced_object_line(doc)) << doc;
  EXPECT_EQ(extract_u64(doc, "capacity"), 4u);
  EXPECT_EQ(extract_u64(doc, "num_shards"), 2u);
  EXPECT_EQ(extract_u64(doc, "recorded"), 1u);
  EXPECT_EQ(extract_u64(doc, "vec"), 3u);
}

TEST(ProgressMeter, RenderReportsCoverageAndImbalance) {
  obs::ProgressMeter meter(4096, /*force_tty=*/0);
  obs::TimelineSample s = make_sample(511, 2);
  s.hard = 1024;
  s.live_faults = 1024;  // universe inferred as 2048 on first update
  s.shards[0].live_faults = 768;
  s.shards[1].live_faults = 256;
  meter.update(s);
  const std::string line = meter.render(s);
  EXPECT_NE(line.find("50.0% cov"), std::string::npos) << line;
  EXPECT_NE(line.find("vec 512/4096"), std::string::npos) << line;
  EXPECT_NE(line.find("hard 1024"), std::string::npos) << line;
  // Heaviest shard holds 768 of 1024 live over 2 shards: 1.50x the share.
  EXPECT_NE(line.find("imb 1.50"), std::string::npos) << line;
  meter.finish();
}

}  // namespace
}  // namespace cfs
