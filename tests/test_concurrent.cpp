// Concurrent fault simulator: behavioural unit tests on small circuits
// where detections can be reasoned about by hand, plus consistency between
// the four paper variants.
#include <gtest/gtest.h>

#include "baseline/serial_sim.h"
#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/known_circuits.h"
#include "netlist/builder.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"
#include "util/error.h"

namespace cfs {
namespace {

std::vector<Val> bits(std::initializer_list<int> v) {
  std::vector<Val> out;
  for (int b : v) out.push_back(b ? Val::One : Val::Zero);
  return out;
}

std::uint32_t fault_id(const Circuit& c, const FaultUniverse& u,
                       const std::string& gate, std::uint16_t pin, Val v) {
  const GateId g = c.find(gate);
  for (std::uint32_t i = 0; i < u.size(); ++i) {
    if (u[i].gate == g && u[i].pin == pin && u[i].value == v) return i;
  }
  ADD_FAILURE() << "no such fault " << gate;
  return 0;
}

TEST(Concurrent, DetectsOutputStuckOnBuffer) {
  Builder b("wire");
  b.add_input("a");
  b.add_gate(GateKind::Buf, "y", {"a"});
  b.mark_output("y");
  const Circuit c = b.build();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  sim.apply_vector(bits({1}));  // detects all s-a-0 on the path
  const auto sa0 = fault_id(c, u, "y", kFaultOutPin, Val::Zero);
  const auto sa1 = fault_id(c, u, "y", kFaultOutPin, Val::One);
  EXPECT_EQ(sim.status()[sa0], Detect::Hard);
  EXPECT_EQ(sim.status()[sa1], Detect::None);
  sim.apply_vector(bits({0}));
  EXPECT_EQ(sim.status()[sa1], Detect::Hard);
}

TEST(Concurrent, VisibleListTracksDivergence) {
  Builder b("and2");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateKind::And, "y", {"a", "c"});
  b.mark_output("y");
  const Circuit c = b.build();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  sim.set_inputs(bits({1, 1}));
  sim.settle();
  // good y = 1; y s-a-0 and a s-a-0 (which kills y) must be visible at y.
  const auto vis = sim.visible_at(c.find("y"));
  const auto y_sa0 = fault_id(c, u, "y", kFaultOutPin, Val::Zero);
  bool found = false;
  for (const auto& [id, v] : vis) {
    if (id == y_sa0) {
      found = true;
      EXPECT_EQ(v, Val::Zero);
    }
    EXPECT_NE(v, sim.good_value(c.find("y")));
  }
  EXPECT_TRUE(found);
}

TEST(Concurrent, ConvergenceRemovesElements) {
  Builder b("conv");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateKind::And, "y", {"a", "c"});
  b.mark_output("y");
  const Circuit c = b.build();
  // Only the input-a stem fault matters here: use a custom 1-fault universe.
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.find("a"), kFaultOutPin, Val::Zero});
  CsimOptions opt;
  opt.drop_detected = false;  // keep elements alive to observe convergence
  ConcurrentSim sim(c, u, opt);
  sim.set_inputs(bits({1, 1}));
  sim.settle();
  EXPECT_EQ(sim.visible_at(c.find("y")).size(), 1u);  // a s-a-0 -> y=0
  sim.set_inputs(bits({1, 0}));
  sim.settle();
  // Now good y = 0 too: the fault converges at y.
  EXPECT_TRUE(sim.visible_at(c.find("y")).empty());
}

TEST(Concurrent, DroppedFaultsStopConsumingElements) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim dropping(c, u, CsimOptions{.split_lists = true,
                                           .drop_detected = true});
  ConcurrentSim keeping(c, u, CsimOptions{.split_lists = true,
                                          .drop_detected = false});
  const PatternSet p = PatternSet::random(4, 50, 99);
  for (std::size_t i = 0; i < p.size(); ++i) {
    dropping.apply_vector(p[i]);
    keeping.apply_vector(p[i]);
  }
  // Same coverage either way; fewer live elements with dropping.
  EXPECT_EQ(summarize(dropping.status()).hard,
            summarize(keeping.status()).hard);
  EXPECT_LT(dropping.live_elements(), keeping.live_elements());
}

TEST(Concurrent, SplitAndCombinedListsAgree) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim split(c, u, CsimOptions{.split_lists = true});
  ConcurrentSim combined(c, u, CsimOptions{.split_lists = false});
  const PatternSet p = PatternSet::random(4, 80, 5, /*x_permille=*/100);
  for (std::size_t i = 0; i < p.size(); ++i) {
    split.apply_vector(p[i]);
    combined.apply_vector(p[i]);
  }
  EXPECT_EQ(split.status(), combined.status());
}

TEST(Concurrent, MacroModeAgreesWithPlain) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  ConcurrentSim plain(c, u);
  ConcurrentSim macro(ext.circuit, u, CsimOptions{}, &mm);
  const PatternSet p = PatternSet::random(4, 80, 6, /*x_permille=*/100);
  for (std::size_t i = 0; i < p.size(); ++i) {
    plain.apply_vector(p[i]);
    macro.apply_vector(p[i]);
  }
  EXPECT_EQ(plain.status(), macro.status());
}

TEST(Concurrent, MatchesSerialOnS27) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 60, 12);
  ConcurrentSim sim(c, u);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const SerialResult sr = serial_fault_sim(c, u, p.vectors());
  EXPECT_EQ(sim.status(), sr.status);
}

TEST(Concurrent, ResetClearsStateButKeepsStatus) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  const PatternSet p = PatternSet::random(4, 30, 3);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const auto cov = sim.coverage();
  ASSERT_GT(cov.hard, 0u);
  sim.reset();
  EXPECT_EQ(sim.coverage().hard, cov.hard);  // status preserved
  sim.reset(Val::X, /*clear_status=*/true);
  EXPECT_EQ(sim.coverage().hard, 0u);
}

TEST(Concurrent, PotentialDetectionFromXState) {
  // With FFs at X, a fault observable only through an X-state path reports
  // Potential, not Hard.
  const Circuit c = make_shift_register(2);
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.dffs()[1], kFaultOutPin, Val::One});
  ConcurrentSim sim(c, u);  // FFs X
  sim.apply_vector(bits({0}));
  // good q1 = X, faulty = 1 -> PO good is X: no detection at all yet.
  // After two clocks of 0s the good q1 becomes 0 and the fault is hard.
  sim.apply_vector(bits({0}));
  sim.apply_vector(bits({0}));
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

TEST(Concurrent, WrongVectorWidthThrows) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  EXPECT_THROW(sim.apply_vector(bits({0, 1})), Error);
}

TEST(Concurrent, MixedUniverseRejected) {
  const Circuit c = make_s27();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("G8"), 0, Val::One});
  u.add({FaultType::StuckAt, c.find("G8"), kFaultOutPin, Val::One});
  EXPECT_THROW(ConcurrentSim(c, u), Error);
}

TEST(Concurrent, ApplyVectorReturnsNewDetections) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  const PatternSet p = PatternSet::random(4, 40, 21);
  std::size_t total = 0;
  for (std::size_t i = 0; i < p.size(); ++i) total += sim.apply_vector(p[i]);
  EXPECT_EQ(total, sim.coverage().hard);
}

}  // namespace
}  // namespace cfs
