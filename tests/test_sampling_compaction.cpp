// Fault sampling, collapsed-class simulation, and test-set compaction.
#include <gtest/gtest.h>

#include <set>

#include "core/concurrent_sim.h"
#include "faults/sampling.h"
#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "patterns/compaction.h"
#include "patterns/pattern.h"
#include "patterns/tgen.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(Sampling, SampleSizeAndUniqueness) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto ids = sample_faults(u, 20, 7);
  EXPECT_EQ(ids.size(), 20u);
  std::set<std::uint32_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 20u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (auto id : ids) EXPECT_LT(id, u.size());
}

TEST(Sampling, ClampsToUniverse) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  EXPECT_EQ(sample_faults(u, 10000, 1).size(), u.size());
}

TEST(Sampling, EstimateTracksTrueCoverage) {
  GenProfile gp;
  gp.name = "samp";
  gp.num_pis = 6;
  gp.num_pos = 5;
  gp.num_dffs = 8;
  gp.num_gates = 250;
  gp.seed = 700;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(6, 150, 9);

  ConcurrentSim full(c, u);
  full.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) full.apply_vector(p[i]);
  const double truth = full.coverage().pct();

  const SubUniverse sub = restrict_universe(u, sample_faults(u, 300, 11));
  ConcurrentSim sampled(c, sub.universe);
  sampled.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) sampled.apply_vector(p[i]);
  const double estimate = sampled.coverage().pct();
  // 300 samples: 3-sigma band is about +-8.5 points at 50% coverage.
  EXPECT_NEAR(estimate, truth, 10.0);
}

TEST(Sampling, RestrictRejectsBadIds) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  EXPECT_THROW(restrict_universe(u, {static_cast<std::uint32_t>(u.size())}),
               Error);
}

TEST(Collapsing, RepresentativeSimulationExpandsExactly) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto rep = collapse_equivalent(c, u);
  const SubUniverse reps = representative_universe(u, rep);
  const PatternSet p = PatternSet::random(4, 120, 13);

  ConcurrentSim full(c, u);
  ConcurrentSim collapsed(c, reps.universe);
  for (std::size_t i = 0; i < p.size(); ++i) {
    full.apply_vector(p[i]);
    collapsed.apply_vector(p[i]);
  }
  const auto expanded = expand_to_classes(collapsed.status(), reps, rep);
  // Hard-detection flags must match the full run exactly: equivalent
  // faults are detected by exactly the same tests.
  ASSERT_EQ(expanded.size(), u.size());
  for (std::uint32_t id = 0; id < u.size(); ++id) {
    EXPECT_EQ(expanded[id] == Detect::Hard,
              full.status()[id] == Detect::Hard)
        << describe_fault(c, u[id]);
  }
}

TEST(Compaction, NeverLosesCoverageAndShrinksPaddedSets) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  // A deliberately padded set: useful prefix + long useless tail of
  // constant vectors.
  TgenOptions topt;
  topt.seed = 3;
  topt.max_restarts = 0;
  PatternSet padded = generate_tests(c, u, topt).suite.sequences().at(0);
  const std::size_t useful = padded.size();
  for (int i = 0; i < 64; ++i) {
    padded.add(std::vector<Val>(4, Val::Zero));
  }

  ConcurrentSim before(c, u);
  for (std::size_t i = 0; i < padded.size(); ++i) {
    before.apply_vector(padded[i]);
  }

  const CompactionResult r = compact_tests(c, u, padded);
  EXPECT_LT(r.patterns.size(), padded.size());
  EXPECT_GE(r.coverage.hard, before.coverage().hard);
  EXPECT_LE(r.patterns.size(), useful + 8);  // tail gone (block granularity)
}

TEST(Compaction, ResultReplaysToReportedCoverage) {
  const Circuit c = make_counter(4);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(1, 120, 21);
  CompactionOptions opt;
  opt.ff_init = Val::Zero;
  const CompactionResult r = compact_tests(c, u, p, opt);
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  for (std::size_t i = 0; i < r.patterns.size(); ++i) {
    sim.apply_vector(r.patterns[i]);
  }
  EXPECT_EQ(sim.coverage().hard, r.coverage.hard);
}

}  // namespace
}  // namespace cfs
