// Arbitrary-delay concurrent fault simulation: equivalence against the
// injected serial DelaySim at every strobe, on hand-built and random
// combinational circuits with heterogeneous delays.
#include <gtest/gtest.h>

#include "core/delay_concurrent.h"
#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "netlist/builder.h"
#include "sim/delay_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace cfs {
namespace {

std::vector<std::uint32_t> random_delays(const Circuit& c, Rng& rng) {
  std::vector<std::uint32_t> d(c.num_gates());
  for (auto& x : d) x = 1 + static_cast<std::uint32_t>(rng.below(7));
  return d;
}

// Serial reference: one injected DelaySim per fault, same stimulus, same
// strobe times; detections compared against the concurrent engine.
void cross_check(const Circuit& c, std::uint64_t seed, int waves) {
  Rng rng(seed);
  const auto delays = random_delays(c, rng);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);

  // Stimulus: `waves` random input vectors, each given time to settle.
  std::vector<std::vector<Val>> stim;
  for (int w = 0; w < waves; ++w) {
    std::vector<Val> v(c.inputs().size());
    for (auto& x : v) {
      x = rng.chance(1, 10) ? Val::X
                            : (rng.chance(1, 2) ? Val::One : Val::Zero);
    }
    stim.push_back(std::move(v));
  }
  const std::uint64_t kGap = 200;  // long enough for full settling

  DelayConcurrentSim con(c, u, delays, /*drop_detected=*/false);
  std::vector<Detect> serial_status(u.size(), Detect::None);

  // Concurrent run with strobes.
  std::vector<std::vector<Val>> con_po_per_wave;
  for (int w = 0; w < waves; ++w) {
    for (unsigned i = 0; i < c.inputs().size(); ++i) {
      con.set_input(i, stim[w][i]);
    }
    con.run(con.now() + kGap);
    con.strobe();
  }

  // Serial runs.
  {
    DelaySim good(c, delays);
    std::vector<std::vector<Val>> good_po;
    for (int w = 0; w < waves; ++w) {
      for (unsigned i = 0; i < c.inputs().size(); ++i) {
        good.set_input(i, stim[w][i]);
      }
      good.run(good.now() + kGap);
      std::vector<Val> po;
      for (GateId g : c.outputs()) po.push_back(good.value(g));
      good_po.push_back(std::move(po));
    }
    for (std::uint32_t id = 0; id < u.size(); ++id) {
      DelaySim faulty(c, delays);
      faulty.inject(u[id].gate, u[id].pin, u[id].value);
      for (int w = 0; w < waves; ++w) {
        for (unsigned i = 0; i < c.inputs().size(); ++i) {
          faulty.set_input(i, stim[w][i]);
        }
        faulty.run(faulty.now() + kGap);
        for (std::size_t k = 0; k < c.outputs().size(); ++k) {
          const Val gv = good_po[w][k];
          const Val fv = faulty.value(c.outputs()[k]);
          if (!is_binary(gv)) continue;
          if (is_binary(fv) && fv != gv) {
            serial_status[id] = Detect::Hard;
          } else if (fv == Val::X && serial_status[id] == Detect::None) {
            serial_status[id] = Detect::Potential;
          }
        }
      }
    }
  }
  ASSERT_EQ(con.status(), serial_status);
}

TEST(DelayConcurrent, MatchesSerialOnC17) {
  cross_check(make_c17(), 11, 6);
}

TEST(DelayConcurrent, MatchesSerialOnFullAdder) {
  cross_check(make_full_adder(), 12, 8);
}

TEST(DelayConcurrent, MatchesSerialOnRandomCircuits) {
  for (std::uint64_t seed : {401u, 402u, 403u}) {
    GenProfile gp;
    gp.name = "dc" + std::to_string(seed);
    gp.num_pis = 6;
    gp.num_pos = 5;
    gp.num_dffs = 0;
    gp.num_gates = 90;
    gp.seed = seed;
    cross_check(generate_circuit(gp), seed, 5);
  }
}

TEST(DelayConcurrent, RejectsSequentialAndBadDelays) {
  const Circuit seq = make_counter(2);
  const Circuit comb = make_c17();
  const FaultUniverse useq = FaultUniverse::all_stuck_at(seq);
  const FaultUniverse ucomb = FaultUniverse::all_stuck_at(comb);
  EXPECT_THROW(
      DelayConcurrentSim(seq, useq,
                         std::vector<std::uint32_t>(seq.num_gates(), 1)),
      Error);
  EXPECT_THROW(
      DelayConcurrentSim(comb, ucomb,
                         std::vector<std::uint32_t>(comb.num_gates(), 0)),
      Error);
}

TEST(DelayConcurrent, DetectsSimpleStuckAtThroughDelays) {
  // y = AND(a, b) with delay 5.
  Builder bld("and");
  bld.add_input("a");
  bld.add_input("b");
  bld.add_gate(GateKind::And, "y", {"a", "b"});
  bld.mark_output("y");
  const Circuit c = bld.build();
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.find("y"), kFaultOutPin, Val::Zero});
  std::vector<std::uint32_t> d(c.num_gates(), 5);
  DelayConcurrentSim sim(c, u, d);
  sim.set_input(0, Val::One);
  sim.set_input(1, Val::One);
  sim.run(sim.now() + 100);
  EXPECT_EQ(sim.good_value(c.find("y")), Val::One);
  EXPECT_EQ(sim.faulty_value(c.find("y"), 0), Val::Zero);
  EXPECT_EQ(sim.strobe(), 1u);
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

TEST(DelayConcurrent, ConvergedElementsAreRemoved) {
  Builder bld("conv");
  bld.add_input("a");
  bld.add_input("b");
  bld.add_gate(GateKind::And, "y", {"a", "b"});
  bld.add_gate(GateKind::Buf, "z", {"y"});
  bld.mark_output("z");
  const Circuit c = bld.build();
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.find("a"), kFaultOutPin, Val::Zero});
  std::vector<std::uint32_t> d(c.num_gates(), 2);
  DelayConcurrentSim sim(c, u, d, /*drop_detected=*/false);
  sim.set_input(0, Val::One);
  sim.set_input(1, Val::One);
  sim.run(sim.now() + 50);
  // Fault active: diverged at y and z (plus the permanent site element).
  EXPECT_EQ(sim.live_elements(), 3u);
  sim.set_input(1, Val::Zero);  // b=0 masks the fault: y converges
  sim.run(sim.now() + 50);
  EXPECT_EQ(sim.live_elements(), 2u);  // site element + the invisible element at y (pins differ)
}

TEST(DelayConcurrent, DroppingPurgesElements) {
  const Circuit c = make_c17();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  std::vector<std::uint32_t> d(c.num_gates(), 3);
  DelayConcurrentSim sim(c, u, d, /*drop_detected=*/true);
  Rng rng(5);
  for (int w = 0; w < 10; ++w) {
    for (unsigned i = 0; i < 5; ++i) {
      sim.set_input(i, rng.chance(1, 2) ? Val::One : Val::Zero);
    }
    sim.run(sim.now() + 100);
    sim.strobe();
  }
  EXPECT_GT(sim.coverage().hard, 0u);
}

TEST(DelayConcurrent, GlitchCanBeCaughtByMidFlightStrobe) {
  // Static hazard (cf. test_delay_sim): strobing during the glitch window
  // sees a difference that the settled strobe does not.
  Builder bld("hazard");
  bld.add_input("a");
  bld.add_gate(GateKind::Not, "na", {"a"});
  bld.add_gate(GateKind::Or, "y", {"a", "na"});
  bld.mark_output("y");
  const Circuit c = bld.build();
  // Fault: slow path pin a of y stuck at 0 -> y follows NOT(a) only.
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.find("y"), 0, Val::Zero});
  std::vector<std::uint32_t> d(c.num_gates(), 1);
  d[c.find("na")] = 4;
  DelayConcurrentSim sim(c, u, d, false);
  sim.set_input(0, Val::One);
  sim.run(sim.now() + 50);
  sim.strobe();
  // Settled: good y=1, faulty y = NOT(1)=0 -> already detected when settled.
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

}  // namespace
}  // namespace cfs
