// Differential check for the in-place fault-list update: the production
// engine patches destination lists element by element (apply_list_inplace),
// while CsimOptions::rebuild_lists selects the naive tear-down-and-rebuild
// reference the in-place path replaced.  Both must agree on *everything*
// observable -- per-vector detection counts, the exact detection event
// order, the final status, and the per-gate visible sequences -- across
// random circuits, all four engine variants, transition mode, and the
// pool-compaction path between test sequences.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/circuit_gen.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

struct Scenario {
  std::uint64_t circuit_seed;
  unsigned pis, pos, dffs, gates;
  unsigned vectors;
  unsigned x_permille;
  Val ff_init;
};

using Observation = std::tuple<std::uint32_t, std::uint32_t, bool>;

void record_observations(ConcurrentSim& sim, std::vector<Observation>* out) {
  sim.set_detection_observer(
      [out](std::uint32_t fault, std::uint32_t po, bool hard) {
        out->emplace_back(fault, po, hard);
      });
}

// Drive `sim` and `ref` through the same vectors in lockstep and require
// identical behaviour after every single vector, not just at the end.
void run_lockstep(ConcurrentSim& sim, ConcurrentSim& ref, const PatternSet& p,
                  bool deep_validate) {
  std::vector<Observation> sim_obs, ref_obs;
  record_observations(sim, &sim_obs);
  record_observations(ref, &ref_obs);
  for (std::size_t i = 0; i < p.size(); ++i) {
    sim_obs.clear();
    ref_obs.clear();
    const std::size_t sim_newly = sim.apply_vector(p[i]);
    const std::size_t ref_newly = ref.apply_vector(p[i]);
    ASSERT_EQ(sim_newly, ref_newly) << "vector " << i;
    ASSERT_EQ(sim_obs, ref_obs) << "detection order diverged at vector " << i;
    ASSERT_EQ(sim.status(), ref.status()) << "vector " << i;
    if (deep_validate) {
      ASSERT_NO_THROW(sim.validate()) << "vector " << i;
      for (GateId g = 0; g < sim.circuit().num_gates(); ++g) {
        ASSERT_EQ(sim.visible_at(g), ref.visible_at(g))
            << "gate " << g << " vector " << i;
      }
    }
  }
}

class InplaceMergeDifferential : public ::testing::TestWithParam<Scenario> {};

TEST_P(InplaceMergeDifferential, MatchesNaiveRebuildAllVariants) {
  const Scenario s = GetParam();
  GenProfile gp;
  gp.name = "inplace" + std::to_string(s.circuit_seed);
  gp.num_pis = s.pis;
  gp.num_pos = s.pos;
  gp.num_dffs = s.dffs;
  gp.num_gates = s.gates;
  gp.seed = s.circuit_seed;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p =
      PatternSet::random(c.inputs().size(), s.vectors,
                         s.circuit_seed * 101 + 13, s.x_permille);

  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  struct Variant {
    const char* name;
    bool split;
    bool macro;
  };
  for (const Variant v : {Variant{"csim", false, false},
                          Variant{"csim-V", true, false},
                          Variant{"csim-M", false, true},
                          Variant{"csim-MV", true, true}}) {
    SCOPED_TRACE(v.name);
    CsimOptions opt;
    opt.split_lists = v.split;
    CsimOptions ref_opt = opt;
    ref_opt.rebuild_lists = true;
    const Circuit& cc = v.macro ? ext.circuit : c;
    const MacroFaultMap* map = v.macro ? &mm : nullptr;
    ConcurrentSim sim(cc, u, opt, map);
    ConcurrentSim ref(cc, u, ref_opt, map);
    sim.reset(s.ff_init);
    ref.reset(s.ff_init);
    run_lockstep(sim, ref, p, /*deep_validate=*/true);
  }
}

TEST_P(InplaceMergeDifferential, MatchesNaiveRebuildTransitionMode) {
  const Scenario s = GetParam();
  GenProfile gp;
  gp.name = "inplace-tr" + std::to_string(s.circuit_seed);
  gp.num_pis = s.pis;
  gp.num_pos = s.pos;
  gp.num_dffs = s.dffs;
  gp.num_gates = s.gates;
  gp.seed = s.circuit_seed;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p =
      PatternSet::random(c.inputs().size(), s.vectors,
                         s.circuit_seed * 101 + 13, s.x_permille);

  for (bool split : {false, true}) {
    SCOPED_TRACE(split ? "split" : "combined");
    CsimOptions opt;
    opt.split_lists = split;
    CsimOptions ref_opt = opt;
    ref_opt.rebuild_lists = true;
    ConcurrentSim sim(c, u, opt);
    ConcurrentSim ref(c, u, ref_opt);
    sim.reset(s.ff_init);
    ref.reset(s.ff_init);
    // validate() requires the settled stuck-at invariants, so transition
    // mode compares the observable behaviour only.
    run_lockstep(sim, ref, p, /*deep_validate=*/false);
  }
}

TEST_P(InplaceMergeDifferential, CompactionBetweenSequencesMatches) {
  const Scenario s = GetParam();
  GenProfile gp;
  gp.name = "inplace-cp" + std::to_string(s.circuit_seed);
  gp.num_pis = s.pis;
  gp.num_pos = s.pos;
  gp.num_dffs = s.dffs;
  gp.num_gates = s.gates;
  gp.seed = s.circuit_seed;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);

  CsimOptions opt;
  opt.split_lists = true;
  opt.compact_pool = true;
  CsimOptions ref_opt;
  ref_opt.split_lists = true;
  ref_opt.rebuild_lists = true;
  ConcurrentSim sim(c, u, opt);
  ConcurrentSim ref(c, u, ref_opt);
  // Several sequences with a reset between each: the compacting engine
  // rebuilds its pool from index 0 every time, the reference keeps its
  // scrambled free list; detection results must be identical either way.
  for (unsigned seq = 0; seq < 3; ++seq) {
    const PatternSet p = PatternSet::random(
        c.inputs().size(), s.vectors / 2 + 1,
        s.circuit_seed * 997 + seq, s.x_permille);
    sim.reset(s.ff_init);
    ref.reset(s.ff_init);
    run_lockstep(sim, ref, p, /*deep_validate=*/true);
  }
  ASSERT_EQ(sim.status(), ref.status());
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, InplaceMergeDifferential,
    ::testing::Values(
        // Binary patterns from the reset state.
        Scenario{301, 4, 3, 5, 60, 40, 0, Val::Zero},
        Scenario{302, 6, 4, 8, 120, 30, 0, Val::Zero},
        // All-X initial state.
        Scenario{303, 5, 3, 6, 80, 40, 0, Val::X},
        Scenario{304, 6, 4, 10, 140, 30, 0, Val::X},
        // X density in the patterns (exercises X-churn in the lists).
        Scenario{305, 4, 3, 6, 80, 40, 150, Val::X},
        Scenario{306, 8, 6, 12, 200, 25, 80, Val::Zero},
        // Wider / deeper.
        Scenario{307, 10, 8, 20, 320, 20, 0, Val::Zero},
        // Tiny degenerate.
        Scenario{308, 2, 1, 1, 8, 30, 100, Val::X}));

}  // namespace
}  // namespace cfs
