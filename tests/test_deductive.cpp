// Deductive baseline: fault-set algebra unit tests and engine equivalence
// with serial / concurrent in the binary domain.
#include <gtest/gtest.h>

#include "baseline/deductive_sim.h"
#include "baseline/serial_sim.h"
#include "core/concurrent_sim.h"
#include "netlist/builder.h"
#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(FaultSet, UnionIntersectSubtract) {
  const FaultSet a = {1, 3, 5, 7};
  const FaultSet b = {3, 4, 5, 9};
  EXPECT_EQ(fs_union(a, b), (FaultSet{1, 3, 4, 5, 7, 9}));
  EXPECT_EQ(fs_intersect(a, b), (FaultSet{3, 5}));
  EXPECT_EQ(fs_subtract(a, b), (FaultSet{1, 7}));
  EXPECT_EQ(fs_subtract(b, a), (FaultSet{4, 9}));
}

TEST(FaultSet, EmptyOperands) {
  const FaultSet a = {2, 4};
  const FaultSet e;
  EXPECT_EQ(fs_union(a, e), a);
  EXPECT_EQ(fs_intersect(a, e), e);
  EXPECT_EQ(fs_subtract(a, e), a);
  EXPECT_EQ(fs_subtract(e, a), e);
}

TEST(FaultSet, InsertEraseContains) {
  FaultSet s;
  fs_insert(s, 5);
  fs_insert(s, 1);
  fs_insert(s, 3);
  fs_insert(s, 3);  // duplicate no-op
  EXPECT_EQ(s, (FaultSet{1, 3, 5}));
  EXPECT_TRUE(fs_contains(s, 3));
  fs_erase(s, 3);
  fs_erase(s, 99);  // absent no-op
  EXPECT_EQ(s, (FaultSet{1, 5}));
  EXPECT_FALSE(fs_contains(s, 3));
}

TEST(FaultSet, OddParity) {
  const FaultSet a = {1, 2, 3};
  const FaultSet b = {2, 3, 4};
  const FaultSet c = {3, 5};
  // multiplicities: 1:1, 2:2, 3:3, 4:1, 5:1 -> odd: 1,3,4,5
  EXPECT_EQ(fs_odd_parity({&a, &b, &c}), (FaultSet{1, 3, 4, 5}));
  EXPECT_EQ(fs_odd_parity({&a, &a}), FaultSet{});
}

TEST(FaultSet, ControllingRule) {
  const FaultSet c1 = {1, 2, 5};
  const FaultSet c2 = {2, 5, 9};
  const FaultSet nc = {5};
  // (c1 ∩ c2) \ nc = {2, 5} \ {5} = {2}
  EXPECT_EQ(fs_controlling_rule({&c1, &c2}, {&nc}), FaultSet{2});
}

// --- engine ---------------------------------------------------------------

std::vector<Val> bits(std::initializer_list<int> v) {
  std::vector<Val> out;
  for (int b : v) out.push_back(b ? Val::One : Val::Zero);
  return out;
}

TEST(Deductive, SingleAndGateRules) {
  // y = AND(a, b): with a=1,b=1 all faults flipping any input flip y;
  // with a=0 only faults flipping a (and not b... b noncontrolling) flip y.
  Builder b("and2");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateKind::And, "y", {"a", "c"});
  b.mark_output("y");
  const Circuit ckt = b.build();
  const FaultUniverse u = FaultUniverse::all_stuck_at(ckt);
  DeductiveSim sim(ckt, u);
  sim.apply_vector(bits({1, 1}));
  // a s-a-0, c s-a-0, y s-a-0 all detected at y=1.
  std::size_t hard = sim.coverage().hard;
  EXPECT_EQ(hard, 3u);
  sim.apply_vector(bits({0, 1}));
  // y=0: y s-a-1 detected, a s-a-1 detected (flips a -> y=1).
  EXPECT_EQ(sim.coverage().hard, 5u);
}

TEST(Deductive, RejectsXInputs) {
  const Circuit c = make_c17();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  DeductiveSim sim(c, u);
  std::vector<Val> v(5, Val::Zero);
  v[2] = Val::X;
  EXPECT_THROW(sim.apply_vector(v), Error);
}

TEST(Deductive, RejectsXInit) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  EXPECT_THROW(DeductiveSim(c, u, Val::X), Error);
}

TEST(Deductive, RejectsMacroCircuits) {
  const Circuit c = make_s27();
  const MacroExtraction ext = extract_macros(c);
  const FaultUniverse u = FaultUniverse::all_stuck_at(ext.circuit);
  EXPECT_THROW(DeductiveSim(ext.circuit, u), Error);
}

TEST(Deductive, MatchesSerialOnS27) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 120, 55);
  DeductiveSim sim(c, u, Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  SerialOptions so;
  so.ff_init = Val::Zero;
  const SerialResult sr = serial_fault_sim(c, u, p.vectors(), so);
  EXPECT_EQ(sim.status(), sr.status);
}

TEST(Deductive, MatchesConcurrentOnRandomCircuits) {
  for (std::uint64_t seed : {301u, 302u, 303u, 304u}) {
    GenProfile gp;
    gp.name = "ded" + std::to_string(seed);
    gp.num_pis = 5;
    gp.num_pos = 4;
    gp.num_dffs = 7;
    gp.num_gates = 130;
    gp.seed = seed;
    const Circuit c = generate_circuit(gp);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const PatternSet p = PatternSet::random(5, 40, seed + 1);
    DeductiveSim ded(c, u, Val::Zero);
    ConcurrentSim con(c, u);
    con.reset(Val::Zero);
    for (std::size_t i = 0; i < p.size(); ++i) {
      ded.apply_vector(p[i]);
      con.apply_vector(p[i]);
    }
    ASSERT_EQ(ded.status(), con.status()) << "seed " << seed;
  }
}

TEST(Deductive, XorParityPropagation) {
  // y = XOR(a, b): any single-input inversion flips y; a fault flipping
  // both inputs cancels.  Build a circuit where one stem feeds both pins
  // through buffers so its stem fault hits both XOR inputs.
  Builder b("xorc");
  b.add_input("a");
  b.add_gate(GateKind::Buf, "p", {"a"});
  b.add_gate(GateKind::Buf, "q", {"a"});
  b.add_gate(GateKind::Xor, "y", {"p", "q"});
  b.mark_output("y");
  const Circuit c = b.build();
  // Custom universe: just the stem fault a s-a-1.
  FaultUniverse u;
  u.add({FaultType::StuckAt, c.find("a"), kFaultOutPin, Val::One});
  DeductiveSim sim(c, u);
  sim.apply_vector(bits({0}));
  // a flips both XOR pins -> cancels -> y unaffected -> undetected.
  EXPECT_EQ(sim.coverage().hard, 0u);
  EXPECT_TRUE(sim.line_set(c.find("y")).empty());
  EXPECT_FALSE(sim.line_set(c.find("p")).empty());
}

}  // namespace
}  // namespace cfs
