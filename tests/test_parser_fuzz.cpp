// .bench parser hardening: diagnostic anchoring (line/column), duplicate
// and dangling-signal rejection, multi-error collection -- plus a
// stdlib-only fuzz smoke test: a thousand random mutations of real netlist
// text must never crash the parser, and whatever it accepts must be a
// well-formed circuit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gen/circuit_gen.h"
#include "gen/iscas_profiles.h"
#include "netlist/bench_parser.h"
#include "netlist/bench_writer.h"
#include "util/error.h"

namespace cfs {
namespace {

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

TEST(ParseDiagnostics, CleanInputYieldsCircuitAndNoDiags) {
  const ParseResult r = parse_bench_diag(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.diags.empty());
  EXPECT_EQ(r.circuit->num_gates(), 3u);  // 2 PIs + the AND
}

TEST(ParseDiagnostics, DuplicateDefinitionCitesFirstSite) {
  const ParseResult r = parse_bench_diag(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n", "t");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].line, 5u);
  EXPECT_EQ(r.diags[0].col, 1u);
  EXPECT_NE(r.diags[0].message.find("'y' is already defined (line 4)"),
            std::string::npos);
}

TEST(ParseDiagnostics, DuplicateInputRejected) {
  const ParseResult r =
      parse_bench_diag("INPUT(a)\nINPUT(a)\nOUTPUT(a)\n", "t");
  ASSERT_FALSE(r.ok());
  ASSERT_GE(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].line, 2u);
  EXPECT_NE(r.diags[0].message.find("already defined (line 1)"),
            std::string::npos);
}

TEST(ParseDiagnostics, DanglingFaninAnchoredToReference) {
  const ParseResult r = parse_bench_diag(
      "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "t");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].line, 3u);
  EXPECT_EQ(r.diags[0].col, 12u);  // column of "ghost"
  EXPECT_NE(r.diags[0].message.find("'ghost' is referenced but never"),
            std::string::npos);
}

TEST(ParseDiagnostics, DanglingOutputReported) {
  const ParseResult r = parse_bench_diag(
      "INPUT(a)\nOUTPUT(nowhere)\nOUTPUT(y)\ny = NOT(a)\n", "t");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].line, 2u);
  EXPECT_NE(r.diags[0].message.find("'nowhere'"), std::string::npos);
}

TEST(ParseDiagnostics, ForwardReferencesAreLegal) {
  const ParseResult r = parse_bench_diag(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(q)\nq = DFF(a)\n", "t");
  EXPECT_TRUE(r.ok()) << (r.diags.empty() ? "" : r.diags[0].to_string());
}

TEST(ParseDiagnostics, MultipleErrorsCollectedInSourceOrder) {
  const ParseResult r = parse_bench_diag("INPUT(a)\n"
                                         "junk line\n"
                                         "OUTPUT(y)\n"
                                         "y = FROB(a)\n"
                                         "z = AND(a, missing)\n",
                                         "t");
  ASSERT_FALSE(r.ok());
  // bad statement (2), unknown kind (4), dangling 'missing' (5).  'y' and
  // 'z' are seeded as defined by their diagnosed lines, so no cascade.
  ASSERT_EQ(r.diags.size(), 3u);
  EXPECT_EQ(r.diags[0].line, 2u);
  EXPECT_EQ(r.diags[1].line, 4u);
  EXPECT_EQ(r.diags[2].line, 5u);
}

TEST(ParseDiagnostics, EmptyInputReported) {
  const ParseResult r = parse_bench_diag("  \n# only a comment\n", "t");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.diags.size(), 1u);
  EXPECT_EQ(r.diags[0].line, 0u);
  EXPECT_NE(r.diags[0].message.find("defines no gates"), std::string::npos);
}

TEST(ParseDiagnostics, ToStringFormatsAnchor) {
  EXPECT_EQ((ParseDiag{3, 7, "boom"}).to_string(),
            ".bench line 3, col 7: boom");
  EXPECT_EQ((ParseDiag{3, 0, "boom"}).to_string(), ".bench line 3: boom");
  EXPECT_EQ((ParseDiag{0, 0, "boom"}).to_string(), ".bench: boom");
}

TEST(ParseDiagnostics, ThrowingEntryPointCarriesFirstDiag) {
  try {
    (void)parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "t");
    FAIL() << "expected cfs::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ParseDiagnostics, DiagCountIsCapped) {
  std::string text = "OUTPUT(y)\ny = NOT(x0)\nINPUT(x0)\n";
  for (int i = 0; i < 300; ++i) text += "bogus statement\n";
  const ParseResult r = parse_bench_diag(text, "t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.diags.size(), ParseResult::kMaxDiags);
}

// ---------------------------------------------------------------------------
// Fuzz smoke test (stdlib-only, deterministic)
// ---------------------------------------------------------------------------

// xorshift64* -- deterministic across platforms, no <random> distribution
// variance.
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
  std::size_t below(std::size_t n) {
    return static_cast<std::size_t>(next() % n);
  }
};

std::string mutate(const std::string& seed_text, Rng& rng) {
  std::string t = seed_text;
  const std::size_t edits = 1 + rng.below(8);
  for (std::size_t e = 0; e < edits; ++e) {
    if (t.empty()) break;
    switch (rng.below(6)) {
      case 0:  // flip a byte to a random printable-or-control character
        t[rng.below(t.size())] =
            static_cast<char>(rng.below(96) + (rng.below(8) == 0 ? 0 : 32));
        break;
      case 1:  // delete a span
        t.erase(rng.below(t.size()), rng.below(16) + 1);
        break;
      case 2:  // insert separator soup
        t.insert(rng.below(t.size()),
                 std::string("(),=#\n").substr(rng.below(6), 1 + rng.below(2)));
        break;
      case 3:  // duplicate a line
      {
        const std::size_t at = rng.below(t.size());
        const std::size_t ls = t.rfind('\n', at);
        const std::size_t le = t.find('\n', at);
        const std::string line = t.substr(
            ls == std::string::npos ? 0 : ls + 1,
            (le == std::string::npos ? t.size() : le) -
                (ls == std::string::npos ? 0 : ls + 1));
        t.insert(le == std::string::npos ? t.size() : le, "\n" + line);
        break;
      }
      case 4:  // truncate
        t.resize(rng.below(t.size()) + 1);
        break;
      case 5:  // swap two halves
      {
        const std::size_t cut = rng.below(t.size());
        t = t.substr(cut) + t.substr(0, cut);
        break;
      }
    }
  }
  return t;
}

void fuzz_one(const std::string& text, const char* what, std::uint64_t i) {
  const ParseResult r = parse_bench_diag(text, "fuzz");
  if (r.ok()) {
    // Whatever survives must be a structurally sound circuit.
    ASSERT_TRUE(r.diags.empty()) << what << " #" << i;
    ASSERT_GT(r.circuit->num_gates(), 0u) << what << " #" << i;
  } else {
    ASSERT_FALSE(r.diags.empty()) << what << " #" << i;
    ASSERT_LE(r.diags.size(), ParseResult::kMaxDiags);
    // Diagnostics stay anchored inside the input.
    std::size_t lines = 1;
    for (const char ch : text) lines += ch == '\n';
    for (const ParseDiag& d : r.diags) {
      ASSERT_LE(d.line, lines) << what << " #" << i;
      ASSERT_LE(d.col, text.size() + 1) << what << " #" << i;
      ASSERT_FALSE(d.message.empty());
      (void)d.to_string();
    }
  }
  // The throwing entry point agrees with the diagnosing one.
  if (!r.ok()) {
    EXPECT_THROW((void)parse_bench(text, "fuzz"), Error)
        << what << " #" << i;
  }
}

TEST(ParserFuzz, ThousandMutationsOfS27NeverCrash) {
  const std::string seed_text = write_bench(make_benchmark("s27"));
  ASSERT_TRUE(parse_bench_diag(seed_text, "s27").ok());
  Rng rng{0x5EEDBA5Eull};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    fuzz_one(mutate(seed_text, rng), "s27", i);
  }
}

TEST(ParserFuzz, MutatedGeneratedCircuitsNeverCrash) {
  Rng rng{0xFADEDFACEull};
  for (std::uint64_t g = 0; g < 8; ++g) {
    GenProfile prof;
    prof.name = "fz" + std::to_string(g);
    prof.num_pis = 3 + static_cast<unsigned>(g % 4);
    prof.num_dffs = 2 + static_cast<unsigned>(g % 3);
    prof.num_gates = 30 + static_cast<unsigned>(g) * 7;
    prof.seed = 100 + g;
    const std::string seed_text = write_bench(generate_circuit(prof));
    ASSERT_TRUE(parse_bench_diag(seed_text, prof.name).ok()) << prof.name;
    for (std::uint64_t i = 0; i < 40; ++i) {
      fuzz_one(mutate(seed_text, rng), prof.name.c_str(), i);
    }
  }
}

TEST(ParserFuzz, AdversarialHandWrittenInputs) {
  const char* cases[] = {
      "",
      "\n\n\n",
      "(",
      ")",
      "=",
      "a=",
      "=b",
      "a==b()",
      "INPUT",
      "INPUT()",
      "INPUT(a",
      "INPUT(a))",
      "INPUT((a))",
      "OUTPUT(,)",
      "y = AND(,)",
      "y = AND()",
      "y = ()",
      "y = (a)",
      "y = AND(a,,b)",
      "x = DFF(a, b)",
      "INPUT(a)\na = AND(a, a)\nOUTPUT(a)",
      "# nothing but comments\n#\n#",
      "y = AND(a, b) = OR(c)",
      "INPUT(\xFF\xFE)\nOUTPUT(\xFF\xFE)",
      "INPUT(a)\r\nOUTPUT(y)\r\ny = NOT(a)\r\n",
  };
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    fuzz_one(cases[i], "adversarial", i);
  }
}

}  // namespace
}  // namespace cfs
