#include <gtest/gtest.h>

#include <set>

#include "util/memtrack.h"
#include "util/pool.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace cfs {
namespace {

// Regression: clear() used to leave peak_live_ at the old high-water mark,
// so MEM reporting after a mid-run clear()+refill showed the previous
// epoch's peak instead of the new one.
TEST(Pool, ClearResetsPeakLive) {
  Pool<std::uint64_t> p;
  for (int i = 0; i < 100; ++i) p.alloc();
  ASSERT_EQ(p.peak_live(), 100u);
  p.clear();
  EXPECT_EQ(p.peak_live(), 0u);
  for (int i = 0; i < 7; ++i) p.alloc();
  EXPECT_EQ(p.peak_live(), 7u);
}

// reset() is the compaction primitive: it must keep the lifetime high-water
// mark (and the chunks), unlike clear().
TEST(Pool, ResetKeepsPeakLiveAndCapacity) {
  Pool<std::uint64_t> p;
  for (int i = 0; i < 100; ++i) p.alloc();
  const std::size_t cap = p.capacity();
  p.reset();
  EXPECT_EQ(p.live(), 0u);
  EXPECT_EQ(p.peak_live(), 100u);
  EXPECT_EQ(p.capacity(), cap);
  EXPECT_EQ(p.alloc(), 0u);  // re-dispensed from index 0
  EXPECT_EQ(p.peak_live(), 100u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, SplitDropsEmptyPieces) {
  const auto v = split("a, b,, c ,", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitSingleToken) {
  const auto v = split("hello", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "hello");
}

TEST(Strings, Upper) {
  EXPECT_EQ(upper("NaNd"), "NAND");
  EXPECT_EQ(upper("g17"), "G17");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(MemStats, SamplesReplaceAndPeakPersists) {
  MemStats ms;
  ms.sample("pool", 1000);
  ms.sample("lists", 500);
  EXPECT_EQ(ms.current(), 1500u);
  EXPECT_EQ(ms.peak(), 1500u);
  ms.sample("pool", 100);
  EXPECT_EQ(ms.current(), 600u);
  EXPECT_EQ(ms.peak(), 1500u);
}

TEST(MemStats, FormatBytes) {
  EXPECT_EQ(format_bytes(100), "100");
  EXPECT_EQ(format_bytes(2048), "2.0K");
  EXPECT_EQ(format_bytes(9ull * 1024 * 1024), "9.00M");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.range(3, 5));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(3));
  EXPECT_TRUE(seen.count(5));
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stopwatch, MonotoneNonNegative) {
  Stopwatch sw;
  const double a = sw.seconds();
  const double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  sw.restart();
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace cfs
