// Resilience subsystem: checkpoint/resume bit-identity across engine
// variants, shard counts, and the transition model; shard failure
// containment under injected exceptions and stalls; memory-budget
// multi-pass degradation; snapshot file integrity (CRC, version, shape).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/iscas_profiles.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"
#include "patterns/tgen.h"
#include "resil/campaign.h"
#include "resil/containment.h"
#include "resil/crc32.h"
#include "resil/snapshot.h"
#include "sim/sharded_sim.h"
#include "util/error.h"
#include "util/pool.h"

namespace cfs {
namespace {

using resil::CampaignCheckpoint;
using resil::CampaignOptions;
using resil::CampaignResult;
using resil::CampaignRunner;
using resil::FaultInjector;
using resil::InjectedShardFailure;
using resil::InjectionSpec;
using resil::SnapshotError;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Two sequences so mid-sequence and sequence-boundary resumes both occur.
TestSuite make_suite(std::size_t inputs, std::size_t n1 = 40,
                     std::size_t n2 = 24) {
  TestSuite t;
  t.sequences().push_back(PatternSet::random(inputs, n1, 11));
  t.sequences().push_back(PatternSet::random(inputs, n2, 12));
  return t;
}

// ---------------------------------------------------------------------------
// CRC32 / pool budget / injector primitives
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(resil::crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(resil::crc32(s, 0), 0u);
}

TEST(PoolBudget, AllocThrowsAtBudget) {
  Pool<std::uint64_t> pool;
  pool.set_budget(3);
  (void)pool.alloc();
  (void)pool.alloc();
  const std::uint32_t last = pool.alloc();
  EXPECT_THROW((void)pool.alloc(), PoolBudgetError);
  // Freeing makes room again; the budget bounds *live* objects.
  pool.free(last);
  EXPECT_NO_THROW((void)pool.alloc());
  EXPECT_LE(pool.peak_live(), 3u);
}

TEST(FaultInjectorTest, ParsesSpecGrammar) {
  const auto specs =
      FaultInjector::parse("throw:1:3,stall:0:2:400,throw:2:5:2");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].action, InjectionSpec::Action::Throw);
  EXPECT_EQ(specs[0].shard, 1u);
  EXPECT_EQ(specs[0].vector, 3u);
  EXPECT_EQ(specs[0].times, 1u);
  EXPECT_EQ(specs[1].action, InjectionSpec::Action::Stall);
  EXPECT_EQ(specs[1].stall_ms, 400u);
  EXPECT_EQ(specs[2].times, 2u);
  EXPECT_THROW(FaultInjector::parse("explode:1:2"), Error);
  EXPECT_THROW(FaultInjector::parse("throw:1"), Error);
  EXPECT_THROW(FaultInjector::parse("throw:a:2"), Error);
  EXPECT_THROW(FaultInjector::parse("stall:1:2"), Error);
}

TEST(FaultInjectorTest, FiresBoundedTimes) {
  FaultInjector inj;
  inj.add(InjectionSpec{InjectionSpec::Action::Throw, 1, 5, 0, 1});
  inj.maybe_fire(0, 5);  // wrong shard
  inj.maybe_fire(1, 4);  // wrong vector
  EXPECT_EQ(inj.fired(), 0u);
  EXPECT_THROW(inj.maybe_fire(1, 5), InjectedShardFailure);
  EXPECT_NO_THROW(inj.maybe_fire(1, 5));  // spent
  EXPECT_EQ(inj.fired(), 1u);
}

// ---------------------------------------------------------------------------
// Snapshot file format
// ---------------------------------------------------------------------------

CampaignCheckpoint small_checkpoint() {
  CampaignCheckpoint ck;
  ck.suite_fp = 0xDEADBEEFCAFEF00Dull;
  ck.num_gates = 7;
  ck.num_dffs = 2;
  ck.num_pis = 3;
  ck.num_faults = 4;
  ck.transition_mode = 1;
  ck.pass = 2;
  ck.seq_index = 1;
  ck.vec_index = 5;
  ck.suite_pos = 45;
  ck.detections_hard = 2;
  ck.detections_potential = 1;
  ck.faults_dropped = 2;
  ck.status = {Detect::Hard, Detect::None, Detect::Potential, Detect::None};
  ck.detected_at = {3, resil::kNotDetected, resil::kNotDetected,
                    resil::kNotDetected};
  ck.done = {1, 0, 0, 0};
  ck.suspended = {0, 0, 1, 1};
  ck.run.flop_good = {Val::One, Val::X};
  ck.run.flop_faulty = {{{1, GateState{}}}, {}};
  ck.run.prev_pins = {Val::Zero, Val::One, Val::X, Val::X};
  return ck;
}

TEST(Snapshot, RoundTripPreservesEveryField) {
  const std::string path = tmp_path("ck_roundtrip.bin");
  const CampaignCheckpoint a = small_checkpoint();
  resil::save_checkpoint(path, a);
  const CampaignCheckpoint b = resil::load_checkpoint(path);
  EXPECT_EQ(b.suite_fp, a.suite_fp);
  EXPECT_EQ(b.num_gates, a.num_gates);
  EXPECT_EQ(b.num_dffs, a.num_dffs);
  EXPECT_EQ(b.num_pis, a.num_pis);
  EXPECT_EQ(b.num_faults, a.num_faults);
  EXPECT_EQ(b.transition_mode, a.transition_mode);
  EXPECT_EQ(b.pass, a.pass);
  EXPECT_EQ(b.seq_index, a.seq_index);
  EXPECT_EQ(b.vec_index, a.vec_index);
  EXPECT_EQ(b.suite_pos, a.suite_pos);
  EXPECT_EQ(b.detections_hard, a.detections_hard);
  EXPECT_EQ(b.detections_potential, a.detections_potential);
  EXPECT_EQ(b.faults_dropped, a.faults_dropped);
  EXPECT_EQ(b.status, a.status);
  EXPECT_EQ(b.detected_at, a.detected_at);
  EXPECT_EQ(b.done, a.done);
  EXPECT_EQ(b.suspended, a.suspended);
  EXPECT_EQ(b.run, a.run);
  std::remove(path.c_str());
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Snapshot, DetectsCorruptionTruncationAndBadHeader) {
  const std::string path = tmp_path("ck_corrupt.bin");
  resil::save_checkpoint(path, small_checkpoint());
  const std::vector<char> good = slurp(path);
  ASSERT_GT(good.size(), 20u);

  // Flip one payload byte: CRC mismatch.
  std::vector<char> bad = good;
  bad[good.size() - 3] ^= 0x40;
  spit(path, bad);
  EXPECT_THROW(resil::load_checkpoint(path), SnapshotError);

  // Truncate mid-payload.
  bad = good;
  bad.resize(good.size() / 2);
  spit(path, bad);
  EXPECT_THROW(resil::load_checkpoint(path), SnapshotError);

  // Wrong magic.
  bad = good;
  bad[0] ^= 0x01;
  spit(path, bad);
  EXPECT_THROW(resil::load_checkpoint(path), SnapshotError);

  // Unknown version (byte 4 is the version field's low byte).
  bad = good;
  bad[4] = 99;
  spit(path, bad);
  EXPECT_THROW(resil::load_checkpoint(path), SnapshotError);

  // Trailing garbage.
  bad = good;
  bad.push_back('x');
  spit(path, bad);
  EXPECT_THROW(resil::load_checkpoint(path), SnapshotError);

  EXPECT_THROW(resil::load_checkpoint(tmp_path("ck_missing.bin")),
               SnapshotError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Engine capture/restore
// ---------------------------------------------------------------------------

// Stopping an engine at a vector boundary, restoring from the snapshot, and
// replaying the tail must reproduce the uninterrupted run exactly.
TEST(EngineRestore, ContinuationIsBitIdentical) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 48, 5);

  ConcurrentSim ref(c, u);
  ref.reset(Val::X);
  for (std::size_t i = 0; i < p.size(); ++i) ref.apply_vector(p[i]);

  ConcurrentSim sim(c, u);
  sim.reset(Val::X);
  for (std::size_t i = 0; i < 20; ++i) sim.apply_vector(p[i]);
  const RunStateSnapshot snap = sim.capture_run_state();
  const std::vector<Detect> snap_status = sim.status();

  // Scramble past the snapshot, then roll back.
  for (std::size_t i = 20; i < 30; ++i) sim.apply_vector(p[i]);
  sim.restore_run_state(snap, snap_status);
  for (std::size_t i = 20; i < p.size(); ++i) sim.apply_vector(p[i]);

  EXPECT_EQ(sim.status(), ref.status());
}

TEST(EngineRestore, TransitionModeContinuationIsBitIdentical) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 48, 6);

  ConcurrentSim ref(c, u);
  ref.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) ref.apply_vector(p[i]);

  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  for (std::size_t i = 0; i < 17; ++i) sim.apply_vector(p[i]);
  const RunStateSnapshot snap = sim.capture_run_state();
  const std::vector<Detect> snap_status = sim.status();
  sim.restore_run_state(snap, snap_status);
  for (std::size_t i = 17; i < p.size(); ++i) sim.apply_vector(p[i]);

  EXPECT_EQ(sim.status(), ref.status());
}

// A merged ShardedSim snapshot is shard-count-agnostic: capture on one
// shard count, restore on another, identical tail.
TEST(EngineRestore, SnapshotMovesAcrossShardCounts) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 40, 7);

  ShardedOptions one;
  one.num_threads = 1;
  ShardedSim ref(c, u, one);
  ref.reset(Val::X);
  for (std::size_t i = 0; i < p.size(); ++i) ref.apply_vector(p[i]);

  ShardedSim first(c, u, one);
  first.reset(Val::X);
  for (std::size_t i = 0; i < 15; ++i) first.apply_vector(p[i]);
  const RunStateSnapshot snap = first.capture_run_state();
  const std::vector<Detect> st = first.status();

  ShardedOptions four;
  four.num_threads = 4;
  ShardedSim second(c, u, four);
  second.restore_run_state(snap, st);
  for (std::size_t i = 15; i < p.size(); ++i) second.apply_vector(p[i]);

  EXPECT_EQ(second.status(), ref.status());
}

// ---------------------------------------------------------------------------
// Campaign checkpoint/resume
// ---------------------------------------------------------------------------

enum class Variant { Plain, V, M, MV };

CampaignOptions variant_options(Variant v, unsigned threads) {
  CampaignOptions opt;
  opt.sharded.num_threads = threads;
  opt.sharded.csim.split_lists = v == Variant::V || v == Variant::MV;
  return opt;
}

// Run a campaign for variant `v`; macro variants extract macros like the
// harness does.
CampaignResult run_campaign(const Circuit& c, const FaultUniverse& u,
                            const TestSuite& t, Variant v,
                            CampaignOptions opt) {
  if (v == Variant::M || v == Variant::MV) {
    MacroExtraction ext = extract_macros(c);
    MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
    CampaignRunner runner(ext.circuit, u, t, std::move(opt), &mmap);
    return runner.run();
  }
  CampaignRunner runner(c, u, t, std::move(opt));
  return runner.run();
}

// The campaign's sequence starts must match the plain engine path (one
// reset() per sequence) exactly.  A tgen-trimmed suite is the sharpest
// probe: it detects some faults solely through flip-flop site divergences
// present in the *initial* state, which a synthetic empty-snapshot restore
// silently skips (regression: the campaign reported 145/706 hard on a
// generated s298 suite where the serial ground truth says 147/706).
TEST(CampaignEquivalence, MatchesPlainEnginePathOnGeneratedTests) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TgenOptions topt;
  topt.ff_init = Val::Zero;
  topt.max_vectors = 48;
  const TestSuite t = generate_tests(c, u, topt).suite;
  ASSERT_FALSE(t.empty());

  ShardedSim ref(c, u, ShardedOptions{});
  ref.run(t, Val::Zero);

  for (const Variant v :
       {Variant::Plain, Variant::V, Variant::M, Variant::MV}) {
    CampaignOptions opt = variant_options(v, 1);
    opt.ff_init = Val::Zero;
    const CampaignResult r = run_campaign(c, u, t, v, opt);
    EXPECT_EQ(r.status, ref.status()) << "variant " << static_cast<int>(v);
  }
}

class CheckpointResume
    : public ::testing::TestWithParam<std::tuple<Variant, unsigned>> {};

TEST_P(CheckpointResume, HaltAndResumeMatchesUninterrupted) {
  const auto [variant, threads] = GetParam();
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size());

  const CampaignResult full =
      run_campaign(c, u, t, variant, variant_options(variant, threads));
  ASSERT_EQ(full.vectors, t.total_vectors());

  // Halt mid-sequence (vector 17 of 40+24) and at the first sequence
  // boundary (vector 40): both cursor shapes must resume bit-identically.
  for (const std::uint64_t halt : {std::uint64_t{17}, std::uint64_t{40}}) {
    const std::string path = tmp_path(
        "ck_resume_" + std::to_string(static_cast<int>(variant)) + "_" +
        std::to_string(threads) + "_" + std::to_string(halt) + ".bin");

    CampaignOptions first = variant_options(variant, threads);
    first.checkpoint_path = path;
    first.halt_after = halt;
    const CampaignResult head = run_campaign(c, u, t, variant, first);
    EXPECT_TRUE(head.halted);
    EXPECT_EQ(head.vectors, halt);
    EXPECT_GE(head.checkpoints_written, 1u);

    CampaignOptions second = variant_options(variant, threads);
    second.resume_path = path;
    const CampaignResult tail = run_campaign(c, u, t, variant, second);
    EXPECT_FALSE(tail.halted);
    EXPECT_EQ(tail.vectors, t.total_vectors() - halt);

    EXPECT_EQ(tail.digest(), full.digest()) << "halt=" << halt;
    EXPECT_EQ(tail.status, full.status);
    EXPECT_EQ(tail.detected_at, full.detected_at);
    EXPECT_EQ(tail.detections_hard, full.detections_hard);
    EXPECT_EQ(tail.detections_potential, full.detections_potential);
    EXPECT_EQ(tail.faults_dropped, full.faults_dropped);
    EXPECT_EQ(tail.coverage.hard, full.coverage.hard);
    std::remove(path.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsByShards, CheckpointResume,
    ::testing::Combine(::testing::Values(Variant::Plain, Variant::V,
                                         Variant::M, Variant::MV),
                       ::testing::Values(1u, 2u, 4u)));

TEST(CheckpointResumeTransition, HaltAndResumeMatchesUninterrupted) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const TestSuite t = make_suite(c.inputs().size());
  for (const unsigned threads : {1u, 2u}) {
    CampaignOptions base = variant_options(Variant::V, threads);
    base.ff_init = Val::Zero;
    const CampaignResult full = run_campaign(c, u, t, Variant::V, base);

    const std::string path =
        tmp_path("ck_tr_" + std::to_string(threads) + ".bin");
    CampaignOptions first = base;
    first.checkpoint_path = path;
    first.halt_after = 23;
    const CampaignResult head = run_campaign(c, u, t, Variant::V, first);
    ASSERT_TRUE(head.halted);

    CampaignOptions second = base;
    second.resume_path = path;
    const CampaignResult tail = run_campaign(c, u, t, Variant::V, second);
    EXPECT_EQ(tail.digest(), full.digest()) << threads << " threads";
    EXPECT_EQ(tail.status, full.status);
    std::remove(path.c_str());
  }
}

TEST(CheckpointResume, PeriodicCheckpointsAreWritten) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 20, 12);
  const std::string path = tmp_path("ck_periodic.bin");

  CampaignOptions opt;
  opt.checkpoint_path = path;
  opt.checkpoint_every = 8;
  CampaignRunner runner(c, u, t, opt);
  const CampaignResult r = runner.run();
  // 32 vectors / every 8 = 4 periodic + 1 final.
  EXPECT_EQ(r.checkpoints_written, 5u);

  // The final checkpoint resumes to an immediately-complete campaign.
  CampaignOptions res;
  res.resume_path = path;
  CampaignRunner runner2(c, u, t, res);
  const CampaignResult done = runner2.run();
  EXPECT_EQ(done.vectors, 0u);
  EXPECT_EQ(done.digest(), r.digest());
  std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsMismatchedSuiteAndCircuit) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 10, 6);
  const std::string path = tmp_path("ck_mismatch.bin");

  CampaignOptions opt;
  opt.checkpoint_path = path;
  opt.halt_after = 4;
  CampaignRunner runner(c, u, t, opt);
  (void)runner.run();

  // Different suite, same circuit.
  const TestSuite other = make_suite(c.inputs().size(), 11, 6);
  CampaignOptions res;
  res.resume_path = path;
  CampaignRunner bad_suite(c, u, other, res);
  EXPECT_THROW((void)bad_suite.run(), SnapshotError);

  // Different circuit entirely.
  const Circuit c2 = make_benchmark("s298");
  const FaultUniverse u2 = FaultUniverse::all_stuck_at(c2);
  const TestSuite t2 = make_suite(c2.inputs().size(), 10, 6);
  CampaignRunner bad_circuit(c2, u2, t2, res);
  EXPECT_THROW((void)bad_circuit.run(), SnapshotError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Shard failure containment
// ---------------------------------------------------------------------------

TEST(Containment, InjectedThrowIsRetriedAndResultUnchanged) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size());

  const CampaignResult clean =
      run_campaign(c, u, t, Variant::MV, variant_options(Variant::MV, 2));

  FaultInjector inj;
  inj.add(InjectionSpec{InjectionSpec::Action::Throw, 1, 5, 0, 1});
  inj.add(InjectionSpec{InjectionSpec::Action::Throw, 0, 9, 0, 2});
  CampaignOptions opt = variant_options(Variant::MV, 2);
  opt.sharded.resil.max_retries = 3;
  opt.sharded.resil.injector = &inj;
  const CampaignResult r = run_campaign(c, u, t, Variant::MV, opt);

  EXPECT_EQ(inj.fired(), 3u);
  EXPECT_GE(r.shard_retries, 3u);
  EXPECT_EQ(r.shard_requeues, 0u);
  EXPECT_EQ(r.digest(), clean.digest());
  EXPECT_EQ(r.status, clean.status);
  EXPECT_EQ(r.detected_at, clean.detected_at);
}

TEST(Containment, RepeatedFailurePastRetryBudgetPropagates) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 12, 0);

  FaultInjector inj;
  inj.add(InjectionSpec{InjectionSpec::Action::Throw, 0, 3, 0, 100});
  CampaignOptions opt = variant_options(Variant::V, 2);
  opt.sharded.resil.max_retries = 2;
  opt.sharded.resil.injector = &inj;
  CampaignRunner runner(c, u, t, opt);
  EXPECT_THROW((void)runner.run(), InjectedShardFailure);
}

TEST(Containment, WithoutRetriesInjectedFailurePropagates) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 12, 0);

  FaultInjector inj;
  inj.add(InjectionSpec{InjectionSpec::Action::Throw, 0, 3, 0, 1});
  CampaignOptions opt = variant_options(Variant::V, 2);
  opt.sharded.resil.injector = &inj;  // max_retries stays 0: fast path
  CampaignRunner runner(c, u, t, opt);
  EXPECT_THROW((void)runner.run(), InjectedShardFailure);
}

TEST(Containment, StalledShardIsRequeuedAndResultUnchanged) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 24, 0);

  const CampaignResult clean =
      run_campaign(c, u, t, Variant::V, variant_options(Variant::V, 2));

  FaultInjector inj;
  inj.add(InjectionSpec{InjectionSpec::Action::Stall, 1, 6, 2000, 1});
  CampaignOptions opt = variant_options(Variant::V, 2);
  opt.sharded.resil.max_retries = 3;
  opt.sharded.resil.deadline_ms = 100;
  opt.sharded.resil.injector = &inj;
  const CampaignResult r = run_campaign(c, u, t, Variant::V, opt);

  EXPECT_GE(r.shard_requeues, 1u);
  EXPECT_GE(r.shard_retries, 1u);
  EXPECT_EQ(r.digest(), clean.digest());
  EXPECT_EQ(r.status, clean.status);
}

// ---------------------------------------------------------------------------
// Memory-budget multi-pass degradation
// ---------------------------------------------------------------------------

TEST(MemoryBudget, MultiPassMatchesUnlimitedRun) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size());

  const CampaignResult unlimited =
      run_campaign(c, u, t, Variant::V, variant_options(Variant::V, 1));
  ASSERT_EQ(unlimited.passes, 1u);
  const std::size_t natural_peak = unlimited.peak_elements;

  for (const unsigned threads : {1u, 2u}) {
    CampaignOptions opt = variant_options(Variant::V, threads);
    opt.sharded.csim.max_elements = natural_peak / 3;
    const CampaignResult r = run_campaign(c, u, t, Variant::V, opt);

    EXPECT_GT(r.passes, 1u) << threads << " threads";
    // detected_at stamps suite positions, so the digest is budget- and
    // pass-invariant, not just the detected set.
    EXPECT_EQ(r.digest(), unlimited.digest()) << threads << " threads";
    EXPECT_EQ(r.status, unlimited.status);
    EXPECT_EQ(r.detections_hard, unlimited.detections_hard);
    EXPECT_EQ(r.detections_potential, unlimited.detections_potential);
    // Budget holds: each shard's pool carries one sentinel beyond its
    // share of the element budget.
    EXPECT_LE(r.peak_elements, opt.sharded.csim.max_elements + threads)
        << threads << " threads";
  }
}

TEST(MemoryBudget, CheckpointResumeWorksMidMultiPass) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size());
  const std::string path = tmp_path("ck_budget.bin");

  CampaignOptions base = variant_options(Variant::V, 1);
  base.sharded.csim.max_elements = 700;
  const CampaignResult full = run_campaign(c, u, t, Variant::V, base);
  ASSERT_GT(full.passes, 1u);

  CampaignOptions first = base;
  first.checkpoint_path = path;
  first.halt_after = t.total_vectors() + 10;  // halts inside pass 2
  const CampaignResult head = run_campaign(c, u, t, Variant::V, first);
  ASSERT_TRUE(head.halted);

  CampaignOptions second = base;
  second.resume_path = path;
  const CampaignResult tail = run_campaign(c, u, t, Variant::V, second);
  EXPECT_EQ(tail.digest(), full.digest());
  EXPECT_EQ(tail.status, full.status);
  EXPECT_EQ(tail.passes, full.passes);
  std::remove(path.c_str());
}

// Halving the budget until the campaign refuses walks it through every
// degradation regime -- including budgets the *sequence-start reset*
// overflows, a recovery path the mid-vector tests never hit (regression:
// reset() inherited the pending events of the settle the overflow
// aborted, tripping the level-queue drain assertion).
TEST(MemoryBudget, BudgetLadderDownToRefusalKeepsTheDigest) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size());

  const CampaignResult unlimited =
      run_campaign(c, u, t, Variant::V, variant_options(Variant::V, 1));

  unsigned completed = 0;
  for (std::size_t budget = unlimited.peak_elements / 2; budget >= 2;
       budget /= 2) {
    CampaignOptions opt = variant_options(Variant::V, 1);
    opt.sharded.csim.max_elements = budget;
    try {
      const CampaignResult r = run_campaign(c, u, t, Variant::V, opt);
      EXPECT_EQ(r.digest(), unlimited.digest()) << "budget " << budget;
      EXPECT_EQ(r.status, unlimited.status) << "budget " << budget;
      ++completed;
    } catch (const Error&) {
      break;  // unusably small is a clean refusal, never a crash
    }
  }
  EXPECT_GE(completed, 2u);
}

TEST(MemoryBudget, UnusablySmallBudgetThrows) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 8, 0);

  CampaignOptions opt;
  opt.sharded.csim.max_elements = 1;
  CampaignRunner runner(c, u, t, opt);
  EXPECT_THROW((void)runner.run(), Error);
}

// ---------------------------------------------------------------------------
// Checkpoint-write I/O faults: bounded retry/backoff vs. exhaustion
// ---------------------------------------------------------------------------

/// RAII guard: arms the process-wide snapshot injector, always disarms.
struct SnapshotInjectorGuard {
  explicit SnapshotInjectorGuard(FaultInjector& inj) {
    resil::set_snapshot_injector(&inj);
  }
  ~SnapshotInjectorGuard() { resil::set_snapshot_injector(nullptr); }
};

TEST(FaultInjectorTest, ParsesIoFaultGrammar) {
  const auto specs =
      FaultInjector::parse("short-write:3,enospc:0:2,rename-fail:1:5");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].action, InjectionSpec::Action::ShortWrite);
  EXPECT_EQ(specs[0].vector, 3u);
  EXPECT_EQ(specs[0].times, 1u);
  EXPECT_EQ(specs[1].action, InjectionSpec::Action::Enospc);
  EXPECT_EQ(specs[1].vector, 0u);
  EXPECT_EQ(specs[1].times, 2u);
  EXPECT_EQ(specs[2].action, InjectionSpec::Action::RenameFail);
  EXPECT_EQ(specs[2].times, 5u);
  EXPECT_TRUE(InjectionSpec::is_io(specs[0].action));
  EXPECT_FALSE(InjectionSpec::is_io(InjectionSpec::Action::Throw));
  EXPECT_THROW(FaultInjector::parse("enospc"), Error);
  EXPECT_THROW(FaultInjector::parse("enospc:1:2:3"), Error);
  EXPECT_THROW(FaultInjector::parse("short-write:x"), Error);
}

TEST(FaultInjectorTest, IoSpecsCountSaveAttemptsNotShardVectors) {
  FaultInjector inj;
  for (const InjectionSpec& s : FaultInjector::parse("enospc:1:2")) {
    inj.add(s);
  }
  // Shard-side checks never consume I/O specs.
  EXPECT_NO_THROW(inj.maybe_fire(0, 1));
  EXPECT_EQ(inj.maybe_fail_save(), resil::IoFail::None);    // attempt 0
  EXPECT_EQ(inj.maybe_fail_save(), resil::IoFail::Enospc);  // attempt 1
  EXPECT_EQ(inj.maybe_fail_save(), resil::IoFail::Enospc);  // attempt 2
  EXPECT_EQ(inj.maybe_fail_save(), resil::IoFail::None);    // budget spent
}

TEST(CheckpointIoFaults, SaveFailuresSurfaceAsCheckpointIoError) {
  const std::string path = tmp_path("ck_iofault.bin");
  const CampaignCheckpoint ck = small_checkpoint();
  for (const char* spec : {"short-write:0", "enospc:0", "rename-fail:0"}) {
    FaultInjector inj;
    for (const InjectionSpec& s : FaultInjector::parse(spec)) inj.add(s);
    SnapshotInjectorGuard guard(inj);
    EXPECT_THROW(resil::save_checkpoint(path, ck),
                 resil::CheckpointIoError)
        << spec;
    // The fault must not leave a temp file (or a torn target) behind.
    EXPECT_FALSE(std::ifstream(path).good()) << spec;
  }
  // Disarmed, the same save succeeds and loads back.
  resil::save_checkpoint(path, ck);
  EXPECT_EQ(resil::load_checkpoint(path).suite_fp, ck.suite_fp);
  std::remove(path.c_str());
}

TEST(CheckpointIoFaults, BoundedRetryAbsorbsTransientFailures) {
  const std::string path = tmp_path("ck_ioretry.bin");
  const CampaignCheckpoint ck = small_checkpoint();
  FaultInjector inj;
  for (const InjectionSpec& s : FaultInjector::parse("enospc:0:2")) {
    inj.add(s);
  }
  SnapshotInjectorGuard guard(inj);
  // Attempts 0 and 1 fail, attempt 2 succeeds: two retries reported.
  const std::uint64_t retried =
      resil::save_checkpoint_retry(path, ck, {/*retries=*/3,
                                              /*backoff_ms=*/1});
  EXPECT_EQ(retried, 2u);
  EXPECT_EQ(resil::load_checkpoint(path).suite_fp, ck.suite_fp);
  std::remove(path.c_str());
}

TEST(CheckpointIoFaults, RetryExhaustionPropagates) {
  const std::string path = tmp_path("ck_ioexhaust.bin");
  const CampaignCheckpoint ck = small_checkpoint();
  FaultInjector inj;
  for (const InjectionSpec& s : FaultInjector::parse("rename-fail:0:99")) {
    inj.add(s);
  }
  SnapshotInjectorGuard guard(inj);
  EXPECT_THROW(
      (void)resil::save_checkpoint_retry(path, ck, {2, 1}),
      resil::CheckpointIoError);
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(CheckpointIoFaults, CampaignRetriesWritesAndKeepsItsDigest) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 20, 12);

  // Reference: no injector, no checkpointing.
  CampaignOptions plain;
  CampaignRunner ref(c, u, t, plain);
  const std::uint64_t want = ref.run().digest();

  const std::string path = tmp_path("ck_iocampaign.bin");
  FaultInjector inj;
  // Save attempts 1 and 2 fail (attempt 0 -- the first periodic
  // checkpoint -- succeeds, proving mid-campaign recovery too).
  for (const InjectionSpec& s : FaultInjector::parse("enospc:1:2")) {
    inj.add(s);
  }
  SnapshotInjectorGuard guard(inj);

  CampaignOptions opt;
  opt.checkpoint_path = path;
  opt.checkpoint_every = 8;
  opt.checkpoint_retries = 3;
  opt.checkpoint_backoff_ms = 1;
  CampaignRunner runner(c, u, t, opt);
  const CampaignResult r = runner.run();
  EXPECT_EQ(r.checkpoint_write_retries, 2u);
  EXPECT_EQ(r.digest(), want);  // sabotaged I/O never touches results
  std::remove(path.c_str());
}

TEST(CheckpointIoFaults, CampaignSurfacesExhaustedRetries) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = make_suite(c.inputs().size(), 20, 12);

  const std::string path = tmp_path("ck_iodead.bin");
  FaultInjector inj;
  for (const InjectionSpec& s : FaultInjector::parse("short-write:0:99")) {
    inj.add(s);
  }
  SnapshotInjectorGuard guard(inj);

  CampaignOptions opt;
  opt.checkpoint_path = path;
  opt.checkpoint_every = 4;
  opt.checkpoint_retries = 2;
  opt.checkpoint_backoff_ms = 1;
  CampaignRunner runner(c, u, t, opt);
  EXPECT_THROW((void)runner.run(), resil::CheckpointIoError);
}

}  // namespace
}  // namespace cfs
