// Macro extraction: structural invariants, functional equivalence of the
// extracted circuit, faulty-table construction.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/circuit_gen.h"
#include "gen/iscas_profiles.h"
#include "gen/known_circuits.h"
#include "netlist/macro_extract.h"
#include "sim/good_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace cfs {
namespace {

void check_equivalent(const Circuit& orig, const Circuit& ext,
                      std::uint64_t seed, int frames) {
  ASSERT_EQ(orig.inputs().size(), ext.inputs().size());
  ASSERT_EQ(orig.outputs().size(), ext.outputs().size());
  ASSERT_EQ(orig.dffs().size(), ext.dffs().size());
  GoodSim a(orig), b(ext);
  Rng rng(seed);
  for (int t = 0; t < frames; ++t) {
    std::vector<Val> v(orig.inputs().size());
    for (auto& x : v) {
      x = rng.chance(1, 8) ? Val::X
                           : (rng.chance(1, 2) ? Val::One : Val::Zero);
    }
    a.apply(v);
    b.apply(v);
    for (std::size_t i = 0; i < orig.outputs().size(); ++i) {
      ASSERT_EQ(a.output(static_cast<unsigned>(i)),
                b.output(static_cast<unsigned>(i)))
          << "PO " << i << " frame " << t;
    }
    a.clock();
    b.clock();
  }
}

TEST(Macro, ExtractionShrinksGateCount) {
  const Circuit c = make_s27();
  const MacroExtraction ext = extract_macros(c);
  EXPECT_LT(ext.circuit.num_gates(), c.num_gates());
  EXPECT_FALSE(ext.macros.empty());
}

TEST(Macro, MacroGatesHaveTables) {
  const Circuit c = make_s27();
  const MacroExtraction ext = extract_macros(c);
  for (const MacroInfo& m : ext.macros) {
    ASSERT_NE(m.macro_gate, kNoGate);
    EXPECT_EQ(ext.circuit.kind(m.macro_gate), GateKind::Macro);
    EXPECT_NE(ext.circuit.table_of(m.macro_gate), kNoGate);
    EXPECT_EQ(ext.circuit.num_fanins(m.macro_gate), m.ext_drivers.size());
    EXPECT_GE(m.internal.size(), 2u);
    EXPECT_EQ(m.internal.back(), m.root);  // root last in topo order
  }
}

TEST(Macro, InternalGatesHaveAllFanoutsInside) {
  const Circuit c = make_benchmark("s298");
  const MacroExtraction ext = extract_macros(c);
  for (const MacroInfo& m : ext.macros) {
    for (GateId g : m.internal) {
      if (g == m.root) continue;
      EXPECT_FALSE(c.is_po(g));
      for (const Fanout& fo : c.fanouts(g)) {
        EXPECT_NE(std::find(m.internal.begin(), m.internal.end(), fo.gate),
                  m.internal.end());
      }
    }
  }
}

TEST(Macro, EquivalentOnS27) {
  const Circuit c = make_s27();
  check_equivalent(c, extract_macros(c).circuit, 1, 40);
}

TEST(Macro, EquivalentOnC17) {
  const Circuit c = make_c17();
  check_equivalent(c, extract_macros(c).circuit, 2, 30);
}

TEST(Macro, EquivalentOnRandomCircuits) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    GenProfile p;
    p.name = "m" + std::to_string(seed);
    p.num_pis = 5;
    p.num_pos = 4;
    p.num_dffs = 6;
    p.num_gates = 120;
    p.seed = seed;
    const Circuit c = generate_circuit(p);
    check_equivalent(c, extract_macros(c).circuit, seed, 20);
  }
}

TEST(Macro, WiderInputCapAllowsBiggerMacros) {
  const Circuit c = make_benchmark("s298");
  MacroOptions narrow, wide;
  narrow.max_inputs = 2;
  wide.max_inputs = 6;
  const auto a = extract_macros(c, narrow);
  const auto b = extract_macros(c, wide);
  EXPECT_GE(a.circuit.num_gates(), b.circuit.num_gates());
  check_equivalent(c, b.circuit, 9, 15);
}

TEST(Macro, FaultyTableDiffersAtInjection) {
  const Circuit c = make_s27();
  const MacroExtraction ext = extract_macros(c);
  ASSERT_FALSE(ext.macros.empty());
  const MacroInfo& m = ext.macros.front();
  // Faulting the root's output to 1 must change at least one table entry
  // (unless the region is constant-1, which these regions are not).
  const TruthTable good = build_macro_table(c, m);
  const TruthTable bad =
      build_macro_table_faulty(c, m, m.root, kOutputPin, Val::One);
  EXPECT_NE(good.out, bad.out);
  // Every faulty entry is either the good value or the forced value.
  for (std::size_t i = 0; i < bad.out.size(); ++i) {
    EXPECT_EQ(from_code(bad.out[i]), Val::One);
  }
}

TEST(Macro, GateMapCoversAllGates) {
  const Circuit c = make_benchmark("s298");
  const MacroExtraction ext = extract_macros(c);
  for (GateId g = 0; g < c.num_gates(); ++g) {
    const bool internal_nonroot =
        ext.macro_of[g] != kNoGate && ext.macros[ext.macro_of[g]].root != g;
    if (internal_nonroot) {
      EXPECT_EQ(ext.gate_map[g], kNoGate);
    } else {
      ASSERT_NE(ext.gate_map[g], kNoGate);
      EXPECT_EQ(ext.circuit.gate_name(ext.gate_map[g]), c.gate_name(g));
    }
  }
}

TEST(Macro, RejectsBadOptions) {
  const Circuit c = make_c17();
  MacroOptions opt;
  opt.max_inputs = 1;
  EXPECT_THROW(extract_macros(c, opt), Error);
  opt.max_inputs = 7;
  EXPECT_THROW(extract_macros(c, opt), Error);
}

}  // namespace
}  // namespace cfs
