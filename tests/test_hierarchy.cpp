// Hierarchical composition: flattening instances must reproduce the flat
// design's behaviour, including nested and sequential modules.
#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "netlist/hierarchy.h"
#include "sim/good_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace cfs {
namespace {

// 4-bit ripple adder assembled from full_adder modules.
Circuit hierarchical_adder4() {
  const Circuit fa = make_full_adder();
  Builder b("hrca4");
  for (int i = 0; i < 4; ++i) b.add_input("a" + std::to_string(i));
  for (int i = 0; i < 4; ++i) b.add_input("b" + std::to_string(i));
  b.add_input("cin");
  std::string carry = "cin";
  for (int i = 0; i < 4; ++i) {
    const auto outs = instantiate(
        b, fa, "fa" + std::to_string(i),
        {"a" + std::to_string(i), "b" + std::to_string(i), carry});
    // fa outputs: sum, cout.
    b.mark_output(outs[0]);
    carry = outs[1];
  }
  b.add_gate(GateKind::Buf, "cout", {carry});
  b.mark_output("cout");
  return b.build();
}

TEST(Hierarchy, AdderFromModulesMatchesFlatAdder) {
  const Circuit hier = hierarchical_adder4();
  const Circuit flat = make_ripple_adder(4);
  ASSERT_EQ(hier.inputs().size(), flat.inputs().size());
  ASSERT_EQ(hier.outputs().size(), flat.outputs().size());
  GoodSim hs(hier), fs(flat);
  Rng rng(33);
  for (int t = 0; t < 100; ++t) {
    std::vector<Val> in(9);
    for (auto& x : in) {
      x = rng.chance(1, 10) ? Val::X
                            : (rng.chance(1, 2) ? Val::One : Val::Zero);
    }
    hs.apply(in);
    fs.apply(in);
    for (unsigned k = 0; k < 5; ++k) {
      ASSERT_EQ(hs.output(k), fs.output(k)) << "trial " << t;
    }
  }
}

TEST(Hierarchy, NestedInstancesFlatten) {
  // 2-bit adder module built from FA instances, then two of those stacked.
  const Circuit fa = make_full_adder();
  Builder m2("add2");
  m2.add_input("a0");
  m2.add_input("a1");
  m2.add_input("b0");
  m2.add_input("b1");
  m2.add_input("ci");
  const auto lo = instantiate(m2, fa, "lo", {"a0", "b0", "ci"});
  const auto hi = instantiate(m2, fa, "hi", {"a1", "b1", lo[1]});
  m2.mark_output(lo[0]);
  m2.mark_output(hi[0]);
  m2.mark_output(hi[1]);
  const Circuit add2 = m2.build();

  Builder top("add4n");
  for (const char* n : {"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}) {
    top.add_input(n);
  }
  top.add_input("cin");
  const auto low = instantiate(top, add2, "L", {"a0", "a1", "b0", "b1", "cin"});
  const auto high =
      instantiate(top, add2, "H", {"a2", "a3", "b2", "b3", low[2]});
  for (const auto& s : {low[0], low[1], high[0], high[1], high[2]}) {
    top.mark_output(s);
  }
  const Circuit c = top.build();

  // Exhaustive 4-bit + 4-bit + carry check.
  GoodSim sim(c);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      std::vector<Val> in;
      for (int i = 0; i < 4; ++i) {
        in.push_back((a >> i) & 1 ? Val::One : Val::Zero);
      }
      for (int i = 0; i < 4; ++i) {
        in.push_back((b >> i) & 1 ? Val::One : Val::Zero);
      }
      in.push_back(Val::Zero);
      sim.apply(in);
      int got = 0;
      for (int i = 0; i < 5; ++i) {
        if (sim.output(i) == Val::One) got |= 1 << i;
      }
      ASSERT_EQ(got, a + b);
    }
  }
}

TEST(Hierarchy, SequentialModulesCarryTheirState) {
  // Two 2-bit counters cascaded: the second counts when the first wraps
  // (enable = q0 AND q1 of the first).
  const Circuit ctr = make_counter(2);
  Builder b("ctr4");
  b.add_input("en");
  const auto lo = instantiate(b, ctr, "lo", {"en"});
  b.add_gate(GateKind::And, "wrap", {lo[0], lo[1]});
  b.add_gate(GateKind::And, "hi_en", {"en", "wrap"});
  const auto hi = instantiate(b, ctr, "hi", {"hi_en"});
  for (const auto& s : {lo[0], lo[1], hi[0], hi[1]}) b.mark_output(s);
  const Circuit c = b.build();
  EXPECT_EQ(c.dffs().size(), 4u);

  GoodSim sim(c, Val::Zero);
  std::vector<Val> en = {Val::One};
  for (int step = 1; step <= 12; ++step) {
    sim.apply(en);
    sim.clock();
    sim.apply(en);
    int got = 0;
    for (int i = 0; i < 4; ++i) {
      if (sim.output(i) == Val::One) got |= 1 << i;
    }
    EXPECT_EQ(got, step % 16) << "step " << step;
  }
}

TEST(Hierarchy, InstanceNamesAreQualified) {
  const Circuit fa = make_full_adder();
  Builder b("q");
  b.add_input("x");
  b.add_input("y");
  b.add_input("z");
  const auto outs = instantiate(b, fa, "u1", {"x", "y", "z"});
  b.mark_output(outs[0]);
  const Circuit c = b.build();
  EXPECT_NE(c.find("u1/sum"), kNoGate);
  EXPECT_NE(c.find("u1/cout"), kNoGate);
  EXPECT_EQ(c.find("sum"), kNoGate);
  EXPECT_EQ(outs[0], "u1/sum");
}

TEST(Hierarchy, WrongArityThrows) {
  const Circuit fa = make_full_adder();
  Builder b("bad");
  b.add_input("x");
  EXPECT_THROW(instantiate(b, fa, "u", {"x"}), Error);
}

TEST(Hierarchy, DuplicateInstanceNameThrowsAtBuild) {
  const Circuit fa = make_full_adder();
  Builder b("dup");
  b.add_input("x");
  b.add_input("y");
  b.add_input("z");
  instantiate(b, fa, "u", {"x", "y", "z"});
  instantiate(b, fa, "u", {"x", "y", "z"});  // same prefix: name clash
  EXPECT_THROW(b.build(), Error);
}

}  // namespace
}  // namespace cfs
