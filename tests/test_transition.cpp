// Transition-fault engine: the paper's Figure 4 walk-through and targeted
// behavioural checks.
#include <gtest/gtest.h>

#include "baseline/serial_sim.h"
#include "core/concurrent_sim.h"
#include "gen/known_circuits.h"
#include "netlist/builder.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

std::vector<Val> bits(std::initializer_list<int> v) {
  std::vector<Val> out;
  for (int b : v) out.push_back(b ? Val::One : Val::Zero);
  return out;
}

// A single AND gate observed directly: in = delayed pin, en = side pin.
//   y = AND(in, en), y is the PO.
Circuit gate_probe() {
  Builder b("probe");
  b.add_input("in");
  b.add_input("en");
  b.add_gate(GateKind::And, "y", {"in", "en"});
  b.mark_output("y");
  return b.build();
}

TEST(Transition, SlowToRiseHoldsPreviousValueAtSample) {
  const Circuit c = gate_probe();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("y"), 0, Val::One});  // in slow-to-rise
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  // Frame 1: in=0, en=1 -> y good 0, faulty 0 (no transition yet).
  sim.apply_vector(bits({0, 1}));
  EXPECT_EQ(sim.status()[0], Detect::None);
  // Frame 2: in rises 0->1 -> good y = 1, faulty pin held at 0 -> y = 0.
  sim.apply_vector(bits({1, 1}));
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

TEST(Transition, SlowToRiseInvisibleWithoutTransition) {
  const Circuit c = gate_probe();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("y"), 0, Val::One});
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  // Constant 1 on `in` after an initial 1: no 0->1 transition ever fires
  // after the X->1 initialisation frame, whose hold gives X (potential at
  // most), never a hard detect.
  for (int i = 0; i < 4; ++i) sim.apply_vector(bits({1, 1}));
  EXPECT_NE(sim.status()[0], Detect::Hard);
}

TEST(Transition, FiredTransitionSettlesBeforeNextFrame) {
  const Circuit c = gate_probe();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("y"), 0, Val::One});
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  sim.apply_vector(bits({0, 1}));
  sim.apply_vector(bits({1, 1}));  // detected here (held)
  ASSERT_EQ(sim.status()[0], Detect::Hard);
  // After firing, the faulty machine matches good again: applying the same
  // vector produces no further divergence anywhere (fault is dropped, but
  // check the machine stays consistent by running more frames).
  for (int i = 0; i < 3; ++i) sim.apply_vector(bits({1, 1}));
  EXPECT_EQ(sim.good_value(c.find("y")), Val::One);
}

TEST(Transition, SlowToFallMirrorsSlowToRise) {
  const Circuit c = gate_probe();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("y"), 0, Val::Zero});  // slow-to-fall
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  sim.apply_vector(bits({1, 1}));  // establish 1
  EXPECT_EQ(sim.status()[0], Detect::None);
  sim.apply_vector(bits({0, 1}));  // falling edge held at 1: good 0 faulty 1
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

TEST(Transition, SidePinBlocksDetection) {
  const Circuit c = gate_probe();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("y"), 0, Val::One});
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  sim.apply_vector(bits({0, 0}));
  // in rises but en=0 masks the gate: no detection.
  sim.apply_vector(bits({1, 0}));
  EXPECT_EQ(sim.status()[0], Detect::None);
}

TEST(Transition, PaperFigure4RisingScenario) {
  // Paper §3, Figure 4: G1 = AND(in1, in2') where in2 comes via logic from
  // a flip-flop; a 0->1 transition fault at input 1 of G1 is detected by
  // the sequence 01 on the primary input.  We model the essence: the
  // flip-flop path sets the side input, and the 0->1 edge on in1 is held.
  Builder b("fig4");
  b.add_input("in1");
  b.add_dff("ff", "in1_buf");
  b.add_gate(GateKind::Buf, "in1_buf", {"in1"});
  b.add_gate(GateKind::Not, "nff", {"ff"});
  b.add_gate(GateKind::And, "g1", {"in1", "nff"});
  b.mark_output("g1");
  const Circuit c = b.build();
  FaultUniverse u;
  u.add({FaultType::Transition, c.find("g1"), 0, Val::One});
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  // Apply 0 then 1 (the "01" sequence of the paper's example).
  sim.apply_vector(bits({0}));
  EXPECT_EQ(sim.status()[0], Detect::None);
  sim.apply_vector(bits({1}));
  // good: in1=1, ff holds previous 0 -> nff=1 -> g1=1.
  // faulty: in1 held at 0 -> g1=0.  Hard detection.
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

TEST(Transition, DffDPinTransitionDelaysLatching) {
  // Shift register stage: a slow-to-rise D pin latches the previous value.
  const Circuit c = make_shift_register(2);
  FaultUniverse u;
  u.add({FaultType::Transition, c.dffs()[0], 0, Val::One});
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  sim.apply_vector(bits({0}));  // D=0 everywhere
  sim.apply_vector(bits({1}));  // D rises; faulty machine latches old 0
  // Observe at q1 after one more shift.  PO 0 is q1.
  sim.apply_vector(bits({1}));
  sim.apply_vector(bits({1}));
  EXPECT_EQ(sim.status()[0], Detect::Hard);
}

TEST(Transition, StuckAtTestsGiveLowerTransitionCoverage) {
  // The paper's Table 6 observation: stuck-at tests are poor transition
  // tests.  Compare coverages on s27 with the same vectors.
  const Circuit c = make_s27();
  const PatternSet p = PatternSet::random(4, 200, 77);
  const FaultUniverse su = FaultUniverse::all_stuck_at(c);
  const FaultUniverse tu = FaultUniverse::all_transition(c);
  ConcurrentSim ssim(c, su);
  ConcurrentSim tsim(c, tu);
  ssim.reset(Val::Zero);
  tsim.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ssim.apply_vector(p[i]);
    tsim.apply_vector(p[i]);
  }
  EXPECT_LT(tsim.coverage().pct(), ssim.coverage().pct());
}

TEST(Transition, SerialAndConcurrentAgreeOnS27) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p = PatternSet::random(4, 80, 31);
  ConcurrentSim sim(c, u);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const SerialResult sr = serial_transition_sim(c, u, p.vectors());
  EXPECT_EQ(sim.status(), sr.status);
}

}  // namespace
}  // namespace cfs
