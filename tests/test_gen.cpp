// Synthetic circuit generator and ISCAS-89 profile factory.
#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "gen/iscas_profiles.h"
#include "gen/known_circuits.h"
#include "netlist/bench_writer.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(Gen, MatchesProfileCountsExactly) {
  GenProfile p;
  p.name = "t";
  p.num_pis = 7;
  p.num_pos = 5;
  p.num_dffs = 9;
  p.num_gates = 120;
  p.seed = 3;
  const Circuit c = generate_circuit(p);
  EXPECT_EQ(c.inputs().size(), 7u);
  EXPECT_EQ(c.outputs().size(), 5u);
  EXPECT_EQ(c.dffs().size(), 9u);
  EXPECT_EQ(c.topo_order().size(), 120u);
}

TEST(Gen, DeterministicForSeed) {
  GenProfile p;
  p.name = "t";
  p.num_gates = 60;
  p.seed = 11;
  const Circuit a = generate_circuit(p);
  const Circuit b = generate_circuit(p);
  EXPECT_EQ(write_bench(a), write_bench(b));
}

TEST(Gen, DifferentSeedsDiffer) {
  GenProfile p;
  p.name = "t";
  p.num_gates = 60;
  p.seed = 1;
  const Circuit a = generate_circuit(p);
  p.seed = 2;
  const Circuit b = generate_circuit(p);
  EXPECT_NE(write_bench(a), write_bench(b));
}

TEST(Gen, ProducesMultipleLevels) {
  GenProfile p;
  p.name = "t";
  p.num_gates = 300;
  p.seed = 5;
  const Circuit c = generate_circuit(p);
  EXPECT_GE(c.num_levels(), 5u);
}

TEST(Profiles, TableCoversPaperCircuits) {
  for (const char* name :
       {"s27", "s298", "s386", "s1494", "s5378", "s35932"}) {
    EXPECT_NO_THROW(iscas89_profile(name)) << name;
  }
  EXPECT_THROW(iscas89_profile("s9999"), Error);
}

TEST(Profiles, MakeBenchmarkMatchesPublishedCounts) {
  for (const char* name : {"s298", "s386", "s832"}) {
    const IscasProfile& p = iscas89_profile(name);
    const Circuit c = make_benchmark(name);
    EXPECT_EQ(c.inputs().size(), p.num_pis) << name;
    EXPECT_EQ(c.outputs().size(), p.num_pos) << name;
    EXPECT_EQ(c.dffs().size(), p.num_dffs) << name;
    EXPECT_EQ(c.topo_order().size(), p.num_gates) << name;
  }
}

TEST(Profiles, S27IsTheRealNetlist) {
  const Circuit c = make_benchmark("s27");
  EXPECT_NE(c.find("G17"), kNoGate);
  EXPECT_EQ(c.kind(c.find("G11")), GateKind::Nor);
}

TEST(KnownCircuits, CounterCounts) {
  const Circuit c = make_counter(4);
  EXPECT_EQ(c.dffs().size(), 4u);
  EXPECT_EQ(c.inputs().size(), 1u);
  EXPECT_EQ(c.outputs().size(), 4u);
}

TEST(KnownCircuits, ShiftRegisterShape) {
  const Circuit c = make_shift_register(5);
  EXPECT_EQ(c.dffs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);  // q4 + parity
}

TEST(KnownCircuits, FullAdderShape) {
  const Circuit c = make_full_adder();
  EXPECT_EQ(c.inputs().size(), 3u);
  EXPECT_EQ(c.outputs().size(), 2u);
  EXPECT_TRUE(c.dffs().empty());
}

}  // namespace
}  // namespace cfs
