// Structural invariants of the concurrent engine, checked after every
// vector with the deep validator, plus canonical-number anchors.
#include <gtest/gtest.h>

#include <set>

#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

struct Config {
  std::uint64_t seed;
  bool split;
  bool macro;
  bool drop;
  Val init;
};

class CsimInvariants : public ::testing::TestWithParam<Config> {};

TEST_P(CsimInvariants, HoldAfterEveryVector) {
  const Config cfg = GetParam();
  GenProfile gp;
  gp.name = "inv" + std::to_string(cfg.seed);
  gp.num_pis = 5;
  gp.num_pos = 4;
  gp.num_dffs = 8;
  gp.num_gates = 120;
  gp.seed = cfg.seed;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p =
      PatternSet::random(5, 40, cfg.seed * 3 + 1, /*x_permille=*/100);

  CsimOptions opt;
  opt.split_lists = cfg.split;
  opt.drop_detected = cfg.drop;

  if (cfg.macro) {
    const MacroExtraction ext = extract_macros(c);
    const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
    ConcurrentSim sim(ext.circuit, u, opt, &mm);
    sim.reset(cfg.init);
    sim.validate();
    for (std::size_t i = 0; i < p.size(); ++i) {
      sim.apply_vector(p[i]);
      ASSERT_NO_THROW(sim.validate()) << "vector " << i;
    }
  } else {
    ConcurrentSim sim(c, u, opt);
    sim.reset(cfg.init);
    sim.validate();
    for (std::size_t i = 0; i < p.size(); ++i) {
      sim.apply_vector(p[i]);
      ASSERT_NO_THROW(sim.validate()) << "vector " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CsimInvariants,
    ::testing::Values(Config{601, true, false, true, Val::X},
                      Config{602, false, false, true, Val::X},
                      Config{603, true, true, true, Val::Zero},
                      Config{604, false, true, false, Val::X},
                      Config{605, true, false, false, Val::Zero},
                      Config{606, true, true, true, Val::X}));

TEST(CanonicalNumbers, S27CollapsesTo32Classes) {
  // The classic collapsed stuck-at fault count for s27 is 32.
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto rep = collapse_equivalent(c, u);
  std::set<std::uint32_t> classes(rep.begin(), rep.end());
  EXPECT_EQ(classes.size(), 32u);
}

TEST(CanonicalNumbers, C17UniverseAndFullCoverage) {
  // c17: 6 NAND gates + 5 PIs = 22 output faults; branch pins: gates 3, 6,
  // 11, 16 have multi-fanout drivers.  Exhaustive patterns detect every
  // non-redundant fault; c17 famously has none redundant (all 100%
  // detectable).
  const Circuit c = make_c17();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  for (int v = 0; v < 32; ++v) {
    std::vector<Val> in;
    for (int b = 0; b < 5; ++b) {
      in.push_back((v >> b) & 1 ? Val::One : Val::Zero);
    }
    sim.apply_vector(in);
  }
  EXPECT_EQ(sim.coverage().hard, u.size());
}

TEST(CanonicalNumbers, S27FullCoverageWithRandomVectors) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  const PatternSet p = PatternSet::random(4, 400, 3);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  // All 52 enumerated faults of s27 are detectable (no redundancies).
  EXPECT_EQ(sim.coverage().hard, u.size());
}

}  // namespace
}  // namespace cfs
