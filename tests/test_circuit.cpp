// Netlist builder / circuit invariants: arity checks, name resolution,
// levelization, fanout construction, wide-gate decomposition, gate
// evaluation paths.
#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/circuit.h"
#include "util/error.h"

namespace cfs {
namespace {

Circuit small() {
  Builder b("small");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateKind::And, "n1", {"a", "b"});
  b.add_gate(GateKind::Not, "n2", {"n1"});
  b.add_dff("q", "n2");
  b.add_gate(GateKind::Or, "n3", {"q", "a"});
  b.mark_output("n3");
  return b.build();
}

TEST(Circuit, BasicShape) {
  const Circuit c = small();
  EXPECT_EQ(c.num_gates(), 6u);
  EXPECT_EQ(c.inputs().size(), 2u);
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_EQ(c.dffs().size(), 1u);
  EXPECT_EQ(c.topo_order().size(), 3u);  // n1, n2, n3
}

TEST(Circuit, LevelsAscendFromSources) {
  const Circuit c = small();
  const GateId a = c.find("a"), n1 = c.find("n1"), n2 = c.find("n2"),
               q = c.find("q"), n3 = c.find("n3");
  EXPECT_EQ(c.level(a), 0u);
  EXPECT_EQ(c.level(q), 0u);
  EXPECT_EQ(c.level(n1), 1u);
  EXPECT_EQ(c.level(n2), 2u);
  EXPECT_EQ(c.level(n3), 1u);
}

TEST(Circuit, TopoOrderRespectsLevels) {
  const Circuit c = small();
  unsigned prev = 0;
  for (GateId g : c.topo_order()) {
    EXPECT_GE(c.level(g), prev);
    prev = c.level(g);
  }
}

TEST(Circuit, FanoutsMatchFanins) {
  const Circuit c = small();
  const GateId a = c.find("a");
  // a feeds n1 pin 0 and n3 pin 1.
  ASSERT_EQ(c.num_fanouts(a), 2u);
  for (const Fanout& fo : c.fanouts(a)) {
    EXPECT_EQ(c.fanins(fo.gate)[fo.pin], a);
  }
}

TEST(Circuit, FindUnknownReturnsNoGate) {
  const Circuit c = small();
  EXPECT_EQ(c.find("zzz"), kNoGate);
}

TEST(Circuit, DuplicateDefinitionThrows) {
  Builder b("dup");
  b.add_input("a");
  b.add_gate(GateKind::Buf, "a", {"a"});
  EXPECT_THROW(b.build(), Error);
}

TEST(Circuit, UndefinedSignalThrows) {
  Builder b("undef");
  b.add_input("a");
  b.add_gate(GateKind::And, "n", {"a", "ghost"});
  EXPECT_THROW(b.build(), Error);
}

TEST(Circuit, UndefinedOutputThrows) {
  Builder b("po");
  b.add_input("a");
  b.mark_output("ghost");
  EXPECT_THROW(b.build(), Error);
}

TEST(Circuit, CombinationalCycleThrows) {
  Builder b("cyc");
  b.add_input("a");
  b.add_gate(GateKind::And, "x", {"a", "y"});
  b.add_gate(GateKind::And, "y", {"a", "x"});
  EXPECT_THROW(b.build(), Error);
}

TEST(Circuit, SequentialLoopIsFine) {
  Builder b("seqloop");
  b.add_input("a");
  b.add_gate(GateKind::Xor, "d", {"a", "q"});
  b.add_dff("q", "d");
  b.mark_output("d");
  EXPECT_NO_THROW(b.build());
}

TEST(Circuit, NotWithTwoInputsThrows) {
  Builder b("arity");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateKind::Not, "n", {"a", "c"});
  EXPECT_THROW(b.build(), Error);
}

TEST(Circuit, WideGateDecomposes) {
  Builder b("wide");
  std::vector<std::string> ins;
  for (int i = 0; i < 40; ++i) {
    ins.push_back("i" + std::to_string(i));
    b.add_input(ins.back());
  }
  b.add_gate(GateKind::Nand, "w", ins);
  b.mark_output("w");
  const Circuit c = b.build();
  // The root survives under its own name with <= kMaxPins fanins.
  const GateId w = c.find("w");
  ASSERT_NE(w, kNoGate);
  EXPECT_LE(c.num_fanins(w), kMaxPins);
  EXPECT_EQ(c.kind(w), GateKind::Nand);
  // Synthesized internal nodes exist and are plain ANDs.
  EXPECT_GT(c.num_gates(), 41u);
}

TEST(Circuit, EvalFoldAndFastTableAgree) {
  // 3-input NAND evaluated through both paths must agree on all 27 combos.
  Builder b("nand3");
  b.add_input("a");
  b.add_input("c");
  b.add_input("d");
  b.add_gate(GateKind::Nand, "n", {"a", "c", "d"});
  b.mark_output("n");
  const Circuit c = b.build();
  const GateId n = c.find("n");
  const Val all[] = {Val::Zero, Val::One, Val::X};
  for (Val x : all) {
    for (Val y : all) {
      for (Val z : all) {
        GateState s = 0;
        s = state_set(s, 0, x);
        s = state_set(s, 1, y);
        s = state_set(s, 2, z);
        EXPECT_EQ(c.eval(n, s), eval_kind(GateKind::Nand, s, 3));
      }
    }
  }
}

TEST(Circuit, StatsReportShape) {
  const Circuit c = small();
  const auto st = c.stats();
  EXPECT_EQ(st.num_pis, 2u);
  EXPECT_EQ(st.num_pos, 1u);
  EXPECT_EQ(st.num_dffs, 1u);
  EXPECT_EQ(st.num_comb_gates, 3u);
  EXPECT_GE(st.max_fanout, 2u);
}

TEST(Circuit, BytesNonZero) { EXPECT_GT(small().bytes(), 0u); }

TEST(GateKindNames, RoundTrip) {
  EXPECT_EQ(kind_from_name("nand"), GateKind::Nand);
  EXPECT_EQ(kind_from_name("BUFF"), GateKind::Buf);
  EXPECT_EQ(kind_from_name("inv"), GateKind::Not);
  EXPECT_THROW(kind_from_name("bogus"), Error);
  EXPECT_EQ(kind_name(GateKind::Xnor), "XNOR");
}

TEST(GateEval, AllKindsOnBinary) {
  GateState s = 0;
  s = state_set(s, 0, Val::One);
  s = state_set(s, 1, Val::Zero);
  EXPECT_EQ(eval_kind(GateKind::And, s, 2), Val::Zero);
  EXPECT_EQ(eval_kind(GateKind::Nand, s, 2), Val::One);
  EXPECT_EQ(eval_kind(GateKind::Or, s, 2), Val::One);
  EXPECT_EQ(eval_kind(GateKind::Nor, s, 2), Val::Zero);
  EXPECT_EQ(eval_kind(GateKind::Xor, s, 2), Val::One);
  EXPECT_EQ(eval_kind(GateKind::Xnor, s, 2), Val::Zero);
  EXPECT_EQ(eval_kind(GateKind::Buf, s, 1), Val::One);
  EXPECT_EQ(eval_kind(GateKind::Not, s, 1), Val::Zero);
}

}  // namespace
}  // namespace cfs
