// The library's central property: under the shared three-valued semantics,
// every engine computes the *identical* per-fault detection status.  This
// sweeps random circuits x seeds x engine variants against the serial
// ground truth, including from the all-X initial state.
#include <gtest/gtest.h>

#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"
#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/circuit_gen.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

struct Scenario {
  std::uint64_t circuit_seed;
  unsigned pis, pos, dffs, gates;
  unsigned vectors;
  unsigned x_permille;  // X density in the input patterns
  Val ff_init;
};

class EngineEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(EngineEquivalence, AllEnginesMatchSerial) {
  const Scenario s = GetParam();
  GenProfile gp;
  gp.name = "prop" + std::to_string(s.circuit_seed);
  gp.num_pis = s.pis;
  gp.num_pos = s.pos;
  gp.num_dffs = s.dffs;
  gp.num_gates = s.gates;
  gp.seed = s.circuit_seed;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p =
      PatternSet::random(c.inputs().size(), s.vectors,
                         s.circuit_seed * 31 + 7, s.x_permille);

  SerialOptions so;
  so.ff_init = s.ff_init;
  const SerialResult ground = serial_fault_sim(c, u, p.vectors(), so);

  // csim plain / V / M / MV.
  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  struct Variant {
    const char* name;
    bool split;
    bool macro;
  };
  for (const Variant v : {Variant{"csim", false, false},
                          Variant{"csim-V", true, false},
                          Variant{"csim-M", false, true},
                          Variant{"csim-MV", true, true}}) {
    CsimOptions opt;
    opt.split_lists = v.split;
    ConcurrentSim sim(v.macro ? ext.circuit : c, u, opt,
                      v.macro ? &mm : nullptr);
    sim.reset(s.ff_init);
    for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
    ASSERT_EQ(sim.status(), ground.status) << v.name;
  }

  // PROOFS-style baseline.
  ProofsSim proofs(c, u, s.ff_init);
  for (std::size_t i = 0; i < p.size(); ++i) proofs.apply_vector(p[i]);
  ASSERT_EQ(proofs.status(), ground.status) << "PROOFS";
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, EngineEquivalence,
    ::testing::Values(
        // Fully binary, reset state: exact arithmetic everywhere.
        Scenario{101, 4, 3, 5, 60, 40, 0, Val::Zero},
        Scenario{102, 6, 4, 8, 120, 30, 0, Val::Zero},
        Scenario{103, 3, 2, 12, 90, 50, 0, Val::Zero},
        // All-X initial state (the hard case for X-convergence).
        Scenario{104, 4, 3, 5, 60, 40, 0, Val::X},
        Scenario{105, 6, 4, 8, 120, 30, 0, Val::X},
        Scenario{106, 5, 5, 10, 150, 30, 0, Val::X},
        // X values in the patterns themselves.
        Scenario{107, 4, 3, 6, 80, 40, 150, Val::X},
        Scenario{108, 6, 4, 10, 140, 30, 100, Val::Zero},
        // Wider / deeper circuits.
        Scenario{109, 8, 6, 16, 300, 25, 50, Val::X},
        Scenario{110, 10, 8, 24, 400, 20, 0, Val::Zero},
        // Tiny degenerate circuits.
        Scenario{111, 2, 1, 1, 8, 30, 100, Val::X},
        Scenario{112, 1, 1, 2, 5, 30, 0, Val::Zero}));

// Transition engines: concurrent vs serial two-pass reference.
class TransitionEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(TransitionEquivalence, ConcurrentMatchesSerial) {
  const Scenario s = GetParam();
  GenProfile gp;
  gp.name = "tprop" + std::to_string(s.circuit_seed);
  gp.num_pis = s.pis;
  gp.num_pos = s.pos;
  gp.num_dffs = s.dffs;
  gp.num_gates = s.gates;
  gp.seed = s.circuit_seed;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p =
      PatternSet::random(c.inputs().size(), s.vectors,
                         s.circuit_seed * 17 + 3, s.x_permille);

  SerialOptions so;
  so.ff_init = s.ff_init;
  const SerialResult ground = serial_transition_sim(c, u, p.vectors(), so);

  for (bool split : {false, true}) {
    CsimOptions opt;
    opt.split_lists = split;
    ConcurrentSim sim(c, u, opt);
    sim.reset(s.ff_init);
    for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
    ASSERT_EQ(sim.status(), ground.status) << "split=" << split;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, TransitionEquivalence,
    ::testing::Values(Scenario{201, 4, 3, 5, 50, 40, 0, Val::Zero},
                      Scenario{202, 5, 4, 8, 100, 30, 0, Val::Zero},
                      Scenario{203, 4, 3, 6, 60, 40, 0, Val::X},
                      Scenario{204, 6, 4, 10, 120, 25, 100, Val::X},
                      Scenario{205, 3, 2, 4, 40, 50, 0, Val::X}));

}  // namespace
}  // namespace cfs
