// Dynamic shard rebalancing: weighted LPT partitioning determinism, the
// partition-invariance of live-element weights, bit-identical results
// across threads x batch x rebalance policy (status, detection order,
// deterministic counters, campaign digest), checkpoint/resume composition,
// and the rebalance telemetry (SimStats, timeline samples).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/concurrent_sim.h"
#include "faults/partition.h"
#include "gen/iscas_profiles.h"
#include "patterns/pattern.h"
#include "obs/timeline.h"
#include "resil/campaign.h"
#include "sim/sharded_sim.h"
#include "util/error.h"

namespace cfs {
namespace {

using resil::CampaignOptions;
using resil::CampaignResult;
using resil::CampaignRunner;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

RebalancePolicy every_n(std::uint64_t n) {
  RebalancePolicy rp;
  rp.mode = RebalancePolicy::Mode::Every;
  rp.every = n;
  return rp;
}

RebalancePolicy auto_policy(double threshold, std::uint64_t cooldown) {
  RebalancePolicy rp;
  rp.mode = RebalancePolicy::Mode::Auto;
  rp.threshold = threshold;
  rp.cooldown = cooldown;
  return rp;
}

// ---------------------------------------------------------------------------
// FaultPartition weighted mode
// ---------------------------------------------------------------------------

TEST(WeightedPartition, LptPackingIsDeterministicAndPinned) {
  FaultPartition p(6, 2);
  const std::vector<std::uint64_t> w = {10, 30, 20, 20, 5, 15};
  // LPT places heaviest-first (ties: lower id), each onto the least-loaded
  // shard (ties: lowest index).  Hand-packed expectation:
  //   id1(30)->s0  id2(20)->s1  id3(20)->s1  id5(15)->s0
  //   id0(10)->s1  id4(5)->s0        loads: s0 = s1 = 50.
  const std::size_t moved = p.partition_by_weight(w);
  EXPECT_TRUE(p.weighted());
  const std::vector<std::uint32_t> want_s0 = {1, 4, 5};
  const std::vector<std::uint32_t> want_s1 = {0, 2, 3};
  EXPECT_EQ(p.shard(0), want_s0);
  EXPECT_EQ(p.shard(1), want_s1);
  // Round-robin owners were {0,1,0,1,0,1}; ids 0, 1, 2, 5 changed.
  EXPECT_EQ(moved, 4u);
  // Repacking the same weights is a fixed point: nothing moves.
  EXPECT_EQ(p.partition_by_weight(w), 0u);
  EXPECT_EQ(p.shard(0), want_s0);
  EXPECT_EQ(p.shard(1), want_s1);
}

TEST(WeightedPartition, CoverStaysDisjointSortedAndSized) {
  const std::size_t nf = 257;
  FaultPartition p(nf, 4);
  std::vector<std::uint64_t> w(nf);
  for (std::size_t i = 0; i < nf; ++i) w[i] = (i * 37) % 19;
  p.partition_by_weight(w);
  std::vector<unsigned> seen(nf, 0);
  std::size_t total = 0;
  for (unsigned s = 0; s < p.num_shards(); ++s) {
    EXPECT_EQ(p.shard_size(s), p.shard(s).size());
    total += p.shard_size(s);
    std::uint32_t prev = 0;
    bool first = true;
    for (std::uint32_t id : p.shard(s)) {
      EXPECT_EQ(p.shard_of(id), s);
      if (!first) {
        EXPECT_LT(prev, id);  // ascending => sorted, unique
      }
      prev = id;
      first = false;
      ++seen[id];
    }
  }
  EXPECT_EQ(total, nf);
  for (std::size_t i = 0; i < nf; ++i) EXPECT_EQ(seen[i], 1u) << "fault " << i;
}

TEST(WeightedPartition, BalancesLoadsWithinLptBound) {
  const std::size_t nf = 400;
  FaultPartition p(nf, 4);
  std::vector<std::uint64_t> w(nf);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    w[i] = 1 + (i * 7919) % 97;
    sum += w[i];
  }
  p.partition_by_weight(w);
  std::uint64_t heaviest = 0;
  for (unsigned s = 0; s < 4; ++s) {
    std::uint64_t load = 0;
    for (std::uint32_t id : p.shard(s)) load += w[id];
    heaviest = std::max(heaviest, load);
  }
  // Greedy LPT is within 4/3 of the optimum, and the optimum is at least
  // the balanced share.
  EXPECT_LE(3 * heaviest, sum);  // heaviest <= (4/3) * (sum/4)
}

TEST(WeightedPartition, MergeReadsOwnerShardAfterRepartition) {
  FaultPartition p(6, 2);
  ASSERT_EQ(p.partition_by_weight({10, 30, 20, 20, 5, 15}), 4u);
  // Owner shard says Hard; the foreign shard disagrees on every fault.
  std::vector<Detect> a(6, Detect::None), b(6, Detect::None);
  for (std::uint32_t id = 0; id < 6; ++id) {
    (p.shard_of(id) == 0 ? a : b)[id] = Detect::Hard;
  }
  const std::vector<Detect> m = p.merge({&a, &b});
  for (std::uint32_t id = 0; id < 6; ++id) {
    EXPECT_EQ(m[id], Detect::Hard) << "fault " << id;
  }
}

TEST(WeightedPartition, RejectsWrongWeightCount) {
  FaultPartition p(8, 2);
  EXPECT_THROW(p.partition_by_weight(std::vector<std::uint64_t>(7, 1)),
               Error);
}

// ---------------------------------------------------------------------------
// Live-element weights and the in-run repartition
// ---------------------------------------------------------------------------

TEST(LiveWeights, AccumulationIsPartitionInvariant) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 24, 3);

  ShardedOptions one;
  one.num_threads = 1;
  ShardedSim single(c, u, one);
  ShardedOptions four;
  four.num_threads = 4;
  ShardedSim quad(c, u, four);
  for (std::size_t i = 0; i < p.size(); ++i) {
    single.apply_vector(p[i]);
    quad.apply_vector(p[i]);
  }
  std::vector<std::uint64_t> w1(u.size(), 0), w4(u.size(), 0);
  single.engine(0).accumulate_live_weights(w1);
  for (unsigned s = 0; s < quad.num_shards(); ++s) {
    quad.engine(s).accumulate_live_weights(w4);
  }
  // A fault's live-element count is a pure function of the good machine
  // and its own divergences -- which shard simulates it is irrelevant.
  EXPECT_EQ(w1, w4);
}

TEST(Rebalance, ExplicitRepartitionKeepsEnginesValidAndBitIdentical) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 48, 5);

  ShardedOptions ref_opt;
  ref_opt.num_threads = 4;
  ShardedSim ref(c, u, ref_opt);
  ShardedSim sim(c, u, ref_opt);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ref.apply_vector(p[i]);
    sim.apply_vector(p[i]);
    if (i == 15 || i == 31) {
      const std::size_t moved = sim.rebalance_now();
      EXPECT_GT(moved, 0u) << "vector " << i;
      // shard_size hints fed Pool::reserve for the new slices; the
      // repartitioned engines must still pass the deep structural check
      // once the next vector settles them.
      sim.apply_vector(p[++i]);
      ref.apply_vector(p[i]);
      for (unsigned s = 0; s < sim.num_shards(); ++s) {
        sim.engine(s).validate();
      }
    }
  }
  EXPECT_EQ(sim.status(), ref.status());
  EXPECT_EQ(sim.rebalances(), 2u);
  EXPECT_GT(sim.faults_migrated(), 0u);
  // The repartition just balanced live elements; the ratio right after it
  // must not exceed the static partition's by more than rounding noise.
  EXPECT_GE(sim.imbalance_ratio(), 1.0);
  EXPECT_EQ(ref.rebalances(), 0u);
}

TEST(Rebalance, SingleShardIsANoOp) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ShardedOptions so;
  so.num_threads = 1;
  so.rebalance = every_n(1);
  ShardedSim sim(c, u, so);
  const PatternSet p = PatternSet::random(c.inputs().size(), 8, 2);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  EXPECT_EQ(sim.rebalances(), 0u);
  EXPECT_EQ(sim.rebalance_now(), 0u);
}

// ---------------------------------------------------------------------------
// threads x batch x rebalance grid: everything deterministic is invariant
// ---------------------------------------------------------------------------

struct GridResult {
  std::vector<Detect> status;
  std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> observations;
  std::uint64_t hard = 0, potential = 0, dropped = 0;
};

GridResult run_grid_point(const Circuit& c, const FaultUniverse& u,
                          const TestSuite& t, unsigned threads,
                          unsigned batch, const RebalancePolicy& rp) {
  ShardedOptions so;
  so.num_threads = threads;
  so.batch_width = batch;
  so.rebalance = rp;
  ShardedSim sim(c, u, so);
  GridResult g;
  sim.set_detection_observer(
      [&g](std::uint32_t fault, std::uint32_t po, bool hard) {
        g.observations.emplace_back(fault, po, hard);
      });
  sim.run(t, Val::X);
  g.status = sim.status();
  const SimStats st = sim.stats();
  g.hard = st.total.counters.get(obs::Counter::DetectionsHard);
  g.potential = st.total.counters.get(obs::Counter::DetectionsPotential);
  g.dropped = st.total.counters.get(obs::Counter::FaultsDropped);
  return g;
}

TEST(RebalanceGrid, StatusOrderAndCountersInvariant) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 40, 9));
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 24, 10));

  const GridResult ref =
      run_grid_point(c, u, t, 1, 1, RebalancePolicy{});
  // Coverage from the status vector, not the counters: the suite must
  // actually detect something even in OBS-off builds where the counter
  // registry (and with it GridResult's hard/potential/dropped, compared
  // below as all-zeros) is compiled out.
  ASSERT_GT(summarize(ref.status).hard, 0u);
  ASSERT_FALSE(ref.observations.empty());
  const RebalancePolicy policies[] = {RebalancePolicy{},
                                      auto_policy(1.05, 2), every_n(3)};
  for (unsigned threads : {1u, 2u, 4u}) {
    for (unsigned batch : {1u, 64u}) {
      for (const RebalancePolicy& rp : policies) {
        const GridResult g = run_grid_point(c, u, t, threads, batch, rp);
        const std::string at = "threads=" + std::to_string(threads) +
                               " batch=" + std::to_string(batch) + " mode=" +
                               std::to_string(static_cast<int>(rp.mode));
        EXPECT_EQ(g.status, ref.status) << at;
        EXPECT_EQ(g.observations, ref.observations) << at;
        EXPECT_EQ(g.hard, ref.hard) << at;
        EXPECT_EQ(g.potential, ref.potential) << at;
        EXPECT_EQ(g.dropped, ref.dropped) << at;
      }
    }
  }
}

TEST(RebalanceGrid, TransitionModeStatusInvariant) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_transition(c);
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 32, 13));

  ShardedOptions base;
  base.num_threads = 1;
  ShardedSim ref(c, u, base);
  ref.run(t, Val::X);

  ShardedOptions so;
  so.num_threads = 4;
  so.rebalance = every_n(5);
  ShardedSim sim(c, u, so);
  sim.run(t, Val::X);
  EXPECT_GT(sim.rebalances(), 0u);
  EXPECT_EQ(sim.status(), ref.status());
}

// ---------------------------------------------------------------------------
// Campaign composition: digest invariance, checkpoint/resume
// ---------------------------------------------------------------------------

TEST(RebalanceCampaign, DigestInvariantAcrossPolicies) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 48, 21));

  CampaignOptions off;
  off.sharded.num_threads = 2;
  const CampaignResult base = CampaignRunner(c, u, t, off).run();

  for (const RebalancePolicy& rp : {auto_policy(1.0, 1), every_n(4)}) {
    CampaignOptions co;
    co.sharded.num_threads = 2;
    co.sharded.rebalance = rp;
    const CampaignResult r = CampaignRunner(c, u, t, co).run();
    EXPECT_EQ(r.digest(), base.digest());
    EXPECT_EQ(r.detections_hard, base.detections_hard);
    EXPECT_GT(r.rebalances, 0u);
  }
}

TEST(RebalanceCampaign, CheckpointBetweenRebalancesResumesBitIdentical) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 56, 22));

  CampaignOptions off;
  off.sharded.num_threads = 2;
  const CampaignResult full = CampaignRunner(c, u, t, off).run();

  // Rebalance every 3 vectors, checkpoint every 7: the halt at vector 26
  // lands between a rebalance (24) and the next checkpoint (28), so the
  // resume restores a snapshot whose partition history differs from what
  // the resumed simulator (fresh round-robin) starts with.
  const std::string ck = tmp_path("rebalance_resume.ck");
  CampaignOptions first;
  first.sharded.num_threads = 2;
  first.sharded.rebalance = every_n(3);
  first.checkpoint_path = ck;
  first.checkpoint_every = 7;
  first.halt_after = 26;
  const CampaignResult halted = CampaignRunner(c, u, t, first).run();
  ASSERT_TRUE(halted.halted);
  ASSERT_GT(halted.rebalances, 0u);

  CampaignOptions second;
  second.sharded.num_threads = 4;  // resume with a different shard count too
  second.sharded.rebalance = auto_policy(1.1, 2);
  second.resume_path = ck;
  const CampaignResult tail = CampaignRunner(c, u, t, second).run();
  EXPECT_EQ(tail.digest(), full.digest());
  std::remove(ck.c_str());
}

// ---------------------------------------------------------------------------
// Telemetry: SimStats fields, counters, timeline samples
// ---------------------------------------------------------------------------

TEST(RebalanceTelemetry, StatsAndTimelineCarryRebalances) {
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 24, 31));

  ShardedOptions so;
  so.num_threads = 4;
  so.rebalance = every_n(4);
  ShardedSim sim(c, u, so);
  obs::Timeline timeline(64, 1);
  sim.set_timeline(&timeline);
  sim.run(t, Val::X);

  const SimStats st = sim.stats();
  EXPECT_EQ(st.rebalances, sim.rebalances());
  EXPECT_GT(st.rebalances, 0u);
  EXPECT_GT(st.faults_migrated, 0u);
  EXPECT_EQ(st.total.counters.get(obs::Counter::Rebalances),
            CFS_OBS_ENABLED ? st.rebalances : 0u);

  // The work section carries the cumulative repartition count: it is
  // non-decreasing and ends at the driver's total.
  ASSERT_GT(timeline.size(), 0u);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_GE(timeline.at(i).rebalances, prev);
    prev = timeline.at(i).rebalances;
  }
  // The last sample precedes the final vector's rebalance check, so it
  // trails by at most one repartition.
  EXPECT_GE(prev + 1, st.rebalances);
}

TEST(RebalanceTelemetry, OffPolicyReportsZeros) {
  const Circuit c = make_benchmark("s27");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ShardedOptions so;
  so.num_threads = 2;
  ShardedSim sim(c, u, so);
  const PatternSet p = PatternSet::random(c.inputs().size(), 12, 1);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
  const SimStats st = sim.stats();
  EXPECT_EQ(st.rebalances, 0u);
  EXPECT_EQ(st.faults_migrated, 0u);
  EXPECT_EQ(st.elements_migrated, 0u);
}

}  // namespace
}  // namespace cfs
