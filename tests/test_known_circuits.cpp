// Behavioural tests of the teaching circuits (LFSR, Gray counter, ripple
// adder, traffic light) -- these also stress the good-machine simulator on
// structured sequential logic.
#include <gtest/gtest.h>

#include <set>

#include "gen/known_circuits.h"
#include "sim/good_sim.h"

namespace cfs {
namespace {

std::vector<Val> bits(std::initializer_list<int> v) {
  std::vector<Val> out;
  for (int b : v) out.push_back(b ? Val::One : Val::Zero);
  return out;
}

int ff_as_int(const GoodSim& sim) {
  int v = 0;
  const auto q = sim.ff_values();
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i] == Val::One) v |= 1 << i;
  }
  return v;
}

TEST(Lfsr, CyclesThroughManyStates) {
  const Circuit c = make_lfsr(5);
  // All-zero is the fixed point of an XOR-feedback LFSR.
  GoodSim sim(c, Val::Zero);
  sim.apply(bits({1}));
  sim.clock();
  EXPECT_EQ(ff_as_int(sim), 0) << "all-zero is a fixed point of XOR LFSRs";

  // From a nonzero seed, check the shift recurrence step by step and the
  // orbit length of the primitive feedback.
  GoodSim s2(c, Val::One);  // all-ones initial state
  std::set<int> seen;
  int state = ff_as_int(s2);
  for (int step = 0; step < 40; ++step) {
    seen.insert(state);
    const int q4 = (state >> 4) & 1, q2 = (state >> 2) & 1;
    const int expect = ((state << 1) & 0x1E) | (q4 ^ q2);  // x^5+x^3+1
    s2.apply(bits({1}));
    s2.clock();
    state = ff_as_int(s2);
    ASSERT_EQ(state, expect) << "step " << step;
  }
  // x^5 + x^3 + 1 is primitive: the nonzero orbit has all 31 states.
  EXPECT_EQ(seen.size(), 31u);
}

TEST(Lfsr, HoldsWithoutEnable) {
  const Circuit c = make_lfsr(4);
  GoodSim sim(c, Val::One);
  sim.apply(bits({0}));
  sim.clock();
  EXPECT_EQ(ff_as_int(sim), 0xF);
}

TEST(GrayCounter, AdjacentCodesDifferInOneBit) {
  const Circuit c = make_gray_counter(4);
  GoodSim sim(c, Val::Zero);
  auto gray = [&] {
    int v = 0;
    for (std::size_t i = 0; i < c.outputs().size(); ++i) {
      if (sim.output(static_cast<unsigned>(i)) == Val::One) v |= 1 << i;
    }
    return v;
  };
  sim.apply(bits({1}));
  int prev = gray();
  std::set<int> seen{prev};
  for (int step = 0; step < 15; ++step) {
    sim.clock();
    sim.apply(bits({1}));
    const int cur = gray();
    EXPECT_EQ(__builtin_popcount(cur ^ prev), 1) << "step " << step;
    seen.insert(cur);
    prev = cur;
  }
  EXPECT_EQ(seen.size(), 16u);  // full 4-bit Gray cycle
}

TEST(RippleAdder, AddsExhaustively) {
  const Circuit c = make_ripple_adder(4);
  GoodSim sim(c);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int ci = 0; ci <= 1; ++ci) {
        std::vector<Val> in;
        for (int i = 0; i < 4; ++i) {
          in.push_back((a >> i) & 1 ? Val::One : Val::Zero);
        }
        for (int i = 0; i < 4; ++i) {
          in.push_back((b >> i) & 1 ? Val::One : Val::Zero);
        }
        in.push_back(ci ? Val::One : Val::Zero);
        sim.apply(in);
        const int expect = a + b + ci;
        int got = 0;
        for (int i = 0; i < 4; ++i) {
          if (sim.output(i) == Val::One) got |= 1 << i;
        }
        if (sim.output(4) == Val::One) got |= 16;
        ASSERT_EQ(got, expect) << a << "+" << b << "+" << ci;
      }
    }
  }
}

TEST(TrafficLight, OneHotRingAdvances) {
  const Circuit c = make_traffic_light();
  GoodSim sim(c, Val::Zero);
  // All-zero recovers into red on the first enabled clock.
  sim.apply(bits({1}));
  sim.clock();
  auto lights = [&] {
    std::string s;
    for (int i = 0; i < 3; ++i) {
      s += to_char(sim.output(i));
    }
    return s;  // r, y, g
  };
  EXPECT_EQ(lights(), "100");
  sim.apply(bits({1}));
  sim.clock();
  EXPECT_EQ(lights(), "001");  // r -> g
  sim.apply(bits({1}));
  sim.clock();
  EXPECT_EQ(lights(), "010");  // g -> y
  sim.apply(bits({1}));
  sim.clock();
  EXPECT_EQ(lights(), "100");  // y -> r
  // Hold with en=0.
  sim.apply(bits({0}));
  sim.clock();
  EXPECT_EQ(lights(), "100");
}

TEST(TrafficLight, ExactlyOneLightOnceRunning) {
  const Circuit c = make_traffic_light();
  GoodSim sim(c, Val::Zero);
  sim.apply(bits({1}));
  sim.clock();
  for (int step = 0; step < 12; ++step) {
    sim.apply(bits({1}));
    int on = 0;
    for (int i = 0; i < 3; ++i) on += sim.output(i) == Val::One;
    EXPECT_EQ(on, 1) << "step " << step;
    sim.clock();
  }
}

}  // namespace
}  // namespace cfs
