// ParallelSim (64-lane dual-rail) cross-checked against the event-driven
// scalar GoodSim: 64 independent random sequences per circuit must agree on
// every gate every frame.
#include <gtest/gtest.h>

#include "gen/circuit_gen.h"
#include "gen/known_circuits.h"
#include "sim/good_sim.h"
#include "sim/parallel_sim.h"
#include "util/rng.h"

namespace cfs {
namespace {

Val random_val(Rng& rng, bool allow_x) {
  if (allow_x && rng.chance(1, 8)) return Val::X;
  return rng.chance(1, 2) ? Val::One : Val::Zero;
}

void cross_check(const Circuit& c, std::uint64_t seed, int frames,
                 bool allow_x) {
  Rng rng(seed);
  constexpr unsigned kLanes = 8;  // scalar resim of 8 of the 64 lanes
  ParallelSim par(c);
  std::vector<GoodSim> scalar;
  scalar.reserve(kLanes);
  for (unsigned l = 0; l < kLanes; ++l) scalar.emplace_back(c);

  for (int t = 0; t < frames; ++t) {
    // One Word64 per PI: lane l gets an independent value.
    std::vector<Word64> words(c.inputs().size(), splat64(Val::X));
    std::vector<std::vector<Val>> lane_vals(kLanes);
    for (std::size_t i = 0; i < c.inputs().size(); ++i) {
      for (unsigned l = 0; l < 64; ++l) {
        const Val v = random_val(rng, allow_x);
        w_set(words[i], l, v);
        if (l < kLanes) lane_vals[l].push_back(v);
      }
    }
    par.set_inputs(words);
    par.settle();
    for (unsigned l = 0; l < kLanes; ++l) scalar[l].apply(lane_vals[l]);
    for (GateId g = 0; g < c.num_gates(); ++g) {
      for (unsigned l = 0; l < kLanes; ++l) {
        ASSERT_EQ(w_get(par.value(g), l), scalar[l].value(g))
            << "gate " << c.gate_name(g) << " lane " << l << " frame " << t;
      }
    }
    par.clock();
    for (unsigned l = 0; l < kLanes; ++l) scalar[l].clock();
  }
}

TEST(ParallelSim, MatchesScalarOnS27) { cross_check(make_s27(), 1, 12, true); }

TEST(ParallelSim, MatchesScalarOnC17) { cross_check(make_c17(), 2, 8, true); }

TEST(ParallelSim, MatchesScalarOnCounter) {
  cross_check(make_counter(4), 3, 10, false);
}

TEST(ParallelSim, MatchesScalarOnRandomCircuit) {
  GenProfile p;
  p.name = "t";
  p.num_pis = 6;
  p.num_pos = 4;
  p.num_dffs = 8;
  p.num_gates = 150;
  p.seed = 17;
  cross_check(generate_circuit(p), 4, 10, true);
}

TEST(ParallelSim, ResetReturnsToAllX) {
  const Circuit c = make_counter(3);
  ParallelSim sim(c, Val::Zero);
  std::vector<Word64> en(1, splat64(Val::One));
  sim.set_inputs(en);
  sim.settle();
  sim.clock();
  sim.reset(Val::Zero);
  for (GateId q : c.dffs()) EXPECT_EQ(sim.value(q), splat64(Val::Zero));
}

}  // namespace
}  // namespace cfs
