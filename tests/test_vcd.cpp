// VCD export: document structure and agreement with the recorded history.
#include <gtest/gtest.h>

#include "gen/known_circuits.h"
#include "sim/delay_sim.h"
#include "sim/vcd.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(Vcd, DocumentStructure) {
  const Circuit c = make_c17();
  VcdWriter w(c);
  w.record(0, c.find("10"), Val::One);
  w.record(3, c.find("22"), Val::Zero);
  const std::string doc = w.str();
  EXPECT_NE(doc.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(doc.find("$scope module c17 $end"), std::string::npos);
  EXPECT_NE(doc.find("$enddefinitions $end"), std::string::npos);
  // One $var per gate.
  std::size_t vars = 0, pos = 0;
  while ((pos = doc.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    ++pos;
  }
  EXPECT_EQ(vars, c.num_gates());
  EXPECT_NE(doc.find("#0"), std::string::npos);
  EXPECT_NE(doc.find("#3"), std::string::npos);
}

TEST(Vcd, RejectsTimeRegression) {
  const Circuit c = make_c17();
  VcdWriter w(c);
  w.record(5, 0, Val::One);
  EXPECT_THROW(w.record(4, 0, Val::Zero), Error);
}

TEST(Vcd, FromDelaySimHistory) {
  const Circuit c = make_c17();
  DelaySim sim(c, 2u);
  for (unsigned i = 0; i < 5; ++i) sim.set_input(i, Val::One);
  sim.run();
  const std::string doc = delay_history_to_vcd(c, sim.history());
  // Every recorded change appears: count value-change lines after the
  // header (lines starting with 0/1/x past $end of dumpvars).
  const std::size_t end = doc.find("$end\n", doc.find("$dumpvars"));
  ASSERT_NE(end, std::string::npos);
  std::size_t changes = 0;
  for (std::size_t i = end; i < doc.size(); ++i) {
    if (doc[i] == '\n' && i + 1 < doc.size() &&
        (doc[i + 1] == '0' || doc[i + 1] == '1' || doc[i + 1] == 'x')) {
      ++changes;
    }
  }
  EXPECT_EQ(changes, sim.history().size());
}

}  // namespace
}  // namespace cfs
