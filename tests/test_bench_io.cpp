// .bench parser/writer: grammar acceptance, error reporting, round-trip.
#include <gtest/gtest.h>

#include "gen/known_circuits.h"
#include "netlist/bench_parser.h"
#include "netlist/bench_writer.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(BenchParser, ParsesS27Shape) {
  const Circuit c = make_s27();
  EXPECT_EQ(c.inputs().size(), 4u);
  EXPECT_EQ(c.outputs().size(), 1u);
  EXPECT_EQ(c.dffs().size(), 3u);
  EXPECT_EQ(c.topo_order().size(), 10u);
  EXPECT_EQ(c.name(), "s27");
}

TEST(BenchParser, ParsesC17Shape) {
  const Circuit c = make_c17();
  EXPECT_EQ(c.inputs().size(), 5u);
  EXPECT_EQ(c.outputs().size(), 2u);
  EXPECT_EQ(c.dffs().size(), 0u);
  EXPECT_EQ(c.topo_order().size(), 6u);
}

TEST(BenchParser, CommentsAndBlankLines) {
  const Circuit c = parse_bench(R"(
# full comment line
INPUT(a)   # trailing comment

OUTPUT(n)
n = NOT(a)
)",
                                "t");
  EXPECT_EQ(c.num_gates(), 2u);
}

TEST(BenchParser, OutputBeforeDefinition) {
  const Circuit c = parse_bench("OUTPUT(n)\nINPUT(a)\nn = BUF(a)\n", "t");
  EXPECT_TRUE(c.is_po(c.find("n")));
}

TEST(BenchParser, CaseInsensitiveKinds) {
  const Circuit c =
      parse_bench("INPUT(a)\nINPUT(b)\nn = nAnD(a, b)\nOUTPUT(n)\n", "t");
  EXPECT_EQ(c.kind(c.find("n")), GateKind::Nand);
}

TEST(BenchParser, DffArityError) {
  EXPECT_THROW(parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n", "t"), Error);
}

TEST(BenchParser, UnknownKindReportsLine) {
  try {
    parse_bench("INPUT(a)\nn = FROB(a)\n", "t");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchParser, MalformedDirectiveThrows) {
  EXPECT_THROW(parse_bench("INPUT a\n", "t"), Error);
  EXPECT_THROW(parse_bench("WIBBLE(a)\n", "t"), Error);
  EXPECT_THROW(parse_bench("n = (a)\n", "t"), Error);
}

TEST(BenchParser, EmptyInputRejected) {
  EXPECT_THROW(parse_bench("", "t"), Error);
  EXPECT_THROW(parse_bench("# only comments\n\n", "t"), Error);
}

TEST(BenchWriter, RoundTripPreservesSemantics) {
  const Circuit c = make_s27();
  const std::string text = write_bench(c);
  const Circuit c2 = parse_bench(text, "s27rt");
  EXPECT_EQ(c2.num_gates(), c.num_gates());
  EXPECT_EQ(c2.inputs().size(), c.inputs().size());
  EXPECT_EQ(c2.outputs().size(), c.outputs().size());
  EXPECT_EQ(c2.dffs().size(), c.dffs().size());
  // Same gate kinds per name.
  for (GateId g = 0; g < c.num_gates(); ++g) {
    const GateId g2 = c2.find(c.gate_name(g));
    ASSERT_NE(g2, kNoGate) << c.gate_name(g);
    EXPECT_EQ(c2.kind(g2), c.kind(g));
    EXPECT_EQ(c2.num_fanins(g2), c.num_fanins(g));
  }
}

}  // namespace
}  // namespace cfs
