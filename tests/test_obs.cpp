// Observability subsystem: counter registry arithmetic, phase-timer
// accumulation, Chrome-trace and stats-JSON well-formedness (parsed back
// with a minimal JSON reader), and shard-count invariance of the
// deterministic counter block.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "gen/known_circuits.h"
#include "harness/runner.h"
#include "harness/stats_export.h"
#include "obs/counters.h"
#include "obs/json_stats.h"
#include "obs/timers.h"
#include "obs/trace.h"
#include "patterns/pattern.h"
#include "util/stopwatch.h"

namespace cfs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader (tests only): enough to round-trip what we emit.
// ---------------------------------------------------------------------------

struct Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

struct Json {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  const JsonObject& obj() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& arr() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  const Json& at(const std::string& key) const { return obj().at(key); }
  bool has(const std::string& key) const { return obj().count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json{string()};
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return Json{nullptr};
    }
    return number();
  }

  void literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) {
      fail("bad literal");
    }
    pos_ += lit.size();
  }

  Json boolean() {
    if (peek() == 't') {
      literal("true");
      return Json{true};
    }
    literal("false");
    return Json{false};
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return Json{std::stod(std::string(s_.substr(start, pos_ - start)))};
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(std::string(s_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            // Emitter only escapes control chars -- ASCII is enough here.
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    ws();
    if (!consume('}')) {
      while (true) {
        ws();
        std::string key = string();
        ws();
        expect(':');
        (*obj)[key] = value();
        ws();
        if (consume('}')) break;
        expect(',');
      }
    }
    return Json{obj};
  }

  Json array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    ws();
    if (!consume(']')) {
      while (true) {
        arr->push_back(value());
        ws();
        if (consume(']')) break;
        expect(',');
      }
    }
    return Json{arr};
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

TEST(Counters, BumpMergeResetTotal) {
  obs::Counters a;
  EXPECT_EQ(a.total(), 0u);
  a.bump(obs::Counter::ElementsTraversed);
  a.bump(obs::Counter::ElementsTraversed, 9);
  a.bump(obs::Counter::DetectionsHard, 3);
  EXPECT_EQ(a.get(obs::Counter::ElementsTraversed), 10u);
  EXPECT_EQ(a.get(obs::Counter::DetectionsHard), 3u);
  EXPECT_EQ(a.total(), 13u);

  obs::Counters b;
  b.bump(obs::Counter::ElementsTraversed, 5);
  b.bump(obs::Counter::FaultsDropped, 2);
  b.merge(a);
  EXPECT_EQ(b.get(obs::Counter::ElementsTraversed), 15u);
  EXPECT_EQ(b.get(obs::Counter::DetectionsHard), 3u);
  EXPECT_EQ(b.get(obs::Counter::FaultsDropped), 2u);
  EXPECT_EQ(b.total(), 20u);

  b.reset();
  EXPECT_EQ(b.total(), 0u);
  EXPECT_EQ(b, obs::Counters{});
}

TEST(Counters, NamesAreUniqueAndNonEmpty) {
  std::map<std::string, int> seen;
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto name =
        std::string(obs::counter_name(static_cast<obs::Counter>(i)));
    EXPECT_FALSE(name.empty()) << "counter " << i;
    ++seen[name];
  }
  for (const auto& [name, n] : seen) EXPECT_EQ(n, 1) << name;
}

TEST(Counters, ShardInvariantSubset) {
  // Exactly the fault-level counters are shard-invariant: one increment
  // per fault-status transition, each fault owned by exactly one shard.
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    const bool expect_invariant = c == obs::Counter::DetectionsHard ||
                                  c == obs::Counter::DetectionsPotential ||
                                  c == obs::Counter::FaultsDropped;
    EXPECT_EQ(obs::counter_shard_invariant(c), expect_invariant)
        << obs::counter_name(c);
  }
}

// ---------------------------------------------------------------------------
// Phase timers + Stopwatch::lap
// ---------------------------------------------------------------------------

TEST(PhaseTimers, AccumulationIsMonotonic) {
  obs::PhaseTimers t;
  std::uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    {
      obs::ScopedPhase sp(t, obs::Phase::GoodEval);
      volatile int sink = 0;
      for (int j = 0; j < 100; ++j) sink = sink + j;
    }
    const std::uint64_t now = t.nanos(obs::Phase::GoodEval);
    EXPECT_GE(now, prev) << "iteration " << i;
    prev = now;
    EXPECT_EQ(t.count(obs::Phase::GoodEval),
              static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(t.total_phase_nanos(), t.nanos(obs::Phase::GoodEval));
  EXPECT_DOUBLE_EQ(t.seconds(obs::Phase::GoodEval),
                   static_cast<double>(prev) * 1e-9);
}

TEST(PhaseTimers, MergeAndMinus) {
  obs::PhaseTimers a;
  a.add(obs::Phase::FaultProp, 100);
  a.add(obs::Phase::Clocking, 40);
  obs::PhaseTimers b;
  b.add(obs::Phase::FaultProp, 7);
  b.merge(a);
  EXPECT_EQ(b.nanos(obs::Phase::FaultProp), 107u);
  EXPECT_EQ(b.count(obs::Phase::FaultProp), 2u);
  EXPECT_EQ(b.nanos(obs::Phase::Clocking), 40u);

  const obs::PhaseTimers delta = b.minus(a);
  EXPECT_EQ(delta.nanos(obs::Phase::FaultProp), 7u);
  EXPECT_EQ(delta.count(obs::Phase::FaultProp), 1u);
  EXPECT_EQ(delta.nanos(obs::Phase::Clocking), 0u);

  b.reset();
  EXPECT_EQ(b, obs::PhaseTimers{});
}

TEST(PhaseTimers, PhaseNamesAreUnique) {
  std::map<std::string, int> seen;
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    ++seen[std::string(obs::phase_name(static_cast<obs::Phase>(i)))];
  }
  EXPECT_EQ(seen.size(), obs::kNumPhases);
}

TEST(Stopwatch, LapResetsTheOrigin) {
  Stopwatch sw;
  volatile int sink = 0;
  for (int j = 0; j < 10000; ++j) sink = sink + j;
  const double lap1 = sw.lap();
  EXPECT_GE(lap1, 0.0);
  // After lap() the origin restarts: an immediate reading cannot include
  // the work burned before the lap.
  const double after = sw.seconds();
  EXPECT_GE(after, 0.0);
  const double lap2 = sw.lap();
  EXPECT_GE(lap2, after);
  EXPECT_GE(sw.seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Chrome trace emitter
// ---------------------------------------------------------------------------

TEST(TraceEmitter, OutputIsValidChromeTraceJson) {
  obs::TraceEmitter tr;
  tr.name_track(0, "shard 0");
  tr.name_track(1, "driver \"quoted\"\n");
  tr.complete(0, "vector", 10, 25);
  tr.instant(0, "detect x3", 35);
  tr.complete(1, "merge", 40, 2);
  EXPECT_EQ(tr.num_events(), 5u);

  std::ostringstream os;
  tr.write(os);
  const Json doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const JsonArray& ev = doc.at("traceEvents").arr();
  ASSERT_EQ(ev.size(), 5u);

  std::size_t meta = 0, complete = 0, instant = 0;
  for (const Json& e : ev) {
    ASSERT_TRUE(e.is_object());
    EXPECT_EQ(e.at("pid").num(), 1.0);
    const std::string& ph = e.at("ph").str();
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(e.at("name").str(), "thread_name");
      EXPECT_TRUE(e.at("args").is_object());
    } else if (ph == "X") {
      ++complete;
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(e.at("s").str(), "t");
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(meta, 2u);
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instant, 1u);

  // The escaped track name survives the round trip.
  bool found = false;
  for (const Json& e : ev) {
    if (e.at("ph").str() == "M" &&
        e.at("args").at("name").str() == "driver \"quoted\"\n") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TraceEmitter, NowIsMonotonic) {
  obs::TraceEmitter tr;
  std::uint64_t prev = tr.now_us();
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t now = tr.now_us();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriter, EscapingAndNesting) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("s", std::string_view("a\"b\\c\nd\x01"));
    w.field("i", std::uint64_t{18446744073709551615ull});
    w.field("neg", std::int64_t{-5});
    w.field("d", 1.5);
    w.field("nan", std::nan(""));
    w.field("t", true);
    w.key("arr");
    w.begin_array();
    w.value(std::uint64_t{1});
    w.begin_object();
    w.field("k", std::uint64_t{2});
    w.end_object();
    w.end_array();
    w.end_object();
  }
  const Json doc = parse_json(os.str());
  EXPECT_EQ(doc.at("s").str(), "a\"b\\c\nd\x01");
  EXPECT_EQ(doc.at("i").num(), 18446744073709551615.0);
  EXPECT_EQ(doc.at("neg").num(), -5.0);
  EXPECT_EQ(doc.at("d").num(), 1.5);
  EXPECT_TRUE(std::holds_alternative<std::nullptr_t>(doc.at("nan").v));
  EXPECT_EQ(std::get<bool>(doc.at("t").v), true);
  ASSERT_TRUE(doc.at("arr").is_array());
  EXPECT_EQ(doc.at("arr").arr().at(0).num(), 1.0);
  EXPECT_EQ(doc.at("arr").arr().at(1).at("k").num(), 2.0);
}

// ---------------------------------------------------------------------------
// Stats-JSON round trip + shard invariance
// ---------------------------------------------------------------------------

RunResult run_counter(unsigned threads) {
  const Circuit c = make_counter(6);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t(PatternSet::random(c.inputs().size(), 48, 11));
  return run_csim_sharded(c, u, t, CsimVariant::MV, threads, Val::Zero);
}

TEST(StatsJson, RoundTripMatchesRun) {
  const RunResult r = run_counter(2);
  RunMetadata meta;
  meta.circuit = "counter6";
  meta.engine = "csim-mv";
  meta.threads = 2;
  meta.seed = 11;
  meta.vectors = 48;
  meta.sequences = 1;
  meta.ff_init = "0";

  std::ostringstream os;
  write_run_stats_json(os, meta, r);
  const Json doc = parse_json(os.str());

  EXPECT_EQ(doc.at("schema_version").num(), 1.0);
  EXPECT_EQ(doc.at("meta").at("circuit").str(), "counter6");
  EXPECT_EQ(doc.at("meta").at("threads").num(), 2.0);
  EXPECT_EQ(doc.at("meta").at("ff_init").str(), "0");
  EXPECT_EQ(doc.at("coverage").at("hard").num(),
            static_cast<double>(r.cov.hard));
  EXPECT_EQ(doc.at("coverage").at("total").num(),
            static_cast<double>(r.cov.total));
  // Doubles are emitted at %.9g: compare to relative precision.
  EXPECT_NEAR(doc.at("cpu_s").num(), r.cpu_s, 1e-8 * (1.0 + r.cpu_s));
  ASSERT_TRUE(doc.at("engines").is_array());
  ASSERT_EQ(doc.at("engines").arr().size(), r.stats.per_engine.size());

  // Per-engine counters sum to the totals block, field by field.
  const JsonObject& tot = doc.at("totals").at("counters").obj();
  for (const auto& [name, val] : tot) {
    double sum = 0;
    for (const Json& e : doc.at("engines").arr()) {
      sum += e.at("counters").at(name).num();
    }
    EXPECT_EQ(sum, val.num()) << name;
  }

  // The deterministic block repeats the shard-invariant counters.
  const JsonObject& det = doc.at("deterministic").obj();
  for (const auto& [name, val] : det) {
    EXPECT_EQ(val.num(), tot.at(name).num()) << name;
  }

#if CFS_OBS_ENABLED
  EXPECT_EQ(det.at("detections_hard").num(),
            static_cast<double>(r.cov.hard));
  EXPECT_EQ(doc.at("totals").at("vectors_simulated").num(),
            static_cast<double>(48 * r.stats.per_engine.size()));
#endif
}

TEST(StatsJson, DeterministicCountersShardInvariant) {
  const RunResult r1 = run_counter(1);
  const RunResult r2 = run_counter(2);
  const RunResult r4 = run_counter(4);
  // Coverage is bit-identical by the sharding contract...
  EXPECT_EQ(r1.cov.hard, r2.cov.hard);
  EXPECT_EQ(r1.cov.hard, r4.cov.hard);
  // ...and so is every shard-invariant counter sum.
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    if (!obs::counter_shard_invariant(c)) continue;
    EXPECT_EQ(r1.stats.total.counters.get(c), r2.stats.total.counters.get(c))
        << obs::counter_name(c);
    EXPECT_EQ(r1.stats.total.counters.get(c), r4.stats.total.counters.get(c))
        << obs::counter_name(c);
  }
#if CFS_OBS_ENABLED
  EXPECT_EQ(r1.stats.total.counters.get(obs::Counter::DetectionsHard),
            static_cast<std::uint64_t>(r1.cov.hard));
  // The engines really were instrumented: traversal work is nonzero.
  EXPECT_GT(r1.stats.total.counters.get(obs::Counter::ElementsTraversed), 0u);
  EXPECT_GT(r1.stats.total.counters.get(obs::Counter::ElementsAllocated), 0u);
#endif
}

TEST(StatsJson, HarnessTimersMatchReportedCpu) {
  const RunResult r = run_counter(2);
  // cpu_s is defined as the Run phase of the harness envelope, so the
  // table column and the telemetry export can never disagree.
  EXPECT_DOUBLE_EQ(r.cpu_s, r.run_timers.seconds(obs::Phase::Run));
  EXPECT_EQ(r.run_timers.count(obs::Phase::Run), 1u);
}

}  // namespace
}  // namespace cfs
