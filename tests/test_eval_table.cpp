// Differential tests for table-driven evaluation: Circuit::eval (flat
// per-(kind, arity) tables, chunked reduction above kEvalChunkPins) must be
// bit-identical to Circuit::eval_fold (the fold-over-pins oracle) on every
// state, and an engine running with CsimOptions::fold_eval must march in
// lockstep -- good machine, fault lists, detection status, counters -- with
// the table-driven default across all four paper variants, transition mode,
// and macro mode.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/circuit_gen.h"
#include "netlist/builder.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

// One gate of each combinational kind at arity `n` (Buf/Not only at 1),
// fed by shared inputs.
Circuit kind_circuit(unsigned n) {
  Builder b("ktab" + std::to_string(n));
  std::vector<std::string> ins;
  for (unsigned i = 0; i < n; ++i) {
    ins.push_back("i" + std::to_string(i));
    b.add_input(ins.back());
  }
  for (const GateKind k : {GateKind::Buf, GateKind::Not, GateKind::And,
                           GateKind::Nand, GateKind::Or, GateKind::Nor,
                           GateKind::Xor, GateKind::Xnor}) {
    const auto [lo, hi] = arity(k);
    if (n < lo || n > hi) continue;
    std::vector<std::string> fi(ins.begin(), ins.begin() + n);
    b.add_gate(k, std::string(kind_name(k)) + "_y", fi);
    b.mark_output(std::string(kind_name(k)) + "_y");
  }
  return b.build();
}

// Exhaustive for small arities, dense random sampling (every pin cycling
// through all four 2-bit codes, the invalid code 1 included) above.
TEST(EvalTable, TableMatchesFoldForEveryKindAndArity) {
  std::mt19937_64 rng(2024);
  for (unsigned n = 1; n <= kMaxPins; ++n) {
    const Circuit c = kind_circuit(n);
    const std::uint64_t space = std::uint64_t{1} << (2 * n);
    const bool exhaustive = n <= 6;
    const std::uint64_t samples = exhaustive ? space : 200000;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t pins = exhaustive ? i : rng() & (space - 1);
      for (GateId g = 0; g < c.num_gates(); ++g) {
        if (!is_combinational(c.kind(g))) continue;
        const GateState s = static_cast<GateState>(pins);
        ASSERT_EQ(c.eval(g, s), c.eval_fold(g, s))
            << kind_name(c.kind(g)) << " arity " << n << " pins " << pins;
      }
    }
  }
}

// The wide path joins an 8-pin and an (n-8)-pin reduction; a single X or a
// single controlling value anywhere must behave as in the fold.  Probe the
// max-arity gates with exactly one non-binary pin in every position.
TEST(EvalTable, XPropagationAtMaxArity) {
  const Circuit c = kind_circuit(kMaxPins);
  for (GateId g = 0; g < c.num_gates(); ++g) {
    if (!is_combinational(c.kind(g))) continue;
    for (const Val base : {Val::Zero, Val::One}) {
      for (unsigned xp = 0; xp < kMaxPins; ++xp) {
        for (const std::uint8_t codepoint : {0u, 1u, 2u, 3u}) {
          GateState s = 0;
          for (unsigned p = 0; p < kMaxPins; ++p) s = state_set(s, p, base);
          // Raw code injection, bypassing state_set's Val typing: the
          // tables must normalise the invalid code 1 to X exactly like
          // eval_fold's from_code does.
          s &= ~(GateState{3} << (2 * xp));
          s |= GateState{codepoint} << (2 * xp);
          ASSERT_EQ(c.eval(g, s), c.eval_fold(g, s))
              << kind_name(c.kind(g)) << " base " << static_cast<int>(base)
              << " pin " << xp << " code " << static_cast<unsigned>(codepoint);
        }
      }
    }
  }
}

// Counters except TableEvals (the fold path deliberately counts zero there).
obs::Counters without_table_evals(obs::Counters c) {
  c.v[static_cast<std::size_t>(obs::Counter::TableEvals)] = 0;
  return c;
}

void expect_lockstep(const Circuit& c, const FaultUniverse& u,
                     CsimOptions opt, const MacroFaultMap* mmap,
                     const PatternSet& p, const char* label) {
  CsimOptions fold = opt;
  fold.fold_eval = true;
  ConcurrentSim table_sim(c, u, opt, mmap);
  ConcurrentSim fold_sim(c, u, fold, mmap);
  table_sim.reset(Val::Zero);
  fold_sim.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const std::size_t nt = table_sim.apply_vector(p[i]);
    const std::size_t nf = fold_sim.apply_vector(p[i]);
    ASSERT_EQ(nt, nf) << label << " vector " << i;
    ASSERT_EQ(table_sim.status(), fold_sim.status()) << label << " v" << i;
    for (GateId g = 0; g < c.num_gates(); ++g) {
      ASSERT_EQ(table_sim.good_value(g), fold_sim.good_value(g))
          << label << " v" << i << " gate " << g;
      ASSERT_EQ(table_sim.visible_at(g), fold_sim.visible_at(g))
          << label << " v" << i << " gate " << g;
    }
  }
  // Identical machines do identical work: every counter but TableEvals.
  ASSERT_EQ(without_table_evals(table_sim.counters()),
            without_table_evals(fold_sim.counters()))
      << label;
  ASSERT_EQ(fold_sim.counters().get(obs::Counter::TableEvals), 0u) << label;
}

TEST(EvalTable, EngineLockstepAcrossVariants) {
  GenProfile gp;
  gp.name = "evaltab";
  gp.num_pis = 6;
  gp.num_pos = 4;
  gp.num_dffs = 6;
  gp.num_gates = 120;
  gp.seed = 77;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 48, 99, 60);

  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  for (const bool split : {false, true}) {
    CsimOptions opt;
    opt.split_lists = split;
    expect_lockstep(c, u, opt, nullptr, p, split ? "csim-V" : "csim");
    expect_lockstep(ext.circuit, u, opt, &mm, p,
                    split ? "csim-MV" : "csim-M");
  }
}

TEST(EvalTable, EngineLockstepTransitionMode) {
  GenProfile gp;
  gp.name = "evaltab-tr";
  gp.num_pis = 5;
  gp.num_pos = 3;
  gp.num_dffs = 5;
  gp.num_gates = 80;
  gp.seed = 78;
  const Circuit c = generate_circuit(gp);
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 40, 17, 40);
  CsimOptions opt;
  expect_lockstep(c, u, opt, nullptr, p, "transition");
}

}  // namespace
}  // namespace cfs
