// End-to-end integration sweep: for every small benchmark profile, run the
// tgen -> simulate flow and require all engines to agree on the resulting
// deterministic test set.  This is the full Table-3 pipeline as a test.
#include <gtest/gtest.h>

#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"
#include "core/concurrent_sim.h"
#include "faults/macro_map.h"
#include "gen/iscas_profiles.h"
#include "netlist/macro_extract.h"
#include "patterns/tgen.h"

namespace cfs {
namespace {

class BenchmarkPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkPipeline, AllEnginesAgreeOnGeneratedTests) {
  const Circuit c = make_benchmark(GetParam());
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);

  TgenOptions opt;
  opt.seed = 2024;
  opt.max_vectors = 192;
  opt.stale_limit = 4;
  opt.ff_init = Val::Zero;
  const TgenResult tg = generate_tests(c, u, opt);
  ASSERT_FALSE(tg.suite.empty()) << "tgen produced nothing";

  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  ConcurrentSim mv(ext.circuit, u, CsimOptions{}, &mm);
  ProofsSim proofs(c, u, Val::Zero);
  for (const PatternSet& seq : tg.suite.sequences()) {
    mv.reset(Val::Zero);
    proofs.reset(Val::Zero);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      mv.apply_vector(seq[i]);
      proofs.apply_vector(seq[i]);
    }
  }
  // tgen itself ran csim-V; MV and PROOFS must reproduce its coverage and
  // agree with each other exactly.
  EXPECT_EQ(mv.coverage().hard, tg.coverage.hard);
  EXPECT_EQ(mv.status(), proofs.status());
}

INSTANTIATE_TEST_SUITE_P(TinySuite, BenchmarkPipeline,
                         ::testing::Values("s27", "s298", "s344", "s386",
                                           "s444", "s526"));

TEST(Integration, TransitionPipelineOnSuite) {
  for (const char* name : {"s27", "s298", "s386"}) {
    const Circuit c = make_benchmark(name);
    const FaultUniverse stuck = FaultUniverse::all_stuck_at(c);
    TgenOptions opt;
    opt.seed = 77;
    opt.max_vectors = 128;
    opt.stale_limit = 3;
    opt.ff_init = Val::Zero;
    const TgenResult tg = generate_tests(c, stuck, opt);

    const FaultUniverse trans = FaultUniverse::all_transition(c);
    ConcurrentSim tsim(c, trans);
    for (const PatternSet& seq : tg.suite.sequences()) {
      tsim.reset(Val::Zero);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        tsim.apply_vector(seq[i]);
      }
    }
    const SerialResult ref = serial_transition_sim(
        c, trans, tg.suite, SerialOptions{.ff_init = Val::Zero});
    ASSERT_EQ(tsim.status(), ref.status) << name;
    // The paper's Table 6 shape: transition coverage below the stuck-at
    // coverage of the same tests.
    EXPECT_LE(tsim.coverage().pct(), tg.coverage.pct() + 1e-9) << name;
  }
}

}  // namespace
}  // namespace cfs
