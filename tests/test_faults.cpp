// Fault universes, equivalence collapsing, macro fault mapping.
#include <gtest/gtest.h>

#include <set>

#include "faults/fault.h"
#include "faults/macro_map.h"
#include "faults/transition_model.h"
#include "gen/known_circuits.h"
#include "netlist/builder.h"
#include "netlist/macro_extract.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(Faults, StuckAtUniverseCountsOutputsAndBranches) {
  // a feeds two gates (fanout 2) -> its branch pin faults are enumerated;
  // b feeds one gate -> only output faults.
  Builder bld("t");
  bld.add_input("a");
  bld.add_input("b");
  bld.add_gate(GateKind::And, "n1", {"a", "b"});
  bld.add_gate(GateKind::Or, "n2", {"a", "n1"});
  bld.mark_output("n2");
  const Circuit c = bld.build();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  // Outputs: 4 gates x 2 = 8.  Branch pins: n1.0 (a) and n2.0 (a) x 2 = 4.
  EXPECT_EQ(u.size(), 12u);
}

TEST(Faults, TransitionUniverseTwoPerPin) {
  const Circuit c = make_s27();
  std::size_t pins = 0;
  for (GateId g = 0; g < c.num_gates(); ++g) pins += c.num_fanins(g);
  EXPECT_EQ(FaultUniverse::all_transition(c).size(), 2 * pins);
}

TEST(Faults, DescribeFormats) {
  const Circuit c = make_s27();
  const GateId g = c.find("G8");
  Fault f{FaultType::StuckAt, g, kFaultOutPin, Val::Zero};
  EXPECT_EQ(describe_fault(c, f), "G8/O s-a-0");
  f = {FaultType::StuckAt, g, 1, Val::One};
  EXPECT_EQ(describe_fault(c, f), "G8.1 s-a-1");
  f = {FaultType::Transition, g, 0, Val::One};
  EXPECT_EQ(describe_fault(c, f), "G8.0 str");
}

TEST(Faults, CollapseMergesAndInputSA0WithOutput) {
  Builder bld("t");
  bld.add_input("a");
  bld.add_input("b");
  bld.add_gate(GateKind::Buf, "a1", {"a"});  // make 'a' single-fanout buffer
  bld.add_gate(GateKind::Buf, "b1", {"b"});
  bld.add_gate(GateKind::And, "n", {"a1", "b1"});
  bld.mark_output("n");
  const Circuit c = bld.build();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto rep = collapse_equivalent(c, u);

  auto id_of = [&](const std::string& name, std::uint16_t pin, Val v) {
    const GateId g = c.find(name);
    for (std::uint32_t i = 0; i < u.size(); ++i) {
      if (u[i].gate == g && u[i].pin == pin && u[i].value == v) return i;
    }
    ADD_FAILURE() << "fault not found";
    return 0xFFFFFFFFu;
  };
  // a1/O s-a-0 (single-fanout into AND pin) == n/O s-a-0.
  EXPECT_EQ(rep[id_of("a1", kFaultOutPin, Val::Zero)],
            rep[id_of("n", kFaultOutPin, Val::Zero)]);
  // And through the BUF: a/O s-a-0 == a1/O s-a-0.
  EXPECT_EQ(rep[id_of("a", kFaultOutPin, Val::Zero)],
            rep[id_of("a1", kFaultOutPin, Val::Zero)]);
  // s-a-1 on an AND input is NOT equivalent to any output fault here.
  EXPECT_NE(rep[id_of("a1", kFaultOutPin, Val::One)],
            rep[id_of("n", kFaultOutPin, Val::One)]);
}

TEST(Faults, CollapseNotInverts) {
  Builder bld("t");
  bld.add_input("a");
  bld.add_gate(GateKind::Not, "n", {"a"});
  bld.mark_output("n");
  const Circuit c = bld.build();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto rep = collapse_equivalent(c, u);
  auto id_of = [&](const std::string& name, Val v) {
    const GateId g = c.find(name);
    for (std::uint32_t i = 0; i < u.size(); ++i) {
      if (u[i].gate == g && u[i].pin == kFaultOutPin && u[i].value == v) {
        return i;
      }
    }
    return 0xFFFFFFFFu;
  };
  EXPECT_EQ(rep[id_of("a", Val::Zero)], rep[id_of("n", Val::One)]);
  EXPECT_EQ(rep[id_of("a", Val::One)], rep[id_of("n", Val::Zero)]);
}

TEST(Faults, CollapseReducesS27Universe) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto rep = collapse_equivalent(c, u);
  std::set<std::uint32_t> classes(rep.begin(), rep.end());
  EXPECT_LT(classes.size(), u.size());
  // Representatives are the smallest members of their class.
  for (std::uint32_t i = 0; i < rep.size(); ++i) EXPECT_LE(rep[i], i);
}

TEST(Faults, SummarizeCountsStatuses) {
  std::vector<Detect> st = {Detect::None, Detect::Hard, Detect::Potential,
                            Detect::Hard};
  const Coverage cov = summarize(st);
  EXPECT_EQ(cov.total, 4u);
  EXPECT_EQ(cov.hard, 2u);
  EXPECT_EQ(cov.potential, 1u);
  EXPECT_DOUBLE_EQ(cov.pct(), 50.0);
}

TEST(TransitionModel, Table1Relation) {
  // Slow-to-rise (target = 1).
  const Val T = Val::One;
  EXPECT_EQ(transition_hold_value(Val::Zero, Val::One, T), Val::Zero);
  EXPECT_EQ(transition_hold_value(Val::Zero, Val::Zero, T), Val::Zero);
  EXPECT_EQ(transition_hold_value(Val::Zero, Val::X, T), Val::Zero);
  EXPECT_EQ(transition_hold_value(Val::One, Val::Zero, T), Val::Zero);
  EXPECT_EQ(transition_hold_value(Val::One, Val::One, T), Val::One);
  EXPECT_EQ(transition_hold_value(Val::One, Val::X, T), Val::X);
  EXPECT_EQ(transition_hold_value(Val::X, Val::Zero, T), Val::Zero);
  EXPECT_EQ(transition_hold_value(Val::X, Val::One, T), Val::X);
  EXPECT_EQ(transition_hold_value(Val::X, Val::X, T), Val::X);
  // Slow-to-fall mirrors with 0/1 swapped.
  const Val F = Val::Zero;
  EXPECT_EQ(transition_hold_value(Val::One, Val::Zero, F), Val::One);
  EXPECT_EQ(transition_hold_value(Val::Zero, Val::One, F), Val::One);
  EXPECT_EQ(transition_hold_value(Val::Zero, Val::Zero, F), Val::Zero);
}

TEST(MacroMap, MapsEveryFault) {
  const Circuit c = make_s27();
  const MacroExtraction ext = extract_macros(c);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  ASSERT_EQ(mm.mapped.size(), u.size());
  for (const MappedFault& m : mm.mapped) {
    ASSERT_NE(m.gate, kNoGate);
    ASSERT_LT(m.gate, ext.circuit.num_gates());
    if (m.table != kNoGate) {
      ASSERT_LT(m.table, mm.tables.size());
      EXPECT_EQ(mm.tables[m.table].num_inputs,
                ext.circuit.num_fanins(m.gate));
    }
  }
  EXPECT_GT(mm.num_functional, 0u);
}

TEST(MacroMap, RejectsTransitionUniverse) {
  const Circuit c = make_s27();
  const MacroExtraction ext = extract_macros(c);
  const FaultUniverse u = FaultUniverse::all_transition(c);
  EXPECT_THROW(map_faults_to_macros(c, ext, u), Error);
}

}  // namespace
}  // namespace cfs
