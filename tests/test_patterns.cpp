// Pattern sets: I/O round-trip, random generation, test generator quality.
#include <gtest/gtest.h>

#include "faults/fault.h"
#include "gen/known_circuits.h"
#include "patterns/pattern.h"
#include "patterns/tgen.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(Patterns, AddEnforcesWidth) {
  PatternSet ps(3);
  ps.add({Val::Zero, Val::One, Val::X});
  EXPECT_THROW(ps.add({Val::Zero, Val::One}), Error);
  EXPECT_EQ(ps.size(), 1u);
}

TEST(Patterns, FirstAddFixesWidth) {
  PatternSet ps;
  ps.add({Val::Zero, Val::One});
  EXPECT_EQ(ps.num_inputs(), 2u);
  EXPECT_THROW(ps.add({Val::Zero}), Error);
}

TEST(Patterns, TextRoundTrip) {
  PatternSet ps(4);
  ps.add({Val::Zero, Val::One, Val::X, Val::One});
  ps.add({Val::One, Val::One, Val::Zero, Val::Zero});
  const std::string text = ps.to_text("two vectors");
  const PatternSet back = PatternSet::parse(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], ps[0]);
  EXPECT_EQ(back[1], ps[1]);
}

TEST(Patterns, ParseRejectsGarbage) {
  EXPECT_THROW(PatternSet::parse("01x\n012\n"), Error);
  EXPECT_THROW(PatternSet::parse("01\n011\n"), Error);  // width change
}

TEST(Patterns, ParseSkipsCommentsAndBlanks) {
  const PatternSet ps = PatternSet::parse("# header\n\n01\n # mid\n10\n");
  EXPECT_EQ(ps.size(), 2u);
}

TEST(Patterns, RandomIsDeterministicAndBinaryByDefault) {
  const PatternSet a = PatternSet::random(5, 50, 9);
  const PatternSet b = PatternSet::random(5, 50, 9);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a.vectors(), b.vectors());
  for (const auto& v : a.vectors()) {
    for (Val x : v) EXPECT_NE(x, Val::X);
  }
}

TEST(Patterns, RandomXDensityRoughlyHonoured) {
  const PatternSet ps = PatternSet::random(10, 200, 3, 250);
  std::size_t xs = 0;
  for (const auto& v : ps.vectors()) {
    for (Val x : v) xs += x == Val::X;
  }
  const double frac = static_cast<double>(xs) / 2000.0;
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.35);
}

TEST(Patterns, Truncate) {
  PatternSet ps = PatternSet::random(3, 10, 1);
  ps.truncate(4);
  EXPECT_EQ(ps.size(), 4u);
  ps.truncate(100);  // no-op
  EXPECT_EQ(ps.size(), 4u);
}

TEST(Tgen, ReachesHighCoverageOnS27) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.seed = 5;
  const TgenResult r = generate_tests(c, u, opt);
  EXPECT_GT(r.coverage.pct(), 80.0);
  EXPECT_FALSE(r.suite.empty());
  EXPECT_GE(r.segments_tried, r.segments_kept);
}

TEST(Tgen, ReplayedSuiteReproducesItsCoverage) {
  const Circuit c = make_counter(4);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.seed = 11;
  const TgenResult r = generate_tests(c, u, opt);
  // Re-simulate the emitted suite from scratch; coverage must match.
  ConcurrentSim sim(c, u);
  for (const PatternSet& seq : r.suite.sequences()) {
    sim.reset(opt.ff_init);
    for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
  }
  EXPECT_EQ(sim.coverage().hard, r.coverage.hard);
}

TEST(Tgen, RespectsVectorBudget) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.max_vectors = 10;
  const TgenResult r = generate_tests(c, u, opt);
  EXPECT_LE(r.suite.total_vectors(), 10u);
}

TEST(Tgen, RestartsRaiseCoverageOnRestartSensitiveLogic) {
  // A shift register with X-init: faults near the serial input need a
  // fresh machine to excite deterministically; restarts must never hurt.
  const Circuit c = make_shift_register(6);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TgenOptions one;
  one.seed = 9;
  one.max_restarts = 0;
  TgenOptions many = one;
  many.max_restarts = 6;
  const TgenResult a = generate_tests(c, u, one);
  const TgenResult b = generate_tests(c, u, many);
  EXPECT_GE(b.coverage.hard, a.coverage.hard);
  EXPECT_GE(b.suite.num_sequences(), a.suite.num_sequences());
}

TEST(TestSuite, TextRoundTripWithResets) {
  TestSuite suite;
  PatternSet a(3), b(3);
  a.add({Val::Zero, Val::One, Val::X});
  b.add({Val::One, Val::One, Val::Zero});
  b.add({Val::Zero, Val::Zero, Val::Zero});
  suite.sequences() = {a, b};
  const std::string text = suite.to_text("two sequences");
  EXPECT_NE(text.find("RESET"), std::string::npos);
  const TestSuite back = TestSuite::parse(text);
  ASSERT_EQ(back.num_sequences(), 2u);
  EXPECT_EQ(back.sequences()[0].vectors(), a.vectors());
  EXPECT_EQ(back.sequences()[1].vectors(), b.vectors());
  EXPECT_EQ(back.total_vectors(), 3u);
}

TEST(TestSuite, ParseRejectsMixedWidths) {
  EXPECT_THROW(TestSuite::parse("01\nRESET\n011\n"), Error);
}

TEST(TestSuite, PruneEmptyDropsEmptySequences) {
  TestSuite suite;
  suite.sequences().emplace_back(2);
  PatternSet b(2);
  b.add({Val::One, Val::Zero});
  suite.sequences().push_back(b);
  suite.prune_empty();
  EXPECT_EQ(suite.num_sequences(), 1u);
}

}  // namespace
}  // namespace cfs
