// The umbrella header must compile standalone and expose the documented
// quickstart flow.
#include "cfs.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, QuickstartFlowCompilesAndRuns) {
  using namespace cfs;
  const Circuit c = make_s27();
  const FaultUniverse faults = FaultUniverse::all_stuck_at(c);
  TgenOptions opt;
  opt.seed = 1;
  opt.max_vectors = 64;
  const TgenResult tests = generate_tests(c, faults, opt);

  ConcurrentSim sim(c, faults);
  for (const PatternSet& seq : tests.suite.sequences()) {
    sim.reset();
    for (std::size_t i = 0; i < seq.size(); ++i) sim.apply_vector(seq[i]);
  }
  EXPECT_EQ(sim.coverage().hard, tests.coverage.hard);
}

}  // namespace
