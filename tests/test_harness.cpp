// Experiment harness: runner smoke tests and table formatting.
#include <gtest/gtest.h>

#include "gen/known_circuits.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

TEST(Harness, TableAligns) {
  Table t({"ckt", "CPU", "MEM"});
  t.row({"s27", "0.01", "1.2K"});
  t.row({"s35932", "12.50", "9.24M"});
  const std::string s = t.str();
  EXPECT_NE(s.find("s27"), std::string::npos);
  EXPECT_NE(s.find("9.24M"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Harness, FmtHelpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(42), "42");
}

TEST(Harness, AllVariantsProduceIdenticalCoverage) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(4, 60, 2);
  const RunResult plain = run_csim(c, u, p, CsimVariant::Plain);
  const RunResult v = run_csim(c, u, p, CsimVariant::V);
  const RunResult m = run_csim(c, u, p, CsimVariant::M);
  const RunResult mv = run_csim(c, u, p, CsimVariant::MV);
  const RunResult proofs = run_proofs(c, u, p);
  const RunResult serial = run_serial(c, u, p);
  EXPECT_EQ(plain.cov.hard, serial.cov.hard);
  EXPECT_EQ(v.cov.hard, serial.cov.hard);
  EXPECT_EQ(m.cov.hard, serial.cov.hard);
  EXPECT_EQ(mv.cov.hard, serial.cov.hard);
  EXPECT_EQ(proofs.cov.hard, serial.cov.hard);
  EXPECT_GT(plain.mem_bytes, 0u);
  EXPECT_GT(plain.activity, 0u);
}

TEST(Harness, VariantNames) {
  EXPECT_EQ(variant_name(CsimVariant::Plain), "csim");
  EXPECT_EQ(variant_name(CsimVariant::V), "csim-V");
  EXPECT_EQ(variant_name(CsimVariant::M), "csim-M");
  EXPECT_EQ(variant_name(CsimVariant::MV), "csim-MV");
}

TEST(Harness, TransitionRunnerSmoke) {
  const Circuit c = make_s27();
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p = PatternSet::random(4, 40, 8);
  const RunResult r = run_csim_transition(c, u, p);
  EXPECT_EQ(r.cov.total, u.size());
  EXPECT_GT(r.activity, 0u);
}

}  // namespace
}  // namespace cfs
