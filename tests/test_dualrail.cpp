// Exhaustive lane semantics for the 64-wide dual-rail words (util/dualrail.h):
// every packed operator must agree, lane by lane, with the scalar truth
// tables in util/logic.h for every combination of three-valued operands.
//
// The test fills words so that adjacent lanes hold *different* value pairs
// (all 9 combinations tiled across the 64 lanes, at several rotations), so a
// rail mix-up that happens to cancel on uniform words cannot hide.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "util/dualrail.h"
#include "util/logic.h"

namespace cfs {
namespace {

constexpr std::array<Val, 3> kVals = {Val::Zero, Val::X, Val::One};

// Build an operand pair (a, b) where lane i holds the value combination
// (i + phase) % 9, so every (a, b) pair appears in 7+ distinct lanes.
struct PackedPair {
  Word64 a, b;
  std::array<Val, 64> sa, sb;
};

PackedPair tile(unsigned phase) {
  PackedPair p;
  for (unsigned i = 0; i < 64; ++i) {
    const unsigned k = (i + phase) % 9;
    p.sa[i] = kVals[k / 3];
    p.sb[i] = kVals[k % 3];
    w_set(p.a, i, p.sa[i]);
    w_set(p.b, i, p.sb[i]);
  }
  return p;
}

TEST(DualRail, SplatAndGetRoundTrip) {
  for (Val v : kVals) {
    const Word64 w = splat64(v);
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(w_get(w, i), v) << "lane " << i;
    }
  }
}

TEST(DualRail, SetGetRoundTripEveryLane) {
  // Setting one lane must not disturb any other, for every base fill.
  for (Val base : kVals) {
    for (Val v : kVals) {
      for (unsigned i = 0; i < 64; ++i) {
        Word64 w = splat64(base);
        w_set(w, i, v);
        for (unsigned j = 0; j < 64; ++j) {
          EXPECT_EQ(w_get(w, j), j == i ? v : base)
              << "set lane " << i << " read lane " << j;
        }
      }
    }
  }
}

TEST(DualRail, BinaryOpsMatchScalarTruthTablesInEveryLane) {
  for (unsigned phase = 0; phase < 9; ++phase) {
    const PackedPair p = tile(phase);
    const Word64 rand_w = w_and(p.a, p.b);
    const Word64 ror_w = w_or(p.a, p.b);
    const Word64 rxor_w = w_xor(p.a, p.b);
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(w_get(rand_w, i), v_and(p.sa[i], p.sb[i]))
          << "AND lane " << i << " phase " << phase;
      EXPECT_EQ(w_get(ror_w, i), v_or(p.sa[i], p.sb[i]))
          << "OR lane " << i << " phase " << phase;
      EXPECT_EQ(w_get(rxor_w, i), v_xor(p.sa[i], p.sb[i]))
          << "XOR lane " << i << " phase " << phase;
    }
  }
}

TEST(DualRail, NotMatchesScalarInEveryLane) {
  for (unsigned phase = 0; phase < 9; ++phase) {
    const PackedPair p = tile(phase);
    const Word64 rn = w_not(p.a);
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(w_get(rn, i), v_not(p.sa[i])) << "lane " << i;
    }
  }
}

TEST(DualRail, PredicatesMatchScalarInEveryLane) {
  for (unsigned phase = 0; phase < 9; ++phase) {
    const PackedPair p = tile(phase);
    const std::uint64_t eq = w_eq(p.a, p.b);
    const std::uint64_t hard = w_hard_diff(p.a, p.b);
    const std::uint64_t xm = w_is_x(p.a);
    const std::uint64_t bin = w_is_binary(p.a);
    for (unsigned i = 0; i < 64; ++i) {
      const Val a = p.sa[i], b = p.sb[i];
      EXPECT_EQ((eq >> i) & 1u, a == b ? 1u : 0u) << "eq lane " << i;
      const bool scalar_hard =
          is_binary(a) && is_binary(b) && a != b;
      EXPECT_EQ((hard >> i) & 1u, scalar_hard ? 1u : 0u)
          << "hard_diff lane " << i;
      EXPECT_EQ((xm >> i) & 1u, a == Val::X ? 1u : 0u)
          << "is_x lane " << i;
      EXPECT_EQ((bin >> i) & 1u, is_binary(a) ? 1u : 0u)
          << "is_binary lane " << i;
    }
  }
}

TEST(DualRail, SelectBlendsPerLane) {
  for (unsigned phase = 0; phase < 9; ++phase) {
    const PackedPair p = tile(phase);
    // An arbitrary-but-fixed irregular mask, plus the two extremes.
    for (std::uint64_t mask :
         {std::uint64_t{0}, ~std::uint64_t{0},
          std::uint64_t{0xA5A5'0FF0'3C3C'9696ull}}) {
      const Word64 r = w_select(mask, p.b, p.a);
      for (unsigned i = 0; i < 64; ++i) {
        const Val want = ((mask >> i) & 1u) != 0 ? p.sb[i] : p.sa[i];
        EXPECT_EQ(w_get(r, i), want) << "lane " << i;
      }
    }
  }
}

TEST(DualRail, InvalidCodeNormalisesToX) {
  // Code 1 (L=1,H=0) is unreachable through the public constructors; if a
  // word is forged with it, reads normalise to X like from_code does.
  Word64 w;
  w.l = 1;  // lane 0 holds the invalid code
  EXPECT_EQ(w_get(w, 0), Val::X);
  EXPECT_EQ(w_get(w, 1), Val::Zero);
}

// De Morgan / involution identities hold lane-wise on mixed words: a cheap
// whole-word cross-check that the rail layout of every operator agrees.
TEST(DualRail, AlgebraicIdentitiesOnMixedWords) {
  for (unsigned phase = 0; phase < 9; ++phase) {
    const PackedPair p = tile(phase);
    EXPECT_EQ(w_not(w_not(p.a)), p.a);
    EXPECT_EQ(w_not(w_and(p.a, p.b)), w_or(w_not(p.a), w_not(p.b)));
    EXPECT_EQ(w_not(w_or(p.a, p.b)), w_and(w_not(p.a), w_not(p.b)));
    EXPECT_EQ(w_eq(p.a, p.a), ~std::uint64_t{0});
    EXPECT_EQ(w_hard_diff(p.a, p.a), std::uint64_t{0});
  }
}

// Multi-word (up to kMaxBatchLanes) extensions: the wn_* ops must behave
// as the Word64 op applied word-wise, with wn_get/wn_set addressing lanes
// across word boundaries.
TEST(DualRail, MultiWordOpsMatchPerWordAndPerLaneSemantics) {
  for (unsigned n = 1; n <= kMaxBatchWords; ++n) {
    std::array<Word64, kMaxBatchWords> a{}, b{}, r{};
    std::array<std::array<Val, 64 * kMaxBatchWords>, 2> lanes{};
    for (unsigned i = 0; i < n * 64; ++i) {
      const Val va = kVals[i % 3];
      const Val vb = kVals[(i / 3 + i) % 3];
      wn_set(a.data(), i, va);
      wn_set(b.data(), i, vb);
      lanes[0][i] = va;
      lanes[1][i] = vb;
    }
    // Round trip through wn_get, across word boundaries.
    for (unsigned i = 0; i < n * 64; ++i) {
      ASSERT_EQ(wn_get(a.data(), i), lanes[0][i]) << "n=" << n << " i=" << i;
    }
    // Each op lane-wise equals the scalar truth table.
    wn_copy(r.data(), a.data(), n);
    wn_and(r.data(), b.data(), n);
    for (unsigned i = 0; i < n * 64; ++i) {
      ASSERT_EQ(wn_get(r.data(), i), v_and(lanes[0][i], lanes[1][i]));
    }
    wn_copy(r.data(), a.data(), n);
    wn_or(r.data(), b.data(), n);
    for (unsigned i = 0; i < n * 64; ++i) {
      ASSERT_EQ(wn_get(r.data(), i), v_or(lanes[0][i], lanes[1][i]));
    }
    wn_copy(r.data(), a.data(), n);
    wn_xor(r.data(), b.data(), n);
    for (unsigned i = 0; i < n * 64; ++i) {
      ASSERT_EQ(wn_get(r.data(), i), v_xor(lanes[0][i], lanes[1][i]));
    }
    wn_copy(r.data(), a.data(), n);
    wn_not(r.data(), n);
    for (unsigned i = 0; i < n * 64; ++i) {
      ASSERT_EQ(wn_get(r.data(), i), v_not(lanes[0][i]));
    }
    // wn_eq is exact equality over all covered lanes.
    wn_copy(r.data(), a.data(), n);
    EXPECT_TRUE(wn_eq(r.data(), a.data(), n));
    wn_set(r.data(), n * 64 - 1, v_not(wn_get(a.data(), n * 64 - 1)) == Val::X
                                     ? Val::One
                                     : v_not(wn_get(a.data(), n * 64 - 1)));
    EXPECT_FALSE(wn_eq(r.data(), a.data(), n));
    // wn_splat fills every covered lane.
    wn_splat(r.data(), n, Val::One);
    for (unsigned i = 0; i < n * 64; ++i) {
      ASSERT_EQ(wn_get(r.data(), i), Val::One);
    }
  }
}

}  // namespace
}  // namespace cfs
