// Two-dimensional parallelism: the BatchPlan pattern grouping, the packed
// multi-word good machine (up to kMaxBatchLanes lanes), and the batched
// sharded driver.
//
// The contract under test is lockstep equivalence: BatchGoodSim must agree
// lane-for-lane with an independent scalar GoodSim trajectory, and
// ShardedSim must produce bit-identical detection status, observation
// streams, and deterministic counters for every --batch x --threads
// combination, on stuck-at, macro, and transition runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/concurrent_sim.h"
#include "gen/circuit_gen.h"
#include "harness/runner.h"
#include "netlist/macro_extract.h"
#include "obs/counters.h"
#include "patterns/batch_plan.h"
#include "patterns/pattern.h"
#include "sim/batch_good_sim.h"
#include "sim/good_sim.h"
#include "sim/sharded_sim.h"
#include "util/dualrail.h"

namespace cfs {
namespace {

Circuit comb_circuit(unsigned gates = 120, std::uint64_t seed = 31) {
  GenProfile gp;
  gp.name = "batch-comb";
  gp.num_pis = 10;
  gp.num_pos = 6;
  gp.num_dffs = 0;
  gp.num_gates = gates;
  gp.seed = seed;
  return generate_circuit(gp);
}

Circuit seq_circuit(unsigned gates = 150, std::uint64_t seed = 77) {
  GenProfile gp;
  gp.name = "batch-seq";
  gp.num_pis = 8;
  gp.num_pos = 5;
  gp.num_dffs = 12;
  gp.num_gates = gates;
  gp.seed = seed;
  return generate_circuit(gp);
}

// A suite of `n` sequences with assorted lengths (including an empty one),
// the shape the sequential batcher has to pack across.
TestSuite multi_seq_suite(std::size_t num_inputs, std::size_t n,
                          std::uint64_t seed, unsigned x_permille = 50) {
  TestSuite t;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t len = 1 + (s * 7 + 3) % 9;  // 1..9, varied
    t.sequences().push_back(
        PatternSet::random(num_inputs, len, seed + s, x_permille));
  }
  return t;
}

// ---------------------------------------------------------------------------
// BatchPlan
// ---------------------------------------------------------------------------

TEST(BatchPlan, CombinationalPacksVectorsAcrossSequences) {
  const Circuit c = comb_circuit();
  TestSuite t = multi_seq_suite(c.inputs().size(), 5, 11);
  const BatchPlan plan = BatchPlan::build(c, t, 64);
  EXPECT_TRUE(plan.combinational());
  EXPECT_EQ(plan.width(), 64u);
  EXPECT_EQ(plan.total_vectors(), t.total_vectors());

  // Lane-major traversal of the bands must enumerate the suite in order.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  for (const BatchBand& band : plan.bands()) {
    EXPECT_LE(band.lanes.size(), 64u);
    for (const BatchLane& lane : band.lanes) {
      EXPECT_LE(lane.count, 1u);  // one vector per lane in comb mode
      for (std::uint32_t v = 0; v < lane.count; ++v) {
        order.emplace_back(lane.seq, lane.begin + v);
      }
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> want;
  for (std::uint32_t s = 0; s < t.num_sequences(); ++s) {
    for (std::uint32_t v = 0; v < t.sequences()[s].size(); ++v) {
      want.emplace_back(s, v);
    }
  }
  EXPECT_EQ(order, want);
}

TEST(BatchPlan, SequentialPacksWholeSequencesPerLane) {
  const Circuit c = seq_circuit();
  TestSuite t = multi_seq_suite(c.inputs().size(), 7, 23);
  const BatchPlan plan = BatchPlan::build(c, t, 4);
  EXPECT_FALSE(plan.combinational());
  EXPECT_EQ(plan.width(), 4u);
  EXPECT_EQ(plan.total_vectors(), t.total_vectors());

  std::size_t seqs_seen = 0;
  for (const BatchBand& band : plan.bands()) {
    EXPECT_LE(band.lanes.size(), 4u);
    std::uint32_t max_len = 0;
    for (const BatchLane& lane : band.lanes) {
      EXPECT_EQ(lane.begin, 0u);  // a lane is a whole sequence
      EXPECT_EQ(lane.count, t.sequences()[lane.seq].size());
      max_len = std::max(max_len, lane.count);
      EXPECT_EQ(lane.seq, seqs_seen);  // suite order preserved
      ++seqs_seen;
    }
    EXPECT_EQ(band.steps, max_len);
  }
  EXPECT_EQ(seqs_seen, t.num_sequences());
}

TEST(BatchPlan, WidthClampedToMaxLanesAndEmptySequencesKept) {
  const Circuit c = seq_circuit();
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 3, 1));
  t.sequences().push_back(PatternSet(c.inputs().size()));  // empty
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 2, 2));
  const BatchPlan wide = BatchPlan::build(c, t, 1000);
  EXPECT_EQ(wide.width(), kMaxBatchLanes);
  const BatchPlan narrow = BatchPlan::build(c, t, 0);
  EXPECT_EQ(narrow.width(), 1u);

  // The empty sequence must survive as a zero-length lane so replay still
  // issues its reset.
  std::size_t lanes = 0, empties = 0;
  for (const BatchBand& band : wide.bands()) {
    for (const BatchLane& lane : band.lanes) {
      ++lanes;
      empties += lane.count == 0;
    }
  }
  EXPECT_EQ(lanes, 3u);
  EXPECT_EQ(empties, 1u);
}

// ---------------------------------------------------------------------------
// BatchGoodSim lockstep vs scalar GoodSim
// ---------------------------------------------------------------------------

TEST(BatchGoodSim, CombinationalLanesMatchScalarReference) {
  const Circuit c = comb_circuit(200, 5);
  const std::size_t npis = c.inputs().size();
  const PatternSet pats = PatternSet::random(npis, 64, 99, 120);

  BatchGoodSim bsim(c);
  bsim.reset();
  for (std::size_t pi = 0; pi < npis; ++pi) {
    Word64 w;
    for (unsigned lane = 0; lane < 64; ++lane) w_set(w, lane, pats[lane][pi]);
    bsim.set_input(static_cast<unsigned>(pi), w);
  }
  bsim.settle();

  GoodSim ref(c);
  for (unsigned lane = 0; lane < 64; ++lane) {
    ref.reset();
    ref.apply(pats[lane]);
    for (GateId g = 0; g < c.num_gates(); ++g) {
      ASSERT_EQ(w_get(bsim.value(g), lane), ref.value(g))
          << "gate " << g << " lane " << lane;
    }
  }
}

TEST(BatchGoodSim, SequentialLanesTrackIndependentSequences) {
  const Circuit c = seq_circuit(220, 13);
  const std::size_t npis = c.inputs().size();
  constexpr unsigned kLanes = 9;
  constexpr unsigned kSteps = 6;
  std::vector<PatternSet> seqs;
  for (unsigned l = 0; l < kLanes; ++l) {
    seqs.push_back(PatternSet::random(npis, kSteps, 300 + l, 80));
  }

  for (Val ff_init : {Val::X, Val::Zero}) {
    BatchGoodSim bsim(c, ff_init);
    bsim.reset(ff_init);
    std::vector<GoodSim> refs;
    refs.reserve(kLanes);
    for (unsigned l = 0; l < kLanes; ++l) refs.emplace_back(c, ff_init);

    for (unsigned step = 0; step < kSteps; ++step) {
      for (std::size_t pi = 0; pi < npis; ++pi) {
        Word64 w = splat64(Val::X);
        for (unsigned l = 0; l < kLanes; ++l) w_set(w, l, seqs[l][step][pi]);
        bsim.set_input(static_cast<unsigned>(pi), w);
      }
      bsim.settle();
      for (unsigned l = 0; l < kLanes; ++l) {
        refs[l].apply(seqs[l][step]);
        for (GateId g = 0; g < c.num_gates(); ++g) {
          ASSERT_EQ(w_get(bsim.value(g), l), refs[l].value(g))
              << "step " << step << " gate " << g << " lane " << l;
        }
      }
      bsim.clock();
      for (unsigned l = 0; l < kLanes; ++l) refs[l].clock();
    }
  }
}

TEST(BatchGoodSim, MultiWordCombinationalLanesMatchScalarReference) {
  const Circuit c = comb_circuit(200, 5);
  const std::size_t npis = c.inputs().size();
  const PatternSet pats = PatternSet::random(npis, kMaxBatchLanes, 99, 120);

  BatchGoodSim bsim(c, Val::X, kMaxBatchLanes);
  ASSERT_EQ(bsim.words_per_gate(), kMaxBatchWords);
  ASSERT_EQ(bsim.lanes(), kMaxBatchLanes);
  bsim.reset();
  std::vector<Word64> w(bsim.words_per_gate());
  for (std::size_t pi = 0; pi < npis; ++pi) {
    wn_splat(w.data(), kMaxBatchWords, Val::X);
    for (unsigned lane = 0; lane < kMaxBatchLanes; ++lane) {
      wn_set(w.data(), lane, pats[lane][pi]);
    }
    bsim.set_input(static_cast<unsigned>(pi), w.data());
  }
  bsim.settle();

  GoodSim ref(c);
  for (unsigned lane = 0; lane < kMaxBatchLanes; ++lane) {
    ref.reset();
    ref.apply(pats[lane]);
    for (GateId g = 0; g < c.num_gates(); ++g) {
      ASSERT_EQ(wn_get(bsim.value_words(g), lane), ref.value(g))
          << "gate " << g << " lane " << lane;
    }
  }
}

TEST(BatchGoodSim, MultiWordSequentialLanesTrackIndependentSequences) {
  const Circuit c = seq_circuit(220, 13);
  const std::size_t npis = c.inputs().size();
  constexpr unsigned kLanes = 130;  // 3 words, last word partially used
  constexpr unsigned kSteps = 4;
  std::vector<PatternSet> seqs;
  for (unsigned l = 0; l < kLanes; ++l) {
    seqs.push_back(PatternSet::random(npis, kSteps, 300 + l, 80));
  }

  BatchGoodSim bsim(c, Val::Zero, kLanes);
  ASSERT_EQ(bsim.words_per_gate(), 3u);
  bsim.reset(Val::Zero);
  std::vector<GoodSim> refs;
  refs.reserve(kLanes);
  for (unsigned l = 0; l < kLanes; ++l) refs.emplace_back(c, Val::Zero);

  std::vector<Word64> w(bsim.words_per_gate());
  for (unsigned step = 0; step < kSteps; ++step) {
    for (std::size_t pi = 0; pi < npis; ++pi) {
      wn_splat(w.data(), bsim.words_per_gate(), Val::X);
      for (unsigned l = 0; l < kLanes; ++l) wn_set(w.data(), l, seqs[l][step][pi]);
      bsim.set_input(static_cast<unsigned>(pi), w.data());
    }
    bsim.settle();
    for (unsigned l = 0; l < kLanes; ++l) {
      refs[l].apply(seqs[l][step]);
      for (GateId g = 0; g < c.num_gates(); ++g) {
        ASSERT_EQ(wn_get(bsim.value_words(g), l), refs[l].value(g))
            << "step " << step << " gate " << g << " lane " << l;
      }
    }
    bsim.clock();
    for (unsigned l = 0; l < kLanes; ++l) refs[l].clock();
  }
}

#if CFS_OBS_ENABLED
TEST(BatchGoodSim, CountsPackedWordEvaluations) {
  const Circuit c = comb_circuit(80, 3);
  BatchGoodSim bsim(c);
  bsim.reset();
  const obs::Counters& cnt = bsim.counters();
  EXPECT_GT(cnt.get(obs::Counter::BatchWordsEvaluated), 0u);
}
#endif

// ---------------------------------------------------------------------------
// ShardedSim: batch x threads invariance
// ---------------------------------------------------------------------------

struct DetRecord {
  std::vector<Detect> status;
  std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> observations;
  std::uint64_t hard = 0, potential = 0, dropped = 0;
};

DetRecord run_config(const Circuit& c, const FaultUniverse& u,
                     const TestSuite& t, unsigned threads, unsigned batch,
                     bool split_lists, const MacroFaultMap* mmap = nullptr,
                     bool observe = true) {
  ShardedOptions sopt;
  sopt.num_threads = threads;
  sopt.batch_width = batch;
  sopt.csim.split_lists = split_lists;
  ShardedSim sim(c, u, sopt, mmap);
  DetRecord r;
  if (observe) {
    sim.set_detection_observer(
        [&r](std::uint32_t fault, std::uint32_t po, bool hard) {
          r.observations.emplace_back(fault, po, hard);
        });
  }
  sim.run(t, Val::X);
  r.status = sim.status();
  const obs::Counters& cnt = sim.stats().total.counters;
  r.hard = cnt.get(obs::Counter::DetectionsHard);
  r.potential = cnt.get(obs::Counter::DetectionsPotential);
  r.dropped = cnt.get(obs::Counter::FaultsDropped);
  return r;
}

TEST(ShardedBatch, StuckAtInvariantAcrossBatchAndThreads) {
  const Circuit c = seq_circuit(260, 41);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = multi_seq_suite(c.inputs().size(), 9, 400);

  const DetRecord ref = run_config(c, u, t, 1, 1, true);
  EXPECT_FALSE(ref.observations.empty());
  for (unsigned threads : {1u, 2u}) {
    for (unsigned batch : {8u, 64u, 256u}) {
      const DetRecord got = run_config(c, u, t, threads, batch, true);
      EXPECT_EQ(got.status, ref.status)
          << "threads " << threads << " batch " << batch;
      EXPECT_EQ(got.observations, ref.observations)
          << "threads " << threads << " batch " << batch;
      EXPECT_EQ(got.hard, ref.hard);
      EXPECT_EQ(got.potential, ref.potential);
      EXPECT_EQ(got.dropped, ref.dropped);
    }
  }
}

TEST(ShardedBatch, CombinationalInvariantAcrossBatchAndThreads) {
  const Circuit c = comb_circuit(240, 19);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = multi_seq_suite(c.inputs().size(), 3, 500, 100);

  const DetRecord ref = run_config(c, u, t, 1, 1, true);
  for (unsigned batch : {2u, 8u, 64u, 100u, 256u}) {
    const DetRecord got = run_config(c, u, t, 2, batch, true);
    EXPECT_EQ(got.status, ref.status) << "batch " << batch;
    EXPECT_EQ(got.observations, ref.observations) << "batch " << batch;
  }
}

TEST(ShardedBatch, MacroModeInvariant) {
  const Circuit c = seq_circuit(200, 53);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mmap = map_faults_to_macros(c, ext, u);
  const TestSuite t = multi_seq_suite(c.inputs().size(), 6, 600);

  const DetRecord ref =
      run_config(ext.circuit, u, t, 1, 1, true, &mmap, false);
  for (unsigned batch : {8u, 64u}) {
    const DetRecord got =
        run_config(ext.circuit, u, t, 2, batch, true, &mmap, false);
    EXPECT_EQ(got.status, ref.status) << "batch " << batch;
  }
}

TEST(ShardedBatch, TransitionModeInvariant) {
  const Circuit c = seq_circuit(180, 67);
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const TestSuite t = multi_seq_suite(c.inputs().size(), 6, 700);

  const RunResult ref =
      run_csim_transition_sharded(c, u, t, 1, Val::X, true, nullptr, 1);
  for (unsigned threads : {1u, 2u}) {
    for (unsigned batch : {8u, 64u, 256u}) {
      const RunResult got = run_csim_transition_sharded(
          c, u, t, threads, Val::X, true, nullptr, batch);
      EXPECT_EQ(got.cov.hard, ref.cov.hard)
          << "threads " << threads << " batch " << batch;
      EXPECT_EQ(got.cov.potential, ref.cov.potential);
      EXPECT_EQ(got.batch, batch);
    }
  }
}

TEST(ShardedBatch, RunnerParityWithSingleEngine) {
  const Circuit c = seq_circuit(160, 83);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = multi_seq_suite(c.inputs().size(), 8, 800);

  const RunResult base = run_csim(c, u, t, CsimVariant::V, Val::X);
  const RunResult batched =
      run_csim_sharded(c, u, t, CsimVariant::V, 2, Val::X, true, nullptr, 64);
  EXPECT_EQ(batched.cov.hard, base.cov.hard);
  EXPECT_EQ(batched.cov.potential, base.cov.potential);
  EXPECT_EQ(batched.cov.total, base.cov.total);
  EXPECT_EQ(batched.batch, 64u);
  EXPECT_EQ(base.batch, 1u);
#if CFS_OBS_ENABLED
  // The packed good machine actually ran: driver-side telemetry is present.
  EXPECT_GT(batched.stats.total.counters.get(
                obs::Counter::BatchWordsEvaluated),
            0u);
#endif
}

}  // namespace
}  // namespace cfs
