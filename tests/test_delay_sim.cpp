// Arbitrary-delay two-phase timing-wheel simulator: final values must match
// the zero-delay simulator, and glitch timing must follow the gate delays.
#include <gtest/gtest.h>

#include "gen/known_circuits.h"
#include "netlist/builder.h"
#include "sim/delay_sim.h"
#include "sim/good_sim.h"
#include "util/error.h"

namespace cfs {
namespace {

TEST(DelaySim, RejectsSequentialCircuits) {
  const Circuit c = make_counter(2);
  EXPECT_THROW(DelaySim(c, 1u), Error);
}

TEST(DelaySim, RejectsZeroDelay) {
  const Circuit c = make_c17();
  EXPECT_THROW(DelaySim(c, std::vector<std::uint32_t>(c.num_gates(), 0)),
               Error);
}

TEST(DelaySim, FinalValuesMatchZeroDelaySim) {
  const Circuit c = make_c17();
  DelaySim dsim(c, 2u);
  GoodSim gsim(c);
  const Val vecs[][5] = {
      {Val::Zero, Val::Zero, Val::Zero, Val::Zero, Val::Zero},
      {Val::One, Val::Zero, Val::One, Val::One, Val::Zero},
      {Val::One, Val::One, Val::One, Val::One, Val::One},
      {Val::Zero, Val::One, Val::X, Val::One, Val::Zero},
  };
  for (const auto& v : vecs) {
    for (unsigned i = 0; i < 5; ++i) dsim.set_input(i, v[i]);
    dsim.run();
    gsim.apply(std::span<const Val>(v, 5));
    for (GateId g = 0; g < c.num_gates(); ++g) {
      EXPECT_EQ(dsim.value(g), gsim.value(g)) << c.gate_name(g);
    }
  }
}

TEST(DelaySim, PropagationTakesPathDelay) {
  // chain: a -> n1 (NOT, d=3) -> n2 (NOT, d=5); change arrives at t+3, t+8.
  Builder b("chain");
  b.add_input("a");
  b.add_gate(GateKind::Not, "n1", {"a"});
  b.add_gate(GateKind::Not, "n2", {"n1"});
  b.mark_output("n2");
  const Circuit c = b.build();
  std::vector<std::uint32_t> delays(c.num_gates(), 1);
  delays[c.find("n1")] = 3;
  delays[c.find("n2")] = 5;
  DelaySim sim(c, delays);
  sim.set_input(0, Val::Zero);
  sim.run();
  sim.clear_history();
  sim.set_input(0, Val::One);
  sim.run();
  // Find the change records for n1 and n2.
  std::uint64_t t_n1 = 0, t_n2 = 0, t_a = 0;
  for (const auto& ch : sim.history()) {
    if (ch.gate == c.find("a")) t_a = ch.time;
    if (ch.gate == c.find("n1")) t_n1 = ch.time;
    if (ch.gate == c.find("n2")) t_n2 = ch.time;
  }
  EXPECT_EQ(t_n1 - t_a, 3u);
  EXPECT_EQ(t_n2 - t_n1, 5u);
}

TEST(DelaySim, StaticHazardProducesGlitch) {
  // y = a OR NOT(a) with a slow inverter: a 1->0 change makes y glitch to 0
  // before returning to 1 (transport delay model).
  Builder b("hazard");
  b.add_input("a");
  b.add_gate(GateKind::Not, "na", {"a"});
  b.add_gate(GateKind::Or, "y", {"a", "na"});
  b.mark_output("y");
  const Circuit c = b.build();
  std::vector<std::uint32_t> delays(c.num_gates(), 1);
  delays[c.find("na")] = 4;  // slow inverter
  delays[c.find("y")] = 1;
  DelaySim sim(c, delays);
  sim.set_input(0, Val::One);
  sim.run();
  ASSERT_EQ(sim.value(c.find("y")), Val::One);
  sim.clear_history();
  sim.set_input(0, Val::Zero);
  sim.run();
  // y must dip to 0 and recover to 1.
  std::vector<Val> ys;
  for (const auto& ch : sim.history()) {
    if (ch.gate == c.find("y")) ys.push_back(ch.val);
  }
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_EQ(ys[0], Val::Zero);
  EXPECT_EQ(ys[1], Val::One);
  EXPECT_EQ(sim.value(c.find("y")), Val::One);
}

TEST(DelaySim, LongDelaysGoThroughOverflow) {
  Builder b("long");
  b.add_input("a");
  b.add_gate(GateKind::Buf, "y", {"a"});
  b.mark_output("y");
  const Circuit c = b.build();
  std::vector<std::uint32_t> delays(c.num_gates(), 1);
  delays[c.find("y")] = 1000;  // beyond the wheel size
  DelaySim sim(c, delays);
  sim.set_input(0, Val::One);
  const auto t = sim.run();
  EXPECT_EQ(sim.value(c.find("y")), Val::One);
  EXPECT_GE(t, 1000u);
}

TEST(DelaySim, QuietCircuitProcessesNothing) {
  const Circuit c = make_c17();
  DelaySim sim(c, 1u);
  sim.run();
  const auto before = sim.events_processed();
  sim.run();
  EXPECT_EQ(sim.events_processed(), before);
}

}  // namespace
}  // namespace cfs
