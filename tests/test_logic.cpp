// Exhaustive checks of the three-valued primitives: scalar ops, dual-rail
// words, and the packed gate state.
#include <gtest/gtest.h>

#include "util/dualrail.h"
#include "util/logic.h"
#include "util/packed_state.h"

namespace cfs {
namespace {

const Val kAll[] = {Val::Zero, Val::One, Val::X};

// Reference semantics on {0,1,X} treated as sets of possible binary values.
int lo(Val v) { return v == Val::One ? 1 : 0; }
int hi(Val v) { return v == Val::Zero ? 0 : 1; }
Val from_range(int l, int h) {
  if (l == h) return l ? Val::One : Val::Zero;
  return Val::X;
}

TEST(Logic, AndMatchesIntervalSemantics) {
  for (Val a : kAll) {
    for (Val b : kAll) {
      EXPECT_EQ(v_and(a, b), from_range(lo(a) & lo(b), hi(a) & hi(b)))
          << to_char(a) << " & " << to_char(b);
    }
  }
}

TEST(Logic, OrMatchesIntervalSemantics) {
  for (Val a : kAll) {
    for (Val b : kAll) {
      EXPECT_EQ(v_or(a, b), from_range(lo(a) | lo(b), hi(a) | hi(b)));
    }
  }
}

TEST(Logic, NotInvertsAndPreservesX) {
  EXPECT_EQ(v_not(Val::Zero), Val::One);
  EXPECT_EQ(v_not(Val::One), Val::Zero);
  EXPECT_EQ(v_not(Val::X), Val::X);
}

TEST(Logic, DoubleNotIsIdentity) {
  for (Val a : kAll) EXPECT_EQ(v_not(v_not(a)), a);
}

TEST(Logic, XorTable) {
  EXPECT_EQ(v_xor(Val::Zero, Val::Zero), Val::Zero);
  EXPECT_EQ(v_xor(Val::Zero, Val::One), Val::One);
  EXPECT_EQ(v_xor(Val::One, Val::Zero), Val::One);
  EXPECT_EQ(v_xor(Val::One, Val::One), Val::Zero);
  for (Val a : kAll) {
    EXPECT_EQ(v_xor(a, Val::X), Val::X);
    EXPECT_EQ(v_xor(Val::X, a), Val::X);
  }
}

TEST(Logic, ControllingValuesDominateX) {
  EXPECT_EQ(v_and(Val::X, Val::Zero), Val::Zero);
  EXPECT_EQ(v_or(Val::X, Val::One), Val::One);
}

TEST(Logic, CodeRoundTrip) {
  for (Val a : kAll) EXPECT_EQ(from_code(code(a)), a);
  EXPECT_EQ(from_code(1), Val::X);  // the invalid code normalises to X
}

TEST(Logic, CharConversions) {
  EXPECT_EQ(val_from_char('0'), Val::Zero);
  EXPECT_EQ(val_from_char('1'), Val::One);
  EXPECT_EQ(val_from_char('x'), Val::X);
  EXPECT_EQ(val_from_char('?'), Val::X);
  EXPECT_EQ(to_char(Val::Zero), '0');
  EXPECT_EQ(to_char(Val::One), '1');
  EXPECT_EQ(to_char(Val::X), 'x');
}

TEST(Logic, ValsToString) {
  const Val v[] = {Val::Zero, Val::One, Val::X};
  EXPECT_EQ(vals_to_string(v, 3), "01x");
}

// --- dual-rail words -------------------------------------------------------

TEST(DualRail, SplatAndGet) {
  for (Val a : kAll) {
    const Word64 w = splat64(a);
    for (unsigned i : {0u, 1u, 31u, 63u}) EXPECT_EQ(w_get(w, i), a);
  }
}

TEST(DualRail, SetGetRoundTripAllLanes) {
  Word64 w = splat64(Val::X);
  for (unsigned i = 0; i < 64; ++i) {
    const Val v = kAll[i % 3];
    w_set(w, i, v);
  }
  for (unsigned i = 0; i < 64; ++i) EXPECT_EQ(w_get(w, i), kAll[i % 3]);
}

TEST(DualRail, OpsMatchScalarPerLane) {
  Word64 a{}, b{};
  for (unsigned i = 0; i < 64; ++i) {
    w_set(a, i, kAll[i % 3]);
    w_set(b, i, kAll[(i / 3) % 3]);
  }
  const Word64 wa = w_and(a, b), wo = w_or(a, b), wx = w_xor(a, b),
               wn = w_not(a);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(w_get(wa, i), v_and(w_get(a, i), w_get(b, i)));
    EXPECT_EQ(w_get(wo, i), v_or(w_get(a, i), w_get(b, i)));
    EXPECT_EQ(w_get(wx, i), v_xor(w_get(a, i), w_get(b, i)));
    EXPECT_EQ(w_get(wn, i), v_not(w_get(a, i)));
  }
}

TEST(DualRail, EqAndHardDiff) {
  Word64 a{}, b{};
  // lane 0: 0 vs 0 (eq); lane 1: 0 vs 1 (hard); lane 2: X vs 0 (neither);
  // lane 3: X vs X (eq).
  w_set(a, 0, Val::Zero);
  w_set(b, 0, Val::Zero);
  w_set(a, 1, Val::Zero);
  w_set(b, 1, Val::One);
  w_set(a, 2, Val::X);
  w_set(b, 2, Val::Zero);
  w_set(a, 3, Val::X);
  w_set(b, 3, Val::X);
  const std::uint64_t eq = w_eq(a, b);
  const std::uint64_t hard = w_hard_diff(a, b);
  EXPECT_TRUE(eq & 1ull);
  EXPECT_FALSE(eq & 2ull);
  EXPECT_FALSE(eq & 4ull);
  EXPECT_TRUE(eq & 8ull);
  EXPECT_FALSE(hard & 1ull);
  EXPECT_TRUE(hard & 2ull);
  EXPECT_FALSE(hard & 4ull);
  EXPECT_FALSE(hard & 8ull);
}

TEST(DualRail, IsXAndIsBinary) {
  Word64 a{};
  w_set(a, 0, Val::Zero);
  w_set(a, 1, Val::One);
  w_set(a, 2, Val::X);
  EXPECT_FALSE(w_is_x(a) & 1ull);
  EXPECT_FALSE(w_is_x(a) & 2ull);
  EXPECT_TRUE(w_is_x(a) & 4ull);
  EXPECT_TRUE(w_is_binary(a) & 1ull);
  EXPECT_TRUE(w_is_binary(a) & 2ull);
  EXPECT_FALSE(w_is_binary(a) & 4ull);
}

TEST(DualRail, Select) {
  const Word64 a = splat64(Val::Zero);
  const Word64 b = splat64(Val::One);
  const Word64 s = w_select(0xF0ull, b, a);
  EXPECT_EQ(w_get(s, 0), Val::Zero);
  EXPECT_EQ(w_get(s, 4), Val::One);
}

// --- packed gate state -----------------------------------------------------

TEST(PackedState, SetGetPinsAndOutput) {
  GateState s = 0;
  s = state_set(s, 0, Val::One);
  s = state_set(s, 5, Val::X);
  s = state_set(s, 15, Val::Zero);
  s = state_set_out(s, Val::One);
  EXPECT_EQ(state_get(s, 0), Val::One);
  EXPECT_EQ(state_get(s, 5), Val::X);
  EXPECT_EQ(state_get(s, 15), Val::Zero);
  EXPECT_EQ(state_out(s), Val::One);
}

TEST(PackedState, AllXInitialisesPinsAndOutput) {
  const GateState s = state_all_x(4);
  for (unsigned p = 0; p < 4; ++p) EXPECT_EQ(state_get(s, p), Val::X);
  EXPECT_EQ(state_out(s), Val::X);
}

TEST(PackedState, InputIndexMasksOutput) {
  GateState s = 0;
  s = state_set(s, 0, Val::One);
  s = state_set(s, 1, Val::X);
  s = state_set_out(s, Val::One);
  // index = pin1 pin0 = X(10) One(11) -> 0b1011
  EXPECT_EQ(state_input_index(s, 2), 0b1011u);
}

TEST(PackedState, InputMaskCoversOnlyPins) {
  const GateState m = input_mask(3);
  EXPECT_EQ(m, 0x3Full);
}

}  // namespace
}  // namespace cfs
