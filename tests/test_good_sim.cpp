// Good-machine simulator: functional behaviour on known circuits, event
// counting, fault injection (the serial baseline's machinery).
#include <gtest/gtest.h>

#include "gen/known_circuits.h"
#include "sim/good_sim.h"
#include "util/error.h"

namespace cfs {
namespace {

std::vector<Val> bits(std::initializer_list<int> v) {
  std::vector<Val> out;
  for (int b : v) out.push_back(b ? Val::One : Val::Zero);
  return out;
}

TEST(GoodSim, FullAdderTruthTable) {
  const Circuit c = make_full_adder();
  GoodSim sim(c);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int ci = 0; ci <= 1; ++ci) {
        sim.apply(bits({a, b, ci}));
        const int sum = a ^ b ^ ci;
        const int cout = (a & b) | (ci & (a ^ b));
        EXPECT_EQ(sim.output(0), sum ? Val::One : Val::Zero);
        EXPECT_EQ(sim.output(1), cout ? Val::One : Val::Zero);
      }
    }
  }
}

TEST(GoodSim, CounterCountsModulo8) {
  const Circuit c = make_counter(3);
  GoodSim sim(c, Val::Zero);
  for (int step = 1; step <= 10; ++step) {
    sim.apply(bits({1}));
    sim.clock();
    const int expect = step % 8;
    int got = 0;
    const auto q = sim.ff_values();
    for (int i = 0; i < 3; ++i) got |= (q[i] == Val::One ? 1 : 0) << i;
    EXPECT_EQ(got, expect) << "after " << step << " clocks";
  }
}

TEST(GoodSim, CounterHoldsWithoutEnable) {
  const Circuit c = make_counter(3);
  GoodSim sim(c, Val::Zero);
  sim.apply(bits({1}));
  sim.clock();
  sim.apply(bits({0}));
  sim.clock();
  const auto q = sim.ff_values();
  EXPECT_EQ(q[0], Val::One);
  EXPECT_EQ(q[1], Val::Zero);
}

TEST(GoodSim, ShiftRegisterShifts) {
  const Circuit c = make_shift_register(4);
  GoodSim sim(c, Val::Zero);
  const int pattern[] = {1, 0, 1, 1};
  for (int b : pattern) {
    sim.apply(bits({b}));
    sim.clock();
  }
  const auto q = sim.ff_values();
  // q0 holds the most recent bit, q3 the oldest.
  EXPECT_EQ(q[0], Val::One);
  EXPECT_EQ(q[1], Val::One);
  EXPECT_EQ(q[2], Val::Zero);
  EXPECT_EQ(q[3], Val::One);
}

TEST(GoodSim, XPropagatesUntilInitialised) {
  const Circuit c = make_counter(2);
  GoodSim sim(c);  // FFs start X
  sim.apply(bits({1}));
  const auto q = sim.ff_values();
  EXPECT_EQ(q[0], Val::X);
}

TEST(GoodSim, SeqDetectorDetects11) {
  const Circuit c = make_seq_detector();
  GoodSim sim(c, Val::Zero);
  const int in[] = {1, 1, 0, 1, 1};
  const int expect[] = {0, 1, 0, 0, 1};
  for (int i = 0; i < 5; ++i) {
    sim.apply(bits({in[i]}));
    EXPECT_EQ(sim.output(0), expect[i] ? Val::One : Val::Zero) << "step " << i;
    sim.clock();
  }
}

TEST(GoodSim, EventDrivenDoesNotRecomputeQuietLogic) {
  const Circuit c = make_counter(8);
  GoodSim sim(c, Val::Zero);
  sim.apply(bits({0}));
  const auto before = sim.events_processed();
  sim.apply(bits({0}));  // identical vector: no events
  EXPECT_EQ(sim.events_processed(), before);
}

TEST(GoodSim, WrongInputWidthThrows) {
  const Circuit c = make_full_adder();
  GoodSim sim(c);
  std::vector<Val> two(2, Val::Zero);
  EXPECT_THROW(sim.set_inputs(two), Error);
}

TEST(GoodSim, StuckOutputInjectionForcesValue) {
  const Circuit c = make_full_adder();
  GoodSim sim(c);
  const GateId sum = c.find("sum");
  sim.inject(sum, kOutPin, Val::One);
  sim.settle();
  sim.apply(bits({0, 0, 0}));
  EXPECT_EQ(sim.output(0), Val::One);  // sum forced
  EXPECT_EQ(sim.output(1), Val::Zero); // cout unaffected
}

TEST(GoodSim, StuckPinInjectionChangesFunction) {
  const Circuit c = make_full_adder();
  GoodSim sim(c);
  // Force pin 0 of gate g1 = AND(a, b) to 1: cout = b | (ab ^ cin)cin...
  const GateId g1 = c.find("g1");
  sim.inject(g1, 0, Val::One);
  sim.apply(bits({0, 1, 0}));
  // With the fault, g1 = 1&b = 1 -> cout = 1; fault-free cout would be 0.
  EXPECT_EQ(sim.output(1), Val::One);
}

TEST(GoodSim, ClearInjectionRestoresGoodBehaviour) {
  const Circuit c = make_full_adder();
  GoodSim sim(c);
  sim.inject(c.find("sum"), kOutPin, Val::One);
  sim.apply(bits({0, 0, 0}));
  ASSERT_EQ(sim.output(0), Val::One);
  sim.clear_injection();
  sim.reset();
  sim.apply(bits({0, 0, 0}));
  EXPECT_EQ(sim.output(0), Val::Zero);
}

TEST(GoodSim, DffOutputInjectionHoldsAcrossClocks) {
  const Circuit c = make_shift_register(3);
  GoodSim sim(c, Val::Zero);
  sim.inject(c.dffs()[1], kOutPin, Val::One);
  sim.reset(Val::Zero);
  for (int i = 0; i < 3; ++i) {
    sim.apply(bits({0}));
    sim.clock();
  }
  EXPECT_EQ(sim.ff_values()[1], Val::One);
  // The forced 1 shifts onward into stage 2.
  EXPECT_EQ(sim.ff_values()[2], Val::One);
}

TEST(GoodSim, DffDPinInjectionTakesEffectAtClock) {
  const Circuit c = make_shift_register(3);
  GoodSim sim(c, Val::Zero);
  sim.inject(c.dffs()[0], 0, Val::One);  // D pin of stage 0 stuck at 1
  sim.reset(Val::Zero);
  EXPECT_EQ(sim.ff_values()[0], Val::Zero);  // not yet clocked
  sim.apply(bits({0}));
  sim.clock();
  EXPECT_EQ(sim.ff_values()[0], Val::One);
}

TEST(GoodSim, S27MatchesHandComputedSequence) {
  // s27 from the all-zero state with inputs (G0,G1,G2,G3) = 0,0,0,0:
  // G14=1, G12=1, G8 = G14&G6 = 0, G15 = G12|G8 = 1, G16 = 0|0 = 0,
  // G9 = NAND(G16,G15) = 1, G11 = NOR(G5,G9) = 0, G17 = NOT(G11) = 1.
  const Circuit c = make_s27();
  GoodSim sim(c, Val::Zero);
  sim.apply(bits({0, 0, 0, 0}));
  EXPECT_EQ(sim.value(c.find("G14")), Val::One);
  EXPECT_EQ(sim.value(c.find("G8")), Val::Zero);
  EXPECT_EQ(sim.value(c.find("G9")), Val::One);
  EXPECT_EQ(sim.value(c.find("G11")), Val::Zero);
  EXPECT_EQ(sim.output(0), Val::One);  // G17
}

}  // namespace
}  // namespace cfs
