// Sharded multi-threaded simulation: the partition is a disjoint balanced
// cover, and ShardedSim produces bit-for-bit the single-engine detection
// status, coverage, and PO-mismatch observation stream for any thread
// count, across every CsimOptions variant, macro mode, and the transition
// model.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "core/concurrent_sim.h"
#include "core/sim_model.h"
#include "faults/partition.h"
#include "gen/circuit_gen.h"
#include "netlist/macro_extract.h"
#include "patterns/pattern.h"
#include "sim/sharded_sim.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace cfs {
namespace {

// ---------------------------------------------------------------------------
// FaultPartition
// ---------------------------------------------------------------------------

TEST(FaultPartition, EveryFaultInExactlyOneShard) {
  const FaultPartition part(101, 4);
  ASSERT_EQ(part.num_shards(), 4u);
  std::vector<int> seen(101, 0);
  for (unsigned s = 0; s < part.num_shards(); ++s) {
    for (std::uint32_t id : part.shard(s)) {
      ASSERT_LT(id, 101u);
      ++seen[id];
      EXPECT_EQ(part.shard_of(id), s);
    }
  }
  for (std::uint32_t id = 0; id < 101; ++id) {
    EXPECT_EQ(seen[id], 1) << "fault " << id;
  }
}

TEST(FaultPartition, ShardSizesBalanced) {
  for (unsigned k : {1u, 2u, 3u, 7u, 8u}) {
    const FaultPartition part(100, k);
    std::size_t mn = 100, mx = 0;
    for (unsigned s = 0; s < k; ++s) {
      mn = std::min(mn, part.shard(s).size());
      mx = std::max(mx, part.shard(s).size());
    }
    EXPECT_LE(mx - mn, 1u) << k << " shards";
  }
}

TEST(FaultPartition, ZeroShardsClampedToOne) {
  const FaultPartition part(10, 0);
  EXPECT_EQ(part.num_shards(), 1u);
  EXPECT_EQ(part.shard(0).size(), 10u);
}

TEST(FaultPartition, MergeReadsOwnerShard) {
  const FaultPartition part(9, 3);
  // Shard s marks its own faults Hard and poisons everyone else's slot.
  std::vector<std::vector<Detect>> local(3,
                                         std::vector<Detect>(9, Detect::None));
  for (unsigned s = 0; s < 3; ++s) {
    for (std::uint32_t id = 0; id < 9; ++id) {
      local[s][id] = part.shard_of(id) == s ? Detect::Hard : Detect::Potential;
    }
  }
  const std::vector<Detect> merged =
      part.merge({&local[0], &local[1], &local[2]});
  for (std::uint32_t id = 0; id < 9; ++id) {
    EXPECT_EQ(merged[id], Detect::Hard) << "fault " << id;
  }
}

TEST(FaultPartition, MergeRejectsWrongSizes) {
  const FaultPartition part(9, 2);
  const std::vector<Detect> ok(9, Detect::None), bad(8, Detect::None);
  EXPECT_THROW(part.merge({&ok}), Error);
  EXPECT_THROW(part.merge({&ok, &bad}), Error);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int sum = 0;  // no synchronisation needed: size-1 pools never spawn
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  std::atomic<int> n{0};
  pool.parallel_for(8, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 8);
}

// ---------------------------------------------------------------------------
// Thread-count invariance
// ---------------------------------------------------------------------------

Circuit make_test_circuit(std::uint64_t seed, unsigned gates = 24) {
  GenProfile gp;
  gp.name = "shard" + std::to_string(seed);
  gp.num_pis = 6;
  gp.num_pos = 4;
  gp.num_dffs = 8;
  gp.num_gates = gates;
  gp.seed = seed;
  return generate_circuit(gp);
}

// (split_lists, drop_detected) -- the paper's four engine configurations.
class ShardInvariance
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ShardInvariance, StatusIdenticalForAnyShardCount) {
  const auto [split, drop] = GetParam();
  CsimOptions opt;
  opt.split_lists = split;
  opt.drop_detected = drop;

  const Circuit c = make_test_circuit(901);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 160, 17,
                                          /*x_permille=*/100);

  for (const Val ff_init : {Val::Zero, Val::X}) {
    ConcurrentSim ref(c, u, opt);
    ref.reset(ff_init);
    for (std::size_t i = 0; i < p.size(); ++i) ref.apply_vector(p[i]);

    for (unsigned k : {1u, 2u, 4u, 8u}) {
      ShardedOptions sopt;
      sopt.num_threads = k;
      sopt.csim = opt;
      ShardedSim sim(c, u, sopt);
      sim.reset(ff_init);
      std::size_t newly = 0;
      for (std::size_t i = 0; i < p.size(); ++i) newly += sim.apply_vector(p[i]);
      EXPECT_EQ(sim.status(), ref.status()) << k << " shards";
      EXPECT_EQ(sim.coverage().hard, ref.coverage().hard);
      EXPECT_EQ(sim.coverage().potential, ref.coverage().potential);
      EXPECT_EQ(newly, ref.coverage().hard) << k << " shards";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ShardInvariance,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "split" : "combined") +
             (std::get<1>(info.param) ? "_drop" : "_keep");
    });

TEST(ShardedSim, TransitionModeInvariant) {
  const Circuit c = make_test_circuit(902);
  const FaultUniverse u = FaultUniverse::all_transition(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 120, 23);

  ConcurrentSim ref(c, u);
  ref.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) ref.apply_vector(p[i]);

  for (unsigned k : {1u, 2u, 4u, 8u}) {
    ShardedOptions sopt;
    sopt.num_threads = k;
    ShardedSim sim(c, u, sopt);
    sim.reset(Val::Zero);
    for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
    EXPECT_EQ(sim.status(), ref.status()) << k << " shards";
  }
}

TEST(ShardedSim, MacroModeInvariant) {
  const Circuit c = make_test_circuit(903, 40);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const MacroExtraction ext = extract_macros(c);
  const MacroFaultMap mm = map_faults_to_macros(c, ext, u);
  const PatternSet p = PatternSet::random(c.inputs().size(), 120, 29);

  ConcurrentSim ref(ext.circuit, u, CsimOptions{}, &mm);
  ref.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) ref.apply_vector(p[i]);

  const auto model = std::make_shared<SimModel>(ext.circuit, u, &mm);
  for (unsigned k : {2u, 5u}) {
    ShardedOptions sopt;
    sopt.num_threads = k;
    ShardedSim sim(model, sopt);
    sim.reset(Val::Zero);
    for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);
    EXPECT_EQ(sim.status(), ref.status()) << k << " shards";
  }
}

TEST(ShardedSim, CoarseRunMatchesLockstep) {
  const Circuit c = make_test_circuit(904);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TestSuite t;
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 60, 31));
  t.sequences().push_back(PatternSet::random(c.inputs().size(), 40, 37));

  ShardedOptions sopt;
  sopt.num_threads = 4;
  ShardedSim coarse(c, u, sopt);
  coarse.run(t);  // no observer: one fork-join for the whole suite

  ShardedSim lockstep(c, u, sopt);
  for (const PatternSet& seq : t.sequences()) {
    lockstep.reset();
    for (std::size_t i = 0; i < seq.size(); ++i) lockstep.apply_vector(seq[i]);
  }
  EXPECT_EQ(coarse.status(), lockstep.status());
}

TEST(ShardedSim, ObservationStreamMatchesSingleEngine) {
  const Circuit c = make_test_circuit(905);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 100, 41);
  using Event = std::tuple<std::size_t, std::uint32_t, std::uint32_t, bool>;

  CsimOptions opt;
  opt.drop_detected = false;  // repeats exercise the stream harder

  std::vector<Event> want;
  {
    ConcurrentSim ref(c, u, opt);
    std::size_t vec = 0;
    ref.set_detection_observer(
        [&](std::uint32_t fault, std::uint32_t po, bool hard) {
          want.emplace_back(vec, fault, po, hard);
        });
    ref.reset(Val::Zero);
    for (; vec < p.size(); ++vec) ref.apply_vector(p[vec]);
  }
  ASSERT_FALSE(want.empty());

  for (unsigned k : {1u, 3u, 8u}) {
    ShardedOptions sopt;
    sopt.num_threads = k;
    sopt.csim = opt;
    ShardedSim sim(c, u, sopt);
    std::vector<Event> got;
    std::size_t vec = 0;
    sim.set_detection_observer(
        [&](std::uint32_t fault, std::uint32_t po, bool hard) {
          got.emplace_back(vec, fault, po, hard);
        });
    sim.reset(Val::Zero);
    for (; vec < p.size(); ++vec) sim.apply_vector(p[vec]);
    EXPECT_EQ(got, want) << k << " shards";
  }
}

// ---------------------------------------------------------------------------
// Shared model and aggregated accounting
// ---------------------------------------------------------------------------

TEST(SimModel, SharedAcrossEnginesMatchesPrivateModels) {
  const Circuit c = make_test_circuit(906);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 80, 43);

  const auto model = std::make_shared<SimModel>(c, u);
  ConcurrentSim a(model), b(model);  // two engines, one table set
  ConcurrentSim lone(c, u);
  a.reset(Val::Zero);
  b.reset(Val::X);
  lone.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) {
    a.apply_vector(p[i]);
    b.apply_vector(p[i]);
    lone.apply_vector(p[i]);
  }
  EXPECT_EQ(a.status(), lone.status());
  a.validate();
  b.validate();
}

TEST(SimModel, RejectsMismatchedPartition) {
  const Circuit c = make_test_circuit(907);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const auto model = std::make_shared<SimModel>(c, u);
  const FaultPartition wrong(u.size() + 1, 2);
  EXPECT_THROW(ConcurrentSim(model, CsimOptions{}, &wrong, 0), Error);
  const FaultPartition part(u.size(), 2);
  EXPECT_THROW(ConcurrentSim(model, CsimOptions{}, &part, 2), Error);
}

TEST(ShardedSim, StatsAggregateAcrossShards) {
  const Circuit c = make_test_circuit(908);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 60, 47);

  ShardedOptions sopt;
  sopt.num_threads = 4;
  ShardedSim sim(c, u, sopt);
  sim.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);

  const SimStats st = sim.stats();
  ASSERT_EQ(st.per_engine.size(), 4u);
  EngineStats sum;
  for (const EngineStats& e : st.per_engine) {
    sum.gates_processed += e.gates_processed;
    sum.elements_evaluated += e.elements_evaluated;
    sum.peak_elements += e.peak_elements;
    sum.state_bytes += e.state_bytes;
    EXPECT_GT(e.gates_processed, 0u);
  }
  EXPECT_EQ(st.total.gates_processed, sum.gates_processed);
  EXPECT_EQ(st.total.elements_evaluated, sum.elements_evaluated);
  EXPECT_EQ(st.total.peak_elements, sum.peak_elements);
  EXPECT_EQ(st.total.state_bytes, sum.state_bytes);
  EXPECT_EQ(st.model_bytes, sim.model().bytes());
  EXPECT_EQ(st.circuit_bytes, c.bytes());
  EXPECT_EQ(sim.bytes(), sum.state_bytes + st.model_bytes);
}

TEST(ShardedSim, MemoryTableStaysTruthfulUnderShards) {
  const Circuit c = make_test_circuit(909);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const PatternSet p = PatternSet::random(c.inputs().size(), 40, 53);

  ShardedOptions sopt;
  sopt.num_threads = 3;
  ShardedSim sim(c, u, sopt);
  sim.reset(Val::Zero);
  for (std::size_t i = 0; i < p.size(); ++i) sim.apply_vector(p[i]);

  MemStats ms;
  sim.report_memory(ms);
  std::size_t pools = 0;
  for (unsigned s = 0; s < sim.num_shards(); ++s) {
    pools += sim.engine(s).pool_bytes();
  }
  std::size_t fault_elements = 0, total = 0;
  for (const auto& [name, bytes] : ms.categories()) {
    if (name == "fault_elements") fault_elements = bytes;
    total += bytes;
  }
  EXPECT_EQ(fault_elements, pools);
  EXPECT_EQ(total, sim.bytes() + c.bytes());
  EXPECT_EQ(ms.current(), total);
}

TEST(ShardedSim, ShardCountClampedToUniverse) {
  const Circuit c = make_test_circuit(910);
  FaultUniverse u;  // tiny universe: 2 faults
  u.add(Fault{FaultType::StuckAt, c.inputs()[0], kFaultOutPin, Val::One});
  u.add(Fault{FaultType::StuckAt, c.inputs()[1], kFaultOutPin, Val::Zero});
  ShardedOptions sopt;
  sopt.num_threads = 8;
  ShardedSim sim(c, u, sopt);
  EXPECT_EQ(sim.num_shards(), 2u);
}

}  // namespace
}  // namespace cfs
