// The cfsd service core, in-process: model cache hit/miss accounting,
// admission control (budget refusal, backpressure, deadline shedding) as
// structured errors that never kill the service, bounded update rings for
// slow watchers, cancel -> halted -> resume bit-identity, and full crash
// recovery -- a Service destroyed mid-campaign and rebuilt on the same
// state directory resumes and finishes with the digest of an uninterrupted
// run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include "faults/fault.h"
#include "gen/iscas_profiles.h"
#include "netlist/bench_parser.h"
#include "netlist/bench_writer.h"
#include "patterns/pattern.h"
#include "resil/campaign.h"
#include "resil/containment.h"
#include "svc/service.h"
#include "svc/wire.h"
#include "util/error.h"

namespace cfs {
namespace {

using svc::JsonValue;
using svc::Service;
using svc::ServiceConfig;
using svc::json_escape;
using svc::json_parse;

/// A guaranteed-fresh state directory: TempDir() persists across test
/// binary invocations, and a stale session dir would trigger crash
/// recovery inside a test that expects a pristine service.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::string bench_text(const char* profile) {
  return write_bench(make_benchmark(profile));
}

std::string suite_text(std::size_t inputs, std::size_t n1 = 40,
                       std::size_t n2 = 24) {
  TestSuite t;
  t.sequences().push_back(PatternSet::random(inputs, n1, 11));
  t.sequences().push_back(PatternSet::random(inputs, n2, 12));
  return t.to_text();
}

/// The digest an uninterrupted, in-process campaign produces for the same
/// (circuit text, suite text) pair the service runs -- the bit-identity
/// reference for every resume/recovery test below.
std::uint64_t direct_digest(const std::string& circuit,
                            const std::string& tests) {
  const Circuit c = parse_bench(circuit, "ref");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  const TestSuite t = TestSuite::parse(tests);
  resil::CampaignOptions opt;
  opt.sharded.csim.split_lists = true;  // the service always splits
  resil::CampaignRunner runner(c, u, t, opt);
  return runner.run().digest();
}

std::string open_request(const std::string& session,
                         const std::string& circuit,
                         const std::string& tests,
                         const std::string& extra = "") {
  return "{\"op\":\"open\",\"session\":\"" + session + "\",\"circuit\":\"" +
         json_escape(circuit) + "\",\"tests\":\"" + json_escape(tests) +
         "\"" + extra + "}";
}

JsonValue call(Service& s, const std::string& payload) {
  return json_parse(s.handle(payload));
}

std::string error_code(const JsonValue& r) {
  return r.find("ok")->as_bool() ? "" : r.req_string("error");
}

/// Poll status until the session leaves queued/running (or patience runs
/// out -- 20 s, far past any campaign here).
JsonValue wait_terminal(Service& s, const std::string& name) {
  JsonValue r;
  for (int i = 0; i < 4000; ++i) {
    r = call(s, "{\"op\":\"status\",\"session\":\"" + name + "\"}");
    const std::string st = r.req_string("state");
    if (st != "queued" && st != "running") return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return r;
}

ServiceConfig base_config(const std::string& dir) {
  ServiceConfig cfg;
  cfg.state_dir = dir;
  cfg.checkpoint_every = 4;
  cfg.sample_every = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// Happy path + model cache
// ---------------------------------------------------------------------------

TEST(SvcSessions, RunsToDoneAndDigestMatchesDirectCampaign) {
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4);
  Service s(base_config(fresh_dir("svc_done")));

  const JsonValue opened = call(s, open_request("one", circuit, tests));
  ASSERT_TRUE(opened.find("ok")->as_bool()) << s.handle("{\"op\":\"stats\"}");

  const JsonValue done = wait_terminal(s, "one");
  ASSERT_EQ(done.req_string("state"), "done");
  EXPECT_GT(done.req_u64("vectors"), 0u);
  EXPECT_GT(done.req_u64("hard"), 0u);
  EXPECT_GT(done.req_u64("total"), 0u);

  char ref[32];
  std::snprintf(ref, sizeof ref, "%016llx",
                static_cast<unsigned long long>(direct_digest(circuit, tests)));
  EXPECT_EQ(done.req_string("digest"), ref);

  // Watching from the beginning yields sequenced updates ending terminal.
  const JsonValue w = call(
      s, "{\"op\":\"watch\",\"session\":\"one\",\"after\":0,\"wait_ms\":10}");
  ASSERT_TRUE(w.find("ok")->as_bool());
  EXPECT_EQ(w.req_string("state"), "done");
  EXPECT_FALSE(w.find("updates")->as_array().empty());
}

TEST(SvcSessions, ModelCacheServesRepeatCircuitsWithoutReparsing) {
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4);
  Service s(base_config(fresh_dir("svc_cache")));

  ASSERT_TRUE(
      call(s, open_request("a", circuit, tests)).find("ok")->as_bool());
  ASSERT_EQ(wait_terminal(s, "a").req_string("state"), "done");
  ASSERT_TRUE(
      call(s, open_request("b", circuit, tests)).find("ok")->as_bool());
  ASSERT_EQ(wait_terminal(s, "b").req_string("state"), "done");

  const JsonValue stats = call(s, "{\"op\":\"stats\"}");
  const JsonValue* svc = stats.find("svc");
  EXPECT_EQ(svc->req_u64("model_cache_misses"), 1u);
  EXPECT_GE(svc->req_u64("model_cache_hits"), 1u);
  EXPECT_EQ(svc->req_u64("completed"), 2u);
  EXPECT_EQ(svc->req_u64("elements_admitted"), 0u);  // budget released
}

// ---------------------------------------------------------------------------
// Admission control: every refusal is structured, the service survives all
// ---------------------------------------------------------------------------

TEST(SvcAdmission, OverBudgetSessionRefusedStructurallyAndServiceSurvives) {
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4, 10, 6);
  ServiceConfig cfg = base_config(fresh_dir("svc_admit"));
  cfg.global_elements = 1000;
  Service s(cfg);

  const JsonValue refused = call(
      s, open_request("giant", circuit, tests, ",\"elements\":4000"));
  EXPECT_EQ(error_code(refused), "admission_refused");

  // The refusal is bookkept, nothing leaked, and a session that fits the
  // budget still runs to completion afterwards.
  const JsonValue stats = call(s, "{\"op\":\"stats\"}");
  EXPECT_EQ(stats.find("svc")->req_u64("admission_refused"), 1u);
  EXPECT_EQ(stats.find("svc")->req_u64("sessions"), 0u);
  ASSERT_TRUE(
      call(s, open_request("fits", circuit, tests, ",\"elements\":800"))
          .find("ok")
          ->as_bool());
  EXPECT_EQ(wait_terminal(s, "fits").req_string("state"), "done");
}

TEST(SvcAdmission, FullQueueRefusesWithBackpressure) {
  ServiceConfig cfg = base_config(fresh_dir("svc_bp"));
  cfg.queue_depth = 0;  // every fresh open finds the queue "full"
  Service s(cfg);
  const JsonValue r =
      call(s, open_request("bp", bench_text("s27"), suite_text(4, 6, 4)));
  EXPECT_EQ(error_code(r), "backpressure");
  EXPECT_EQ(call(s, "{\"op\":\"stats\"}")
                .find("svc")
                ->req_u64("backpressure_rejected"),
            1u);
  EXPECT_TRUE(call(s, "{\"op\":\"hello\"}").find("ok")->as_bool());
}

TEST(SvcAdmission, QueuedPastDeadlineIsShedWhileAdmittedWorkContinues) {
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4);
  ServiceConfig cfg = base_config(fresh_dir("svc_shed"));
  cfg.max_sessions = 1;
  // Pin the only slot: the first session's shard stalls 700 ms at vector 0.
  resil::FaultInjector injector;
  for (const auto& spec : resil::FaultInjector::parse("stall:0:0:700:1")) {
    injector.add(spec);
  }
  cfg.injector = &injector;
  Service s(cfg);

  ASSERT_TRUE(
      call(s, open_request("slow", circuit, tests)).find("ok")->as_bool());
  // The slot is taken for ~700 ms; a 40 ms waiter must be shed.
  const JsonValue shed = call(
      s, open_request("impatient", circuit, tests, ",\"wait_ms\":40"));
  EXPECT_EQ(error_code(shed), "deadline_exceeded");
  EXPECT_EQ(call(s, "{\"op\":\"stats\"}").find("svc")->req_u64(
                "deadline_shed"),
            1u);

  // The pinned session still finishes, and the shed client's retry (the
  // stall spec is spent) now runs immediately.
  EXPECT_EQ(wait_terminal(s, "slow").req_string("state"), "done");
  ASSERT_TRUE(
      call(s, open_request("impatient", circuit, tests)).find("ok")->as_bool());
  EXPECT_EQ(wait_terminal(s, "impatient").req_string("state"), "done");
}

TEST(SvcAdmission, AttachWithDifferentSpecIsAMismatch) {
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4, 10, 6);
  Service s(base_config(fresh_dir("svc_mismatch")));
  ASSERT_TRUE(
      call(s, open_request("x", circuit, tests)).find("ok")->as_bool());
  ASSERT_EQ(wait_terminal(s, "x").req_string("state"), "done");

  const JsonValue r =
      call(s, open_request("x", circuit, suite_text(4, 11, 6)));
  EXPECT_EQ(error_code(r), "spec_mismatch");
  // Attaching with the SAME spec is fine and returns the finished result.
  const JsonValue again = call(s, open_request("x", circuit, tests));
  ASSERT_TRUE(again.find("ok")->as_bool());
  EXPECT_EQ(again.req_string("state"), "done");
}

// ---------------------------------------------------------------------------
// Bounded update ring
// ---------------------------------------------------------------------------

TEST(SvcUpdates, SlowWatcherSkipsAheadInsteadOfBlockingTheCampaign) {
  ServiceConfig cfg = base_config(fresh_dir("svc_ring"));
  cfg.update_ring = 2;  // tiny ring, sampling every vector
  Service s(cfg);
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4);  // 64 vectors >> 2 ring slots
  ASSERT_TRUE(
      call(s, open_request("ring", circuit, tests)).find("ok")->as_bool());
  ASSERT_EQ(wait_terminal(s, "ring").req_string("state"), "done");

  const JsonValue w = call(
      s, "{\"op\":\"watch\",\"session\":\"ring\",\"after\":0,\"wait_ms\":10}");
  ASSERT_TRUE(w.find("ok")->as_bool());
  EXPECT_GT(w.req_u64("skipped"), 0u);
  EXPECT_LE(w.find("updates")->as_array().size(), 2u);
  EXPECT_GT(
      call(s, "{\"op\":\"stats\"}").find("svc")->req_u64("updates_shed"), 0u);
}

// ---------------------------------------------------------------------------
// Cancel -> halted -> resume, and crash recovery
// ---------------------------------------------------------------------------

TEST(SvcLifecycle, CancelHaltsResumablyAndResumeKeepsTheDigest) {
  const std::string circuit = bench_text("s298");
  const std::string tests = suite_text(3);
  ServiceConfig cfg = base_config(fresh_dir("svc_cancel"));
  // A 400 ms stall at vector 2 guarantees the cancel lands mid-campaign.
  resil::FaultInjector injector;
  for (const auto& spec : resil::FaultInjector::parse("stall:0:2:400:1")) {
    injector.add(spec);
  }
  cfg.injector = &injector;
  Service s(cfg);

  ASSERT_TRUE(
      call(s, open_request("c", circuit, tests)).find("ok")->as_bool());
  ASSERT_TRUE(call(s, "{\"op\":\"cancel\",\"session\":\"c\"}")
                  .find("ok")
                  ->as_bool());
  const JsonValue halted = wait_terminal(s, "c");
  ASSERT_EQ(halted.req_string("state"), "halted");
  EXPECT_LT(halted.req_u64("vectors"), 64u);  // genuinely interrupted

  // Re-opening the same spec re-admits and resumes from the checkpoint.
  const JsonValue reopened = call(s, open_request("c", circuit, tests));
  ASSERT_TRUE(reopened.find("ok")->as_bool());
  const JsonValue done = wait_terminal(s, "c");
  ASSERT_EQ(done.req_string("state"), "done");
  EXPECT_TRUE(done.find("resumed")->as_bool());

  char ref[32];
  std::snprintf(ref, sizeof ref, "%016llx",
                static_cast<unsigned long long>(direct_digest(circuit, tests)));
  EXPECT_EQ(done.req_string("digest"), ref);

  const JsonValue stats = call(s, "{\"op\":\"stats\"}");
  EXPECT_GE(stats.find("svc")->req_u64("halted"), 1u);
  EXPECT_GE(stats.find("svc")->req_u64("attached"), 1u);
}

TEST(SvcLifecycle, ServiceRestartRecoversHaltedSessionBitIdentically) {
  const std::string dir = fresh_dir("svc_restart");
  const std::string circuit = bench_text("s298");
  const std::string tests = suite_text(3);

  // First incarnation: admit, interrupt mid-campaign, shut down.  The
  // session directory (manifest + spec + checkpoint) stays behind.
  {
    ServiceConfig cfg = base_config(dir);
    resil::FaultInjector injector;
    for (const auto& spec : resil::FaultInjector::parse("stall:0:2:400:1")) {
      injector.add(spec);
    }
    cfg.injector = &injector;
    Service first(cfg);
    ASSERT_TRUE(
        call(first, open_request("r", circuit, tests)).find("ok")->as_bool());
    ASSERT_TRUE(call(first, "{\"op\":\"cancel\",\"session\":\"r\"}")
                    .find("ok")
                    ->as_bool());
    ASSERT_EQ(wait_terminal(first, "r").req_string("state"), "halted");
  }

  // Second incarnation on the same state dir: recovery re-admits the
  // session without any client involvement and finishes it.
  {
    Service second(base_config(dir));
    const JsonValue done = wait_terminal(second, "r");
    ASSERT_EQ(done.req_string("state"), "done");
    EXPECT_TRUE(done.find("resumed")->as_bool());
    char ref[32];
    std::snprintf(
        ref, sizeof ref, "%016llx",
        static_cast<unsigned long long>(direct_digest(circuit, tests)));
    EXPECT_EQ(done.req_string("digest"), ref);
    EXPECT_EQ(call(second, "{\"op\":\"stats\"}").find("svc")->req_u64(
                  "resumed"),
              1u);
  }

  // Third incarnation: the finished result is served from result.json --
  // nothing re-runs, the digest is still queryable.
  {
    Service third(base_config(dir));
    const JsonValue done =
        call(third, "{\"op\":\"status\",\"session\":\"r\"}");
    ASSERT_EQ(done.req_string("state"), "done");
    char ref[32];
    std::snprintf(
        ref, sizeof ref, "%016llx",
        static_cast<unsigned long long>(direct_digest(circuit, tests)));
    EXPECT_EQ(done.req_string("digest"), ref);
    EXPECT_EQ(
        call(third, "{\"op\":\"stats\"}").find("svc")->req_u64("resumed"),
        0u);
  }
}

TEST(SvcLifecycle, ShutdownDrainsThenRefusesNewWorkStructurally) {
  const std::string circuit = bench_text("s27");
  const std::string tests = suite_text(4, 10, 6);
  Service s(base_config(fresh_dir("svc_drain")));
  ASSERT_TRUE(
      call(s, open_request("d", circuit, tests)).find("ok")->as_bool());
  ASSERT_TRUE(
      call(s, "{\"op\":\"shutdown\"}").find("ok")->as_bool());
  EXPECT_TRUE(s.draining());

  // Status and stats still answer; open and cancel refuse with `draining`.
  EXPECT_TRUE(call(s, "{\"op\":\"status\",\"session\":\"d\"}")
                  .find("ok")
                  ->as_bool());
  EXPECT_EQ(error_code(call(s, open_request("late", circuit, tests))),
            "draining");
  EXPECT_EQ(error_code(call(s, "{\"op\":\"cancel\",\"session\":\"d\"}")),
            "draining");
}

// ---------------------------------------------------------------------------
// Concurrent sessions stay isolated
// ---------------------------------------------------------------------------

TEST(SvcIsolation, InterleavedSessionsKeepIndependentResults) {
  const std::string c27 = bench_text("s27");
  const std::string t27 = suite_text(4);
  const std::string c298 = bench_text("s298");
  const std::string t298 = suite_text(3);
  ServiceConfig cfg = base_config(fresh_dir("svc_iso"));
  cfg.max_sessions = 4;
  Service s(cfg);

  ASSERT_TRUE(call(s, open_request("alpha", c27, t27, ",\"threads\":2"))
                  .find("ok")
                  ->as_bool());
  ASSERT_TRUE(call(s, open_request("beta", c298, t298, ",\"batch\":8"))
                  .find("ok")
                  ->as_bool());
  const JsonValue da = wait_terminal(s, "alpha");
  const JsonValue db = wait_terminal(s, "beta");
  ASSERT_EQ(da.req_string("state"), "done");
  ASSERT_EQ(db.req_string("state"), "done");

  // Interleave status reads: each response carries its own session's
  // identity and digest, never the other's.
  for (int i = 0; i < 10; ++i) {
    const JsonValue ra =
        call(s, "{\"op\":\"status\",\"session\":\"alpha\"}");
    const JsonValue rb = call(s, "{\"op\":\"status\",\"session\":\"beta\"}");
    EXPECT_EQ(ra.req_string("session"), "alpha");
    EXPECT_EQ(rb.req_string("session"), "beta");
    EXPECT_EQ(ra.req_string("digest"), da.req_string("digest"));
    EXPECT_EQ(rb.req_string("digest"), db.req_string("digest"));
  }
  EXPECT_NE(da.req_string("digest"), db.req_string("digest"));

  // Thread/batch knobs never change results: alpha's digest equals the
  // single-threaded direct reference, beta's likewise (PR 2/3 invariants
  // carried through the service layer).
  char ref[32];
  std::snprintf(ref, sizeof ref, "%016llx",
                static_cast<unsigned long long>(direct_digest(c27, t27)));
  EXPECT_EQ(da.req_string("digest"), ref);
  std::snprintf(ref, sizeof ref, "%016llx",
                static_cast<unsigned long long>(direct_digest(c298, t298)));
  EXPECT_EQ(db.req_string("digest"), ref);
}

}  // namespace
}  // namespace cfs
