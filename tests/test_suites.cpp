// Multi-sequence (restart) semantics across engines: every engine must
// merge detections across sequences identically.
#include <gtest/gtest.h>

#include "baseline/proofs_sim.h"
#include "baseline/serial_sim.h"
#include "core/concurrent_sim.h"
#include "gen/circuit_gen.h"
#include "gen/iscas_profiles.h"
#include "gen/known_circuits.h"
#include "harness/runner.h"
#include "patterns/pattern.h"

namespace cfs {
namespace {

TestSuite random_suite(std::size_t inputs, std::size_t seqs,
                       std::size_t len, std::uint64_t seed,
                       unsigned x_permille) {
  TestSuite t;
  for (std::size_t s = 0; s < seqs; ++s) {
    t.sequences().push_back(
        PatternSet::random(inputs, len, seed + s * 131, x_permille));
  }
  return t;
}

TEST(Suites, EnginesAgreeAcrossRestarts) {
  for (std::uint64_t cseed : {801u, 802u}) {
    GenProfile gp;
    gp.name = "suite" + std::to_string(cseed);
    gp.num_pis = 5;
    gp.num_pos = 4;
    gp.num_dffs = 7;
    gp.num_gates = 110;
    gp.seed = cseed;
    const Circuit c = generate_circuit(gp);
    const FaultUniverse u = FaultUniverse::all_stuck_at(c);
    const TestSuite t = random_suite(5, 3, 25, cseed + 7, 100);

    SerialOptions so;
    so.ff_init = Val::X;
    const SerialResult ground = serial_fault_sim(c, u, t, so);

    const RunResult mv = run_csim(c, u, t, CsimVariant::MV, Val::X);
    const RunResult pr = run_proofs(c, u, t, Val::X);
    ASSERT_EQ(summarize(ground.status).hard, mv.cov.hard) << cseed;
    ASSERT_EQ(summarize(ground.status).hard, pr.cov.hard) << cseed;
    ASSERT_EQ(summarize(ground.status).potential, mv.cov.potential) << cseed;
  }
}

TEST(Suites, RestartClearsStateButKeepsDetections) {
  // A fault detected in sequence 1 stays detected after the reset; the
  // machine state itself starts over.
  const Circuit c = make_shift_register(3);
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  ConcurrentSim sim(c, u);
  sim.reset(Val::Zero);
  std::vector<Val> one{Val::One}, zero{Val::Zero};
  for (int i = 0; i < 8; ++i) sim.apply_vector(i % 2 ? one : zero);
  const std::size_t detected = sim.coverage().hard;
  ASSERT_GT(detected, 0u);
  sim.reset(Val::Zero);
  EXPECT_EQ(sim.coverage().hard, detected);
  for (GateId q : c.dffs()) EXPECT_EQ(sim.good_value(q), Val::Zero);
  EXPECT_NO_THROW(sim.validate());
}

TEST(Suites, SequencesAreOrderIndependentForCoverage) {
  // With per-sequence resets, total hard coverage is the union of the
  // sequences' individual coverages -- independent of application order.
  const Circuit c = make_benchmark("s298");
  const FaultUniverse u = FaultUniverse::all_stuck_at(c);
  TestSuite ab = random_suite(3, 2, 40, 5, 0);
  TestSuite ba;
  ba.sequences() = {ab.sequences()[1], ab.sequences()[0]};
  const RunResult r1 = run_csim(c, u, ab, CsimVariant::V, Val::Zero);
  const RunResult r2 = run_csim(c, u, ba, CsimVariant::V, Val::Zero);
  EXPECT_EQ(r1.cov.hard, r2.cov.hard);
}

}  // namespace
}  // namespace cfs
