#!/bin/bash
# Regenerate every table and ablation into results/ (full scale by default).
#
#   --quick   CI-sized run: tiny circuit suite, short micro-kernel times,
#             outputs under results/quick/ so checked-in full-scale results
#             are not clobbered.
#   --json    additionally distill the perf-trajectory baseline
#             results/BENCH_PR5.json (micro_kernels + table2_circuits +
#             scaling_threads summary) -- the file future PRs and the
#             perf-smoke CI job diff against via tools/check_bench_regression.py.
set -e
cd "$(dirname "$0")"

QUICK=0
EMIT_JSON=0
for arg in "$@"; do
  case $arg in
    --quick) QUICK=1 ;;
    --json) EMIT_JSON=1 ;;
    *) echo "usage: $0 [--quick] [--json]" >&2; exit 2 ;;
  esac
done

if [ "$QUICK" = 1 ]; then
  export CFS_BENCH_SCALE=${CFS_BENCH_SCALE:-tiny}
  MICRO_MIN_TIME=0.05
  OUTDIR=results/quick
else
  export CFS_BENCH_SCALE=${CFS_BENCH_SCALE:-full}
  MICRO_MIN_TIME=0.2
  OUTDIR=results
fi
mkdir -p "$OUTDIR"

for b in table2_circuits table3_deterministic table4_deterministic2 \
         table5_random table6_transition ablation_macro ablation_split \
         ablation_dropping ablation_collapse coverage_curve \
         scaling_threads scaling_rebalance; do
  echo "== $b =="
  extra=""
  case $b in
    # These also emit machine-readable $OUTDIR/*.json siblings.
    table2_circuits|scaling_threads|coverage_curve) extra="--json=$OUTDIR/$b.json" ;;
    # Static-vs-dynamic partitioning baseline; gated by
    # tools/check_scaling_gate.py (core-count-guarded in CI).
    scaling_rebalance) extra="--json=$OUTDIR/BENCH_PR8_scaling.json" ;;
  esac
  ./build/bench/$b $extra | tee "$OUTDIR/$b.txt"
done
python3 tools/check_scaling_gate.py "$OUTDIR/BENCH_PR8_scaling.json"
# A single-core host cannot exercise the wall-clock speedup assertion the
# gate guards (the gate warns on stderr and skips it); say so here too, so
# a green run on a laptop VM is not mistaken for scaling evidence.
if [ "$(nproc 2>/dev/null || echo 1)" -le 1 ]; then
  echo "WARNING: single-core host -- the scaling gate's wall-clock speedup" \
       "assertion was SKIPPED, not passed; regenerate on a multicore host" >&2
fi
./build/bench/micro_kernels --benchmark_min_time=$MICRO_MIN_TIME \
  --json="$OUTDIR/micro_kernels.json" | tee "$OUTDIR/micro_kernels.txt"

# SIMD kernel roofline: every ISA kernel table this build + host carries,
# timed in one process, distilled into $OUTDIR/ROOFLINE_PR10.json.  The
# same-process scalar-vs-vector speedups are the drift-free perf evidence;
# the gate requires the bitmap sweep kernel (find_nonzero) to hold its
# vector win (see DESIGN.md section 16 for why only that kernel is gated).
./build/bench/micro_simd --benchmark_min_time=$MICRO_MIN_TIME \
  --json="$OUTDIR/micro_simd.json" | tee "$OUTDIR/micro_simd.txt"
python3 tools/make_roofline.py \
  --micro-simd "$OUTDIR/micro_simd.json" \
  --micro-kernels "$OUTDIR/micro_kernels.json" \
  --baseline results/BENCH_PR5.json \
  --gate BM_SimdFindNonzero --min-speedup 1.5 \
  --out "$OUTDIR/ROOFLINE_PR10.json"

if [ "$EMIT_JSON" = 1 ]; then
  python3 tools/make_bench_baseline.py \
    --micro "$OUTDIR/micro_kernels.json" \
    --table2 "$OUTDIR/table2_circuits.json" \
    --scaling "$OUTDIR/scaling_threads.json" \
    --scale "$CFS_BENCH_SCALE" \
    --out "$OUTDIR/BENCH_PR5.json"
  echo "wrote $OUTDIR/BENCH_PR5.json"
fi
