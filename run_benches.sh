#!/bin/bash
# Regenerate every table and ablation at full scale into results/.
set -e
cd "$(dirname "$0")"
export CFS_BENCH_SCALE=${CFS_BENCH_SCALE:-full}
for b in table2_circuits table3_deterministic table4_deterministic2 \
         table5_random table6_transition ablation_macro ablation_split \
         ablation_dropping ablation_collapse coverage_curve \
         scaling_threads; do
  echo "== $b =="
  extra=""
  case $b in
    # These two also emit machine-readable results/*.json siblings.
    table2_circuits|scaling_threads) extra="--json=results/$b.json" ;;
  esac
  ./build/bench/$b $extra | tee results/$b.txt
done
./build/bench/micro_kernels --benchmark_min_time=0.2 \
  --json=results/micro_kernels.json | tee results/micro_kernels.txt
