#!/usr/bin/env python3
"""Gate results/BENCH_PR8_scaling.json: static vs dynamic partitioning.

Validates the scaling_rebalance bench output (see bench/scaling_rebalance.cpp
for the two metrics):

  always      -- structural shape: static+dynamic rows for each shard count,
                 every row the same circuit/vectors, and *identical coverage*
                 between static and dynamic at every shard count (rebalancing
                 must never change what is detected).
  always      -- the dynamic critical path (summed slowest-shard latency, the
                 host-independent multicore wall-clock model) is no worse
                 than static beyond --cp-tolerance at every shard count >= 2.
  multicore   -- dynamic wall-clock beats static at some shard count >= 2.
                 SKIPPED (with a notice, exit 0) when the rows were captured
                 on a single-core host (hw_threads == 1) or the current host
                 has a single core: shards then run sequentially, wall-clock
                 measures total work, and a repartition is pure overhead --
                 the assertion would test the scheduler, not the rebalancer.

Usage: check_scaling_gate.py BENCH_PR8_scaling.json
       [--cp-tolerance F] [--wall-tolerance F]

Stdlib only; exits 0 on pass/skip, 1 on violation, 2 on usage/shape errors.
"""
import argparse
import json
import os
import sys


def fail(msg):
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def main(argv):
    ap = argparse.ArgumentParser(
        description="gate the static-vs-dynamic scaling baseline")
    ap.add_argument("baseline", help="scaling_rebalance --json output")
    ap.add_argument("--cp-tolerance", type=float, default=0.10,
                    help="allowed fractional critical-path regression of "
                         "dynamic vs static (default 0.10)")
    ap.add_argument("--wall-tolerance", type=float, default=0.0,
                    help="slack on the multicore wall-clock win "
                         "(default 0.0: dynamic must strictly beat static)")
    args = ap.parse_args(argv[1:])

    with open(args.baseline) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        print(f"FAIL {args.baseline}: no rows", file=sys.stderr)
        return 2

    by_shards = {}
    for r in rows:
        key = (r["shards"], r["mode"])
        if key in by_shards:
            return fail(f"duplicate row for shards={key[0]} mode={key[1]}")
        by_shards[key] = r
    shard_counts = sorted({r["shards"] for r in rows})
    for k in shard_counts:
        for mode in ("static", "dynamic"):
            if (k, mode) not in by_shards:
                return fail(f"missing {mode} row for shards={k}")

    circuits = {r["circuit"] for r in rows}
    vectors = {r["vectors"] for r in rows}
    if len(circuits) != 1 or len(vectors) != 1:
        return fail(f"rows mix circuits {circuits} / vectors {vectors}")

    rc = 0
    for k in shard_counts:
        st, dy = by_shards[(k, "static")], by_shards[(k, "dynamic")]
        if (st["hard"], st["coverage_pct"]) != (dy["hard"],
                                                dy["coverage_pct"]):
            rc = fail(f"shards={k}: dynamic coverage {dy['hard']} differs "
                      f"from static {st['hard']} -- rebalancing changed "
                      f"the detected set")
        if k >= 2:
            limit = st["critical_path_s"] * (1.0 + args.cp_tolerance)
            if dy["critical_path_s"] > limit:
                rc = fail(f"shards={k}: dynamic critical path "
                          f"{dy['critical_path_s']:.3f}s exceeds static "
                          f"{st['critical_path_s']:.3f}s by more than "
                          f"{args.cp_tolerance:.0%}")

    # Core-count guard: the wall-clock assertion needs real parallelism
    # both when the baseline was captured and (for regenerated baselines
    # compared in place) on the host judging it.  The capture host's core
    # count is recorded in the baseline itself (doc-level host_hw_threads
    # since PR 9, per-row hw_threads before that).
    baseline_hw = doc.get("host_hw_threads",
                          min(r.get("hw_threads", 1) for r in rows))
    host_hw = os.cpu_count() or 1
    if baseline_hw <= 1 or host_hw <= 1:
        # Loud, on stderr, and impossible to mistake for a pass: a skipped
        # assertion is missing evidence, not a green check.
        print(f"WARNING: wall-clock speedup assertion SKIPPED, not passed: "
              f"baseline captured on {baseline_hw} hw thread(s), host has "
              f"{host_hw} -- single-core runs serialize the shards, so "
              f"wall-clock cannot show the rebalancing win (critical-path "
              f"and coverage checks above still enforced); re-run on a "
              f"multicore host to exercise the speedup gate",
              file=sys.stderr)
    else:
        best = None
        for k in shard_counts:
            if k < 2:
                continue
            st, dy = by_shards[(k, "static")], by_shards[(k, "dynamic")]
            ratio = st["cpu_s"] / dy["cpu_s"]
            if best is None or ratio > best[1]:
                best = (k, ratio)
        if best is None or best[1] < 1.0 - args.wall_tolerance:
            rc = fail(f"dynamic never beats static wall-clock at >= 2 "
                      f"shards (best ratio "
                      f"{best[1]:.2f} at {best[0]} shards)" if best
                      else "no rows with >= 2 shards")
        else:
            print(f"OK wall-clock: dynamic beats static {best[1]:.2f}x "
                  f"at {best[0]} shards")

    if rc == 0:
        print(f"OK {args.baseline}: {len(shard_counts)} shard counts, "
              f"coverage identical, dynamic critical path within "
              f"{args.cp_tolerance:.0%} of static")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
