#!/usr/bin/env python3
"""Fail on micro-kernel perf regressions against a checked-in baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--tolerance 0.20]
                              [--bench NAME ...]

CURRENT.json is a fresh google-benchmark JSON run (micro_kernels --json=...);
BASELINE.json is the distilled results/BENCH_PR5.json (or another raw
google-benchmark JSON -- both shapes are accepted).  A benchmark regresses
when its real_time exceeds the baseline's by more than the tolerance
(default 20%).  Benchmarks absent from either side are reported and skipped
unless explicitly requested with --bench, in which case they fail the run.
Standard library only.
"""
import argparse
import json
import sys


def extract(doc):
    """name -> real_time, from either a raw google-benchmark JSON or a
    distilled BENCH_PR5 baseline."""
    if "micro_kernels" in doc:  # distilled baseline
        return {k: v["real_time"] for k, v in doc["micro_kernels"].items()}
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b["real_time"]
    return out


def num_cpus(doc):
    """Host core count, from either document shape; None if unrecorded."""
    for block in (doc.get("context"), doc.get("host"),
                  doc.get("host_context")):
        if isinstance(block, dict) and block.get("num_cpus"):
            return block["num_cpus"]
    return None


def warn_host_mismatch(cur_doc, base_doc):
    """Timings only transfer between comparable hosts: a core-count
    mismatch between the run and the baseline does not fail the gate, but
    it is called out so a surprise ratio can be read correctly."""
    cur, base = num_cpus(cur_doc), num_cpus(base_doc)
    if cur is not None and base is not None and cur != base:
        print(f"warning: host core-count mismatch -- current run on "
              f"{cur} cpus, baseline recorded on {base}; timing ratios "
              f"may reflect the machine, not the code", file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--bench", action="append", default=[],
                    help="benchmark name that must be present and pass; "
                         "repeatable.  Without it, every common name is "
                         "checked.")
    args = ap.parse_args()

    with open(args.current) as f:
        cur_doc = json.load(f)
    with open(args.baseline) as f:
        base_doc = json.load(f)
    cur = extract(cur_doc)
    base = extract(base_doc)
    warn_host_mismatch(cur_doc, base_doc)

    names = args.bench if args.bench else sorted(set(cur) & set(base))
    failures = []
    for name in names:
        if name not in cur or name not in base:
            failures.append(f"{name}: missing from "
                            f"{'current' if name not in cur else 'baseline'}")
            continue
        ratio = cur[name] / base[name]
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(f"{name}: {ratio:.3f}x baseline real_time "
                            f"(tolerance {1.0 + args.tolerance:.2f}x)")
        print(f"{name}: current {cur[name]:.0f} vs baseline "
              f"{base[name]:.0f} ({ratio:.3f}x) {verdict}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print(f"\n{len(names)} benchmark(s) within "
          f"{args.tolerance:.0%} of baseline")


if __name__ == "__main__":
    main()
