#!/usr/bin/env python3
"""Fail on micro-kernel perf regressions against a checked-in baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--tolerance 0.20]
                              [--bench NAME ...] [--min-speedup R]

CURRENT.json is a fresh google-benchmark JSON run (micro_kernels --json=...);
BASELINE.json is the distilled results/BENCH_PR5.json (or another raw
google-benchmark JSON -- both shapes are accepted).  A benchmark regresses
when its real_time exceeds the baseline's by more than the tolerance
(default 20%).  --min-speedup R additionally requires
baseline_real_time / current_real_time >= R for every checked benchmark
(a speedup gate on top of the regression gate).  Benchmarks absent from
either side are reported and skipped unless explicitly requested with
--bench, in which case they fail the run.

Host comparability is checked loudly but never fails the gate: a missing
host descriptor on either side, a core-count mismatch, or a vector-ISA
mismatch each print a warning so a surprise ratio can be read correctly --
timing ratios across different hosts or kernel sets reflect the machine,
not the code.  Standard library only.
"""
import argparse
import json
import sys


def extract(doc):
    """name -> real_time, from either a raw google-benchmark JSON or a
    distilled BENCH_PR5 baseline."""
    if "micro_kernels" in doc:  # distilled baseline
        return {k: v["real_time"] for k, v in doc["micro_kernels"].items()}
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b["real_time"]
    return out


def num_cpus(doc):
    """Host core count, from either document shape; None if unrecorded."""
    for block in (doc.get("context"), doc.get("host"),
                  doc.get("host_context")):
        if isinstance(block, dict) and block.get("num_cpus"):
            return block["num_cpus"]
    return None


def host_isa(doc):
    """Vector-kernel ISA the document was measured with ("avx2", ...), or
    None if unrecorded (raw google-benchmark JSON has no such field)."""
    host = doc.get("host")
    if isinstance(host, dict):
        return host.get("isa")
    return None


def warn_host_mismatch(cur_doc, base_doc):
    """Timings only transfer between comparable hosts.  None of these
    checks fails the gate, but every incomparability is called out loudly
    so a surprise ratio can be read correctly."""
    cur, base = num_cpus(cur_doc), num_cpus(base_doc)
    # A side with no host descriptor at all is worse than a mismatch: the
    # comparison is unverifiable.  Warn loudly instead of silently passing.
    for side, n in (("current", cur), ("baseline", base)):
        if n is None:
            print(f"warning: {side} document records no host metadata "
                  f"(num_cpus missing from context/host/host_context); "
                  f"cannot verify the runs are comparable -- treat ratios "
                  f"with suspicion", file=sys.stderr)
    if cur is not None and base is not None and cur != base:
        print(f"warning: host core-count mismatch -- current run on "
              f"{cur} cpus, baseline recorded on {base}; timing ratios "
              f"may reflect the machine, not the code", file=sys.stderr)
    cur_isa, base_isa = host_isa(cur_doc), host_isa(base_doc)
    if cur_isa and base_isa and cur_isa != base_isa:
        print(f"warning: vector-ISA mismatch -- current run used "
              f"{cur_isa} kernels, baseline recorded with {base_isa}; "
              f"timing ratios compare kernel sets, not just the code",
              file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("--bench", action="append", default=[],
                    help="benchmark name that must be present and pass; "
                         "repeatable.  Without it, every common name is "
                         "checked.")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require baseline/current real_time >= R for "
                         "every checked benchmark (speedup gate)")
    args = ap.parse_args()

    with open(args.current) as f:
        cur_doc = json.load(f)
    with open(args.baseline) as f:
        base_doc = json.load(f)
    cur = extract(cur_doc)
    base = extract(base_doc)
    warn_host_mismatch(cur_doc, base_doc)

    names = args.bench if args.bench else sorted(set(cur) & set(base))
    failures = []
    for name in names:
        if name not in cur or name not in base:
            failures.append(f"{name}: missing from "
                            f"{'current' if name not in cur else 'baseline'}")
            continue
        ratio = cur[name] / base[name]
        speedup = base[name] / cur[name]
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(f"{name}: {ratio:.3f}x baseline real_time "
                            f"(tolerance {1.0 + args.tolerance:.2f}x)")
        elif args.min_speedup is not None and speedup < args.min_speedup:
            verdict = "TOO SLOW"
            failures.append(f"{name}: {speedup:.3f}x speedup over baseline "
                            f"(required >= {args.min_speedup:.2f}x)")
        print(f"{name}: current {cur[name]:.0f} vs baseline "
              f"{base[name]:.0f} ({ratio:.3f}x, speedup {speedup:.3f}x) "
              f"{verdict}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    gate = f"within {args.tolerance:.0%} of baseline"
    if args.min_speedup is not None:
        gate += f" and >= {args.min_speedup:.2f}x speedup"
    print(f"\n{len(names)} benchmark(s) {gate}")


if __name__ == "__main__":
    main()
