// Minimal argument parsing for the cfs command-line tool: positional
// arguments plus --key=value / --flag options, with typed accessors and
// unknown-option detection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace cfs::cli {

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string_view a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const std::size_t eq = a.find('=');
        if (eq == std::string_view::npos) {
          opts_.emplace_back(std::string(a.substr(2)), "");
        } else {
          opts_.emplace_back(std::string(a.substr(2, eq - 2)),
                             std::string(a.substr(eq + 1)));
        }
      } else {
        positional_.emplace_back(a);
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(std::string_view key) const {
    for (const auto& [k, v] : opts_) {
      if (k == key) return true;
    }
    return false;
  }

  std::string get(std::string_view key, std::string def = "") const {
    for (const auto& [k, v] : opts_) {
      if (k == key) return v;
    }
    return def;
  }

  std::uint64_t get_u64(std::string_view key, std::uint64_t def) const {
    const std::string v = get(key);
    if (v.empty()) return def;
    try {
      return std::stoull(v);
    } catch (...) {
      throw Error("option --" + std::string(key) + " expects a number, got '" +
                  v + "'");
    }
  }

  /// Throw on options outside the allowed set (typo protection).
  void allow_only(std::initializer_list<std::string_view> keys) const {
    for (const auto& [k, v] : opts_) {
      bool ok = false;
      for (std::string_view key : keys) ok |= k == key;
      if (!ok) throw Error("unknown option --" + k);
    }
  }

 private:
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> opts_;
};

}  // namespace cfs::cli
