// cfsd -- the fault-simulation daemon.
//
//   cfsd --state-dir=DIR [--socket=PATH] [config flags]
//
// Serves concurrent fault-simulation campaigns over an AF_UNIX socket with
// the length-prefixed JSON protocol (src/svc/wire.h).  Crash-safe: every
// admitted session checkpoints into --state-dir, a restarted daemon
// re-admits and resumes unfinished sessions automatically, and clients
// reconnect with `cfs connect`.  SIGTERM/SIGINT drain gracefully: running
// sessions stop at their next vector boundary, write a final checkpoint,
// and stay resumable.
#include <csignal>
#include <cstdio>
#include <string>

#include "args.h"
#include "obs/trace.h"
#include "resil/containment.h"
#include "svc/server.h"
#include "svc/service.h"
#include "util/error.h"

namespace {

cfs::svc::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: cfsd --state-dir=DIR [--socket=PATH]\n"
      "            [--mem-budget=N] [--session-elements=N]\n"
      "            [--max-sessions=N] [--queue-depth=N]\n"
      "            [--queue-deadline-ms=N] [--checkpoint-every=N]\n"
      "            [--sample-every=N] [--retries=N] [--stall-ms=N]\n"
      "            [--inject=SPEC] [--trace=FILE]\n"
      "\n"
      "  --state-dir=DIR        session state root (required)\n"
      "  --socket=PATH          listen socket (default DIR/cfsd.sock)\n"
      "  --mem-budget=N         global element budget for admission\n"
      "  --session-elements=N   default per-session element budget\n"
      "  --max-sessions=N       concurrently running sessions\n"
      "  --queue-depth=N        bounded admission queue length\n"
      "  --queue-deadline-ms=N  max time a queued open may wait\n"
      "  --checkpoint-every=N   checkpoint stride in vectors\n"
      "  --sample-every=N       update-stream sampling stride\n"
      "  --retries=N            shard containment retries per vector\n"
      "  --stall-ms=N           per-round shard watchdog deadline\n"
      "  --inject=SPEC          chaos injection (see cfs sim --inject)\n"
      "  --trace=FILE           chrome://tracing file with session tracks\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfs;
  cli::Args args(argc, argv, 1);
  try {
    args.allow_only({"state-dir", "socket", "mem-budget", "session-elements",
                     "max-sessions", "queue-depth", "queue-deadline-ms",
                     "checkpoint-every", "sample-every", "retries",
                     "stall-ms", "inject", "trace"});
    const std::string state_dir = args.get("state-dir");
    if (state_dir.empty()) return usage();

    svc::ServiceConfig cfg;
    cfg.state_dir = state_dir;
    cfg.global_elements = args.get_u64("mem-budget", cfg.global_elements);
    cfg.default_session_elements =
        args.get_u64("session-elements", cfg.default_session_elements);
    cfg.max_sessions =
        static_cast<unsigned>(args.get_u64("max-sessions", cfg.max_sessions));
    cfg.queue_depth =
        static_cast<unsigned>(args.get_u64("queue-depth", cfg.queue_depth));
    cfg.queue_deadline_ms = static_cast<std::uint32_t>(
        args.get_u64("queue-deadline-ms", cfg.queue_deadline_ms));
    cfg.checkpoint_every =
        args.get_u64("checkpoint-every", cfg.checkpoint_every);
    cfg.sample_every = args.get_u64("sample-every", cfg.sample_every);
    cfg.shard_retries =
        static_cast<unsigned>(args.get_u64("retries", cfg.shard_retries));
    cfg.session_stall_ms = static_cast<std::uint32_t>(
        args.get_u64("stall-ms", cfg.session_stall_ms));

    resil::FaultInjector injector;
    if (args.has("inject")) {
      for (const resil::InjectionSpec& spec :
           resil::FaultInjector::parse(args.get("inject"))) {
        injector.add(spec);
      }
      cfg.injector = &injector;
    }
    obs::TraceEmitter trace;
    const std::string trace_path = args.get("trace");
    if (!trace_path.empty()) {
      obs::ensure_writable(trace_path, "trace");
      cfg.trace = &trace;
    }

    const std::string sock = args.get("socket", state_dir + "/cfsd.sock");

    svc::Service service(cfg);
    svc::Server server(service, sock);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);  // slow clients must not kill the daemon

    std::printf("cfsd listening on %s (state %s, budget %zu elements, "
                "%u sessions)\n",
                sock.c_str(), state_dir.c_str(), cfg.global_elements,
                cfg.max_sessions);
    std::fflush(stdout);

    server.run();
    std::printf("cfsd draining\n");
    std::fflush(stdout);
    service.drain();
    if (!trace_path.empty()) trace.save(trace_path);
    std::printf("cfsd stopped\n");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "cfsd: error: %s\n", e.what());
    return 1;
  }
}
