#!/usr/bin/env python3
"""Distill a perf-trajectory baseline (results/BENCH_PR5.json).

Collects the machine-readable outputs of a run_benches.sh pass --
micro_kernels (google-benchmark JSON), table2_circuits, and scaling_threads
-- into one small summary future PRs diff against (see
check_bench_regression.py).  Standard library only.
"""
import argparse
import json
import os
import sys


def cpu_model():
    """Human-readable CPU model from /proc/cpuinfo, or None elsewhere."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return None


def host_isa():
    """Widest vector ISA the host supports, mirroring simd::detect_isa()
    ("avx2" > "sse4.2" > "scalar" on x86, "neon" on aarch64), or None when
    undetectable.  Timings do not transfer between kernel sets, so the
    baseline records which one produced it."""
    machine = os.uname().machine if hasattr(os, "uname") else ""
    if machine in ("aarch64", "arm64"):
        return "neon"
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("flags"):
                    flags = line.split(":", 1)[1].split()
                    if "avx2" in flags:
                        return "avx2"
                    if "sse4_2" in flags:
                        return "sse4.2"
                    return "scalar"
    except OSError:
        pass
    return None


def host_block(micro_context, isa_override=None):
    """Explicit host descriptor: benchmark timings only transfer between
    comparable machines, so the baseline records where it was measured."""
    host = {
        "num_cpus": micro_context.get("num_cpus") or os.cpu_count(),
        "cpu_model": micro_context.get("cpu_model") or cpu_model(),
        "isa": isa_override or host_isa(),
    }
    if "mhz_per_cpu" in micro_context:
        host["mhz_per_cpu"] = micro_context["mhz_per_cpu"]
    return host


def load(path, required):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        if required:
            sys.exit(f"error: cannot read {path}: {e}")
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--micro", required=True,
                    help="micro_kernels google-benchmark JSON")
    ap.add_argument("--table2", default=None, help="table2_circuits JSON")
    ap.add_argument("--scaling", default=None, help="scaling_threads JSON")
    ap.add_argument("--scale", default="unknown",
                    help="CFS_BENCH_SCALE the run used")
    ap.add_argument("--name", default="BENCH_PR5",
                    help="baseline tag stored in the output")
    ap.add_argument("--isa", default=None,
                    help="vector-kernel ISA the run used (default: detect "
                         "the host's widest, mirroring --simd=auto)")
    ap.add_argument("--out", required=True, help="output baseline JSON")
    args = ap.parse_args()

    micro = load(args.micro, required=True)
    out = {
        "baseline": args.name,
        "scale": args.scale,
        "host_context": micro.get("context", {}),
        "host": host_block(micro.get("context", {}), args.isa),
        "micro_kernels": {},
    }
    for b in micro.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b.get("time_unit", "ns"),
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        out["micro_kernels"][b["name"]] = entry

    table2 = load(args.table2, required=False) if args.table2 else None
    if table2 is not None:
        out["table2"] = {
            r["circuit"]: {
                "faults": r.get("faults"),
                "vectors": r.get("vectors"),
                "coverage_pct": r.get("coverage_pct"),
            }
            for r in table2.get("rows", [])
        }

    scaling = load(args.scaling, required=False) if args.scaling else None
    if scaling is not None:
        out["scaling_threads"] = [
            {
                "circuit": r["circuit"],
                "threads": r["threads"],
                "vectors_per_s": r.get("vectors_per_s"),
                "speedup": r.get("speedup"),
                "hard": r.get("hard"),
            }
            for r in scaling.get("rows", [])
        ]

    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")


if __name__ == "__main__":
    main()
